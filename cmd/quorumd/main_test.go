package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/netstack"
	"quorumconf/internal/radio"
	"quorumconf/internal/wire"
)

func TestParseSpace(t *testing.T) {
	blk, err := parseSpace("10.0.0.1-10.0.0.254")
	if err != nil {
		t.Fatal(err)
	}
	if blk.Lo != 0x0A000001 || blk.Hi != 0x0A0000FE {
		t.Errorf("parsed %v", blk)
	}
	for _, bad := range []string{"", "10.0.0.1", "10.0.0.254-10.0.0.1", "x-y", "::1-::2"} {
		if _, err := parseSpace(bad); err == nil {
			t.Errorf("parseSpace(%q) accepted", bad)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("2=127.0.0.1:7402, 3=127.0.0.1:7403")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[2] != "127.0.0.1:7402" || peers[3] != "127.0.0.1:7403" {
		t.Errorf("parsed %v", peers)
	}
	for _, bad := range []string{"x=127.0.0.1:7402", "2=nohostport", "2", "2=127.0.0.1:1,2=127.0.0.1:2", "0=127.0.0.1:1"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestParseSeedsDefaultsToAllPeersAscending(t *testing.T) {
	peers := map[radio.NodeID]string{5: "a:1", 2: "a:2", 9: "a:3"}
	seeds, err := parseSeeds("", peers)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 2 || seeds[1] != 5 || seeds[2] != 9 {
		t.Errorf("default seeds = %v", seeds)
	}
	if _, err := parseSeeds("7", peers); err == nil {
		t.Error("seed outside the peer directory accepted")
	}
}

func TestBuildConfigDropRateSentinel(t *testing.T) {
	for _, bad := range []string{"-0.5", "1", "1.5"} {
		_, _, err := buildConfig([]string{
			"-id", "1", "-bootstrap", "-space", "10.0.0.1-10.0.0.9", "-drop", bad,
		}, io.Discard)
		if !errors.Is(err, netstack.ErrLossRateRange) {
			t.Errorf("-drop %s: err = %v, want errors.Is ErrLossRateRange", bad, err)
		}
	}
	_, _, err := buildConfig([]string{
		"-id", "1", "-bootstrap", "-space", "10.0.0.1-10.0.0.9", "-drop", "0.2",
	}, io.Discard)
	if err != nil {
		t.Errorf("valid -drop rejected: %v", err)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := [][]string{
		{"-space", "bogus"},
		{"-id", "1", "-space", "10.0.0.1-10.0.0.9", "-peers", "zap"},
		{"-id", "1", "-space", "10.0.0.1-10.0.0.9", "-no-such-flag"},
		{"-id", "1", "-bootstrap", "-space", "10.0.0.1-10.0.0.9", "stray-arg"},
	}
	for _, args := range cases {
		if _, _, err := buildConfig(args, io.Discard); err == nil {
			t.Errorf("buildConfig(%v) accepted", args)
		}
	}
}

func TestRunHelpReturnsErrHelp(t *testing.T) {
	err := run([]string{"-h"}, io.Discard, io.Discard, nil)
	if !errors.Is(err, flag.ErrHelp) {
		t.Errorf("run(-h) = %v, want flag.ErrHelp", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-id", "0", "-space", "10.0.0.1-10.0.0.9"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with zero ID succeeded")
	}
}

// freePort reserves an ephemeral port long enough to hand its number to a
// daemon under test.
func freePort(t *testing.T, network string) int {
	t.Helper()
	switch network {
	case "udp":
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		return conn.LocalAddr().(*net.UDPAddr).Port
	default:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().(*net.TCPAddr).Port
	}
}

// TestRunTwoNodeSmoke boots a bootstrap and a joiner through the real CLI
// entry point and waits for the joiner to configure itself over loopback.
func TestRunTwoNodeSmoke(t *testing.T) {
	udp1, udp2 := freePort(t, "udp"), freePort(t, "udp")
	http1, http2 := freePort(t, "tcp"), freePort(t, "tcp")
	addr := func(port int) string { return fmt.Sprintf("127.0.0.1:%d", port) }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := func(args ...string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(args, io.Discard, io.Discard, stop); err != nil {
				t.Errorf("run(%v): %v", args, err)
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	common := []string{
		"-space", "10.1.0.1-10.1.0.32",
		"-heartbeat", "60ms", "-quorum-timeout", "400ms", "-reclaim-settle", "200ms",
	}
	start(append([]string{
		"-id", "1", "-bootstrap",
		"-listen", addr(udp1), "-http", addr(http1),
		"-peers", "2=" + addr(udp2),
	}, common...)...)
	start(append([]string{
		"-id", "2",
		"-listen", addr(udp2), "-http", addr(http2),
		"-peers", "1=" + addr(udp1),
	}, common...)...)

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr(http2) + "/status")
		if err == nil {
			var v struct {
				Joined bool   `json:"joined"`
				IP     string `json:"ip"`
			}
			err := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err == nil && v.Joined {
				if !strings.HasPrefix(v.IP, "10.1.0.") {
					t.Errorf("joiner IP = %q, want inside 10.1.0.0/24", v.IP)
				}
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("joiner never configured itself through the CLI path")
}

func TestBuildConfigHardeningFlags(t *testing.T) {
	cfg, _, err := buildConfig([]string{
		"-id", "1", "-bootstrap", "-space", "10.0.0.1-10.0.0.9",
		"-auth-key", "hunter2", "-rate-limit", "50", "-rate-burst", "10",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if want := wire.DeriveKey("hunter2"); !bytes.Equal(cfg.AuthKey, want) {
		t.Errorf("AuthKey = %x, want DeriveKey(passphrase) = %x", cfg.AuthKey, want)
	}
	if cfg.RateLimit != 50 || cfg.RateBurst != 10 {
		t.Errorf("rate limit config = %v/%d, want 50/10", cfg.RateLimit, cfg.RateBurst)
	}

	cfg, _, err = buildConfig([]string{
		"-id", "1", "-bootstrap", "-space", "10.0.0.1-10.0.0.9",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AuthKey != nil {
		t.Error("AuthKey set without -auth-key")
	}
}
