// Command quorumd runs one quorum-autoconfiguration protocol node over
// real UDP sockets, with a JSON-over-HTTP control API — the deployable
// counterpart of the simulator in cmd/quorumsim.
//
// A three-node cluster on one machine:
//
//	quorumd -id 1 -bootstrap -space 10.0.0.1-10.0.0.254 \
//	        -listen 127.0.0.1:7401 -http 127.0.0.1:8401 \
//	        -peers "2=127.0.0.1:7402,3=127.0.0.1:7403"
//	quorumd -id 2 -space 10.0.0.1-10.0.0.254 \
//	        -listen 127.0.0.1:7402 -http 127.0.0.1:8402 \
//	        -peers "1=127.0.0.1:7401,3=127.0.0.1:7403"
//	quorumd -id 3 -space 10.0.0.1-10.0.0.254 \
//	        -listen 127.0.0.1:7403 -http 127.0.0.1:8403 \
//	        -peers "1=127.0.0.1:7401,2=127.0.0.1:7402"
//
// Then: GET /status, POST /allocate, GET /metrics on any node's HTTP port.
// The daemon runs until SIGINT or SIGTERM.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/daemon"
	"quorumconf/internal/netstack"
	"quorumconf/internal/radio"
	"quorumconf/internal/wire"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr, nil)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives or stop closes
// (tests drive stop; main leaves it nil and relies on signals).
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) error {
	cfg, peers, err := buildConfig(args, stderr)
	if err != nil {
		return err
	}
	d, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	if err := d.Start(); err != nil {
		return err
	}
	defer d.Kill()
	for id, addr := range peers {
		if err := d.AddPeer(id, addr); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "quorumd: node %d up, udp=%s http=%s\n", int(cfg.ID), d.UDPAddr(), d.HTTPAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "quorumd: received %v, shutting down\n", s)
	case <-stop:
	}
	return nil
}

// buildConfig turns the flag set into a daemon configuration plus the
// static peer directory.
func buildConfig(args []string, stderr io.Writer) (daemon.Config, map[radio.NodeID]string, error) {
	fs := flag.NewFlagSet("quorumd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id        = fs.Int("id", 0, "node ID (positive, unique in the cluster)")
		listen    = fs.String("listen", "127.0.0.1:7400", "UDP bind address")
		httpAddr  = fs.String("http", "127.0.0.1:8400", "HTTP control API bind address (empty disables)")
		space     = fs.String("space", "", `cluster address space as "lo-hi", e.g. "10.0.0.1-10.0.0.254"`)
		bootstrap = fs.Bool("bootstrap", false, "own the address space (exactly one per cluster)")
		peersStr  = fs.String("peers", "", `peer directory as "id=host:port,id=host:port"`)
		seedsStr  = fs.String("seeds", "", "peer IDs to request configuration from, comma-separated (default: every peer, ascending)")
		heartbeat = fs.Duration("heartbeat", 500*time.Millisecond, "REP_REQ heartbeat interval")
		suspect   = fs.Duration("suspect-after", 0, "declare a silent peer dead after this long (default 4 heartbeats)")
		quorumTO  = fs.Duration("quorum-timeout", time.Second, "quorum ballot round timeout")
		settle    = fs.Duration("reclaim-settle", time.Second, "reclamation defense window")
		replicas  = fs.Int("replication-target", 0, "desired replica-holder count including the owner; 0 replicates to every member")
		healthIvl = fs.Duration("health-interval", 0, "replica-health check interval (default 2 heartbeats; negative disables)")
		replTTL   = fs.Duration("replica-ttl", 0, "how long a REPLICA_ACK lease stays fresh (default 8 heartbeats)")
		drop      = fs.Float64("drop", 0, "chaos testing: drop outbound data frames with this probability, in [0, 1)")
		batchB    = fs.Int("batch-bytes", 0, "coalesce queued frames to a peer once this many payload bytes accumulate (0 disables)")
		batchD    = fs.Duration("batch-delay", 0, "coalesce queued frames to a peer for up to this long (0 disables)")
		authKey   = fs.String("auth-key", "", "cluster passphrase: seal and verify every datagram with an HMAC-SHA256 key derived from it (empty disables)")
		rateLimit = fs.Float64("rate-limit", 0, "accepted datagrams per second per remote address (0 disables)")
		rateBurst = fs.Int("rate-burst", 0, "rate-limit burst size (default max(16, rate-limit))")
		verbose   = fs.Bool("v", false, "verbose protocol logging to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return daemon.Config{}, nil, err
	}
	if fs.NArg() > 0 {
		return daemon.Config{}, nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	// The drop probability follows the netstack's loss-rate convention,
	// including its sentinel, so misconfiguration is testable uniformly.
	if *drop < 0 || *drop >= 1 {
		return daemon.Config{}, nil, fmt.Errorf("%w: -drop %v", netstack.ErrLossRateRange, *drop)
	}
	blk, err := parseSpace(*space)
	if err != nil {
		return daemon.Config{}, nil, err
	}
	peers, err := parsePeers(*peersStr)
	if err != nil {
		return daemon.Config{}, nil, err
	}
	seeds, err := parseSeeds(*seedsStr, peers)
	if err != nil {
		return daemon.Config{}, nil, err
	}

	cfg := daemon.Config{
		ID:                radio.NodeID(*id),
		Space:             blk,
		Bootstrap:         *bootstrap,
		Seeds:             seeds,
		Listen:            *listen,
		HTTPListen:        *httpAddr,
		HeartbeatInterval: *heartbeat,
		SuspectAfter:      *suspect,
		QuorumTimeout:     *quorumTO,
		ReclaimSettle:     *settle,
		ReplicationTarget: *replicas,
		HealthInterval:    *healthIvl,
		ReplicaTTL:        *replTTL,
		DropRate:          *drop,
		BatchFlushBytes:   *batchB,
		BatchFlushDelay:   *batchD,
		AuthKey:           wire.DeriveKey(*authKey),
		RateLimit:         *rateLimit,
		RateBurst:         *rateBurst,
	}
	if *verbose {
		logger := log.New(stderr, "", log.Ltime|log.Lmicroseconds)
		cfg.Logf = logger.Printf
	}
	return cfg, peers, nil
}

// parseSpace parses "lo-hi" dotted quads into a block.
func parseSpace(s string) (addrspace.Block, error) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return addrspace.Block{}, fmt.Errorf(`-space %q: want "lo-hi" dotted quads`, s)
	}
	l, err := parseIPv4(lo)
	if err != nil {
		return addrspace.Block{}, fmt.Errorf("-space: %w", err)
	}
	h, err := parseIPv4(hi)
	if err != nil {
		return addrspace.Block{}, fmt.Errorf("-space: %w", err)
	}
	blk, err := addrspace.NewBlock(l, h)
	if err != nil {
		return addrspace.Block{}, fmt.Errorf("-space: %w", err)
	}
	return blk, nil
}

func parseIPv4(s string) (addrspace.Addr, error) {
	ip := net.ParseIP(strings.TrimSpace(s))
	if ip == nil {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	v4 := ip.To4()
	if v4 == nil {
		return 0, fmt.Errorf("%q is not IPv4", s)
	}
	return addrspace.Addr(binary.BigEndian.Uint32(v4)), nil
}

// parsePeers parses "id=host:port,id=host:port".
func parsePeers(s string) (map[radio.NodeID]string, error) {
	peers := make(map[radio.NodeID]string)
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf(`-peers entry %q: want "id=host:port"`, part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("-peers entry %q: bad node ID", part)
		}
		if _, _, err := net.SplitHostPort(strings.TrimSpace(addr)); err != nil {
			return nil, fmt.Errorf("-peers entry %q: %w", part, err)
		}
		if _, dup := peers[radio.NodeID(id)]; dup {
			return nil, fmt.Errorf("-peers: duplicate node ID %d", id)
		}
		peers[radio.NodeID(id)] = strings.TrimSpace(addr)
	}
	return peers, nil
}

// parseSeeds parses "2,3"; empty means every peer, ascending.
func parseSeeds(s string, peers map[radio.NodeID]string) ([]radio.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		seeds := make([]radio.NodeID, 0, len(peers))
		for id := range peers {
			seeds = append(seeds, id)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		return seeds, nil
	}
	var seeds []radio.NodeID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("-seeds entry %q: bad node ID", part)
		}
		if _, known := peers[radio.NodeID(id)]; !known {
			return nil, fmt.Errorf("-seeds: node %d is not in -peers", id)
		}
		seeds = append(seeds, radio.NodeID(id))
	}
	return seeds, nil
}
