// Command layoutgen generates Figure-4 style random network layouts: node
// coordinates in a 1km x 1km area together with the cluster structure the
// quorum protocol formed over them (which nodes became cluster heads).
//
// Usage:
//
//	layoutgen -nodes 100 -seed 1            # text table
//	layoutgen -nodes 100 -svg layout.svg    # Figure-4 style drawing
package main

import (
	"flag"
	"fmt"
	"os"

	"quorumconf/internal/experiment"
)

func main() {
	nodes := flag.Int("nodes", 100, "number of nodes")
	seed := flag.Int64("seed", 1, "random seed")
	svgPath := flag.String("svg", "", "also write an SVG rendering to this path")
	flag.Parse()

	layout, err := experiment.GenerateLayout(experiment.Config{}, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layoutgen:", err)
		os.Exit(1)
	}
	fmt.Print(layout.String())
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(layout.SVG(150)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "layoutgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
}
