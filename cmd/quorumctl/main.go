// Command quorumctl is the fleet CLI for quorumd clusters: it fans
// requests out over every daemon's /v1 control API and aggregates the
// answers, so one invocation sees the whole cluster.
//
//	quorumctl -fleet 127.0.0.1:8401,127.0.0.1:8402,127.0.0.1:8403 status
//	quorumctl -fleet ... member list
//	quorumctl -fleet ... member add 4 127.0.0.1:7404
//	quorumctl -fleet ... member remove 3     # graceful RETURN_ADDR departure
//	quorumctl -fleet ... drain 2
//	quorumctl -fleet ... allocate
//	quorumctl -fleet ... health
//	quorumctl -fleet ... trace tail -kind=peer_dead -for=5s
//	quorumctl -fleet ... top -interval=1s -for=30s
//
// Exit codes: 0 success, 1 operation failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"quorumconf/internal/ctl"
	"quorumconf/internal/daemon"
	"quorumconf/internal/obs"
)

const usageText = `usage: quorumctl -fleet host:port[,host:port...] [flags] <command>

commands:
  status                  aggregate fleet table: one row per daemon
  member list             the owner's electorate view
  member add <id> <addr>  register a peer UDP address on every daemon
  member join <id> <udp-addr> <http-addr>
                          automated admission: register fleet-wide, seed
                          the running newcomer, wait until it joins
  member remove <id>      graceful departure: return addresses, leave
  drain <id>              stop one daemon accepting new allocations
  allocate [-node id]     allocate one address via the owner
  health                  the owner's replica-health measurement
  trace tail [-kind=k] [-interval=d] [-for=d]
                          follow the fleet's trace rings
  top [-interval=d] [-for=d]
                          live fleet view: allocation rate, config-latency
                          quantiles, replica health, rejected traffic

flags:
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse, dispatch, map errors to exit
// codes (0 ok, 1 failed, 2 usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quorumctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprint(stderr, usageText)
		fs.PrintDefaults()
	}
	var (
		fleetStr = fs.String("fleet", "", "comma-separated daemon HTTP addresses (required)")
		timeout  = fs.Duration("timeout", ctl.DefaultTimeout, "per-daemon request timeout")
		retries  = fs.Int("retries", ctl.DefaultRetries, "retries for idempotent requests")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	addrs := splitFleet(*fleetStr)
	if len(addrs) == 0 {
		fmt.Fprintln(stderr, "quorumctl: -fleet is required")
		fs.Usage()
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "quorumctl: missing command")
		fs.Usage()
		return 2
	}
	fleet := ctl.NewFleet(addrs, ctl.WithTimeout(*timeout), ctl.WithRetries(*retries))
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	var err error
	switch cmd {
	case "status":
		err = cmdStatus(fleet, stdout, rest)
	case "member":
		return runMember(fleet, stdout, stderr, rest)
	case "drain":
		err = cmdDrain(fleet, stdout, rest)
	case "allocate":
		err = cmdAllocate(fleet, stdout, rest)
	case "health":
		err = cmdHealth(fleet, stdout, rest)
	case "trace":
		err = cmdTrace(fleet, stdout, rest)
	case "top":
		err = cmdTop(fleet, stdout, rest)
	default:
		fmt.Fprintf(stderr, "quorumctl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
	return report(stderr, err)
}

func report(stderr io.Writer, err error) int {
	if err == nil {
		return 0
	}
	fmt.Fprintln(stderr, "quorumctl:", err)
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// usageError marks bad command arguments (exit 2, not 1).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

func splitFleet(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func parseNodeArg(args []string, what string) (int, error) {
	if len(args) != 1 {
		return 0, usagef("%s: want exactly one node ID argument, got %d", what, len(args))
	}
	id, err := strconv.Atoi(args[0])
	if err != nil || id <= 0 {
		return 0, usagef("%s: bad node ID %q", what, args[0])
	}
	return id, nil
}

// statusFanOut snapshots every daemon; reachable results keep their
// per-daemon errors alongside so callers render partial fleets.
func statusFanOut(fleet *ctl.Fleet) []ctl.Result[daemon.StatusResponse] {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return ctl.FanOut(ctx, fleet, func(ctx context.Context, c *ctl.Client) (daemon.StatusResponse, error) {
		return c.Status(ctx)
	})
}

// clientAt returns the fleet's client for one base URL.
func clientAt(fleet *ctl.Fleet, addr string) *ctl.Client {
	for _, c := range fleet.Clients() {
		if c.Addr() == addr {
			return c
		}
	}
	return ctl.New(addr)
}

// findNode locates the fleet client whose daemon reports the given node
// ID, via a status fan-out.
func findNode(fleet *ctl.Fleet, node int) (*ctl.Client, error) {
	results := statusFanOut(fleet)
	for _, r := range results {
		if r.Err == nil && r.Value.ID == node {
			return clientAt(fleet, r.Addr), nil
		}
	}
	var reasons []string
	for _, r := range results {
		if r.Err != nil {
			reasons = append(reasons, fmt.Sprintf("%s: %v", r.Addr, r.Err))
		}
	}
	if len(reasons) > 0 {
		return nil, fmt.Errorf("no reachable daemon reports node %d (unreachable: %s)", node, strings.Join(reasons, "; "))
	}
	return nil, fmt.Errorf("no daemon in the fleet reports node %d", node)
}

// cmdStatus renders the aggregate fleet table.
func cmdStatus(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	if len(args) != 0 {
		return usagef("status takes no arguments")
	}
	results := statusFanOut(fleet)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ADDR\tNODE\tROLE\tIP\tRF\tQDSET\tDRAINING")
	up, draining := 0, 0
	owner := 0
	var rf string
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t-\t unreachable\t-\t-\t-\t-\n", r.Addr)
			continue
		}
		up++
		v := r.Value
		drain := "-"
		if v.Draining {
			drain = "yes"
			draining++
		}
		factor, qdset := "-", "-"
		if v.Role == "owner" {
			owner = v.ID
			factor = fmt.Sprintf("%d/%d", v.ReplicaFactor, v.ReplicaTarget)
			rf = factor
			qdset = intsString(v.QDSet)
		}
		ip := v.IP
		if ip == "" {
			ip = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n", r.Addr, v.ID, v.Role, ip, factor, qdset, drain)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nfleet: %d/%d daemons up", up, len(results))
	if owner != 0 {
		fmt.Fprintf(stdout, ", owner %d, rf %s", owner, rf)
	}
	if draining > 0 {
		fmt.Fprintf(stdout, ", %d draining", draining)
	}
	fmt.Fprintln(stdout)
	if up == 0 {
		return fmt.Errorf("no daemon in the fleet is reachable")
	}
	return nil
}

func intsString(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.Itoa(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ownerClient finds the daemon reporting the owner role, falling back to
// the first reachable daemon (whose membership view is still useful).
func ownerClient(fleet *ctl.Fleet) (*ctl.Client, error) {
	results := statusFanOut(fleet)
	var fallback *ctl.Client
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if r.Value.Role == "owner" {
			return clientAt(fleet, r.Addr), nil
		}
		if fallback == nil {
			fallback = clientAt(fleet, r.Addr)
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("no daemon in the fleet is reachable")
}

func runMember(fleet *ctl.Fleet, stdout, stderr io.Writer, args []string) int {
	if len(args) == 0 {
		return report(stderr, usagef("member: want list, add or remove"))
	}
	var err error
	switch sub, rest := args[0], args[1:]; sub {
	case "list":
		err = cmdMemberList(fleet, stdout, rest)
	case "add":
		err = cmdMemberAdd(fleet, stdout, rest)
	case "join":
		err = cmdMemberJoin(fleet, stdout, rest)
	case "remove":
		err = cmdMemberRemove(fleet, stdout, rest)
	default:
		err = usagef("member: unknown subcommand %q", sub)
	}
	return report(stderr, err)
}

func cmdMemberList(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	if len(args) != 0 {
		return usagef("member list takes no arguments")
	}
	c, err := ownerClient(fleet)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mv, err := c.Members(ctx)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tIP\tROLE\tSTATE\tREPLICA\tLAST SEEN")
	for _, m := range mv.Members {
		role := "member"
		if m.Node == mv.Owner {
			role = "owner"
		}
		state := "live"
		if m.Dead {
			state = "dead"
		}
		replica := "-"
		if m.ReplicaHolder {
			replica = "holder"
			if m.ReplicaAgeMS >= 0 {
				replica = fmt.Sprintf("holder (%dms)", m.ReplicaAgeMS)
			}
		}
		seen := "-"
		if m.Self {
			seen = "self"
		} else if m.LastSeenMS >= 0 {
			seen = fmt.Sprintf("%dms", m.LastSeenMS)
		}
		ip := m.IP
		if ip == "" {
			ip = "-"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\n", m.Node, ip, role, state, replica, seen)
	}
	return tw.Flush()
}

// cmdMemberAdd registers a peer transport address on every daemon, so the
// newcomer is reachable fleet-wide before it boots.
func cmdMemberAdd(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	if len(args) != 2 {
		return usagef("member add: want <id> <udp-addr>")
	}
	node, err := strconv.Atoi(args[0])
	if err != nil || node <= 0 {
		return usagef("member add: bad node ID %q", args[0])
	}
	addr := args[1]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results := ctl.FanOut(ctx, fleet, func(ctx context.Context, c *ctl.Client) (daemon.AddMemberResponse, error) {
		return c.AddMember(ctx, node, addr)
	})
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stdout, "%s: %v\n", r.Addr, r.Err)
			continue
		}
		fmt.Fprintf(stdout, "%s: registered node %d at %s\n", r.Addr, node, addr)
	}
	if failed > 0 {
		return fmt.Errorf("registration failed on %d of %d daemons", failed, len(results))
	}
	return nil
}

// cmdMemberJoin runs the automated admission flow against a newcomer the
// operator has already started (with seeds configured but no peer
// addresses): register it fleet-wide, push the fleet's seed directory
// into it, and wait for the join to complete.
func cmdMemberJoin(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	if len(args) != 3 {
		return usagef("member join: want <id> <udp-addr> <http-addr>")
	}
	node, err := strconv.Atoi(args[0])
	if err != nil || node <= 0 {
		return usagef("member join: bad node ID %q", args[0])
	}
	udpAddr, httpAddr := args[1], args[2]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v, err := ctl.AutoJoin(ctx, fleet, node, udpAddr, ctl.SeedExisting(httpAddr))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "node %d joined as %s (role %s, electorate %s)\n",
		v.ID, v.IP, v.Role, intsString(v.Electorate))
	return nil
}

// cmdMemberRemove departs one member gracefully: the daemon returns every
// held address to the owner (RETURN_ADDR) and leaves the electorate, with
// no T_d wait.
func cmdMemberRemove(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	node, err := parseNodeArg(args, "member remove")
	if err != nil {
		return err
	}
	c, err := findNode(fleet, node)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dv, err := c.Depart(ctx)
	if err != nil {
		return fmt.Errorf("departing node %d: %w", node, err)
	}
	if !dv.Departed {
		return fmt.Errorf("node %d did not confirm departure", node)
	}
	fmt.Fprintf(stdout, "node %d departed gracefully; its addresses are returned to the owner\n", node)
	return nil
}

func cmdDrain(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	node, err := parseNodeArg(args, "drain")
	if err != nil {
		return err
	}
	c, err := findNode(fleet, node)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dv, err := c.Drain(ctx)
	if err != nil {
		return fmt.Errorf("draining node %d: %w", node, err)
	}
	if dv.Initiated {
		fmt.Fprintf(stdout, "node %d draining: new allocations refused\n", node)
	} else {
		fmt.Fprintf(stdout, "node %d was already draining\n", node)
	}
	return nil
}

func cmdAllocate(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("allocate", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	node := fs.Int("node", 0, "allocate on behalf of this node ID")
	if err := fs.Parse(args); err != nil {
		return usagef("allocate: %v", err)
	}
	if fs.NArg() > 0 {
		return usagef("allocate: unexpected arguments %v", fs.Args())
	}
	c, err := ownerClient(fleet)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	av, err := c.Allocate(ctx, *node)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "allocated %s\n", av.Addr)
	return nil
}

func cmdHealth(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	if len(args) != 0 {
		return usagef("health takes no arguments")
	}
	c, err := ownerClient(fleet)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hv, err := c.Health(ctx)
	if err != nil {
		return err
	}
	if !hv.Monitoring && hv.Factor == 0 {
		fmt.Fprintln(stdout, "replica health: not an owner (or not joined); nothing monitored")
		return nil
	}
	state := "at target"
	if hv.Under {
		state = "UNDER-REPLICATED"
	}
	fmt.Fprintf(stdout, "replica factor %d/%d (%s), monitor %s\n",
		hv.Factor, hv.Target, state, map[bool]string{true: "on", false: "off"}[hv.Monitoring])
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "HOLDER\tLEASE\tACK AGE")
	for _, h := range hv.Holders {
		lease := "stale"
		if h.Fresh {
			lease = "fresh"
		}
		if h.Dead {
			lease = "dead"
		}
		age := "-"
		if h.AckAgeMS >= 0 {
			age = fmt.Sprintf("%dms", h.AckAgeMS)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\n", h.Node, lease, age)
	}
	return tw.Flush()
}

// cmdTrace follows the fleet's trace rings: every interval it polls each
// daemon for events past the last seen sequence number and prints them.
// With -for 0 it prints the current rings once and exits.
func cmdTrace(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	if len(args) == 0 || args[0] != "tail" {
		return usagef("trace: want the tail subcommand")
	}
	fs := flag.NewFlagSet("trace tail", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		kind     = fs.String("kind", "", "only this event kind")
		interval = fs.Duration("interval", 300*time.Millisecond, "poll period")
		forDur   = fs.Duration("for", 0, "follow for this long (0: one snapshot)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return usagef("trace tail: %v", err)
	}
	if fs.NArg() > 0 {
		return usagef("trace tail: unexpected arguments %v", fs.Args())
	}

	lastSeq := make(map[string]uint64)
	deadline := time.Now().Add(*forDur)
	everReachable := false
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		results := ctl.FanOut(ctx, fleet, func(ctx context.Context, c *ctl.Client) (daemon.TraceResponse, error) {
			return c.Trace(ctx, *kind)
		})
		cancel()
		var fresh []traceLine
		reachable := false
		for _, r := range results {
			if r.Err != nil {
				var apiErr *ctl.APIError
				if errors.As(r.Err, &apiErr) && apiErr.Status == 400 {
					return fmt.Errorf("%s: %s", r.Addr, apiErr.Message) // bad -kind: same answer everywhere
				}
				continue
			}
			reachable = true
			for _, e := range r.Value.Events {
				if e.Seq > lastSeq[r.Addr] {
					lastSeq[r.Addr] = e.Seq
					fresh = append(fresh, traceLine{addr: r.Addr, e: e})
				}
			}
		}
		if !reachable {
			// A fleet that was never reachable is an operator error; one
			// that vanishes mid-follow (daemons stopped, stream truncated)
			// ends the tail cleanly with what was already printed.
			if everReachable {
				fmt.Fprintln(stdout, "trace: fleet no longer reachable; stream ended")
				return nil
			}
			return fmt.Errorf("no daemon in the fleet is reachable")
		}
		everReachable = true
		sort.SliceStable(fresh, func(i, j int) bool { return fresh[i].e.Time < fresh[j].e.Time })
		for _, l := range fresh {
			printEvent(stdout, l)
		}
		if !time.Now().Add(*interval).Before(deadline) {
			return nil
		}
		time.Sleep(*interval)
	}
}

// topSample is one daemon's per-tick observation for the live view:
// status (identity/role), health (replica factor) and the parsed
// Prometheus scrape (counters and latency histograms).
type topSample struct {
	status daemon.StatusResponse
	health daemon.HealthResponse
	prom   *ctl.PromSnapshot
}

// cmdTop renders a live fleet view: every interval it scrapes each
// daemon's /v1/metrics and /v1/health and prints one row per daemon with
// the allocation rate (counter delta over the poll period), config-latency
// p50/p99 from the exported histogram, replica health, and the hostile
// traffic counters (auth rejects, rate-limited drops). With -for 0 it
// prints one snapshot and exits.
func cmdTop(fleet *ctl.Fleet, stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		interval = fs.Duration("interval", time.Second, "refresh period")
		forDur   = fs.Duration("for", 0, "run for this long (0: one snapshot)")
	)
	if err := fs.Parse(args); err != nil {
		return usagef("top: %v", err)
	}
	if fs.NArg() > 0 {
		return usagef("top: unexpected arguments %v", fs.Args())
	}

	prevAllocs := make(map[string]float64)
	var prevAt time.Time
	deadline := time.Now().Add(*forDur)
	everReachable := false
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		results := ctl.FanOut(ctx, fleet, func(ctx context.Context, c *ctl.Client) (topSample, error) {
			var s topSample
			var err error
			if s.status, err = c.Status(ctx); err != nil {
				return s, err
			}
			if s.health, err = c.Health(ctx); err != nil {
				return s, err
			}
			text, err := c.Metrics(ctx)
			if err != nil {
				return s, err
			}
			s.prom = ctl.ParseProm(text)
			return s, nil
		})
		cancel()
		now := time.Now()
		elapsed := time.Duration(0)
		if !prevAt.IsZero() {
			elapsed = now.Sub(prevAt)
		}
		up, err := renderTop(stdout, results, prevAllocs, elapsed)
		if err != nil {
			return err
		}
		if up == 0 {
			if everReachable {
				fmt.Fprintln(stdout, "top: fleet no longer reachable; view ended")
				return nil
			}
			return fmt.Errorf("no daemon in the fleet is reachable")
		}
		everReachable = true
		prevAt = now
		if !time.Now().Add(*interval).Before(deadline) {
			return nil
		}
		time.Sleep(*interval)
	}
}

// renderTop prints one tick of the live view and returns the number of
// reachable daemons. prevAllocs carries each daemon's allocation counter
// from the previous tick so rates are per-poll deltas.
func renderTop(stdout io.Writer, results []ctl.Result[topSample], prevAllocs map[string]float64, elapsed time.Duration) (int, error) {
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ADDR\tNODE\tROLE\tALLOCS\tALLOC/S\tP50\tP99\tREPLICAS\tAUTH-REJ\tRATE-LIM")
	up := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t-\tunreachable\t-\t-\t-\t-\t-\t-\t-\n", r.Addr)
			delete(prevAllocs, r.Addr)
			continue
		}
		up++
		s := r.Value
		allocs := s.prom.Counter("quorumd_daemon_allocs")
		rate := "-"
		if prev, ok := prevAllocs[r.Addr]; ok && elapsed > 0 {
			rate = fmt.Sprintf("%.1f", (allocs-prev)/elapsed.Seconds())
		}
		prevAllocs[r.Addr] = allocs
		p50, p99 := "-", "-"
		if h, ok := s.prom.Histogram("quorumd_config_latency_seconds"); ok {
			p50 = fmtSeconds(h.Quantile(0.50))
			p99 = fmtSeconds(h.Quantile(0.99))
		}
		repl := "-"
		if s.health.Monitoring || s.health.Factor > 0 {
			repl = fmt.Sprintf("%d/%d", s.health.Factor, s.health.Target)
			if s.health.Under {
				repl += " UNDER"
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\t%s\t%s\t%s\t%s\t%.0f\t%.0f\n",
			r.Addr, s.status.ID, s.status.Role, allocs, rate, p50, p99, repl,
			s.prom.Counter("quorumd_transport_auth_reject"),
			s.prom.Counter("quorumd_transport_rate_limited"))
	}
	if err := tw.Flush(); err != nil {
		return up, err
	}
	fmt.Fprintf(stdout, "fleet: %d/%d daemons up\n\n", up, len(results))
	return up, nil
}

// fmtSeconds renders a latency quantile in adaptive units; NaN (an empty
// histogram) renders as "-".
func fmtSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

type traceLine struct {
	addr string
	e    obs.Event
}

func printEvent(w io.Writer, l traceLine) {
	fmt.Fprintf(w, "%s %-12s node=%d %s", l.addr, l.e.Time.Truncate(time.Microsecond), l.e.Node, l.e.Kind)
	if l.e.Peer != 0 {
		fmt.Fprintf(w, " peer=%d", l.e.Peer)
	}
	if l.e.Addr != 0 {
		fmt.Fprintf(w, " addr=%s", l.e.Addr)
	}
	if l.e.Detail != "" {
		fmt.Fprintf(w, " detail=%q", l.e.Detail)
	}
	fmt.Fprintln(w)
}
