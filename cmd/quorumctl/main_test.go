package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quorumconf/internal/daemon"
	"quorumconf/internal/obs"
)

// fakeNode is one httptest daemon with scripted /v1 answers and call
// counters for assertion.
type fakeNode struct {
	srv      *httptest.Server
	status   daemon.StatusResponse
	metrics  atomic.Value // string: scripted /v1/metrics exposition
	departs  atomic.Int32
	drains   atomic.Int32
	adds     atomic.Int32
	draining atomic.Bool
}

func newFakeNode(t *testing.T, status daemon.StatusResponse, events []obs.Event) *fakeNode {
	t.Helper()
	f := &fakeNode{status: status}
	mux := http.NewServeMux()
	reply := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		s := f.status
		s.Draining = s.Draining || f.draining.Load()
		reply(w, s)
	})
	mux.HandleFunc("/v1/depart", func(w http.ResponseWriter, r *http.Request) {
		f.departs.Add(1)
		if f.status.Role == "owner" {
			w.WriteHeader(http.StatusConflict)
			reply(w, daemon.ErrorResponse{Error: "the space owner cannot depart gracefully"})
			return
		}
		reply(w, daemon.DepartResponse{Departed: true})
	})
	mux.HandleFunc("/v1/drain", func(w http.ResponseWriter, r *http.Request) {
		f.drains.Add(1)
		initiated := !f.draining.Swap(true)
		reply(w, daemon.DrainResponse{Draining: true, Initiated: initiated})
	})
	mux.HandleFunc("/v1/members", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			f.adds.Add(1)
			var req daemon.AddMemberRequest
			_ = json.NewDecoder(r.Body).Decode(&req)
			reply(w, daemon.AddMemberResponse{Node: req.Node, Addr: req.Addr})
			return
		}
		members := []daemon.MemberInfo{
			{Node: 1, IP: "10.0.0.1", ReplicaHolder: false, LastSeenMS: -1},
			{Node: f.status.ID, IP: f.status.IP, Self: true},
		}
		reply(w, daemon.MembersResponse{Owner: 1, Members: members})
	})
	mux.HandleFunc("/v1/health", func(w http.ResponseWriter, r *http.Request) {
		reply(w, daemon.HealthResponse{
			Monitoring: true, Factor: 2, Target: 3, Under: true,
			Holders: []daemon.HealthHolder{{Node: 2, Fresh: true, AckAgeMS: 40}},
		})
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m, _ := f.metrics.Load().(string)
		_, _ = io.WriteString(w, m)
	})
	mux.HandleFunc("/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		out := events
		if kind := r.URL.Query().Get("kind"); kind != "" {
			want, ok := obs.KindByName(kind)
			if !ok {
				w.WriteHeader(http.StatusBadRequest)
				reply(w, daemon.ErrorResponse{Error: "unknown event kind " + kind})
				return
			}
			out = nil
			for _, e := range events {
				if e.Kind == want {
					out = append(out, e)
				}
			}
		}
		reply(w, daemon.TraceResponse{Events: out})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeNode) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

// fleet3 builds an owner and two members.
func fleet3(t *testing.T) (string, *fakeNode, *fakeNode, *fakeNode) {
	t.Helper()
	owner := newFakeNode(t, daemon.StatusResponse{
		ID: 1, Role: "owner", Joined: true, IP: "10.0.0.1",
		ReplicaFactor: 3, ReplicaTarget: 3, QDSet: []int{1, 2, 3},
	}, []obs.Event{
		{Seq: 1, Kind: obs.EvHeadElected, Node: 1},
		{Seq: 2, Kind: obs.EvPeerDead, Node: 1, Peer: 4},
		{Seq: 3, Kind: obs.EvVoteCacheHit, Node: 1, Peer: 2, Detail: "proposal 10.0.0.9"},
	})
	m2 := newFakeNode(t, daemon.StatusResponse{ID: 2, Role: "member", Joined: true, IP: "10.0.0.2"}, nil)
	m3 := newFakeNode(t, daemon.StatusResponse{ID: 3, Role: "member", Joined: true, IP: "10.0.0.3"}, nil)
	fleet := owner.addr() + "," + m2.addr() + "," + m3.addr()
	return fleet, owner, m2, m3
}

// ctl runs the CLI and returns exit code, stdout, stderr.
func ctlRun(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	for _, c := range []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"no fleet", []string{"status"}},
		{"no command", []string{"-fleet", "127.0.0.1:1"}},
		{"unknown command", []string{"-fleet", "127.0.0.1:1", "bogus"}},
		{"unknown flag", []string{"-nope"}},
		{"member no sub", []string{"-fleet", "127.0.0.1:1", "member"}},
		{"member bad sub", []string{"-fleet", "127.0.0.1:1", "member", "eject"}},
		{"remove no id", []string{"-fleet", "127.0.0.1:1", "member", "remove"}},
		{"remove bad id", []string{"-fleet", "127.0.0.1:1", "member", "remove", "zero"}},
		{"drain bad id", []string{"-fleet", "127.0.0.1:1", "drain", "-3"}},
		{"add missing addr", []string{"-fleet", "127.0.0.1:1", "member", "add", "4"}},
		{"join missing http", []string{"-fleet", "127.0.0.1:1", "member", "join", "4", "127.0.0.1:7404"}},
		{"join bad id", []string{"-fleet", "127.0.0.1:1", "member", "join", "x", "127.0.0.1:7404", "127.0.0.1:8404"}},
		{"status extra args", []string{"-fleet", "127.0.0.1:1", "status", "extra"}},
		{"trace no tail", []string{"-fleet", "127.0.0.1:1", "trace"}},
		{"top extra args", []string{"-fleet", "127.0.0.1:1", "top", "extra"}},
		{"top bad flag", []string{"-fleet", "127.0.0.1:1", "top", "-interval=nope"}},
	} {
		t.Run(c.name, func(t *testing.T) {
			if code, _, stderr := ctlRun(t, c.args...); code != 2 {
				t.Errorf("args %v: exit %d (stderr %q), want 2", c.args, code, stderr)
			}
		})
	}
}

func TestStatusAggregation(t *testing.T) {
	fleet, _, _, _ := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "status")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{
		"NODE", "ROLE", "QDSET", "DRAINING",
		"owner", "member",
		"10.0.0.1", "10.0.0.2", "10.0.0.3",
		"3/3", "[1 2 3]",
		"fleet: 3/3 daemons up, owner 1, rf 3/3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestStatusPartialFleet(t *testing.T) {
	fleet, _, _, _ := fleet3(t)
	// One more address nothing listens on: reported unreachable, exit 0.
	code, out, _ := ctlRun(t, "-fleet", fleet+",127.0.0.1:1", "-retries", "0", "status")
	if code != 0 {
		t.Fatalf("partial fleet status: exit %d", code)
	}
	if !strings.Contains(out, "unreachable") || !strings.Contains(out, "3/4 daemons up") {
		t.Errorf("partial-fleet output:\n%s", out)
	}
	// A fleet that is entirely down fails.
	if code, _, _ := ctlRun(t, "-fleet", "127.0.0.1:1", "-retries", "0", "status"); code != 1 {
		t.Errorf("all-dead status: exit %d, want 1", code)
	}
}

func TestMemberRemove(t *testing.T) {
	fleet, owner, m2, m3 := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "member", "remove", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "node 3 departed gracefully") {
		t.Errorf("output:\n%s", out)
	}
	if got := m3.departs.Load(); got != 1 {
		t.Errorf("node 3 received %d depart calls, want 1", got)
	}
	if owner.departs.Load() != 0 || m2.departs.Load() != 0 {
		t.Error("depart hit daemons other than the target")
	}

	// Unknown node: clean failure naming the node.
	code, _, stderr = ctlRun(t, "-fleet", fleet, "-retries", "0", "member", "remove", "9")
	if code != 1 || !strings.Contains(stderr, "node 9") {
		t.Errorf("remove unknown node: exit %d, stderr %q", code, stderr)
	}

	// Removing the owner surfaces the 409 as a failure.
	code, _, stderr = ctlRun(t, "-fleet", fleet, "-retries", "0", "member", "remove", "1")
	if code != 1 || !strings.Contains(stderr, "owner") {
		t.Errorf("remove owner: exit %d, stderr %q", code, stderr)
	}
}

func TestDrainCommand(t *testing.T) {
	fleet, _, m2, _ := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "drain", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "node 2 draining") {
		t.Errorf("output:\n%s", out)
	}
	if got := m2.drains.Load(); got != 1 {
		t.Errorf("node 2 received %d drain calls, want 1", got)
	}
	// Idempotent second drain reports the existing state, still exit 0.
	code, out, _ = ctlRun(t, "-fleet", fleet, "-retries", "0", "drain", "2")
	if code != 0 || !strings.Contains(out, "already draining") {
		t.Errorf("second drain: exit %d, output %q", code, out)
	}
}

func TestMemberAddFansOut(t *testing.T) {
	fleet, owner, m2, m3 := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "member", "add", "4", "127.0.0.1:7404")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, f := range []*fakeNode{owner, m2, m3} {
		if got := f.adds.Load(); got != 1 {
			t.Errorf("daemon %d received %d add calls, want 1", f.status.ID, got)
		}
	}
	if strings.Count(out, "registered node 4") != 3 {
		t.Errorf("output:\n%s", out)
	}
	// A partially-failed registration exits 1 but still reports per-daemon.
	code, _, stderr = ctlRun(t, "-fleet", fleet+",127.0.0.1:1", "-retries", "0", "member", "add", "4", "127.0.0.1:7404")
	if code != 1 || !strings.Contains(stderr, "1 of 4") {
		t.Errorf("partial add: exit %d, stderr %q", code, stderr)
	}
}

func TestMemberList(t *testing.T) {
	fleet, _, _, _ := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "member", "list")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"NODE", "owner", "self"} {
		if !strings.Contains(out, want) {
			t.Errorf("member list missing %q:\n%s", want, out)
		}
	}
}

func TestHealthCommand(t *testing.T) {
	fleet, _, _, _ := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "health")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"replica factor 2/3", "UNDER-REPLICATED", "HOLDER", "fresh", "40ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("health output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceTail(t *testing.T) {
	fleet, _, _, _ := fleet3(t)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "trace", "tail")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "head_elected") || !strings.Contains(out, "peer_dead") {
		t.Errorf("trace output:\n%s", out)
	}

	// The kind filter narrows, and an unknown kind surfaces the 400.
	code, out, _ = ctlRun(t, "-fleet", fleet, "-retries", "0", "trace", "tail", "-kind=peer_dead")
	if code != 0 || strings.Contains(out, "head_elected") || !strings.Contains(out, "peer_dead") {
		t.Errorf("filtered trace: exit %d, output:\n%s", code, out)
	}
	code, _, stderr = ctlRun(t, "-fleet", fleet, "-retries", "0", "trace", "tail", "-kind=bogus")
	if code != 1 || !strings.Contains(stderr, "unknown event kind") {
		t.Errorf("bogus kind: exit %d, stderr %q", code, stderr)
	}

	// The throughput-engine kinds are valid filters; vote_cache_hit is in
	// the fake owner's ring, the others legitimately match nothing.
	code, out, _ = ctlRun(t, "-fleet", fleet, "-retries", "0", "trace", "tail", "-kind=vote_cache_hit")
	if code != 0 || !strings.Contains(out, "vote_cache_hit") || strings.Contains(out, "head_elected") {
		t.Errorf("vote_cache_hit filter: exit %d, output:\n%s", code, out)
	}
	for _, kind := range []string{"ballot_pipelined", "frame_batched", "vote_cache_invalidate"} {
		if code, _, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "trace", "tail", "-kind="+kind); code != 0 {
			t.Errorf("kind %s rejected: exit %d, stderr %q", kind, code, stderr)
		}
	}
}

// ownerMetrics is a plausible owner scrape: 7 completed allocations with
// a two-bucket latency distribution, plus some rejected hostile traffic.
const ownerMetrics = `# TYPE quorumd_daemon_allocs counter
quorumd_daemon_allocs 7
# TYPE quorumd_transport_auth_reject counter
quorumd_transport_auth_reject 2
# TYPE quorumd_config_latency_seconds histogram
quorumd_config_latency_seconds_bucket{le="0.001024"} 3
quorumd_config_latency_seconds_bucket{le="0.002048"} 7
quorumd_config_latency_seconds_bucket{le="+Inf"} 7
quorumd_config_latency_seconds_sum 0.009
quorumd_config_latency_seconds_count 7
# TYPE quorumd_uptime_seconds gauge
quorumd_uptime_seconds 3.5
`

func TestTopSnapshot(t *testing.T) {
	fleet, owner, _, _ := fleet3(t)
	owner.metrics.Store(ownerMetrics)
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0", "top")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{
		"ADDR", "NODE", "ALLOC/S", "P50", "P99", "REPLICAS", "AUTH-REJ",
		"owner", "member",
		// p50: rank 3.5 interpolated inside (0.001024, 0.002048] → 1.2ms.
		"1.2ms",
		// p99: rank 6.93 in the same bucket → 2.0ms.
		"2.0ms",
		// The fake /v1/health always reports 2/3 under-replicated.
		"2/3 UNDER",
		"fleet: 3/3 daemons up",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// Members serve an empty scrape: their latency columns stay "-".
	if !strings.Contains(out, "-") {
		t.Errorf("empty-histogram daemons should render dashes:\n%s", out)
	}
}

func TestTopFollowComputesRates(t *testing.T) {
	fleet, owner, _, _ := fleet3(t)
	owner.metrics.Store(ownerMetrics)
	// Two polls 20ms apart with an unchanged counter: the second table has
	// a numeric (zero) allocation rate where the first showed "-".
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0",
		"top", "-interval=20ms", "-for=30ms")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if got := strings.Count(out, "fleet: 3/3 daemons up"); got < 2 {
		t.Fatalf("follow rendered %d ticks, want >= 2:\n%s", got, out)
	}
	if !strings.Contains(out, "0.0") {
		t.Errorf("second tick should show a 0.0 allocation rate:\n%s", out)
	}
}

func TestTopUnreachableFleet(t *testing.T) {
	code, _, stderr := ctlRun(t, "-fleet", "127.0.0.1:1", "-retries", "0", "top")
	if code != 1 || !strings.Contains(stderr, "no daemon in the fleet is reachable") {
		t.Errorf("dead-fleet top: exit %d, stderr %q", code, stderr)
	}
}

// TestTraceFollowTruncatedStream pins the follow-mode exit contract: a
// fleet that stops answering mid-stream ends the tail cleanly (exit 0,
// with a closing notice), while a fleet that never answered is still a
// hard failure.
func TestTraceFollowTruncatedStream(t *testing.T) {
	fleet, owner, m2, m3 := fleet3(t)
	go func() {
		time.Sleep(150 * time.Millisecond)
		for _, f := range []*fakeNode{owner, m2, m3} {
			f.srv.CloseClientConnections()
			f.srv.Close()
		}
	}()
	code, out, stderr := ctlRun(t, "-fleet", fleet, "-retries", "0",
		"trace", "tail", "-interval=50ms", "-for=10s")
	if code != 0 {
		t.Fatalf("truncated follow: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "stream ended") {
		t.Errorf("truncated follow should close with a notice:\n%s", out)
	}
	if !strings.Contains(out, "head_elected") {
		t.Errorf("events polled before the truncation should have printed:\n%s", out)
	}

	code, _, stderr = ctlRun(t, "-fleet", "127.0.0.1:1", "-retries", "0",
		"trace", "tail", "-for=100ms")
	if code != 1 || !strings.Contains(stderr, "no daemon in the fleet is reachable") {
		t.Errorf("never-reachable follow: exit %d, stderr %q", code, stderr)
	}
}
