package main

// End-to-end: the CLI against real daemons over real sockets — the
// in-process version of the CI smoke script.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/daemon"
	"quorumconf/internal/radio"
)

func bootCluster(t *testing.T, n int) ([]*daemon.Daemon, string) {
	t.Helper()
	ds := make([]*daemon.Daemon, n)
	for i := 0; i < n; i++ {
		cfg := daemon.Config{
			ID:                radio.NodeID(i + 1),
			Space:             addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000040},
			Bootstrap:         i == 0,
			Listen:            "127.0.0.1:0",
			HTTPListen:        "127.0.0.1:0",
			HeartbeatInterval: 60 * time.Millisecond,
			SuspectAfter:      350 * time.Millisecond,
			QuorumTimeout:     400 * time.Millisecond,
			ReclaimSettle:     200 * time.Millisecond,
			JoinRetry:         120 * time.Millisecond,
			Logf:              t.Logf,
		}
		if i > 0 {
			cfg.Seeds = []radio.NodeID{1}
		}
		d, err := daemon.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Kill)
		ds[i] = d
	}
	for _, a := range ds {
		for _, b := range ds {
			if a != b {
				if err := a.AddPeer(b.ID(), b.UDPAddr().String()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addrs := make([]string, n)
	for i, d := range ds {
		addrs[i] = d.HTTPAddr()
	}
	return ds, strings.Join(addrs, ",")
}

// TestLiveMemberJoin drives the automated admission flow end to end: a
// fourth daemon is started with seeds configured but no peer addresses,
// and one `member join` invocation registers it fleet-wide, seeds it,
// and waits for the join.
func TestLiveMemberJoin(t *testing.T) {
	_, fleet := bootCluster(t, 3)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var out bytes.Buffer
		code := run([]string{"-fleet", fleet, "status"}, &out, &out)
		if code == 0 && strings.Contains(out.String(), "3/3 daemons up, owner 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never formed; last status (exit %d):\n%s", code, out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	nc, err := daemon.New(daemon.Config{
		ID:                4,
		Space:             addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000040},
		Seeds:             []radio.NodeID{1},
		Listen:            "127.0.0.1:0",
		HTTPListen:        "127.0.0.1:0",
		HeartbeatInterval: 60 * time.Millisecond,
		SuspectAfter:      350 * time.Millisecond,
		QuorumTimeout:     400 * time.Millisecond,
		ReclaimSettle:     200 * time.Millisecond,
		JoinRetry:         120 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nc.Kill)

	code, out, stderr := ctlRun(t, "-fleet", fleet,
		"member", "join", "4", nc.UDPAddr().String(), nc.HTTPAddr())
	if code != 0 || !strings.Contains(out, "node 4 joined as 10.0.0.") {
		t.Fatalf("member join: exit %d\nstdout:\n%s\nstderr: %s", code, out, stderr)
	}
}

func TestLiveFleet(t *testing.T) {
	ds, fleet := bootCluster(t, 3)

	// Wait for formation through the CLI itself: status converges on an
	// owner plus two members.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var out bytes.Buffer
		code := run([]string{"-fleet", fleet, "status"}, &out, &out)
		if code == 0 && strings.Contains(out.String(), "3/3 daemons up, owner 1") &&
			strings.Count(out.String(), "member") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never formed; last status (exit %d):\n%s", code, out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// member list over the live owner.
	code, out, stderr := ctlRun(t, "-fleet", fleet, "member", "list")
	if code != 0 || !strings.Contains(out, "owner") || !strings.Contains(out, "holder") {
		t.Fatalf("member list: exit %d\nstdout:\n%s\nstderr: %s", code, out, stderr)
	}

	// Graceful removal of node 3 through the CLI.
	code, out, stderr = ctlRun(t, "-fleet", fleet, "member", "remove", "3")
	if code != 0 || !strings.Contains(out, "node 3 departed gracefully") {
		t.Fatalf("member remove: exit %d\nstdout:\n%s\nstderr: %s", code, out, stderr)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, out, _ = ctlRun(t, "-fleet", fleet, "status")
		if code == 0 && strings.Contains(out, "departed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("departure never visible in status:\n%s", out)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The trace snapshot shows the departure fleet-wide.
	code, out, stderr = ctlRun(t, "-fleet", fleet, "trace", "tail", "-kind=node_departed")
	if code != 0 || !strings.Contains(out, "node_departed") {
		t.Fatalf("trace tail: exit %d\nstdout:\n%s\nstderr: %s", code, out, stderr)
	}

	// Drain the remaining member through the CLI; its status reflects it.
	code, out, stderr = ctlRun(t, "-fleet", fleet, "drain", "2")
	if code != 0 || !strings.Contains(out, "node 2 draining") {
		t.Fatalf("drain: exit %d\nstdout:\n%s\nstderr: %s", code, out, stderr)
	}
	if !ds[1].Draining() {
		t.Error("daemon 2 not draining after CLI drain")
	}
}
