package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"quorumconf/internal/experiment"
	"quorumconf/internal/mobility"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// benchEntry is one point of the benchmark trajectory recorded in
// BENCH_sweeps.json. Seconds maps benchmark name to wall-clock seconds per
// operation; Speedup records the ratios the acceptance criteria track
// (parallel sweep vs serial, spatial-grid snapshot vs the seed O(n²)
// pairwise scan).
type benchEntry struct {
	Timestamp  string             `json:"timestamp"`
	GoVersion  string             `json:"go_version"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Rounds     int                `json:"rounds"`
	Seconds    map[string]float64 `json:"seconds_per_op"`
	// Throughput records successful configurations per simulated second
	// under the sustained-churn workload, per allocation-engine variant
	// (see experiment.AllocVariants). Unlike Seconds these are rates in
	// virtual time — bigger is better.
	Throughput map[string]float64 `json:"allocs_per_simsec,omitempty"`
	// Byzantine records the robustness sweep: conflict rate, latency, and
	// recovery index per protocol and malicious-node count k (see
	// experiment.ByzantineSweep).
	Byzantine map[string]float64 `json:"byzantine,omitempty"`
	Speedup   map[string]float64 `json:"speedup"`
}

// benchFile is the trajectory container: one entry appended per emitter
// run, so successive PRs can diff performance over time.
type benchFile struct {
	Entries []benchEntry `json:"entries"`
}

// benchSnapshotTopology builds the standard n=200, tr=150m random layout
// every snapshot benchmark in the repository uses (seed 1).
func benchSnapshotTopology() (*radio.Topology, error) {
	rng := rand.New(rand.NewSource(1))
	topo, err := radio.NewTopology(150)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 200; i++ {
		p := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if err := topo.Add(radio.NodeID(i), mobility.Static(p)); err != nil {
			return nil, err
		}
	}
	return topo, nil
}

// secondsPerOp times fn over iters iterations.
func secondsPerOp(iters int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Seconds() / float64(iters)
}

// naivePairwiseSnapshot is the frozen seed baseline: O(n²) pairwise
// adjacency plus a map-allocating BFS, duplicated here (and in the radio
// package benchmarks) so the trajectory file always records how far the
// grid+dense-BFS fast path is ahead of it.
func naivePairwiseSnapshot(topo *radio.Topology) {
	ids := topo.Nodes()
	pos := make(map[radio.NodeID]mobility.Point, len(ids))
	for _, id := range ids {
		p, _ := topo.PositionAt(id, 0)
		pos[id] = p
	}
	adj := make(map[radio.NodeID][]radio.NodeID, len(ids))
	r2 := topo.Range() * topo.Range()
	for i, a := range ids {
		pa := pos[a]
		for _, b := range ids[i+1:] {
			pb := pos[b]
			dx, dy := pa.X-pb.X, pa.Y-pb.Y
			if dx*dx+dy*dy <= r2 {
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	for _, src := range []radio.NodeID{0, 3} {
		dist := map[radio.NodeID]int{src: 0}
		queue := []radio.NodeID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, n := range adj[cur] {
				if _, seen := dist[n]; !seen {
					dist[n] = dist[cur] + 1
					queue = append(queue, n)
				}
			}
		}
	}
}

// benchSweepConfig mirrors the root bench_test.go benchConfig: laptop
// scale, the paper's parameter shapes.
func benchSweepConfig(rounds, workers int) experiment.Config {
	return experiment.Config{
		Rounds:          rounds,
		BaseSeed:        1,
		Sizes:           []int{50, 100},
		Ranges:          []float64{120, 200},
		Speeds:          []float64{10, 20},
		AbruptFractions: []float64{0.1, 0.3},
		MidSize:         100,
		ArrivalInterval: 2 * time.Second,
		Workers:         workers,
	}
}

// runBenchJSON runs the benchmark suite, appends an entry to the
// trajectory file at path, and prints a summary table.
func runBenchJSON(path string, rounds, workers int, out io.Writer) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Validate the existing trajectory file before spending minutes on
	// benchmarks: a corrupt file must be reported, never clobbered.
	var file benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("benchjson: existing %s is not a trajectory file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entry := benchEntry{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Rounds:     rounds,
		Seconds:    map[string]float64{},
		Throughput: map[string]float64{},
		Speedup:    map[string]float64{},
	}

	topo, err := benchSnapshotTopology()
	if err != nil {
		return err
	}
	const snapIters = 200
	entry.Seconds["snapshot200_grid"] = secondsPerOp(snapIters, func() {
		s := topo.Snapshot(0)
		s.HopCount(0, 199)
		s.HopCount(3, 150)
	})
	entry.Seconds["snapshot200_naive_seed"] = secondsPerOp(snapIters, func() {
		naivePairwiseSnapshot(topo)
	})

	// Observability overhead: one ring-sinked tracer emit and one histogram
	// observation, so the trajectory records what span tracing and latency
	// histograms cost on the hot path.
	tracer := obs.NewTracer(nil, obs.NewRing(4096))
	span := obs.MintSpan(1, 1)
	const obsIters = 200_000
	entry.Seconds["tracer_event_ring"] = secondsPerOp(obsIters, func() {
		tracer.Emit(obs.Event{Kind: obs.EvBallotOpen, Node: 1, Span: span})
	})
	hists := obs.NewHistograms()
	entry.Seconds["hist_observe"] = secondsPerOp(obsIters, func() {
		hists.Observe(obs.HistBallotRTT, 1e-6, 1234)
	})

	figBench := func(name string, cfg experiment.Config, run func(experiment.Config) (experiment.Figure, error)) error {
		start := time.Now()
		fig, err := run(cfg)
		if err != nil {
			return fmt.Errorf("benchjson %s: %w", name, err)
		}
		if len(fig.Series) == 0 {
			return fmt.Errorf("benchjson %s: figure produced no series", name)
		}
		entry.Seconds[name] = time.Since(start).Seconds()
		return nil
	}
	if err := figBench("fig7_serial", benchSweepConfig(rounds, 1), experiment.Fig7); err != nil {
		return err
	}
	if err := figBench("fig7_parallel", benchSweepConfig(rounds, workers), experiment.Fig7); err != nil {
		return err
	}
	if err := figBench("fig5_parallel", benchSweepConfig(rounds, workers), experiment.Fig5); err != nil {
		return err
	}

	// Allocation throughput under sustained churn: the serial-ballot
	// baseline against the pipelined window and the window plus vote
	// cache. The pipelined_cache_vs_serial ratio is the throughput
	// engine's acceptance number (>= 2x).
	allocCfg := experiment.DefaultAllocThroughput(false)
	for _, v := range experiment.AllocVariants() {
		rate, err := experiment.AllocThroughput(allocCfg, v)
		if err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
		entry.Throughput[v.Name] = rate
	}
	if s := entry.Throughput["alloc_serial"]; s > 0 {
		entry.Speedup["alloc_pipelined_vs_serial"] = entry.Throughput["alloc_pipelined"] / s
		entry.Speedup["alloc_pipelined_cache_vs_serial"] = entry.Throughput["alloc_pipelined_cache"] / s
	}

	// Byzantine robustness sweep: a compact k-grid so the trajectory file
	// records how uniqueness, latency, and recovery degrade as insiders
	// multiply (see DESIGN.md Appendix F).
	byzStart := time.Now()
	byz, err := experiment.ByzantineSweep(benchSweepConfig(rounds, workers), []int{0, 2, 4})
	if err != nil {
		return fmt.Errorf("benchjson byzantine: %w", err)
	}
	entry.Byzantine = byz.Summary
	entry.Seconds["byzantine_sweep"] = time.Since(byzStart).Seconds()

	if p := entry.Seconds["fig7_parallel"]; p > 0 {
		entry.Speedup["fig7_parallel_vs_serial"] = entry.Seconds["fig7_serial"] / p
	}
	if g := entry.Seconds["snapshot200_grid"]; g > 0 {
		entry.Speedup["snapshot200_grid_vs_naive"] = entry.Seconds["snapshot200_naive_seed"] / g
	}

	file.Entries = append(file.Entries, entry)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "# benchjson — appended entry %d to %s (workers=%d, rounds=%d)\n",
		len(file.Entries), path, workers, rounds)
	for _, name := range []string{"snapshot200_grid", "snapshot200_naive_seed", "tracer_event_ring", "hist_observe", "fig5_parallel", "fig7_serial", "fig7_parallel", "byzantine_sweep"} {
		fmt.Fprintf(out, "%-26s %12.6fs\n", name, entry.Seconds[name])
	}
	for _, v := range experiment.AllocVariants() {
		fmt.Fprintf(out, "%-32s %6.2f allocs/simsec\n", v.Name, entry.Throughput[v.Name])
	}
	for _, name := range []string{
		"fig7_parallel_vs_serial",
		"snapshot200_grid_vs_naive",
		"alloc_pipelined_vs_serial",
		"alloc_pipelined_cache_vs_serial",
	} {
		fmt.Fprintf(out, "%-32s %5.2fx\n", name, entry.Speedup[name])
	}
	return nil
}
