// Command quorumsim regenerates the data behind any table or figure of
// the paper's evaluation (§VI).
//
// Usage:
//
//	quorumsim -fig 5                 # one figure
//	quorumsim -fig all               # figures 5..14
//	quorumsim -fig table1            # Table 1 message trace
//	quorumsim -fig 4 -nodes 100      # Figure 4 layout
//	quorumsim -fig ablations         # design-choice ablation studies
//	quorumsim -fig 5 -rounds 50      # more rounds per data point
//	quorumsim -fig all -parallel 8   # sweep rounds on an 8-worker pool
//	quorumsim -benchjson BENCH_sweeps.json   # append a benchmark entry
//
// Output is a plain text table per figure: one row per x value, one column
// per series — directly consumable by gnuplot or a spreadsheet. Results
// are bit-identical for every -parallel value, including the default.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"quorumconf/internal/experiment"
	"quorumconf/internal/obs"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0) // -h is a successful interaction, not a failure
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("quorumsim", flag.ContinueOnError)
	figFlag := fs.String("fig", "all", "figure to regenerate: 4..14, table1, all, ablations, loss, byzantine")
	format := fs.String("format", "table", "output format: table or csv")
	rounds := fs.Int("rounds", 3, "simulation rounds per data point (paper: 1000)")
	seed := fs.Int64("seed", 1, "base random seed")
	nodes := fs.Int("nodes", 100, "node count for -fig 4 layouts")
	arrival := fs.Duration("arrival", 2*time.Second, "interval between node arrivals")
	parallel := fs.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	benchjson := fs.String("benchjson", "", "run the benchmark suite and append an entry to this JSON trajectory file")
	traceOut := fs.String("trace", "", "write structured protocol events to this JSONL file (use -parallel 1 for a causally ordered stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (want table or csv)", *format)
	}
	if *rounds < 1 {
		return fmt.Errorf("-rounds %d: need at least one round", *rounds)
	}
	if *nodes < 1 {
		return fmt.Errorf("-nodes %d: need at least one node", *nodes)
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel %d: worker count cannot be negative", *parallel)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Fail on an unwritable path up front, not after minutes of sweeps.
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "quorumsim: -memprofile:", err)
			}
			f.Close()
		}()
	}
	if *benchjson != "" {
		return runBenchJSON(*benchjson, *rounds, *parallel, out)
	}
	cfg := experiment.Config{
		Rounds:          *rounds,
		BaseSeed:        *seed,
		ArrivalInterval: *arrival,
		Workers:         *parallel,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		sink := obs.NewJSONLWriter(f)
		// Events are pre-stamped with virtual sim time by each runtime, so
		// the tracer's own clock stays at zero.
		cfg.Tracer = obs.NewTracer(func() time.Duration { return 0 }, sink)
		defer func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "quorumsim: -trace:", err)
			}
			f.Close()
		}()
	}
	render := func(f experiment.Figure) string {
		if *format == "csv" {
			return f.CSV()
		}
		return f.String()
	}

	switch strings.ToLower(*figFlag) {
	case "table1", "t1":
		events, err := experiment.Table1Trace()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatTrace(events))
		return nil
	case "4", "fig4", "layout":
		layout, err := experiment.GenerateLayout(cfg, *nodes, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, layout.String())
		return nil
	case "all":
		figs, err := experiment.All(cfg)
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Fprintln(out, render(f))
		}
		return nil
	case "ablations", "ablation":
		figs, err := experiment.Ablations(cfg)
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Fprintln(out, render(f))
		}
		return nil
	case "loss", "ext-loss":
		f, err := experiment.ExtensionLossTolerance(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, render(f))
		return nil
	case "byzantine", "byz":
		res, err := experiment.ByzantineSweep(cfg, nil)
		if err != nil {
			return err
		}
		for _, f := range res.Figures {
			fmt.Fprintln(out, render(f))
		}
		return nil
	}

	runners := map[string]func(experiment.Config) (experiment.Figure, error){
		"5": experiment.Fig5, "6": experiment.Fig6, "7": experiment.Fig7,
		"8": experiment.Fig8, "9": experiment.Fig9, "10": experiment.Fig10,
		"11": experiment.Fig11, "12": experiment.Fig12, "13": experiment.Fig13,
		"14": experiment.Fig14,
	}
	key := strings.TrimPrefix(strings.ToLower(*figFlag), "fig")
	runner, ok := runners[key]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 4..14, table1, all, ablations)", *figFlag)
	}
	f, err := runner(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, render(f))
	return nil
}
