package main

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CH_REQ", "QUORUM_CLT", "CH_ACK"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestRunLayout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "4", "-nodes", "30", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fig4") || !strings.Contains(b.String(), "head") {
		t.Errorf("layout output wrong:\n%.200s", b.String())
	}
}

func TestRunSingleFigureCSV(t *testing.T) {
	var b strings.Builder
	// Tiny but real: fig11 sweeps speeds at nn=150; use fig5 with 1 round
	// would still run 4 sizes... fig 12 at default MidSize is heavy too.
	// The cheapest real figure at default config is fig5 with 1 round.
	if err := run([]string{"-fig", "5", "-rounds", "1", "-format", "csv"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "nodes,quorum,manetconf") {
		t.Errorf("CSV header missing:\n%.200s", out)
	}
	if !strings.Contains(out, "# fig5") {
		t.Error("CSV comment header missing")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "99"}, &b); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "bogus"}, &b); err == nil {
		t.Error("bogus figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}
