package main

import (
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CH_REQ", "QUORUM_CLT", "CH_ACK"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestRunLayout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "4", "-nodes", "30", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fig4") || !strings.Contains(b.String(), "head") {
		t.Errorf("layout output wrong:\n%.200s", b.String())
	}
}

func TestRunSingleFigureCSV(t *testing.T) {
	var b strings.Builder
	// Tiny but real: fig11 sweeps speeds at nn=150; use fig5 with 1 round
	// would still run 4 sizes... fig 12 at default MidSize is heavy too.
	// The cheapest real figure at default config is fig5 with 1 round.
	if err := run([]string{"-fig", "5", "-rounds", "1", "-format", "csv"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "nodes,quorum,manetconf") {
		t.Errorf("CSV header missing:\n%.200s", out)
	}
	if !strings.Contains(out, "# fig5") {
		t.Error("CSV comment header missing")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "99"}, &b); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "bogus"}, &b); err == nil {
		t.Error("bogus figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRejectsBadOptionValues(t *testing.T) {
	cases := [][]string{
		{"-format", "yaml"},
		{"-rounds", "0"},
		{"-rounds", "-3"},
		{"-nodes", "0"},
		{"-fig", "5", "stray-positional"},
		{"-parallel", "-2"},
		{"-cpuprofile", "/no/such/dir/prof.out", "-fig", "table1"},
		{"-memprofile", "/no/such/dir/prof.out", "-fig", "table1"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunProfilesAndParallel exercises the happy path of the pprof and
// worker-pool flags together: a tiny figure run must leave non-empty
// profile files behind.
func TestRunProfilesAndParallel(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var b strings.Builder
	args := []string{"-fig", "5", "-rounds", "1", "-parallel", "4", "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunBenchJSON smoke-tests the trajectory emitter: two runs append two
// entries, and each entry records the numbers the regression harness keys
// on (snapshot grid-vs-naive, fig7 serial-vs-parallel).
func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweeps.json")
	for want := 1; want <= 2; want++ {
		var b strings.Builder
		if err := run([]string{"-benchjson", path, "-rounds", "1", "-parallel", "2"}, &b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "snapshot200_grid") {
			t.Errorf("benchjson summary missing snapshot line:\n%s", b.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var file benchFile
		if err := json.Unmarshal(data, &file); err != nil {
			t.Fatalf("trajectory file is not valid JSON: %v\n%s", err, data)
		}
		if len(file.Entries) != want {
			t.Fatalf("got %d entries, want %d", len(file.Entries), want)
		}
		e := file.Entries[want-1]
		for _, k := range []string{"snapshot200_grid", "snapshot200_naive_seed", "fig5_parallel", "fig7_serial", "fig7_parallel"} {
			if e.Seconds[k] <= 0 {
				t.Errorf("entry %d: %s = %v, want > 0", want, k, e.Seconds[k])
			}
		}
		if e.Workers != 2 {
			t.Errorf("entry records workers=%d, want 2", e.Workers)
		}
	}
	// A corrupt trajectory file must be reported, not clobbered.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-benchjson", bad, "-rounds", "1"}, &b); err == nil {
		t.Error("corrupt trajectory file accepted")
	}
}

// TestHelpIsErrHelp pins the contract main relies on to exit 0 for -h while
// every real error path exits 1.
func TestHelpIsErrHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("run(-h) = %v, want flag.ErrHelp", err)
	}
	if err := run([]string{"-fig", "99"}, &b); err == nil || errors.Is(err, flag.ErrHelp) {
		t.Errorf("run(bad fig) = %v, want a non-help error", err)
	}
}

// TestMainExitCodes runs the built binary end to end: -h exits zero, bad
// flags and bad figures exit non-zero.
func TestMainExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "quorumsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-h"}, 0},
		{[]string{"-fig", "table1"}, 0},
		{[]string{"-fig", "99"}, 1},
		{[]string{"-format", "yaml"}, 1},
		{[]string{"-nope"}, 1},
		{[]string{"-rounds", "0"}, 1},
	}
	for _, c := range cases {
		cmd := exec.Command(bin, c.args...)
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		err := cmd.Run()
		got := 0
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			got = exit.ExitCode()
		} else if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if got != c.want {
			t.Errorf("quorumsim %v exited %d, want %d", c.args, got, c.want)
		}
	}
}
