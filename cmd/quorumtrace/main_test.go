package main

import (
	"strings"
	"testing"

	"quorumconf/internal/obs"
)

func TestReadEventsAndFormatSpans(t *testing.T) {
	span := obs.MintSpan(3, 1)
	jsonl := strings.Join([]string{
		`{"seq":1,"time_us":100,"kind":"alloc_request","node":3,"peer":1,"span":"` + obs.FormatSpan(span) + `","detail":"forward"}`,
		`{"seq":2,"time_us":350,"kind":"ballot_open","node":1,"addr":"0.0.0.7","span":"` + obs.FormatSpan(span) + `"}`,
		`{"seq":3,"time_us":900,"kind":"ballot_commit","node":1,"addr":"0.0.0.7","span":"` + obs.FormatSpan(span) + `"}`,
		`{"seq":4,"time_us":1400,"kind":"alloc_grant","node":3,"addr":"0.0.0.7","span":"` + obs.FormatSpan(span) + `"}`,
		`{"seq":5,"time_us":2000,"kind":"node_arrived","node":9}`, // spanless: dropped
		"",
	}, "\n")

	events, err := readEvents(strings.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("read %d events, want 5", len(events))
	}
	spans := obs.BuildSpans(events)
	if len(spans) != 1 {
		t.Fatalf("built %d spans, want 1", len(spans))
	}
	if got := len(spans[0].Hops); got != 4 {
		t.Fatalf("span has %d hops, want 4", got)
	}

	out := formatSpans(spans)
	for _, want := range []string{
		"span " + obs.FormatSpan(span),
		"origin=node 3",
		"alloc_request",
		"ballot_open",
		"ballot_commit",
		"alloc_grant",
		"duration=+1.3ms",
		"(forward)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Hop durations: 350-100=250µs, then 550µs, then 500µs.
	if !strings.Contains(out, "+250µs") || !strings.Contains(out, "+550µs") {
		t.Errorf("per-hop durations missing:\n%s", out)
	}
}

func TestReadEventsRejectsMalformedLine(t *testing.T) {
	_, err := readEvents(strings.NewReader("{\"seq\":1,\"time_us\":1,\"kind\":\"node_arrived\",\"node\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 decode error, got %v", err)
	}
}

func TestFormatSpansEmpty(t *testing.T) {
	if got := formatSpans(nil); got != "no spanned events\n" {
		t.Fatalf("empty render = %q", got)
	}
}

func TestFmtMicros(t *testing.T) {
	cases := map[int64]string{
		0:    "+0µs",
		999:  "+999µs",
		1000: "+1.0ms",
		2500: "+2.5ms",
		-5:   "-5µs",
	}
	for in, want := range cases {
		if got := fmtMicros(in); got != want {
			t.Errorf("fmtMicros(%d) = %q, want %q", in, got, want)
		}
	}
}
