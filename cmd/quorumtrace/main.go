// Command quorumtrace renders protocol traces for humans.
//
// With no arguments it prints the paper's Table 1: the full message
// exchange, in delivery order, that configures a new cluster head —
// CH_REQ, CH_PRP, CH_CNF, the QUORUM_CLT/QUORUM_CFM vote collection with
// the allocator's adjacent heads, CH_CFG and CH_ACK, followed by the new
// head's replica distribution.
//
// The spans subcommand reconstructs causal timelines instead: it reads an
// obs JSONL event stream (quorumsim -trace output, or a /v1/trace ring
// dumped one event per line), groups events by their span identifier, and
// prints each allocation/reclamation/join as an ordered hop list with
// per-hop durations:
//
//	quorumtrace spans -in events.jsonl
//	quorumsim -trace /dev/stdout | quorumtrace spans
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"quorumconf/internal/experiment"
	"quorumconf/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "spans" {
		os.Exit(runSpans(os.Args[2:]))
	}
	events, err := experiment.Table1Trace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumtrace:", err)
		os.Exit(1)
	}
	fmt.Print(experiment.FormatTrace(events))
}

// runSpans implements `quorumtrace spans`: decode JSONL events, stitch
// them into span timelines, render.
func runSpans(args []string) int {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	in := fs.String("in", "", "JSONL event file to read (default stdin)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quorumtrace:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	events, err := readEvents(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumtrace:", err)
		return 1
	}
	fmt.Print(formatSpans(obs.BuildSpans(events)))
	return 0
}

// readEvents decodes one obs.Event per non-empty line. A malformed line
// fails the whole read — a truncated dump should be loud, not quietly
// missing its tail.
func readEvents(r io.Reader) ([]obs.Event, error) {
	var events []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// formatSpans renders each timeline as a header plus one indented line per
// hop, with the elapsed time since the previous hop on the left margin.
func formatSpans(spans []obs.SpanTimeline) string {
	if len(spans) == 0 {
		return "no spanned events\n"
	}
	var b strings.Builder
	for i, tl := range spans {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "span %s  origin=node %d  hops=%d  duration=%s\n",
			obs.FormatSpan(tl.Span), int(tl.Origin()), len(tl.Hops), fmtMicros(tl.Duration()))
		for j, hop := range tl.Hops {
			e := hop.Event
			lead := " " + fmtMicros(hop.SincePrev)
			if j == 0 {
				lead = " start"
			}
			fmt.Fprintf(&b, "  %-10s %-16s node=%d", lead, e.Kind, int(e.Node))
			if e.Peer != 0 {
				fmt.Fprintf(&b, " peer=%d", int(e.Peer))
			}
			if e.Addr != 0 {
				fmt.Fprintf(&b, " addr=%v", e.Addr)
			}
			if e.Detail != "" {
				fmt.Fprintf(&b, " (%s)", e.Detail)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// fmtMicros renders a microsecond count compactly (µs below 1ms, ms
// above).
func fmtMicros(us int64) string {
	if us < 0 {
		return fmt.Sprintf("%dµs", us)
	}
	if us < 1000 {
		return fmt.Sprintf("+%dµs", us)
	}
	return fmt.Sprintf("+%.1fms", float64(us)/1000)
}
