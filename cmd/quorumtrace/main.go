// Command quorumtrace prints the paper's Table 1: the full message
// exchange, in delivery order, that configures a new cluster head —
// CH_REQ, CH_PRP, CH_CNF, the QUORUM_CLT/QUORUM_CFM vote collection with
// the allocator's adjacent heads, CH_CFG and CH_ACK, followed by the new
// head's replica distribution.
package main

import (
	"fmt"
	"os"

	"quorumconf/internal/experiment"
)

func main() {
	events, err := experiment.Table1Trace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumtrace:", err)
		os.Exit(1)
	}
	fmt.Print(experiment.FormatTrace(events))
}
