package quorumconf

// This file re-exports the observability surface: the structured event
// tracer (internal/obs), its sinks, and the functional options that attach
// it to a runtime. See DESIGN.md Appendix C for the event schema and its
// stability guarantees.

import (
	"io"

	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
)

// Structured tracing.
type (
	// Tracer stamps and fans protocol events out to sinks. A nil *Tracer
	// is a valid no-op tracer.
	Tracer = obs.Tracer
	// TracerEvent is one observed protocol transition.
	TracerEvent = obs.Event
	// EventKind identifies what a TracerEvent records.
	EventKind = obs.EventKind
	// TraceSink receives every emitted event.
	TraceSink = obs.Sink
	// TraceRing is a bounded in-memory sink of recent events.
	TraceRing = obs.Ring
	// TraceClock supplies event timestamps.
	TraceClock = obs.Clock
	// RuntimeOption configures New.
	RuntimeOption = protocol.Option
)

// Event kinds (append-only; see DESIGN.md Appendix C).
const (
	EvNodeArrived     = obs.EvNodeArrived
	EvNodeConfigured  = obs.EvNodeConfigured
	EvNodeDeparted    = obs.EvNodeDeparted
	EvHeadElected     = obs.EvHeadElected
	EvHeadResigned    = obs.EvHeadResigned
	EvBallotOpen      = obs.EvBallotOpen
	EvBallotVote      = obs.EvBallotVote
	EvBallotCommit    = obs.EvBallotCommit
	EvBallotAbort     = obs.EvBallotAbort
	EvReplicaSync     = obs.EvReplicaSync
	EvReplicaAdopt    = obs.EvReplicaAdopt
	EvPeerSuspect     = obs.EvPeerSuspect
	EvPeerDead        = obs.EvPeerDead
	EvReclaimStart    = obs.EvReclaimStart
	EvReclaimDefend   = obs.EvReclaimDefend
	EvReclaimFree     = obs.EvReclaimFree
	EvQuorumShrink    = obs.EvQuorumShrink
	EvQuorumProbe     = obs.EvQuorumProbe
	EvQuorumRecruit   = obs.EvQuorumRecruit
	EvPartitionMerge  = obs.EvPartitionMerge
	EvIsolatedRestart = obs.EvIsolatedRestart
	EvTransportSend   = obs.EvTransportSend
	EvTransportRetry  = obs.EvTransportRetry
	EvTransportDrop   = obs.EvTransportDrop
	EvTransportDedup  = obs.EvTransportDedup
	EvDaemonStart     = obs.EvDaemonStart
	EvDaemonStop      = obs.EvDaemonStop
)

// NewTracer returns a tracer writing to sinks. A nil clock timestamps
// events with wall time since tracer creation; runtimes built with
// WithTracer stamp virtual time instead.
func NewTracer(clock TraceClock, sinks ...TraceSink) *Tracer {
	return obs.NewTracer(clock, sinks...)
}

// NewTraceRing returns a bounded sink keeping the last capacity events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewJSONLWriter returns a sink streaming events as JSON lines to w.
func NewJSONLWriter(w io.Writer) *obs.JSONLWriter { return obs.NewJSONLWriter(w) }

// NewCollectorBridge returns a sink folding events into per-kind counters
// ("obs.<kind>") of a metrics collector.
func NewCollectorBridge(c obs.Counter) *obs.CollectorBridge { return obs.NewCollectorBridge(c) }

// Runtime options for New.
var (
	// WithSeed sets the seed driving every random choice in the run.
	WithSeed = protocol.WithSeed
	// WithTransmissionRange sets tr in meters.
	WithTransmissionRange = protocol.WithTransmissionRange
	// WithPerHopDelay sets the one-hop transmission latency.
	WithPerHopDelay = protocol.WithPerHopDelay
	// WithTracer attaches a structured event tracer to the runtime.
	WithTracer = protocol.WithTracer
	// WithCollector substitutes the runtime's metrics collector.
	WithCollector = protocol.WithCollector
	// WithClock overrides the event timestamp source.
	WithClock = protocol.WithClock
)
