package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var c Collector
	c.AddTraffic(CatConfig, 3)
	if c.Hops(CatConfig) != 3 {
		t.Fatalf("Hops = %d, want 3", c.Hops(CatConfig))
	}
	if c.Messages(CatConfig) != 1 {
		t.Fatalf("Messages = %d, want 1", c.Messages(CatConfig))
	}
}

func TestAddTrafficAccumulates(t *testing.T) {
	c := New()
	c.AddTraffic(CatMovement, 2)
	c.AddTraffic(CatMovement, 5)
	c.AddTraffic(CatDeparture, 1)
	if got := c.Hops(CatMovement); got != 7 {
		t.Errorf("movement hops = %d, want 7", got)
	}
	if got := c.Messages(CatMovement); got != 2 {
		t.Errorf("movement msgs = %d, want 2", got)
	}
	if got := c.Hops(CatDeparture); got != 1 {
		t.Errorf("departure hops = %d, want 1", got)
	}
}

func TestAddTransmissionsIsOneMessage(t *testing.T) {
	c := New()
	c.AddTransmissions(CatReclamation, 50)
	if c.Messages(CatReclamation) != 1 {
		t.Errorf("flood recorded as %d messages, want 1", c.Messages(CatReclamation))
	}
	if c.Hops(CatReclamation) != 50 {
		t.Errorf("flood hops = %d, want 50", c.Hops(CatReclamation))
	}
}

func TestTotalHopsExcludesHelloByDefault(t *testing.T) {
	c := New()
	c.AddTraffic(CatConfig, 10)
	c.AddTraffic(CatHello, 1000)
	c.AddTraffic(CatSync, 5)
	if got := c.TotalHops(); got != 15 {
		t.Errorf("TotalHops() = %d, want 15 (hello excluded)", got)
	}
	if got := c.TotalHops(CatHello); got != 1000 {
		t.Errorf("TotalHops(hello) = %d, want 1000", got)
	}
	if got := c.TotalHops(CatConfig, CatSync); got != 15 {
		t.Errorf("TotalHops(config,sync) = %d, want 15", got)
	}
}

func TestNamedCounters(t *testing.T) {
	c := New()
	c.Inc("configured")
	c.Inc("configured")
	c.Add("retries", 5)
	if c.Counter("configured") != 2 {
		t.Errorf("configured = %d, want 2", c.Counter("configured"))
	}
	if c.Counter("retries") != 5 {
		t.Errorf("retries = %d, want 5", c.Counter("retries"))
	}
	if c.Counter("never") != 0 {
		t.Errorf("untouched counter = %d, want 0", c.Counter("never"))
	}
}

func TestSummarize(t *testing.T) {
	c := New()
	for _, v := range []float64{4, 1, 3, 2, 5} {
		c.Observe("lat", v)
	}
	s := c.Summarize("lat")
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min,Max = %v,%v, want 1,5", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	c := New()
	s := c.Summarize("missing")
	if s.Count != 0 {
		t.Errorf("Count = %d, want 0", s.Count)
	}
}

func TestSummarizeSingle(t *testing.T) {
	c := New()
	c.Observe("one", 7)
	s := c.Summarize("one")
	if s.Mean != 7 || s.P50 != 7 || s.P95 != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single-sample summary = %+v, want all 7", s)
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	c := New()
	c.Observe("s", 1)
	got := c.Samples("s")
	got[0] = 99
	if c.Samples("s")[0] != 1 {
		t.Error("Samples returned a live reference, want a copy")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.AddTraffic(CatConfig, 2)
	a.Observe("lat", 1)
	a.Inc("n")
	b.AddTraffic(CatConfig, 3)
	b.AddTraffic(CatHello, 7)
	b.Observe("lat", 5)
	b.Inc("n")
	a.Merge(b)
	if a.Hops(CatConfig) != 5 {
		t.Errorf("merged config hops = %d, want 5", a.Hops(CatConfig))
	}
	if a.Hops(CatHello) != 7 {
		t.Errorf("merged hello hops = %d, want 7", a.Hops(CatHello))
	}
	if a.Counter("n") != 2 {
		t.Errorf("merged counter = %d, want 2", a.Counter("n"))
	}
	if got := a.Summarize("lat"); got.Count != 2 || got.Mean != 3 {
		t.Errorf("merged samples = %+v, want Count 2 Mean 3", got)
	}
}

func TestMergeNilIsNoop(t *testing.T) {
	a := New()
	a.AddTraffic(CatConfig, 1)
	a.Merge(nil)
	if a.Hops(CatConfig) != 1 {
		t.Error("Merge(nil) altered collector")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.AddTraffic(CatConfig, 4)
	c.Observe("x", 1)
	c.Reset()
	if c.Hops(CatConfig) != 0 || c.Summarize("x").Count != 0 {
		t.Error("Reset did not clear state")
	}
	c.AddTraffic(CatConfig, 1)
	if c.Hops(CatConfig) != 1 {
		t.Error("collector unusable after Reset")
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		CatConfig:      "config",
		CatMovement:    "movement",
		CatDeparture:   "departure",
		CatReclamation: "reclamation",
		CatSync:        "sync",
		CatHello:       "hello",
		CatPartition:   "partition",
	}
	for cat, want := range cases {
		if got := cat.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(cat), got, want)
		}
	}
	if got := Category(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown category String() = %q", got)
	}
}

func TestCategoriesComplete(t *testing.T) {
	cats := Categories()
	if len(cats) != 7 {
		t.Fatalf("Categories() has %d entries, want 7", len(cats))
	}
	seen := map[Category]bool{}
	for _, c := range cats {
		if seen[c] {
			t.Errorf("duplicate category %v", c)
		}
		seen[c] = true
	}
}

func TestStringStable(t *testing.T) {
	c := New()
	c.AddTraffic(CatConfig, 2)
	c.Inc("b")
	c.Inc("a")
	s1, s2 := c.String(), c.String()
	if s1 != s2 {
		t.Error("String() not stable across calls")
	}
	if !strings.Contains(s1, "config: 1 msgs / 2 hops") {
		t.Errorf("String() = %q, missing config line", s1)
	}
	ai, bi := strings.Index(s1, "a: "), strings.Index(s1, "b: ")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("counters not sorted in %q", s1)
	}
}

// Property: mean of Summarize lies within [Min, Max] and P50 within the
// same bounds for any non-empty series.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		c := New()
		for _, v := range vals {
			c.Observe("p", float64(v))
		}
		s := c.Summarize("p")
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Min <= s.P95 && s.P95 <= s.Max &&
			s.Count == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is additive on hops for every category.
func TestPropertyMergeAdditive(t *testing.T) {
	f := func(a, b []uint8) bool {
		ca, cb := New(), New()
		var sa, sb int64
		for _, v := range a {
			ca.AddTraffic(CatConfig, int(v))
			sa += int64(v)
		}
		for _, v := range b {
			cb.AddTraffic(CatConfig, int(v))
			sb += int64(v)
		}
		ca.Merge(cb)
		return ca.Hops(CatConfig) == sa+sb && ca.Messages(CatConfig) == int64(len(a)+len(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
