package metrics

import "sync"

// SyncCollector is a mutex-guarded Collector for components that record
// from multiple goroutines — the real transports and the quorumd daemon.
// The simulation stack keeps using the bare Collector (single-threaded
// event loop, no locking cost).
type SyncCollector struct {
	mu sync.Mutex
	c  *Collector
}

// NewSync returns an empty thread-safe collector.
func NewSync() *SyncCollector { return &SyncCollector{c: New()} }

// Inc increments a named counter by one.
func (s *SyncCollector) Inc(name string) { s.Add(name, 1) }

// Add increments a named counter by delta.
func (s *SyncCollector) Add(name string, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Add(name, delta)
}

// Counter returns the value of a named counter.
func (s *SyncCollector) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Counter(name)
}

// AddTraffic records one message of the given category over hops hops.
func (s *SyncCollector) AddTraffic(cat Category, hops int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.AddTraffic(cat, hops)
}

// Observe appends one value to a named sample series.
func (s *SyncCollector) Observe(name string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Observe(name, v)
}

// Snapshot returns an independent copy of the current state, safe to read
// without further synchronization.
func (s *SyncCollector) Snapshot() *Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := New()
	out.Merge(s.c)
	return out
}
