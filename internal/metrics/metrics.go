// Package metrics accumulates the cost and latency measurements the paper
// reports: message counts and hop counts per traffic category, plus named
// sample series (for example per-configuration latency in hops).
//
// The collector is used from the single-threaded simulation loop and is not
// safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Category classifies protocol traffic the way the paper's figures slice it.
type Category int

// Traffic categories. Hello beacons are kept separate so figures can
// include or exclude the beaconing baseline (see DESIGN.md §6).
const (
	CatConfig      Category = iota + 1 // address configuration exchanges
	CatMovement                        // location updates driven by mobility
	CatDeparture                       // graceful departure exchanges
	CatReclamation                     // address reclamation exchanges
	CatSync                            // periodic state synchronization (baselines)
	CatHello                           // hello beacons
	CatPartition                       // partition/merge handling
	numCategories
)

var categoryNames = map[Category]string{
	CatConfig:      "config",
	CatMovement:    "movement",
	CatDeparture:   "departure",
	CatReclamation: "reclamation",
	CatSync:        "sync",
	CatHello:       "hello",
	CatPartition:   "partition",
}

// String returns the category's lower-case name.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Categories returns all defined categories in declaration order.
func Categories() []Category {
	cats := make([]Category, 0, int(numCategories)-1)
	for c := CatConfig; c < numCategories; c++ {
		cats = append(cats, c)
	}
	return cats
}

// Collector accumulates counters and samples for one simulation run.
// The zero value is ready to use.
type Collector struct {
	hops     map[Category]int64
	messages map[Category]int64
	counters map[string]int64
	samples  map[string][]float64
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

func (c *Collector) ensure() {
	if c.hops == nil {
		c.hops = make(map[Category]int64)
		c.messages = make(map[Category]int64)
		c.counters = make(map[string]int64)
		c.samples = make(map[string][]float64)
	}
}

// AddTraffic records one message of the given category that traversed hops
// wireless hops.
func (c *Collector) AddTraffic(cat Category, hops int) {
	c.ensure()
	c.hops[cat] += int64(hops)
	c.messages[cat]++
}

// AddTransmissions records n link-layer transmissions (for floods, where
// every node in the component rebroadcasts once) under one logical message.
func (c *Collector) AddTransmissions(cat Category, n int) {
	c.ensure()
	c.hops[cat] += int64(n)
	c.messages[cat]++
}

// Hops returns the accumulated hop count for a category.
func (c *Collector) Hops(cat Category) int64 { return c.hops[cat] }

// Messages returns the number of logical messages recorded for a category.
func (c *Collector) Messages(cat Category) int64 { return c.messages[cat] }

// TotalHops sums hop counts over the given categories; with no arguments it
// sums every category except hello beacons (the paper's overhead figures
// exclude the beacon baseline).
func (c *Collector) TotalHops(cats ...Category) int64 {
	if len(cats) == 0 {
		for _, cat := range Categories() {
			if cat != CatHello {
				cats = append(cats, cat)
			}
		}
	}
	var sum int64
	for _, cat := range cats {
		sum += c.hops[cat]
	}
	return sum
}

// Inc increments a named counter by one.
func (c *Collector) Inc(name string) { c.Add(name, 1) }

// Add increments a named counter by delta.
func (c *Collector) Add(name string, delta int64) {
	c.ensure()
	c.counters[name] += delta
}

// Counter returns the value of a named counter (zero if never touched).
func (c *Collector) Counter(name string) int64 { return c.counters[name] }

// Observe appends one value to a named sample series.
func (c *Collector) Observe(name string, v float64) {
	c.ensure()
	c.samples[name] = append(c.samples[name], v)
}

// Samples returns a copy of the named sample series.
func (c *Collector) Samples(name string) []float64 {
	s := c.samples[name]
	out := make([]float64, len(s))
	copy(out, s)
	return out
}

// Counters returns a copy of all named counters.
func (c *Collector) Counters() map[string]int64 {
	out := make(map[string]int64, len(c.counters))
	for n, v := range c.counters {
		out[n] = v
	}
	return out
}

// Summary describes a sample series.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95       float64
}

// Summarize computes summary statistics for the named series. A series with
// no observations yields a zero Summary with Count 0.
func (c *Collector) Summarize(name string) Summary {
	s := c.samples[name]
	if len(s) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(s))
	copy(sorted, s)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantile(sorted, 0.50),
		P95:   quantile(sorted, 0.95),
	}
}

// quantile returns the q-quantile of an ascending-sorted slice using linear
// interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Merge adds every counter, hop count and sample from other into c.
// Useful for aggregating repeated simulation rounds.
func (c *Collector) Merge(other *Collector) {
	if other == nil {
		return
	}
	c.ensure()
	for cat, v := range other.hops {
		c.hops[cat] += v
	}
	for cat, v := range other.messages {
		c.messages[cat] += v
	}
	for name, v := range other.counters {
		c.counters[name] += v
	}
	for name, s := range other.samples {
		c.samples[name] = append(c.samples[name], s...)
	}
}

// Reset clears all recorded data.
func (c *Collector) Reset() {
	c.hops = nil
	c.messages = nil
	c.counters = nil
	c.samples = nil
}

// String renders a compact human-readable dump, stable across runs.
func (c *Collector) String() string {
	var b strings.Builder
	for _, cat := range Categories() {
		if c.messages[cat] == 0 && c.hops[cat] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: %d msgs / %d hops\n", cat, c.messages[cat], c.hops[cat])
	}
	names := make([]string, 0, len(c.counters))
	for n := range c.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s: %d\n", n, c.counters[n])
	}
	return b.String()
}
