package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded in-memory sink keeping the most recent events. It is
// what quorumd serves from /v1/trace: cheap enough to leave always on,
// bounded so a long-lived daemon cannot grow without limit.
//
// Ring has its own lock (rather than relying on the tracer's) because
// Snapshot is called from HTTP handler goroutines while the owning tracer
// keeps recording.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int  // index of the slot the next event lands in
	full bool // buf has wrapped at least once
}

// DefaultRingSize bounds the always-on daemon ring.
const DefaultRingSize = 1024

// NewRing returns a ring keeping the last capacity events (capacity <= 0
// means DefaultRingSize).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSONLWriter streams events as one JSON object per line (the quorumsim
// -trace format). Writes are buffered; call Flush (or Close) before the
// file is read. Safe for concurrent Record calls from multiple tracers —
// parallel sweep rounds share one writer.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a line-oriented event sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Record implements Sink. The first encode error is retained (see Err) and
// subsequent events are dropped; a tracing sink must never take down the
// run it observes.
func (w *JSONLWriter) Record(e Event) {
	w.mu.Lock()
	if w.err == nil {
		w.err = w.enc.Encode(e)
	}
	w.mu.Unlock()
}

// Flush forces buffered lines out and returns the first error seen.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Err returns the first write or encode error, if any.
func (w *JSONLWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Counter is the slice of metrics.Collector (or SyncCollector) the bridge
// needs: named monotone counters.
type Counter interface {
	Inc(name string)
}

// CollectorBridge folds the event stream into a metrics collector as
// per-kind counters named "obs.<kind>", so existing Summarize/Merge
// tooling and the daemon's metrics endpoints see event totals without a
// second aggregation path.
type CollectorBridge struct {
	c Counter
}

// NewCollectorBridge returns a sink incrementing c's "obs.<kind>" counters.
func NewCollectorBridge(c Counter) *CollectorBridge {
	return &CollectorBridge{c: c}
}

// Record implements Sink.
func (b *CollectorBridge) Record(e Event) {
	if b.c == nil {
		return
	}
	if e.Kind > 0 && e.Kind < numEventKinds {
		b.c.Inc(counterNames[e.Kind])
		return
	}
	b.c.Inc("obs.unknown")
}

// counterNames pre-joins the "obs.<kind>" counter names so Record does not
// allocate per event.
var counterNames = func() [numEventKinds]string {
	var names [numEventKinds]string
	for k := EventKind(1); k < numEventKinds; k++ {
		names[k] = "obs." + k.String()
	}
	return names
}()
