// Package obs is the structured observability layer: a typed, low-overhead
// event tracer with a stable schema and pluggable sinks.
//
// The protocol's correctness story hinges on internal transitions that are
// invisible from the outside — ballot open/vote/commit, quorum shrink and
// re-grow, address reclamation, partition merge. Package obs turns those
// transitions into a typed event stream that can be captured in a bounded
// ring (served by quorumd's /v1/trace), written as JSONL (quorumsim -trace),
// or folded into a metrics.Collector.
//
// # Cost model
//
// A nil *Tracer is valid and free: Emit on a nil receiver returns
// immediately, so instrumented code paths never branch on configuration.
// Call sites build an Event literal on the stack and call Emit; with no
// tracer attached the whole sequence is a struct fill plus one predictable
// branch (see BenchmarkTracerDisabled in internal/core).
//
// # Schema stability
//
// The Event field set and the EventKind string names are append-only: new
// kinds and new fields may appear in later versions, but existing names and
// meanings do not change. See DESIGN.md Appendix C.
package obs

import (
	"sync"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

// EventKind identifies what happened. The numeric values are internal;
// external consumers should rely on the string names, which are stable.
type EventKind uint8

// Event kinds, grouped by protocol phase. The list is append-only.
const (
	// Node lifecycle.
	EvNodeArrived EventKind = iota + 1
	EvNodeConfigured
	EvNodeDeparted

	// Cluster-head election.
	EvHeadElected
	EvHeadResigned

	// Quorum ballot phases (address allocation and common ballots).
	EvBallotOpen
	EvBallotVote
	EvBallotCommit
	EvBallotAbort

	// Replica (QDSet) synchronization.
	EvReplicaSync
	EvReplicaAdopt

	// Failure detection and address reclamation.
	EvPeerSuspect
	EvPeerDead
	EvReclaimStart
	EvReclaimDefend
	EvReclaimFree

	// Quorum adjustment (shrink on Td, probe on REP_REQ, re-grow).
	EvQuorumShrink
	EvQuorumProbe
	EvQuorumRecruit

	// Partition handling.
	EvPartitionMerge
	EvIsolatedRestart

	// Transport (real sockets): ARQ send/retry/drop and receive dedup.
	EvTransportSend
	EvTransportRetry
	EvTransportDrop
	EvTransportDedup

	// Daemon lifecycle.
	EvDaemonStart
	EvDaemonStop

	// Replica health monitoring (internal/health): periodic replication
	// factor checks and the proactive re-replication arc.
	EvHealthCheck
	EvReplicaUnderreplicated
	EvReplicaRestored

	// Allocation throughput engine: concurrent ballots in one cluster
	// head's in-flight window, transport frame coalescing, and the
	// allocator-side vote cache.
	EvBallotPipelined
	EvFrameBatched
	EvVoteCacheHit
	EvVoteCacheInvalidate

	// Byzantine fault injection (simulator) and wire-path hardening
	// (udptransport). The byzantine_* kinds mark a malicious node acting;
	// auth_reject and rate_limited mark a hardened transport refusing a
	// hostile datagram before any ARQ or protocol state is touched.
	EvByzantineVoteLie
	EvByzantineDupClaim
	EvByzantineSybilJoin
	EvByzantineDrop
	EvAuthReject
	EvRateLimited

	// Causal span tracing: the request-side origin and final grant of one
	// address allocation, bracketing the ballot_* chain between them.
	EvAllocRequest
	EvAllocGrant

	numEventKinds
)

var kindNames = [numEventKinds]string{
	EvNodeArrived:     "node_arrived",
	EvNodeConfigured:  "node_configured",
	EvNodeDeparted:    "node_departed",
	EvHeadElected:     "head_elected",
	EvHeadResigned:    "head_resigned",
	EvBallotOpen:      "ballot_open",
	EvBallotVote:      "ballot_vote",
	EvBallotCommit:    "ballot_commit",
	EvBallotAbort:     "ballot_abort",
	EvReplicaSync:     "replica_sync",
	EvReplicaAdopt:    "replica_adopt",
	EvPeerSuspect:     "peer_suspect",
	EvPeerDead:        "peer_dead",
	EvReclaimStart:    "reclaim_start",
	EvReclaimDefend:   "reclaim_defend",
	EvReclaimFree:     "reclaim_free",
	EvQuorumShrink:    "quorum_shrink",
	EvQuorumProbe:     "quorum_probe",
	EvQuorumRecruit:   "quorum_recruit",
	EvPartitionMerge:  "partition_merge",
	EvIsolatedRestart: "isolated_restart",
	EvTransportSend:   "transport_send",
	EvTransportRetry:  "transport_retry",
	EvTransportDrop:   "transport_drop",
	EvTransportDedup:  "transport_dedup",
	EvDaemonStart:     "daemon_start",
	EvDaemonStop:      "daemon_stop",

	EvHealthCheck:            "health_check",
	EvReplicaUnderreplicated: "replica_underreplicated",
	EvReplicaRestored:        "replica_restored",

	EvBallotPipelined:     "ballot_pipelined",
	EvFrameBatched:        "frame_batched",
	EvVoteCacheHit:        "vote_cache_hit",
	EvVoteCacheInvalidate: "vote_cache_invalidate",

	EvByzantineVoteLie:   "byzantine_vote_lie",
	EvByzantineDupClaim:  "byzantine_dup_claim",
	EvByzantineSybilJoin: "byzantine_sybil_join",
	EvByzantineDrop:      "byzantine_drop",
	EvAuthReject:         "auth_reject",
	EvRateLimited:        "rate_limited",

	EvAllocRequest: "alloc_request",
	EvAllocGrant:   "alloc_grant",
}

// String returns the kind's stable snake_case name.
func (k EventKind) String() string {
	if k > 0 && k < numEventKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observed protocol transition. Fields beyond Kind, Time and
// Node are kind-specific; unused fields stay zero and are omitted from the
// JSON encoding. The struct is flat and map-free so building one allocates
// nothing.
type Event struct {
	// Seq is a per-tracer monotone sequence number, assigned by Emit.
	Seq uint64 `json:"seq"`
	// Time is the sim-or-wall timestamp: virtual time for simulation
	// events, time since tracer start for daemon events.
	Time time.Duration `json:"time_us"`
	// Kind says what happened.
	Kind EventKind `json:"kind"`
	// Node is the node the event occurred at.
	Node radio.NodeID `json:"node"`
	// Peer is the counterpart node, when the event involves one (ballot
	// voter, replica holder, suspected member, transport destination).
	Peer radio.NodeID `json:"peer,omitempty"`
	// Addr is the IP address involved, when the event concerns one.
	Addr addrspace.Addr `json:"addr,omitempty"`
	// MsgID is the wire envelope or ballot identifier tying the event to
	// traffic, when known.
	MsgID uint64 `json:"msg_id,omitempty"`
	// Span is the causal trace identifier minted at the allocation,
	// reclamation, or join origin this event belongs to (see MintSpan).
	// Zero means the event is not part of a traced causal chain. Encoded
	// as a hex string in JSON (the value does not fit float64 exactly).
	Span uint64 `json:"span,omitempty"`
	// Detail is a short kind-specific note ("graceful", "timeout", ...).
	Detail string `json:"detail,omitempty"`
}

// Sink receives every event a Tracer emits. Record is called with the
// tracer's internal lock held, so implementations see events in order and
// need no locking of their own against other sinks — but Record must be
// fast and must not re-enter the tracer.
type Sink interface {
	Record(e Event)
}

// Clock supplies event timestamps. For simulations this is the virtual
// clock; for daemons, time elapsed since process start.
type Clock func() time.Duration

// Tracer stamps and fans events out to its sinks. A nil *Tracer is a valid
// no-op tracer; all methods are nil-receiver safe.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	start time.Time // wall fallback when clock is nil
	seq   uint64
	sinks []Sink
}

// NewTracer returns a tracer writing to sinks. A nil clock means wall time
// elapsed since the tracer was created; simulations override it via
// SetClock (protocol.New does this automatically for attached tracers).
func NewTracer(clock Clock, sinks ...Sink) *Tracer {
	return &Tracer{clock: clock, start: time.Now(), sinks: sinks}
}

// SetClock replaces the timestamp source. It only affects events whose
// Time field is zero at Emit; pre-stamped events keep their timestamp.
func (t *Tracer) SetClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = c
	t.mu.Unlock()
}

// AddSink attaches an additional sink.
func (t *Tracer) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Enabled reports whether events go anywhere. Hot paths that would do real
// work just to build an Event (formatting, hashing) may guard on it; plain
// struct-literal call sites should call Emit unconditionally.
func (t *Tracer) Enabled() bool {
	return t != nil
}

// Emit stamps e (Seq always; Time only when zero) and hands it to every
// sink. Safe for concurrent use and on a nil receiver, where it returns
// immediately.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if e.Time == 0 {
		if t.clock != nil {
			e.Time = t.clock()
		} else {
			e.Time = time.Since(t.start)
		}
	}
	for _, s := range t.sinks {
		s.Record(e)
	}
	t.mu.Unlock()
}
