package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/metrics"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvBallotOpen, Node: 3})
	tr.SetClock(func() time.Duration { return time.Second })
	tr.AddSink(NewRing(4))
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
}

func TestTracerStampsSeqAndClock(t *testing.T) {
	now := 5 * time.Second
	ring := NewRing(8)
	tr := NewTracer(func() time.Duration { return now }, ring)
	tr.Emit(Event{Kind: EvNodeArrived, Node: 1})
	now = 7 * time.Second
	tr.Emit(Event{Kind: EvNodeConfigured, Node: 1})
	// A pre-stamped event keeps its own timestamp.
	tr.Emit(Event{Kind: EvNodeDeparted, Node: 1, Time: time.Millisecond})

	evs := ring.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 || evs[2].Seq != 3 {
		t.Fatalf("bad seq numbers: %+v", evs)
	}
	if evs[0].Time != 5*time.Second || evs[1].Time != 7*time.Second {
		t.Fatalf("clock not applied: %v %v", evs[0].Time, evs[1].Time)
	}
	if evs[2].Time != time.Millisecond {
		t.Fatalf("pre-stamped time overwritten: %v", evs[2].Time)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	ring := NewRing(3)
	tr := NewTracer(func() time.Duration { return time.Second }, ring)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: EvBallotVote, Node: 1, MsgID: uint64(i)})
	}
	if ring.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ring.Len())
	}
	evs := ring.Snapshot()
	want := []uint64{2, 3, 4}
	for i, ev := range evs {
		if ev.MsgID != want[i] {
			t.Fatalf("snapshot order: got %v, want msg ids %v", evs, want)
		}
	}
}

func TestRingConcurrentRecordSnapshot(t *testing.T) {
	ring := NewRing(16)
	tr := NewTracer(nil, ring)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Kind: EvTransportSend, Node: 9})
				_ = ring.Snapshot()
			}
		}()
	}
	wg.Wait()
	if ring.Len() != 16 {
		t.Fatalf("Len = %d, want 16", ring.Len())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := Event{
		Seq:    42,
		Time:   1500 * time.Microsecond,
		Kind:   EvReclaimFree,
		Node:   7,
		Peer:   3,
		Addr:   0x0A000005,
		MsgID:  99,
		Detail: "timeout",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"kind":"reclaim_free"`, `"addr":"10.0.0.5"`, `"time_us":1500`, `"peer":3`} {
		if !strings.Contains(s, want) {
			t.Fatalf("encoding %s missing %s", s, want)
		}
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestJSONUnknownKindRejected(t *testing.T) {
	var e Event
	err := json.Unmarshal([]byte(`{"seq":1,"time_us":0,"kind":"warp_drive","node":1}`), &e)
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr := NewTracer(func() time.Duration { return time.Second }, w)
	tr.Emit(Event{Kind: EvBallotOpen, Node: 1, Addr: 0x0A000001})
	tr.Emit(Event{Kind: EvBallotCommit, Node: 1, Addr: 0x0A000001})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != EvBallotCommit || e.Addr != 0x0A000001 {
		t.Fatalf("decoded %+v", e)
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	return 0, errFail
}

var errFail = bytes.ErrTooLarge

func TestJSONLWriterRetainsFirstError(t *testing.T) {
	w := NewJSONLWriter(&failingWriter{})
	// Small buffer writes only surface on Flush; force many records so the
	// bufio buffer spills and the error is captured by Record.
	for i := 0; i < 10000; i++ {
		w.Record(Event{Kind: EvTransportSend, Detail: strings.Repeat("x", 64)})
	}
	if w.Err() == nil && w.Flush() == nil {
		t.Fatal("writer error was swallowed")
	}
}

func TestCollectorBridge(t *testing.T) {
	coll := metrics.New()
	tr := NewTracer(func() time.Duration { return 0 }, NewCollectorBridge(coll))
	tr.Emit(Event{Kind: EvBallotOpen, Node: 1})
	tr.Emit(Event{Kind: EvBallotOpen, Node: 2})
	tr.Emit(Event{Kind: EvReclaimStart, Node: 1})
	if got := coll.Counter("obs.ballot_open"); got != 2 {
		t.Fatalf("obs.ballot_open = %d, want 2", got)
	}
	if got := coll.Counter("obs.reclaim_start"); got != 1 {
		t.Fatalf("obs.reclaim_start = %d, want 1", got)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := EventKind(1); k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if kindByName[k.String()] != k {
			t.Fatalf("kind %d (%s) does not round-trip", k, k)
		}
	}
	if EventKind(0).String() != "unknown" || numEventKinds.String() != "unknown" {
		t.Fatal("out-of-range kinds must stringify as unknown")
	}
	// Exhaustiveness in the other direction: the name index must hold
	// exactly one entry per kind, so a duplicated or missing name — which
	// would silently shadow a kind behind KindByName — fails here instead
	// of surfacing as "unknown" in production trace output.
	if len(kindByName) != int(numEventKinds)-1 {
		t.Fatalf("kindByName has %d entries, want %d: a kind name is missing or duplicated",
			len(kindByName), int(numEventKinds)-1)
	}
	for name, k := range kindByName {
		if k.String() != name {
			t.Fatalf("KindByName(%q) = %v but %v.String() = %q", name, k, k, k.String())
		}
	}
}

// TestThroughputKindNames pins the stable names of the allocation
// throughput engine's event kinds: trace filters (`quorumctl trace -kind`,
// /v1/trace?kind=) resolve them through KindByName, so a rename would break
// deployed tooling.
func TestThroughputKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvBallotPipelined:     "ballot_pipelined",
		EvFrameBatched:        "frame_batched",
		EvVoteCacheHit:        "vote_cache_hit",
		EvVoteCacheInvalidate: "vote_cache_invalidate",
	}
	for kind, name := range want {
		if kind.String() != name {
			t.Errorf("kind %d stringifies as %q, want %q", kind, kind.String(), name)
		}
		got, ok := KindByName(name)
		if !ok || got != kind {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", name, got, ok, kind)
		}
	}
}
