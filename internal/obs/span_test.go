package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"quorumconf/internal/radio"
)

func TestMintSpanUniqueAndDecodable(t *testing.T) {
	seen := make(map[uint64]bool)
	for _, origin := range []int{1, 2, 77, 65535} {
		for seq := uint64(1); seq <= 3; seq++ {
			s := MintSpan(radio.NodeID(origin), seq)
			if s == 0 {
				t.Fatalf("MintSpan(%d,%d) = 0", origin, seq)
			}
			if seen[s] {
				t.Fatalf("duplicate span %x", s)
			}
			seen[s] = true
			if got := SpanOrigin(s); int(got) != origin {
				t.Fatalf("SpanOrigin(%x) = %d, want %d", s, got, origin)
			}
		}
	}
}

func TestSpanFormatParseRoundTrip(t *testing.T) {
	for _, v := range []uint64{1, 0xdeadbeef, MintSpan(42, 7), ^uint64(0)} {
		s := FormatSpan(v)
		got, err := ParseSpan(s)
		if err != nil {
			t.Fatalf("ParseSpan(%q): %v", s, err)
		}
		if got != v {
			t.Fatalf("round trip %x -> %q -> %x", v, s, got)
		}
	}
	if _, err := ParseSpan("not-hex"); err == nil {
		t.Fatal("ParseSpan accepted garbage")
	}
}

// TestSpanJSONRoundTrip pins that a span survives the JSON encoding exactly
// even when it exceeds float64's 53-bit integer precision (the reason the
// schema uses a hex string, not a number).
func TestSpanJSONRoundTrip(t *testing.T) {
	in := Event{
		Seq:  1,
		Time: time.Millisecond,
		Kind: EvAllocRequest,
		Node: 9,
		Span: MintSpan(65535, 1<<48-1), // all bits set in both halves
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"span":"`+FormatSpan(in.Span)+`"`) {
		t.Fatalf("encoding %s missing hex span", data)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// TestSpanlessJSONStillDecodes pins append-only compatibility: events
// written before the span field existed decode with Span == 0.
func TestSpanlessJSONStillDecodes(t *testing.T) {
	var e Event
	line := `{"seq":3,"time_us":1200,"kind":"ballot_commit","node":2,"peer":4,"addr":"10.0.0.9","msg_id":5}`
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatal(err)
	}
	if e.Span != 0 || e.Kind != EvBallotCommit || e.MsgID != 5 {
		t.Fatalf("decoded %+v", e)
	}
}

func TestBuildSpansStitchesTimelines(t *testing.T) {
	spanA := MintSpan(1, 1)
	spanB := MintSpan(2, 1)
	events := []Event{
		{Seq: 5, Time: 30 * time.Microsecond, Kind: EvBallotVote, Node: 1, Span: spanA},
		{Seq: 1, Time: 10 * time.Microsecond, Kind: EvAllocRequest, Node: 1, Span: spanA},
		{Seq: 2, Time: 15 * time.Microsecond, Kind: EvBallotOpen, Node: 2, Span: spanB},
		{Seq: 3, Time: 20 * time.Microsecond, Kind: EvBallotOpen, Node: 1, Span: spanA},
		{Seq: 4, Time: 25 * time.Microsecond, Kind: EvHeadElected, Node: 3}, // no span: dropped
	}
	tls := BuildSpans(events)
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2", len(tls))
	}
	// Ordered by first hop time: spanA (10us) before spanB (15us).
	if tls[0].Span != spanA || tls[1].Span != spanB {
		t.Fatalf("timeline order: %x, %x", tls[0].Span, tls[1].Span)
	}
	a := tls[0]
	if a.Origin() != 1 {
		t.Fatalf("origin = %d", a.Origin())
	}
	if len(a.Hops) != 3 {
		t.Fatalf("spanA hops = %d, want 3", len(a.Hops))
	}
	wantKinds := []EventKind{EvAllocRequest, EvBallotOpen, EvBallotVote}
	wantSince := []int64{0, 10, 10}
	for i, h := range a.Hops {
		if h.Event.Kind != wantKinds[i] || h.SincePrev != wantSince[i] {
			t.Fatalf("hop %d = %+v since %d, want kind %v since %d", i, h.Event, h.SincePrev, wantKinds[i], wantSince[i])
		}
	}
	if a.Duration() != 20 {
		t.Fatalf("Duration = %d, want 20", a.Duration())
	}
}

// TestSpanKindNames pins the stable names of the span bracket kinds the
// same way the throughput kinds are pinned.
func TestSpanKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvAllocRequest: "alloc_request",
		EvAllocGrant:   "alloc_grant",
	}
	for kind, name := range want {
		if kind.String() != name {
			t.Errorf("kind %d stringifies as %q, want %q", kind, kind.String(), name)
		}
		got, ok := KindByName(name)
		if !ok || got != kind {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", name, got, ok, kind)
		}
	}
}
