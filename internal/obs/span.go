package obs

import (
	"fmt"
	"sort"
	"strconv"

	"quorumconf/internal/radio"
)

// Span identifiers.
//
// A span ID is a compact 64-bit causal trace identifier minted once at the
// origin of an allocation, reclamation, or join, and carried on every
// message and event the operation causes. The layout packs the minting
// node's ID into the top 16 bits and a per-origin sequence number into the
// low 48 bits, so IDs are unique across a fleet without coordination and
// deterministic in simulation (no randomness, no wall clock).

// MintSpan builds a span ID from the origin node and its local sequence
// number. Sequence numbers above 2^48-1 wrap; at that point the origin has
// minted hundreds of trillions of spans and collision with a live span is
// not a practical concern.
func MintSpan(origin radio.NodeID, seq uint64) uint64 {
	return uint64(uint16(origin))<<48 | (seq & (1<<48 - 1))
}

// SpanOrigin recovers the minting node packed into a span ID.
func SpanOrigin(span uint64) radio.NodeID {
	return radio.NodeID(uint16(span >> 48))
}

// FormatSpan renders a span ID in the stable external form: lower-case hex
// with no 0x prefix. JSON uses a string because uint64 does not survive a
// float64 round trip.
func FormatSpan(span uint64) string {
	return strconv.FormatUint(span, 16)
}

// ParseSpan reverses FormatSpan.
func ParseSpan(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("span %q: %w", s, err)
	}
	return v, nil
}

// SpanHop is one event inside a reconstructed span timeline, annotated
// with the time elapsed since the previous hop.
type SpanHop struct {
	Event Event
	// SincePrev is Event.Time minus the previous hop's time (zero for the
	// first hop). Negative values are possible when events from different
	// tracers with unaligned clocks are stitched together.
	SincePrev int64 // microseconds
}

// SpanTimeline is one causal chain: every event sharing a span ID, in
// causal (time, then seq) order.
type SpanTimeline struct {
	Span uint64
	Hops []SpanHop
}

// Origin returns the node that minted the span.
func (t SpanTimeline) Origin() radio.NodeID { return SpanOrigin(t.Span) }

// Duration returns the time from first to last hop in microseconds.
func (t SpanTimeline) Duration() int64 {
	if len(t.Hops) < 2 {
		return 0
	}
	return t.Hops[len(t.Hops)-1].Event.Time.Microseconds() - t.Hops[0].Event.Time.Microseconds()
}

// BuildSpans stitches a flat event stream (ring snapshot, JSONL decode)
// into per-span causal timelines. Events without a span are dropped.
// Timelines are ordered by their first hop's time; hops within a timeline
// by (time, seq).
func BuildSpans(events []Event) []SpanTimeline {
	bySpan := make(map[uint64][]Event)
	for _, e := range events {
		if e.Span != 0 {
			bySpan[e.Span] = append(bySpan[e.Span], e)
		}
	}
	out := make([]SpanTimeline, 0, len(bySpan))
	for span, evs := range bySpan {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Time != evs[j].Time {
				return evs[i].Time < evs[j].Time
			}
			return evs[i].Seq < evs[j].Seq
		})
		hops := make([]SpanHop, len(evs))
		for i, e := range evs {
			h := SpanHop{Event: e}
			if i > 0 {
				h.SincePrev = e.Time.Microseconds() - evs[i-1].Time.Microseconds()
			}
			hops[i] = h
		}
		out = append(out, SpanTimeline{Span: span, Hops: hops})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Hops[0].Event, out[j].Hops[0].Event
		if ti.Time != tj.Time {
			return ti.Time < tj.Time
		}
		return out[i].Span < out[j].Span
	})
	return out
}
