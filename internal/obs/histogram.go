package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram is a log-bucketed latency/size sketch with a lock-free hot
// path. Bucket i counts observations v with bits.Len64(v) == i, i.e.
// bucket 0 holds v == 0 and bucket i (i >= 1) holds v in [2^(i-1), 2^i).
// Powers of two as bucket bounds keep Observe to a handful of instructions
// — one bit-length, three atomic adds — which is what lets it sit on the
// ballot hot path.
//
// A nil *Histogram is valid and free: Observe on a nil receiver returns
// immediately, mirroring the nil-Tracer cost model.
type Histogram struct {
	// scale converts raw observed units into the exported unit (e.g. 1e-6
	// when observations are microseconds and the export is seconds).
	// Bucket *boundaries* stay in raw units; scale only affects rendering.
	scale float64

	buckets [65]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram builds a histogram whose exported values are raw
// observations multiplied by scale (pass 1 for dimensionless counts,
// 1e-6 for microsecond observations exported as seconds).
func NewHistogram(scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return &Histogram{scale: scale}
}

// Observe records one value. Negative values clamp to zero. Safe for
// concurrent use and on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Snapshot captures a consistent-enough view for export. Concurrent
// Observe calls may land between the bucket reads — the invariant that
// matters (count never exceeds the bucket total a later scrape sees) holds
// because buckets are bumped before count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{Scale: 1}
	}
	s := HistogramSnapshot{Scale: h.scale}
	// Read count first: the matching bucket increments happened before it.
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Scale   float64
	Count   uint64
	Sum     uint64
	Buckets [65]uint64
}

// UpperBound returns bucket i's exclusive upper bound in raw units
// (math.Inf for the last bucket).
func (s HistogramSnapshot) UpperBound(i int) float64 {
	if i >= 64 {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// ScaledSum returns the sum of observations in exported units.
func (s HistogramSnapshot) ScaledSum() float64 {
	return float64(s.Sum) * s.Scale
}

// Quantile estimates the q-quantile (0..1) in exported units by linear
// interpolation inside the containing bucket. With no observations it
// returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if rank <= next || i == 64 {
			lo := 0.0
			if i >= 1 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(uint64(1) << uint(i))
			if i >= 63 {
				hi = lo * 2 // avoid overflowed shifts; still finite
			}
			frac := 0.0
			if b > 0 {
				frac = (rank - cum) / float64(b)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return (lo + (hi-lo)*frac) * s.Scale
		}
		cum = next
	}
	return 0
}

// Histogram names recorded by the daemon and exported on /v1/metrics.
const (
	// HistConfigLatency is end-to-end address-configuration latency in
	// microseconds, observed per completed allocation, exported in seconds.
	HistConfigLatency = "config_latency_seconds"
	// HistBallotRTT is the open-to-commit time of one quorum ballot in
	// microseconds, exported in seconds.
	HistBallotRTT = "ballot_rtt_seconds"
	// HistReclaimTime is the start-to-settle time of one reclamation run
	// in microseconds, exported in seconds.
	HistReclaimTime = "reclaim_seconds"
	// HistBatchOccupancy is the number of envelopes coalesced into one
	// transmitted batch frame (dimensionless).
	HistBatchOccupancy = "batch_occupancy"
)

// Histograms is a named registry of histograms. The zero value is unusable;
// a nil *Histograms is valid and free — Get returns nil (whose Observe is
// free), so instrumented paths never branch on configuration.
type Histograms struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// NewHistograms returns an empty registry.
func NewHistograms() *Histograms {
	return &Histograms{m: make(map[string]*Histogram)}
}

// Get returns the named histogram, creating it with the given scale on
// first use. On a nil registry it returns nil.
func (r *Histograms) Get(name string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.m[name]; ok {
		return h
	}
	h := NewHistogram(scale)
	r.m[name] = h
	return h
}

// Observe records v into the named histogram, creating it on first use.
func (r *Histograms) Observe(name string, scale float64, v int64) {
	r.Get(name, scale).Observe(v)
}

// Names returns the registered histogram names, sorted.
func (r *Histograms) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a point-in-time copy of the named histogram and whether
// it exists.
func (r *Histograms) Snapshot(name string) (HistogramSnapshot, bool) {
	if r == nil {
		return HistogramSnapshot{}, false
	}
	r.mu.Lock()
	h, ok := r.m[name]
	r.mu.Unlock()
	if !ok {
		return HistogramSnapshot{}, false
	}
	return h.Snapshot(), true
}
