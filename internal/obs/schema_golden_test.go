package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSchemaV1StillDecodes decodes a committed JSONL fixture written
// in the pre-span event schema (PR 3 era: no "span" field) and pins that
// every line still decodes — the schema is append-only, so trace archives
// produced by older binaries must remain readable forever. Editing or
// regenerating the fixture defeats the test's purpose; only appending new
// fixture files for future schema generations is allowed.
func TestGoldenSchemaV1StillDecodes(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "trace_schema_v1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	n := 0
	var prevSeq uint64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d: %v\n%s", n, err, line)
		}
		if e.Kind <= 0 || e.Kind >= numEventKinds {
			t.Fatalf("line %d: kind out of range: %+v", n, e)
		}
		if e.Seq <= prevSeq {
			t.Fatalf("line %d: fixture seq not increasing: %+v", n, e)
		}
		prevSeq = e.Seq
		if e.Span != 0 {
			t.Fatalf("line %d: v1 fixture must predate spans, got %+v", n, e)
		}
		// Old events must re-encode under the current schema without error
		// (the reverse direction — new fields — is covered by omitempty).
		if _, err := json.Marshal(e); err != nil {
			t.Fatalf("line %d re-encode: %v", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("fixture has %d lines; expected the committed 12", n)
	}
}
