package obs

import (
	"math"
	"sync"
	"testing"
)

func TestNilHistogramIsSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	s := h.Snapshot()
	if s.Count != 0 || s.Scale != 1 {
		t.Fatalf("nil snapshot %+v", s)
	}
	var r *Histograms
	if r.Get("x", 1) != nil {
		t.Fatal("nil registry Get must return nil")
	}
	r.Observe("x", 1, 5) // must not panic
	if r.Names() != nil {
		t.Fatal("nil registry Names must be nil")
	}
	if _, ok := r.Snapshot("x"); ok {
		t.Fatal("nil registry Snapshot must report false")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1)
	// v=0 -> bucket 0; v=1 -> bucket 1; v in [2,4) -> bucket 2; v in [4,8) -> bucket 3.
	for _, v := range []int64{0, 1, 2, 3, 4, 7, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 2} // -5 clamps to 0
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, n, want[i], want)
		}
	}
	if s.Sum != 0+1+2+3+4+7 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if ub := s.UpperBound(3); ub != 8 {
		t.Fatalf("UpperBound(3) = %v", ub)
	}
	if !math.IsInf(s.UpperBound(64), 1) {
		t.Fatal("last bucket bound must be +Inf")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1e-6) // microsecond observations exported as seconds
	// 100 observations spread through [1024, 2048) — bucket 11.
	for i := 0; i < 100; i++ {
		h.Observe(1024 + int64(i)*10)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	// Interpolated midpoint of [1024,2048)us is ~1536us = 0.001536s.
	if p50 < 1000e-6 || p50 > 2100e-6 {
		t.Fatalf("p50 = %v, want ~1.5ms", p50)
	}
	if q := s.Quantile(0); q < 0 {
		t.Fatalf("q0 = %v", q)
	}
	empty := NewHistogram(1).Snapshot()
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total != 8000 {
		t.Fatalf("bucket total = %d, want 8000", total)
	}
}

func TestHistogramsRegistry(t *testing.T) {
	r := NewHistograms()
	r.Observe(HistConfigLatency, 1e-6, 1500)
	r.Observe(HistConfigLatency, 1e-6, 2500)
	r.Observe(HistBatchOccupancy, 1, 4)
	names := r.Names()
	if len(names) != 2 || names[0] != HistBatchOccupancy || names[1] != HistConfigLatency {
		t.Fatalf("names = %v", names)
	}
	s, ok := r.Snapshot(HistConfigLatency)
	if !ok || s.Count != 2 {
		t.Fatalf("snapshot = %+v, %v", s, ok)
	}
	if got := s.ScaledSum(); math.Abs(got-0.004) > 1e-9 {
		t.Fatalf("scaled sum = %v, want 0.004", got)
	}
	if _, ok := r.Snapshot("nope"); ok {
		t.Fatal("unknown name must report false")
	}
	// Get with a different scale returns the existing histogram unchanged.
	if r.Get(HistConfigLatency, 1) != r.Get(HistConfigLatency, 1e-6) {
		t.Fatal("Get must be idempotent per name")
	}
}

// BenchmarkHistogramObserve measures the lock-free hot path; recorded into
// BENCH_sweeps.json by quorumsim -benchjson as hist_observe.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(1e-6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
