package obs

import (
	"encoding/json"
	"fmt"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

// eventJSON is the stable external encoding of an Event: kinds by name,
// addresses dotted-quad, timestamps in integer microseconds. Field names
// are append-only; see DESIGN.md Appendix C.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	TimeUS int64  `json:"time_us"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Peer   *int   `json:"peer,omitempty"`
	Addr   string `json:"addr,omitempty"`
	MsgID  uint64 `json:"msg_id,omitempty"`
	Span   string `json:"span,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON encodes the event in the stable schema.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		Seq:    e.Seq,
		TimeUS: e.Time.Microseconds(),
		Kind:   e.Kind.String(),
		Node:   int(e.Node),
		MsgID:  e.MsgID,
		Detail: e.Detail,
	}
	if e.Peer != 0 {
		p := int(e.Peer)
		j.Peer = &p
	}
	if e.Addr != 0 {
		j.Addr = e.Addr.String()
	}
	if e.Span != 0 {
		j.Span = FormatSpan(e.Span)
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the stable schema back into an Event. Unknown kind
// names are rejected so schema drift fails loudly.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	kind, ok := kindByName[j.Kind]
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", j.Kind)
	}
	*e = Event{
		Seq:    j.Seq,
		Time:   time.Duration(j.TimeUS) * time.Microsecond,
		Kind:   kind,
		Node:   radio.NodeID(j.Node),
		MsgID:  j.MsgID,
		Detail: j.Detail,
	}
	if j.Peer != nil {
		e.Peer = radio.NodeID(*j.Peer)
	}
	if j.Addr != "" {
		a, err := addrspace.Parse(j.Addr)
		if err != nil {
			return fmt.Errorf("obs: bad addr %q: %w", j.Addr, err)
		}
		e.Addr = a
	}
	if j.Span != "" {
		s, err := ParseSpan(j.Span)
		if err != nil {
			return fmt.Errorf("obs: bad span %q: %w", j.Span, err)
		}
		e.Span = s
	}
	return nil
}

var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, int(numEventKinds))
	for k := EventKind(1); k < numEventKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// KindByName resolves a stable snake_case kind name back to its EventKind.
// It reports false for names no kind carries, letting API surfaces reject
// unknown filters loudly instead of matching nothing.
func KindByName(name string) (EventKind, bool) {
	k, ok := kindByName[name]
	return k, ok
}
