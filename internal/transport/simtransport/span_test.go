package simtransport

import (
	"context"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/wire"
)

// TestSpanSurvivesSimCodec pins that the causal span identifier survives
// the wire round trip every simulated send performs.
func TestSpanSurvivesSimCodec(t *testing.T) {
	s, n := fixture(t)
	a, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []*wire.Envelope
	c.SetHandler(func(env *wire.Envelope) { got = append(got, env) })

	span := obs.MintSpan(0, 7)
	err = a.Send(context.Background(), &wire.Envelope{
		Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Span: span, Payload: msg.RepReq{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d envelopes, want 1", len(got))
	}
	if got[0].Span != span {
		t.Errorf("delivered span %x, want %x", got[0].Span, span)
	}
}

// TestSpanSurvivesSimBatch pins span preservation through the batch codec:
// envelopes coalesced into one batch frame keep their individual spans.
func TestSpanSurvivesSimBatch(t *testing.T) {
	s, n := fixture(t)
	a, err := NewWithOptions(n, 0, Options{
		BatchDelay: 10 * time.Millisecond,
		Schedule:   func(d time.Duration, fn func()) { s.Schedule(d, fn) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []*wire.Envelope
	c.SetHandler(func(env *wire.Envelope) { got = append(got, env) })

	spans := []uint64{obs.MintSpan(0, 1), obs.MintSpan(0, 2), obs.MintSpan(0, 3)}
	for i, span := range spans {
		err := a.Send(context.Background(), &wire.Envelope{
			Type: msg.TQuorumClt, Dst: 2, Category: metrics.CatConfig, Span: span,
			Payload: msg.QuorumClt{BallotID: uint64(i + 1), Owner: 0, Addr: 5, Allocator: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("delivered %d envelopes, want %d", len(got), len(spans))
	}
	for i, env := range got {
		if env.Span != spans[i] {
			t.Errorf("envelope %d: span %x, want %x", i, env.Span, spans[i])
		}
	}
}
