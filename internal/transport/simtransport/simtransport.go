// Package simtransport adapts the discrete-event netstack to the Transport
// interface, so code written for real sockets also runs under simulation.
//
// Every envelope is round-tripped through the wire codec on send: what the
// simulator delivers is exactly what a socket would have carried, which
// makes every simulation run a conformance test of the wire format (a
// payload the codec cannot encode fails loudly here, not in deployment).
package simtransport

import (
	"context"
	"fmt"

	"quorumconf/internal/netstack"
	"quorumconf/internal/radio"
	"quorumconf/internal/transport"
	"quorumconf/internal/wire"
)

// Transport is one node's endpoint on a simulated network. All methods
// must be called on the simulator goroutine (the netstack is not safe for
// concurrent use); this mirrors how protocol code runs in the simulator.
type Transport struct {
	net     *netstack.Network
	id      radio.NodeID
	handler transport.Handler
	closed  bool
}

var _ transport.Transport = (*Transport)(nil)

// New registers a transport endpoint for id on the simulated network.
func New(net *netstack.Network, id radio.NodeID) (*Transport, error) {
	if net == nil {
		return nil, fmt.Errorf("simtransport: nil network")
	}
	t := &Transport{net: net, id: id}
	err := net.Register(id, func(m netstack.Message) {
		if t.closed || t.handler == nil {
			return
		}
		env, ok := m.Payload.(*wire.Envelope)
		if !ok {
			return // not envelope traffic (foreign protocol on the same fabric)
		}
		// Deliver a copy with the netstack's delivery metadata filled in.
		out := *env
		out.Src, out.Dst, out.Hops = m.Src, m.Dst, m.Hops
		t.handler(&out)
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// LocalID implements transport.Transport.
func (t *Transport) LocalID() radio.NodeID { return t.id }

// SetHandler implements transport.Transport.
func (t *Transport) SetHandler(h transport.Handler) { t.handler = h }

// Send implements transport.Transport. The envelope is encoded and decoded
// through the wire codec before entering the fabric, then unicast along
// shortest paths with the usual hop accounting. Simulated sends complete
// synchronously, so the context only gates entry: a context cancelled
// before the call fails fast, as it would on a real socket.
func (t *Transport) Send(ctx context.Context, env *wire.Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if t.closed {
		return transport.ErrClosed
	}
	env.Src = t.id
	raw, err := wire.Encode(env)
	if err != nil {
		return fmt.Errorf("simtransport: %w", err)
	}
	decoded, err := wire.Decode(raw)
	if err != nil {
		return fmt.Errorf("simtransport: codec not round-trip clean: %w", err)
	}
	_, ok := t.net.Unicast(t.id, env.Dst, netstack.Message{
		Type:     decoded.Type,
		Category: decoded.Category,
		Payload:  decoded,
	})
	if !ok {
		return fmt.Errorf("%w: %d -> %d", transport.ErrUnreachable, t.id, env.Dst)
	}
	return nil
}

// Close implements transport.Transport. Unregistering is immediate; the
// context is accepted for interface symmetry and never expires the call.
func (t *Transport) Close(context.Context) error {
	if !t.closed {
		t.closed = true
		t.net.Unregister(t.id)
	}
	return nil
}
