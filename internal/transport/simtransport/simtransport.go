// Package simtransport adapts the discrete-event netstack to the Transport
// interface, so code written for real sockets also runs under simulation.
//
// Every envelope is round-tripped through the wire codec on send: what the
// simulator delivers is exactly what a socket would have carried, which
// makes every simulation run a conformance test of the wire format (a
// payload the codec cannot encode fails loudly here, not in deployment).
//
// With batching enabled (Options.BatchSize / BatchDelay), sends queue per
// destination and flush as one batch frame — round-tripped through the
// batch codec — either synchronously when BatchSize envelopes accumulate
// or at a scheduled deadline BatchDelay after the first. The flush runs on
// the simulation scheduler, so batched runs stay deterministic.
package simtransport

import (
	"context"
	"fmt"
	"time"

	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
	"quorumconf/internal/transport"
	"quorumconf/internal/wire"
)

// Options parameterizes batching. The zero value disables it: every Send
// unicasts immediately, exactly as before.
type Options struct {
	// BatchSize flushes a destination's queue synchronously once it holds
	// this many envelopes. Must not exceed wire.MaxBatch.
	BatchSize int
	// BatchDelay flushes a non-empty destination queue this long after
	// its first envelope was queued. Requires Schedule.
	BatchDelay time.Duration
	// Schedule defers fn by d on the simulation's event loop (wrap the
	// simulator's Schedule, discarding its timer). Required when
	// BatchDelay is set.
	Schedule func(d time.Duration, fn func())
	// Tracer receives frame_batched events; nil disables tracing.
	Tracer *obs.Tracer
}

func (o Options) batching() bool { return o.BatchSize > 0 || o.BatchDelay > 0 }

// Transport is one node's endpoint on a simulated network. All methods
// must be called on the simulator goroutine (the netstack is not safe for
// concurrent use); this mirrors how protocol code runs in the simulator.
type Transport struct {
	net     *netstack.Network
	id      radio.NodeID
	opts    Options
	handler transport.Handler
	closed  bool

	pending map[radio.NodeID][]*wire.Envelope
	armed   map[radio.NodeID]bool // deadline flush scheduled
}

var _ transport.Transport = (*Transport)(nil)

// New registers a transport endpoint for id on the simulated network.
func New(net *netstack.Network, id radio.NodeID) (*Transport, error) {
	return NewWithOptions(net, id, Options{})
}

// NewWithOptions is New with batching configuration.
func NewWithOptions(net *netstack.Network, id radio.NodeID, opts Options) (*Transport, error) {
	if net == nil {
		return nil, fmt.Errorf("simtransport: nil network")
	}
	if opts.BatchSize > wire.MaxBatch {
		return nil, fmt.Errorf("simtransport: batch size %d exceeds wire.MaxBatch %d", opts.BatchSize, wire.MaxBatch)
	}
	if opts.BatchDelay > 0 && opts.Schedule == nil {
		return nil, fmt.Errorf("simtransport: BatchDelay requires a Schedule hook")
	}
	t := &Transport{net: net, id: id, opts: opts}
	if opts.batching() {
		t.pending = make(map[radio.NodeID][]*wire.Envelope)
		t.armed = make(map[radio.NodeID]bool)
	}
	err := net.Register(id, func(m netstack.Message) {
		if t.closed || t.handler == nil {
			return
		}
		switch pl := m.Payload.(type) {
		case *wire.Envelope:
			// Deliver a copy with the netstack's delivery metadata filled in.
			out := *pl
			out.Src, out.Dst, out.Hops = m.Src, m.Dst, m.Hops
			t.handler(&out)
		case []*wire.Envelope:
			for _, env := range pl {
				out := *env
				out.Src, out.Dst, out.Hops = m.Src, m.Dst, m.Hops
				t.handler(&out)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// LocalID implements transport.Transport.
func (t *Transport) LocalID() radio.NodeID { return t.id }

// SetHandler implements transport.Transport.
func (t *Transport) SetHandler(h transport.Handler) { t.handler = h }

// Send implements transport.Transport. The envelope is encoded and decoded
// through the wire codec before entering the fabric, then unicast along
// shortest paths with the usual hop accounting. Simulated sends complete
// synchronously, so the context only gates entry: a context cancelled
// before the call fails fast, as it would on a real socket.
//
// When batching is enabled the envelope is queued instead, and delivery —
// including the unreachable case — resolves at flush time: a deferred
// flush has no caller left to tell, the same way a queued datagram's loss
// is invisible to a socket writer.
func (t *Transport) Send(ctx context.Context, env *wire.Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if t.closed {
		return transport.ErrClosed
	}
	env.Src = t.id
	raw, err := wire.Encode(env)
	if err != nil {
		return fmt.Errorf("simtransport: %w", err)
	}
	decoded, err := wire.Decode(raw)
	if err != nil {
		return fmt.Errorf("simtransport: codec not round-trip clean: %w", err)
	}
	if !t.opts.batching() {
		if !t.unicast(env.Dst, netstack.Message{
			Type:     decoded.Type,
			Category: decoded.Category,
			Payload:  decoded,
		}) {
			return fmt.Errorf("%w: %d -> %d", transport.ErrUnreachable, t.id, env.Dst)
		}
		return nil
	}

	dst := env.Dst
	t.pending[dst] = append(t.pending[dst], decoded)
	if t.opts.BatchSize > 0 && len(t.pending[dst]) >= t.opts.BatchSize {
		t.flush(dst)
		return nil
	}
	if t.opts.BatchDelay > 0 && !t.armed[dst] {
		t.armed[dst] = true
		t.opts.Schedule(t.opts.BatchDelay, func() { t.flush(dst) })
	} else if t.opts.BatchDelay <= 0 && t.opts.BatchSize > 0 {
		// Size-only batching has no deadline; flush on the next scheduler
		// turn so a sub-threshold tail never strands.
		if !t.armed[dst] && t.opts.Schedule != nil {
			t.armed[dst] = true
			t.opts.Schedule(0, func() { t.flush(dst) })
		} else if t.opts.Schedule == nil {
			t.flush(dst)
		}
	}
	return nil
}

// Flush sends every queued envelope immediately. Tests and shutdown paths
// use it; normal operation flushes by size or deadline.
func (t *Transport) Flush() {
	if t.pending == nil {
		return
	}
	for dst := range t.pending {
		t.flush(dst)
	}
}

// flush drains one destination's queue onto the fabric: a lone envelope
// goes as itself, more go as batch frames of at most wire.MaxBatch, each
// round-tripped through the batch codec for conformance.
func (t *Transport) flush(dst radio.NodeID) {
	q := t.pending[dst]
	delete(t.pending, dst)
	delete(t.armed, dst)
	if len(q) == 0 || t.closed {
		return
	}
	for len(q) > 0 {
		n := len(q)
		if n > wire.MaxBatch {
			n = wire.MaxBatch
		}
		chunk := q[:n]
		q = q[n:]
		if n == 1 {
			t.unicast(dst, netstack.Message{
				Type:     chunk[0].Type,
				Category: chunk[0].Category,
				Payload:  chunk[0],
			})
			continue
		}
		raw, err := wire.EncodeBatch(chunk)
		if err != nil {
			continue // unencodable batch of individually-validated frames: impossible
		}
		decoded, err := wire.DecodeBatch(raw)
		if err != nil {
			continue
		}
		t.opts.Tracer.Emit(obs.Event{
			Kind:   obs.EvFrameBatched,
			Node:   t.id,
			Peer:   dst,
			Detail: fmt.Sprintf("n=%d", len(decoded)),
		})
		t.unicast(dst, netstack.Message{
			Type:     decoded[0].Type,
			Category: decoded[0].Category,
			Payload:  decoded,
		})
	}
}

func (t *Transport) unicast(dst radio.NodeID, m netstack.Message) bool {
	_, ok := t.net.Unicast(t.id, dst, m)
	return ok
}

// Close implements transport.Transport. Unregistering is immediate (any
// still-pending batches are dropped with the endpoint); the context is
// accepted for interface symmetry and never expires the call.
func (t *Transport) Close(context.Context) error {
	if !t.closed {
		t.closed = true
		t.pending = nil
		t.net.Unregister(t.id)
	}
	return nil
}
