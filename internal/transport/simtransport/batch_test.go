package simtransport

import (
	"context"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/wire"
)

// TestBatchFlushOnSize: the size trigger flushes synchronously — three
// sends, one batch frame on the fabric, three deliveries with per-envelope
// metadata intact.
func TestBatchFlushOnSize(t *testing.T) {
	s, n := fixture(t)
	ring := obs.NewRing(64)
	a, err := NewWithOptions(n, 0, Options{
		BatchSize: 3,
		Schedule:  func(d time.Duration, fn func()) { s.Schedule(d, fn) },
		Tracer:    obs.NewTracer(nil, ring),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []*wire.Envelope
	c.SetHandler(func(env *wire.Envelope) { got = append(got, env) })

	for i := 0; i < 3; i++ {
		err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d envelopes, want 3", len(got))
	}
	for _, env := range got {
		if env.Src != 0 || env.Dst != 2 || env.Hops != 2 {
			t.Errorf("metadata wrong: %+v", env)
		}
	}
	batched := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvFrameBatched && e.Peer == 2 {
			batched++
			if e.Detail != "n=3" {
				t.Errorf("frame_batched detail = %q, want n=3", e.Detail)
			}
		}
	}
	if batched != 1 {
		t.Errorf("frame_batched events = %d, want 1", batched)
	}
}

// TestBatchDeadlineFlush: below the size trigger, the scheduled deadline
// flushes the queue; a destination holding a single envelope sends it as a
// plain frame with no batch event.
func TestBatchDeadlineFlush(t *testing.T) {
	s, n := fixture(t)
	ring := obs.NewRing(64)
	a, err := NewWithOptions(n, 0, Options{
		BatchSize:  16,
		BatchDelay: 10 * time.Millisecond,
		Schedule:   func(d time.Duration, fn func()) { s.Schedule(d, fn) },
		Tracer:     obs.NewTracer(nil, ring),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotB, gotC := 0, 0
	b.SetHandler(func(*wire.Envelope) { gotB++ })
	c.SetHandler(func(*wire.Envelope) { gotC++ })

	// Two for node 2 (batched at the deadline), one for node 1 (flushes as
	// itself).
	for i := 0; i < 2; i++ {
		if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 1, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotC != 2 {
		t.Errorf("node 2 received %d envelopes, want 2", gotC)
	}
	if gotB != 1 {
		t.Errorf("node 1 received %d envelopes, want 1", gotB)
	}
	for _, e := range ring.Snapshot() {
		if e.Kind != obs.EvFrameBatched {
			continue
		}
		if e.Peer != 2 {
			t.Errorf("frame_batched for peer %d; only the 2-envelope queue should batch", e.Peer)
		}
		if e.Detail != "n=2" {
			t.Errorf("frame_batched detail = %q, want n=2", e.Detail)
		}
	}
}

// TestBatchRejectsBadOptions pins constructor validation.
func TestBatchRejectsBadOptions(t *testing.T) {
	_, n := fixture(t)
	if _, err := NewWithOptions(n, 0, Options{BatchSize: wire.MaxBatch + 1}); err == nil {
		t.Error("oversized BatchSize accepted")
	}
	if _, err := NewWithOptions(n, 0, Options{BatchDelay: time.Millisecond}); err == nil {
		t.Error("BatchDelay without Schedule accepted")
	}
}
