package simtransport

import (
	"context"
	"errors"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/msg"
	"quorumconf/internal/netstack"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
	"quorumconf/internal/transport"
	"quorumconf/internal/wire"
)

// fixture builds a 3-node line (100m apart, 150m range): 0-1-2, so 0->2 is
// two hops.
func fixture(t *testing.T) (*sim.Simulator, *netstack.Network) {
	t.Helper()
	s := sim.New(1)
	topo, err := radio.NewTopology(150)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := topo.Add(radio.NodeID(i), mobility.Static(mobility.Point{X: float64(i) * 100})); err != nil {
			t.Fatal(err)
		}
	}
	n, err := netstack.New(s, topo, metrics.New(), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestSendDeliversThroughCodec(t *testing.T) {
	s, n := fixture(t)
	a, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []*wire.Envelope
	c.SetHandler(func(env *wire.Envelope) { got = append(got, env) })

	want := msg.ComCfg{Addr: 9, NetworkID: msg.NetTag{Addr: 9, Nonce: 5}, Configurer: 0, PathHops: 2}
	err = a.Send(context.Background(), &wire.Envelope{Type: msg.TComCfg, Dst: 2, Category: metrics.CatConfig, Payload: want})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d envelopes, want 1", len(got))
	}
	env := got[0]
	if env.Src != 0 || env.Dst != 2 || env.Hops != 2 || env.Type != msg.TComCfg {
		t.Errorf("metadata wrong: %+v", env)
	}
	if env.Payload != want {
		t.Errorf("payload = %+v, want %+v", env.Payload, want)
	}
}

func TestSendUnreachable(t *testing.T) {
	_, n := fixture(t)
	a, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 77, Category: metrics.CatSync, Payload: msg.RepReq{}})
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("send to absent node: %v", err)
	}
}

func TestSendRejectsUnencodablePayload(t *testing.T) {
	_, n := fixture(t)
	a, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = a.Send(context.Background(), &wire.Envelope{Type: msg.TComReq, Dst: 1, Category: metrics.CatConfig, Payload: msg.RepRsp{}})
	if err == nil {
		t.Error("mismatched payload accepted")
	}
}

func TestClosedEndpointDropsAndErrors(t *testing.T) {
	s, n := fixture(t)
	a, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	b.SetHandler(func(*wire.Envelope) { delivered++ })
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 0, Category: metrics.CatSync, Payload: msg.RepReq{}}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	// Traffic to the closed endpoint vanishes (handler unregistered).
	if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 1, Category: metrics.CatSync, Payload: msg.RepReq{}}); !errors.Is(err, transport.ErrUnreachable) && err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("closed endpoint received %d envelopes", delivered)
	}
}
