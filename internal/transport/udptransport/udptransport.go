// Package udptransport carries wire envelopes over real UDP sockets.
//
// UDP gives the same failure model the paper assumes of a radio: datagrams
// are lost, reordered and duplicated. The transport adds the minimum ARQ a
// deployable daemon needs without becoming TCP:
//
//   - per-destination send queues: one worker per peer drains messages in
//     order, so a slow peer cannot stall traffic to the others;
//   - stop-and-wait retransmission with exponential backoff plus jitter
//     (base doubles per attempt, uniformly spread over [0.5x, 1.5x]);
//   - positive acknowledgements by message ID, and receive-side
//     deduplication by (source, message ID) so retransmitted datagrams
//     deliver exactly once per endpoint lifetime window;
//   - counters for every event, recorded into a metrics.SyncCollector and
//     served by quorumd's /metrics endpoint.
//
// Frames on the socket are one byte of kind followed by the body:
//
//	'D' <wire envelope>          data
//	'B' <wire batch frame>       coalesced data (N envelopes, one header)
//	'A' <uvarint message ID>     acknowledgement
//
// With BatchFlushBytes or BatchFlushDelay set, each destination worker
// coalesces queued messages into one 'B' frame: everything already waiting
// in the queue is drained greedily, then the worker lingers up to
// BatchFlushDelay for stragglers or until BatchFlushBytes of payload
// accumulate. A batch rides the normal stop-and-wait ARQ as a unit, keyed
// on its first envelope's message ID; the receiver acknowledges that ID
// once and delivers each inner envelope through the usual per-envelope
// dedup, so a retransmitted batch cannot double-deliver.
//
// A message that exhausts its attempts is dropped with a counter bump; the
// protocol's own timeouts recover, exactly as they do over lossy radio.
//
// # Hardening
//
// With Config.AuthKey set, every datagram on the socket — data, batch and
// ack alike — is wrapped in a wire auth frame ('Q','A', HMAC-SHA256, see
// wire.Seal) and inbound datagrams that do not verify are dropped with an
// auth_reject before any ARQ, dedup or handler state is touched. With
// Config.RateLimit set, a per-remote-address token bucket is charged even
// earlier: over-rate datagrams are dropped with a rate_limited before the
// HMAC is even computed, so a flood cannot buy CPU with garbage.
package udptransport

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
	"quorumconf/internal/transport"
	"quorumconf/internal/wire"
)

// Frame kind bytes.
const (
	frameData  = 'D'
	frameAck   = 'A'
	frameBatch = 'B'
)

// maxBatchBytes caps a batch frame's payload so it stays well inside one
// 64 KiB UDP datagram regardless of BatchFlushBytes.
const maxBatchBytes = 60000

// Counter names recorded into the collector.
const (
	CtrDataTx    = "transport.data_tx"    // data datagrams written (incl. retransmits)
	CtrRetries   = "transport.retries"    // retransmissions
	CtrAckTx     = "transport.ack_tx"     // acks written
	CtrAckRx     = "transport.ack_rx"     // acks received
	CtrDelivered = "transport.delivered"  // envelopes handed to the handler
	CtrDupDrop   = "transport.dup_drop"   // duplicate data frames suppressed
	CtrSendDrop  = "transport.send_drop"  // messages dropped after max attempts
	CtrDecodeErr = "transport.decode_err" // undecodable frames received
	CtrChaosDrop = "transport.chaos_drop" // outbound frames discarded by DropRate
	CtrBatchTx   = "transport.batch_tx"   // batch frames written (excl. retransmits)
	CtrBatchRx   = "transport.batch_rx"   // batch frames received
	CtrBatched   = "transport.batched"    // envelopes that rode a batch frame out

	CtrAuthReject  = "transport.auth_reject"  // datagrams failing authentication
	CtrRateLimited = "transport.rate_limited" // datagrams dropped by the rate limiter
)

// Config parameterizes a transport endpoint. Zero fields take defaults.
type Config struct {
	// ID is the local node ID stamped into outgoing envelopes.
	ID radio.NodeID
	// Listen is the UDP address to bind ("127.0.0.1:0" for an ephemeral
	// loopback port).
	Listen string
	// Metrics receives the transport counters; nil allocates a private one.
	Metrics *metrics.SyncCollector
	// RetryBase is the first retransmission delay (default 30ms). Attempt
	// n waits jittered RetryBase * 2^n.
	RetryBase time.Duration
	// MaxAttempts bounds transmissions per message (default 6).
	MaxAttempts int
	// QueueLen is the per-destination queue capacity (default 512).
	QueueLen int
	// DropRate discards outbound data frames with this probability, in
	// [0, 1) — a chaos knob mirroring the netstack's loss model, for
	// exercising retransmission against real sockets.
	DropRate float64
	// BatchFlushBytes enables frame coalescing: a destination's pending
	// messages are flushed as one batch frame once their combined payload
	// reaches this many bytes (capped internally to fit one datagram).
	// Zero leaves the size trigger unset.
	BatchFlushBytes int
	// BatchFlushDelay is the coalescing deadline: after the first message
	// of a batch is dequeued the worker lingers at most this long for
	// more before flushing. Zero flushes as soon as the queue runs dry
	// (greedy drain only). Batching is enabled when either batch knob is
	// non-zero.
	BatchFlushDelay time.Duration
	// AuthKey, when non-empty, turns on frame authentication: every
	// outbound datagram is sealed (wire.Seal, HMAC-SHA256) and inbound
	// datagrams that fail wire.Open are dropped before any transport
	// state is touched. All endpoints of a cluster must share the key.
	AuthKey []byte
	// RateLimit, when positive, enables a per-remote-address token bucket
	// admitting this many datagrams per second; datagrams beyond the
	// budget are dropped before authentication. Zero disables limiting.
	RateLimit float64
	// RateBurst is the bucket depth — how many back-to-back datagrams a
	// remote may burst before the steady rate applies (default
	// max(16, RateLimit)).
	RateBurst int
	// Tracer receives transport_send/retry/drop/dedup events; nil
	// disables tracing at zero cost.
	Tracer *obs.Tracer
	// Histograms, when set, records the batch-occupancy distribution
	// (obs.HistBatchOccupancy): how many envelopes each transmitted batch
	// frame coalesced. Nil records nothing at zero cost.
	Histograms *obs.Histograms
}

func (c *Config) setDefaults() {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewSync()
	}
	if c.RetryBase == 0 {
		c.RetryBase = 30 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 6
	}
	if c.QueueLen == 0 {
		c.QueueLen = 512
	}
	if c.RateLimit > 0 && c.RateBurst == 0 {
		c.RateBurst = 16
		if int(c.RateLimit) > c.RateBurst {
			c.RateBurst = int(c.RateLimit)
		}
	}
}

// dedupCap bounds the (source, message ID) suppression window.
const dedupCap = 8192

type dedupKey struct {
	src radio.NodeID
	id  uint64
}

// outgoing is one queued message. result is nil for fire-and-forget Send;
// SendWait threads a buffered channel through it to learn the message's
// fate (nil, ErrRetriesExhausted, ErrUnknownPeer or ErrClosed).
type outgoing struct {
	frame  []byte
	msgID  uint64
	result chan error
}

// Transport is one UDP endpoint. Safe for concurrent use.
type Transport struct {
	cfg  Config
	conn *net.UDPConn

	mu       sync.Mutex
	handler  transport.Handler
	peers    map[radio.NodeID]*net.UDPAddr
	queues   map[radio.NodeID]chan outgoing
	acks     map[uint64]chan struct{}
	seen     map[dedupKey]struct{}
	seenRing []dedupKey
	seenPos  int
	closed   bool

	msgSeq atomic.Uint64
	done   chan struct{}
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Transport)(nil)

// New binds the socket and starts the receive loop.
func New(cfg Config) (*Transport, error) {
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return nil, fmt.Errorf("udptransport: %w: drop rate %v", netstack.ErrLossRateRange, cfg.DropRate)
	}
	if cfg.RateLimit < 0 {
		return nil, fmt.Errorf("udptransport: rate limit %v must not be negative", cfg.RateLimit)
	}
	cfg.setDefaults()
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udptransport: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: %w", err)
	}
	t := &Transport{
		cfg:    cfg,
		conn:   conn,
		peers:  make(map[radio.NodeID]*net.UDPAddr),
		queues: make(map[radio.NodeID]chan outgoing),
		acks:   make(map[uint64]chan struct{}),
		seen:   make(map[dedupKey]struct{}),
		done:   make(chan struct{}),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// LocalID implements transport.Transport.
func (t *Transport) LocalID() radio.NodeID { return t.cfg.ID }

// LocalAddr returns the bound UDP address (useful with ephemeral ports).
func (t *Transport) LocalAddr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// Metrics returns the collector the transport records into.
func (t *Transport) Metrics() *metrics.SyncCollector { return t.cfg.Metrics }

// SetHandler implements transport.Transport.
func (t *Transport) SetHandler(h transport.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// AddPeer registers (or updates) the socket address for a node ID.
func (t *Transport) AddPeer(id radio.NodeID, addr string) error {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udptransport: peer %d: %w", id, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return transport.ErrClosed
	}
	t.peers[id] = uaddr
	return nil
}

// RemovePeer forgets a peer and stops its queue worker draining to it.
func (t *Transport) RemovePeer(id radio.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.peers, id)
}

// Peers returns the currently known peer IDs.
func (t *Transport) Peers() []radio.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]radio.NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	return out
}

// Send implements transport.Transport: stamp, encode, enqueue. When the
// destination queue is full, a caller with a cancellable context blocks
// for space until the context is done; context.Background() (no Done
// channel) gets immediate ErrQueueFull backpressure instead, so the
// daemon's event loop can never wedge on a slow peer.
func (t *Transport) Send(ctx context.Context, env *wire.Envelope) error {
	return t.send(ctx, env, nil)
}

// SendWait is Send that also waits for the message's fate: it returns nil
// once the peer acknowledged the message, ErrRetriesExhausted if it was
// dropped after MaxAttempts unacknowledged transmissions, or the context
// error if ctx expires first (the transmission keeps running in that
// case — UDP has no unsend).
func (t *Transport) SendWait(ctx context.Context, env *wire.Envelope) error {
	result := make(chan error, 1)
	if err := t.send(ctx, env, result); err != nil {
		return err
	}
	select {
	case err := <-result:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-t.done:
		return transport.ErrClosed
	}
}

func (t *Transport) send(ctx context.Context, env *wire.Envelope, result chan error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	env.Src = t.cfg.ID
	if env.MsgID == 0 {
		env.MsgID = t.msgSeq.Add(1)
	}
	if env.Hops == 0 {
		env.Hops = 1 // one socket hop; real deployments would count routes
	}
	frame := make([]byte, 1, 64)
	frame[0] = frameData
	frame, err := wire.AppendEncode(frame, env)
	if err != nil {
		return fmt.Errorf("udptransport: %w", err)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return transport.ErrClosed
	}
	if _, ok := t.peers[env.Dst]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %d", transport.ErrUnknownPeer, env.Dst)
	}
	q, ok := t.queues[env.Dst]
	if !ok {
		q = make(chan outgoing, t.cfg.QueueLen)
		t.queues[env.Dst] = q
		t.wg.Add(1)
		go t.sendLoop(env.Dst, q)
	}
	t.mu.Unlock()

	out := outgoing{frame: frame, msgID: env.MsgID, result: result}
	select {
	case q <- out:
		t.trace(obs.EvTransportSend, env.Dst, env.MsgID, env.Type)
		return nil
	default:
	}
	if ctx.Done() == nil {
		t.cfg.Metrics.Inc(CtrSendDrop)
		t.trace(obs.EvTransportDrop, env.Dst, env.MsgID, "queue_full")
		return fmt.Errorf("%w: to %d", transport.ErrQueueFull, env.Dst)
	}
	select {
	case q <- out:
		t.trace(obs.EvTransportSend, env.Dst, env.MsgID, env.Type)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.done:
		return transport.ErrClosed
	}
}

// Close implements transport.Transport: stop the workers, close the
// socket, and wait for them to exit — up to ctx, after which Close returns
// the context error while teardown finishes in the background.
func (t *Transport) Close(ctx context.Context) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	err := t.conn.Close()
	idle := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// trace emits a transport event when a tracer is configured.
func (t *Transport) trace(kind obs.EventKind, peer radio.NodeID, msgID uint64, detail string) {
	t.cfg.Tracer.Emit(obs.Event{
		Kind:   kind,
		Node:   t.cfg.ID,
		Peer:   peer,
		MsgID:  msgID,
		Detail: detail,
	})
}

// sendLoop drains one destination's queue: stop-and-wait with backoff.
// With batching enabled, each iteration coalesces what the queue holds
// (messages pile up naturally during the previous exchange's RTT) into a
// single batch frame sharing one ARQ exchange.
func (t *Transport) sendLoop(dst radio.NodeID, q chan outgoing) {
	defer t.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	batching := t.cfg.BatchFlushBytes > 0 || t.cfg.BatchFlushDelay > 0
	for {
		var out outgoing
		select {
		case <-t.done:
			return
		case out = <-q:
		}

		if batching {
			if batch := t.collectBatch(q, out, timer); len(batch) > 1 {
				t.transmitBatch(dst, batch, timer)
				continue
			}
		}

		ackCh := make(chan struct{}, 1)
		t.mu.Lock()
		t.acks[out.msgID] = ackCh
		t.mu.Unlock()

		err := t.transmit(dst, out, ackCh, timer)

		t.mu.Lock()
		delete(t.acks, out.msgID)
		t.mu.Unlock()

		if out.result != nil {
			out.result <- err // buffered; never blocks the worker
		}
	}
}

// collectBatch gathers messages for one batch frame: everything already
// queued, then — when a flush delay is configured — stragglers until the
// deadline. The size trigger flushes early once BatchFlushBytes (or the
// datagram cap) of payload accumulate.
func (t *Transport) collectBatch(q chan outgoing, first outgoing, timer *time.Timer) []outgoing {
	limit := t.cfg.BatchFlushBytes
	if limit <= 0 || limit > maxBatchBytes {
		limit = maxBatchBytes
	}
	batch := []outgoing{first}
	size := len(first.frame) - 1

	// Greedy phase: drain what is already waiting.
	for len(batch) < wire.MaxBatch && size < limit {
		select {
		case out := <-q:
			batch = append(batch, out)
			size += len(out.frame) - 1
		default:
			goto linger
		}
	}
	return batch

linger:
	if t.cfg.BatchFlushDelay <= 0 {
		return batch
	}
	timer.Reset(t.cfg.BatchFlushDelay)
	for len(batch) < wire.MaxBatch && size < limit {
		select {
		case out := <-q:
			batch = append(batch, out)
			size += len(out.frame) - 1
		case <-timer.C:
			return batch
		case <-t.done:
			if !timer.Stop() {
				<-timer.C
			}
			return batch
		}
	}
	if !timer.Stop() {
		<-timer.C
	}
	return batch
}

// transmitBatch sends a coalesced batch through the normal ARQ cycle as a
// unit: one 'B' frame, acknowledged once by the first envelope's message
// ID, with every member sharing the exchange's fate.
func (t *Transport) transmitBatch(dst radio.NodeID, batch []outgoing, timer *time.Timer) {
	frames := make([][]byte, len(batch))
	for i, out := range batch {
		frames[i] = out.frame[1:]
	}
	frame, err := wire.AppendBatchRaw([]byte{frameBatch}, frames)
	if err != nil {
		// Cannot happen for frames we encoded ourselves; fail the members
		// rather than wedge the worker.
		t.cfg.Metrics.Inc(CtrSendDrop)
		for _, out := range batch {
			if out.result != nil {
				out.result <- err
			}
		}
		return
	}
	t.cfg.Metrics.Inc(CtrBatchTx)
	t.cfg.Metrics.Add(CtrBatched, int64(len(batch)))
	t.cfg.Histograms.Observe(obs.HistBatchOccupancy, 1, int64(len(batch)))
	t.trace(obs.EvFrameBatched, dst, batch[0].msgID, fmt.Sprintf("n=%d", len(batch)))

	ackCh := make(chan struct{}, 1)
	t.mu.Lock()
	t.acks[batch[0].msgID] = ackCh
	t.mu.Unlock()

	res := t.transmit(dst, outgoing{frame: frame, msgID: batch[0].msgID}, ackCh, timer)

	t.mu.Lock()
	delete(t.acks, batch[0].msgID)
	t.mu.Unlock()

	for _, out := range batch {
		if out.result != nil {
			out.result <- res
		}
	}
}

// transmit runs the attempt/backoff cycle for one message and reports its
// fate: nil once acknowledged, ErrRetriesExhausted after MaxAttempts,
// ErrUnknownPeer if the peer was removed while queued, ErrClosed if the
// transport shut down first.
func (t *Transport) transmit(dst radio.NodeID, out outgoing, ackCh chan struct{}, timer *time.Timer) error {
	// Seal once at the socket boundary: the MAC is deterministic, so every
	// retransmission reuses the same sealed bytes, and frames stay
	// plaintext while queued (batch composition slices them apart).
	datagram, err := t.seal(out.frame)
	if err != nil {
		t.cfg.Metrics.Inc(CtrSendDrop)
		return err
	}
	for attempt := 0; attempt < t.cfg.MaxAttempts; attempt++ {
		t.mu.Lock()
		addr, ok := t.peers[dst]
		t.mu.Unlock()
		if !ok {
			t.cfg.Metrics.Inc(CtrSendDrop)
			t.trace(obs.EvTransportDrop, dst, out.msgID, "peer_removed")
			return fmt.Errorf("%w: %d", transport.ErrUnknownPeer, dst)
		}
		if attempt > 0 {
			t.cfg.Metrics.Inc(CtrRetries)
			t.trace(obs.EvTransportRetry, dst, out.msgID, "")
		}
		t.cfg.Metrics.Inc(CtrDataTx)
		if t.cfg.DropRate > 0 && rand.Float64() < t.cfg.DropRate {
			t.cfg.Metrics.Inc(CtrChaosDrop)
		} else if _, err := t.conn.WriteToUDP(datagram, addr); err != nil {
			select {
			case <-t.done:
				return transport.ErrClosed
			default:
			}
		}

		timer.Reset(jitter(t.cfg.RetryBase << attempt))
		select {
		case <-ackCh:
			if !timer.Stop() {
				<-timer.C
			}
			return nil
		case <-t.done:
			if !timer.Stop() {
				<-timer.C
			}
			return transport.ErrClosed
		case <-timer.C:
		}
	}
	t.cfg.Metrics.Inc(CtrSendDrop)
	t.trace(obs.EvTransportDrop, dst, out.msgID, "retries_exhausted")
	return fmt.Errorf("%w: to %d after %d attempts", transport.ErrRetriesExhausted, dst, t.cfg.MaxAttempts)
}

// jitter spreads d uniformly over [0.5d, 1.5d).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// maxBuckets bounds the rate limiter's per-remote state so an attacker
// cycling source ports cannot grow it without bound.
const maxBuckets = 4096

// bucket is one remote address's token-bucket state. The limiter is owned
// by the single readLoop goroutine, so no locking is needed.
type bucket struct {
	tokens float64
	last   time.Time
}

// admit charges one datagram from raddr against its bucket and reports
// whether it may pass. Limiting disabled admits everything.
func (t *Transport) admit(buckets map[string]*bucket, raddr *net.UDPAddr) bool {
	if t.cfg.RateLimit <= 0 {
		return true
	}
	now := time.Now()
	key := raddr.String()
	b, ok := buckets[key]
	if !ok {
		if len(buckets) >= maxBuckets {
			// Prune remotes whose buckets have fully refilled — they have
			// been idle at least RateBurst/RateLimit seconds.
			refill := time.Duration(float64(t.cfg.RateBurst) / t.cfg.RateLimit * float64(time.Second))
			for k, old := range buckets {
				if now.Sub(old.last) >= refill {
					delete(buckets, k)
				}
			}
			if len(buckets) >= maxBuckets {
				// Table still full of active remotes: refuse the newcomer
				// rather than evict someone who is behaving.
				return false
			}
		}
		b = &bucket{tokens: float64(t.cfg.RateBurst), last: now}
		buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * t.cfg.RateLimit
	if max := float64(t.cfg.RateBurst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// readLoop receives datagrams until the socket closes. Hostile input is
// shed in order of increasing cost: the rate limiter first (a map lookup),
// then authentication (one HMAC), and only then frame decoding and ARQ
// state.
func (t *Transport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	buckets := make(map[string]*bucket)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient error on a live socket: keep reading.
			continue
		}
		if n < 1 {
			continue
		}
		if !t.admit(buckets, raddr) {
			t.cfg.Metrics.Inc(CtrRateLimited)
			t.trace(obs.EvRateLimited, 0, 0, raddr.String())
			continue
		}
		frame := buf[:n]
		if len(t.cfg.AuthKey) > 0 {
			inner, err := wire.Open(t.cfg.AuthKey, frame)
			if err != nil {
				t.cfg.Metrics.Inc(CtrAuthReject)
				t.trace(obs.EvAuthReject, 0, 0, raddr.String())
				continue
			}
			frame = inner
			if len(frame) < 1 {
				t.cfg.Metrics.Inc(CtrDecodeErr)
				continue
			}
		}
		switch frame[0] {
		case frameAck:
			t.handleAck(frame[1:])
		case frameData:
			t.handleData(frame[1:], raddr)
		case frameBatch:
			t.handleBatch(frame[1:], raddr)
		default:
			t.cfg.Metrics.Inc(CtrDecodeErr)
		}
	}
}

func (t *Transport) handleAck(body []byte) {
	msgID, n := binary.Uvarint(body)
	if n <= 0 {
		t.cfg.Metrics.Inc(CtrDecodeErr)
		return
	}
	t.cfg.Metrics.Inc(CtrAckRx)
	t.mu.Lock()
	ch, ok := t.acks[msgID]
	t.mu.Unlock()
	if ok {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (t *Transport) handleData(body []byte, raddr *net.UDPAddr) {
	env, err := wire.Decode(body)
	if err != nil {
		t.cfg.Metrics.Inc(CtrDecodeErr)
		return
	}

	// Ack every valid data frame, duplicates included — the retransmit
	// means the sender missed the previous ack.
	t.sendAck(env.MsgID, raddr)
	t.deliver(env)
}

// handleBatch unbundles a coalesced frame: one ack for the whole batch
// (keyed on its first envelope, mirroring the sender's ARQ), then each
// inner envelope through the usual per-envelope dedup and delivery.
func (t *Transport) handleBatch(body []byte, raddr *net.UDPAddr) {
	envs, err := wire.DecodeBatch(body)
	if err != nil {
		t.cfg.Metrics.Inc(CtrDecodeErr)
		return
	}
	t.cfg.Metrics.Inc(CtrBatchRx)
	t.sendAck(envs[0].MsgID, raddr)
	for _, env := range envs {
		t.deliver(env)
	}
}

func (t *Transport) sendAck(msgID uint64, raddr *net.UDPAddr) {
	ack := binary.AppendUvarint([]byte{frameAck}, msgID)
	ack, err := t.seal(ack)
	if err != nil {
		return
	}
	if _, err := t.conn.WriteToUDP(ack, raddr); err == nil {
		t.cfg.Metrics.Inc(CtrAckTx)
	}
}

// seal wraps a socket frame in an auth frame when authentication is on;
// with no key it returns the frame unchanged.
func (t *Transport) seal(frame []byte) ([]byte, error) {
	if len(t.cfg.AuthKey) == 0 {
		return frame, nil
	}
	return wire.AppendSeal(make([]byte, 0, wire.AuthOverhead+len(frame)), t.cfg.AuthKey, frame)
}

// deliver runs the dedup window and hands a received envelope to the
// handler.
func (t *Transport) deliver(env *wire.Envelope) {
	key := dedupKey{src: env.Src, id: env.MsgID}
	t.mu.Lock()
	if _, dup := t.seen[key]; dup {
		t.mu.Unlock()
		t.cfg.Metrics.Inc(CtrDupDrop)
		t.trace(obs.EvTransportDedup, env.Src, env.MsgID, "")
		return
	}
	if len(t.seenRing) < dedupCap {
		t.seenRing = append(t.seenRing, key)
	} else {
		delete(t.seen, t.seenRing[t.seenPos])
		t.seenRing[t.seenPos] = key
		t.seenPos = (t.seenPos + 1) % dedupCap
	}
	t.seen[key] = struct{}{}
	h := t.handler
	t.mu.Unlock()

	t.cfg.Metrics.Inc(CtrDelivered)
	t.cfg.Metrics.AddTraffic(env.Category, env.Hops)
	if h != nil {
		h(env)
	}
}
