package udptransport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/wire"
)

// TestBatchCoalescesBurst: with a flush delay configured, a burst of small
// messages to one peer leaves the socket as a handful of batch frames, and
// every envelope still arrives exactly once.
func TestBatchCoalescesBurst(t *testing.T) {
	ring := obs.NewRing(256)
	a, err := New(Config{
		ID:              1,
		BatchFlushDelay: 50 * time.Millisecond,
		Tracer:          obs.NewTracer(nil, ring),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })
	b, err := New(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	if err := a.AddPeer(2, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}

	const n = 20
	var mu sync.Mutex
	got := map[uint64]int{}
	b.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		got[env.MsgID]++
	})
	for i := 0; i < n; i++ {
		if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	for id, times := range got {
		if times != 1 {
			t.Errorf("message %d delivered %d times", id, times)
		}
	}
	mu.Unlock()
	if tx := a.Metrics().Counter(CtrBatchTx); tx == 0 {
		t.Error("burst produced no batch frames")
	}
	if rx := b.Metrics().Counter(CtrBatchRx); rx == 0 {
		t.Error("receiver saw no batch frames")
	}
	if batched := a.Metrics().Counter(CtrBatched); batched < 2 {
		t.Errorf("only %d envelopes rode batches", batched)
	}
	found := false
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvFrameBatched {
			found = true
		}
	}
	if !found {
		t.Error("no frame_batched trace event")
	}
}

// TestBatchRetransmitDeduped injects the same batch frame twice from a raw
// socket: each inner envelope delivers once, and both copies are acked (the
// retransmit means the sender missed the first ack).
func TestBatchRetransmitDeduped(t *testing.T) {
	b, err := New(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	var mu sync.Mutex
	delivered := map[uint64]int{}
	b.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		delivered[env.MsgID]++
	})

	envs := make([]*wire.Envelope, 3)
	for i := range envs {
		envs[i] = &wire.Envelope{
			MsgID: uint64(7 + i), Type: msg.TRepReq, Src: 1, Dst: 2,
			Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{},
		}
	}
	frame, err := wire.AppendEncodeBatch([]byte{frameBatch}, envs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := raw.WriteToUDP(frame, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 5*time.Second, func() bool { return b.Metrics().Counter(CtrDupDrop) == 3 })
	mu.Lock()
	defer mu.Unlock()
	for _, env := range envs {
		if delivered[env.MsgID] != 1 {
			t.Errorf("message %d delivered %d times, want 1", env.MsgID, delivered[env.MsgID])
		}
	}
	if got := b.Metrics().Counter(CtrBatchRx); got != 2 {
		t.Errorf("batch frames received = %d, want 2", got)
	}
	if got := b.Metrics().Counter(CtrAckTx); got != 2 {
		t.Errorf("acks sent = %d, want 2", got)
	}
}

// TestBatchSendWaitShareFate: SendWait callers whose messages coalesce into
// one batch all resolve with the batch's single acknowledgement.
func TestBatchSendWaitShareFate(t *testing.T) {
	a, err := New(Config{ID: 1, BatchFlushDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })
	b, err := New(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	if err := a.AddPeer(2, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	b.SetHandler(func(*wire.Envelope) {})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.SendWait(ctx, &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("SendWait %d: %v", i, err)
		}
	}
}
