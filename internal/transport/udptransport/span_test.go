package udptransport

import (
	"context"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/wire"
)

// TestSpanSurvivesSocket pins that a causal span identifier rides a data
// frame across the socket unchanged.
func TestSpanSurvivesSocket(t *testing.T) {
	a, b := newPair(t)
	span := obs.MintSpan(1, 42)

	got := make(chan uint64, 1)
	b.SetHandler(func(env *wire.Envelope) { got <- env.Span })
	err := a.Send(context.Background(), &wire.Envelope{
		Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Span: span, Payload: msg.RepReq{},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != span {
			t.Errorf("delivered span %x, want %x", s, span)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

// TestSpanSurvivesBatchAndRetry drives span-carrying envelopes through the
// worst of the wire path at once — coalesced batch frames, chaos drops
// forcing ARQ retransmissions — and asserts every span arrives intact.
// It also pins that transmitted batch frames record their occupancy into
// the configured histogram registry.
func TestSpanSurvivesBatchAndRetry(t *testing.T) {
	hists := obs.NewHistograms()
	a, err := New(Config{
		ID:              1,
		DropRate:        0.4,
		RetryBase:       10 * time.Millisecond,
		MaxAttempts:     12,
		BatchFlushBytes: 16 * 1024,
		BatchFlushDelay: 10 * time.Millisecond,
		Histograms:      hists,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })
	b, err := New(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	if err := a.AddPeer(2, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}

	const n = 40
	var mu sync.Mutex
	got := make(map[uint64]bool)
	b.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		got[env.Span] = true
	})

	want := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		span := obs.MintSpan(1, uint64(i+1))
		want[span] = true
		err := a.Send(context.Background(), &wire.Envelope{
			Type: msg.TQuorumClt, Dst: 2, Category: metrics.CatConfig, Span: span,
			Payload: msg.QuorumClt{BallotID: uint64(i + 1), Owner: 1, Addr: 7, Allocator: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for span := range want {
		if !got[span] {
			t.Errorf("span %x lost in transit", span)
		}
	}
	batches := a.Metrics().Counter(CtrBatchTx)
	if batches == 0 {
		t.Fatal("no batch frames transmitted; the test did not exercise coalescing")
	}
	snap, ok := hists.Snapshot(obs.HistBatchOccupancy)
	if !ok {
		t.Fatal("batch occupancy histogram not recorded")
	}
	if snap.Count != uint64(batches) {
		t.Errorf("occupancy observations = %d, want one per batch frame (%d)", snap.Count, batches)
	}
}
