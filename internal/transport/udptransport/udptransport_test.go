package udptransport

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/transport"
	"quorumconf/internal/wire"
)

func newPair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	a, err := New(Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })
	b, err := New(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	if err := a.AddPeer(2, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestBidirectionalDelivery(t *testing.T) {
	a, b := newPair(t)
	const n = 50

	var mu sync.Mutex
	gotA, gotB := map[uint64]bool{}, map[uint64]bool{}
	a.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		gotA[env.MsgID] = true
	})
	b.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		gotB[env.MsgID] = true
	})

	for i := 0; i < n; i++ {
		if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(context.Background(), &wire.Envelope{Type: msg.TRepRsp, Dst: 1, Category: metrics.CatSync, Payload: msg.RepRsp{}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gotA) == n && len(gotB) == n
	})
	if got := b.Metrics().Counter(CtrDelivered); got != n {
		t.Errorf("b delivered %d envelopes, want %d", got, n)
	}
}

func TestPayloadSurvivesSocketRoundTrip(t *testing.T) {
	a, b := newPair(t)
	want := msg.QuorumClt{BallotID: 42, Owner: 1, Addr: 77, Split: true, Allocator: 1}

	got := make(chan *wire.Envelope, 1)
	b.SetHandler(func(env *wire.Envelope) { got <- env })
	if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TQuorumClt, Dst: 2, Category: metrics.CatConfig, Payload: want}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-got:
		if env.Src != 1 || env.Dst != 2 {
			t.Errorf("endpoints wrong: %+v", env)
		}
		if env.Payload != want {
			t.Errorf("payload = %+v, want %+v", env.Payload, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestUnknownPeer(t *testing.T) {
	a, _ := newPair(t)
	err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 99, Category: metrics.CatSync, Payload: msg.RepReq{}})
	if !errors.Is(err, transport.ErrUnknownPeer) {
		t.Errorf("send to unknown peer: %v", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := newPair(t)
	if err := a.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}})
	if !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

// TestRetransmitUntilAcked points a transport at a hand-rolled UDP socket
// that stays silent for the first two data frames and only acks the third:
// the message must still arrive exactly once in the sender's accounting.
func TestRetransmitUntilAcked(t *testing.T) {
	a, err := New(Config{ID: 1, RetryBase: 20 * time.Millisecond, MaxAttempts: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })

	peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	if err := a.AddPeer(2, peer.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}

	acked := make(chan struct{})
	go func() {
		buf := make([]byte, 64*1024)
		frames := 0
		for {
			n, raddr, err := peer.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if n < 1 || buf[0] != frameData {
				continue
			}
			frames++
			if frames < 3 {
				continue // drop: force retransmission
			}
			env, err := wire.Decode(buf[1:n])
			if err != nil {
				t.Error(err)
				return
			}
			ack := binary.AppendUvarint([]byte{frameAck}, env.MsgID)
			if _, err := peer.WriteToUDP(ack, raddr); err != nil {
				t.Error(err)
			}
			close(acked)
			return
		}
	}()

	if err := a.Send(context.Background(), &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acked:
	case <-time.After(10 * time.Second):
		t.Fatal("third transmission never happened")
	}
	waitFor(t, 5*time.Second, func() bool { return a.Metrics().Counter(CtrAckRx) == 1 })
	if got := a.Metrics().Counter(CtrRetries); got < 2 {
		t.Errorf("retries = %d, want >= 2", got)
	}
	if got := a.Metrics().Counter(CtrSendDrop); got != 0 {
		t.Errorf("send drops = %d, want 0", got)
	}
}

// TestDuplicateSuppression injects the same data frame twice from a raw
// socket: the receiver must deliver once, ack twice.
func TestDuplicateSuppression(t *testing.T) {
	b, err := New(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })

	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	var mu sync.Mutex
	delivered := 0
	b.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		delivered++
	})

	frame := []byte{frameData}
	frame, err = wire.AppendEncode(frame, &wire.Envelope{
		MsgID: 7, Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{},
	})
	if err != nil {
		t.Fatal(err)
	}
	baddr := b.LocalAddr()
	for i := 0; i < 2; i++ {
		if _, err := raw.WriteToUDP(frame, baddr); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 5*time.Second, func() bool { return b.Metrics().Counter(CtrDupDrop) == 1 })
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Errorf("delivered %d times, want 1", delivered)
	}
	if got := b.Metrics().Counter(CtrAckTx); got != 2 {
		t.Errorf("acks sent = %d, want 2", got)
	}
}

// TestSendWaitAcked: SendWait returns nil once the peer acks.
func TestSendWaitAcked(t *testing.T) {
	a, b := newPair(t)
	b.SetHandler(func(*wire.Envelope) {})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.SendWait(ctx, &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
		t.Fatalf("SendWait to live peer: %v", err)
	}
}

// TestSendWaitRetriesExhausted: a silent peer (raw socket that never acks)
// must surface ErrRetriesExhausted, and the tracer must have seen the
// retry/drop sequence.
func TestSendWaitRetriesExhausted(t *testing.T) {
	ring := obs.NewRing(64)
	tracer := obs.NewTracer(nil, ring)
	a, err := New(Config{ID: 1, RetryBase: 5 * time.Millisecond, MaxAttempts: 3, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })

	mute, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mute.Close() })
	if err := a.AddPeer(2, mute.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = a.SendWait(ctx, &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}})
	if !errors.Is(err, transport.ErrRetriesExhausted) {
		t.Fatalf("SendWait to silent peer: %v, want ErrRetriesExhausted", err)
	}
	var sends, retries, drops int
	for _, e := range ring.Snapshot() {
		switch e.Kind {
		case obs.EvTransportSend:
			sends++
		case obs.EvTransportRetry:
			retries++
		case obs.EvTransportDrop:
			drops++
		}
	}
	if sends != 1 || retries != 2 || drops != 1 {
		t.Errorf("trace saw sends=%d retries=%d drops=%d, want 1/2/1", sends, retries, drops)
	}
}

// TestSendContextCancelled: a context cancelled before the call fails fast.
func TestSendContextCancelled(t *testing.T) {
	a, _ := newPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := a.Send(ctx, &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("send with cancelled context: %v", err)
	}
}
