package udptransport

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/wire"
)

var clusterKey = []byte("cluster-key-0123456789abcdef0123")

// newAuthPair is newPair with frame authentication on.
func newAuthPair(t *testing.T, cfgA, cfgB Config) (*Transport, *Transport) {
	t.Helper()
	cfgA.ID, cfgB.ID = 1, 2
	if cfgA.AuthKey == nil {
		cfgA.AuthKey = clusterKey
	}
	if cfgB.AuthKey == nil {
		cfgB.AuthKey = clusterKey
	}
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(context.Background()) })
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	if err := a.AddPeer(2, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func rawSocket(t *testing.T) *net.UDPConn {
	t.Helper()
	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	return raw
}

// sealedData builds a sealed 'D' frame for an envelope, as a keyed-but-
// malicious sender would.
func sealedData(t *testing.T, key []byte, env *wire.Envelope) []byte {
	t.Helper()
	frame, err := wire.AppendEncode([]byte{frameData}, env)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := wire.Seal(key, frame)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

// TestDropRateSentinel: the chaos knob rejects out-of-range values with the
// shared netstack sentinel, so CLI and library callers test one error.
func TestDropRateSentinel(t *testing.T) {
	for _, rate := range []float64{-0.1, 1, 1.5} {
		_, err := New(Config{ID: 1, DropRate: rate})
		if !errors.Is(err, netstack.ErrLossRateRange) {
			t.Errorf("DropRate %v: got %v, want ErrLossRateRange", rate, err)
		}
	}
	if _, err := New(Config{ID: 1, RateLimit: -1}); err == nil {
		t.Error("negative RateLimit accepted")
	}
}

// TestAuthPairDelivery: with a shared key, data, batch and ack frames are
// all sealed and the ARQ round-trip still completes.
func TestAuthPairDelivery(t *testing.T) {
	a, b := newAuthPair(t, Config{}, Config{})
	got := make(chan *wire.Envelope, 1)
	b.SetHandler(func(env *wire.Envelope) { got <- env })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	want := msg.QuorumClt{BallotID: 9, Owner: 1, Addr: 12, Allocator: 1}
	if err := a.SendWait(ctx, &wire.Envelope{Type: msg.TQuorumClt, Dst: 2, Category: metrics.CatConfig, Payload: want}); err != nil {
		t.Fatalf("SendWait with auth: %v", err)
	}
	select {
	case env := <-got:
		if env.Payload != want {
			t.Errorf("payload = %+v, want %+v", env.Payload, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
	if got := b.Metrics().Counter(CtrAuthReject); got != 0 {
		t.Errorf("auth rejects on honest traffic = %d, want 0", got)
	}
}

// TestAuthRejectsForgery: unsealed and wrong-key datagrams are dropped
// before any transport state changes — nothing delivered, nothing acked,
// nothing entered into the dedup window.
func TestAuthRejectsForgery(t *testing.T) {
	ring := obs.NewRing(64)
	b, err := New(Config{ID: 2, AuthKey: clusterKey, Tracer: obs.NewTracer(nil, ring)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	raw := rawSocket(t)

	delivered := make(chan struct{}, 16)
	b.SetHandler(func(*wire.Envelope) { delivered <- struct{}{} })

	env := &wire.Envelope{MsgID: 7, Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{}}
	plain, err := wire.AppendEncode([]byte{frameData}, env)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey := sealedData(t, []byte("not-the-cluster-key-aaaaaaaaaaaa"), env)
	tampered := sealedData(t, clusterKey, env)
	tampered[len(tampered)-1] ^= 0x01

	baddr := b.LocalAddr()
	for _, frame := range [][]byte{plain, wrongKey, tampered} {
		if _, err := raw.WriteToUDP(frame, baddr); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return b.Metrics().Counter(CtrAuthReject) == 3 })

	select {
	case <-delivered:
		t.Fatal("forged frame delivered")
	default:
	}
	if got := b.Metrics().Counter(CtrAckTx); got != 0 {
		t.Errorf("acks sent for forged frames = %d, want 0", got)
	}
	if got := b.Metrics().Counter(CtrDupDrop); got != 0 {
		t.Errorf("forged frames reached the dedup window: %d", got)
	}
	rejects := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvAuthReject {
			rejects++
		}
	}
	if rejects != 3 {
		t.Errorf("trace saw %d auth_reject events, want 3", rejects)
	}
}

// TestAuthReplayReorder: duplicate and out-of-order authenticated frames
// dedup cleanly — each distinct (src, msgID) delivers exactly once, every
// valid frame is acked, and the ARQ state stays healthy enough that a
// normal exchange completes afterwards.
func TestAuthReplayReorder(t *testing.T) {
	a, b := newAuthPair(t, Config{}, Config{})
	var mu sync.Mutex
	got := map[uint64]int{}
	b.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		got[env.MsgID]++
	})

	// A keyed attacker (or a badly reordering network) replays captured
	// frames from node 9: IDs out of order, each twice.
	raw := rawSocket(t)
	baddr := b.LocalAddr()
	frames := map[uint64][]byte{}
	for _, id := range []uint64{101, 102, 103} {
		frames[id] = sealedData(t, clusterKey, &wire.Envelope{
			MsgID: id, Type: msg.TRepReq, Src: 9, Dst: 2, Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{},
		})
	}
	for _, id := range []uint64{103, 101, 102, 102, 103, 101} {
		if _, err := raw.WriteToUDP(frames[id], baddr); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 5*time.Second, func() bool { return b.Metrics().Counter(CtrDupDrop) == 3 })
	mu.Lock()
	for _, id := range []uint64{101, 102, 103} {
		if got[id] != 1 {
			t.Errorf("msgID %d delivered %d times, want 1", id, got[id])
		}
	}
	mu.Unlock()
	if gotAcks := b.Metrics().Counter(CtrAckTx); gotAcks != 6 {
		t.Errorf("acks sent = %d, want 6 (duplicates re-acked)", gotAcks)
	}
	if gotRej := b.Metrics().Counter(CtrAuthReject); gotRej != 0 {
		t.Errorf("auth rejects = %d, want 0", gotRej)
	}

	// The replay storm must not have corrupted ARQ state: a normal
	// acknowledged exchange still works.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.SendWait(ctx, &wire.Envelope{Type: msg.TRepReq, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}}); err != nil {
		t.Fatalf("SendWait after replay storm: %v", err)
	}
}

// TestRateLimit: a flood from one remote is clamped to the bucket budget;
// a different remote is unaffected.
func TestRateLimit(t *testing.T) {
	ring := obs.NewRing(256)
	b, err := New(Config{ID: 2, RateLimit: 1, RateBurst: 5, Tracer: obs.NewTracer(nil, ring)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })

	var mu sync.Mutex
	delivered := 0
	b.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		delivered++
	})

	flood := rawSocket(t)
	baddr := b.LocalAddr()
	const sent = 50
	for i := 0; i < sent; i++ {
		frame, err := wire.AppendEncode([]byte{frameData}, &wire.Envelope{
			MsgID: uint64(i + 1), Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := flood.WriteToUDP(frame, baddr); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		return b.Metrics().Counter(CtrRateLimited)+b.Metrics().Counter(CtrDelivered) >= sent
	})
	mu.Lock()
	floodDelivered := delivered
	mu.Unlock()
	// The bucket admits the burst plus whatever refills during the flood
	// (at 1/s, effectively nothing); everything else is shed.
	if floodDelivered > 10 {
		t.Errorf("flood delivered %d frames, want <= 10 (burst 5)", floodDelivered)
	}
	if got := b.Metrics().Counter(CtrRateLimited); got < sent-10 {
		t.Errorf("rate_limited = %d, want >= %d", got, sent-10)
	}
	limited := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvRateLimited {
			limited++
		}
	}
	if limited == 0 {
		t.Error("no rate_limited trace events")
	}

	// A fresh remote gets its own bucket and sails through.
	other := rawSocket(t)
	frame, err := wire.AppendEncode([]byte{frameData}, &wire.Envelope{
		MsgID: 999, Type: msg.TRepReq, Src: 3, Dst: 2, Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.WriteToUDP(frame, baddr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered == floodDelivered+1
	})
}

// TestRateLimitRecovers: after the bucket drains, waiting lets tokens
// refill and traffic pass again.
func TestRateLimitRecovers(t *testing.T) {
	b, err := New(Config{ID: 2, RateLimit: 50, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	var mu sync.Mutex
	delivered := 0
	b.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		delivered++
	})

	raw := rawSocket(t)
	baddr := b.LocalAddr()
	send := func(id uint64) {
		frame, err := wire.AppendEncode([]byte{frameData}, &wire.Envelope{
			MsgID: id, Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Hops: 1, Payload: msg.RepReq{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := raw.WriteToUDP(frame, baddr); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		send(i)
	}
	waitFor(t, 5*time.Second, func() bool { return b.Metrics().Counter(CtrRateLimited) > 0 })

	time.Sleep(100 * time.Millisecond) // 50/s refills ~5 tokens
	send(11)
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered >= 3
	})
}
