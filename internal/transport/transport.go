// Package transport abstracts how protocol nodes exchange wire envelopes.
//
// The simulator's netstack and the real UDP transport both present the same
// narrow surface: send an envelope to a peer, receive envelopes through a
// handler. Protocol code written against Transport runs unchanged inside
// the discrete-event simulation (internal/transport/simtransport) and on
// real sockets (internal/transport/udptransport) — the bridge the ROADMAP
// needs between reproduction and deployment.
package transport

import (
	"context"
	"errors"

	"quorumconf/internal/radio"
	"quorumconf/internal/wire"
)

// Handler consumes envelopes delivered to the local node. Implementations
// invoke it from their own delivery context (the simulator goroutine for
// simtransport, the socket read loop for udptransport), so handlers must
// be fast and must not block; hand off to a channel for real work.
type Handler func(env *wire.Envelope)

// Sentinel errors shared by implementations. Match them with errors.Is;
// implementations may wrap them with destination detail.
var (
	// ErrUnknownPeer reports a destination with no known address.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrUnreachable reports a destination with no route (simtransport:
	// no path in the connectivity snapshot).
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("transport: closed")
	// ErrQueueFull reports backpressure: the per-destination send queue
	// is at capacity and the caller declined to wait (no cancellable
	// context).
	ErrQueueFull = errors.New("transport: send queue full")
	// ErrRetriesExhausted reports that a message was transmitted
	// MaxAttempts times without acknowledgement and was dropped.
	// Fire-and-forget Send reports it through trace events and the
	// send_drop counter; udptransport's SendWait returns it directly.
	ErrRetriesExhausted = errors.New("transport: retries exhausted")
)

// Transport moves wire envelopes between protocol nodes. Implementations
// fill env.Src with the local node ID and assign env.MsgID when zero.
// Delivery is best-effort: an error means the message was definitely not
// sent; a nil return means it was handed to the fabric (which may still
// lose it — the protocol's own timers handle that, exactly as over radio).
type Transport interface {
	// LocalID returns the node this transport endpoint belongs to.
	LocalID() radio.NodeID
	// Send queues env for delivery to env.Dst. The context bounds the
	// hand-off to the fabric, not delivery: a caller holding a
	// cancellable context waits for queue space until ctx is done, while
	// context.Background() gets immediate ErrQueueFull backpressure.
	Send(ctx context.Context, env *wire.Envelope) error
	// SetHandler installs the delivery callback. Must be called before
	// traffic is expected; a nil handler drops deliveries.
	SetHandler(h Handler)
	// Close releases sockets/handlers and waits for internal workers to
	// drain, up to ctx. Further Sends return ErrClosed.
	Close(ctx context.Context) error
}
