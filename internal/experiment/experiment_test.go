package experiment

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps test sweeps fast while preserving the qualitative
// shapes the paper reports.
// The paper's regime (50-200 nodes, 1km^2, tr=150m) keeps the network
// connected; below ~60 nodes components fragment and the latency shapes
// change, so the test sizes stay at the connected end.
func tinyConfig() Config {
	return Config{
		Rounds:          1,
		BaseSeed:        7,
		Sizes:           []int{60, 100},
		Ranges:          []float64{120, 200},
		Speeds:          []float64{10, 30},
		AbruptFractions: []float64{0.1, 0.4},
		MidSize:         100,
		ArrivalInterval: 2 * time.Second,
	}
}

func seriesByName(t *testing.T, f Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q (have %v)", f.ID, name, f.Series)
	return Series{}
}

func TestFig5QuorumBeatsMANETconf(t *testing.T) {
	f, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := seriesByName(t, f, "quorum")
	m := seriesByName(t, f, "manetconf")
	if len(q.Points) != 2 || len(m.Points) != 2 {
		t.Fatalf("unexpected point counts: %d, %d", len(q.Points), len(m.Points))
	}
	for i := range q.Points {
		if q.Points[i].Y <= 0 {
			t.Errorf("quorum latency at nn=%v is %v, want > 0", q.Points[i].X, q.Points[i].Y)
		}
	}
	// The paper's headline holds in the connected regime (the larger size).
	last := len(q.Points) - 1
	if q.Points[last].Y >= m.Points[last].Y {
		t.Errorf("at nn=%v quorum %.2f !< manetconf %.2f (paper: ~half)",
			q.Points[last].X, q.Points[last].Y, m.Points[last].Y)
	}
}

func TestFig6QuorumLocalAcrossRanges(t *testing.T) {
	f, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := seriesByName(t, f, "quorum")
	m := seriesByName(t, f, "manetconf")
	for i := range q.Points {
		if q.Points[i].Y >= m.Points[i].Y {
			t.Errorf("at tr=%v quorum %.2f !< manetconf %.2f", q.Points[i].X, q.Points[i].Y, m.Points[i].Y)
		}
		if q.Points[i].Y > 12 {
			t.Errorf("quorum latency %.2f hops at tr=%v, want local (<12)", q.Points[i].Y, q.Points[i].X)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	f, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d, want one per range", len(f.Series))
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y <= 0 || p.Y > 15 {
				t.Errorf("%s at nn=%v: latency %.2f out of local range", s.Name, p.X, p.Y)
			}
		}
	}
}

func TestFig8BuddySyncDominates(t *testing.T) {
	f, err := Fig8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := seriesByName(t, f, "quorum")
	b := seriesByName(t, f, "buddy")
	last := len(q.Points) - 1
	if q.Points[last].Y >= b.Points[last].Y {
		t.Errorf("at nn=%v quorum %.0f !< buddy %.0f (paper: sync makes [2] lose)",
			q.Points[last].X, q.Points[last].Y, b.Points[last].Y)
	}
	// And the gap grows with network size.
	gapSmall := b.Points[0].Y - q.Points[0].Y
	gapBig := b.Points[last].Y - q.Points[last].Y
	if gapBig <= gapSmall {
		t.Errorf("overhead gap did not grow: %.0f then %.0f", gapSmall, gapBig)
	}
}

func TestFig9QuorumDepartureCheaper(t *testing.T) {
	f, err := Fig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := seriesByName(t, f, "quorum")
	b := seriesByName(t, f, "buddy")
	last := len(q.Points) - 1
	if q.Points[last].Y >= b.Points[last].Y {
		t.Errorf("at nn=%v quorum departure %.0f !< buddy %.0f",
			q.Points[last].X, q.Points[last].Y, b.Points[last].Y)
	}
	if q.Points[last].Y == 0 {
		t.Error("quorum departure overhead is zero; departures not exercised")
	}
}

func TestFig10UponLeaveCheapest(t *testing.T) {
	f, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := seriesByName(t, f, "quorum/periodic")
	u := seriesByName(t, f, "quorum/upon-leave")
	c := seriesByName(t, f, "ctree")
	for i := range p.Points {
		if u.Points[i].Y >= p.Points[i].Y {
			t.Errorf("at nn=%v upon-leave %.0f !< periodic %.0f", p.Points[i].X, u.Points[i].Y, p.Points[i].Y)
		}
		if c.Points[i].Y <= 0 {
			t.Errorf("ctree maintenance zero at nn=%v", c.Points[i].X)
		}
	}
}

func TestFig11MovementGrowsWithSpeed(t *testing.T) {
	f, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := seriesByName(t, f, "quorum/periodic")
	u := seriesByName(t, f, "quorum/upon-leave")
	if p.Points[len(p.Points)-1].Y <= p.Points[0].Y {
		t.Errorf("movement overhead not increasing with speed: %v", p.Points)
	}
	for _, pt := range u.Points {
		if pt.Y != 0 {
			t.Errorf("upon-leave scheme charged movement traffic: %v", pt)
		}
	}
}

func TestFig12SpaceExtension(t *testing.T) {
	f, err := Fig12(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ext := seriesByName(t, f, "space extension (x)")
	qd := seriesByName(t, f, "avg |QDSet|")
	for i := range ext.Points {
		if ext.Points[i].Y < 1 {
			t.Errorf("extension ratio %.2f < 1 at tr=%v", ext.Points[i].Y, ext.Points[i].X)
		}
		if qd.Points[i].Y <= 0 {
			t.Errorf("no QDSet members at tr=%v", qd.Points[i].X)
		}
	}
	// Replication must extend the usable space beyond the head's own
	// block somewhere in the sweep (the paper reports up to 5.5x).
	extended := false
	for _, p := range ext.Points {
		if p.Y > 1.2 {
			extended = true
		}
	}
	if !extended {
		t.Errorf("no measurable space extension anywhere: %v", ext.Points)
	}
}

func TestFig13QuorumMoreReliable(t *testing.T) {
	f, err := Fig13(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := seriesByName(t, f, "quorum")
	c := seriesByName(t, f, "ctree")
	for i := range q.Points {
		if q.Points[i].Y < 0 || q.Points[i].Y > 100 {
			t.Errorf("loss %% out of range: %v", q.Points[i])
		}
		if q.Points[i].Y > c.Points[i].Y {
			t.Errorf("at f=%v quorum loss %.0f%% > ctree %.0f%%", q.Points[i].X, q.Points[i].Y, c.Points[i].Y)
		}
	}
	// At the low fraction the paper reports near-total preservation.
	if q.Points[0].Y > 25 {
		t.Errorf("quorum loss %.0f%% at low abrupt fraction, want small", q.Points[0].Y)
	}
}

func TestFig14ReclamationNonZero(t *testing.T) {
	f, err := Fig14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := seriesByName(t, f, "quorum")
	c := seriesByName(t, f, "ctree")
	nonzeroQ, nonzeroC := false, false
	for i := range q.Points {
		if q.Points[i].Y > 0 {
			nonzeroQ = true
		}
		if c.Points[i].Y > 0 {
			nonzeroC = true
		}
	}
	if !nonzeroQ || !nonzeroC {
		t.Errorf("reclamation never charged: quorum=%v ctree=%v", q.Points, c.Points)
	}
}

func TestTable1TraceOrder(t *testing.T) {
	events, err := Table1Trace()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Type)
	}
	joined := strings.Join(kinds, " ")
	pos := 0
	for _, want := range []string{"CH_REQ", "CH_PRP", "CH_CNF", "QUORUM_CLT", "QUORUM_CFM", "CH_CFG", "CH_ACK"} {
		idx := strings.Index(joined[pos:], want)
		if idx < 0 {
			t.Fatalf("%q missing/out of order in trace %s", want, joined)
		}
		pos += idx
	}
	out := FormatTrace(events)
	if !strings.Contains(out, "CH_REQ") || !strings.Contains(out, "table1") {
		t.Errorf("FormatTrace output missing content:\n%s", out)
	}
}

func TestGenerateLayout(t *testing.T) {
	l, err := GenerateLayout(tinyConfig(), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Nodes) != 50 {
		t.Fatalf("layout has %d nodes, want 50", len(l.Nodes))
	}
	if len(l.Heads) == 0 {
		t.Error("layout formed no heads")
	}
	if len(l.Violations) != 0 {
		t.Errorf("static formation produced neighbor heads: %v", l.Violations)
	}
	out := l.String()
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "head") {
		t.Errorf("layout render missing content:\n%.200s", out)
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}},
			{Name: "b", Points: []Point{{X: 1, Y: 5}}},
		},
	}
	out := f.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "a") {
		t.Errorf("render missing header/series: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("short series should render a dash placeholder")
	}
}

func TestAblationBorrowingHelps(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{40}
	f, err := AblationBorrowing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	on := seriesByName(t, f, "borrowing on")
	off := seriesByName(t, f, "borrowing off")
	if on.Points[0].Y < off.Points[0].Y {
		t.Errorf("borrowing on %.2f < off %.2f configured fraction", on.Points[0].Y, off.Points[0].Y)
	}
	if on.Points[0].Y < 0.85 {
		t.Errorf("borrowing on configured only %.2f of nodes", on.Points[0].Y)
	}
}

func TestLayoutSVG(t *testing.T) {
	l, err := GenerateLayout(tinyConfig(), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	svg := l.SVG(150)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if !strings.Contains(svg, "circle") {
		t.Error("SVG has no node circles")
	}
	if !strings.Contains(svg, "cluster heads") {
		t.Error("SVG missing summary text")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "x,with comma", YLabel: "y",
		Series: []Series{
			{Name: `quote"name`, Points: []Point{{X: 1, Y: 2.5}}},
			{Name: "plain", Points: []Point{{X: 1, Y: 3}}},
		},
	}
	out := f.CSV()
	if !strings.Contains(out, `"x,with comma"`) {
		t.Errorf("comma field not quoted: %q", out)
	}
	if !strings.Contains(out, `"quote""name"`) {
		t.Errorf("quote field not escaped: %q", out)
	}
	if !strings.Contains(out, "1,2.5,3") {
		t.Errorf("data row wrong: %q", out)
	}
	if empty := (Figure{ID: "e"}).CSV(); !strings.Contains(empty, "# e") {
		t.Error("empty figure CSV missing header")
	}
}
