package experiment

// The byzantine sweep is this repository's robustness evaluation: it grows
// the number of malicious insiders k and measures how the quorum protocol
// and the three baselines degrade on the three axes the paper's §VI
// evaluates in the honest setting — address uniqueness, configuration
// latency, and reclamation reliability. The malicious repertoire mixes
// protocol-specific attacks on the quorum scheme (forged votes, unballoted
// duplicate grants, forged reclamation reports; core.ByzantineParams) with
// protocol-agnostic ones every scheme faces (Sybil joiners and silent
// droppers; workload.Byzantine).

import (
	"fmt"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/baseline/buddy"
	"quorumconf/internal/baseline/ctree"
	"quorumconf/internal/baseline/manetconf"
	"quorumconf/internal/core"
	"quorumconf/internal/radio"
	"quorumconf/internal/workload"
)

// ByzantineResult bundles the sweep's figures with a flat summary map for
// the benchmark trajectory file.
type ByzantineResult struct {
	// Figures holds three figures — conflict rate, configuration latency,
	// and recovery index versus k — each with one series per protocol.
	Figures []Figure
	// Summary flattens every (metric, protocol, k) cell into
	// "byz_<metric>_<protocol>_k<k>" keys for BENCH_sweeps.json.
	Summary map[string]float64
}

// DefaultByzantineKs is the malicious-node sweep used when the caller
// passes none.
var DefaultByzantineKs = []int{0, 2, 4, 6}

// splitMalicious deterministically partitions the k lowest node IDs into
// the active subset (vote-liar + duplicate-claimer insiders, which also
// mount Sybil joins) and the silent-dropper subset. Low IDs arrive first
// and therefore tend to become infrastructure (cluster heads, replica
// holders) — the worst-case insider. Every third malicious node is a
// dropper so both behavior classes are present from k >= 3.
func splitMalicious(k int) (active, droppers []radio.NodeID) {
	for i := 0; i < k; i++ {
		if i%3 == 2 {
			droppers = append(droppers, radio.NodeID(i))
		} else {
			active = append(active, radio.NodeID(i))
		}
	}
	return active, droppers
}

// byzScenario is the common workload for every protocol at a given k: a
// static mid-size network where a quarter of the nodes later crash
// abruptly (exercising reclamation), with the active malicious subset
// mounting Sybil joins and the dropper subset eating deliveries.
func (c Config) byzScenario(k int) workload.Scenario {
	active, droppers := splitMalicious(k)
	// Connected-growth placement keeps the fleet one multi-hop MANET
	// from the first node on (100·√2 < tr): the sweep then measures
	// what the insiders break, not partition-merge artifacts — buddy
	// and C-tree have no merge resolution, so independent uniform
	// placement would drown the byzantine signal in formation-time
	// duplicate spaces.
	return workload.Scenario{
		NumNodes:          c.MidSize,
		TransmissionRange: 150,
		Speed:             0,
		GrowRadius:        100,
		ArrivalInterval:   c.ArrivalInterval,
		DepartFraction:    0.25,
		AbruptFraction:    1.0,
		Byzantine: workload.Byzantine{
			SybilNodes:      active,
			SilentDropNodes: droppers,
		},
	}
}

// byzIDs lists every identity a run can configure: the initial nodes plus
// the Sybil identities the attackers present.
func byzIDs(sc workload.Scenario) []radio.NodeID {
	per := sc.Byzantine.SybilPerNode
	if per == 0 && len(sc.Byzantine.SybilNodes) > 0 {
		per = 3 // workload default
	}
	ids := make([]radio.NodeID, 0, sc.NumNodes+len(sc.Byzantine.SybilNodes)*per)
	for i := 0; i < sc.NumNodes; i++ {
		ids = append(ids, radio.NodeID(i))
	}
	for i := range sc.Byzantine.SybilNodes {
		for j := 0; j < per; j++ {
			ids = append(ids, radio.NodeID(sc.NumNodes+workload.SybilIDBase+i*per+j))
		}
	}
	return ids
}

// conflictRate returns the percentage of configured identities holding an
// address also held by another configured, mutually-reachable identity —
// the headline uniqueness violation, zero in every honest run. Address
// reuse across disconnected islands is legitimate (they are separate
// networks, exactly as core.AddressConflicts counts it) and excluded.
func conflictRate(res *workload.Result, sc workload.Scenario) float64 {
	p, ok := res.Proto.(interface {
		IP(radio.NodeID) (addrspace.Addr, bool)
	})
	if !ok {
		return 0
	}
	holders := make(map[addrspace.Addr][]radio.NodeID)
	configured := 0
	for _, id := range byzIDs(sc) {
		if !res.Proto.IsConfigured(id) {
			continue
		}
		if a, ok := p.IP(id); ok {
			holders[a] = append(holders[a], id)
			configured++
		}
	}
	if configured == 0 {
		return 0
	}
	snap := res.RT.Topo.Snapshot(res.RT.Sim.Now())
	conflicted := 0
	for _, ids := range holders {
		if len(ids) < 2 {
			continue
		}
		for i, x := range ids {
			for j, y := range ids {
				if i != j && snap.Reachable(x, y) {
					conflicted++
					break
				}
			}
		}
	}
	return 100 * float64(conflicted) / float64(configured)
}

// recoveryIndex normalizes the protocol's reclamation counter by the
// number of abrupt departures: how much leaked state each crash recovered
// on average. Sabotaged reclamation drags it toward zero.
func recoveryIndex(res *workload.Result, counter string) float64 {
	abrupt := 0
	for _, d := range res.Departures {
		if !d.Graceful {
			abrupt++
		}
	}
	if abrupt == 0 {
		return 0
	}
	return float64(res.Metrics().Counter(counter)) / float64(abrupt)
}

// byzProto is one protocol column of the sweep.
type byzProto struct {
	name            string
	recoveryCounter string
	// build receives the active malicious subset; only the quorum
	// protocol consumes it (the baselines face just the generic attacks).
	build func(c Config, active []radio.NodeID) workload.BuildFunc
}

func byzProtos() []byzProto {
	return []byzProto{
		{"quorum", core.CounterAddrReclaimed, func(c Config, active []radio.NodeID) workload.BuildFunc {
			return c.buildQuorum(func(p *core.Params) {
				p.Byzantine = core.ByzantineParams{
					Nodes:     active,
					Behaviors: core.ByzVoteLiar | core.ByzDupClaimer,
				}
			})
		}},
		{"manetconf", manetconf.CounterCleanups, func(c Config, _ []radio.NodeID) workload.BuildFunc {
			return c.buildMANETconf()
		}},
		{"buddy", buddy.CounterBuddyReclaims, func(c Config, _ []radio.NodeID) workload.BuildFunc {
			return c.buildBuddy()
		}},
		{"ctree", ctree.CounterRootReclamations, func(c Config, _ []radio.NodeID) workload.BuildFunc {
			return c.buildCTree()
		}},
	}
}

// ByzantineSweep grows the number of malicious insiders over ks (default
// DefaultByzantineKs) and measures all four protocols on conflict rate,
// configuration latency, and recovery index. nil ks selects the default
// sweep.
func ByzantineSweep(cfg Config, ks []int) (ByzantineResult, error) {
	cfg.setDefaults()
	if len(ks) == 0 {
		ks = DefaultByzantineKs
	}
	protos := byzProtos()

	type cell struct{ conflict, latency, recovery sampleStats }
	cells := make([]cell, len(ks)*len(protos))
	err := cfg.parallelDo(len(ks)*len(protos), func(i int) error {
		ki, pi := i/len(protos), i%len(protos)
		k, proto := ks[ki], protos[pi]
		sc := cfg.byzScenario(k)
		active, _ := splitMalicious(k)
		build := proto.build(cfg, active)
		vals := make([][3]float64, cfg.Rounds)
		err := cfg.parallelDo(cfg.Rounds, func(r int) error {
			round := sc
			round.Seed = cfg.BaseSeed + int64(r)*7919
			res, err := cfg.runRound(round, build)
			if err != nil {
				return fmt.Errorf("byzantine %s k=%d: %w", proto.name, k, err)
			}
			vals[r] = [3]float64{
				conflictRate(res, round),
				meanLatency(res),
				recoveryIndex(res, proto.recoveryCounter),
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, v := range vals {
			cells[i].conflict.add(v[0])
			cells[i].latency.add(v[1])
			cells[i].recovery.add(v[2])
		}
		return nil
	})
	if err != nil {
		return ByzantineResult{}, err
	}

	metrics := []struct {
		id, title, ylabel string
		pick              func(cell) sampleStats
	}{
		{"byz-conflict", "Address-conflict rate vs malicious nodes k", "% conflicted identities",
			func(c cell) sampleStats { return c.conflict }},
		{"byz-latency", "Configuration latency vs malicious nodes k", "latency (hops)",
			func(c cell) sampleStats { return c.latency }},
		{"byz-recovery", "Reclamation recovery index vs malicious nodes k", "addresses recovered / crash",
			func(c cell) sampleStats { return c.recovery }},
	}
	res := ByzantineResult{Summary: make(map[string]float64)}
	for _, m := range metrics {
		fig := Figure{
			ID:     m.id,
			Title:  fmt.Sprintf("%s (nn=%d)", m.title, cfg.MidSize),
			XLabel: "malicious nodes k",
			YLabel: m.ylabel,
		}
		for pi, proto := range protos {
			s := Series{Name: proto.name}
			for ki, k := range ks {
				st := m.pick(cells[ki*len(protos)+pi])
				s.Points = append(s.Points, Point{X: float64(k), Y: st.Mean(), Err: st.Stddev()})
				key := fmt.Sprintf("byz_%s_%s_k%d", m.id[len("byz-"):], proto.name, k)
				res.Summary[key] = st.Mean()
			}
			fig.Series = append(fig.Series, s)
		}
		res.Figures = append(res.Figures, fig)
	}
	return res, nil
}
