package experiment

import (
	"fmt"

	"quorumconf/internal/core"
	"quorumconf/internal/workload"
)

// ExtensionLossTolerance goes beyond the paper's reliable-delivery
// assumption (§IV-B): it sweeps a per-hop message loss rate and measures
// how well the quorum protocol still configures the network. The
// protocol's timers — configuration retries, quorum timeouts with
// electorate shrink, the Td/Tr failure chain — double as loss recovery,
// so configuration success should degrade gracefully while latency climbs
// as retries pile up.
func ExtensionLossTolerance(cfg Config) (Figure, error) {
	cfg.setDefaults()
	nn := cfg.MidSize
	fig := Figure{
		ID:     "ext-loss",
		Title:  fmt.Sprintf("Quorum protocol under per-hop message loss (nn=%d)", nn),
		XLabel: "loss rate",
		YLabel: "fraction / hops",
	}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	configured := Series{Name: "configured fraction"}
	latency := Series{Name: "mean latency (hops)"}
	type roundSample struct{ cfgFrac, lat float64 }
	rounds := make([][]roundSample, len(rates))
	err := cfg.parallelDo(len(rates), func(ri int) error {
		rate := rates[ri]
		rounds[ri] = make([]roundSample, cfg.Rounds)
		return cfg.parallelDo(cfg.Rounds, func(r int) error {
			sc := workload.Scenario{
				Seed:              cfg.BaseSeed + int64(r)*7919,
				NumNodes:          nn,
				TransmissionRange: 150,
				Speed:             0,
				ArrivalInterval:   cfg.ArrivalInterval,
				LossRate:          rate,
			}
			res, err := cfg.runRound(sc, cfg.buildQuorum(nil))
			if err != nil {
				return fmt.Errorf("ext-loss rate=%v: %w", rate, err)
			}
			qp := res.Proto.(*core.Protocol)
			rounds[ri][r] = roundSample{
				cfgFrac: float64(qp.ConfiguredCount()) / float64(nn),
				lat:     res.Metrics().Summarize(core.SampleConfigLatency).Mean,
			}
			return nil
		})
	})
	if err != nil {
		return Figure{}, err
	}
	for ri, rate := range rates {
		var cfgFrac, lat float64
		for _, rs := range rounds[ri] {
			cfgFrac += rs.cfgFrac
			lat += rs.lat
		}
		n := float64(cfg.Rounds)
		configured.Points = append(configured.Points, Point{X: rate, Y: cfgFrac / n})
		latency.Points = append(latency.Points, Point{X: rate, Y: lat / n})
	}
	fig.Series = []Series{configured, latency}
	return fig, nil
}
