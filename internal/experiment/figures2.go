package experiment

import (
	"fmt"
	"time"

	"quorumconf/internal/core"
	"quorumconf/internal/metrics"
	"quorumconf/internal/radio"
	"quorumconf/internal/workload"

	"quorumconf/internal/baseline/ctree"
)

// Fig10 reproduces Figure 10: maintenance message overhead (movement plus
// departure plus periodic state upkeep) versus network size, at 20 m/s,
// for the quorum protocol under both location-update schemes and for the
// distributed C-tree scheme.
func Fig10(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig10",
		Title:  "Maintenance overhead (movement+departure) vs network size, 20 m/s",
		XLabel: "nodes",
		YLabel: "overhead (hops)",
	}
	maintCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().TotalHops(
			metrics.CatMovement, metrics.CatDeparture, metrics.CatSync))
	}
	series, err := cfg.gridSweep("fig10", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.3,
			AbruptFraction:    0,
			SettleTime:        120 * time.Second,
		}
	}, []sweepSpec{
		{Name: "quorum/periodic", Build: cfg.buildQuorum(nil), Metric: maintCost},
		{Name: "quorum/upon-leave", Build: cfg.buildQuorum(func(pr *core.Params) { pr.UponLeaveOnly = true }), Metric: maintCost},
		{Name: "ctree", Build: cfg.buildCTree(), Metric: maintCost},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// Fig11 reproduces Figure 11: movement message overhead versus node speed
// at nn = 150. Location updates fire when a node drifts more than three
// hops from its configurer, so higher mobility means more UPDATE_LOC
// traffic; the upon-leave scheme stays at zero.
func Fig11(cfg Config) (Figure, error) {
	cfg.setDefaults()
	nn := 150
	fig := Figure{
		ID:     "fig11",
		Title:  fmt.Sprintf("Movement overhead vs node speed (nn=%d)", nn),
		XLabel: "speed (m/s)",
		YLabel: "overhead (hops)",
	}
	moveCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().Hops(metrics.CatMovement))
	}
	series, err := cfg.gridSweep("fig11", cfg.Speeds, func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             cfg.Speeds[i],
			ArrivalInterval:   cfg.ArrivalInterval,
			SettleTime:        120 * time.Second,
		}
	}, []sweepSpec{
		{Name: "quorum/periodic", Build: cfg.buildQuorum(nil), Metric: moveCost},
		{Name: "quorum/upon-leave", Build: cfg.buildQuorum(func(pr *core.Params) { pr.UponLeaveOnly = true }), Metric: moveCost},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// fig12Round is the per-round sample of the Figure 12 structure
// measurement. Sums are accumulated per round and reduced in round order
// so the parallel fan-out reproduces the serial totals bit for bit.
type fig12Round struct {
	qd, ext, eff float64
	hasHeads     bool
	pool         float64
	hasCoords    bool
}

// Fig12 reproduces Figure 12: average QDSet size and the IP-space
// extension factor versus transmission range. Partial replication lets a
// cluster head serve from IPSpace plus QuorumSpace; the paper reports up
// to 5.5x the coordinator-only space of the C-tree scheme, growing with
// transmission range.
func Fig12(cfg Config) (Figure, error) {
	cfg.setDefaults()
	nn := cfg.MidSize
	fig := Figure{
		ID:     "fig12",
		Title:  fmt.Sprintf("Quorum size and IP-space extension vs transmission range (nn=%d)", nn),
		XLabel: "range (m)",
		YLabel: "size / ratio",
	}
	rounds := make([][]fig12Round, len(cfg.Ranges))
	err := cfg.parallelDo(len(cfg.Ranges), func(ti int) error {
		tr := cfg.Ranges[ti]
		rounds[ti] = make([]fig12Round, cfg.Rounds)
		return cfg.parallelDo(cfg.Rounds, func(r int) error {
			release := cfg.acquire()
			defer release()
			sc := workload.Scenario{
				Seed:              cfg.BaseSeed + int64(r)*7919,
				NumNodes:          nn,
				TransmissionRange: tr,
				Speed:             0, // structure measurement on the formed network
				ArrivalInterval:   cfg.ArrivalInterval,
			}
			res, err := workload.Run(sc, cfg.buildQuorum(nil))
			if err != nil {
				return fmt.Errorf("fig12 quorum tr=%v: %w", tr, err)
			}
			out := &rounds[ti][r]
			qp := res.Proto.(*core.Protocol)
			heads := qp.Heads()
			if len(heads) == 0 {
				return nil // round contributes nothing (matches the old continue)
			}
			out.hasHeads = true
			var qd, ownTot, effTot float64
			for _, h := range heads {
				qd += float64(qp.QDSetSize(h))
				ownTot += float64(qp.OwnSpaceSize(h))
				effTot += float64(qp.EffectiveSpaceSize(h))
			}
			out.qd = qd / float64(len(heads))
			if ownTot > 0 {
				// Aggregate extension factor: total usable space
				// (IPSpace + QuorumSpace) over total owned space.
				out.ext = effTot / ownTot
			}
			out.eff = effTot / float64(len(heads))

			cres, err := workload.Run(sc, cfg.buildCTree())
			if err != nil {
				return fmt.Errorf("fig12 ctree tr=%v: %w", tr, err)
			}
			cp := cres.Proto.(*ctree.Protocol)
			coords := cp.Coordinators()
			var pool float64
			for _, id := range coords {
				pool += float64(cp.PoolSize(id))
			}
			if len(coords) > 0 {
				out.hasCoords = true
				out.pool = pool / float64(len(coords))
			}
			return nil
		})
	})
	if err != nil {
		return Figure{}, err
	}
	qdSeries := Series{Name: "avg |QDSet|"}
	extSeries := Series{Name: "space extension (x)"}
	ratioSeries := Series{Name: "vs ctree (x)"}
	for ti, tr := range cfg.Ranges {
		var qdSum, extSum, quorumEff, ctreePool float64
		for _, rr := range rounds[ti] {
			if rr.hasHeads {
				qdSum += rr.qd
				extSum += rr.ext
				quorumEff += rr.eff
			}
			if rr.hasCoords {
				ctreePool += rr.pool
			}
		}
		n := float64(cfg.Rounds)
		qdSeries.Points = append(qdSeries.Points, Point{X: tr, Y: qdSum / n})
		extSeries.Points = append(extSeries.Points, Point{X: tr, Y: extSum / n})
		ratio := 0.0
		if ctreePool > 0 {
			ratio = quorumEff / ctreePool
		}
		ratioSeries.Points = append(ratioSeries.Points, Point{X: tr, Y: ratio})
	}
	fig.Series = []Series{qdSeries, extSeries, ratioSeries}
	return fig, nil
}

// Fig13 reproduces Figure 13: percentage of IP state information lost
// versus the fraction of cluster heads that leave abruptly and
// simultaneously. The quorum protocol preserves a head's state as long as
// half its QDSet survives; the C-tree scheme depends on the single root
// holding a fresh report.
func Fig13(cfg Config) (Figure, error) {
	cfg.setDefaults()
	nn := cfg.MidSize
	fig := Figure{
		ID:     "fig13",
		Title:  fmt.Sprintf("IP state lost vs abrupt-leave fraction of heads (nn=%d)", nn),
		XLabel: "abrupt fraction",
		YLabel: "% state lost",
	}
	type lossRound struct{ q, c float64 }
	rounds := make([][]lossRound, len(cfg.AbruptFractions))
	err := cfg.parallelDo(len(cfg.AbruptFractions), func(fi int) error {
		frac := cfg.AbruptFractions[fi]
		rounds[fi] = make([]lossRound, cfg.Rounds)
		return cfg.parallelDo(cfg.Rounds, func(r int) error {
			release := cfg.acquire()
			defer release()
			seed := cfg.BaseSeed + int64(r)*7919
			ql, err := quorumLossRound(cfg, seed, nn, frac)
			if err != nil {
				return fmt.Errorf("fig13 quorum f=%v: %w", frac, err)
			}
			cl, err := ctreeLossRound(cfg, seed, nn, frac)
			if err != nil {
				return fmt.Errorf("fig13 ctree f=%v: %w", frac, err)
			}
			rounds[fi][r] = lossRound{q: ql, c: cl}
			return nil
		})
	})
	if err != nil {
		return Figure{}, err
	}
	quorumSeries := Series{Name: "quorum"}
	ctreeSeries := Series{Name: "ctree"}
	for fi, frac := range cfg.AbruptFractions {
		var qLost, cLost float64
		for _, rr := range rounds[fi] {
			qLost += rr.q
			cLost += rr.c
		}
		n := float64(cfg.Rounds)
		quorumSeries.Points = append(quorumSeries.Points, Point{X: frac, Y: 100 * qLost / n})
		ctreeSeries.Points = append(ctreeSeries.Points, Point{X: frac, Y: 100 * cLost / n})
	}
	fig.Series = []Series{quorumSeries, ctreeSeries}
	return fig, nil
}

// quorumLossRound builds a network, kills a fraction of the heads
// simultaneously, and returns the fraction of killed heads whose state is
// unrecoverable (fewer than half the QDSet survived, §VI-D2).
func quorumLossRound(cfg Config, seed int64, nn int, frac float64) (float64, error) {
	sc := workload.Scenario{
		Seed:              seed,
		NumNodes:          nn,
		TransmissionRange: 150,
		Speed:             0,
		ArrivalInterval:   cfg.ArrivalInterval,
	}
	res, err := workload.Prepare(sc, cfg.buildQuorum(nil))
	if err != nil {
		return 0, err
	}
	qp := res.Proto.(*core.Protocol)
	var lost, killed float64
	res.RT.Sim.ScheduleAt(res.Horizon-time.Second, func() {
		// Measure the replication mechanism: draw victims among heads
		// that can hold replicas (heads alone in a one-head island have
		// no replication story under either protocol; see EXPERIMENTS.md).
		var heads []radio.NodeID
		for _, h := range qp.Heads() {
			if len(qp.HoldersOf(h)) > 1 {
				heads = append(heads, h)
			}
		}
		k := int(float64(len(heads)) * frac)
		if k == 0 && frac > 0 && len(heads) > 0 {
			k = 1
		}
		victims := make([]radio.NodeID, 0, k)
		perm := res.RT.Sim.Rand().Perm(len(heads))
		for _, idx := range perm[:k] {
			victims = append(victims, heads[idx])
		}
		holders := make(map[radio.NodeID][]radio.NodeID, len(victims))
		for _, v := range victims {
			holders[v] = qp.HoldersOf(v)
		}
		dead := make(map[radio.NodeID]bool, len(victims))
		for _, v := range victims {
			dead[v] = true
		}
		for _, v := range victims {
			qp.NodeDeparting(v, false)
		}
		for _, v := range victims {
			killed++
			// QDSet = holders minus the owner itself.
			var qd, survivors int
			for _, h := range holders[v] {
				if h == v {
					continue
				}
				qd++
				if !dead[h] {
					survivors++
				}
			}
			if qd == 0 || 2*survivors < qd {
				lost++
			}
		}
	})
	if err := res.RT.Sim.RunUntil(res.Horizon); err != nil {
		return 0, err
	}
	if killed == 0 {
		return 0, nil
	}
	return lost / killed, nil
}

// ctreeLossRound does the same over the C-tree scheme: a killed
// coordinator's state survives only if it had reported to a C-root that is
// itself still alive.
func ctreeLossRound(cfg Config, seed int64, nn int, frac float64) (float64, error) {
	sc := workload.Scenario{
		Seed:              seed,
		NumNodes:          nn,
		TransmissionRange: 150,
		Speed:             0,
		ArrivalInterval:   cfg.ArrivalInterval,
	}
	res, err := workload.Prepare(sc, cfg.buildCTree())
	if err != nil {
		return 0, err
	}
	cp := res.Proto.(*ctree.Protocol)
	var lost, killed float64
	res.RT.Sim.ScheduleAt(res.Horizon-time.Second, func() {
		// Same victim rule as the quorum round: coordinators that can be
		// backed up, i.e. can reach the C-root.
		snap := res.RT.Net.Snapshot()
		root, hasRoot := cp.Root()
		var coords []radio.NodeID
		for _, c := range cp.Coordinators() {
			if c == root || (hasRoot && snap.Reachable(c, root)) {
				coords = append(coords, c)
			}
		}
		k := int(float64(len(coords)) * frac)
		if k == 0 && frac > 0 && len(coords) > 0 {
			k = 1
		}
		perm := res.RT.Sim.Rand().Perm(len(coords))
		victims := make([]radio.NodeID, 0, k)
		for _, idx := range perm[:k] {
			victims = append(victims, coords[idx])
		}
		for _, v := range victims {
			cp.NodeDeparting(v, false)
		}
		for _, v := range victims {
			killed++
			if !cp.StatePreserved(v) {
				lost++
			}
		}
	})
	if err := res.RT.Sim.RunUntil(res.Horizon); err != nil {
		return 0, err
	}
	if killed == 0 {
		return 0, nil
	}
	return lost / killed, nil
}

// Fig14 reproduces Figure 14: address reclamation message overhead versus
// network size, quorum against the C-tree scheme, under abrupt departures.
func Fig14(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig14",
		Title:  "Address reclamation overhead vs network size",
		XLabel: "nodes",
		YLabel: "overhead (hops)",
	}
	reclaimCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().Hops(metrics.CatReclamation))
	}
	series, err := cfg.gridSweep("fig14", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.4,
			AbruptFraction:    1.0,
			SettleTime:        180 * time.Second, // give detection time to run
		}
	}, []sweepSpec{
		{Name: "quorum", Build: cfg.buildQuorum(nil), Metric: reclaimCost},
		{Name: "ctree", Build: cfg.buildCTree(), Metric: reclaimCost},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}
