package experiment

import (
	"fmt"
	"sync"

	"quorumconf/internal/workload"
)

// The sweep engine fans independent seeded simulation rounds onto a
// bounded worker pool while keeping figures bit-identical to a serial run.
// The determinism contract has three parts:
//
//  1. Seeds are a pure function of the round index (BaseSeed + r*7919),
//     never of scheduling order.
//  2. Every goroutine writes its result into its own index slot; nothing
//     is appended from a worker.
//  3. Reductions (mean, stddev, series assembly) run after the fan-in, in
//     index order, so floating-point accumulation order matches the old
//     serial loops exactly.
//
// Concurrency is admitted only at the leaf — around one simulated round —
// via Config.acquire. Outer fan-out levels (figures under All, grid points
// under a figure) spawn cheap goroutines freely, so nested parallelism can
// never deadlock on the semaphore and memory stays bounded by Workers
// concurrently-live simulations.

// parallelDo runs jobs 0..n-1 and waits for all of them. With Workers <= 1
// the jobs run inline in index order (the exact serial code path). On
// failure the error of the lowest-index failing job is returned, matching
// the first error a serial loop would have surfaced.
func (c Config) parallelDo(n int, job func(int) error) error {
	if n <= 0 {
		return nil
	}
	if c.Workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// acquire blocks until a simulation slot is free and returns the release
// func. Only round bodies (the code that actually runs a simulator) may
// hold a slot; holding one across a nested parallelDo would deadlock.
func (c Config) acquire() func() {
	if c.sem == nil {
		return func() {}
	}
	c.sem <- struct{}{}
	return func() { <-c.sem }
}

// runRound executes one scenario under the admission semaphore. Every
// experiment round funnels through here, so attaching Config.Tracer at
// this seam covers all sweeps.
func (c Config) runRound(sc workload.Scenario, build workload.BuildFunc) (*workload.Result, error) {
	release := c.acquire()
	defer release()
	if sc.Tracer == nil {
		sc.Tracer = c.Tracer
	}
	return workload.Run(sc, build)
}

// sweepSpec is one series of a grid sweep: a protocol builder and the
// metric extracted from each round.
type sweepSpec struct {
	Name   string
	Build  workload.BuildFunc
	Metric func(*workload.Result) float64
}

// gridSweep evaluates every (x, series, round) cell of a figure grid on the
// worker pool and assembles one Series per spec with points in x order.
// scenario(i) builds the scenario column for xs[i] (Seed is assigned per
// round by statsOver). When withErr is false the sample standard deviation
// is dropped from the points, matching the figures that historically used
// averageOver.
func (c Config) gridSweep(figID string, xs []float64, scenario func(i int) workload.Scenario, specs []sweepSpec, withErr bool) ([]Series, error) {
	type cell struct{ mean, std float64 }
	cells := make([]cell, len(xs)*len(specs))
	err := c.parallelDo(len(cells), func(i int) error {
		xi, si := i/len(specs), i%len(specs)
		sp := specs[si]
		mean, std, err := c.statsOver(scenario(xi), sp.Build, sp.Metric)
		if err != nil {
			return fmt.Errorf("%s %s x=%g: %w", figID, sp.Name, xs[xi], err)
		}
		cells[i] = cell{mean, std}
		return nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(specs))
	for si, sp := range specs {
		s := Series{Name: sp.Name, Points: make([]Point, len(xs))}
		for xi := range xs {
			cl := cells[xi*len(specs)+si]
			p := Point{X: xs[xi], Y: cl.mean}
			if withErr {
				p.Err = cl.std
			}
			s.Points[xi] = p
		}
		series[si] = s
	}
	return series, nil
}

// floats converts a sweep axis of ints to the float64 x values figures
// plot.
func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
