package experiment

import (
	"fmt"
	"strings"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/core"
	"quorumconf/internal/mobility"
	"quorumconf/internal/netstack"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// TraceEvent is one delivered protocol message of a trace.
type TraceEvent struct {
	At   time.Duration
	Type string
	Src  radio.NodeID
	Dst  radio.NodeID
	Hops int
}

// Table1Trace reproduces the paper's Table 1: the message exchange that
// configures a new cluster head, including the quorum collection with the
// allocator's adjacent heads. It scripts a line topology in which heads
// form at nodes 0, 3 and 6; the returned events are those exchanged while
// node 6 configures.
func Table1Trace() ([]TraceEvent, error) {
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		return nil, err
	}
	p, err := core.New(rt, core.Params{Space: addrspace.Block{Lo: 1, Hi: 64}})
	if err != nil {
		return nil, err
	}
	arrive := func(at time.Duration, id radio.NodeID, x float64) {
		rt.Sim.ScheduleAt(at, func() {
			if err := rt.Topo.Add(id, mobility.Static(mobility.Point{X: x})); err != nil {
				return
			}
			rt.Net.InvalidateSnapshot()
			p.NodeArrived(id)
		})
	}
	for i := 0; i < 6; i++ {
		arrive(time.Duration(i*20)*time.Second, radio.NodeID(i), float64(i)*100)
	}
	var events []TraceEvent
	rt.Sim.ScheduleAt(119*time.Second, func() {
		rt.Net.SetTrace(func(at time.Duration, m netstack.Message) {
			events = append(events, TraceEvent{At: at, Type: m.Type, Src: m.Src, Dst: m.Dst, Hops: m.Hops})
		})
	})
	arrive(120*time.Second, 6, 600)
	if err := rt.Sim.RunUntil(150 * time.Second); err != nil {
		return nil, err
	}
	if p.Role(6) != core.RoleHead {
		return nil, fmt.Errorf("trace scenario failed: node 6 is %v, want head", p.Role(6))
	}
	return events, nil
}

// FormatTrace renders events in the paper's Table 1 style.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# table1 — cluster head configuration message exchange\n")
	fmt.Fprintf(&b, "%12s  %-14s %5s %5s %5s\n", "time", "message", "src", "dst", "hops")
	for _, e := range events {
		fmt.Fprintf(&b, "%12v  %-14s %5d %5d %5d\n", e.At, e.Type, e.Src, e.Dst, e.Hops)
	}
	return b.String()
}
