package experiment

import (
	"fmt"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/core"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/workload"
)

// AblationDynamicLinear compares ballot failure rates with and without
// dynamic linear voting under abrupt head churn. The distinguished-node
// tie-break rescues exact-half electorates when members stop responding,
// so disabling it should fail more vote collections.
func AblationDynamicLinear(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-dlv",
		Title:  "Ballot failures with/without dynamic linear voting",
		XLabel: "nodes",
		YLabel: "failed ballots per run",
	}
	failures := func(res *workload.Result) float64 {
		return float64(res.Metrics().Counter(core.CounterBallotsFailed))
	}
	series, err := cfg.gridSweep("ablation-dlv", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.4,
			AbruptFraction:    1.0,
			SettleTime:        120 * time.Second,
		}
	}, []sweepSpec{
		{Name: "dlv on", Build: cfg.buildQuorum(nil), Metric: failures},
		{Name: "dlv off", Build: cfg.buildQuorum(func(p *core.Params) { p.DisableDynamicLinear = true }), Metric: failures},
	}, false)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// AblationBorrowing measures configuration success under a join wave (many
// nodes entering at one spot, the paper's §V-A motivation) with QuorumSpace
// borrowing on and off.
func AblationBorrowing(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-borrow",
		Title:  "Join-wave configuration success with/without borrowing",
		XLabel: "nodes",
		YLabel: "configured fraction",
	}
	spot := mobility.Point{X: 500, Y: 500}
	configuredFraction := func(res *workload.Result) float64 {
		qp := res.Proto.(*core.Protocol)
		return float64(qp.ConfiguredCount()) / float64(res.RT.Topo.Len())
	}
	// Borrowing only matters when the serving heads' own blocks are
	// smaller than the wave: size the space tightly (just enough
	// addresses for everyone) and spread the wave over enough area
	// that several heads form and split the space between them.
	tightFor := func(nn int) addrspace.Block {
		return addrspace.Block{Lo: 1, Hi: addrspace.Addr(nn + nn/8 + 2)}
	}
	on := Series{Name: "borrowing on"}
	off := Series{Name: "borrowing off"}
	type cell struct{ on, off float64 }
	cells := make([]cell, len(cfg.Sizes))
	err := cfg.parallelDo(len(cfg.Sizes), func(i int) error {
		nn := cfg.Sizes[i]
		tight := tightFor(nn)
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             0,
			ArrivalInterval:   cfg.ArrivalInterval,
			JoinSpot:          &spot,
			JoinRadius:        400,
			SettleTime:        120 * time.Second,
		}
		a, err := cfg.averageOver(sc, cfg.buildQuorum(func(p *core.Params) { p.Space = tight }), configuredFraction)
		if err != nil {
			return fmt.Errorf("ablation-borrow on nn=%d: %w", nn, err)
		}
		b, err := cfg.averageOver(sc, cfg.buildQuorum(func(p *core.Params) {
			p.Space = tight
			p.DisableBorrowing = true
		}), configuredFraction)
		if err != nil {
			return fmt.Errorf("ablation-borrow off nn=%d: %w", nn, err)
		}
		cells[i] = cell{on: a, off: b}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i, nn := range cfg.Sizes {
		on.Points = append(on.Points, Point{X: float64(nn), Y: cells[i].on})
		off.Points = append(off.Points, Point{X: float64(nn), Y: cells[i].off})
	}
	fig.Series = []Series{on, off}
	return fig, nil
}

// AblationAllocatorChoice compares the default nearest-head allocator
// against the §IV-B alternative (poll nearby heads, pick the largest free
// block): extra polling cost against better space balance.
func AblationAllocatorChoice(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-alloc",
		Title:  "Nearest vs largest-block allocator selection",
		XLabel: "nodes",
		YLabel: "config overhead (hops)",
	}
	configCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().Hops(metrics.CatConfig))
	}
	series, err := cfg.gridSweep("ablation-alloc", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
	}, []sweepSpec{
		{Name: "nearest", Build: cfg.buildQuorum(nil), Metric: configCost},
		{Name: "largest-block", Build: cfg.buildQuorum(func(p *core.Params) { p.LargestBlockAllocator = true }), Metric: configCost},
	}, false)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// AblationQuorumShrink sweeps the Td shrink timeout: shorter timeouts
// recover configuration ability faster after head failures but probe (and
// reclaim) more aggressively.
func AblationQuorumShrink(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-td",
		Title:  "Quorum shrink timeout sweep (abrupt churn)",
		XLabel: "Td (s)",
		YLabel: "hops / count",
	}
	tds := []time.Duration{time.Second, 3 * time.Second, 6 * time.Second, 12 * time.Second}
	xs := make([]float64, len(tds))
	for i, td := range tds {
		xs[i] = td.Seconds()
	}
	reclaim := Series{Name: "reclamation hops"}
	failed := Series{Name: "failed ballots"}
	type cell struct{ r, f float64 }
	cells := make([]cell, len(tds))
	err := cfg.parallelDo(len(tds), func(i int) error {
		td := tds[i]
		sc := workload.Scenario{
			NumNodes:          cfg.MidSize,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.4,
			AbruptFraction:    1.0,
			SettleTime:        120 * time.Second,
		}
		build := cfg.buildQuorum(func(p *core.Params) { p.Td = td })
		r, err := cfg.averageOver(sc, build, func(res *workload.Result) float64 {
			return float64(res.Metrics().Hops(metrics.CatReclamation))
		})
		if err != nil {
			return fmt.Errorf("ablation-td reclaim td=%v: %w", td, err)
		}
		f, err := cfg.averageOver(sc, build, func(res *workload.Result) float64 {
			return float64(res.Metrics().Counter(core.CounterBallotsFailed))
		})
		if err != nil {
			return fmt.Errorf("ablation-td failed td=%v: %w", td, err)
		}
		cells[i] = cell{r: r, f: f}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i := range tds {
		reclaim.Points = append(reclaim.Points, Point{X: xs[i], Y: cells[i].r})
		failed.Points = append(failed.Points, Point{X: xs[i], Y: cells[i].f})
	}
	fig.Series = []Series{reclaim, failed}
	return fig, nil
}

// Ablations runs every ablation study, fanning them out over the shared
// worker pool like All does for the paper's figures.
func Ablations(cfg Config) ([]Figure, error) {
	cfg.setDefaults()
	runners := []func(Config) (Figure, error){
		AblationDynamicLinear, AblationBorrowing, AblationAllocatorChoice, AblationQuorumShrink,
	}
	figs := make([]Figure, len(runners))
	err := cfg.parallelDo(len(runners), func(i int) error {
		f, err := runners[i](cfg)
		if err != nil {
			return err
		}
		figs[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return figs, nil
}
