package experiment

import (
	"fmt"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/core"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/workload"
)

// AblationDynamicLinear compares ballot failure rates with and without
// dynamic linear voting under abrupt head churn. The distinguished-node
// tie-break rescues exact-half electorates when members stop responding,
// so disabling it should fail more vote collections.
func AblationDynamicLinear(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-dlv",
		Title:  "Ballot failures with/without dynamic linear voting",
		XLabel: "nodes",
		YLabel: "failed ballots per run",
	}
	failures := func(res *workload.Result) float64 {
		return float64(res.Metrics().Counter(core.CounterBallotsFailed))
	}
	on := Series{Name: "dlv on"}
	off := Series{Name: "dlv off"}
	for _, nn := range cfg.Sizes {
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.4,
			AbruptFraction:    1.0,
			SettleTime:        120 * time.Second,
		}
		a, err := cfg.averageOver(sc, cfg.buildQuorum(nil), failures)
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-dlv on nn=%d: %w", nn, err)
		}
		b, err := cfg.averageOver(sc, cfg.buildQuorum(func(p *core.Params) { p.DisableDynamicLinear = true }), failures)
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-dlv off nn=%d: %w", nn, err)
		}
		on.Points = append(on.Points, Point{X: float64(nn), Y: a})
		off.Points = append(off.Points, Point{X: float64(nn), Y: b})
	}
	fig.Series = []Series{on, off}
	return fig, nil
}

// AblationBorrowing measures configuration success under a join wave (many
// nodes entering at one spot, the paper's §V-A motivation) with QuorumSpace
// borrowing on and off.
func AblationBorrowing(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-borrow",
		Title:  "Join-wave configuration success with/without borrowing",
		XLabel: "nodes",
		YLabel: "configured fraction",
	}
	spot := mobility.Point{X: 500, Y: 500}
	configuredFraction := func(res *workload.Result) float64 {
		qp := res.Proto.(*core.Protocol)
		return float64(qp.ConfiguredCount()) / float64(res.RT.Topo.Len())
	}
	on := Series{Name: "borrowing on"}
	off := Series{Name: "borrowing off"}
	for _, nn := range cfg.Sizes {
		// Borrowing only matters when the serving heads' own blocks are
		// smaller than the wave: size the space tightly (just enough
		// addresses for everyone) and spread the wave over enough area
		// that several heads form and split the space between them.
		tight := addrspace.Block{Lo: 1, Hi: addrspace.Addr(nn + nn/8 + 2)}
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             0,
			ArrivalInterval:   cfg.ArrivalInterval,
			JoinSpot:          &spot,
			JoinRadius:        400,
			SettleTime:        120 * time.Second,
		}
		a, err := cfg.averageOver(sc, cfg.buildQuorum(func(p *core.Params) { p.Space = tight }), configuredFraction)
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-borrow on nn=%d: %w", nn, err)
		}
		b, err := cfg.averageOver(sc, cfg.buildQuorum(func(p *core.Params) {
			p.Space = tight
			p.DisableBorrowing = true
		}), configuredFraction)
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-borrow off nn=%d: %w", nn, err)
		}
		on.Points = append(on.Points, Point{X: float64(nn), Y: a})
		off.Points = append(off.Points, Point{X: float64(nn), Y: b})
	}
	fig.Series = []Series{on, off}
	return fig, nil
}

// AblationAllocatorChoice compares the default nearest-head allocator
// against the §IV-B alternative (poll nearby heads, pick the largest free
// block): extra polling cost against better space balance.
func AblationAllocatorChoice(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-alloc",
		Title:  "Nearest vs largest-block allocator selection",
		XLabel: "nodes",
		YLabel: "config overhead (hops)",
	}
	configCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().Hops(metrics.CatConfig))
	}
	nearest := Series{Name: "nearest"}
	largest := Series{Name: "largest-block"}
	for _, nn := range cfg.Sizes {
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
		a, err := cfg.averageOver(sc, cfg.buildQuorum(nil), configCost)
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-alloc nearest nn=%d: %w", nn, err)
		}
		b, err := cfg.averageOver(sc, cfg.buildQuorum(func(p *core.Params) { p.LargestBlockAllocator = true }), configCost)
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-alloc largest nn=%d: %w", nn, err)
		}
		nearest.Points = append(nearest.Points, Point{X: float64(nn), Y: a})
		largest.Points = append(largest.Points, Point{X: float64(nn), Y: b})
	}
	fig.Series = []Series{nearest, largest}
	return fig, nil
}

// AblationQuorumShrink sweeps the Td shrink timeout: shorter timeouts
// recover configuration ability faster after head failures but probe (and
// reclaim) more aggressively.
func AblationQuorumShrink(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "ablation-td",
		Title:  "Quorum shrink timeout sweep (abrupt churn)",
		XLabel: "Td (s)",
		YLabel: "hops / count",
	}
	tds := []time.Duration{time.Second, 3 * time.Second, 6 * time.Second, 12 * time.Second}
	reclaim := Series{Name: "reclamation hops"}
	failed := Series{Name: "failed ballots"}
	for _, td := range tds {
		sc := workload.Scenario{
			NumNodes:          cfg.MidSize,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.4,
			AbruptFraction:    1.0,
			SettleTime:        120 * time.Second,
		}
		build := cfg.buildQuorum(func(p *core.Params) { p.Td = td })
		r, err := cfg.averageOver(sc, build, func(res *workload.Result) float64 {
			return float64(res.Metrics().Hops(metrics.CatReclamation))
		})
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-td reclaim td=%v: %w", td, err)
		}
		f, err := cfg.averageOver(sc, build, func(res *workload.Result) float64 {
			return float64(res.Metrics().Counter(core.CounterBallotsFailed))
		})
		if err != nil {
			return Figure{}, fmt.Errorf("ablation-td failed td=%v: %w", td, err)
		}
		reclaim.Points = append(reclaim.Points, Point{X: td.Seconds(), Y: r})
		failed.Points = append(failed.Points, Point{X: td.Seconds(), Y: f})
	}
	fig.Series = []Series{reclaim, failed}
	return fig, nil
}

// Ablations runs every ablation study.
func Ablations(cfg Config) ([]Figure, error) {
	runners := []func(Config) (Figure, error){
		AblationDynamicLinear, AblationBorrowing, AblationAllocatorChoice, AblationQuorumShrink,
	}
	figs := make([]Figure, 0, len(runners))
	for _, run := range runners {
		f, err := run(cfg)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
