// Package experiment regenerates every table and figure of the paper's
// evaluation (§VI). Each FigN function runs the corresponding parameter
// sweep over the quorum protocol and the baseline the paper compares it
// against, averaging over seeded rounds, and returns the series the paper
// plots. cmd/quorumsim renders them as text tables; bench_test.go at the
// repository root wraps each one in a testing.B benchmark.
package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/baseline/buddy"
	"quorumconf/internal/baseline/ctree"
	"quorumconf/internal/baseline/manetconf"
	"quorumconf/internal/core"
	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
	"quorumconf/internal/workload"
)

// Config scales the sweeps. The zero value gives a laptop-scale run with
// the paper's parameter ranges; raise Rounds toward the paper's 1000 for
// publication-grade averages.
type Config struct {
	// Rounds is the number of seeded repetitions per data point
	// (default 3; the paper uses 1000).
	Rounds int
	// BaseSeed offsets all round seeds.
	BaseSeed int64
	// Sizes is the network-size sweep (default 50..200 step 50, §VI-A).
	Sizes []int
	// Ranges is the transmission-range sweep in meters (default
	// 100..250 step 50; tr=150 elsewhere).
	Ranges []float64
	// Speeds is the node-speed sweep for Fig 11 (default 5..30 step 5).
	Speeds []float64
	// AbruptFractions is the abrupt-departure sweep for Fig 13 (default
	// 5%..50%, §VI-A).
	AbruptFractions []float64
	// Space is the address pool (default 2048 addresses).
	Space addrspace.Block
	// ArrivalInterval compresses or stretches the arrival process
	// (default 2s; shorter means faster wall-clock runs).
	ArrivalInterval time.Duration
	// MidSize is the fixed network size used when a figure sweeps some
	// other parameter (default 100; Fig 11 uses 150 per the paper).
	MidSize int
	// Workers bounds how many simulation rounds run concurrently across a
	// figure (and across figures under All). 0 means GOMAXPROCS; 1 runs
	// fully serial. Figures are bit-identical for every Workers value:
	// seeds are assigned by round index and samples are reduced in index
	// order (see parallel.go).
	Workers int
	// Tracer, when set, receives structured protocol events from every
	// round of every sweep (quorumsim -trace). Rounds run concurrently,
	// so its sinks must be concurrency-safe; events from different rounds
	// interleave (run with Workers=1 for a causally ordered stream).
	Tracer *obs.Tracer

	// sem admits at most Workers concurrently-running simulations. It is
	// created once in setDefaults and shared by every Config copy derived
	// from it, so nested fan-out (All -> figure -> grid point -> round)
	// cannot oversubscribe memory.
	sem chan struct{}
}

func (c *Config) setDefaults() {
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{50, 100, 150, 200}
	}
	if len(c.Ranges) == 0 {
		c.Ranges = []float64{100, 150, 200, 250}
	}
	if len(c.Speeds) == 0 {
		c.Speeds = []float64{5, 10, 15, 20, 25, 30}
	}
	if len(c.AbruptFractions) == 0 {
		c.AbruptFractions = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.Space == (addrspace.Block{}) {
		c.Space = addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000001 + 2047}
	}
	if c.ArrivalInterval == 0 {
		c.ArrivalInterval = 2 * time.Second
	}
	if c.MidSize == 0 {
		c.MidSize = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.sem == nil {
		c.sem = make(chan struct{}, c.Workers)
	}
}

// Point is one (x, y) sample of a series. Err is the sample standard
// deviation over rounds (0 when Rounds == 1).
type Point struct {
	X, Y float64
	Err  float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the reproduced data behind one of the paper's plots.
type Figure struct {
	ID     string // "fig5", "table1", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as an aligned text table: one row per X value,
// one column per series.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	// Collect the x values in first-series order.
	if len(f.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	b.WriteByte('\n')
	withErr := false
	for _, s := range f.Series {
		for _, pt := range s.Points {
			if pt.Err > 0 {
				withErr = true
			}
		}
	}
	for i, pt := range f.Series[0].Points {
		fmt.Fprintf(&b, "%12.4g", pt.X)
		for _, s := range f.Series {
			if i >= len(s.Points) {
				fmt.Fprintf(&b, " %18s", "-")
				continue
			}
			if withErr {
				fmt.Fprintf(&b, " %18s", fmt.Sprintf("%.4g ±%.2g", s.Points[i].Y, s.Points[i].Err))
			} else {
				fmt.Fprintf(&b, " %18.4g", s.Points[i].Y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated rows with a header line, ready
// for spreadsheets or plotting scripts. The first column is the x value.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for i, pt := range f.Series[0].Points {
		fmt.Fprintf(&b, "%g", pt.X)
		for _, s := range f.Series {
			b.WriteByte(',')
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%g", s.Points[i].Y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvEscape quotes a field when it contains separators.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// --- protocol builders ----------------------------------------------------

func (c Config) buildQuorum(extra func(*core.Params)) workload.BuildFunc {
	return func(rt *protocol.Runtime) (protocol.Protocol, error) {
		params := core.Params{Space: c.Space}
		if extra != nil {
			extra(&params)
		}
		return core.New(rt, params)
	}
}

func (c Config) buildMANETconf() workload.BuildFunc {
	return func(rt *protocol.Runtime) (protocol.Protocol, error) {
		return manetconf.New(rt, manetconf.Params{Space: c.Space})
	}
}

func (c Config) buildBuddy() workload.BuildFunc {
	return func(rt *protocol.Runtime) (protocol.Protocol, error) {
		return buddy.New(rt, buddy.Params{Space: c.Space})
	}
}

func (c Config) buildCTree() workload.BuildFunc {
	return func(rt *protocol.Runtime) (protocol.Protocol, error) {
		return ctree.New(rt, ctree.Params{Space: c.Space})
	}
}

// averageOver runs the scenario Rounds times with distinct seeds and
// averages the metric.
func (c Config) averageOver(sc workload.Scenario, build workload.BuildFunc, metric func(*workload.Result) float64) (float64, error) {
	m, _, err := c.statsOver(sc, build, metric)
	return m, err
}

// statsOver is averageOver returning the standard deviation as well. The
// rounds fan out onto the worker pool; the metric values are collected by
// round index and reduced in index order, so mean and stddev are
// bit-identical to the serial loop for any Workers setting.
func (c Config) statsOver(sc workload.Scenario, build workload.BuildFunc, metric func(*workload.Result) float64) (mean, stddev float64, err error) {
	vals := make([]float64, c.Rounds)
	err = c.parallelDo(c.Rounds, func(r int) error {
		round := sc
		round.Seed = c.BaseSeed + int64(r)*7919
		res, err := c.runRound(round, build)
		if err != nil {
			return err
		}
		vals[r] = metric(res)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	var st sampleStats
	for _, v := range vals {
		st.add(v)
	}
	return st.Mean(), st.Stddev(), nil
}

// meanLatency extracts the mean configuration latency in hops.
func meanLatency(res *workload.Result) float64 {
	return res.Metrics().Summarize(core.SampleConfigLatency).Mean
}

// All runs every figure and returns them in paper order. Table 1 is
// produced by Trace (see trace.go) and Fig 4 by Layout (see layout.go).
// Figures fan out concurrently, all drawing simulation slots from one
// shared admission semaphore, and are collected by index so the output
// order (and content) never depends on scheduling.
func All(cfg Config) ([]Figure, error) {
	cfg.setDefaults() // create the shared semaphore before fanning out
	runners := []func(Config) (Figure, error){
		Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fig14,
	}
	figs := make([]Figure, len(runners))
	err := cfg.parallelDo(len(runners), func(i int) error {
		f, err := runners[i](cfg)
		if err != nil {
			return err
		}
		figs[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return figs, nil
}
