package experiment

import "testing"

func TestExtensionLossTolerance(t *testing.T) {
	cfg := tinyConfig()
	cfg.MidSize = 60
	f, err := ExtensionLossTolerance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf := seriesByName(t, f, "configured fraction")
	if conf.Points[0].Y < 0.95 {
		t.Errorf("lossless configured fraction = %.2f, want ~1", conf.Points[0].Y)
	}
	// Graceful degradation: even at 20% per-hop loss most nodes configure.
	for _, p := range conf.Points {
		if p.X <= 0.2 && p.Y < 0.7 {
			t.Errorf("configured fraction %.2f at loss %.2f, want graceful degradation", p.Y, p.X)
		}
	}
	lat := seriesByName(t, f, "mean latency (hops)")
	if lat.Points[0].Y <= 0 {
		t.Error("no latency recorded")
	}
}
