package experiment

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleStatsBasics(t *testing.T) {
	var s sampleStats
	if s.Mean() != 0 || s.Stddev() != 0 || s.Count() != 0 {
		t.Error("zero value not neutral")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.add(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSampleStatsSingleSample(t *testing.T) {
	var s sampleStats
	s.add(42)
	if s.Mean() != 42 || s.Stddev() != 0 {
		t.Errorf("single sample: mean %v stddev %v", s.Mean(), s.Stddev())
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestPropertySampleStats(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s sampleStats
		min, max := float64(vals[0]), float64(vals[0])
		for _, v := range vals {
			x := float64(v)
			s.add(x)
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return s.Mean() >= min-1e-9 && s.Mean() <= max+1e-9 && s.Stddev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
