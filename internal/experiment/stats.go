package experiment

import "math"

// sampleStats accumulates mean and standard deviation over simulation
// rounds (Welford's online algorithm — numerically stable even for the
// large hop totals of Figure 8).
type sampleStats struct {
	n    int
	mean float64
	m2   float64
}

func (s *sampleStats) add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Mean returns the running mean (0 with no samples).
func (s *sampleStats) Mean() float64 { return s.mean }

// Stddev returns the sample standard deviation (0 with fewer than two
// samples).
func (s *sampleStats) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Count returns the number of samples.
func (s *sampleStats) Count() int { return s.n }
