package experiment

import (
	"fmt"

	"quorumconf/internal/metrics"
	"quorumconf/internal/workload"
)

// Fig5 reproduces Figure 5: configuration latency (hops) versus network
// size, quorum protocol against MANETconf, tr = 150m. The paper reports
// the quorum protocol cutting latency roughly in half.
func Fig5(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig5",
		Title:  "Configuration latency vs network size (tr=150m)",
		XLabel: "nodes",
		YLabel: "latency (hops)",
	}
	quorum := Series{Name: "quorum"}
	mconf := Series{Name: "manetconf"}
	for _, nn := range cfg.Sizes {
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
		q, qe, err := cfg.statsOver(sc, cfg.buildQuorum(nil), meanLatency)
		if err != nil {
			return Figure{}, fmt.Errorf("fig5 quorum nn=%d: %w", nn, err)
		}
		m, me, err := cfg.statsOver(sc, cfg.buildMANETconf(), meanLatency)
		if err != nil {
			return Figure{}, fmt.Errorf("fig5 manetconf nn=%d: %w", nn, err)
		}
		quorum.Points = append(quorum.Points, Point{X: float64(nn), Y: q, Err: qe})
		mconf.Points = append(mconf.Points, Point{X: float64(nn), Y: m, Err: me})
	}
	fig.Series = []Series{quorum, mconf}
	return fig, nil
}

// Fig6 reproduces Figure 6: configuration latency versus transmission
// range at a fixed network size. The quorum protocol stays below ~10 hops
// across ranges while MANETconf stays above ~15.
func Fig6(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig6",
		Title:  fmt.Sprintf("Configuration latency vs transmission range (nn=%d)", cfg.MidSize),
		XLabel: "range (m)",
		YLabel: "latency (hops)",
	}
	quorum := Series{Name: "quorum"}
	mconf := Series{Name: "manetconf"}
	for _, tr := range cfg.Ranges {
		sc := workload.Scenario{
			NumNodes:          cfg.MidSize,
			TransmissionRange: tr,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
		q, qe, err := cfg.statsOver(sc, cfg.buildQuorum(nil), meanLatency)
		if err != nil {
			return Figure{}, fmt.Errorf("fig6 quorum tr=%v: %w", tr, err)
		}
		m, me, err := cfg.statsOver(sc, cfg.buildMANETconf(), meanLatency)
		if err != nil {
			return Figure{}, fmt.Errorf("fig6 manetconf tr=%v: %w", tr, err)
		}
		quorum.Points = append(quorum.Points, Point{X: tr, Y: q, Err: qe})
		mconf.Points = append(mconf.Points, Point{X: tr, Y: m, Err: me})
	}
	fig.Series = []Series{quorum, mconf}
	return fig, nil
}

// Fig7 reproduces Figure 7: the quorum protocol's configuration latency
// over the (transmission range x network size) grid.
func Fig7(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig7",
		Title:  "Quorum configuration latency vs size, per transmission range",
		XLabel: "nodes",
		YLabel: "latency (hops)",
	}
	for _, tr := range cfg.Ranges {
		s := Series{Name: fmt.Sprintf("tr=%gm", tr)}
		for _, nn := range cfg.Sizes {
			sc := workload.Scenario{
				NumNodes:          nn,
				TransmissionRange: tr,
				Speed:             20,
				ArrivalInterval:   cfg.ArrivalInterval,
			}
			q, err := cfg.averageOver(sc, cfg.buildQuorum(nil), meanLatency)
			if err != nil {
				return Figure{}, fmt.Errorf("fig7 tr=%v nn=%d: %w", tr, nn, err)
			}
			s.Points = append(s.Points, Point{X: float64(nn), Y: q})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8 reproduces Figure 8: total configuration message overhead (hops)
// versus network size, quorum against Mohsin–Prakash. The buddy scheme's
// cheap splits are swamped by its periodic global table synchronization,
// so its total grows superlinearly while the quorum protocol stays local.
func Fig8(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig8",
		Title:  "Configuration message overhead vs network size (tr=150m)",
		XLabel: "nodes",
		YLabel: "overhead (hops)",
	}
	configCost := func(res *workload.Result) float64 {
		// Configuration plus whatever state synchronization the protocol
		// needs to keep configuring correctly (the paper's point: [2]
		// pays for global table sync, we do not).
		return float64(res.Metrics().TotalHops(metrics.CatConfig, metrics.CatSync))
	}
	quorum := Series{Name: "quorum"}
	bd := Series{Name: "buddy"}
	for _, nn := range cfg.Sizes {
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
		q, qe, err := cfg.statsOver(sc, cfg.buildQuorum(nil), configCost)
		if err != nil {
			return Figure{}, fmt.Errorf("fig8 quorum nn=%d: %w", nn, err)
		}
		b, be, err := cfg.statsOver(sc, cfg.buildBuddy(), configCost)
		if err != nil {
			return Figure{}, fmt.Errorf("fig8 buddy nn=%d: %w", nn, err)
		}
		quorum.Points = append(quorum.Points, Point{X: float64(nn), Y: q, Err: qe})
		bd.Points = append(bd.Points, Point{X: float64(nn), Y: b, Err: be})
	}
	fig.Series = []Series{quorum, bd}
	return fig, nil
}

// Fig9 reproduces Figure 9: departure message overhead versus network
// size, quorum against Mohsin–Prakash. Half the nodes depart gracefully;
// the buddy scheme floods a table update per departure while the quorum
// protocol returns each address locally.
func Fig9(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig9",
		Title:  "Departure message overhead vs network size (tr=150m)",
		XLabel: "nodes",
		YLabel: "overhead (hops)",
	}
	departCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().Hops(metrics.CatDeparture))
	}
	quorum := Series{Name: "quorum"}
	bd := Series{Name: "buddy"}
	for _, nn := range cfg.Sizes {
		sc := workload.Scenario{
			NumNodes:          nn,
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.5,
			AbruptFraction:    0,
		}
		q, qe, err := cfg.statsOver(sc, cfg.buildQuorum(nil), departCost)
		if err != nil {
			return Figure{}, fmt.Errorf("fig9 quorum nn=%d: %w", nn, err)
		}
		b, be, err := cfg.statsOver(sc, cfg.buildBuddy(), departCost)
		if err != nil {
			return Figure{}, fmt.Errorf("fig9 buddy nn=%d: %w", nn, err)
		}
		quorum.Points = append(quorum.Points, Point{X: float64(nn), Y: q, Err: qe})
		bd.Points = append(bd.Points, Point{X: float64(nn), Y: b, Err: be})
	}
	fig.Series = []Series{quorum, bd}
	return fig, nil
}
