package experiment

import (
	"fmt"

	"quorumconf/internal/metrics"
	"quorumconf/internal/workload"
)

// Fig5 reproduces Figure 5: configuration latency (hops) versus network
// size, quorum protocol against MANETconf, tr = 150m. The paper reports
// the quorum protocol cutting latency roughly in half.
func Fig5(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig5",
		Title:  "Configuration latency vs network size (tr=150m)",
		XLabel: "nodes",
		YLabel: "latency (hops)",
	}
	series, err := cfg.gridSweep("fig5", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
	}, []sweepSpec{
		{Name: "quorum", Build: cfg.buildQuorum(nil), Metric: meanLatency},
		{Name: "manetconf", Build: cfg.buildMANETconf(), Metric: meanLatency},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// Fig6 reproduces Figure 6: configuration latency versus transmission
// range at a fixed network size. The quorum protocol stays below ~10 hops
// across ranges while MANETconf stays above ~15.
func Fig6(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig6",
		Title:  fmt.Sprintf("Configuration latency vs transmission range (nn=%d)", cfg.MidSize),
		XLabel: "range (m)",
		YLabel: "latency (hops)",
	}
	series, err := cfg.gridSweep("fig6", cfg.Ranges, func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.MidSize,
			TransmissionRange: cfg.Ranges[i],
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
	}, []sweepSpec{
		{Name: "quorum", Build: cfg.buildQuorum(nil), Metric: meanLatency},
		{Name: "manetconf", Build: cfg.buildMANETconf(), Metric: meanLatency},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// Fig7 reproduces Figure 7: the quorum protocol's configuration latency
// over the (transmission range x network size) grid. Every series of the
// surface fans out concurrently and each series fans its sizes, so the
// whole grid saturates the worker pool.
func Fig7(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig7",
		Title:  "Quorum configuration latency vs size, per transmission range",
		XLabel: "nodes",
		YLabel: "latency (hops)",
	}
	series := make([]Series, len(cfg.Ranges))
	err := cfg.parallelDo(len(cfg.Ranges), func(ri int) error {
		tr := cfg.Ranges[ri]
		ss, err := cfg.gridSweep("fig7", floats(cfg.Sizes), func(i int) workload.Scenario {
			return workload.Scenario{
				NumNodes:          cfg.Sizes[i],
				TransmissionRange: tr,
				Speed:             20,
				ArrivalInterval:   cfg.ArrivalInterval,
			}
		}, []sweepSpec{
			{Name: fmt.Sprintf("tr=%gm", tr), Build: cfg.buildQuorum(nil), Metric: meanLatency},
		}, false)
		if err != nil {
			return err
		}
		series[ri] = ss[0]
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// Fig8 reproduces Figure 8: total configuration message overhead (hops)
// versus network size, quorum against Mohsin–Prakash. The buddy scheme's
// cheap splits are swamped by its periodic global table synchronization,
// so its total grows superlinearly while the quorum protocol stays local.
func Fig8(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig8",
		Title:  "Configuration message overhead vs network size (tr=150m)",
		XLabel: "nodes",
		YLabel: "overhead (hops)",
	}
	configCost := func(res *workload.Result) float64 {
		// Configuration plus whatever state synchronization the protocol
		// needs to keep configuring correctly (the paper's point: [2]
		// pays for global table sync, we do not).
		return float64(res.Metrics().TotalHops(metrics.CatConfig, metrics.CatSync))
	}
	series, err := cfg.gridSweep("fig8", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
		}
	}, []sweepSpec{
		{Name: "quorum", Build: cfg.buildQuorum(nil), Metric: configCost},
		{Name: "buddy", Build: cfg.buildBuddy(), Metric: configCost},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// Fig9 reproduces Figure 9: departure message overhead versus network
// size, quorum against Mohsin–Prakash. Half the nodes depart gracefully;
// the buddy scheme floods a table update per departure while the quorum
// protocol returns each address locally.
func Fig9(cfg Config) (Figure, error) {
	cfg.setDefaults()
	fig := Figure{
		ID:     "fig9",
		Title:  "Departure message overhead vs network size (tr=150m)",
		XLabel: "nodes",
		YLabel: "overhead (hops)",
	}
	departCost := func(res *workload.Result) float64 {
		return float64(res.Metrics().Hops(metrics.CatDeparture))
	}
	series, err := cfg.gridSweep("fig9", floats(cfg.Sizes), func(i int) workload.Scenario {
		return workload.Scenario{
			NumNodes:          cfg.Sizes[i],
			TransmissionRange: 150,
			Speed:             20,
			ArrivalInterval:   cfg.ArrivalInterval,
			DepartFraction:    0.5,
			AbruptFraction:    0,
		}
	}, []sweepSpec{
		{Name: "quorum", Build: cfg.buildQuorum(nil), Metric: departCost},
		{Name: "buddy", Build: cfg.buildBuddy(), Metric: departCost},
	}, true)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}
