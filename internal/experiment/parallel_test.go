package experiment

import (
	"reflect"
	"testing"
	"time"
)

// determinismConfig keeps multiple rounds so reduction order actually
// matters, while staying small enough for -race CI runs.
func determinismConfig(workers int) Config {
	return Config{
		Rounds:          2,
		BaseSeed:        7,
		Sizes:           []int{60, 100},
		Ranges:          []float64{120, 200},
		Speeds:          []float64{10, 30},
		AbruptFractions: []float64{0.1, 0.4},
		MidSize:         60,
		ArrivalInterval: 2 * time.Second,
		Workers:         workers,
	}
}

// TestParallelSweepsBitIdentical pins the worker-pool determinism
// contract: the same figure run serially (Workers=1) and with a saturated
// pool (Workers=8) must produce byte-identical CSV output and deeply equal
// Figure values (the CSV omits error bars, so DeepEqual also guards the
// stddev reduction order). CI runs this under -race, which doubles as the
// data-race check on the fan-out machinery.
func TestParallelSweepsBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		run  func(Config) (Figure, error)
	}{
		{"fig5", Fig5},
		{"fig8", Fig8},
		{"fig13", Fig13},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			serial, err := c.run(determinismConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := c.run(determinismConfig(8))
			if err != nil {
				t.Fatal(err)
			}
			if s, p := serial.CSV(), parallel.CSV(); s != p {
				t.Errorf("CSV output differs between Workers=1 and Workers=8:\nserial:\n%s\nparallel:\n%s", s, p)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("figures differ beyond CSV (error bars or metadata):\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}

// TestParallelRunsRepeatable guards against hidden shared state between
// concurrent simulations: two identical parallel runs must agree with each
// other.
func TestParallelRunsRepeatable(t *testing.T) {
	a, err := Fig5(determinismConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(determinismConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated parallel runs differ:\n%+v\n%+v", a, b)
	}
}
