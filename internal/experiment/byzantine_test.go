package experiment

import (
	"testing"

	"quorumconf/internal/radio"
	"quorumconf/internal/workload"
)

func TestSplitMalicious(t *testing.T) {
	active, droppers := splitMalicious(6)
	wantActive := []radio.NodeID{0, 1, 3, 4}
	wantDroppers := []radio.NodeID{2, 5}
	if len(active) != len(wantActive) || len(droppers) != len(wantDroppers) {
		t.Fatalf("split(6) = %v / %v, want %v / %v", active, droppers, wantActive, wantDroppers)
	}
	for i, id := range wantActive {
		if active[i] != id {
			t.Errorf("active[%d] = %d, want %d", i, active[i], id)
		}
	}
	for i, id := range wantDroppers {
		if droppers[i] != id {
			t.Errorf("droppers[%d] = %d, want %d", i, droppers[i], id)
		}
	}
	if a, d := splitMalicious(0); len(a) != 0 || len(d) != 0 {
		t.Errorf("split(0) = %v / %v, want empty", a, d)
	}
}

func TestByzIDsIncludeSybils(t *testing.T) {
	sc := workload.Scenario{
		NumNodes:  10,
		Byzantine: workload.Byzantine{SybilNodes: []radio.NodeID{1, 4}},
	}
	ids := byzIDs(sc)
	if len(ids) != 10+2*3 {
		t.Fatalf("byzIDs returned %d identities, want 16", len(ids))
	}
	sybils := 0
	for _, id := range ids {
		if id >= workload.SybilIDBase {
			sybils++
		}
	}
	if sybils != 6 {
		t.Errorf("sybil identities = %d, want 6", sybils)
	}
}

// TestByzantineSweepShape runs a small sweep end to end: three figures with
// one series per protocol, a clean honest column, and a summary cell for
// every (metric, protocol, k).
func TestByzantineSweepShape(t *testing.T) {
	cfg := Config{Rounds: 2, MidSize: 40}
	ks := []int{0, 4}
	res, err := ByzantineSweep(cfg, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 3 {
		t.Fatalf("figures = %d, want 3", len(res.Figures))
	}
	for _, f := range res.Figures {
		if len(f.Series) != 4 {
			t.Errorf("%s: series = %d, want 4 protocols", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) != len(ks) {
				t.Errorf("%s/%s: points = %d, want %d", f.ID, s.Name, len(s.Points), len(ks))
			}
		}
	}
	// The honest column of the conflict figure must be exactly zero for
	// every protocol: uniqueness holds without insiders.
	for _, s := range res.Figures[0].Series {
		if s.Points[0].Y != 0 {
			t.Errorf("honest conflict rate for %s = %v, want 0", s.Name, s.Points[0].Y)
		}
	}
	if len(res.Summary) != 3*4*len(ks) {
		t.Errorf("summary cells = %d, want %d", len(res.Summary), 3*4*len(ks))
	}
	if _, ok := res.Summary["byz_conflict_quorum_k4"]; !ok {
		t.Error("summary missing byz_conflict_quorum_k4")
	}
}

// TestByzantineSweepDeterministic pins that the sweep is a pure function
// of its configuration, like every other figure.
func TestByzantineSweepDeterministic(t *testing.T) {
	run := func() map[string]float64 {
		res, err := ByzantineSweep(Config{Rounds: 2, MidSize: 30}, []int{3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Errorf("summary[%q] diverged: %v vs %v", k, v, b[k])
		}
	}
}
