package experiment

import (
	"fmt"
	"sort"
	"strings"

	"quorumconf/internal/cluster"
	"quorumconf/internal/core"
	"quorumconf/internal/mobility"
	"quorumconf/internal/radio"
	"quorumconf/internal/workload"
)

// NodePlacement is one node of a generated layout.
type NodePlacement struct {
	ID       radio.NodeID
	Position mobility.Point
	Role     core.Role
}

// Layout reproduces Figure 4: a randomly generated network layout (100
// nodes, 1km x 1km in the paper) with the cluster structure the protocol
// formed over it.
type Layout struct {
	Area       mobility.Rect
	Nodes      []NodePlacement
	Heads      []radio.NodeID
	Violations []cluster.Violation // head pairs that are one-hop neighbors
}

// GenerateLayout builds the Figure 4 layout for the given size and seed.
func GenerateLayout(cfg Config, nn int, seed int64) (Layout, error) {
	cfg.setDefaults()
	if nn <= 0 {
		nn = 100
	}
	sc := workload.Scenario{
		Seed:              seed,
		NumNodes:          nn,
		TransmissionRange: 150,
		Speed:             0,
		ArrivalInterval:   cfg.ArrivalInterval,
	}
	res, err := workload.Run(sc, cfg.buildQuorum(nil))
	if err != nil {
		return Layout{}, fmt.Errorf("layout: %w", err)
	}
	qp := res.Proto.(*core.Protocol)
	snap := res.RT.Topo.Snapshot(res.Horizon)
	out := Layout{Area: mobility.Rect{Width: 1000, Height: 1000}}
	for _, id := range snap.Nodes() {
		pos, _ := snap.Position(id)
		out.Nodes = append(out.Nodes, NodePlacement{ID: id, Position: pos, Role: qp.Role(id)})
	}
	out.Heads = qp.Heads()
	out.Violations = cluster.Violations(snap, out.Heads)
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].ID < out.Nodes[j].ID })
	return out, nil
}

// SVG renders the layout as a standalone SVG document in the style of the
// paper's Figure 1/4: cluster heads as filled red circles, common nodes as
// hollow circles, and a dashed circle marking each head's 2-hop join
// radius (approximated as twice the transmission range).
func (l Layout) SVG(transmissionRange float64) string {
	const (
		pad   = 20.0
		scale = 0.6
	)
	w := l.Area.Width*scale + 2*pad
	h := l.Area.Height*scale + 2*pad
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `  <rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="white" stroke="#444"/>`+"\n",
		pad, pad, l.Area.Width*scale, l.Area.Height*scale)
	headSet := make(map[radio.NodeID]bool, len(l.Heads))
	for _, id := range l.Heads {
		headSet[id] = true
	}
	// Head coverage circles first, so nodes draw on top.
	for _, n := range l.Nodes {
		if !headSet[n.ID] {
			continue
		}
		fmt.Fprintf(&b, `  <circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#d88" stroke-dasharray="4 3" opacity="0.6"/>`+"\n",
			pad+n.Position.X*scale, pad+n.Position.Y*scale, 2*transmissionRange*scale)
	}
	for _, n := range l.Nodes {
		x, y := pad+n.Position.X*scale, pad+n.Position.Y*scale
		if headSet[n.ID] {
			fmt.Fprintf(&b, `  <circle cx="%.1f" cy="%.1f" r="6" fill="#c22" stroke="#600"/>`+"\n", x, y)
			fmt.Fprintf(&b, `  <text x="%.1f" y="%.1f" font-size="9" fill="#600">%d</text>`+"\n", x+7, y-7, n.ID)
		} else {
			fmt.Fprintf(&b, `  <circle cx="%.1f" cy="%.1f" r="3.5" fill="white" stroke="#226"/>`+"\n", x, y)
		}
	}
	fmt.Fprintf(&b, `  <text x="%.1f" y="%.1f" font-size="12" fill="#222">%d nodes, %d cluster heads</text>`+"\n",
		pad, h-5, len(l.Nodes), len(l.Heads))
	b.WriteString("</svg>\n")
	return b.String()
}

// String renders the layout as "id x y role" rows plus a summary line —
// directly plottable.
func (l Layout) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# fig4 — network layout, %d nodes, %.0fx%.0fm, %d cluster heads, %d violations\n",
		len(l.Nodes), l.Area.Width, l.Area.Height, len(l.Heads), len(l.Violations))
	fmt.Fprintf(&b, "%6s %10s %10s %-12s\n", "id", "x", "y", "role")
	for _, n := range l.Nodes {
		fmt.Fprintf(&b, "%6d %10.2f %10.2f %-12s\n", n.ID, n.Position.X, n.Position.Y, n.Role)
	}
	return b.String()
}
