package experiment

import (
	"fmt"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/core"
	"quorumconf/internal/mobility"
	"quorumconf/internal/protocol"
	"quorumconf/internal/workload"
)

// AllocVariant names one allocation-engine configuration for the
// throughput comparison: the serial baseline (one common ballot in
// flight), the pipelined window, and the pipelined window with the
// affirmative-vote cache on top.
type AllocVariant struct {
	Name string
	// Window is core.Params.BallotWindow (1 = serial baseline).
	Window int
	// TTL is core.Params.VoteCacheTTL (0 = cache disabled).
	TTL time.Duration
}

// AllocVariants returns the three engine configurations the throughput
// benchmark and BENCH_sweeps.json compare, serial first.
func AllocVariants() []AllocVariant {
	return []AllocVariant{
		{Name: "alloc_serial", Window: 1},
		{Name: "alloc_pipelined", Window: 8},
		{Name: "alloc_pipelined_cache", Window: 8, TTL: 30 * time.Second},
	}
}

// AllocThroughputConfig scales the sustained-churn workload behind the
// allocation-throughput measurement. Zero values take the defaults of
// DefaultAllocThroughput(false).
type AllocThroughputConfig struct {
	Seed          int64
	NumNodes      int
	ChurnRate     float64
	ChurnDuration time.Duration
	ChurnLifetime time.Duration
	SettleTime    time.Duration
}

// DefaultAllocThroughput sizes the workload; short gives the CI smoke
// variant (a few hundred joins), full offers over a thousand joins at a
// rate that saturates a serial allocator.
func DefaultAllocThroughput(short bool) AllocThroughputConfig {
	if short {
		return AllocThroughputConfig{
			Seed:          1,
			NumNodes:      10,
			ChurnRate:     30,
			ChurnDuration: 4 * time.Second,
			ChurnLifetime: 2 * time.Second,
			SettleTime:    5 * time.Second,
		}
	}
	return AllocThroughputConfig{
		Seed:          1,
		NumNodes:      20,
		ChurnRate:     80,
		ChurnDuration: 8 * time.Second,
		ChurnLifetime: 3 * time.Second,
		SettleTime:    6 * time.Second,
	}
}

func (c *AllocThroughputConfig) setDefaults() {
	d := DefaultAllocThroughput(false)
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.NumNodes == 0 {
		c.NumNodes = d.NumNodes
	}
	if c.ChurnRate == 0 {
		c.ChurnRate = d.ChurnRate
	}
	if c.ChurnDuration == 0 {
		c.ChurnDuration = d.ChurnDuration
	}
	if c.ChurnLifetime == 0 {
		c.ChurnLifetime = d.ChurnLifetime
	}
	if c.SettleTime == 0 {
		c.SettleTime = d.SettleTime
	}
}

// AllocThroughput runs the sustained-churn scenario against one engine
// variant and returns successful configurations per simulated second.
//
// The initial network spreads over the area so the allocators hold
// multi-hop QDSets; churn then concentrates on one spot, so every join
// queues on the same allocator. With a serial ballot window that
// allocator's throughput is bounded by one quorum round trip per
// address and the queue backs up past the horizon; pipelining overlaps
// the round trips and the vote cache removes them, which is exactly the
// gap this number measures.
func AllocThroughput(cfg AllocThroughputConfig, v AllocVariant) (float64, error) {
	cfg.setDefaults()
	spot := mobility.Point{X: 300, Y: 300}
	sc := workload.Scenario{
		Seed:            cfg.Seed,
		NumNodes:        cfg.NumNodes,
		Area:            mobility.Rect{Width: 600, Height: 600},
		ArrivalInterval: 2 * time.Second,
		// A loaded channel's per-hop latency, not the simulator's
		// optimistic 5ms default: the multi-hop quorum round trip is
		// what pipelining overlaps and the vote cache removes, so the
		// measurement keeps it realistic.
		PerHopDelay:   15 * time.Millisecond,
		SettleTime:    cfg.SettleTime,
		ChurnRate:     cfg.ChurnRate,
		ChurnDuration: cfg.ChurnDuration,
		ChurnLifetime: cfg.ChurnLifetime,
		ChurnSpot:     &spot,
		ChurnRadius:   80,
	}
	build := func(rt *protocol.Runtime) (protocol.Protocol, error) {
		return core.New(rt, core.Params{
			Space:        addrspace.Block{Lo: 1, Hi: 4096},
			BallotWindow: v.Window,
			VoteCacheTTL: v.TTL,
		})
	}
	res, err := workload.Run(sc, build)
	if err != nil {
		return 0, fmt.Errorf("experiment: alloc throughput %s: %w", v.Name, err)
	}
	configured := res.Metrics().Counter(core.CounterConfigured)
	return float64(configured) / res.Horizon.Seconds(), nil
}
