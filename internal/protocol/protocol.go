// Package protocol defines the contract between the scenario driver and an
// autoconfiguration protocol, plus the Runtime bundle of simulation
// services every protocol implementation consumes. The quorum protocol and
// the three baselines (MANETconf, buddy, C-tree) all implement Protocol, so
// the experiment harness can sweep them interchangeably.
package protocol

import (
	"fmt"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

// Protocol is an IP autoconfiguration protocol under simulation. The
// scenario driver adds a node's mobility model to the topology first, then
// calls NodeArrived; the protocol is responsible for registering the node's
// message handler and running its configuration procedure in virtual time.
//
// For graceful departures the protocol runs its departure exchange and then
// removes the node from the topology itself. For abrupt departures
// (graceful == false) the protocol must immediately remove the node and
// discard its local state without generating traffic: the node has crashed,
// and the rest of the network may only learn of it through the protocol's
// own detection machinery.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// NodeArrived introduces a node already present in the topology.
	NodeArrived(id radio.NodeID)
	// NodeDeparting removes a node, gracefully or abruptly.
	NodeDeparting(id radio.NodeID, graceful bool)
	// IsConfigured reports whether the node currently holds an address.
	IsConfigured(id radio.NodeID) bool
}

// Runtime bundles the simulation services protocols run on.
type Runtime struct {
	Sim  *sim.Simulator
	Topo *radio.Topology
	Net  *netstack.Network
	Coll *metrics.Collector
}

// RuntimeConfig parameterizes NewRuntime.
type RuntimeConfig struct {
	// Seed drives every random choice in the run.
	Seed int64
	// TransmissionRange is tr in meters (150 in most of the paper).
	TransmissionRange float64
	// PerHopDelay is the one-hop transmission latency. Defaults to 5ms
	// when zero.
	PerHopDelay time.Duration
}

// DefaultPerHop is the one-hop delay used when RuntimeConfig leaves it zero.
const DefaultPerHop = 5 * time.Millisecond

// NewRuntime assembles a simulator, topology, collector and network.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	if cfg.PerHopDelay == 0 {
		cfg.PerHopDelay = DefaultPerHop
	}
	topo, err := radio.NewTopology(cfg.TransmissionRange)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	s := sim.New(cfg.Seed)
	coll := metrics.New()
	net, err := netstack.New(s, topo, coll, cfg.PerHopDelay)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	return &Runtime{Sim: s, Topo: topo, Net: net, Coll: coll}, nil
}

// RemoveNode removes a node from the fabric: handler unregistered, mobility
// dropped, connectivity snapshot invalidated. Protocols call this from both
// departure paths.
func (r *Runtime) RemoveNode(id radio.NodeID) {
	r.Net.Unregister(id)
	r.Topo.Remove(id)
	r.Net.InvalidateSnapshot()
}
