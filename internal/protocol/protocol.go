// Package protocol defines the contract between the scenario driver and an
// autoconfiguration protocol, plus the Runtime bundle of simulation
// services every protocol implementation consumes. The quorum protocol and
// the three baselines (MANETconf, buddy, C-tree) all implement Protocol, so
// the experiment harness can sweep them interchangeably.
package protocol

import (
	"fmt"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

// Protocol is an IP autoconfiguration protocol under simulation. The
// scenario driver adds a node's mobility model to the topology first, then
// calls NodeArrived; the protocol is responsible for registering the node's
// message handler and running its configuration procedure in virtual time.
//
// For graceful departures the protocol runs its departure exchange and then
// removes the node from the topology itself. For abrupt departures
// (graceful == false) the protocol must immediately remove the node and
// discard its local state without generating traffic: the node has crashed,
// and the rest of the network may only learn of it through the protocol's
// own detection machinery.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// NodeArrived introduces a node already present in the topology.
	NodeArrived(id radio.NodeID)
	// NodeDeparting removes a node, gracefully or abruptly.
	NodeDeparting(id radio.NodeID, graceful bool)
	// IsConfigured reports whether the node currently holds an address.
	IsConfigured(id radio.NodeID) bool
}

// Runtime bundles the simulation services protocols run on.
type Runtime struct {
	Sim  *sim.Simulator
	Topo *radio.Topology
	Net  *netstack.Network
	Coll *metrics.Collector
	// Tracer receives structured protocol events; nil (the default)
	// disables tracing at near-zero cost. Emit through Runtime.Trace so
	// events carry virtual timestamps.
	Tracer *obs.Tracer

	clock obs.Clock
}

// RuntimeConfig parameterizes NewRuntime.
//
// Deprecated: new code should call New with functional options
// (WithSeed, WithTransmissionRange, WithPerHopDelay, WithTracer,
// WithCollector, WithClock), which extend without breaking callers.
type RuntimeConfig struct {
	// Seed drives every random choice in the run.
	Seed int64
	// TransmissionRange is tr in meters (150 in most of the paper).
	TransmissionRange float64
	// PerHopDelay is the one-hop transmission latency. Defaults to 5ms
	// when zero.
	PerHopDelay time.Duration
}

// DefaultPerHop is the one-hop delay used when no option overrides it.
const DefaultPerHop = 5 * time.Millisecond

// Option configures New.
type Option func(*options)

type options struct {
	seed        int64
	txRange     float64
	perHopDelay time.Duration
	tracer      *obs.Tracer
	coll        *metrics.Collector
	clock       obs.Clock
}

// WithSeed sets the seed driving every random choice in the run.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithTransmissionRange sets tr in meters (150 in most of the paper).
func WithTransmissionRange(tr float64) Option {
	return func(o *options) { o.txRange = tr }
}

// WithPerHopDelay sets the one-hop transmission latency (default
// DefaultPerHop).
func WithPerHopDelay(d time.Duration) Option {
	return func(o *options) { o.perHopDelay = d }
}

// WithTracer attaches a structured event tracer to the runtime. A nil
// tracer is allowed and keeps tracing disabled.
func WithTracer(t *obs.Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// WithCollector substitutes the metrics collector the runtime would
// otherwise allocate — for sharing one collector across runtimes or
// pre-seeding counters.
func WithCollector(c *metrics.Collector) Option {
	return func(o *options) { o.coll = c }
}

// WithClock overrides the timestamp source for emitted events. The default
// is the runtime's virtual clock (Sim.Now), which is what simulation
// traces want; tests pin it for deterministic timestamps.
func WithClock(c obs.Clock) Option {
	return func(o *options) { o.clock = c }
}

// New assembles a simulator, topology, collector and network from options.
func New(opts ...Option) (*Runtime, error) {
	o := options{perHopDelay: DefaultPerHop}
	for _, opt := range opts {
		opt(&o)
	}
	if o.perHopDelay == 0 {
		o.perHopDelay = DefaultPerHop
	}
	topo, err := radio.NewTopology(o.txRange)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	s := sim.New(o.seed)
	coll := o.coll
	if coll == nil {
		coll = metrics.New()
	}
	net, err := netstack.New(s, topo, coll, o.perHopDelay)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	rt := &Runtime{Sim: s, Topo: topo, Net: net, Coll: coll, Tracer: o.tracer}
	rt.clock = o.clock
	if rt.clock == nil {
		rt.clock = s.Now
	}
	return rt, nil
}

// NewRuntime assembles a runtime from the legacy config struct.
//
// Deprecated: use New with functional options.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	return New(
		WithSeed(cfg.Seed),
		WithTransmissionRange(cfg.TransmissionRange),
		WithPerHopDelay(cfg.PerHopDelay),
	)
}

// Trace stamps e with the runtime's clock (virtual time by default) and
// emits it. With no tracer attached this is a struct fill and one branch;
// see BenchmarkTracerDisabled in internal/core.
func (r *Runtime) Trace(e obs.Event) {
	if r.Tracer == nil {
		return
	}
	e.Time = r.clock()
	r.Tracer.Emit(e)
}

// RemoveNode removes a node from the fabric: handler unregistered, mobility
// dropped, connectivity snapshot invalidated. Protocols call this from both
// departure paths.
func (r *Runtime) RemoveNode(id radio.NodeID) {
	r.Net.Unregister(id)
	r.Topo.Remove(id)
	r.Net.InvalidateSnapshot()
}
