package protocol

import (
	"testing"
	"time"

	"quorumconf/internal/mobility"
	"quorumconf/internal/netstack"
)

func TestNewRuntimeDefaults(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Sim == nil || rt.Topo == nil || rt.Net == nil || rt.Coll == nil {
		t.Fatal("runtime has nil components")
	}
	if got := rt.Net.PerHop(); got != DefaultPerHop {
		t.Errorf("PerHop = %v, want default %v", got, DefaultPerHop)
	}
	if got := rt.Topo.Range(); got != 150 {
		t.Errorf("Range = %v, want 150", got)
	}
}

func TestNewRuntimeCustomPerHop(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{Seed: 1, TransmissionRange: 100, PerHopDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Net.PerHop(); got != 20*time.Millisecond {
		t.Errorf("PerHop = %v, want 20ms", got)
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(RuntimeConfig{Seed: 1, TransmissionRange: 0}); err == nil {
		t.Error("zero transmission range accepted")
	}
	if _, err := NewRuntime(RuntimeConfig{Seed: 1, TransmissionRange: -5}); err == nil {
		t.Error("negative transmission range accepted")
	}
}

func TestRemoveNode(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Topo.Add(1, mobility.Static(mobility.Point{X: 10})); err != nil {
		t.Fatal(err)
	}
	if err := rt.Topo.Add(2, mobility.Static(mobility.Point{X: 20})); err != nil {
		t.Fatal(err)
	}
	delivered := false
	_ = rt.Net.Register(1, func(netstack.Message) { delivered = true })

	rt.RemoveNode(1)
	if rt.Topo.Has(1) {
		t.Error("node still in topology after RemoveNode")
	}
	// Messages to the removed node go nowhere.
	if _, ok := rt.Net.Unicast(2, 1, netstack.Message{Category: 1}); ok {
		t.Error("unicast to removed node reported reachable")
	}
	if err := rt.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message delivered to removed node")
	}
	// Snapshot was invalidated.
	if rt.Net.Snapshot().Contains(1) {
		t.Error("snapshot still contains removed node")
	}
}

func TestRuntimeDeterministicSeed(t *testing.T) {
	draws := func(seed int64) []int64 {
		rt, err := NewRuntime(RuntimeConfig{Seed: seed, TransmissionRange: 100})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 5)
		for i := range out {
			out[i] = rt.Sim.Rand().Int63()
		}
		return out
	}
	a, b := draws(9), draws(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
