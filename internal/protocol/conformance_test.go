package protocol_test

// Conformance suite: every autoconfiguration protocol in this repository
// (the quorum protocol and the three baselines) must satisfy the same
// contract — all nodes of a connected network get configured, addresses
// are unique, graceful departure releases state, and runs are
// deterministic per seed. The suite runs each protocol through identical
// scenarios.

import (
	"fmt"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/baseline/buddy"
	"quorumconf/internal/baseline/ctree"
	"quorumconf/internal/baseline/manetconf"
	"quorumconf/internal/core"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
	"quorumconf/internal/workload"
)

type candidate struct {
	name  string
	build workload.BuildFunc
	// ip extracts a node's address (each protocol exposes its own).
	ip func(p protocol.Protocol, id radio.NodeID) (addrspace.Addr, bool)
}

func candidates() []candidate {
	space := addrspace.Block{Lo: 1, Hi: 1024}
	return []candidate{
		{
			name: "quorum",
			build: func(rt *protocol.Runtime) (protocol.Protocol, error) {
				return core.New(rt, core.Params{Space: space})
			},
			ip: func(p protocol.Protocol, id radio.NodeID) (addrspace.Addr, bool) {
				return p.(*core.Protocol).IP(id)
			},
		},
		{
			name: "manetconf",
			build: func(rt *protocol.Runtime) (protocol.Protocol, error) {
				return manetconf.New(rt, manetconf.Params{Space: space})
			},
			ip: func(p protocol.Protocol, id radio.NodeID) (addrspace.Addr, bool) {
				return p.(*manetconf.Protocol).IP(id)
			},
		},
		{
			name: "buddy",
			build: func(rt *protocol.Runtime) (protocol.Protocol, error) {
				return buddy.New(rt, buddy.Params{Space: space})
			},
			ip: func(p protocol.Protocol, id radio.NodeID) (addrspace.Addr, bool) {
				return p.(*buddy.Protocol).IP(id)
			},
		},
		{
			name: "ctree",
			build: func(rt *protocol.Runtime) (protocol.Protocol, error) {
				return ctree.New(rt, ctree.Params{Space: space})
			},
			ip: func(p protocol.Protocol, id radio.NodeID) (addrspace.Addr, bool) {
				return p.(*ctree.Protocol).IP(id)
			},
		},
	}
}

// connectedScenario keeps the network connected (the paper's evaluation
// regime) so full configuration is achievable for every protocol.
func connectedScenario(seed int64) workload.Scenario {
	return workload.Scenario{
		Seed:              seed,
		NumNodes:          40,
		TransmissionRange: 250,
		Speed:             0,
		ArrivalInterval:   3 * time.Second,
	}
}

// fullyConnectedScenario makes every pair of nodes one hop apart for the
// whole run. Address uniqueness is only a universal contract in this
// regime: the baselines have no partition/merge support (the paper calls
// this out for [2] and [3]), so nodes that arrive disconnected found
// separate networks with overlapping spaces and keep their addresses when
// components later touch. The quorum protocol's merge handling is tested
// separately in internal/core.
func fullyConnectedScenario(seed int64) workload.Scenario {
	sc := connectedScenario(seed)
	sc.TransmissionRange = 1500 // covers the 1km x 1km diagonal
	return sc
}

func TestConformanceAllConfigured(t *testing.T) {
	for _, c := range candidates() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := workload.Run(connectedScenario(11), c.build)
			if err != nil {
				t.Fatal(err)
			}
			unconfigured := 0
			for i := radio.NodeID(0); i < 40; i++ {
				if !res.Proto.IsConfigured(i) {
					unconfigured++
				}
			}
			if unconfigured > 1 {
				t.Errorf("%d/40 nodes unconfigured", unconfigured)
			}
		})
	}
}

func TestConformanceUniqueAddresses(t *testing.T) {
	for _, c := range candidates() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 3} {
				res, err := workload.Run(fullyConnectedScenario(seed), c.build)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[addrspace.Addr]radio.NodeID{}
				for i := radio.NodeID(0); i < 40; i++ {
					a, ok := c.ip(res.Proto, i)
					if !ok {
						continue
					}
					if prev, dup := seen[a]; dup {
						t.Fatalf("seed %d: nodes %d and %d share %v", seed, prev, i, a)
					}
					seen[a] = i
				}
			}
		})
	}
}

func TestConformanceGracefulDepartureReleases(t *testing.T) {
	for _, c := range candidates() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sc := connectedScenario(7)
			sc.DepartFraction = 0.4
			sc.AbruptFraction = 0
			sc.SettleTime = 120 * time.Second
			res, err := workload.Run(sc, c.build)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Departures {
				if res.Proto.IsConfigured(d.Node) {
					t.Errorf("departed node %d still configured", d.Node)
				}
			}
			// Departure traffic was charged (every protocol has a
			// release exchange).
			if res.Metrics().TotalHops() == 0 {
				t.Error("no traffic at all recorded")
			}
		})
	}
}

func TestConformanceDeterministic(t *testing.T) {
	for _, c := range candidates() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func() string {
				sc := connectedScenario(5)
				sc.Speed = 20
				sc.DepartFraction = 0.3
				sc.AbruptFraction = 0.5
				res, err := workload.Run(sc, c.build)
				if err != nil {
					t.Fatal(err)
				}
				return res.Metrics().String()
			}
			if a, b := run(), run(); a != b {
				t.Errorf("same seed diverged:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

func TestConformanceSurvivesAbruptChurn(t *testing.T) {
	for _, c := range candidates() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sc := fullyConnectedScenario(13)
			sc.Speed = 20
			sc.DepartFraction = 0.4
			sc.AbruptFraction = 1.0
			sc.SettleTime = 180 * time.Second
			res, err := workload.Run(sc, c.build)
			if err != nil {
				t.Fatal(err)
			}
			// Survivors stay configured and unique.
			seen := map[addrspace.Addr][]radio.NodeID{}
			alive, configured := 0, 0
			for i := radio.NodeID(0); i < 40; i++ {
				if !res.RT.Topo.Has(i) {
					continue
				}
				alive++
				if a, ok := c.ip(res.Proto, i); ok {
					configured++
					seen[a] = append(seen[a], i)
				}
			}
			for a, ids := range seen {
				if len(ids) > 1 {
					t.Errorf("address %v shared by %v", a, ids)
				}
			}
			if alive == 0 || configured < alive*8/10 {
				t.Errorf("only %d/%d survivors configured", configured, alive)
			}
		})
	}
}

// TestConformanceScalesWithoutPanic pushes each protocol to the paper's
// largest size once.
func TestConformanceScalesWithoutPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("large scenario")
	}
	for _, c := range candidates() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sc := workload.Scenario{
				Seed:              1,
				NumNodes:          200,
				TransmissionRange: 150,
				Speed:             20,
				ArrivalInterval:   2 * time.Second,
				DepartFraction:    0.2,
				AbruptFraction:    0.3,
			}
			res, err := workload.Run(sc, c.build)
			if err != nil {
				t.Fatal(err)
			}
			configured := 0
			for i := radio.NodeID(0); i < 200; i++ {
				if res.Proto.IsConfigured(i) {
					configured++
				}
			}
			if configured == 0 {
				t.Error("nothing configured at nn=200")
			}
		})
	}
}

func ExampleProtocol() {
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		panic(err)
	}
	p, err := core.New(rt, core.Params{Space: addrspace.Block{Lo: 1, Hi: 64}})
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name())
	// Output: quorum
}
