package wire

// Batch frames: N envelopes under one header, so coalescing transports pay
// one datagram (and one ARQ exchange) for a burst of small control
// messages — hello storms, vote fan-outs, replica-update floods.
//
// Layout (see DESIGN.md Appendix E):
//
//	magic    2 bytes   'Q' 'B'
//	version  1 byte    currently 1
//	count    uvarint   number of envelopes, 1..MaxBatch
//	entries  count ×   uvarint length + standard envelope frame
//
// Every entry is a complete single-envelope frame (magic included), so the
// inner codec's versioning and validation apply unchanged — entries may mix
// envelope versions (spanless version-1 next to span-carrying version-2)
// and each validates on its own. DecodeBatch never panics on hostile input;
// errors wrap the same sentinels as Decode.

import (
	"encoding/binary"
	"fmt"
)

// BatchVersion is the current batch frame format version.
const BatchVersion = 1

// BatchMagic prefixes every batch frame.
var BatchMagic = [2]byte{'Q', 'B'}

// MaxBatch bounds the number of envelopes one batch frame may carry.
const MaxBatch = 256

// EncodeBatch serializes envs as one batch frame.
func EncodeBatch(envs []*Envelope) ([]byte, error) {
	return AppendEncodeBatch(nil, envs)
}

// AppendEncodeBatch serializes envs as one batch frame, appending to b.
func AppendEncodeBatch(b []byte, envs []*Envelope) ([]byte, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	if len(envs) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", ErrInvalid, len(envs), MaxBatch)
	}
	b = append(b, BatchMagic[0], BatchMagic[1], BatchVersion)
	b = binary.AppendUvarint(b, uint64(len(envs)))
	var scratch []byte
	for i, env := range envs {
		frame, err := AppendEncode(scratch[:0], env)
		if err != nil {
			return nil, fmt.Errorf("batch entry %d: %w", i, err)
		}
		scratch = frame
		b = binary.AppendUvarint(b, uint64(len(frame)))
		b = append(b, frame...)
	}
	return b, nil
}

// AppendBatchRaw builds a batch frame from already-encoded envelope
// frames, appending to b — the coalescing transport's fast path, which
// holds frames it encoded at enqueue time and must not pay a second
// encode per entry. Each frame is checked for the single-envelope header
// (anything deeper is caught by DecodeBatch on the receive side).
func AppendBatchRaw(b []byte, frames [][]byte) ([]byte, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	if len(frames) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", ErrInvalid, len(frames), MaxBatch)
	}
	b = append(b, BatchMagic[0], BatchMagic[1], BatchVersion)
	b = binary.AppendUvarint(b, uint64(len(frames)))
	for i, frame := range frames {
		if len(frame) < 4 || frame[0] != Magic[0] || frame[1] != Magic[1] {
			return nil, fmt.Errorf("%w: entry %d is not an envelope frame", ErrInvalid, i)
		}
		b = binary.AppendUvarint(b, uint64(len(frame)))
		b = append(b, frame...)
	}
	return b, nil
}

// DecodeBatch parses one batch frame, which must occupy the whole buffer.
func DecodeBatch(b []byte) ([]*Envelope, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d-byte batch frame", ErrTruncated, len(b))
	}
	if b[0] != BatchMagic[0] || b[1] != BatchMagic[1] {
		return nil, fmt.Errorf("%w: % x", ErrBadMagic, b[:2])
	}
	if b[2] != BatchVersion {
		return nil, fmt.Errorf("%w: batch version %d", ErrVersion, b[2])
	}
	d := &decoder{buf: b, pos: 3}
	// Each entry costs at least a length byte plus a 4-byte minimal frame.
	count, err := d.count(5)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	if count > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", ErrInvalid, count, MaxBatch)
	}
	envs := make([]*Envelope, 0, count)
	for i := 0; i < count; i++ {
		size, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if size > uint64(d.remaining()) {
			return nil, fmt.Errorf("%w: entry %d length %d exceeds frame", ErrInvalid, i, size)
		}
		env, err := Decode(d.buf[d.pos : d.pos+int(size)])
		if err != nil {
			return nil, fmt.Errorf("batch entry %d: %w", i, err)
		}
		d.pos += int(size)
		envs = append(envs, env)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%w: %d bytes after batch", ErrTrailing, len(d.buf)-d.pos)
	}
	return envs, nil
}
