package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
)

func TestSpanRoundTrip(t *testing.T) {
	env := &Envelope{
		Type:     msg.TQuorumClt,
		MsgID:    7,
		Src:      2,
		Dst:      3,
		Category: metrics.CatConfig,
		Span:     0x0002_0000_0000_0001, // MintSpan(2, 1)
		Payload:  msg.QuorumClt{BallotID: 1, Owner: 2, Addr: 5, Allocator: 2},
	}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if b[2] != VersionSpan {
		t.Fatalf("span envelope encoded as version %d, want %d", b[2], VersionSpan)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("round trip:\n in: %+v\nout: %+v", env, got)
	}
}

// TestSpanlessEncodesAsVersion1 pins backward compatibility: an envelope
// without a span must produce bytes identical to what pre-span builds
// emitted, so old decoders never see a version they don't know.
func TestSpanlessEncodesAsVersion1(t *testing.T) {
	env := &Envelope{Type: msg.TComReq, Src: 1, Dst: 2, Category: metrics.CatConfig, Payload: msg.ComReq{PathHops: 1}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if b[2] != Version {
		t.Fatalf("spanless envelope encoded as version %d, want %d", b[2], Version)
	}
	// The exact version-1 layout, byte for byte: magic, version, type code,
	// msgID, src, dst, category, hops, payload. Built here by hand so a
	// layout change (e.g. emitting the span field unconditionally) fails.
	code, _ := TypeCode(msg.TComReq)
	want := []byte{'Q', 'W', 1, code}
	want = binary.AppendUvarint(want, 0)      // msgID
	want = binary.AppendVarint(want, 1)       // src
	want = binary.AppendVarint(want, 2)       // dst
	want = append(want, byte(env.Category))   // category
	want = binary.AppendUvarint(want, 0)      // hops
	want, err = appendPayload(want, env.Type, env.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("legacy layout changed:\ngot  % x\nwant % x", b, want)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Span != 0 {
		t.Fatalf("spanless frame decoded with span %x", got.Span)
	}
}

func TestSpanVersion2ZeroSpanRejected(t *testing.T) {
	env := &Envelope{Type: msg.TComReq, Src: 1, Dst: 2, Category: metrics.CatConfig, Span: 9, Payload: msg.ComReq{}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	// Surgically zero the span uvarint (last byte before the payload's
	// PathHops uvarint; both are single-byte here). Rebuild the frame with
	// span byte 0 instead.
	forged := append([]byte{}, b...)
	// Frame: magic(2) version(1) code(1) msgID(1) src(1) dst(1) cat(1) hops(1) span(1) pathhops(1)
	forged[9] = 0
	_, err = Decode(forged)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("v2 frame with zero span: err = %v, want ErrInvalid", err)
	}
}

func TestSpanTruncatedAfterHops(t *testing.T) {
	env := &Envelope{Type: msg.TComReq, Src: 1, Dst: 2, Category: metrics.CatConfig, Span: 1 << 40, Payload: msg.ComReq{}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the multi-byte span uvarint.
	_, err = Decode(b[:10])
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated span: err = %v, want ErrTruncated", err)
	}
}

// TestBatchMixedSpanVersions pins that one batch frame may carry spanless
// version-1 entries next to span-carrying version-2 entries — exactly what
// a coalescing transport produces while traced and untraced traffic share
// a destination.
func TestBatchMixedSpanVersions(t *testing.T) {
	envs := []*Envelope{
		{Type: msg.TComReq, MsgID: 1, Src: 1, Dst: 2, Category: metrics.CatConfig, Payload: msg.ComReq{}},
		{Type: msg.TQuorumClt, MsgID: 2, Src: 1, Dst: 2, Category: metrics.CatConfig, Span: 42,
			Payload: msg.QuorumClt{BallotID: 3, Owner: 1, Addr: 9, Allocator: 1}},
	}
	b, err := EncodeBatch(envs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(envs, got) {
		t.Fatalf("batch round trip:\n in: %+v %+v\nout: %+v %+v", envs[0], envs[1], got[0], got[1])
	}

	// The raw fast path must accept pre-encoded version-2 frames too.
	f1, _ := Encode(envs[0])
	f2, _ := Encode(envs[1])
	raw, err := AppendBatchRaw(nil, [][]byte{f1, f2})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(envs, got2) {
		t.Fatal("raw batch round trip mismatch")
	}
}
