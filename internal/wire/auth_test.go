package wire

import (
	"bytes"
	"errors"
	"testing"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

func sealedFrame(t *testing.T, inner []byte) []byte {
	t.Helper()
	f, err := Seal(testKey, inner)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return f
}

func TestAuthRoundTrip(t *testing.T) {
	inners := [][]byte{
		{},
		{0x01},
		[]byte("hello quorum"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	for _, inner := range inners {
		f := sealedFrame(t, inner)
		if len(f) != len(inner)+AuthOverhead {
			t.Fatalf("sealed length %d, want %d", len(f), len(inner)+AuthOverhead)
		}
		got, err := Open(testKey, f)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, inner) {
			t.Fatalf("inner mismatch: got %x want %x", got, inner)
		}
	}
}

func TestAuthAppendSeal(t *testing.T) {
	prefix := []byte{0xFF, 0xFE}
	f, err := AppendSeal(prefix, testKey, []byte("payload"))
	if err != nil {
		t.Fatalf("AppendSeal: %v", err)
	}
	if !bytes.Equal(f[:2], prefix) {
		t.Fatalf("prefix clobbered: % x", f[:2])
	}
	if _, err := Open(testKey, f[2:]); err != nil {
		t.Fatalf("Open after AppendSeal: %v", err)
	}
}

func TestAuthTamperRejected(t *testing.T) {
	inner := []byte("a perfectly honest vote")
	base := sealedFrame(t, inner)
	// Flip every single byte position in turn: each must fail — with
	// ErrAuth once past the header checks.
	for i := range base {
		f := append([]byte(nil), base...)
		f[i] ^= 0x40
		if _, err := Open(testKey, f); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// A MAC or body flip specifically reports ErrAuth.
	for _, i := range []int{3, 3 + macSize} {
		f := append([]byte(nil), base...)
		f[i] ^= 0x01
		if _, err := Open(testKey, f); !errors.Is(err, ErrAuth) {
			t.Fatalf("byte %d flip: got %v, want ErrAuth", i, err)
		}
	}
}

func TestAuthWrongKey(t *testing.T) {
	f := sealedFrame(t, []byte("cluster-a traffic"))
	other := []byte("ffffffffffffffffffffffffffffffff")
	if _, err := Open(other, f); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key: got %v, want ErrAuth", err)
	}
}

func TestAuthSentinels(t *testing.T) {
	f := sealedFrame(t, []byte("x"))
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short", f[:AuthOverhead-1], ErrTruncated},
		{"bad magic", append([]byte{'X', 'A'}, f[2:]...), ErrBadMagic},
		{"envelope magic", append([]byte{Magic[0], Magic[1]}, f[2:]...), ErrBadMagic},
		{"bad version", append([]byte{'Q', 'A', 99}, f[3:]...), ErrVersion},
	}
	for _, tc := range cases {
		if _, err := Open(testKey, tc.frame); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := Open(nil, f); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty key Open: got %v, want ErrInvalid", err)
	}
	if _, err := Seal(nil, []byte("x")); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty key Seal: got %v, want ErrInvalid", err)
	}
}

func TestAuthDeterministic(t *testing.T) {
	// Retransmissions reuse the sealed frame, so sealing must be a pure
	// function of (key, inner).
	a := sealedFrame(t, []byte("retry me"))
	b := sealedFrame(t, []byte("retry me"))
	if !bytes.Equal(a, b) {
		t.Fatal("Seal is not deterministic")
	}
}

// FuzzAuthFrameRoundTrip throws arbitrary bytes at Open and checks the
// seal/open invariants: Open never panics, a sealed frame opens to its
// inner bytes under the sealing key, and any frame that opens under the
// key re-seals to identical bytes (canonical encoding).
func FuzzAuthFrameRoundTrip(f *testing.F) {
	key := []byte("fuzz-key-0123456789abcdef0123456")
	seed := func(inner []byte) {
		frame, err := Seal(key, inner)
		if err != nil {
			f.Fatalf("seed Seal: %v", err)
		}
		f.Add(frame)
	}
	seed(nil)
	seed([]byte{'D'})
	seed([]byte("the quick brown fox"))
	// A realistic inner: a transport data frame (kind byte + envelope
	// magic + arbitrary body bytes).
	seed(append([]byte{'D', Magic[0], Magic[1], Version}, 1, 2, 3))
	// Corruptions.
	good, _ := Seal(key, []byte("corrupt me"))
	for i := 0; i < len(good); i += 7 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xFF
		f.Add(bad)
	}
	f.Add([]byte{'Q', 'A'})
	f.Add([]byte{'Q', 'A', 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		inner, err := Open(key, data)
		if err != nil {
			return // rejected input; only invariant is "no panic"
		}
		resealed, err := Seal(key, inner)
		if err != nil {
			t.Fatalf("re-Seal of opened frame: %v", err)
		}
		if !bytes.Equal(resealed, data) {
			t.Fatalf("non-canonical auth frame:\n in %x\nout %x", data, resealed)
		}
		again, err := Open(key, resealed)
		if err != nil {
			t.Fatalf("re-Open: %v", err)
		}
		if !bytes.Equal(again, inner) {
			t.Fatalf("inner changed across round-trip")
		}
	})
}
