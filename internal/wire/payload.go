package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/msg"
	"quorumconf/internal/radio"
)

// Payload bodies are encoded field-by-field in declaration order with the
// primitives below. Collections carry a uvarint length prefix; optional
// pointers (tables, pools) carry a presence byte. Table entries are emitted
// in ascending address order and re-validated on decode, which keeps the
// encoding canonical.

// --- encode primitives ---------------------------------------------------

func encID(b []byte, id radio.NodeID) []byte { return binary.AppendVarint(b, int64(id)) }

func encInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func encAddr(b []byte, a addrspace.Addr) []byte { return binary.AppendUvarint(b, uint64(a)) }

func encBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func encTag(b []byte, t msg.NetTag) []byte {
	b = encAddr(b, t.Addr)
	return binary.AppendUvarint(b, uint64(t.Nonce))
}

func encBlock(b []byte, blk addrspace.Block) []byte {
	b = encAddr(b, blk.Lo)
	return encAddr(b, blk.Hi)
}

func encEntry(b []byte, e addrspace.Entry) []byte {
	b = append(b, byte(e.Status))
	return binary.AppendUvarint(b, e.Version)
}

func encIDs(b []byte, ids []radio.NodeID) []byte {
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = encID(b, id)
	}
	return b
}

func encTable(b []byte, t *addrspace.Table) ([]byte, error) {
	if t == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	b = encBlock(b, t.Block())
	entries := t.Entries()
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, ae := range entries {
		b = encAddr(b, ae.Addr)
		b = encEntry(b, ae.Entry)
	}
	return b, nil
}

func encPool(b []byte, p *addrspace.Pool) ([]byte, error) {
	if p == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	tables := p.Tables()
	b = binary.AppendUvarint(b, uint64(len(tables)))
	var err error
	for _, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("%w: nil table inside pool", ErrInvalid)
		}
		if b, err = encTable(b, t); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func encHolderInfo(b []byte, h msg.HolderInfo) ([]byte, error) {
	b = encID(b, h.Owner)
	b = encAddr(b, h.OwnerIP)
	b, err := encPool(b, h.Pool)
	if err != nil {
		return nil, err
	}
	return encIDs(b, h.Holders), nil
}

func encComCfg(b []byte, g msg.ComCfg) []byte {
	b = encAddr(b, g.Addr)
	b = encTag(b, g.NetworkID)
	b = encID(b, g.Configurer)
	return encInt(b, g.PathHops)
}

// --- decode primitives ---------------------------------------------------

func (d *decoder) id() (radio.NodeID, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 || v < math.MinInt32 {
		return 0, fmt.Errorf("%w: node ID %d out of range", ErrInvalid, v)
	}
	return radio.NodeID(v), nil
}

func (d *decoder) int() (int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 || v < math.MinInt32 {
		return 0, fmt.Errorf("%w: int %d out of range", ErrInvalid, v)
	}
	return int(v), nil
}

func (d *decoder) addr() (addrspace.Addr, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: address %d out of range", ErrInvalid, v)
	}
	return addrspace.Addr(v), nil
}

func (d *decoder) u32() (uint32, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: uint32 %d out of range", ErrInvalid, v)
	}
	return uint32(v), nil
}

func (d *decoder) tag() (msg.NetTag, error) {
	a, err := d.addr()
	if err != nil {
		return msg.NetTag{}, err
	}
	nonce, err := d.u32()
	if err != nil {
		return msg.NetTag{}, err
	}
	return msg.NetTag{Addr: a, Nonce: nonce}, nil
}

func (d *decoder) block() (addrspace.Block, error) {
	lo, err := d.addr()
	if err != nil {
		return addrspace.Block{}, err
	}
	hi, err := d.addr()
	if err != nil {
		return addrspace.Block{}, err
	}
	return addrspace.Block{Lo: lo, Hi: hi}, nil
}

func (d *decoder) entry() (addrspace.Entry, error) {
	st, err := d.byte()
	if err != nil {
		return addrspace.Entry{}, err
	}
	if st > byte(addrspace.Occupied) {
		return addrspace.Entry{}, fmt.Errorf("%w: status %d", ErrInvalid, st)
	}
	ver, err := d.uvarint()
	if err != nil {
		return addrspace.Entry{}, err
	}
	return addrspace.Entry{Status: addrspace.Status(st), Version: ver}, nil
}

func (d *decoder) ids() ([]radio.NodeID, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]radio.NodeID, n)
	for i := range out {
		if out[i], err = d.id(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) table() (*addrspace.Table, error) {
	present, err := d.bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	blk, err := d.block()
	if err != nil {
		return nil, err
	}
	t, err := addrspace.NewTable(blk)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	n, err := d.count(3) // addr + status + version: >= 3 bytes each
	if err != nil {
		return nil, err
	}
	prev := addrspace.Addr(0)
	for i := 0; i < n; i++ {
		a, err := d.addr()
		if err != nil {
			return nil, err
		}
		if i > 0 && a <= prev {
			return nil, fmt.Errorf("%w: table entries not strictly ascending at %v", ErrInvalid, a)
		}
		prev = a
		e, err := d.entry()
		if err != nil {
			return nil, err
		}
		if err := t.Set(a, e); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	return t, nil
}

func (d *decoder) pool() (*addrspace.Pool, error) {
	present, err := d.bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	n, err := d.count(4)
	if err != nil {
		return nil, err
	}
	tables := make([]*addrspace.Table, 0, n)
	for i := 0; i < n; i++ {
		t, err := d.table()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return nil, fmt.Errorf("%w: nil table inside pool", ErrInvalid)
		}
		tables = append(tables, t)
	}
	return addrspace.NewPool(tables...), nil
}

func (d *decoder) holderInfo() (msg.HolderInfo, error) {
	var h msg.HolderInfo
	var err error
	if h.Owner, err = d.id(); err != nil {
		return h, err
	}
	if h.OwnerIP, err = d.addr(); err != nil {
		return h, err
	}
	if h.Pool, err = d.pool(); err != nil {
		return h, err
	}
	if h.Holders, err = d.ids(); err != nil {
		return h, err
	}
	return h, nil
}

func (d *decoder) comCfg() (msg.ComCfg, error) {
	var g msg.ComCfg
	var err error
	if g.Addr, err = d.addr(); err != nil {
		return g, err
	}
	if g.NetworkID, err = d.tag(); err != nil {
		return g, err
	}
	if g.Configurer, err = d.id(); err != nil {
		return g, err
	}
	if g.PathHops, err = d.int(); err != nil {
		return g, err
	}
	return g, nil
}

// --- per-type payload codecs ---------------------------------------------

// appendPayload serializes a typed payload; the concrete type of p must
// match typ.
func appendPayload(b []byte, typ string, p any) ([]byte, error) {
	mismatch := func() ([]byte, error) {
		return nil, fmt.Errorf("%w: %T for %s", ErrPayload, p, typ)
	}
	switch typ {
	case msg.TFirstBcast:
		v, ok := p.(msg.FirstBcast)
		if !ok {
			return mismatch()
		}
		return encInt(b, v.Tries), nil
	case msg.TFirstResp:
		v, ok := p.(msg.FirstResp)
		if !ok {
			return mismatch()
		}
		b = encAddr(b, v.IP)
		b = encTag(b, v.NetworkID)
		return encBool(b, v.IsHead), nil
	case msg.TComReq:
		v, ok := p.(msg.ComReq)
		if !ok {
			return mismatch()
		}
		return encInt(b, v.PathHops), nil
	case msg.TComCfg:
		v, ok := p.(msg.ComCfg)
		if !ok {
			return mismatch()
		}
		return encComCfg(b, v), nil
	case msg.TComAck:
		v, ok := p.(msg.ComAck)
		if !ok {
			return mismatch()
		}
		b = encAddr(b, v.Addr)
		return encInt(b, v.PathHops), nil
	case msg.TNack:
		v, ok := p.(msg.CfgNack)
		if !ok {
			return mismatch()
		}
		return encInt(b, v.PathHops), nil
	case msg.TChReq:
		v, ok := p.(msg.ChReq)
		if !ok {
			return mismatch()
		}
		return encInt(b, v.PathHops), nil
	case msg.TChPrp:
		v, ok := p.(msg.ChPrp)
		if !ok {
			return mismatch()
		}
		b = encBlock(b, v.Block)
		return encInt(b, v.PathHops), nil
	case msg.TChCnf:
		v, ok := p.(msg.ChCnf)
		if !ok {
			return mismatch()
		}
		b = encBlock(b, v.Block)
		return encInt(b, v.PathHops), nil
	case msg.TChCfg:
		v, ok := p.(msg.ChCfg)
		if !ok {
			return mismatch()
		}
		b, err := encTable(b, v.Table)
		if err != nil {
			return nil, err
		}
		b = encTag(b, v.NetworkID)
		b = encID(b, v.Configurer)
		return encInt(b, v.PathHops), nil
	case msg.TChAck:
		v, ok := p.(msg.ChAck)
		if !ok {
			return mismatch()
		}
		return encInt(b, v.PathHops), nil
	case msg.TQuorumClt:
		v, ok := p.(msg.QuorumClt)
		if !ok {
			return mismatch()
		}
		b = binary.AppendUvarint(b, v.BallotID)
		b = encID(b, v.Owner)
		b = encAddr(b, v.Addr)
		b = encBool(b, v.Split)
		return encID(b, v.Allocator), nil
	case msg.TQuorumCfm:
		v, ok := p.(msg.QuorumCfm)
		if !ok {
			return mismatch()
		}
		b = binary.AppendUvarint(b, v.BallotID)
		b = encEntry(b, v.Entry)
		b = encBool(b, v.HasReplica)
		return encBool(b, v.Busy), nil
	case msg.TQuorumUpd:
		v, ok := p.(msg.QuorumUpd)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Owner)
		b = encAddr(b, v.Addr)
		return encEntry(b, v.Entry), nil
	case msg.TSplitUpd:
		v, ok := p.(msg.SplitUpd)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Owner)
		b, err := encPool(b, v.NewPool)
		if err != nil {
			return nil, err
		}
		return encID(b, v.NewHead), nil
	case msg.TReplicaDist:
		v, ok := p.(msg.ReplicaDist)
		if !ok {
			return mismatch()
		}
		return encHolderInfo(b, v.Info)
	case msg.TReplicaAck:
		v, ok := p.(msg.ReplicaAck)
		if !ok {
			return mismatch()
		}
		return encHolderInfo(b, v.Info)
	case msg.TAgentFwd:
		v, ok := p.(msg.AgentFwd)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Requestor)
		return encInt(b, v.PathHops), nil
	case msg.TAgentCfg:
		v, ok := p.(msg.AgentCfg)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Requestor)
		return encComCfg(b, v.Grant), nil
	case msg.TUpdateLoc:
		v, ok := p.(msg.UpdateLoc)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Configurer)
		b = encAddr(b, v.ConfigurerIP)
		return encAddr(b, v.Addr), nil
	case msg.TReturnAddr:
		v, ok := p.(msg.ReturnAddr)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Configurer)
		b = encAddr(b, v.ConfigurerIP)
		return encAddr(b, v.Addr), nil
	case msg.TDepartAck:
		if _, ok := p.(msg.DepartAck); !ok {
			return mismatch()
		}
		return b, nil
	case msg.TReturnFwd:
		v, ok := p.(msg.ReturnFwd)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Owner)
		return encAddr(b, v.Addr), nil
	case msg.TVacate:
		v, ok := p.(msg.Vacate)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Owner)
		b = encAddr(b, v.Addr)
		return encInt(b, v.TTL), nil
	case msg.TChReturn:
		v, ok := p.(msg.ChReturn)
		if !ok {
			return mismatch()
		}
		b, err := encPool(b, v.Pool)
		if err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(v.Members)))
		for _, m := range v.Members {
			b = encID(b, m.Node)
			b = encAddr(b, m.Addr)
		}
		return b, nil
	case msg.TChReturnAck:
		if _, ok := p.(msg.ChReturnAck); !ok {
			return mismatch()
		}
		return b, nil
	case msg.TChResign:
		if _, ok := p.(msg.ChResign); !ok {
			return mismatch()
		}
		return b, nil
	case msg.TReassign:
		v, ok := p.(msg.Reassign)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.NewAllocator)
		return encAddr(b, v.NewAllocatorIP), nil
	case msg.TPoolUpd:
		v, ok := p.(msg.PoolUpd)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Owner)
		return encPool(b, v.Pool)
	case msg.TRepReq:
		if _, ok := p.(msg.RepReq); !ok {
			return mismatch()
		}
		return b, nil
	case msg.TRepRsp:
		if _, ok := p.(msg.RepRsp); !ok {
			return mismatch()
		}
		return b, nil
	case msg.TAddrRec:
		v, ok := p.(msg.AddrRec)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Target)
		return encAddr(b, v.TargetIP), nil
	case msg.TRecRep:
		v, ok := p.(msg.RecRep)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Target)
		return encAddr(b, v.Addr), nil
	case msg.TRecFwd:
		v, ok := p.(msg.RecFwd)
		if !ok {
			return mismatch()
		}
		b = encID(b, v.Target)
		b = encAddr(b, v.Addr)
		return encInt(b, v.TTL), nil
	case msg.TReconfig:
		if _, ok := p.(msg.Reconfig); !ok {
			return mismatch()
		}
		return b, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownType, typ)
}

// decodePayload parses the typed payload for typ.
func decodePayload(d *decoder, typ string) (any, error) {
	switch typ {
	case msg.TFirstBcast:
		tries, err := d.int()
		if err != nil {
			return nil, err
		}
		return msg.FirstBcast{Tries: tries}, nil
	case msg.TFirstResp:
		var v msg.FirstResp
		var err error
		if v.IP, err = d.addr(); err != nil {
			return nil, err
		}
		if v.NetworkID, err = d.tag(); err != nil {
			return nil, err
		}
		if v.IsHead, err = d.bool(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TComReq:
		hops, err := d.int()
		if err != nil {
			return nil, err
		}
		return msg.ComReq{PathHops: hops}, nil
	case msg.TComCfg:
		return d.comCfg()
	case msg.TComAck:
		var v msg.ComAck
		var err error
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		if v.PathHops, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TNack:
		hops, err := d.int()
		if err != nil {
			return nil, err
		}
		return msg.CfgNack{PathHops: hops}, nil
	case msg.TChReq:
		hops, err := d.int()
		if err != nil {
			return nil, err
		}
		return msg.ChReq{PathHops: hops}, nil
	case msg.TChPrp:
		var v msg.ChPrp
		var err error
		if v.Block, err = d.block(); err != nil {
			return nil, err
		}
		if v.PathHops, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TChCnf:
		var v msg.ChCnf
		var err error
		if v.Block, err = d.block(); err != nil {
			return nil, err
		}
		if v.PathHops, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TChCfg:
		var v msg.ChCfg
		var err error
		if v.Table, err = d.table(); err != nil {
			return nil, err
		}
		if v.NetworkID, err = d.tag(); err != nil {
			return nil, err
		}
		if v.Configurer, err = d.id(); err != nil {
			return nil, err
		}
		if v.PathHops, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TChAck:
		hops, err := d.int()
		if err != nil {
			return nil, err
		}
		return msg.ChAck{PathHops: hops}, nil
	case msg.TQuorumClt:
		var v msg.QuorumClt
		var err error
		if v.BallotID, err = d.uvarint(); err != nil {
			return nil, err
		}
		if v.Owner, err = d.id(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		if v.Split, err = d.bool(); err != nil {
			return nil, err
		}
		if v.Allocator, err = d.id(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TQuorumCfm:
		var v msg.QuorumCfm
		var err error
		if v.BallotID, err = d.uvarint(); err != nil {
			return nil, err
		}
		if v.Entry, err = d.entry(); err != nil {
			return nil, err
		}
		if v.HasReplica, err = d.bool(); err != nil {
			return nil, err
		}
		if v.Busy, err = d.bool(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TQuorumUpd:
		var v msg.QuorumUpd
		var err error
		if v.Owner, err = d.id(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		if v.Entry, err = d.entry(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TSplitUpd:
		var v msg.SplitUpd
		var err error
		if v.Owner, err = d.id(); err != nil {
			return nil, err
		}
		if v.NewPool, err = d.pool(); err != nil {
			return nil, err
		}
		if v.NewHead, err = d.id(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TReplicaDist:
		info, err := d.holderInfo()
		if err != nil {
			return nil, err
		}
		return msg.ReplicaDist{Info: info}, nil
	case msg.TReplicaAck:
		info, err := d.holderInfo()
		if err != nil {
			return nil, err
		}
		return msg.ReplicaAck{Info: info}, nil
	case msg.TAgentFwd:
		var v msg.AgentFwd
		var err error
		if v.Requestor, err = d.id(); err != nil {
			return nil, err
		}
		if v.PathHops, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TAgentCfg:
		var v msg.AgentCfg
		var err error
		if v.Requestor, err = d.id(); err != nil {
			return nil, err
		}
		if v.Grant, err = d.comCfg(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TUpdateLoc:
		var v msg.UpdateLoc
		var err error
		if v.Configurer, err = d.id(); err != nil {
			return nil, err
		}
		if v.ConfigurerIP, err = d.addr(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TReturnAddr:
		var v msg.ReturnAddr
		var err error
		if v.Configurer, err = d.id(); err != nil {
			return nil, err
		}
		if v.ConfigurerIP, err = d.addr(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TDepartAck:
		return msg.DepartAck{}, nil
	case msg.TReturnFwd:
		var v msg.ReturnFwd
		var err error
		if v.Owner, err = d.id(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TVacate:
		var v msg.Vacate
		var err error
		if v.Owner, err = d.id(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		if v.TTL, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TChReturn:
		var v msg.ChReturn
		var err error
		if v.Pool, err = d.pool(); err != nil {
			return nil, err
		}
		n, err := d.count(2)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			var m msg.MemberRecord
			if m.Node, err = d.id(); err != nil {
				return nil, err
			}
			if m.Addr, err = d.addr(); err != nil {
				return nil, err
			}
			v.Members = append(v.Members, m)
		}
		return v, nil
	case msg.TChReturnAck:
		return msg.ChReturnAck{}, nil
	case msg.TChResign:
		return msg.ChResign{}, nil
	case msg.TReassign:
		var v msg.Reassign
		var err error
		if v.NewAllocator, err = d.id(); err != nil {
			return nil, err
		}
		if v.NewAllocatorIP, err = d.addr(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TPoolUpd:
		var v msg.PoolUpd
		var err error
		if v.Owner, err = d.id(); err != nil {
			return nil, err
		}
		if v.Pool, err = d.pool(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TRepReq:
		return msg.RepReq{}, nil
	case msg.TRepRsp:
		return msg.RepRsp{}, nil
	case msg.TAddrRec:
		var v msg.AddrRec
		var err error
		if v.Target, err = d.id(); err != nil {
			return nil, err
		}
		if v.TargetIP, err = d.addr(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TRecRep:
		var v msg.RecRep
		var err error
		if v.Target, err = d.id(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TRecFwd:
		var v msg.RecFwd
		var err error
		if v.Target, err = d.id(); err != nil {
			return nil, err
		}
		if v.Addr, err = d.addr(); err != nil {
			return nil, err
		}
		if v.TTL, err = d.int(); err != nil {
			return nil, err
		}
		return v, nil
	case msg.TReconfig:
		return msg.Reconfig{}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownType, typ)
}
