// Package wire is the versioned binary codec for protocol messages.
//
// Every payload type in internal/msg has a compact binary form; an
// Envelope frames one payload with the routing metadata the transports
// need (source, destination, message ID, traffic category). The format is
// the contract between daemons built from different checkouts, so it is
// explicit about versioning and rejects anything it does not understand.
//
// Layout (all multi-byte integers are varints, see below):
//
//	magic    2 bytes   'Q' 'W'
//	version  1 byte    1 (no span) or 2 (span extension)
//	type     1 byte    message type code (table derived from msg.Types())
//	msgID    uvarint   transport-level dedup/ack ID (0 = unassigned)
//	src      varint    sender node ID (zigzag)
//	dst      varint    destination node ID (zigzag)
//	category 1 byte    metrics.Category the traffic is charged to
//	hops     uvarint   hop count (filled at delivery; 0 before)
//	span     uvarint   version 2 only: causal span ID (never 0 on the wire)
//	payload  ...       type-specific body, extends to the end of the buffer
//
// The span extension is versioned for backward compatibility: an envelope
// with Span == 0 encodes as version 1, byte-identical to pre-span builds,
// so old decoders keep working until they actually receive a span. A
// version-2 frame carrying span 0 is rejected (ErrInvalid) to keep the
// encoding canonical — every valid frame has exactly one byte form.
//
// Unsigned fields use unsigned LEB128 (encoding/binary uvarint); signed
// fields use zigzag varints. Addresses are uvarint32, versions uvarint64.
// Tables encode as block + explicit entries sorted by address, so encoding
// is canonical: Decode(Encode(e)) re-encodes to identical bytes.
//
// Decode never panics on hostile input: truncation, unknown versions or
// type codes, invalid field values and trailing garbage all surface as
// wrapped sentinel errors (ErrTruncated, ErrVersion, ErrUnknownType,
// ErrInvalid, ErrTrailing).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/radio"
)

// Version is the base wire format version (no span extension).
const Version = 1

// VersionSpan is the wire format version carrying the causal span ID
// extension. Encode picks it automatically when Envelope.Span is nonzero.
const VersionSpan = 2

// Magic prefixes every frame.
var Magic = [2]byte{'Q', 'W'}

// Decode/Encode error sentinels. Returned errors wrap these, so test with
// errors.Is.
var (
	ErrTruncated   = errors.New("wire: truncated frame")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrVersion     = errors.New("wire: unknown version")
	ErrUnknownType = errors.New("wire: unknown message type")
	ErrInvalid     = errors.New("wire: invalid field")
	ErrTrailing    = errors.New("wire: trailing bytes")
	ErrPayload     = errors.New("wire: payload does not match message type")
)

// Envelope frames one protocol message for transport.
type Envelope struct {
	// MsgID is the transport-level message ID used for deduplication and
	// acknowledgement. Zero means "not yet assigned".
	MsgID uint64
	// Type is the message type name (one of msg.Types()).
	Type string
	// Src and Dst are the endpoints.
	Src, Dst radio.NodeID
	// Category is the metrics bucket the traffic is charged to.
	Category metrics.Category
	// Hops is the traversed hop count, filled at delivery.
	Hops int
	// Span is the causal trace identifier of the operation this message
	// belongs to (see obs.MintSpan). Zero means untraced; such envelopes
	// encode in the version-1 format.
	Span uint64
	// Payload is the typed message body; its concrete type must match Type
	// (see internal/msg).
	Payload any
}

// Type code table, derived from the stable order of msg.Types(). Codes
// start at 1; 0 is reserved as invalid.
var (
	typeCodes = map[string]byte{}
	codeTypes = map[byte]string{}
)

func init() {
	for i, t := range msg.Types() {
		code := byte(i + 1)
		typeCodes[t] = code
		codeTypes[code] = t
	}
}

// TypeCode returns the wire code for a message type name.
func TypeCode(typ string) (byte, bool) {
	c, ok := typeCodes[typ]
	return c, ok
}

// Encode serializes the envelope.
func Encode(env *Envelope) ([]byte, error) {
	return AppendEncode(nil, env)
}

// AppendEncode serializes the envelope, appending to b.
func AppendEncode(b []byte, env *Envelope) ([]byte, error) {
	code, ok := typeCodes[env.Type]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, env.Type)
	}
	if env.Category < 0 || env.Category > 0xff {
		return nil, fmt.Errorf("%w: category %d out of range", ErrInvalid, env.Category)
	}
	if env.Hops < 0 {
		return nil, fmt.Errorf("%w: negative hop count %d", ErrInvalid, env.Hops)
	}
	version := byte(Version)
	if env.Span != 0 {
		version = VersionSpan
	}
	b = append(b, Magic[0], Magic[1], version, code)
	b = binary.AppendUvarint(b, env.MsgID)
	b = binary.AppendVarint(b, int64(env.Src))
	b = binary.AppendVarint(b, int64(env.Dst))
	b = append(b, byte(env.Category))
	b = binary.AppendUvarint(b, uint64(env.Hops))
	if env.Span != 0 {
		b = binary.AppendUvarint(b, env.Span)
	}
	return appendPayload(b, env.Type, env.Payload)
}

// Decode parses one envelope, which must occupy the whole buffer.
func Decode(b []byte) (*Envelope, error) {
	d := &decoder{buf: b}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrTruncated, len(b))
	}
	if b[0] != Magic[0] || b[1] != Magic[1] {
		return nil, fmt.Errorf("%w: % x", ErrBadMagic, b[:2])
	}
	if b[2] != Version && b[2] != VersionSpan {
		return nil, fmt.Errorf("%w: %d", ErrVersion, b[2])
	}
	typ, ok := codeTypes[b[3]]
	if !ok {
		return nil, fmt.Errorf("%w: code %d", ErrUnknownType, b[3])
	}
	d.pos = 4
	env := &Envelope{Type: typ}
	var err error
	if env.MsgID, err = d.uvarint(); err != nil {
		return nil, err
	}
	src, err := d.varint()
	if err != nil {
		return nil, err
	}
	dst, err := d.varint()
	if err != nil {
		return nil, err
	}
	env.Src, env.Dst = radio.NodeID(src), radio.NodeID(dst)
	cat, err := d.byte()
	if err != nil {
		return nil, err
	}
	env.Category = metrics.Category(cat)
	hops, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if hops > 1<<20 {
		return nil, fmt.Errorf("%w: hop count %d", ErrInvalid, hops)
	}
	env.Hops = int(hops)
	if b[2] == VersionSpan {
		if env.Span, err = d.uvarint(); err != nil {
			return nil, err
		}
		if env.Span == 0 {
			return nil, fmt.Errorf("%w: version %d frame with zero span", ErrInvalid, VersionSpan)
		}
	}
	if env.Payload, err = decodePayload(d, typ); err != nil {
		return nil, err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%w: %d bytes after payload", ErrTrailing, len(d.buf)-d.pos)
	}
	return env, nil
}

// decoder is a cursor over one frame.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("%w: at offset %d", ErrTruncated, d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) bool() (bool, error) {
	b, err := d.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bool byte %d", ErrInvalid, b)
	}
}

// count reads a collection length and sanity-checks it against the bytes
// left in the frame (every element costs at least perElem bytes), so a
// hostile length prefix cannot trigger a huge allocation.
func (d *decoder) count(perElem int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if perElem < 1 {
		perElem = 1
	}
	if v > uint64(d.remaining()/perElem) {
		return 0, fmt.Errorf("%w: count %d exceeds frame", ErrInvalid, v)
	}
	return int(v), nil
}
