package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
)

func batchSamples(t testing.TB) []*Envelope {
	t.Helper()
	return []*Envelope{
		{Type: msg.TComReq, MsgID: 11, Src: 1, Dst: 2, Category: metrics.CatConfig,
			Payload: msg.ComReq{PathHops: 1}},
		{Type: msg.TQuorumClt, MsgID: 12, Src: 2, Dst: 3, Category: metrics.CatConfig,
			Payload: msg.QuorumClt{BallotID: 7, Owner: 2, Addr: 5, Allocator: 2}},
		{Type: msg.TQuorumCfm, MsgID: 13, Src: 3, Dst: 2, Category: metrics.CatConfig,
			Payload: msg.QuorumCfm{BallotID: 7, Entry: addrspace.Entry{Status: addrspace.Free, Version: 3}, HasReplica: true}},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	envs := batchSamples(t)
	for n := 1; n <= len(envs); n++ {
		b, err := EncodeBatch(envs[:n])
		if err != nil {
			t.Fatalf("EncodeBatch(%d): %v", n, err)
		}
		got, err := DecodeBatch(b)
		if err != nil {
			t.Fatalf("DecodeBatch(%d): %v", n, err)
		}
		if !reflect.DeepEqual(got, envs[:n]) {
			t.Fatalf("round trip mismatch at n=%d:\n got %+v\nwant %+v", n, got, envs[:n])
		}
		// Canonical: re-encoding the decoded batch gives identical bytes.
		b2, err := EncodeBatch(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical at n=%d", n)
		}
	}
}

func TestBatchRejects(t *testing.T) {
	envs := batchSamples(t)
	valid, err := EncodeBatch(envs)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := EncodeBatch(nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty batch: got %v, want ErrInvalid", err)
	}
	big := make([]*Envelope, MaxBatch+1)
	for i := range big {
		big[i] = envs[0]
	}
	if _, err := EncodeBatch(big); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized batch: got %v, want ErrInvalid", err)
	}

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", valid[:3], ErrTruncated},
		{"bad magic", append([]byte{'X', 'B'}, valid[2:]...), ErrBadMagic},
		{"single-envelope frame", mustEncode(t, envs[0]), ErrBadMagic},
		{"bad version", append([]byte{'Q', 'B', 99}, valid[3:]...), ErrVersion},
		{"truncated entry", valid[:len(valid)-2], ErrInvalid},
		{"trailing bytes", append(append([]byte{}, valid...), 0), ErrTrailing},
		{"huge count", []byte{'Q', 'B', BatchVersion, 0xff, 0xff, 0xff, 0x7f}, ErrInvalid},
		{"zero count", []byte{'Q', 'B', BatchVersion, 0, 1, 2}, ErrInvalid},
	}
	for _, tc := range cases {
		if _, err := DecodeBatch(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func mustEncode(t testing.TB, env *Envelope) []byte {
	t.Helper()
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzBatchRoundTrip mirrors FuzzWireRoundTrip for the batch frame: any
// input DecodeBatch accepts must re-encode canonically, and DecodeBatch
// must never panic or over-read.
func FuzzBatchRoundTrip(f *testing.F) {
	envs := []*Envelope{
		{Type: msg.TComReq, Src: 1, Dst: 2, Category: metrics.CatConfig, Payload: msg.ComReq{PathHops: 1}},
		{Type: msg.TQuorumClt, Src: 2, Dst: 3, Category: metrics.CatConfig,
			Payload: msg.QuorumClt{BallotID: 1, Owner: 2, Addr: 5, Allocator: 2}},
		{Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}},
	}
	for n := 1; n <= len(envs); n++ {
		b, err := EncodeBatch(envs[:n])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 5 {
			corrupt := append([]byte{}, b...)
			corrupt[len(b)/2] ^= 0xff
			f.Add(corrupt)
			f.Add(b[:len(b)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{'Q', 'B', 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := DecodeBatch(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		b, err := EncodeBatch(envs)
		if err != nil {
			t.Fatalf("decoded batch fails to encode: %v", err)
		}
		envs2, err := DecodeBatch(b)
		if err != nil {
			t.Fatalf("re-encoded batch fails to decode: %v", err)
		}
		if !reflect.DeepEqual(envs, envs2) {
			t.Fatalf("round trip mismatch:\n 1: %+v\n 2: %+v", envs, envs2)
		}
		b2, err := EncodeBatch(envs2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical:\n 1: % x\n 2: % x", b, b2)
		}
	})
}
