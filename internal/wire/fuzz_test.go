package wire

import (
	"bytes"
	"reflect"
	"testing"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/radio"
)

// FuzzWireRoundTrip feeds arbitrary bytes to Decode. Whatever decodes must
// re-encode canonically: Encode(Decode(data)) must itself decode to a
// deeply-equal envelope and re-encode to identical bytes. Decode must never
// panic or over-read.
func FuzzWireRoundTrip(f *testing.F) {
	// Seed with one valid frame per message type plus a few corruptions.
	tag := msg.NetTag{Addr: 7, Nonce: 42}
	tab, _ := addrspace.NewTable(addrspace.Block{Lo: 0, Hi: 15})
	_, _ = tab.Mark(3, addrspace.Occupied)
	pool := addrspace.NewPool(tab.Clone())
	samples := []*Envelope{
		{Type: msg.TComReq, Src: 1, Dst: 2, Category: metrics.CatConfig, Payload: msg.ComReq{PathHops: 1}},
		{Type: msg.TComCfg, Src: 2, Dst: 1, MsgID: 9, Category: metrics.CatConfig,
			Payload: msg.ComCfg{Addr: 5, NetworkID: tag, Configurer: 2, PathHops: 2}},
		{Type: msg.TQuorumClt, Src: 2, Dst: 3, Category: metrics.CatConfig,
			Payload: msg.QuorumClt{BallotID: 1, Owner: 2, Addr: 5, Allocator: 2}},
		{Type: msg.TQuorumCfm, Src: 3, Dst: 2, Category: metrics.CatConfig,
			Payload: msg.QuorumCfm{BallotID: 1, Entry: addrspace.Entry{Status: addrspace.Free, Version: 3}, HasReplica: true}},
		{Type: msg.TChCfg, Src: 2, Dst: 4, Category: metrics.CatConfig,
			Payload: msg.ChCfg{Table: tab, NetworkID: tag, Configurer: 2, PathHops: 1}},
		{Type: msg.TReplicaDist, Src: 2, Dst: 3, Category: metrics.CatSync,
			Payload: msg.ReplicaDist{Info: msg.HolderInfo{Owner: 2, OwnerIP: 5, Pool: pool, Holders: []radio.NodeID{2, 3}}}},
		{Type: msg.TAddrRec, Src: 3, Dst: 4, Category: metrics.CatReclamation,
			Payload: msg.AddrRec{Target: 9, TargetIP: 6}},
		{Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}},
	}
	for _, env := range samples {
		b, err := Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 4 {
			corrupt := append([]byte{}, b...)
			corrupt[len(b)/2] ^= 0xff
			f.Add(corrupt)
			f.Add(b[:len(b)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{'Q', 'W', 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded envelope fails to encode: %v\nenv: %+v", err, env)
		}
		env2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip mismatch:\n 1: %+v\n 2: %+v", env, env2)
		}
		b2, err := Encode(env2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical:\n 1: % x\n 2: % x", b, b2)
		}
	})
}

// FuzzWireSpanRoundTrip exercises the version-2 span extension: seeds are
// span-carrying frames (plus span-targeted corruptions), and the property
// adds span-specific invariants on top of the canonical round trip — a
// nonzero span must decode from a version-2 header and survive re-encoding,
// and a version-1 frame must never produce a span.
func FuzzWireSpanRoundTrip(f *testing.F) {
	samples := []*Envelope{
		{Type: msg.TComReq, Src: 1, Dst: 2, Category: metrics.CatConfig, Span: 1,
			Payload: msg.ComReq{PathHops: 1}},
		{Type: msg.TQuorumClt, MsgID: 3, Src: 2, Dst: 3, Category: metrics.CatConfig, Span: 0x0002_0000_0000_0001,
			Payload: msg.QuorumClt{BallotID: 1, Owner: 2, Addr: 5, Allocator: 2}},
		{Type: msg.TQuorumCfm, Src: 3, Dst: 2, Category: metrics.CatConfig, Span: ^uint64(0),
			Payload: msg.QuorumCfm{BallotID: 1, Entry: addrspace.Entry{Status: addrspace.Free, Version: 3}, HasReplica: true}},
		{Type: msg.TAddrRec, Src: 3, Dst: 4, Category: metrics.CatReclamation, Span: 77,
			Payload: msg.AddrRec{Target: 9, TargetIP: 6}},
		{Type: msg.TComCfg, Src: 2, Dst: 1, MsgID: 9, Category: metrics.CatConfig,
			Payload: msg.ComCfg{Addr: 5, Configurer: 2, PathHops: 2}}, // spanless contrast
	}
	for _, env := range samples {
		b, err := Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 10 {
			corrupt := append([]byte{}, b...)
			corrupt[9] ^= 0xff // in or near the span varint
			f.Add(corrupt)
			f.Add(b[:9])
			downgraded := append([]byte{}, b...)
			downgraded[2] = Version // version byte lies about the layout
			f.Add(downgraded)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		if env.Span != 0 && data[2] != VersionSpan {
			t.Fatalf("span %x decoded from version-%d frame", env.Span, data[2])
		}
		if env.Span == 0 && data[2] == VersionSpan {
			t.Fatal("version-2 frame decoded with zero span")
		}
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded envelope fails to encode: %v\nenv: %+v", err, env)
		}
		env2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip mismatch:\n 1: %+v\n 2: %+v", env, env2)
		}
		b2, err := Encode(env2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical:\n 1: % x\n 2: % x", b, b2)
		}
	})
}
