package wire

import (
	"errors"
	"reflect"
	"testing"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/radio"
)

// sampleTable builds a small table with both occupied and freed-with-version
// entries — the two kinds of explicit replicated state.
func sampleTable(t *testing.T) *addrspace.Table {
	t.Helper()
	tab, err := addrspace.NewTable(addrspace.Block{Lo: 10, Hi: 25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Mark(11, addrspace.Occupied); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Mark(12, addrspace.Occupied); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Mark(12, addrspace.Free); err != nil { // freed, version 2
		t.Fatal(err)
	}
	return tab
}

func samplePool(t *testing.T) *addrspace.Pool {
	t.Helper()
	tab2, err := addrspace.NewTable(addrspace.Block{Lo: 100, Hi: 131})
	if err != nil {
		t.Fatal(err)
	}
	return addrspace.NewPool(sampleTable(t), tab2)
}

// sampleEnvelopes returns one non-trivial envelope per message type.
func sampleEnvelopes(t *testing.T) []*Envelope {
	t.Helper()
	tag := msg.NetTag{Addr: 10, Nonce: 0xdeadbeef}
	info := msg.HolderInfo{Owner: 3, OwnerIP: 11, Pool: samplePool(t), Holders: []radio.NodeID{3, 5, 9}}
	grant := msg.ComCfg{Addr: 14, NetworkID: tag, Configurer: 3, PathHops: 4}
	payloads := map[string]any{
		msg.TFirstBcast:  msg.FirstBcast{Tries: 2},
		msg.TFirstResp:   msg.FirstResp{IP: 10, NetworkID: tag, IsHead: true},
		msg.TComReq:      msg.ComReq{PathHops: 3},
		msg.TComCfg:      grant,
		msg.TComAck:      msg.ComAck{Addr: 14, PathHops: 5},
		msg.TNack:        msg.CfgNack{PathHops: 1},
		msg.TChReq:       msg.ChReq{PathHops: 2},
		msg.TChPrp:       msg.ChPrp{Block: addrspace.Block{Lo: 16, Hi: 25}, PathHops: 2},
		msg.TChCnf:       msg.ChCnf{Block: addrspace.Block{Lo: 16, Hi: 25}, PathHops: 3},
		msg.TChCfg:       msg.ChCfg{Table: sampleTable(t), NetworkID: tag, Configurer: 3, PathHops: 4},
		msg.TChAck:       msg.ChAck{PathHops: 5},
		msg.TQuorumClt:   msg.QuorumClt{BallotID: 77, Owner: 3, Addr: 14, Split: true, Allocator: 9},
		msg.TQuorumCfm:   msg.QuorumCfm{BallotID: 77, Entry: addrspace.Entry{Status: addrspace.Occupied, Version: 6}, HasReplica: true, Busy: true},
		msg.TQuorumUpd:   msg.QuorumUpd{Owner: 3, Addr: 14, Entry: addrspace.Entry{Status: addrspace.Free, Version: 7}},
		msg.TSplitUpd:    msg.SplitUpd{Owner: 3, NewPool: samplePool(t), NewHead: 12},
		msg.TReplicaDist: msg.ReplicaDist{Info: info},
		msg.TReplicaAck:  msg.ReplicaAck{Info: info},
		msg.TAgentFwd:    msg.AgentFwd{Requestor: 21, PathHops: 2},
		msg.TAgentCfg:    msg.AgentCfg{Requestor: 21, Grant: grant},
		msg.TUpdateLoc:   msg.UpdateLoc{Configurer: 3, ConfigurerIP: 11, Addr: 14},
		msg.TReturnAddr:  msg.ReturnAddr{Configurer: 3, ConfigurerIP: 11, Addr: 14},
		msg.TDepartAck:   msg.DepartAck{},
		msg.TReturnFwd:   msg.ReturnFwd{Owner: 3, Addr: 14},
		msg.TVacate:      msg.Vacate{Owner: 3, Addr: 14, TTL: 3},
		msg.TChReturn: msg.ChReturn{Pool: samplePool(t), Members: []msg.MemberRecord{
			{Node: 7, Addr: 15}, {Node: 8, Addr: 17},
		}},
		msg.TChReturnAck: msg.ChReturnAck{},
		msg.TChResign:    msg.ChResign{},
		msg.TReassign:    msg.Reassign{NewAllocator: 5, NewAllocatorIP: 20},
		msg.TPoolUpd:     msg.PoolUpd{Owner: 3, Pool: samplePool(t)},
		msg.TRepReq:      msg.RepReq{},
		msg.TRepRsp:      msg.RepRsp{},
		msg.TAddrRec:     msg.AddrRec{Target: 6, TargetIP: 18},
		msg.TRecRep:      msg.RecRep{Target: 6, Addr: 18},
		msg.TRecFwd:      msg.RecFwd{Target: 6, Addr: 18, TTL: 2},
		msg.TReconfig:    msg.Reconfig{},
	}
	var out []*Envelope
	for i, typ := range msg.Types() {
		p, ok := payloads[typ]
		if !ok {
			t.Fatalf("no sample payload for %s", typ)
		}
		out = append(out, &Envelope{
			MsgID:    uint64(1000 + i),
			Type:     typ,
			Src:      radio.NodeID(i),
			Dst:      radio.NodeID(100 + i),
			Category: metrics.CatConfig,
			Hops:     i % 5,
			Payload:  p,
		})
	}
	return out
}

func TestRoundTripEveryType(t *testing.T) {
	for _, env := range sampleEnvelopes(t) {
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Type, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", env.Type, err)
		}
		if !reflect.DeepEqual(env, got) {
			t.Errorf("%s: round trip mismatch\n in: %+v\nout: %+v", env.Type, env, got)
		}
		// Canonical: re-encoding the decoded envelope is byte-identical.
		b2, err := Encode(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", env.Type, err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Errorf("%s: encoding not canonical", env.Type)
		}
	}
}

func TestDecodeTruncation(t *testing.T) {
	for _, env := range sampleEnvelopes(t) {
		b, err := Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Errorf("%s: decode of %d/%d byte prefix succeeded", env.Type, cut, len(b))
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := Encode(&Envelope{Type: msg.TRepReq, Src: 1, Dst: 2, Category: metrics.CatSync, Payload: msg.RepReq{}})
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}

	bad = append([]byte{}, good...)
	bad[2] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: got %v", err)
	}

	bad = append([]byte{}, good...)
	bad[3] = 0xfe
	if _, err := Decode(bad); !errors.Is(err, ErrUnknownType) {
		t.Errorf("bad type code: got %v", err)
	}

	if _, err := Decode(append(append([]byte{}, good...), 0x00)); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing byte: got %v", err)
	}

	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty frame: got %v", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&Envelope{Type: "NOPE", Payload: msg.RepReq{}}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: got %v", err)
	}
	if _, err := Encode(&Envelope{Type: msg.TComReq, Payload: msg.RepReq{}}); !errors.Is(err, ErrPayload) {
		t.Errorf("payload mismatch: got %v", err)
	}
	if _, err := Encode(&Envelope{Type: msg.TComReq, Hops: -1, Payload: msg.ComReq{}}); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative hops: got %v", err)
	}
}

func TestTypeCodeStability(t *testing.T) {
	// The code assignment is part of the wire contract: inserting a type
	// in the middle of msg.Types() would silently renumber everything, so
	// pin a few anchors.
	anchors := map[string]byte{
		msg.TFirstBcast: 1,
		msg.TComReq:     3,
		msg.TQuorumClt:  12,
		msg.TReconfig:   35,
	}
	for typ, want := range anchors {
		got, ok := TypeCode(typ)
		if !ok || got != want {
			t.Errorf("TypeCode(%s) = %d, %v; want %d", typ, got, ok, want)
		}
	}
	if len(msg.Types()) != 35 {
		t.Errorf("type table has %d entries, want 35 — appending is fine, reordering is not", len(msg.Types()))
	}
}
