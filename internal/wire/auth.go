package wire

// Authenticated frames: an HMAC-SHA256 seal around any socket frame, so a
// transport can reject forged or corrupted datagrams before touching ARQ or
// protocol state. The seal wraps raw bytes — a single-envelope frame, a
// batch frame, or a transport ack — which keeps one verification point per
// datagram regardless of what rides inside.
//
// Layout (see DESIGN.md Appendix F):
//
//	magic    2 bytes   'Q' 'A'
//	version  1 byte    currently 1
//	mac      32 bytes  HMAC-SHA256(key, version byte || inner)
//	inner    ...       the wrapped frame, extends to the end of the buffer
//
// The version byte is covered by the MAC so a future format bump cannot be
// stripped or replayed across versions. Verification is constant-time
// (hmac.Equal); any mismatch surfaces as ErrAuth without revealing which
// byte differed. Open never panics on hostile input.

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// AuthVersion is the current authenticated frame format version.
const AuthVersion = 1

// AuthMagic prefixes every authenticated frame.
var AuthMagic = [2]byte{'Q', 'A'}

// macSize is the HMAC-SHA256 digest length.
const macSize = sha256.Size

// AuthOverhead is how many bytes Seal adds around the inner frame.
const AuthOverhead = 2 + 1 + macSize

// ErrAuth reports a frame whose MAC did not verify under the given key —
// forged, corrupted, or keyed for a different cluster. Test with errors.Is.
var ErrAuth = errors.New("wire: frame authentication failed")

// Seal wraps inner in an authenticated frame keyed with key.
func Seal(key, inner []byte) ([]byte, error) {
	return AppendSeal(nil, key, inner)
}

// AppendSeal is Seal appending to b.
func AppendSeal(b, key, inner []byte) ([]byte, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("%w: empty auth key", ErrInvalid)
	}
	b = append(b, AuthMagic[0], AuthMagic[1], AuthVersion)
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte{AuthVersion})
	mac.Write(inner)
	b = mac.Sum(b)
	return append(b, inner...), nil
}

// Open verifies an authenticated frame and returns the inner bytes. The
// returned slice aliases b. Errors wrap the usual sentinels: ErrTruncated,
// ErrBadMagic, ErrVersion, and ErrAuth for a MAC mismatch.
func Open(key, b []byte) ([]byte, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("%w: empty auth key", ErrInvalid)
	}
	if len(b) < AuthOverhead {
		return nil, fmt.Errorf("%w: %d-byte auth frame", ErrTruncated, len(b))
	}
	if b[0] != AuthMagic[0] || b[1] != AuthMagic[1] {
		return nil, fmt.Errorf("%w: % x", ErrBadMagic, b[:2])
	}
	if b[2] != AuthVersion {
		return nil, fmt.Errorf("%w: auth version %d", ErrVersion, b[2])
	}
	sum, inner := b[3:3+macSize], b[3+macSize:]
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte{b[2]})
	mac.Write(inner)
	if !hmac.Equal(sum, mac.Sum(nil)) {
		return nil, ErrAuth
	}
	return inner, nil
}

// DeriveKey turns a cluster passphrase into the 32-byte HMAC key the
// authenticated frame layer uses. The domain-separation prefix keeps the
// key distinct from any other SHA-256 use of the same passphrase. An empty
// passphrase returns nil (authentication disabled), so CLI flags can pass
// their value through unconditionally.
func DeriveKey(passphrase string) []byte {
	if passphrase == "" {
		return nil
	}
	sum := sha256.Sum256([]byte("quorumconf-auth-v1:" + passphrase))
	return sum[:]
}
