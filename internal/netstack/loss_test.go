package netstack

import (
	"errors"
	"testing"

	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

func TestSetLossRateValidation(t *testing.T) {
	_, n := lineNet(t)
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		err := n.SetLossRate(bad)
		if err == nil {
			t.Errorf("SetLossRate(%v) accepted", bad)
			continue
		}
		if !errors.Is(err, ErrLossRateRange) {
			t.Errorf("SetLossRate(%v) = %v, want errors.Is ErrLossRateRange", bad, err)
		}
	}
	if err := n.SetLossRate(0); err != nil {
		t.Errorf("SetLossRate(0) rejected: %v", err)
	}
	if err := n.SetLossRate(0.5); err != nil {
		t.Errorf("SetLossRate(0.5) rejected: %v", err)
	}
}

func TestZeroLossDeliversEverything(t *testing.T) {
	s, n := lineNet(t)
	if err := n.SetLossRate(0); err != nil {
		t.Fatal(err)
	}
	got := 0
	_ = n.Register(4, func(Message) { got++ })
	for i := 0; i < 50; i++ {
		if _, ok := n.Unicast(0, 4, Message{Category: metrics.CatConfig}); !ok {
			t.Fatal("unicast failed")
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("delivered %d/50 with zero loss", got)
	}
}

func TestLossDropsSomeDeliveries(t *testing.T) {
	s, n := lineNet(t)
	if err := n.SetLossRate(0.3); err != nil {
		t.Fatal(err)
	}
	got := 0
	_ = n.Register(4, func(Message) { got++ })
	const sent = 200
	for i := 0; i < sent; i++ {
		if _, ok := n.Unicast(0, 4, Message{Category: metrics.CatConfig}); !ok {
			t.Fatal("unicast failed")
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 hops at 30% per-hop loss: survival 0.7^4 = 24%.
	if got == 0 || got == sent {
		t.Fatalf("delivered %d/%d, want partial delivery", got, sent)
	}
	want := float64(sent) * 0.24
	if float64(got) < want*0.5 || float64(got) > want*1.7 {
		t.Errorf("delivered %d, want around %.0f (0.7^4 survival)", got, want)
	}
	// Cost is charged regardless of loss.
	if n.Metrics().Hops(metrics.CatConfig) != int64(sent*4) {
		t.Errorf("charged %d hops, want %d (losses still cost)", n.Metrics().Hops(metrics.CatConfig), sent*4)
	}
}

func TestLossAppliesPerHop(t *testing.T) {
	// A one-hop neighbor must see more deliveries than a four-hop one at
	// the same loss rate.
	s, n := lineNet(t)
	if err := n.SetLossRate(0.3); err != nil {
		t.Fatal(err)
	}
	near, far := 0, 0
	_ = n.Register(1, func(Message) { near++ })
	_ = n.Register(4, func(Message) { far++ })
	for i := 0; i < 300; i++ {
		_, _ = n.Unicast(0, 1, Message{Category: metrics.CatConfig})
		_, _ = n.Unicast(0, 4, Message{Category: metrics.CatConfig})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if near <= far {
		t.Errorf("near=%d far=%d; per-hop loss must penalize longer paths", near, far)
	}
}

func TestLossAffectsFloodsAndLocalBroadcasts(t *testing.T) {
	s := sim.New(3)
	topo, _ := radio.NewTopology(150)
	for i := 0; i < 12; i++ {
		_ = topo.Add(radio.NodeID(i), mobility.Static(mobility.Point{X: float64(i) * 100}))
	}
	n, err := New(s, topo, metrics.New(), hop)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetLossRate(0.4); err != nil {
		t.Fatal(err)
	}
	received := 0
	for i := 1; i < 12; i++ {
		_ = n.Register(radio.NodeID(i), func(Message) { received++ })
	}
	tx := n.Flood(0, Message{Category: metrics.CatReclamation})
	if tx != 12 {
		t.Errorf("flood transmissions = %d, want 12 (cost unaffected by loss)", tx)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received == 0 || received == 11 {
		t.Errorf("flood reached %d/11 under 40%% loss, want partial", received)
	}
}

func TestLossDeterministicPerSeed(t *testing.T) {
	run := func() int {
		s := sim.New(99)
		topo, _ := radio.NewTopology(150)
		for i := 0; i < 5; i++ {
			_ = topo.Add(radio.NodeID(i), mobility.Static(mobility.Point{X: float64(i) * 100}))
		}
		n, err := New(s, topo, metrics.New(), hop)
		if err != nil {
			t.Fatal(err)
		}
		_ = n.SetLossRate(0.5)
		got := 0
		_ = n.Register(4, func(Message) { got++ })
		for i := 0; i < 100; i++ {
			_, _ = n.Unicast(0, 4, Message{Category: metrics.CatConfig})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if a, b := run(), run(); a != b {
		t.Errorf("loss not deterministic per seed: %d vs %d", a, b)
	}
}
