package netstack

import (
	"testing"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

const hop = 10 * time.Millisecond

// lineNet builds a 5-node line (100m apart, 150m range) network fixture.
func lineNet(t *testing.T) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(1)
	topo, err := radio.NewTopology(150)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := topo.Add(radio.NodeID(i), mobility.Static(mobility.Point{X: float64(i) * 100})); err != nil {
			t.Fatal(err)
		}
	}
	n, err := New(s, topo, metrics.New(), hop)
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestNewValidation(t *testing.T) {
	s := sim.New(1)
	topo, _ := radio.NewTopology(100)
	if _, err := New(nil, topo, metrics.New(), hop); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := New(s, nil, metrics.New(), hop); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(s, topo, nil, hop); err == nil {
		t.Error("nil collector accepted")
	}
	if _, err := New(s, topo, metrics.New(), 0); err == nil {
		t.Error("zero per-hop delay accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	_, n := lineNet(t)
	if err := n.Register(0, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestUnicastDeliversWithHopDelay(t *testing.T) {
	s, n := lineNet(t)
	var got Message
	var at time.Duration
	if err := n.Register(4, func(m Message) { got = m; at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	hops, ok := n.Unicast(0, 4, Message{Type: "X", Category: metrics.CatConfig, Payload: 42})
	if !ok || hops != 4 {
		t.Fatalf("Unicast = %d,%v, want 4,true", hops, ok)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Type != "X" || got.Src != 0 || got.Dst != 4 || got.Hops != 4 {
		t.Errorf("delivered message = %+v", got)
	}
	if got.Payload != 42 {
		t.Errorf("payload = %v, want 42", got.Payload)
	}
	if at != 4*hop {
		t.Errorf("delivered at %v, want %v", at, 4*hop)
	}
	if n.Metrics().Hops(metrics.CatConfig) != 4 {
		t.Errorf("charged %d hops, want 4", n.Metrics().Hops(metrics.CatConfig))
	}
}

func TestUnicastUnreachableChargesNothing(t *testing.T) {
	s := sim.New(1)
	topo, _ := radio.NewTopology(50)
	_ = topo.Add(0, mobility.Static(mobility.Point{X: 0}))
	_ = topo.Add(1, mobility.Static(mobility.Point{X: 1000}))
	n, err := New(s, topo, metrics.New(), hop)
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	_ = n.Register(1, func(Message) { delivered = true })
	if _, ok := n.Unicast(0, 1, Message{Category: metrics.CatConfig}); ok {
		t.Error("unreachable unicast reported ok")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("unreachable message delivered")
	}
	if n.Metrics().TotalHops() != 0 {
		t.Error("unreachable unicast charged hops")
	}
}

func TestUnicastToDepartedNodeDropped(t *testing.T) {
	s, n := lineNet(t)
	delivered := false
	_ = n.Register(4, func(Message) { delivered = true })
	if _, ok := n.Unicast(0, 4, Message{Category: metrics.CatConfig}); !ok {
		t.Fatal("unicast failed")
	}
	n.Unregister(4) // departs while message in flight
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message delivered to departed node")
	}
}

func TestSelfUnicastZeroHops(t *testing.T) {
	s, n := lineNet(t)
	var got *Message
	_ = n.Register(2, func(m Message) { got = &m })
	hops, ok := n.Unicast(2, 2, Message{Category: metrics.CatConfig})
	if !ok || hops != 0 {
		t.Fatalf("self unicast = %d,%v", hops, ok)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Hops != 0 {
		t.Error("self message not delivered with 0 hops")
	}
}

func TestFloodReachesComponent(t *testing.T) {
	s, n := lineNet(t)
	received := map[radio.NodeID]int{}
	for i := 0; i < 5; i++ {
		id := radio.NodeID(i)
		_ = n.Register(id, func(m Message) { received[id] = m.Hops })
	}
	tx := n.Flood(0, Message{Type: "ADDR_REC", Category: metrics.CatReclamation})
	if tx != 5 {
		t.Errorf("flood transmissions = %d, want 5 (component size)", tx)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(received) != 4 {
		t.Fatalf("flood reached %d nodes, want 4 (all but source)", len(received))
	}
	for i := 1; i < 5; i++ {
		if received[radio.NodeID(i)] != i {
			t.Errorf("node %d received at %d hops, want %d", i, received[radio.NodeID(i)], i)
		}
	}
	if n.Metrics().Hops(metrics.CatReclamation) != 5 {
		t.Errorf("flood charged %d, want 5", n.Metrics().Hops(metrics.CatReclamation))
	}
}

func TestFloodScopedTTL(t *testing.T) {
	s, n := lineNet(t)
	received := map[radio.NodeID]bool{}
	for i := 0; i < 5; i++ {
		id := radio.NodeID(i)
		_ = n.Register(id, func(Message) { received[id] = true })
	}
	tx := n.FloodScoped(0, Message{Category: metrics.CatConfig}, 2)
	// Nodes 1,2 receive; transmitters: 0 (d=0) and 1 (d=1) => 2.
	if tx != 2 {
		t.Errorf("scoped flood transmissions = %d, want 2", tx)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !received[1] || !received[2] {
		t.Error("scoped flood missed in-TTL nodes")
	}
	if received[3] || received[4] {
		t.Error("scoped flood leaked past TTL")
	}
}

func TestFloodFromAbsentNode(t *testing.T) {
	_, n := lineNet(t)
	if tx := n.Flood(99, Message{Category: metrics.CatConfig}); tx != 0 {
		t.Errorf("flood from absent node transmitted %d", tx)
	}
	if n.Metrics().TotalHops() != 0 {
		t.Error("absent-node flood charged hops")
	}
}

func TestFloodIsolatedNodeCostsOneTransmission(t *testing.T) {
	s := sim.New(1)
	topo, _ := radio.NewTopology(50)
	_ = topo.Add(7, mobility.Static(mobility.Point{}))
	n, err := New(s, topo, metrics.New(), hop)
	if err != nil {
		t.Fatal(err)
	}
	if tx := n.Flood(7, Message{Category: metrics.CatConfig}); tx != 1 {
		t.Errorf("isolated flood transmissions = %d, want 1", tx)
	}
}

func TestLocalBroadcast(t *testing.T) {
	s, n := lineNet(t)
	received := map[radio.NodeID]bool{}
	for i := 0; i < 5; i++ {
		id := radio.NodeID(i)
		_ = n.Register(id, func(Message) { received[id] = true })
	}
	cnt := n.LocalBroadcast(2, Message{Type: "HELLO", Category: metrics.CatHello})
	if cnt != 2 {
		t.Errorf("LocalBroadcast receivers = %d, want 2", cnt)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !received[1] || !received[3] {
		t.Error("neighbors did not receive local broadcast")
	}
	if received[0] || received[4] {
		t.Error("local broadcast traveled more than one hop")
	}
	if n.Metrics().Hops(metrics.CatHello) != 1 {
		t.Errorf("local broadcast charged %d, want 1", n.Metrics().Hops(metrics.CatHello))
	}
}

func TestSnapshotCachedWithinEvent(t *testing.T) {
	_, n := lineNet(t)
	s1 := n.Snapshot()
	s2 := n.Snapshot()
	if s1 != s2 {
		t.Error("snapshot not cached at same virtual time")
	}
	n.InvalidateSnapshot()
	if s3 := n.Snapshot(); s3 == s1 {
		t.Error("snapshot not rebuilt after invalidation")
	}
}

func TestSnapshotRefreshedAfterTimeAdvance(t *testing.T) {
	s, n := lineNet(t)
	first := n.Snapshot()
	var second *radio.Snapshot
	s.Schedule(time.Second, func() { second = n.Snapshot() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Error("snapshot not refreshed after clock advanced")
	}
}

func TestTraceObservesDeliveries(t *testing.T) {
	s, n := lineNet(t)
	_ = n.Register(1, func(Message) {})
	var traced []Message
	n.SetTrace(func(_ time.Duration, m Message) { traced = append(traced, m) })
	if _, ok := n.Unicast(0, 1, Message{Type: "T", Category: metrics.CatConfig}); !ok {
		t.Fatal("unicast failed")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0].Type != "T" {
		t.Errorf("trace = %+v", traced)
	}
	n.SetTrace(nil) // removable without panic on next delivery
	_, _ = n.Unicast(0, 1, Message{Type: "U", Category: metrics.CatConfig})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesOrderedByDistance(t *testing.T) {
	// Replies from nearer nodes must arrive before farther ones: quorum
	// collection depends on this ordering being physical.
	s, n := lineNet(t)
	var order []radio.NodeID
	_ = n.Register(0, func(m Message) { order = append(order, m.Src) })
	// Simulate three concurrent replies toward node 0.
	for _, src := range []radio.NodeID{3, 1, 2} {
		if _, ok := n.Unicast(src, 0, Message{Category: metrics.CatConfig}); !ok {
			t.Fatal("unicast failed")
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []radio.NodeID{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", order, want)
		}
	}
}
