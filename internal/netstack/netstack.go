// Package netstack delivers protocol messages over the unit-disk topology.
//
// It models what the paper assumes: reliable delivery within transmission
// range, multi-hop unicast along shortest paths, and blind flooding where
// every node in the connected component retransmits once. Costs are charged
// to a metrics category in hop counts, exactly the unit all the paper's
// overhead figures use. Delivery latency is hops x per-hop delay.
//
// Routes are computed on a connectivity snapshot taken at send time; the
// per-hop delay is small relative to node motion, so in-flight topology
// changes are ignored (see DESIGN.md §6).
package netstack

import (
	"errors"
	"fmt"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

// Message is one protocol message. Payloads are protocol-defined; the
// netstack never inspects them.
type Message struct {
	// Type names the message for traces (e.g. "COM_REQ", "QUORUM_CLT").
	Type string
	// Src and Dst are the endpoints. For floods and local broadcasts Dst
	// is set per delivery.
	Src, Dst radio.NodeID
	// Category decides which figure's cost bucket the traffic lands in.
	Category metrics.Category
	// Hops is filled in at delivery with the hop distance traversed.
	Hops int
	// Span is the causal trace identifier of the operation this message
	// belongs to (see obs.MintSpan); zero when untraced. It rides every
	// delivery unchanged, so handlers can stamp it onto their events.
	Span uint64
	// Payload carries protocol state.
	Payload any
}

// Handler consumes messages delivered to one node.
type Handler func(Message)

// TraceFunc observes every delivered message (used by cmd/quorumtrace).
type TraceFunc func(at time.Duration, msg Message)

// Network binds the simulator, the topology and the metrics collector into
// a message-passing fabric.
type Network struct {
	sim    *sim.Simulator
	topo   *radio.Topology
	coll   *metrics.Collector
	perHop time.Duration

	handlers map[radio.NodeID]Handler
	trace    TraceFunc
	filter   ReceiveFilter
	lossRate float64

	snapAt  time.Duration
	snapGen uint64
	snap    *radio.Snapshot
	topoGen uint64
}

// New creates a network. perHop is the one-hop transmission delay; it must
// be positive so that multi-hop exchanges order correctly in virtual time.
func New(s *sim.Simulator, topo *radio.Topology, coll *metrics.Collector, perHop time.Duration) (*Network, error) {
	if s == nil || topo == nil || coll == nil {
		return nil, fmt.Errorf("netstack: nil dependency")
	}
	if perHop <= 0 {
		return nil, fmt.Errorf("netstack: per-hop delay %v must be positive", perHop)
	}
	return &Network{
		sim:      s,
		topo:     topo,
		coll:     coll,
		perHop:   perHop,
		handlers: make(map[radio.NodeID]Handler),
	}, nil
}

// SetTrace installs a delivery observer. Pass nil to remove it.
func (n *Network) SetTrace(f TraceFunc) { n.trace = f }

// ReceiveFilter decides whether a message delivered to dst actually reaches
// its handler. Returning false eats the message after transmission costs
// were charged — modeling a byzantine node that silently drops traffic it
// was supposed to process or forward, not a lossy link (see SetLossRate for
// that).
type ReceiveFilter func(dst radio.NodeID, msg Message) bool

// SetReceiveFilter installs a delivery filter. Pass nil to remove it.
func (n *Network) SetReceiveFilter(f ReceiveFilter) { n.filter = f }

// ErrLossRateRange reports a loss rate outside the half-open interval
// [0, 1). Callers validating loss-style probabilities (including quorumd's
// flag parsing) test for it with errors.Is.
var ErrLossRateRange = errors.New("netstack: loss rate outside [0, 1)")

// SetLossRate enables lossy links: each hop drops the message with the
// given probability, so a k-hop delivery succeeds with (1-rate)^k. The
// rate must lie in [0, 1): negative probabilities are meaningless and a
// rate of 1 would silently drop every message, turning a configuration
// mistake into an inert simulation. Out-of-range rates return an error
// wrapping ErrLossRateRange. The paper assumes reliable delivery (rate 0,
// the default); the loss model is an extension for robustness studies.
// Transmission costs are charged whether or not the delivery survives —
// the radio spent the energy.
func (n *Network) SetLossRate(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("%w: %v", ErrLossRateRange, rate)
	}
	n.lossRate = rate
	return nil
}

// survives draws whether a delivery over the given hop count gets through.
func (n *Network) survives(hops int) bool {
	if n.lossRate == 0 {
		return true
	}
	for i := 0; i < hops; i++ {
		if n.sim.Rand().Float64() < n.lossRate {
			return false
		}
	}
	return true
}

// PerHop returns the one-hop delay.
func (n *Network) PerHop() time.Duration { return n.perHop }

// Topology returns the underlying topology (shared with the scenario
// driver, which adds and removes nodes).
func (n *Network) Topology() *radio.Topology { return n.topo }

// Metrics returns the collector traffic is charged to.
func (n *Network) Metrics() *metrics.Collector { return n.coll }

// Register installs the message handler for a node. A node without a
// handler silently drops traffic (it has left or has not booted).
func (n *Network) Register(id radio.NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("netstack: nil handler for node %d", id)
	}
	n.handlers[id] = h
	return nil
}

// Unregister removes a node's handler (on departure).
func (n *Network) Unregister(id radio.NodeID) { delete(n.handlers, id) }

// InvalidateSnapshot forces the next send to rebuild the connectivity
// snapshot. The scenario driver calls this after adding or removing nodes.
func (n *Network) InvalidateSnapshot() { n.topoGen++ }

// Snapshot returns the connectivity graph at the current virtual time,
// cached so that bursts of messages within one event share one BFS
// substrate.
func (n *Network) Snapshot() *radio.Snapshot {
	now := n.sim.Now()
	if n.snap == nil || n.snapAt != now || n.snapGen != n.topoGen {
		n.snap = n.topo.Snapshot(now)
		n.snapAt = now
		n.snapGen = n.topoGen
	}
	return n.snap
}

// deliver schedules the handler invocation for msg after delay.
func (n *Network) deliver(msg Message, delay time.Duration) {
	n.sim.Schedule(delay, func() {
		h, ok := n.handlers[msg.Dst]
		if !ok {
			return // destination departed in flight
		}
		if n.filter != nil && !n.filter(msg.Dst, msg) {
			return // eaten by a byzantine receiver
		}
		if n.trace != nil {
			n.trace(n.sim.Now(), msg)
		}
		h(msg)
	})
}

// Unicast routes msg from src to dst along a shortest path in the current
// snapshot. It returns the hop count and whether dst was reachable; on
// false, nothing is charged or delivered (the sender's retry logic decides
// what happens next).
func (n *Network) Unicast(src, dst radio.NodeID, msg Message) (int, bool) {
	snap := n.Snapshot()
	hops, ok := snap.HopCount(src, dst)
	if !ok {
		return 0, false
	}
	msg.Src, msg.Dst = src, dst
	msg.Hops = hops
	n.coll.AddTraffic(msg.Category, hops)
	if n.survives(hops) {
		n.deliver(msg, time.Duration(hops)*n.perHop)
	}
	return hops, true
}

// Flood performs blind flooding from src: every node in src's connected
// component retransmits once, and every other node receives the message at
// its hop distance. It returns the number of transmissions charged (the
// component size), the classic cost of network-wide flooding.
func (n *Network) Flood(src radio.NodeID, msg Message) int {
	return n.FloodScoped(src, msg, -1)
}

// FloodScoped floods with a TTL: nodes within maxHops of src receive the
// message, and the source plus nodes strictly inside the TTL retransmit.
// maxHops < 0 means unbounded (the whole component, every member
// retransmitting once — a node cannot know it is the last ring). The return
// value is the number of transmissions charged. A flood from an absent node
// costs and delivers nothing.
func (n *Network) FloodScoped(src radio.NodeID, msg Message, maxHops int) int {
	snap := n.Snapshot()
	if !snap.Contains(src) {
		return 0
	}
	unbounded := maxHops < 0
	k := maxHops
	if unbounded {
		k = snap.Len() // an upper bound on any hop distance
	}
	dist := snap.WithinHops(src, k)
	transmissions := 0
	for id, d := range dist {
		if unbounded || d < maxHops {
			transmissions++
		}
		if id == src {
			continue
		}
		if !n.survives(d) {
			continue
		}
		m := msg
		m.Src, m.Dst = src, id
		m.Hops = d
		n.deliver(m, time.Duration(d)*n.perHop)
	}
	n.coll.AddTransmissions(msg.Category, transmissions)
	return transmissions
}

// LocalBroadcast transmits once, reaching exactly the one-hop neighbors.
// It returns the number of receivers.
func (n *Network) LocalBroadcast(src radio.NodeID, msg Message) int {
	snap := n.Snapshot()
	if !snap.Contains(src) {
		return 0
	}
	neighbors := snap.Neighbors(src)
	for _, id := range neighbors {
		if !n.survives(1) {
			continue
		}
		m := msg
		m.Src, m.Dst = src, id
		m.Hops = 1
		n.deliver(m, n.perHop)
	}
	n.coll.AddTransmissions(msg.Category, 1)
	return len(neighbors)
}
