// Package mobility models node movement for the MANET simulation.
//
// The paper evaluates nodes "moving to a random destination at the speed of
// 20m/s" inside a 1km x 1km area, i.e. the classic random-waypoint model
// with a fixed speed. Positions are evaluated analytically: a model answers
// "where is this node at virtual time t" without any per-tick stepping, so
// the connectivity graph consulted by the network layer is always exact at
// event time.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Point is a position in meters within the simulation area.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance in meters between p and q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Lerp linearly interpolates from p to q; frac 0 yields p, frac 1 yields q.
func (p Point) Lerp(q Point, frac float64) Point {
	return Point{X: p.X + (q.X-p.X)*frac, Y: p.Y + (q.Y-p.Y)*frac}
}

// String renders the point as "(x, y)" with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned area anchored at the origin: [0,Width] x [0,Height].
type Rect struct {
	Width, Height float64
}

// Contains reports whether p lies inside the area (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.Width && p.Y >= 0 && p.Y <= r.Height
}

// RandomPoint draws a uniform point inside the area.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * r.Width, Y: rng.Float64() * r.Height}
}

// Model answers position queries over virtual time. Implementations must be
// consistent: repeated queries for the same time return the same point, and
// trajectories are continuous.
type Model interface {
	PositionAt(t time.Duration) Point
}

// Static is a Model pinned at a single point forever.
type Static Point

// PositionAt implements Model.
func (s Static) PositionAt(time.Duration) Point { return Point(s) }

// segment is one straight-line leg: the node moves from From to To over
// [Start, End]. A pause leg has From == To.
type segment struct {
	start, end time.Duration
	from, to   Point
}

func (s segment) at(t time.Duration) Point {
	if s.end <= s.start || t <= s.start {
		return s.from
	}
	if t >= s.end {
		return s.to
	}
	frac := float64(t-s.start) / float64(s.end-s.start)
	return s.from.Lerp(s.to, frac)
}

// RandomWaypointConfig configures a RandomWaypoint track.
type RandomWaypointConfig struct {
	// Area bounds destinations. Required: both dimensions positive.
	Area Rect
	// MinSpeed and MaxSpeed bound the uniform speed draw in m/s. The paper
	// uses a fixed 20 m/s, i.e. MinSpeed == MaxSpeed == 20. Both must be
	// positive and MaxSpeed >= MinSpeed.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint (zero in the paper).
	Pause time.Duration
	// Start is the initial position; StartTime is when movement begins
	// (before StartTime the node sits at Start).
	Start     Point
	StartTime time.Duration
}

func (c RandomWaypointConfig) validate() error {
	if c.Area.Width <= 0 || c.Area.Height <= 0 {
		return fmt.Errorf("mobility: area %vx%v must be positive", c.Area.Width, c.Area.Height)
	}
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: speed range [%v, %v] invalid", c.MinSpeed, c.MaxSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	return nil
}

// RandomWaypoint is the random-waypoint mobility model with its own
// deterministic random stream, so a node's trajectory depends only on its
// seed and configuration, not on when other parts of the simulation query
// it. Legs are generated lazily as queries reach further into the future.
type RandomWaypoint struct {
	cfg    RandomWaypointConfig
	rng    *rand.Rand
	segs   []segment
	cursor int // index hint for monotonically increasing queries
}

// NewRandomWaypoint builds a track from cfg using the given seed.
func NewRandomWaypoint(cfg RandomWaypointConfig, seed int64) (*RandomWaypoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &RandomWaypoint{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	w.segs = append(w.segs, segment{
		start: 0,
		end:   cfg.StartTime,
		from:  cfg.Start,
		to:    cfg.Start,
	})
	return w, nil
}

// extend appends legs until the track covers time t.
func (w *RandomWaypoint) extend(t time.Duration) {
	for {
		last := w.segs[len(w.segs)-1]
		if last.end > t {
			return
		}
		dest := w.cfg.Area.RandomPoint(w.rng)
		speed := w.cfg.MinSpeed
		if w.cfg.MaxSpeed > w.cfg.MinSpeed {
			speed += w.rng.Float64() * (w.cfg.MaxSpeed - w.cfg.MinSpeed)
		}
		dist := last.to.Distance(dest)
		travel := time.Duration(dist / speed * float64(time.Second))
		if travel <= 0 {
			travel = time.Nanosecond // degenerate draw: keep time advancing
		}
		w.segs = append(w.segs, segment{
			start: last.end,
			end:   last.end + travel,
			from:  last.to,
			to:    dest,
		})
		if w.cfg.Pause > 0 {
			moved := w.segs[len(w.segs)-1]
			w.segs = append(w.segs, segment{
				start: moved.end,
				end:   moved.end + w.cfg.Pause,
				from:  dest,
				to:    dest,
			})
		}
	}
}

// PositionAt implements Model.
func (w *RandomWaypoint) PositionAt(t time.Duration) Point {
	if t < 0 {
		t = 0
	}
	w.extend(t)
	// Fast path: most queries advance monotonically.
	if w.cursor < len(w.segs) {
		s := w.segs[w.cursor]
		if t >= s.start && t < s.end {
			return s.at(t)
		}
	}
	// Binary search for the covering segment.
	lo, hi := 0, len(w.segs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.segs[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.cursor = lo
	return w.segs[lo].at(t)
}

// waypointLeg describes one stop on a scripted Path.
type waypointLeg struct {
	at time.Duration
	p  Point
}

// Path is a scripted Model: the node is at fixed points at fixed times and
// moves linearly between them. Useful for deterministic test scenarios
// (e.g. forcing a network partition). Construct with NewPath.
type Path struct {
	legs []waypointLeg
}

// NewPath builds a scripted trajectory from alternating (time, point) pairs.
// Times must be strictly increasing and at least one pair is required.
func NewPath(times []time.Duration, points []Point) (*Path, error) {
	if len(times) == 0 || len(times) != len(points) {
		return nil, fmt.Errorf("mobility: path needs matching non-empty times/points, got %d/%d", len(times), len(points))
	}
	legs := make([]waypointLeg, len(times))
	for i := range times {
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("mobility: path times must increase, got %v after %v", times[i], times[i-1])
		}
		legs[i] = waypointLeg{at: times[i], p: points[i]}
	}
	return &Path{legs: legs}, nil
}

// PositionAt implements Model. Before the first waypoint the node sits at
// the first point; after the last it sits at the last point.
func (p *Path) PositionAt(t time.Duration) Point {
	legs := p.legs
	if t <= legs[0].at {
		return legs[0].p
	}
	for i := 1; i < len(legs); i++ {
		if t <= legs[i].at {
			span := legs[i].at - legs[i-1].at
			frac := float64(t-legs[i-1].at) / float64(span)
			return legs[i-1].p.Lerp(legs[i].p, frac)
		}
	}
	return legs[len(legs)-1].p
}
