package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var testArea = Rect{Width: 1000, Height: 1000}

func testConfig() RandomWaypointConfig {
	return RandomWaypointConfig{
		Area:     testArea,
		MinSpeed: 20,
		MaxSpeed: 20,
		Start:    Point{X: 500, Y: 500},
	}
}

func TestPointDistance(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := c.a.Distance(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Distance(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v, want %v", got, b)
	}
	mid := a.Lerp(b, 0.5)
	if mid.X != 5 || mid.Y != 10 {
		t.Errorf("Lerp 0.5 = %v, want (5,10)", mid)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Width: 10, Height: 5}
	for _, p := range []Point{{0, 0}, {10, 5}, {5, 2.5}} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{{-0.1, 0}, {10.1, 0}, {0, 5.1}} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectRandomPointInside(t *testing.T) {
	r := Rect{Width: 100, Height: 50}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := r.RandomPoint(rng); !r.Contains(p) {
			t.Fatalf("RandomPoint produced %v outside %+v", p, r)
		}
	}
}

func TestStaticModel(t *testing.T) {
	m := Static(Point{X: 3, Y: 4})
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := m.PositionAt(at); got != (Point{3, 4}) {
			t.Errorf("PositionAt(%v) = %v, want (3,4)", at, got)
		}
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RandomWaypointConfig)
	}{
		{"zero area", func(c *RandomWaypointConfig) { c.Area = Rect{} }},
		{"zero speed", func(c *RandomWaypointConfig) { c.MinSpeed, c.MaxSpeed = 0, 0 }},
		{"max below min", func(c *RandomWaypointConfig) { c.MaxSpeed = c.MinSpeed - 1 }},
		{"negative pause", func(c *RandomWaypointConfig) { c.Pause = -time.Second }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			if _, err := NewRandomWaypoint(cfg, 1); err == nil {
				t.Error("NewRandomWaypoint accepted invalid config")
			}
		})
	}
}

func TestRandomWaypointStartsAtStart(t *testing.T) {
	cfg := testConfig()
	cfg.StartTime = 10 * time.Second
	w, err := NewRandomWaypoint(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, 5 * time.Second, 10 * time.Second} {
		if got := w.PositionAt(at); got.Distance(cfg.Start) > 1e-9 {
			t.Errorf("PositionAt(%v) = %v, want start %v", at, got, cfg.Start)
		}
	}
}

func TestRandomWaypointStaysInsideArea(t *testing.T) {
	w, err := NewRandomWaypoint(testConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 600; s++ {
		p := w.PositionAt(time.Duration(s) * time.Second)
		if !testArea.Contains(p) {
			t.Fatalf("position %v at %ds outside area", p, s)
		}
	}
}

func TestRandomWaypointRespectsSpeed(t *testing.T) {
	w, err := NewRandomWaypoint(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 100 * time.Millisecond
	prev := w.PositionAt(0)
	for s := dt; s < 5*time.Minute; s += dt {
		cur := w.PositionAt(s)
		dist := prev.Distance(cur)
		// 20 m/s over 0.1s = 2m max per step (tiny slack for float math).
		if dist > 2.0+1e-6 {
			t.Fatalf("moved %fm in %v (speed > 20 m/s)", dist, dt)
		}
		prev = cur
	}
}

func TestRandomWaypointDeterministicPerSeed(t *testing.T) {
	w1, _ := NewRandomWaypoint(testConfig(), 11)
	w2, _ := NewRandomWaypoint(testConfig(), 11)
	w3, _ := NewRandomWaypoint(testConfig(), 12)
	diverged := false
	for s := 0; s < 300; s += 10 {
		at := time.Duration(s) * time.Second
		if w1.PositionAt(at) != w2.PositionAt(at) {
			t.Fatalf("same seed diverged at %v", at)
		}
		if w1.PositionAt(at) != w3.PositionAt(at) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical tracks")
	}
}

func TestRandomWaypointQueryOrderIndependent(t *testing.T) {
	// Querying out of order must return the same trajectory as in-order:
	// the track is a pure function of the seed.
	wA, _ := NewRandomWaypoint(testConfig(), 5)
	wB, _ := NewRandomWaypoint(testConfig(), 5)
	times := []time.Duration{200 * time.Second, 10 * time.Second, 150 * time.Second, 0, 60 * time.Second}
	got := map[time.Duration]Point{}
	for _, at := range times {
		got[at] = wA.PositionAt(at)
	}
	for s := 0; s <= 200; s += 10 {
		at := time.Duration(s) * time.Second
		want := wB.PositionAt(at)
		if p, ok := got[at]; ok && p != want {
			t.Errorf("out-of-order query at %v = %v, want %v", at, p, want)
		}
	}
}

func TestRandomWaypointPause(t *testing.T) {
	cfg := testConfig()
	cfg.Pause = 30 * time.Second
	w, err := NewRandomWaypoint(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Sample densely; with 30s pauses there must exist adjacent samples
	// with zero displacement.
	sawPause := false
	prev := w.PositionAt(0)
	for s := 1; s < 600; s++ {
		cur := w.PositionAt(time.Duration(s) * time.Second)
		if cur == prev {
			sawPause = true
			break
		}
		prev = cur
	}
	if !sawPause {
		t.Error("no pause observed despite 30s pause config")
	}
}

func TestRandomWaypointNegativeTimeClamped(t *testing.T) {
	w, _ := NewRandomWaypoint(testConfig(), 2)
	if got := w.PositionAt(-time.Second); got != w.PositionAt(0) {
		t.Errorf("PositionAt(-1s) = %v, want clamp to t=0 position", got)
	}
}

func TestNewPathValidation(t *testing.T) {
	if _, err := NewPath(nil, nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewPath([]time.Duration{1, 2}, []Point{{}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewPath(
		[]time.Duration{2 * time.Second, time.Second},
		[]Point{{}, {}},
	); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestPathInterpolation(t *testing.T) {
	p, err := NewPath(
		[]time.Duration{0, 10 * time.Second, 20 * time.Second},
		[]Point{{0, 0}, {100, 0}, {100, 100}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want Point
	}{
		{-time.Second, Point{0, 0}},
		{0, Point{0, 0}},
		{5 * time.Second, Point{50, 0}},
		{10 * time.Second, Point{100, 0}},
		{15 * time.Second, Point{100, 50}},
		{25 * time.Second, Point{100, 100}},
	}
	for _, c := range cases {
		if got := p.PositionAt(c.at); got.Distance(c.want) > 1e-9 {
			t.Errorf("PositionAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestPathSinglePoint(t *testing.T) {
	p, err := NewPath([]time.Duration{5 * time.Second}, []Point{{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, 5 * time.Second, time.Hour} {
		if got := p.PositionAt(at); got != (Point{7, 8}) {
			t.Errorf("PositionAt(%v) = %v, want (7,8)", at, got)
		}
	}
}

// Property: trajectory is continuous — displacement over a small dt is
// bounded by maxSpeed*dt.
func TestPropertyTrajectoryContinuous(t *testing.T) {
	f := func(seed int64, startSec uint8) bool {
		w, err := NewRandomWaypoint(testConfig(), seed)
		if err != nil {
			return false
		}
		base := time.Duration(startSec) * time.Second
		const dt = 50 * time.Millisecond
		a := w.PositionAt(base)
		b := w.PositionAt(base + dt)
		return a.Distance(b) <= 20*dt.Seconds()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every sampled position of any seeded track lies in the area.
func TestPropertyInsideArea(t *testing.T) {
	f := func(seed int64, sec uint16) bool {
		w, err := NewRandomWaypoint(testConfig(), seed)
		if err != nil {
			return false
		}
		p := w.PositionAt(time.Duration(sec) * time.Second)
		return testArea.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandomWaypointQuery(b *testing.B) {
	w, err := NewRandomWaypoint(testConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.PositionAt(time.Duration(i%3600) * time.Second)
	}
}
