package manetconf

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

func newFixture(t *testing.T) (*protocol.Runtime, *Protocol) {
	t.Helper()
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 64}})
	if err != nil {
		t.Fatal(err)
	}
	return rt, p
}

func arrive(t *testing.T, rt *protocol.Runtime, p *Protocol, at time.Duration, id radio.NodeID, x, y float64) {
	t.Helper()
	rt.Sim.ScheduleAt(at, func() {
		if err := rt.Topo.Add(id, mobility.Static(mobility.Point{X: x, Y: y})); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		rt.Net.InvalidateSnapshot()
		p.NodeArrived(id)
	})
}

func TestNewValidation(t *testing.T) {
	rt, _ := newFixture(t)
	if _, err := New(nil, Params{}); err == nil {
		t.Error("nil runtime accepted")
	}
	if _, err := New(rt, Params{Space: addrspace.Block{Lo: 9, Hi: 9}}); err == nil {
		t.Error("tiny space accepted")
	}
	p, err := New(rt, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "manetconf" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestFirstNodeSelfAssigns(t *testing.T) {
	rt, p := newFixture(t)
	arrive(t, rt, p, 0, 0, 500, 500)
	if err := rt.Sim.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.IsConfigured(0) {
		t.Fatal("first node unconfigured")
	}
	if ip, _ := p.IP(0); ip != 1 {
		t.Errorf("IP = %v, want 1", ip)
	}
}

func TestConfigurationFloodsAndReplies(t *testing.T) {
	rt, p := newFixture(t)
	// A line so floods and replies have measurable hop costs.
	for i := 0; i < 5; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	if err := rt.Sim.RunUntil(80 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := radio.NodeID(0); i < 5; i++ {
		if !p.IsConfigured(i) {
			t.Errorf("node %d unconfigured", i)
		}
	}
	if p.ConfiguredCount() != 5 {
		t.Errorf("ConfiguredCount = %d", p.ConfiguredCount())
	}
	// Full replication means every config floods the network: config
	// traffic must grow superlinearly vs the quorum protocol's local
	// exchanges. A loose lower bound: at least 2 floods of >=2 nodes for
	// each of the 4 non-first configs.
	if got := rt.Coll.Hops(metrics.CatConfig); got < 20 {
		t.Errorf("config hops = %d, suspiciously low for flooding protocol", got)
	}
	// Unique addresses.
	seen := map[addrspace.Addr]bool{}
	for i := radio.NodeID(0); i < 5; i++ {
		ip, _ := p.IP(i)
		if seen[ip] {
			t.Errorf("duplicate address %v", ip)
		}
		seen[ip] = true
	}
}

func TestLatencyGrowsWithDiameter(t *testing.T) {
	mkLine := func(n int) float64 {
		rt, p := newFixture(t)
		for i := 0; i < n; i++ {
			arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
		}
		if err := rt.Sim.RunUntil(time.Duration(n*10+30) * time.Second); err != nil {
			t.Fatal(err)
		}
		return rt.Coll.Summarize(SampleConfigLatency).Max
	}
	short := mkLine(3)
	long := mkLine(9)
	if long <= short {
		t.Errorf("latency did not grow with diameter: %v vs %v", short, long)
	}
}

func TestGracefulDepartureFloodsRelease(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 3; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	rt.Sim.ScheduleAt(40*time.Second, func() { p.NodeDeparting(2, true) })
	if err := rt.Sim.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.IsConfigured(2) {
		t.Error("departed node still configured")
	}
	if rt.Coll.Hops(metrics.CatDeparture) == 0 {
		t.Error("graceful departure charged nothing (full replication needs a flood)")
	}
	// The address is reusable.
	arrive(t, rt, p, 61*time.Second, 9, 150, 50)
	if err := rt.Sim.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.IsConfigured(9) {
		t.Error("newcomer unconfigured after release")
	}
}

func TestAbruptDepartureCleanedLazily(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 3; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	rt.Sim.ScheduleAt(40*time.Second, func() { p.NodeDeparting(2, false) })
	arrive(t, rt, p, 50*time.Second, 9, 150, 50) // next config notices the dead node
	if err := rt.Sim.RunUntil(80 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Coll.Counter(CounterCleanups) == 0 {
		t.Error("dead node never cleaned up")
	}
	if rt.Coll.Hops(metrics.CatReclamation) == 0 {
		t.Error("cleanup charged nothing")
	}
}

func TestIPAccessors(t *testing.T) {
	_, p := newFixture(t)
	if _, ok := p.IP(42); ok {
		t.Error("unknown node has an IP")
	}
	if p.IsConfigured(42) {
		t.Error("unknown node configured")
	}
}
