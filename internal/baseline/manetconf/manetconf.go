// Package manetconf reimplements MANETconf (Nesargi & Prakash, INFOCOM
// 2002), the full-replication baseline of the paper's Figures 5 and 6.
//
// Every configured node keeps the allocation table of the entire network.
// A new node asks a one-hop neighbor (the initiator) for an address; the
// initiator picks a candidate, floods an Initiator Request to every node,
// and may assign only after an affirmative reply from each of them, after
// which the assignment is flooded so all tables stay identical. The costs
// that dominate are therefore two network-wide floods plus a reply from
// every node per configuration — and a network-wide flood per graceful
// departure.
//
// As with all baselines in this repository, the protocol is modelled at
// the cost level the paper measures (hop counts and critical-path latency
// over the current connectivity snapshot); see DESIGN.md §2.
package manetconf

import (
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// Sample and counter names.
const (
	// SampleConfigLatency matches the quorum protocol's latency sample so
	// experiment code can compare them directly.
	SampleConfigLatency = "config_latency_hops"
	// CounterConfigured counts completed configurations.
	CounterConfigured = "configured"
	// CounterCleanups counts lazy reclamations of dead nodes' addresses.
	CounterCleanups = "cleanups"
)

// Params configures the baseline.
type Params struct {
	// Space is the address pool.
	Space addrspace.Block
	// RetryInterval is the wait between configuration attempts when the
	// requester has no configured neighbor yet (default 3s).
	RetryInterval time.Duration
}

func (p *Params) setDefaults() {
	if p.Space == (addrspace.Block{}) {
		p.Space = addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000001 + 1023}
	}
	if p.RetryInterval == 0 {
		p.RetryInterval = 3 * time.Second
	}
}

type nodeState struct {
	id         radio.NodeID
	alive      bool
	configured bool
	ip         addrspace.Addr
}

// Protocol implements protocol.Protocol with MANETconf's cost model.
type Protocol struct {
	rt *protocol.Runtime
	p  Params

	nodes map[radio.NodeID]*nodeState
	// used is the replicated allocation table. Full replication keeps
	// every copy identical outside windows we do not model, so one shared
	// table stands in for all of them.
	used    map[addrspace.Addr]radio.NodeID
	next    addrspace.Addr
	unclean []radio.NodeID // abruptly departed, not yet noticed
}

// New creates the baseline over a runtime.
func New(rt *protocol.Runtime, params Params) (*Protocol, error) {
	if rt == nil {
		return nil, fmt.Errorf("manetconf: nil runtime")
	}
	params.setDefaults()
	if params.Space.Size() < 2 {
		return nil, fmt.Errorf("manetconf: address space %v too small", params.Space)
	}
	return &Protocol{
		rt:    rt,
		p:     params,
		nodes: make(map[radio.NodeID]*nodeState),
		used:  make(map[addrspace.Addr]radio.NodeID),
		next:  params.Space.Lo,
	}, nil
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "manetconf" }

// IsConfigured implements protocol.Protocol.
func (p *Protocol) IsConfigured(id radio.NodeID) bool {
	ns, ok := p.nodes[id]
	return ok && ns.alive && ns.configured
}

// IP returns a node's address.
func (p *Protocol) IP(id radio.NodeID) (addrspace.Addr, bool) {
	if ns, ok := p.nodes[id]; ok && ns.alive && ns.configured {
		return ns.ip, true
	}
	return 0, false
}

// ConfiguredCount returns the number of alive configured nodes.
func (p *Protocol) ConfiguredCount() int {
	n := 0
	for _, ns := range p.nodes {
		if ns.alive && ns.configured {
			n++
		}
	}
	return n
}

// NodeArrived implements protocol.Protocol.
func (p *Protocol) NodeArrived(id radio.NodeID) {
	ns := &nodeState{id: id, alive: true}
	p.nodes[id] = ns
	p.rt.Net.InvalidateSnapshot()
	_ = p.rt.Net.Register(id, func(netstack.Message) {})
	p.rt.Sim.Schedule(time.Second, func() { p.tryConfigure(ns) })
}

// tryConfigure runs one MANETconf configuration attempt.
func (p *Protocol) tryConfigure(ns *nodeState) {
	if !ns.alive || ns.configured {
		return
	}
	snap := p.rt.Net.Snapshot()

	// Pick the initiator: any configured one-hop neighbor.
	var initiator radio.NodeID
	haveInit := false
	for _, nb := range snap.Neighbors(ns.id) {
		if p.IsConfigured(nb) {
			initiator, haveInit = nb, true
			break
		}
	}
	if !haveInit {
		// No configured neighbor: either we are the first node in this
		// component (take an address directly) or we wait for one.
		if p.anyConfiguredInComponent(snap, ns.id) {
			p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
			return
		}
		addr, ok := p.allocate(ns.id)
		if !ok {
			return
		}
		ns.ip, ns.configured = addr, true
		p.rt.Coll.Observe(SampleConfigLatency, 1) // its own broadcast
		p.rt.Coll.Inc(CounterConfigured)
		return
	}

	// Lazy cleanup: dead nodes cannot affirm; the initiator times out on
	// them, removes their bindings and floods the retraction.
	p.cleanupDead(snap, initiator)

	addr, ok := p.allocate(ns.id)
	if !ok {
		p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
		return
	}

	// Cost model of one successful round:
	//   requester -> initiator            1 hop
	//   initiator floods Initiator Request: |component| transmissions
	//   every configured node unicasts an affirmative back
	//   initiator floods the assignment:  |component| transmissions
	//   initiator -> requester            1 hop
	dist := snap.WithinHops(initiator, snap.Len())
	comp := len(dist)
	p.rt.Coll.AddTraffic(metrics.CatConfig, 1) // COM request to initiator
	p.rt.Coll.AddTransmissions(metrics.CatConfig, comp)
	replies, ecc := 0, 0
	for other, d := range dist {
		if other == initiator {
			continue
		}
		if d > ecc {
			ecc = d
		}
		if p.IsConfigured(other) {
			replies += d
		}
	}
	p.rt.Coll.AddTraffic(metrics.CatConfig, replies)
	p.rt.Coll.AddTransmissions(metrics.CatConfig, comp)
	p.rt.Coll.AddTraffic(metrics.CatConfig, 1) // assignment to requester

	// Critical path: request, flood out, farthest reply back, assignment.
	latency := 1 + 2*ecc + 1
	delay := time.Duration(latency) * p.rt.Net.PerHop()
	p.rt.Sim.Schedule(delay, func() {
		if !ns.alive || ns.configured {
			p.release(addr)
			return
		}
		ns.ip, ns.configured = addr, true
		p.rt.Coll.Observe(SampleConfigLatency, float64(latency))
		p.rt.Coll.Inc(CounterConfigured)
	})
}

// anyConfiguredInComponent reports whether some configured node shares the
// component (then the newcomer must go through it rather than self-assign).
func (p *Protocol) anyConfiguredInComponent(snap *radio.Snapshot, id radio.NodeID) bool {
	for _, other := range snap.Component(id) {
		if other != id && p.IsConfigured(other) {
			return true
		}
	}
	return false
}

// cleanupDead charges the retry-plus-retraction cost for abruptly departed
// nodes the initiator notices during a configuration round.
func (p *Protocol) cleanupDead(snap *radio.Snapshot, initiator radio.NodeID) {
	if len(p.unclean) == 0 {
		return
	}
	comp := len(snap.Component(initiator))
	for _, dead := range p.unclean {
		// One extra flooded retry that the dead node fails to answer,
		// then a flooded retraction of its binding.
		p.rt.Coll.AddTransmissions(metrics.CatReclamation, comp)
		p.rt.Coll.AddTransmissions(metrics.CatReclamation, comp)
		if ns, ok := p.nodes[dead]; ok && ns.configured {
			p.release(ns.ip)
			ns.configured = false
		}
		p.rt.Coll.Inc(CounterCleanups)
	}
	p.unclean = nil
}

// allocate picks the lowest unused address.
func (p *Protocol) allocate(id radio.NodeID) (addrspace.Addr, bool) {
	for a := p.p.Space.Lo; ; a++ {
		if _, taken := p.used[a]; !taken {
			p.used[a] = id
			return a, true
		}
		if a == p.p.Space.Hi {
			return 0, false
		}
	}
}

func (p *Protocol) release(a addrspace.Addr) { delete(p.used, a) }

// NodeDeparting implements protocol.Protocol. Graceful departure floods an
// address release so every replicated table is updated; abrupt departure
// leaks the address until a later configuration round cleans it up.
func (p *Protocol) NodeDeparting(id radio.NodeID, graceful bool) {
	ns, ok := p.nodes[id]
	if !ok || !ns.alive {
		return
	}
	if graceful && ns.configured {
		snap := p.rt.Net.Snapshot()
		comp := len(snap.Component(id))
		p.rt.Coll.AddTransmissions(metrics.CatDeparture, comp)
		p.release(ns.ip)
		ns.configured = false
	} else if ns.configured {
		p.unclean = append(p.unclean, id)
		sort.Slice(p.unclean, func(i, j int) bool { return p.unclean[i] < p.unclean[j] })
	}
	ns.alive = false
	p.rt.RemoveNode(id)
}
