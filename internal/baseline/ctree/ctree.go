// Package ctree reimplements the distributed IP address assignment scheme
// of Sheu, Tu & Chan (ICPADS 2005), the coordinator-tree baseline of the
// paper's Figures 10 and 12-14.
//
// Only coordinators maintain IP address pools and configure newcomers; a
// node becomes a coordinator when no coordinator is within two hops,
// receiving half of its nearest coordinator's pool (binary split), and the
// coordinators form a virtual tree (the C-tree) rooted at the first node
// (C-root). Each coordinator periodically reports its allocation state up
// the tree to the C-root, which maintains the allocation table of the
// whole network; when coordinators stop reporting, the C-root initiates
// address reclamation. The scheme has no replication (a coordinator's
// un-reported state dies with it), no address borrowing and no partition
// support — the properties Figures 12-14 contrast against the quorum
// protocol.
package ctree

import (
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// Sample and counter names.
const (
	SampleConfigLatency = "config_latency_hops"
	CounterConfigured   = "configured"
	// CounterRootReclamations counts reclamation rounds the C-root ran.
	CounterRootReclamations = "root_reclamations"
)

// Params configures the baseline.
type Params struct {
	// Space is the address pool, owned entirely by the C-root at start.
	Space addrspace.Block
	// ReportPeriod is the coordinator-to-root update period (default 5s;
	// the paper does not give [3]'s period — 5s makes the measured
	// maintenance overhead match its "similar performance" claim, see
	// EXPERIMENTS.md).
	ReportPeriod time.Duration
	// RetryInterval is the wait between configuration attempts (default 3s).
	RetryInterval time.Duration
	// MissedReports is how many periods a coordinator may stay silent
	// before the root reclaims its space (default 2).
	MissedReports int
}

func (p *Params) setDefaults() {
	if p.Space == (addrspace.Block{}) {
		p.Space = addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000001 + 1023}
	}
	if p.ReportPeriod == 0 {
		p.ReportPeriod = 5 * time.Second
	}
	if p.RetryInterval == 0 {
		p.RetryInterval = 3 * time.Second
	}
	if p.MissedReports == 0 {
		p.MissedReports = 2
	}
}

type nodeState struct {
	id            radio.NodeID
	alive         bool
	configured    bool
	coordinator   bool
	ip            addrspace.Addr
	pool          *addrspace.Pool // coordinator-only
	parent        radio.NodeID    // C-tree parent
	hasParent     bool
	coordinatorOf radio.NodeID // which coordinator configured this common node
	reported      bool         // allocation state reported to the root at least once
	missed        int          // consecutive report periods the root has not heard from it
}

// Protocol implements protocol.Protocol with the C-tree cost model.
type Protocol struct {
	rt *protocol.Runtime
	p  Params

	nodes   map[radio.NodeID]*nodeState
	root    radio.NodeID
	hasRoot bool
	running bool
}

// New creates the baseline over a runtime.
func New(rt *protocol.Runtime, params Params) (*Protocol, error) {
	if rt == nil {
		return nil, fmt.Errorf("ctree: nil runtime")
	}
	params.setDefaults()
	if params.Space.Size() < 2 {
		return nil, fmt.Errorf("ctree: address space %v too small", params.Space)
	}
	return &Protocol{rt: rt, p: params, nodes: make(map[radio.NodeID]*nodeState)}, nil
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "ctree" }

// IsConfigured implements protocol.Protocol.
func (p *Protocol) IsConfigured(id radio.NodeID) bool {
	ns, ok := p.nodes[id]
	return ok && ns.alive && ns.configured
}

// IP returns a node's address.
func (p *Protocol) IP(id radio.NodeID) (addrspace.Addr, bool) {
	if ns, ok := p.nodes[id]; ok && ns.alive && ns.configured {
		return ns.ip, true
	}
	return 0, false
}

// ConfiguredCount returns the number of alive configured nodes.
func (p *Protocol) ConfiguredCount() int {
	n := 0
	for _, ns := range p.nodes {
		if ns.alive && ns.configured {
			n++
		}
	}
	return n
}

// Coordinators returns the alive coordinators in ascending order.
func (p *Protocol) Coordinators() []radio.NodeID {
	var out []radio.NodeID
	for id, ns := range p.nodes {
		if ns.alive && ns.coordinator {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PoolSize returns a coordinator's pool size — its entire usable space,
// since the scheme has no replication or borrowing (Fig 12's denominator).
func (p *Protocol) PoolSize(id radio.NodeID) uint32 {
	if ns, ok := p.nodes[id]; ok && ns.alive && ns.coordinator && ns.pool != nil {
		return ns.pool.Size()
	}
	return 0
}

// StatePreserved reports whether a departed coordinator's allocation
// information survives: only if it had reported to a still-alive C-root
// (Fig 13's comparison).
func (p *Protocol) StatePreserved(id radio.NodeID) bool {
	ns, ok := p.nodes[id]
	if !ok {
		return false
	}
	rootAlive := false
	if p.hasRoot {
		if rn, ok := p.nodes[p.root]; ok && rn.alive {
			rootAlive = true
		}
	}
	return ns.reported && rootAlive
}

// Root returns the C-root.
func (p *Protocol) Root() (radio.NodeID, bool) { return p.root, p.hasRoot }

func (p *Protocol) isCoordinator(id radio.NodeID) bool {
	ns, ok := p.nodes[id]
	return ok && ns.alive && ns.coordinator
}

// NodeArrived implements protocol.Protocol.
func (p *Protocol) NodeArrived(id radio.NodeID) {
	if !p.running {
		p.running = true
		p.scheduleReports()
	}
	ns := &nodeState{id: id, alive: true}
	p.nodes[id] = ns
	p.rt.Net.InvalidateSnapshot()
	_ = p.rt.Net.Register(id, func(netstack.Message) {})
	p.rt.Sim.Schedule(time.Second, func() { p.tryConfigure(ns) })
}

// scheduleReports runs the periodic coordinator-to-root updates and the
// root's failure detection.
func (p *Protocol) scheduleReports() {
	p.rt.Sim.Schedule(p.p.ReportPeriod, func() {
		p.runReports()
		p.scheduleReports()
	})
}

func (p *Protocol) runReports() {
	if !p.hasRoot {
		return
	}
	rootNS, ok := p.nodes[p.root]
	if !ok || !rootNS.alive {
		return // the scheme's single point of failure: no root, no upkeep
	}
	snap := p.rt.Net.Snapshot()
	heard := map[radio.NodeID]bool{}
	for _, id := range p.Coordinators() {
		if id == p.root {
			heard[id] = true
			continue
		}
		// Reports travel up the C-tree; path length is approximated by
		// the current hop distance to the root.
		if d, ok := snap.HopCount(id, p.root); ok {
			p.rt.Coll.AddTraffic(metrics.CatSync, d)
			p.nodes[id].reported = true
			p.nodes[id].missed = 0
			heard[id] = true
		}
	}
	// The root notices coordinators that have stopped reporting.
	var silent []radio.NodeID
	for id, ns := range p.nodes {
		if ns.coordinator && !heard[id] {
			silent = append(silent, id)
		}
	}
	sort.Slice(silent, func(i, j int) bool { return silent[i] < silent[j] })
	for _, id := range silent {
		ns := p.nodes[id]
		ns.missed++
		if ns.missed >= p.p.MissedReports {
			ns.missed = 0
			p.rootReclaim(snap, ns)
		}
	}
}

// rootReclaim is the root-driven address reclamation: a network-wide
// broadcast asking the silent coordinator's members to re-register, each
// answering with a unicast to the root.
func (p *Protocol) rootReclaim(snap *radio.Snapshot, dead *nodeState) {
	rootNS := p.nodes[p.root]
	if rootNS == nil || !rootNS.alive {
		return
	}
	p.rt.Coll.Inc(CounterRootReclamations)
	comp := snap.Component(p.root)
	p.rt.Coll.AddTransmissions(metrics.CatReclamation, len(comp))
	for _, id := range comp {
		ns := p.nodes[id]
		if ns == nil || !ns.alive || !ns.configured || ns.coordinatorOf != dead.id {
			continue
		}
		if d, ok := snap.HopCount(id, p.root); ok {
			p.rt.Coll.AddTraffic(metrics.CatReclamation, d)
		}
	}
	// The root repossesses whatever it knew about the coordinator's pool.
	if dead.pool != nil && rootNS.pool != nil && dead.reported {
		for _, t := range dead.pool.Tables() {
			rootNS.pool.Add(t.Clone())
		}
		dead.pool = nil
	}
	dead.coordinator = false
}

// tryConfigure runs one configuration attempt following the scheme: use a
// coordinator within two hops, otherwise become a coordinator with half
// the nearest coordinator's pool.
func (p *Protocol) tryConfigure(ns *nodeState) {
	if !ns.alive || ns.configured {
		return
	}
	snap := p.rt.Net.Snapshot()

	// Coordinator within two hops?
	var coord *nodeState
	coordDist := 0
	for other, d := range snap.WithinHops(ns.id, 2) {
		if other == ns.id || !p.isCoordinator(other) {
			continue
		}
		if coord == nil || d < coordDist || (d == coordDist && other < coord.id) {
			coord, coordDist = p.nodes[other], d
		}
	}
	if coord != nil {
		addr, ok := coord.pool.FirstFree()
		if !ok {
			// No borrowing in this scheme: wait for reclamation.
			p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
			return
		}
		if _, err := coord.pool.Mark(addr, addrspace.Occupied); err != nil {
			return
		}
		latency := 2 * coordDist
		p.rt.Coll.AddTraffic(metrics.CatConfig, latency)
		coordID := coord.id
		p.rt.Sim.Schedule(time.Duration(latency)*p.rt.Net.PerHop(), func() {
			if !ns.alive || ns.configured {
				return
			}
			ns.ip = addr
			ns.configured = true
			ns.coordinatorOf = coordID
			p.rt.Coll.Observe(SampleConfigLatency, float64(latency))
			p.rt.Coll.Inc(CounterConfigured)
		})
		return
	}

	// No coordinator within two hops: become one with half the nearest
	// coordinator's pool, or found the network.
	var nearest *nodeState
	nearestDist := 0
	for _, other := range snap.Component(ns.id) {
		if other == ns.id || !p.isCoordinator(other) {
			continue
		}
		d, _ := snap.HopCount(ns.id, other)
		if nearest == nil || d < nearestDist || (d == nearestDist && other < nearest.id) {
			nearest, nearestDist = p.nodes[other], d
		}
	}
	if nearest == nil {
		if p.anyConfiguredInComponent(snap, ns.id) {
			p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
			return
		}
		// First node: C-root with the whole space.
		tab, err := addrspace.NewTable(p.p.Space)
		if err != nil {
			return
		}
		ns.pool = addrspace.NewPool(tab)
		addr, _ := ns.pool.FirstFree()
		if _, err := ns.pool.Mark(addr, addrspace.Occupied); err != nil {
			return
		}
		ns.ip = addr
		ns.configured = true
		ns.coordinator = true
		if !p.hasRoot {
			// The true C-root trivially "reported" to itself; later
			// island founders never reach it, so their state is as
			// exposed as any silent coordinator's.
			p.root, p.hasRoot = ns.id, true
			ns.reported = true
		}
		p.rt.Coll.Observe(SampleConfigLatency, 1)
		p.rt.Coll.Inc(CounterConfigured)
		return
	}

	upper, err := nearest.pool.SplitLargest()
	if err != nil {
		p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
		return
	}
	latency := 2 * nearestDist
	p.rt.Coll.AddTraffic(metrics.CatConfig, latency)
	parentID := nearest.id
	p.rt.Sim.Schedule(time.Duration(latency)*p.rt.Net.PerHop(), func() {
		if !ns.alive || ns.configured {
			return
		}
		ns.pool = addrspace.NewPool(upper)
		addr, ok := ns.pool.FirstFree()
		if !ok {
			return
		}
		if _, err := ns.pool.Mark(addr, addrspace.Occupied); err != nil {
			return
		}
		ns.ip = addr
		ns.configured = true
		ns.coordinator = true
		ns.parent, ns.hasParent = parentID, true
		p.rt.Coll.Observe(SampleConfigLatency, float64(latency))
		p.rt.Coll.Inc(CounterConfigured)
	})
}

func (p *Protocol) anyConfiguredInComponent(snap *radio.Snapshot, id radio.NodeID) bool {
	for _, other := range snap.Component(id) {
		if other != id {
			if ns := p.nodes[other]; ns != nil && ns.alive && ns.configured {
				return true
			}
		}
	}
	return false
}

// NodeDeparting implements protocol.Protocol. Graceful common nodes return
// the address to their coordinator; graceful coordinators hand their pool
// to the C-tree parent. Abrupt departures leak until the root's report
// timeouts trigger reclamation.
func (p *Protocol) NodeDeparting(id radio.NodeID, graceful bool) {
	ns, ok := p.nodes[id]
	if !ok || !ns.alive {
		return
	}
	if graceful && ns.configured {
		snap := p.rt.Net.Snapshot()
		if ns.coordinator {
			if parent := p.liveParent(ns); parent != nil {
				if d, ok := snap.HopCount(id, parent.id); ok {
					p.rt.Coll.AddTraffic(metrics.CatDeparture, d)
				}
				if ns.pool != nil {
					if _, err := ns.pool.Mark(ns.ip, addrspace.Free); err == nil && parent.pool != nil {
						for _, t := range ns.pool.Tables() {
							parent.pool.Add(t.Clone())
						}
					}
				}
			}
			// The handover is complete: the node is no longer a
			// coordinator, so the root must not reclaim it again.
			ns.coordinator = false
			ns.pool = nil
			// Tell the root the coordinator resigned.
			if p.hasRoot {
				if d, ok := snap.HopCount(id, p.root); ok {
					p.rt.Coll.AddTraffic(metrics.CatDeparture, d)
				}
			}
		} else {
			if coord, ok := p.nodes[ns.coordinatorOf]; ok && coord.alive && coord.coordinator && coord.pool != nil {
				if d, ok := snap.HopCount(id, coord.id); ok {
					p.rt.Coll.AddTraffic(metrics.CatDeparture, d)
				}
				_, _ = coord.pool.Mark(ns.ip, addrspace.Free)
			}
		}
	}
	ns.alive = false
	p.rt.RemoveNode(id)
}

func (p *Protocol) liveParent(ns *nodeState) *nodeState {
	if !ns.hasParent {
		return nil
	}
	parent, ok := p.nodes[ns.parent]
	if !ok || !parent.alive || !parent.coordinator {
		return nil
	}
	return parent
}
