package ctree

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

func newFixture(t *testing.T) (*protocol.Runtime, *Protocol) {
	t.Helper()
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 64}})
	if err != nil {
		t.Fatal(err)
	}
	return rt, p
}

func arrive(t *testing.T, rt *protocol.Runtime, p *Protocol, at time.Duration, id radio.NodeID, x, y float64) {
	t.Helper()
	rt.Sim.ScheduleAt(at, func() {
		if err := rt.Topo.Add(id, mobility.Static(mobility.Point{X: x, Y: y})); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		rt.Net.InvalidateSnapshot()
		p.NodeArrived(id)
	})
}

func TestNewValidation(t *testing.T) {
	rt, _ := newFixture(t)
	if _, err := New(nil, Params{}); err == nil {
		t.Error("nil runtime accepted")
	}
	if _, err := New(rt, Params{Space: addrspace.Block{Lo: 9, Hi: 9}}); err == nil {
		t.Error("tiny space accepted")
	}
	p, err := New(rt, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ctree" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestFirstNodeIsRoot(t *testing.T) {
	rt, p := newFixture(t)
	arrive(t, rt, p, 0, 0, 500, 500)
	if err := rt.Sim.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	root, ok := p.Root()
	if !ok || root != 0 {
		t.Fatalf("Root = %v,%v, want 0,true", root, ok)
	}
	if !p.IsConfigured(0) {
		t.Error("root unconfigured")
	}
	if got := p.PoolSize(0); got != 64 {
		t.Errorf("root pool = %d, want 64", got)
	}
}

func TestCommonNodeFromNearbyCoordinator(t *testing.T) {
	rt, p := newFixture(t)
	arrive(t, rt, p, 0, 0, 500, 500)
	arrive(t, rt, p, 10*time.Second, 1, 600, 500)
	if err := rt.Sim.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.IsConfigured(1) {
		t.Fatal("node 1 unconfigured")
	}
	if len(p.Coordinators()) != 1 {
		t.Errorf("Coordinators = %v, want just the root", p.Coordinators())
	}
}

func TestDistantNodeBecomesCoordinator(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 4; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	if err := rt.Sim.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	coords := p.Coordinators()
	if len(coords) != 2 {
		t.Fatalf("Coordinators = %v, want [0 3]", coords)
	}
	if p.PoolSize(0)+p.PoolSize(3) != 64 {
		t.Errorf("pools %d + %d != 64", p.PoolSize(0), p.PoolSize(3))
	}
}

func TestPeriodicReportsChargeSync(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 4; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	if err := rt.Sim.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Coll.Hops(metrics.CatSync) == 0 {
		t.Error("no coordinator-to-root report traffic")
	}
}

func TestRootReclaimsSilentCoordinator(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 4; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	// Give coordinator 3 time to report, then crash it.
	rt.Sim.ScheduleAt(60*time.Second, func() { p.NodeDeparting(3, false) })
	if err := rt.Sim.RunUntil(150 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Coll.Counter(CounterRootReclamations) == 0 {
		t.Fatal("root never reclaimed the silent coordinator")
	}
	if rt.Coll.Hops(metrics.CatReclamation) == 0 {
		t.Error("reclamation charged nothing")
	}
	// The root repossessed the reported pool.
	if got := p.PoolSize(0); got != 64 {
		t.Errorf("root pool after reclaim = %d, want 64", got)
	}
}

func TestStatePreservedSemantics(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 4; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	// Crash coordinator 3 before any report period elapses: unreported
	// state is lost.
	rt.Sim.ScheduleAt(35*time.Second, func() { p.NodeDeparting(3, false) })
	if err := rt.Sim.RunUntil(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.StatePreserved(3) {
		t.Error("unreported coordinator state claimed preserved")
	}

	// Second run: crash after reporting; preserved while the root lives.
	rt2, p2 := newFixture(t)
	for i := 0; i < 4; i++ {
		arrive(t, rt2, p2, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	rt2.Sim.ScheduleAt(60*time.Second, func() { p2.NodeDeparting(3, false) })
	if err := rt2.Sim.RunUntil(70 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p2.StatePreserved(3) {
		t.Error("reported coordinator state claimed lost while root alive")
	}
	// Kill the root: everything is lost.
	rt2.Sim.ScheduleAt(71*time.Second, func() { p2.NodeDeparting(0, false) })
	if err := rt2.Sim.RunUntil(80 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p2.StatePreserved(3) {
		t.Error("state claimed preserved after root death (single point of failure)")
	}
}

func TestGracefulDepartures(t *testing.T) {
	rt, p := newFixture(t)
	for i := 0; i < 4; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	arrive(t, rt, p, 40*time.Second, 4, 320, 60) // common under coordinator 3
	// Common node leaves gracefully, then its coordinator does.
	rt.Sim.ScheduleAt(60*time.Second, func() { p.NodeDeparting(4, true) })
	rt.Sim.ScheduleAt(70*time.Second, func() { p.NodeDeparting(3, true) })
	if err := rt.Sim.RunUntil(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Coll.Hops(metrics.CatDeparture) == 0 {
		t.Error("departures charged nothing")
	}
	// Pool handed back to the parent (the root).
	if got := p.PoolSize(0); got != 64 {
		t.Errorf("root pool = %d, want 64 after coordinator return", got)
	}
}

func TestUniqueAddresses(t *testing.T) {
	rt, p := newFixture(t)
	id := radio.NodeID(0)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			arrive(t, rt, p, time.Duration(int(id)*5)*time.Second, id, float64(c)*110, float64(r)*110)
			id++
		}
	}
	if err := rt.Sim.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	seen := map[addrspace.Addr]radio.NodeID{}
	for n := radio.NodeID(0); n < id; n++ {
		ip, ok := p.IP(n)
		if !ok {
			t.Errorf("node %d unconfigured", n)
			continue
		}
		if prev, dup := seen[ip]; dup {
			t.Errorf("nodes %d and %d share %v", prev, n, ip)
		}
		seen[ip] = n
	}
}
