package buddy

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

func newFixture(t *testing.T) (*protocol.Runtime, *Protocol) {
	t.Helper()
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 64}})
	if err != nil {
		t.Fatal(err)
	}
	return rt, p
}

func arrive(t *testing.T, rt *protocol.Runtime, p *Protocol, at time.Duration, id radio.NodeID, x, y float64) {
	t.Helper()
	rt.Sim.ScheduleAt(at, func() {
		if err := rt.Topo.Add(id, mobility.Static(mobility.Point{X: x, Y: y})); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		rt.Net.InvalidateSnapshot()
		p.NodeArrived(id)
	})
}

func TestNewValidation(t *testing.T) {
	rt, _ := newFixture(t)
	if _, err := New(nil, Params{}); err == nil {
		t.Error("nil runtime accepted")
	}
	if _, err := New(rt, Params{Space: addrspace.Block{Lo: 9, Hi: 9}}); err == nil {
		t.Error("tiny space accepted")
	}
	p, err := New(rt, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "buddy" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestBuddySplitOnArrival(t *testing.T) {
	rt, p := newFixture(t)
	arrive(t, rt, p, 0, 0, 500, 500)
	arrive(t, rt, p, 10*time.Second, 1, 600, 500)
	if err := rt.Sim.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.IsConfigured(0) || !p.IsConfigured(1) {
		t.Fatal("nodes unconfigured")
	}
	// Disjoint halves of the 64-address space.
	if b0, b1 := p.BlockSize(0), p.BlockSize(1); b0+b1 != 64 {
		t.Errorf("blocks %d + %d != 64", b0, b1)
	}
	ip0, _ := p.IP(0)
	ip1, _ := p.IP(1)
	if ip0 == ip1 {
		t.Error("duplicate address")
	}
}

func TestConfigurationIsCheap(t *testing.T) {
	// The scheme's selling point: one-hop block split, ~2 hop latency.
	rt, p := newFixture(t)
	for i := 0; i < 6; i++ {
		arrive(t, rt, p, time.Duration(i*10)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	if err := rt.Sim.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	lat := rt.Coll.Summarize(SampleConfigLatency)
	if lat.Count != 6 {
		t.Fatalf("latency samples = %d, want 6", lat.Count)
	}
	if lat.Mean > 4 {
		t.Errorf("mean latency = %.1f, want cheap 1-hop splits", lat.Mean)
	}
}

func TestPeriodicSyncChargesQuadratically(t *testing.T) {
	run := func(n int) int64 {
		rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 300})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 1024}, SyncPeriod: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			arrive(t, rt, p, time.Duration(i)*time.Second, radio.NodeID(i), float64(i%5)*120, float64(i/5)*120)
		}
		if err := rt.Sim.RunUntil(time.Duration(n)*time.Second + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		return rt.Coll.Hops(metrics.CatSync)
	}
	small, big := run(5), run(20)
	if big < 8*small {
		// 4x nodes -> ~16x sync traffic (n floods of n transmissions).
		t.Errorf("sync traffic not superlinear: %d vs %d", small, big)
	}
}

func TestGracefulDepartureReturnsBlockToBuddy(t *testing.T) {
	rt, p := newFixture(t)
	arrive(t, rt, p, 0, 0, 500, 500)
	arrive(t, rt, p, 10*time.Second, 1, 600, 500)
	rt.Sim.ScheduleAt(30*time.Second, func() { p.NodeDeparting(1, true) })
	if err := rt.Sim.RunUntil(50 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.IsConfigured(1) {
		t.Error("departed node still configured")
	}
	if got := p.BlockSize(0); got != 64 {
		t.Errorf("buddy block = %d, want merged 64", got)
	}
	if rt.Coll.Hops(metrics.CatDeparture) == 0 {
		t.Error("departure charged nothing")
	}
}

func TestAbruptDepartureBuddyReclaims(t *testing.T) {
	rt, p := newFixture(t)
	arrive(t, rt, p, 0, 0, 500, 500)
	arrive(t, rt, p, 10*time.Second, 1, 600, 500)
	rt.Sim.ScheduleAt(30*time.Second, func() { p.NodeDeparting(1, false) })
	if err := rt.Sim.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Coll.Counter(CounterBuddyReclaims) == 0 {
		t.Error("buddy never reclaimed the block")
	}
	if got := p.BlockSize(0); got != 64 {
		t.Errorf("buddy block = %d, want reclaimed 64", got)
	}
	if rt.Coll.Hops(metrics.CatReclamation) == 0 {
		t.Error("reclamation charged nothing")
	}
}

func TestRemoteBlockTransferWhenNeighborExhausted(t *testing.T) {
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 150})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Chain: node 0 (space 4) -> 1 (2) -> 2 (1, unsplittable).
	// Node 3 arrives next to node 2, which must fetch a block remotely.
	arrive(t, rt, p, 0, 0, 0, 0)
	arrive(t, rt, p, 10*time.Second, 1, 100, 0)
	arrive(t, rt, p, 20*time.Second, 2, 200, 0)
	arrive(t, rt, p, 30*time.Second, 3, 300, 0)
	if err := rt.Sim.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.IsConfigured(3) {
		t.Fatal("node 3 unconfigured")
	}
	if rt.Coll.Counter(CounterBlockTransfers) == 0 {
		t.Error("no remote block transfer despite exhausted neighbor")
	}
}

func TestUniqueAddressesGrid(t *testing.T) {
	rt, p := newFixture(t)
	id := radio.NodeID(0)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			arrive(t, rt, p, time.Duration(int(id)*5)*time.Second, id, float64(c)*110, float64(r)*110)
			id++
		}
	}
	if err := rt.Sim.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	seen := map[addrspace.Addr]radio.NodeID{}
	for n := radio.NodeID(0); n < id; n++ {
		ip, ok := p.IP(n)
		if !ok {
			t.Errorf("node %d unconfigured", n)
			continue
		}
		if prev, dup := seen[ip]; dup {
			t.Errorf("nodes %d and %d share %v", prev, n, ip)
		}
		seen[ip] = n
	}
}
