// Package buddy reimplements the proactive IP assignment protocol of
// Mohsin & Prakash (MILCOM 2002), the disjoint-block baseline of the
// paper's Figures 8 and 9.
//
// Every node owns a binary-buddy address block and can configure a
// newcomer on its own by splitting that block in half — configuration is a
// one-hop exchange and very cheap. What the scheme pays for instead is
// state maintenance: every node keeps the IP allocation table of the whole
// network and synchronizes it by periodic network-wide flooding, each node
// tracks its buddy to detect leaks, and departures are announced globally
// so all tables stay aligned. Those are exactly the costs the paper's
// overhead figures hold against it.
package buddy

import (
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// Sample and counter names.
const (
	SampleConfigLatency = "config_latency_hops"
	CounterConfigured   = "configured"
	// CounterBlockTransfers counts block requests served by a remote node
	// (the local neighbor's block was unsplittable).
	CounterBlockTransfers = "block_transfers"
	// CounterBuddyReclaims counts blocks recovered by a buddy after an
	// abrupt departure.
	CounterBuddyReclaims = "buddy_reclaims"
)

// Params configures the baseline.
type Params struct {
	// Space is the address pool, owned entirely by the first node.
	Space addrspace.Block
	// SyncPeriod is the global allocation-table synchronization period
	// (default 10s). Every node floods its table once per period.
	SyncPeriod time.Duration
	// RetryInterval is the wait between configuration attempts (default 3s).
	RetryInterval time.Duration
	// BuddyTimeout is how long after an abrupt departure the buddy
	// reclaims the block (default 5s).
	BuddyTimeout time.Duration
}

func (p *Params) setDefaults() {
	if p.Space == (addrspace.Block{}) {
		p.Space = addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000001 + 1023}
	}
	if p.SyncPeriod == 0 {
		p.SyncPeriod = 10 * time.Second
	}
	if p.RetryInterval == 0 {
		p.RetryInterval = 3 * time.Second
	}
	if p.BuddyTimeout == 0 {
		p.BuddyTimeout = 5 * time.Second
	}
}

type nodeState struct {
	id         radio.NodeID
	alive      bool
	configured bool
	ip         addrspace.Addr
	block      addrspace.Block // the disjoint block this node manages
	buddy      radio.NodeID    // the node that held the other half at split time
	hasBuddy   bool
}

// Protocol implements protocol.Protocol with the buddy cost model.
type Protocol struct {
	rt *protocol.Runtime
	p  Params

	nodes   map[radio.NodeID]*nodeState
	running bool
	ticker  func()
}

// New creates the baseline over a runtime.
func New(rt *protocol.Runtime, params Params) (*Protocol, error) {
	if rt == nil {
		return nil, fmt.Errorf("buddy: nil runtime")
	}
	params.setDefaults()
	if params.Space.Size() < 2 {
		return nil, fmt.Errorf("buddy: address space %v too small", params.Space)
	}
	return &Protocol{rt: rt, p: params, nodes: make(map[radio.NodeID]*nodeState)}, nil
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "buddy" }

// IsConfigured implements protocol.Protocol.
func (p *Protocol) IsConfigured(id radio.NodeID) bool {
	ns, ok := p.nodes[id]
	return ok && ns.alive && ns.configured
}

// IP returns a node's address.
func (p *Protocol) IP(id radio.NodeID) (addrspace.Addr, bool) {
	if ns, ok := p.nodes[id]; ok && ns.alive && ns.configured {
		return ns.ip, true
	}
	return 0, false
}

// ConfiguredCount returns the number of alive configured nodes.
func (p *Protocol) ConfiguredCount() int {
	n := 0
	for _, ns := range p.nodes {
		if ns.alive && ns.configured {
			n++
		}
	}
	return n
}

// BlockSize returns the size of the disjoint block a node manages.
func (p *Protocol) BlockSize(id radio.NodeID) uint32 {
	if ns, ok := p.nodes[id]; ok && ns.alive && ns.configured {
		return ns.block.Size()
	}
	return 0
}

// NodeArrived implements protocol.Protocol.
func (p *Protocol) NodeArrived(id radio.NodeID) {
	if !p.running {
		p.running = true
		p.scheduleSync()
	}
	ns := &nodeState{id: id, alive: true}
	p.nodes[id] = ns
	p.rt.Net.InvalidateSnapshot()
	_ = p.rt.Net.Register(id, func(netstack.Message) {})
	p.rt.Sim.Schedule(time.Second, func() { p.tryConfigure(ns) })
}

// scheduleSync runs the periodic global table synchronization: each
// configured node floods its allocation table once per period. This O(n^2)
// traffic is the protocol's defining overhead.
func (p *Protocol) scheduleSync() {
	p.rt.Sim.Schedule(p.p.SyncPeriod, func() {
		snap := p.rt.Net.Snapshot()
		for _, id := range p.sortedConfigured() {
			comp := len(snap.Component(id))
			p.rt.Coll.AddTransmissions(metrics.CatSync, comp)
		}
		p.scheduleSync()
	})
}

func (p *Protocol) sortedConfigured() []radio.NodeID {
	var out []radio.NodeID
	for id, ns := range p.nodes {
		if ns.alive && ns.configured {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tryConfigure runs one configuration attempt: split the block of a
// configured neighbor, falling back to the largest-block node from the
// replicated table when the neighbor cannot split.
func (p *Protocol) tryConfigure(ns *nodeState) {
	if !ns.alive || ns.configured {
		return
	}
	snap := p.rt.Net.Snapshot()

	var helper *nodeState
	helperDist := 0
	for _, nb := range snap.Neighbors(ns.id) {
		if hn := p.nodes[nb]; hn != nil && hn.alive && hn.configured {
			helper, helperDist = hn, 1
			break
		}
	}
	if helper == nil {
		if p.anyConfiguredInComponent(snap, ns.id) {
			p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
			return
		}
		// First node of the component: owns the whole space.
		ns.block = p.p.Space
		ns.ip = ns.block.Lo
		ns.configured = true
		p.rt.Coll.Observe(SampleConfigLatency, 1)
		p.rt.Coll.Inc(CounterConfigured)
		return
	}

	// The neighbor splits its own block; if it cannot, it consults its
	// table for the largest block holder and relays the request.
	granter, extraHops := helper, 0
	if granter.block.Size() < 2 {
		granter = nil
		var bestSize uint32
		for _, id := range p.sortedConfigured() {
			other := p.nodes[id]
			if other.block.Size() < 2 || !snap.Reachable(helper.id, id) {
				continue
			}
			if granter == nil || other.block.Size() > bestSize {
				granter, bestSize = other, other.block.Size()
			}
		}
		if granter == nil {
			p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
			return
		}
		d, _ := snap.HopCount(helper.id, granter.id)
		extraHops = 2 * d
		p.rt.Coll.Inc(CounterBlockTransfers)
	}

	lower, upper, err := granter.block.SplitHalf()
	if err != nil {
		p.rt.Sim.Schedule(p.p.RetryInterval, func() { p.tryConfigure(ns) })
		return
	}
	granter.block = lower
	granter.buddy, granter.hasBuddy = ns.id, true
	latency := 2*helperDist + extraHops
	p.rt.Coll.AddTraffic(metrics.CatConfig, latency)
	delay := time.Duration(latency) * p.rt.Net.PerHop()
	p.rt.Sim.Schedule(delay, func() {
		if !ns.alive || ns.configured {
			return
		}
		ns.block = upper
		ns.ip = upper.Lo
		ns.buddy, ns.hasBuddy = granter.id, true
		ns.configured = true
		p.rt.Coll.Observe(SampleConfigLatency, float64(latency))
		p.rt.Coll.Inc(CounterConfigured)
	})
}

func (p *Protocol) anyConfiguredInComponent(snap *radio.Snapshot, id radio.NodeID) bool {
	for _, other := range snap.Component(id) {
		if other != id {
			if ns := p.nodes[other]; ns != nil && ns.alive && ns.configured {
				return true
			}
		}
	}
	return false
}

// NodeDeparting implements protocol.Protocol. A graceful departure hands
// the block back to the buddy and floods the departure announcement so
// every replicated table is updated. An abrupt departure is noticed by the
// buddy after a timeout; the buddy merges the block and announces it.
func (p *Protocol) NodeDeparting(id radio.NodeID, graceful bool) {
	ns, ok := p.nodes[id]
	if !ok || !ns.alive {
		return
	}
	snap := p.rt.Net.Snapshot()
	if ns.configured {
		if graceful {
			if buddy := p.liveBuddy(ns); buddy != nil {
				if d, ok := snap.HopCount(id, buddy.id); ok {
					p.rt.Coll.AddTraffic(metrics.CatDeparture, d)
				}
				p.absorb(buddy, ns.block)
			}
			// Departure announcement keeps all replicated tables aligned.
			p.rt.Coll.AddTransmissions(metrics.CatDeparture, len(snap.Component(id)))
		} else {
			block := ns.block
			buddyID := ns.buddy
			hasBuddy := ns.hasBuddy
			p.rt.Sim.Schedule(p.p.BuddyTimeout, func() {
				if !hasBuddy {
					return
				}
				buddy, ok := p.nodes[buddyID]
				if !ok || !buddy.alive || !buddy.configured {
					return
				}
				// Probe that went unanswered, then the reclaim announcement.
				s := p.rt.Net.Snapshot()
				p.rt.Coll.AddTransmissions(metrics.CatReclamation, 1)
				p.rt.Coll.AddTransmissions(metrics.CatReclamation, len(s.Component(buddy.id)))
				p.absorb(buddy, block)
				p.rt.Coll.Inc(CounterBuddyReclaims)
			})
		}
	}
	ns.alive = false
	p.rt.RemoveNode(id)
}

// liveBuddy returns the node's buddy if it is still alive and configured.
func (p *Protocol) liveBuddy(ns *nodeState) *nodeState {
	if !ns.hasBuddy {
		return nil
	}
	buddy, ok := p.nodes[ns.buddy]
	if !ok || !buddy.alive || !buddy.configured {
		return nil
	}
	return buddy
}

// absorb merges a returned block into the receiver when adjacent;
// otherwise the receiver simply manages it as extra space (modelled by
// extending toward the larger range when possible, else dropped — the
// table flood already announced the release).
func (p *Protocol) absorb(buddy *nodeState, block addrspace.Block) {
	if merged, err := buddy.block.Merge(block); err == nil {
		buddy.block = merged
	}
}
