package ctl

import (
	"context"
	"sort"
	"sync"
)

// Fleet is a set of daemon clients addressed as one cluster.
type Fleet struct {
	clients []*Client
}

// NewFleet builds one client per address with the shared options.
func NewFleet(addrs []string, opts ...Option) *Fleet {
	f := &Fleet{clients: make([]*Client, 0, len(addrs))}
	for _, a := range addrs {
		f.clients = append(f.clients, New(a, opts...))
	}
	return f
}

// Clients returns the per-daemon clients, in address order.
func (f *Fleet) Clients() []*Client { return f.clients }

// Size returns the number of daemons addressed.
func (f *Fleet) Size() int { return len(f.clients) }

// Result is one daemon's answer to a fanned-out call.
type Result[T any] struct {
	// Addr is the daemon base URL.
	Addr string
	// Value is the answer when Err is nil.
	Value T
	// Err is the per-daemon failure; a dead daemon does not fail the
	// whole fan-out.
	Err error
}

// FanOut calls fn against every daemon of the fleet concurrently and
// returns one Result per daemon, ordered by address so output is stable
// across runs. The context bounds the whole fan-out.
func FanOut[T any](ctx context.Context, f *Fleet, fn func(context.Context, *Client) (T, error)) []Result[T] {
	results := make([]Result[T], len(f.clients))
	var wg sync.WaitGroup
	for i, c := range f.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			v, err := fn(ctx, c)
			results[i] = Result[T]{Addr: c.Addr(), Value: v, Err: err}
		}(i, c)
	}
	wg.Wait()
	sort.SliceStable(results, func(i, j int) bool { return results[i].Addr < results[j].Addr })
	return results
}

// First calls fn against every daemon concurrently and returns the first
// successful answer, cancelling the rest. When every daemon fails it
// returns the first daemon's error.
func First[T any](ctx context.Context, f *Fleet, fn func(context.Context, *Client) (T, error)) (T, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := FanOut(ctx, f, func(ctx context.Context, c *Client) (T, error) {
		v, err := fn(ctx, c)
		if err == nil {
			cancel() // got one; release the stragglers
		}
		return v, err
	})
	for _, r := range results {
		if r.Err == nil {
			return r.Value, nil
		}
	}
	var zero T
	if len(results) == 0 {
		return zero, &APIError{Status: 0, Message: "empty fleet"}
	}
	return zero, results[0].Err
}
