package ctl

// Automated admission: AutoJoin drives the whole "quorumctl member add"
// follow-through that used to be a manual runbook — register the newcomer
// on every daemon, gather the fleet's seed directory, boot (or seed) the
// joining daemon, and wait until it reports Joined.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/daemon"
)

// joinPoll is how often AutoJoin re-reads the newcomer's status while
// waiting for its CH_REQ/COM_REQ exchange to land.
const joinPoll = 150 * time.Millisecond

// SpawnFunc boots — or seeds — the joining daemon once the fleet knows
// its transport address. It receives the fleet's seed directory (node ID
// to UDP address for every reachable member) and returns the newcomer's
// HTTP control address, which AutoJoin then polls for the join.
type SpawnFunc func(ctx context.Context, seeds map[int]string) (httpAddr string, err error)

// SeedExisting adapts an already-running daemon to the SpawnFunc shape:
// the operator has started the newcomer (with Seeds naming fleet members
// but no transport addresses yet), and the "spawn" step just pushes the
// fleet's directory into its /v1/members registry so its join retries
// find an answering seed.
func SeedExisting(httpAddr string, opts ...Option) SpawnFunc {
	return func(ctx context.Context, seeds map[int]string) (string, error) {
		c := New(httpAddr, opts...)
		ids := make([]int, 0, len(seeds))
		for id := range seeds {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if _, err := c.AddMember(ctx, id, seeds[id]); err != nil {
				return "", fmt.Errorf("seeding node %d at %s into %s: %w", id, seeds[id], httpAddr, err)
			}
		}
		return httpAddr, nil
	}
}

// AutoJoin admits node (listening on udpAddr) into the fleet:
//
//  1. register the newcomer's transport address on every daemon, so it is
//     reachable fleet-wide before it speaks;
//  2. collect the seed directory — every reachable member's node ID and
//     UDP address — from the fleet's statuses;
//  3. hand the directory to spawn, which boots or seeds the newcomer and
//     returns its HTTP control address;
//  4. poll the newcomer's status until it reports Joined.
//
// The context bounds the whole flow; the returned status is the
// newcomer's first Joined snapshot. Registration tolerates unreachable
// daemons as long as at least one accepts — the join protocol itself
// only needs one answering seed.
func AutoJoin(ctx context.Context, f *Fleet, node int, udpAddr string, spawn SpawnFunc, opts ...Option) (daemon.StatusResponse, error) {
	reg := FanOut(ctx, f, func(ctx context.Context, c *Client) (daemon.AddMemberResponse, error) {
		return c.AddMember(ctx, node, udpAddr)
	})
	registered := 0
	var regErr error
	for _, r := range reg {
		if r.Err == nil {
			registered++
		} else if regErr == nil {
			regErr = fmt.Errorf("%s: %w", r.Addr, r.Err)
		}
	}
	if registered == 0 {
		return daemon.StatusResponse{}, fmt.Errorf("autojoin: registering node %d failed on every daemon: %w", node, regErr)
	}

	seeds := make(map[int]string)
	for _, r := range FanOut(ctx, f, func(ctx context.Context, c *Client) (daemon.StatusResponse, error) {
		return c.Status(ctx)
	}) {
		if r.Err == nil && r.Value.UDP != "" && r.Value.ID != node {
			seeds[r.Value.ID] = r.Value.UDP
		}
	}
	if len(seeds) == 0 {
		return daemon.StatusResponse{}, fmt.Errorf("autojoin: no reachable daemon reports a UDP address to seed node %d from", node)
	}

	httpAddr, err := spawn(ctx, seeds)
	if err != nil {
		return daemon.StatusResponse{}, fmt.Errorf("autojoin: spawning node %d: %w", node, err)
	}

	nc := New(httpAddr, opts...)
	for {
		v, err := nc.Status(ctx)
		if err == nil && v.Joined {
			if v.ID != node {
				return v, fmt.Errorf("autojoin: daemon at %s is node %d, not the expected %d", httpAddr, v.ID, node)
			}
			return v, nil
		}
		select {
		case <-ctx.Done():
			if err != nil {
				return daemon.StatusResponse{}, fmt.Errorf("autojoin: node %d never joined (%w; last status error: %v)", node, ctx.Err(), err)
			}
			return v, fmt.Errorf("autojoin: node %d never joined: %w", node, ctx.Err())
		case <-time.After(joinPoll):
		}
	}
}
