package ctl

// A minimal Prometheus text-exposition parser — just enough to read
// quorumd's own /v1/metrics output back into numbers. quorumctl top polls
// the raw exposition (Client.Metrics) and needs counters for rate deltas
// and histogram buckets for quantile estimates; a full client library
// would be overkill for a format this repo also writes itself.

import (
	"math"
	"strconv"
	"strings"
)

// PromSnapshot is one parsed scrape.
type PromSnapshot struct {
	samples map[string]float64
	hists   map[string]*PromHistogram
}

// PromBucket is one cumulative le-labelled histogram bucket.
type PromBucket struct {
	Le    float64 // upper bound, +Inf for the terminal bucket
	Count float64 // cumulative observations at or below Le
}

// PromHistogram is a parsed histogram family: ascending cumulative
// buckets plus the _sum and _count series.
type PromHistogram struct {
	Buckets []PromBucket
	Sum     float64
	Count   float64
}

// ParseProm parses a text exposition. Histogram families are recognised
// by their `# TYPE <name> histogram` header (which quorumd always
// writes); unparseable lines are skipped rather than failing the scrape,
// so one odd series never blinds the whole fleet view.
func ParseProm(text string) *PromSnapshot {
	s := &PromSnapshot{
		samples: make(map[string]float64),
		hists:   make(map[string]*PromHistogram),
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" && fields[3] == "histogram" {
				s.hists[fields[2]] = &PromHistogram{}
			}
			continue
		}
		name, labels, value, ok := parsePromSample(line)
		if !ok {
			continue
		}
		if base, found := strings.CutSuffix(name, "_bucket"); found {
			if h := s.hists[base]; h != nil {
				if le, ok := parseLe(labels); ok {
					h.Buckets = append(h.Buckets, PromBucket{Le: le, Count: value})
					continue
				}
			}
		}
		if base, found := strings.CutSuffix(name, "_sum"); found {
			if h := s.hists[base]; h != nil {
				h.Sum = value
				continue
			}
		}
		if base, found := strings.CutSuffix(name, "_count"); found {
			if h := s.hists[base]; h != nil {
				h.Count = value
				continue
			}
		}
		key := name
		if labels != "" {
			key += "{" + labels + "}"
		}
		s.samples[key] = value
	}
	return s
}

// parsePromSample splits `name{labels} value` (labels optional) into its
// parts.
func parsePromSample(line string) (name, labels string, value float64, ok bool) {
	series := line
	if i := strings.LastIndexByte(line, ' '); i >= 0 {
		series = line[:i]
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			return "", "", 0, false
		}
		value = v
	} else {
		return "", "", 0, false
	}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", "", 0, false
		}
		return series[:i], series[i+1 : len(series)-1], value, true
	}
	return series, "", value, true
}

// parseLe extracts the le label from a bucket's label string.
func parseLe(labels string) (float64, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found || k != "le" {
			continue
		}
		v = strings.Trim(v, `"`)
		if v == "+Inf" {
			return math.Inf(1), true
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// Value looks up one series by its exact name (including any label
// string, as written).
func (s *PromSnapshot) Value(name string) (float64, bool) {
	v, ok := s.samples[name]
	return v, ok
}

// Counter returns a bare counter's value, zero when the series is absent
// (quorumd elides counters never incremented).
func (s *PromSnapshot) Counter(name string) float64 {
	return s.samples[name]
}

// Histogram returns a parsed histogram family by base name.
func (s *PromSnapshot) Histogram(name string) (*PromHistogram, bool) {
	h, ok := s.hists[name]
	return h, ok
}

// Quantile estimates the q-quantile (0 < q <= 1) from the cumulative
// buckets by linear interpolation within the owning bucket, the same
// estimate Prometheus's histogram_quantile computes. Returns NaN when the
// histogram is empty; the highest finite bound when the quantile lands in
// the +Inf bucket.
func (h *PromHistogram) Quantile(q float64) float64 {
	total := h.Count
	if len(h.Buckets) > 0 {
		if last := h.Buckets[len(h.Buckets)-1].Count; last > total {
			total = last
		}
	}
	if total == 0 || len(h.Buckets) == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * total
	prevLe, prevCum := 0.0, 0.0
	for _, b := range h.Buckets {
		if b.Count >= rank {
			if math.IsInf(b.Le, 1) {
				return prevLe
			}
			if b.Count == prevCum {
				return b.Le
			}
			return prevLe + (b.Le-prevLe)*(rank-prevCum)/(b.Count-prevCum)
		}
		prevLe, prevCum = b.Le, b.Count
	}
	return prevLe
}
