// Package ctl is the typed Go client for the quorumd /v1 control API —
// the programmatic face of the cluster control plane that cmd/quorumctl
// fronts. One Client speaks to one daemon with a per-request timeout and
// bounded retries on idempotent calls; Fleet fans a call out to every
// daemon of a cluster concurrently and collects per-daemon results.
package ctl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"quorumconf/internal/daemon"
)

// DefaultTimeout bounds one HTTP round trip to one daemon.
const DefaultTimeout = 5 * time.Second

// DefaultRetries is how many times an idempotent request is retried after
// a transport error or a 5xx answer.
const DefaultRetries = 2

// APIError is a non-2xx answer from a daemon, carrying the typed error
// body the /v1 API guarantees.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the daemon's error string.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("daemon answered HTTP %d: %s", e.Status, e.Message)
}

// Client talks to one daemon's /v1 API.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout sets the per-request timeout (default DefaultTimeout).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetries sets how many times idempotent requests are retried
// (default DefaultRetries; 0 disables).
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithHTTPClient substitutes the underlying http.Client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at addr — a host:port or an
// http:// URL.
func New(addr string, opts ...Option) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:    base,
		hc:      &http.Client{Timeout: DefaultTimeout},
		retries: DefaultRetries,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Addr returns the daemon base URL this client targets.
func (c *Client) Addr() string { return c.base }

// Status fetches GET /v1/status.
func (c *Client) Status(ctx context.Context) (daemon.StatusResponse, error) {
	var v daemon.StatusResponse
	err := c.call(ctx, http.MethodGet, "/v1/status", nil, &v, true)
	return v, err
}

// Members fetches GET /v1/members.
func (c *Client) Members(ctx context.Context) (daemon.MembersResponse, error) {
	var v daemon.MembersResponse
	err := c.call(ctx, http.MethodGet, "/v1/members", nil, &v, true)
	return v, err
}

// AddMember registers a peer transport address via POST /v1/members.
// Registration is idempotent on the daemon side, so it retries.
func (c *Client) AddMember(ctx context.Context, node int, addr string) (daemon.AddMemberResponse, error) {
	var v daemon.AddMemberResponse
	req := daemon.AddMemberRequest{Node: node, Addr: addr}
	err := c.call(ctx, http.MethodPost, "/v1/members", req, &v, true)
	return v, err
}

// Drain asks the daemon to stop accepting allocations via POST /v1/drain.
// Draining is idempotent, so it retries.
func (c *Client) Drain(ctx context.Context) (daemon.DrainResponse, error) {
	var v daemon.DrainResponse
	err := c.call(ctx, http.MethodPost, "/v1/drain", nil, &v, true)
	return v, err
}

// Depart asks the daemon to leave the cluster gracefully via
// POST /v1/depart (the RETURN_ADDR exchange). Departure is idempotent —
// concurrent and repeated calls share one exchange — so it retries.
func (c *Client) Depart(ctx context.Context) (daemon.DepartResponse, error) {
	var v daemon.DepartResponse
	err := c.call(ctx, http.MethodPost, "/v1/depart", nil, &v, true)
	return v, err
}

// Health fetches GET /v1/health.
func (c *Client) Health(ctx context.Context) (daemon.HealthResponse, error) {
	var v daemon.HealthResponse
	err := c.call(ctx, http.MethodGet, "/v1/health", nil, &v, true)
	return v, err
}

// Allocate requests one address via POST /v1/allocate. Allocation is NOT
// idempotent (a retried request would allocate twice), so transport
// failures surface to the caller instead of being retried.
func (c *Client) Allocate(ctx context.Context, node int) (daemon.AllocateResponse, error) {
	var v daemon.AllocateResponse
	var body any
	if node != 0 {
		body = daemon.AllocateRequest{Node: node}
	}
	err := c.call(ctx, http.MethodPost, "/v1/allocate", body, &v, false)
	return v, err
}

// Trace fetches GET /v1/trace, optionally filtered to one event kind.
func (c *Client) Trace(ctx context.Context, kind string) (daemon.TraceResponse, error) {
	path := "/v1/trace"
	if kind != "" {
		path += "?kind=" + url.QueryEscape(kind)
	}
	var v daemon.TraceResponse
	err := c.call(ctx, http.MethodGet, path, nil, &v, true)
	return v, err
}

// Metrics fetches GET /v1/metrics — the Prometheus text exposition, raw.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	body, _, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// call performs one API request with JSON encoding both ways, retrying
// transport errors and 5xx answers when idempotent.
func (c *Client) call(ctx context.Context, method, path string, reqBody, dst any, idempotent bool) error {
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.backoff << (attempt - 1)):
			case <-ctx.Done():
				return lastErr
			}
		}
		body, status, err := c.do(ctx, method, path, reqBody)
		switch {
		case err != nil:
			lastErr = err
			if ctx.Err() != nil {
				return lastErr // the caller gave up; stop retrying
			}
			continue
		case status >= 500:
			lastErr = apiError(status, body)
			continue
		case status >= 400:
			return apiError(status, body) // a client error will not improve
		}
		if dst == nil {
			return nil
		}
		if err := json.Unmarshal(body, dst); err != nil {
			return fmt.Errorf("decoding %s %s response: %w", method, path, err)
		}
		return nil
	}
	return lastErr
}

// do performs one HTTP round trip and returns the raw body and status.
func (c *Client) do(ctx context.Context, method, path string, reqBody any) ([]byte, int, error) {
	var rd io.Reader
	if reqBody != nil {
		buf, err := json.Marshal(reqBody)
		if err != nil {
			return nil, 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// apiError builds the typed error from a non-2xx body, falling back to
// the raw text when the body is not the ErrorResponse shape.
func apiError(status int, body []byte) *APIError {
	var e daemon.ErrorResponse
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return &APIError{Status: status, Message: e.Error}
	}
	return &APIError{Status: status, Message: strings.TrimSpace(string(body))}
}
