package ctl

import (
	"context"
	"strings"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/daemon"
	"quorumconf/internal/radio"
)

// joinTestCluster boots n daemons over real sockets, fully meshed, and
// returns them plus a fleet addressing their HTTP APIs.
func joinTestCluster(t *testing.T, n int) ([]*daemon.Daemon, *Fleet) {
	t.Helper()
	ds := make([]*daemon.Daemon, n)
	for i := 0; i < n; i++ {
		cfg := daemon.Config{
			ID:                radio.NodeID(i + 1),
			Space:             addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000040},
			Bootstrap:         i == 0,
			Listen:            "127.0.0.1:0",
			HTTPListen:        "127.0.0.1:0",
			HeartbeatInterval: 60 * time.Millisecond,
			SuspectAfter:      350 * time.Millisecond,
			QuorumTimeout:     400 * time.Millisecond,
			ReclaimSettle:     200 * time.Millisecond,
			JoinRetry:         120 * time.Millisecond,
			Logf:              t.Logf,
		}
		if i > 0 {
			cfg.Seeds = []radio.NodeID{1}
		}
		d, err := daemon.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Kill)
		ds[i] = d
	}
	addrs := make([]string, n)
	for i, a := range ds {
		addrs[i] = a.HTTPAddr()
		for _, b := range ds {
			if a != b {
				if err := a.AddPeer(b.ID(), b.UDPAddr().String()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	fleet := NewFleet(addrs)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		joined := 0
		for _, r := range FanOut(ctx, fleet, func(ctx context.Context, c *Client) (daemon.StatusResponse, error) {
			return c.Status(ctx)
		}) {
			if r.Err == nil && r.Value.Joined {
				joined++
			}
		}
		if joined == n {
			return ds, fleet
		}
		select {
		case <-ctx.Done():
			t.Fatalf("fleet never formed: %d/%d joined", joined, n)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestAutoJoinAdmitsNewcomer is the end of the runbook: a newcomer daemon
// started with seeds but no peer addresses is admitted by AutoJoin alone —
// fleet-wide registration, seed directory push, and the join poll.
func TestAutoJoinAdmitsNewcomer(t *testing.T) {
	ds, fleet := joinTestCluster(t, 3)

	nc, err := daemon.New(daemon.Config{
		ID:                4,
		Space:             addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000040},
		Seeds:             []radio.NodeID{1, 2},
		Listen:            "127.0.0.1:0",
		HTTPListen:        "127.0.0.1:0",
		HeartbeatInterval: 60 * time.Millisecond,
		SuspectAfter:      350 * time.Millisecond,
		QuorumTimeout:     400 * time.Millisecond,
		ReclaimSettle:     200 * time.Millisecond,
		JoinRetry:         120 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nc.Kill)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var seeded map[int]string
	spawn := func(ctx context.Context, seeds map[int]string) (string, error) {
		seeded = seeds
		return SeedExisting(nc.HTTPAddr())(ctx, seeds)
	}
	v, err := AutoJoin(ctx, fleet, 4, nc.UDPAddr().String(), spawn)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 4 || !v.Joined || v.IP == "" {
		t.Fatalf("joined status = %+v", v)
	}
	if len(seeded) != 3 {
		t.Errorf("seed directory had %d members, want 3: %v", len(seeded), seeded)
	}
	for i, d := range ds {
		if want := d.UDPAddr().String(); seeded[i+1] != want {
			t.Errorf("seed[%d] = %q, want %q", i+1, seeded[i+1], want)
		}
	}

	// The fleet sees the newcomer: the owner's electorate now has four
	// members.
	owner := New(ds[0].HTTPAddr())
	sv, err := owner.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Electorate) != 4 {
		t.Errorf("owner electorate = %v, want 4 members", sv.Electorate)
	}
}

// TestAutoJoinFailurePaths covers the flow's guard rails: a dead fleet
// fails registration, and a spawn error is surfaced with context.
func TestAutoJoinFailurePaths(t *testing.T) {
	dead := NewFleet([]string{"127.0.0.1:1"}, WithTimeout(200*time.Millisecond), WithRetries(0))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spawnNever := func(context.Context, map[int]string) (string, error) {
		t.Fatal("spawn must not run when registration fails everywhere")
		return "", nil
	}
	if _, err := AutoJoin(ctx, dead, 9, "127.0.0.1:2", spawnNever); err == nil ||
		!strings.Contains(err.Error(), "failed on every daemon") {
		t.Errorf("dead-fleet AutoJoin error = %v", err)
	}
}
