package ctl

import (
	"math"
	"testing"
)

const promFixture = `# TYPE quorumd_daemon_allocs counter
quorumd_daemon_allocs 42
# TYPE quorumd_transport_auth_reject counter
quorumd_transport_auth_reject 3
# TYPE quorumd_traffic_messages_total counter
quorumd_traffic_messages_total{category="config"} 120
quorumd_traffic_messages_total{category="sync"} 30
# TYPE quorumd_config_latency_seconds histogram
quorumd_config_latency_seconds_bucket{le="0.001"} 10
quorumd_config_latency_seconds_bucket{le="0.004"} 30
quorumd_config_latency_seconds_bucket{le="0.016"} 40
quorumd_config_latency_seconds_bucket{le="+Inf"} 40
quorumd_config_latency_seconds_sum 0.123
quorumd_config_latency_seconds_count 40
# TYPE quorumd_uptime_seconds gauge
quorumd_uptime_seconds 12.5

this line is noise and must not fail the parse
`

func TestParsePromCountersAndGauges(t *testing.T) {
	s := ParseProm(promFixture)
	if got := s.Counter("quorumd_daemon_allocs"); got != 42 {
		t.Errorf("daemon_allocs = %v, want 42", got)
	}
	if got := s.Counter("quorumd_transport_auth_reject"); got != 3 {
		t.Errorf("auth_reject = %v, want 3", got)
	}
	// Absent counters read as zero: quorumd elides never-incremented ones.
	if got := s.Counter("quorumd_transport_rate_limited"); got != 0 {
		t.Errorf("absent counter = %v, want 0", got)
	}
	if v, ok := s.Value(`quorumd_traffic_messages_total{category="config"}`); !ok || v != 120 {
		t.Errorf("labelled series = %v/%v, want 120/true", v, ok)
	}
	if v, ok := s.Value("quorumd_uptime_seconds"); !ok || v != 12.5 {
		t.Errorf("gauge = %v/%v, want 12.5/true", v, ok)
	}
}

func TestParsePromHistogram(t *testing.T) {
	s := ParseProm(promFixture)
	h, ok := s.Histogram("quorumd_config_latency_seconds")
	if !ok {
		t.Fatal("histogram family not recognised")
	}
	if len(h.Buckets) != 4 || h.Count != 40 || h.Sum != 0.123 {
		t.Fatalf("parsed histogram %+v", h)
	}
	if !math.IsInf(h.Buckets[3].Le, 1) {
		t.Errorf("terminal bucket le = %v, want +Inf", h.Buckets[3].Le)
	}
	// _bucket/_sum/_count series must not leak into the flat sample map.
	if _, ok := s.Value("quorumd_config_latency_seconds_count"); ok {
		t.Error("histogram _count leaked into samples")
	}
}

func TestPromQuantile(t *testing.T) {
	s := ParseProm(promFixture)
	h, _ := s.Histogram("quorumd_config_latency_seconds")
	// rank(0.5) = 20: inside the (0.001, 0.004] bucket, halfway through its
	// 20 observations → 0.001 + 0.003*(20-10)/20 = 0.0025.
	if got := h.Quantile(0.5); math.Abs(got-0.0025) > 1e-9 {
		t.Errorf("p50 = %v, want 0.0025", got)
	}
	// rank(0.99) = 39.6: inside (0.004, 0.016].
	want := 0.004 + 0.012*(39.6-30)/10
	if got := h.Quantile(0.99); math.Abs(got-want) > 1e-9 {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	if got := h.Quantile(1); got != 0.016 {
		t.Errorf("p100 = %v, want 0.016", got)
	}
	// Observations above every finite bound clamp to the highest finite le.
	over := &PromHistogram{Count: 4, Buckets: []PromBucket{
		{Le: 0.5, Count: 2}, {Le: math.Inf(1), Count: 4},
	}}
	if got := over.Quantile(0.99); got != 0.5 {
		t.Errorf("quantile in +Inf bucket = %v, want 0.5", got)
	}
	empty := &PromHistogram{}
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}
