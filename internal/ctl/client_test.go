package ctl

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"quorumconf/internal/daemon"
)

// fakeDaemon serves a canned /v1 API for client tests.
func fakeDaemon(t *testing.T, mux *http.ServeMux) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func jsonHandler(code int, v any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
}

func TestClientTypedCalls(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", jsonHandler(200, daemon.StatusResponse{ID: 3, Role: "member", Joined: true, IP: "10.0.0.3"}))
	mux.HandleFunc("/v1/members", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			jsonHandler(200, daemon.MembersResponse{Owner: 1, Members: []daemon.MemberInfo{{Node: 1}}})(w, r)
		case http.MethodPost:
			var req daemon.AddMemberRequest
			_ = json.NewDecoder(r.Body).Decode(&req)
			jsonHandler(200, daemon.AddMemberResponse{Node: req.Node, Addr: req.Addr})(w, r)
		}
	})
	mux.HandleFunc("/v1/health", jsonHandler(200, daemon.HealthResponse{Monitoring: true, Factor: 2, Target: 3, Under: true}))
	mux.HandleFunc("/v1/drain", jsonHandler(200, daemon.DrainResponse{Draining: true, Initiated: true}))
	mux.HandleFunc("/v1/depart", jsonHandler(200, daemon.DepartResponse{Departed: true}))
	srv := fakeDaemon(t, mux)

	c := New(srv.URL)
	ctx := context.Background()

	if v, err := c.Status(ctx); err != nil || v.ID != 3 || v.Role != "member" {
		t.Errorf("Status = %+v, %v", v, err)
	}
	if v, err := c.Members(ctx); err != nil || v.Owner != 1 || len(v.Members) != 1 {
		t.Errorf("Members = %+v, %v", v, err)
	}
	if v, err := c.AddMember(ctx, 7, "127.0.0.1:19"); err != nil || v.Node != 7 || v.Addr != "127.0.0.1:19" {
		t.Errorf("AddMember = %+v, %v", v, err)
	}
	if v, err := c.Health(ctx); err != nil || v.Factor != 2 || !v.Under {
		t.Errorf("Health = %+v, %v", v, err)
	}
	if v, err := c.Drain(ctx); err != nil || !v.Initiated {
		t.Errorf("Drain = %+v, %v", v, err)
	}
	if v, err := c.Depart(ctx); err != nil || !v.Departed {
		t.Errorf("Depart = %+v, %v", v, err)
	}
}

func TestClientAPIError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/trace", jsonHandler(400, daemon.ErrorResponse{Error: `unknown event kind "bogus"`}))
	mux.HandleFunc("/v1/depart", jsonHandler(409, daemon.ErrorResponse{Error: "the space owner cannot depart"}))
	srv := fakeDaemon(t, mux)
	c := New(srv.URL)

	_, err := c.Trace(context.Background(), "bogus")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("Trace error = %v, want *APIError", err)
	}
	if apiErr.Status != 400 || apiErr.Message != `unknown event kind "bogus"` {
		t.Errorf("APIError = %+v", apiErr)
	}
	if _, err := c.Depart(context.Background()); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Errorf("Depart error = %v, want 409 APIError", err)
	}
}

// TestClientRetries: idempotent calls survive transient 5xx answers;
// 4xx answers and non-idempotent allocations do not retry.
func TestClientRetries(t *testing.T) {
	var statusCalls, allocCalls, badCalls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		if statusCalls.Add(1) < 3 {
			jsonHandler(503, daemon.ErrorResponse{Error: "daemon unresponsive"})(w, r)
			return
		}
		jsonHandler(200, daemon.StatusResponse{ID: 1})(w, r)
	})
	mux.HandleFunc("/v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		allocCalls.Add(1)
		jsonHandler(503, daemon.ErrorResponse{Error: "allocation timed out"})(w, r)
	})
	mux.HandleFunc("/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		jsonHandler(400, daemon.ErrorResponse{Error: "unknown event kind"})(w, r)
	})
	srv := fakeDaemon(t, mux)
	c := New(srv.URL, WithRetries(2))
	c.backoff = time.Millisecond

	if v, err := c.Status(context.Background()); err != nil || v.ID != 1 {
		t.Errorf("Status after retries = %+v, %v", v, err)
	}
	if got := statusCalls.Load(); got != 3 {
		t.Errorf("status called %d times, want 3 (two 503s then success)", got)
	}

	if _, err := c.Allocate(context.Background(), 0); err == nil {
		t.Error("Allocate over a 503 succeeded, want error")
	}
	if got := allocCalls.Load(); got != 1 {
		t.Errorf("allocate called %d times, want 1 (never retried)", got)
	}

	if _, err := c.Trace(context.Background(), "x"); err == nil {
		t.Error("Trace over a 400 succeeded, want error")
	}
	if got := badCalls.Load(); got != 1 {
		t.Errorf("trace called %d times, want 1 (4xx never retried)", got)
	}
}

func TestClientTimeout(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	})
	srv := fakeDaemon(t, mux)
	c := New(srv.URL, WithTimeout(50*time.Millisecond), WithRetries(0))

	start := time.Now()
	if _, err := c.Status(context.Background()); err == nil {
		t.Fatal("Status against a hung daemon succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, want ~50ms", elapsed)
	}
}

func TestFanOut(t *testing.T) {
	mkSrv := func(id int, code int) *httptest.Server {
		mux := http.NewServeMux()
		if code == 200 {
			mux.HandleFunc("/v1/status", jsonHandler(200, daemon.StatusResponse{ID: id}))
		} else {
			mux.HandleFunc("/v1/status", jsonHandler(code, daemon.ErrorResponse{Error: "boom"}))
		}
		return fakeDaemon(t, mux)
	}
	ok1, ok2, bad := mkSrv(1, 200), mkSrv(2, 200), mkSrv(3, 503)

	f := NewFleet([]string{ok1.URL, ok2.URL, bad.URL}, WithRetries(0))
	if f.Size() != 3 {
		t.Fatalf("fleet size = %d", f.Size())
	}
	results := FanOut(context.Background(), f, func(ctx context.Context, c *Client) (daemon.StatusResponse, error) {
		return c.Status(ctx)
	})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	oks, fails := 0, 0
	ids := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			fails++
			continue
		}
		oks++
		ids[r.Value.ID] = true
	}
	if oks != 2 || fails != 1 || !ids[1] || !ids[2] {
		t.Errorf("fan-out results = %+v", results)
	}
	// Ordered by address for stable CLI output.
	for i := 1; i < len(results); i++ {
		if results[i-1].Addr > results[i].Addr {
			t.Errorf("results not address-ordered: %q after %q", results[i].Addr, results[i-1].Addr)
		}
	}
}

func TestFirst(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", jsonHandler(200, daemon.StatusResponse{ID: 1, Role: "owner"}))
	good := fakeDaemon(t, mux)
	badMux := http.NewServeMux()
	badMux.HandleFunc("/v1/status", jsonHandler(503, daemon.ErrorResponse{Error: "down"}))
	bad := fakeDaemon(t, badMux)

	f := NewFleet([]string{bad.URL, good.URL}, WithRetries(0))
	v, err := First(context.Background(), f, func(ctx context.Context, c *Client) (daemon.StatusResponse, error) {
		return c.Status(ctx)
	})
	if err != nil || v.Role != "owner" {
		t.Errorf("First = %+v, %v", v, err)
	}

	allBad := NewFleet([]string{bad.URL}, WithRetries(0))
	if _, err := First(context.Background(), allBad, func(ctx context.Context, c *Client) (daemon.StatusResponse, error) {
		return c.Status(ctx)
	}); err == nil {
		t.Error("First over an all-dead fleet succeeded")
	}
}
