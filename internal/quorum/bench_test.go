package quorum

import (
	"testing"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

func BenchmarkBallotRound(b *testing.B) {
	voters := make([]radio.NodeID, 7)
	for i := range voters {
		voters[i] = radio.NodeID(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal, err := NewBallot(42, voters)
		if err != nil {
			b.Fatal(err)
		}
		_ = bal.SetDistinguished(0)
		for v := 0; v < 4; v++ {
			if err := bal.Cast(radio.NodeID(v), addrspace.Entry{Status: addrspace.Free, Version: uint64(v)}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := bal.Decide(); err != nil {
			b.Fatal(err)
		}
	}
}
