package quorum

import (
	"testing"
	"testing/quick"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

func TestMajoritySize(t *testing.T) {
	cases := map[int]int{
		-1: 1, 0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 100: 51,
	}
	for n, want := range cases {
		if got := MajoritySize(n); got != want {
			t.Errorf("MajoritySize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHasQuorumStrictMajority(t *testing.T) {
	cases := []struct {
		granted, total int
		dist, want     bool
	}{
		{3, 5, false, true},  // strict majority
		{2, 5, false, false}, // below majority, odd total
		{2, 5, true, false},  // distinguished can't rescue below-half
		{2, 4, false, false}, // exact half without distinguished
		{2, 4, true, true},   // exact half with distinguished: dynamic linear voting
		{3, 4, false, true},  // strict majority, distinguished irrelevant
		{1, 1, false, true},  // single-voter system
		{0, 4, true, false},  // no votes
		{1, 2, true, true},   // half of two with distinguished
		{1, 2, false, false}, // half of two without
		{5, 4, false, true},  // granted clamped to total
		{1, 0, false, false}, // degenerate totals
		{0, 0, false, false},
	}
	for _, c := range cases {
		if got := HasQuorum(c.granted, c.total, c.dist); got != c.want {
			t.Errorf("HasQuorum(%d, %d, %v) = %v, want %v", c.granted, c.total, c.dist, got, c.want)
		}
	}
}

func TestRWConfigValidate(t *testing.T) {
	valid := []RWConfig{
		{Read: 3, Write: 3, Total: 5},
		{Read: 1, Write: 5, Total: 5},
		{Read: 2, Write: 2, Total: 3},
		{Read: 1, Write: 1, Total: 1},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	invalid := []RWConfig{
		{Read: 3, Write: 2, Total: 5},  // w <= v/2... 2*2=4 <= 5
		{Read: 2, Write: 3, Total: 5},  // r+w = 5, not > v
		{Read: 0, Write: 3, Total: 5},  // zero read
		{Read: 3, Write: 0, Total: 5},  // zero write
		{Read: 6, Write: 3, Total: 5},  // read exceeds total
		{Read: 3, Write: 6, Total: 5},  // write exceeds total
		{Read: 1, Write: 1, Total: 0},  // no voters
		{Read: 1, Write: 1, Total: -2}, // negative voters
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestMajorityConfigAlwaysValid(t *testing.T) {
	for v := 1; v <= 50; v++ {
		c := Majority(v)
		if err := c.Validate(); err != nil {
			t.Errorf("Majority(%d) = %+v invalid: %v", v, c, err)
		}
	}
}

func newTestBallot(t *testing.T, voters ...radio.NodeID) *Ballot {
	t.Helper()
	b, err := NewBallot(100, voters)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBallotValidation(t *testing.T) {
	if _, err := NewBallot(1, nil); err == nil {
		t.Error("empty electorate accepted")
	}
	if _, err := NewBallot(1, []radio.NodeID{1, 2, 1}); err == nil {
		t.Error("duplicate voters accepted")
	}
}

func TestBallotCastRules(t *testing.T) {
	b := newTestBallot(t, 1, 2, 3)
	if err := b.Cast(1, addrspace.Entry{Status: addrspace.Free}); err != nil {
		t.Fatal(err)
	}
	if err := b.Cast(1, addrspace.Entry{Status: addrspace.Free}); err == nil {
		t.Error("duplicate vote accepted")
	}
	if err := b.Cast(9, addrspace.Entry{Status: addrspace.Free}); err == nil {
		t.Error("outsider vote accepted")
	}
	if b.Granted() != 1 || b.Electorate() != 3 {
		t.Errorf("Granted/Electorate = %d/%d, want 1/3", b.Granted(), b.Electorate())
	}
	if b.Proposal() != 100 {
		t.Errorf("Proposal = %v, want 100", b.Proposal())
	}
}

func TestBallotQuorumProgression(t *testing.T) {
	b := newTestBallot(t, 1, 2, 3, 4, 5)
	votes := []radio.NodeID{1, 2}
	for _, v := range votes {
		if b.HasQuorum() {
			t.Fatalf("quorum before majority at %d votes", b.Granted())
		}
		if err := b.Cast(v, addrspace.Entry{Status: addrspace.Free, Version: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Cast(3, addrspace.Entry{Status: addrspace.Free, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if !b.HasQuorum() {
		t.Error("no quorum at 3/5 votes")
	}
}

func TestBallotDynamicLinearVoting(t *testing.T) {
	// 4 voters, exactly 2 votes: quorum only if distinguished voted.
	b := newTestBallot(t, 1, 2, 3, 4)
	if err := b.SetDistinguished(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Cast(1, addrspace.Entry{Status: addrspace.Free, Version: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.Cast(2, addrspace.Entry{Status: addrspace.Free, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if !b.HasQuorum() {
		t.Error("half including distinguished node should be a quorum")
	}

	b2 := newTestBallot(t, 1, 2, 3, 4)
	if err := b2.SetDistinguished(1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Cast(2, addrspace.Entry{}); err != nil {
		t.Fatal(err)
	}
	if err := b2.Cast(3, addrspace.Entry{}); err != nil {
		t.Fatal(err)
	}
	if b2.HasQuorum() {
		t.Error("half excluding distinguished node must not be a quorum")
	}
}

func TestSetDistinguishedOutsideElectorate(t *testing.T) {
	b := newTestBallot(t, 1, 2)
	if err := b.SetDistinguished(5); err == nil {
		t.Error("distinguished outsider accepted")
	}
}

func TestBallotLatestPicksHighestVersion(t *testing.T) {
	b := newTestBallot(t, 1, 2, 3)
	if _, ok := b.Latest(); ok {
		t.Error("Latest with no votes reported an entry")
	}
	_ = b.Cast(1, addrspace.Entry{Status: addrspace.Free, Version: 3})
	_ = b.Cast(2, addrspace.Entry{Status: addrspace.Occupied, Version: 7})
	_ = b.Cast(3, addrspace.Entry{Status: addrspace.Free, Version: 5})
	e, ok := b.Latest()
	if !ok || e.Version != 7 || e.Status != addrspace.Occupied {
		t.Errorf("Latest = %+v,%v, want occupied v7", e, ok)
	}
}

func TestBallotDecide(t *testing.T) {
	b := newTestBallot(t, 1, 2, 3)
	if _, err := b.Decide(); err == nil {
		t.Error("Decide without quorum accepted")
	}
	_ = b.Cast(1, addrspace.Entry{Status: addrspace.Free, Version: 1})
	_ = b.Cast(2, addrspace.Entry{Status: addrspace.Free, Version: 2})
	d, err := b.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Available {
		t.Error("address with fresh free entries reported unavailable")
	}

	// A single fresher occupied vote flips the decision.
	b2 := newTestBallot(t, 1, 2, 3)
	_ = b2.Cast(1, addrspace.Entry{Status: addrspace.Free, Version: 1})
	_ = b2.Cast(2, addrspace.Entry{Status: addrspace.Occupied, Version: 9})
	d2, err := b2.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Available {
		t.Error("freshest occupied entry must make address unavailable")
	}
	if d2.Entry.Version != 9 {
		t.Errorf("decision entry = %+v, want v9", d2.Entry)
	}
}

func TestBallotOutstandingSorted(t *testing.T) {
	b := newTestBallot(t, 5, 1, 3)
	_ = b.Cast(3, addrspace.Entry{})
	out := b.Outstanding()
	if len(out) != 2 || out[0] != 1 || out[1] != 5 {
		t.Errorf("Outstanding = %v, want [1 5]", out)
	}
}

// Property: two disjoint vote sets cannot both hold a quorum — the heart of
// the uniqueness guarantee. For any electorate size and any split of voters
// into two disjoint groups, at most one group has a quorum (with at most
// one group containing the distinguished node).
func TestPropertyNoTwoDisjointQuorums(t *testing.T) {
	f := func(total uint8, split uint8, distInFirst bool) bool {
		n := int(total%12) + 1
		a := int(split) % (n + 1)
		bCount := n - a // the complementary, disjoint group
		qa := HasQuorum(a, n, distInFirst)
		qb := HasQuorum(bCount, n, !distInFirst)
		return !(qa && qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: any valid RWConfig guarantees read/write and write/write
// intersection: r + w > v and 2w > v imply any read set of size r overlaps
// any write set of size w, and any two write sets overlap.
func TestPropertyRWIntersection(t *testing.T) {
	f := func(r, w, v uint8) bool {
		c := RWConfig{Read: int(r%20) + 1, Write: int(w%20) + 1, Total: int(v%20) + 1}
		if err := c.Validate(); err != nil {
			return true // only valid configs carry the guarantee
		}
		readWriteOverlap := c.Read+c.Write > c.Total
		writeWriteOverlap := 2*c.Write > c.Total
		return readWriteOverlap && writeWriteOverlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Latest always returns the max-version vote cast.
func TestPropertyLatestIsMax(t *testing.T) {
	f := func(versions []uint8) bool {
		if len(versions) == 0 || len(versions) > 50 {
			return true
		}
		voters := make([]radio.NodeID, len(versions))
		for i := range voters {
			voters[i] = radio.NodeID(i)
		}
		b, err := NewBallot(1, voters)
		if err != nil {
			return false
		}
		var max uint64
		for i, v := range versions {
			if err := b.Cast(radio.NodeID(i), addrspace.Entry{Status: addrspace.Free, Version: uint64(v)}); err != nil {
				return false
			}
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		e, ok := b.Latest()
		return ok && e.Version == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
