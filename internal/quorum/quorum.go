// Package quorum implements the voting machinery of the paper: majority
// quorums over a set of replica holders, the read/write quorum constraints
// (w > v/2 and r + w > v), and dynamic linear voting (Jajodia–Mutchler)
// where a set holding exactly half the votes constitutes a quorum iff it
// contains the distinguished node — the cluster head whose IPSpace holds
// the address under vote.
package quorum

import (
	"fmt"
	"sort"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

// MajoritySize returns the minimum number of votes that constitutes a
// strict majority among n voters: floor(n/2) + 1.
func MajoritySize(n int) int {
	if n <= 0 {
		return 1
	}
	return n/2 + 1
}

// HasQuorum decides whether granted votes out of total form a quorum under
// dynamic linear voting. A strict majority always wins. An exact half wins
// only when it includes the distinguished node; this applies only for even
// totals (an odd total cannot split in half).
func HasQuorum(granted, total int, distinguishedGranted bool) bool {
	if total <= 0 || granted <= 0 {
		return false
	}
	if granted > total {
		granted = total
	}
	if 2*granted > total {
		return true
	}
	return 2*granted == total && distinguishedGranted
}

// RWConfig are read/write quorum sizes over v total votes. The paper's
// consistency conditions are Write > v/2 and Read + Write > v, which ensure
// any two writes conflict and every read intersects every write.
type RWConfig struct {
	Read, Write, Total int
}

// Validate checks the paper's two conditions.
func (c RWConfig) Validate() error {
	if c.Total <= 0 {
		return fmt.Errorf("quorum: total votes %d must be positive", c.Total)
	}
	if c.Read <= 0 || c.Write <= 0 {
		return fmt.Errorf("quorum: read %d and write %d must be positive", c.Read, c.Write)
	}
	if c.Read > c.Total || c.Write > c.Total {
		return fmt.Errorf("quorum: read %d / write %d exceed total %d", c.Read, c.Write, c.Total)
	}
	if 2*c.Write <= c.Total {
		return fmt.Errorf("quorum: write quorum %d does not satisfy w > v/2 (v=%d)", c.Write, c.Total)
	}
	if c.Read+c.Write <= c.Total {
		return fmt.Errorf("quorum: r+w=%d does not exceed v=%d", c.Read+c.Write, c.Total)
	}
	return nil
}

// Majority returns the symmetric configuration r = w = floor(v/2)+1.
func Majority(total int) RWConfig {
	m := MajoritySize(total)
	return RWConfig{Read: m, Write: m, Total: total}
}

// Ballot collects votes about one proposed address from a fixed electorate
// (the allocator plus its QDSet in the paper). Each vote carries the
// voter's replica entry for the address; the freshest version decides
// availability once a quorum of votes is in.
type Ballot struct {
	proposal      addrspace.Addr
	electorate    map[radio.NodeID]bool
	votes         map[radio.NodeID]addrspace.Entry
	distinguished radio.NodeID
	hasDistNode   bool
}

// NewBallot creates a ballot over the given electorate for one proposed
// address. The electorate must be non-empty and free of duplicates.
func NewBallot(proposal addrspace.Addr, electorate []radio.NodeID) (*Ballot, error) {
	if len(electorate) == 0 {
		return nil, fmt.Errorf("quorum: empty electorate")
	}
	b := &Ballot{
		proposal:   proposal,
		electorate: make(map[radio.NodeID]bool, len(electorate)),
		votes:      make(map[radio.NodeID]addrspace.Entry),
	}
	for _, id := range electorate {
		if b.electorate[id] {
			return nil, fmt.Errorf("quorum: duplicate voter %d", id)
		}
		b.electorate[id] = true
	}
	return b, nil
}

// SetDistinguished marks the distinguished node for dynamic linear voting
// (the cluster head whose IPSpace contains the proposed address). The node
// must be in the electorate.
func (b *Ballot) SetDistinguished(id radio.NodeID) error {
	if !b.electorate[id] {
		return fmt.Errorf("quorum: distinguished node %d not in electorate", id)
	}
	b.distinguished = id
	b.hasDistNode = true
	return nil
}

// Proposal returns the address under vote.
func (b *Ballot) Proposal() addrspace.Addr { return b.proposal }

// Cast records a vote. Voting twice or from outside the electorate is an
// error.
func (b *Ballot) Cast(voter radio.NodeID, e addrspace.Entry) error {
	if !b.electorate[voter] {
		return fmt.Errorf("quorum: vote from %d outside electorate", voter)
	}
	if _, dup := b.votes[voter]; dup {
		return fmt.Errorf("quorum: duplicate vote from %d", voter)
	}
	b.votes[voter] = e
	return nil
}

// Granted returns the number of votes cast so far.
func (b *Ballot) Granted() int { return len(b.votes) }

// Electorate returns the number of eligible voters.
func (b *Ballot) Electorate() int { return len(b.electorate) }

// HasQuorum reports whether the votes cast so far form a quorum under
// dynamic linear voting.
func (b *Ballot) HasQuorum() bool {
	distGranted := false
	if b.hasDistNode {
		_, distGranted = b.votes[b.distinguished]
	}
	return HasQuorum(len(b.votes), len(b.electorate), distGranted)
}

// HasStrictMajority reports whether the votes cast form a strict majority,
// ignoring the distinguished node. Protocols use this on the fast path and
// fall back to dynamic linear voting (HasQuorum) only when members stop
// responding — the tie-break exists to rescue exact-half splits, not to
// skip fresh reads.
func (b *Ballot) HasStrictMajority() bool {
	return HasQuorum(len(b.votes), len(b.electorate), false)
}

// Latest returns the freshest entry among the votes cast (highest version).
// The second result is false when no votes have been cast.
func (b *Ballot) Latest() (addrspace.Entry, bool) {
	var best addrspace.Entry
	found := false
	for _, e := range b.votes {
		if !found || e.Newer(best) {
			best = e
			found = true
		}
	}
	return best, found
}

// Outstanding returns the electorate members that have not voted, in
// ascending ID order (deterministic retransmission order).
func (b *Ballot) Outstanding() []radio.NodeID {
	var out []radio.NodeID
	for id := range b.electorate {
		if _, voted := b.votes[id]; !voted {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decision is the outcome of a completed ballot.
type Decision struct {
	// Available reports whether the freshest replica says the proposed
	// address is free.
	Available bool
	// Entry is the freshest replica entry observed.
	Entry addrspace.Entry
}

// Decide returns the ballot's outcome. It fails unless a quorum of votes
// has been cast — deciding without a quorum would break the paper's
// uniqueness guarantee.
func (b *Ballot) Decide() (Decision, error) {
	if !b.HasQuorum() {
		return Decision{}, fmt.Errorf("quorum: no quorum (%d/%d votes)", len(b.votes), len(b.electorate))
	}
	latest, _ := b.Latest()
	return Decision{Available: latest.Status != addrspace.Occupied, Entry: latest}, nil
}
