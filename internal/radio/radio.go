// Package radio models wireless connectivity as a unit-disk graph: two
// nodes have a (bidirectional) link iff their Euclidean distance does not
// exceed the transmission range. The paper measures every cost in hop
// counts over this graph ("one message sent from one node to its one hop
// neighbor is considered to be one hop"), so this package also provides the
// BFS machinery for hop counts, k-hop neighborhoods and connected
// components.
//
// Because nodes move, the graph is a function of time: a Topology holds the
// mobility models, and Snapshot materializes the adjacency at one instant.
// All node orderings are sorted so that protocol behaviour is deterministic.
package radio

import (
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/mobility"
)

// NodeID identifies a node in the simulation. IDs are assigned by the
// scenario (arrival order in the paper's experiments) and never reused.
type NodeID int

// Topology tracks the set of live nodes, their mobility models and the
// transmission range.
type Topology struct {
	rangeM float64
	models map[NodeID]mobility.Model
}

// NewTopology creates an empty topology with the given transmission range
// in meters (tr in the paper; 150m in most experiments).
func NewTopology(transmissionRange float64) (*Topology, error) {
	if transmissionRange <= 0 {
		return nil, fmt.Errorf("radio: transmission range %v must be positive", transmissionRange)
	}
	return &Topology{rangeM: transmissionRange, models: make(map[NodeID]mobility.Model)}, nil
}

// Range returns the transmission range in meters.
func (t *Topology) Range() float64 { return t.rangeM }

// Add registers a node with its mobility model. Adding an existing ID or a
// nil model is an error.
func (t *Topology) Add(id NodeID, m mobility.Model) error {
	if m == nil {
		return fmt.Errorf("radio: node %d has nil mobility model", id)
	}
	if _, ok := t.models[id]; ok {
		return fmt.Errorf("radio: node %d already present", id)
	}
	t.models[id] = m
	return nil
}

// Remove deletes a node (used for departures). Removing an absent node is a
// no-op so departure handling does not need existence checks.
func (t *Topology) Remove(id NodeID) { delete(t.models, id) }

// Has reports whether the node is currently part of the network.
func (t *Topology) Has(id NodeID) bool {
	_, ok := t.models[id]
	return ok
}

// Len returns the number of live nodes.
func (t *Topology) Len() int { return len(t.models) }

// Nodes returns the live node IDs in ascending order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(t.models))
	for id := range t.models {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PositionAt returns a node's position at virtual time at.
func (t *Topology) PositionAt(id NodeID, at time.Duration) (mobility.Point, bool) {
	m, ok := t.models[id]
	if !ok {
		return mobility.Point{}, false
	}
	return m.PositionAt(at), true
}

// Snapshot materializes the connectivity graph at time at. The snapshot is
// immutable and remains valid after the topology changes.
func (t *Topology) Snapshot(at time.Duration) *Snapshot {
	ids := t.Nodes()
	s := &Snapshot{
		at:  at,
		ids: ids,
		pos: make(map[NodeID]mobility.Point, len(ids)),
		adj: make(map[NodeID][]NodeID, len(ids)),
	}
	for _, id := range ids {
		s.pos[id] = t.models[id].PositionAt(at)
	}
	r2 := t.rangeM * t.rangeM
	for i, a := range ids {
		pa := s.pos[a]
		for _, b := range ids[i+1:] {
			pb := s.pos[b]
			dx, dy := pa.X-pb.X, pa.Y-pb.Y
			if dx*dx+dy*dy <= r2 {
				s.adj[a] = append(s.adj[a], b)
				s.adj[b] = append(s.adj[b], a)
			}
		}
	}
	// Neighbor lists are built in ascending order by construction (ids is
	// sorted and each pair is appended once per direction in order).
	return s
}

// Snapshot is an immutable picture of the connectivity graph at one
// instant. Distance queries memoize one full BFS per source, so repeated
// HopCount/Reachable/Component calls against the same snapshot are cheap.
type Snapshot struct {
	at  time.Duration
	ids []NodeID
	pos map[NodeID]mobility.Point
	adj map[NodeID][]NodeID

	distMemo map[NodeID]map[NodeID]int
}

// dists returns (and memoizes) hop distances from src to every reachable
// node.
func (s *Snapshot) dists(src NodeID) map[NodeID]int {
	if d, ok := s.distMemo[src]; ok {
		return d
	}
	d := s.bfs(src, nil)
	if s.distMemo == nil {
		s.distMemo = make(map[NodeID]map[NodeID]int)
	}
	s.distMemo[src] = d
	return d
}

// At returns the instant the snapshot was taken.
func (s *Snapshot) At() time.Duration { return s.at }

// Nodes returns all node IDs in ascending order. Callers must not mutate
// the returned slice.
func (s *Snapshot) Nodes() []NodeID { return s.ids }

// Len returns the number of nodes in the snapshot.
func (s *Snapshot) Len() int { return len(s.ids) }

// Contains reports whether the node existed when the snapshot was taken.
func (s *Snapshot) Contains(id NodeID) bool {
	_, ok := s.pos[id]
	return ok
}

// Position returns the node's position in the snapshot.
func (s *Snapshot) Position(id NodeID) (mobility.Point, bool) {
	p, ok := s.pos[id]
	return p, ok
}

// Neighbors returns the node's one-hop neighbors in ascending order.
// Callers must not mutate the returned slice.
func (s *Snapshot) Neighbors(id NodeID) []NodeID { return s.adj[id] }

// Degree returns the number of one-hop neighbors.
func (s *Snapshot) Degree(id NodeID) int { return len(s.adj[id]) }

// HopCount returns the length in hops of a shortest path from a to b, and
// whether b is reachable from a. HopCount(x, x) is 0 for a present node.
func (s *Snapshot) HopCount(a, b NodeID) (int, bool) {
	if !s.Contains(a) || !s.Contains(b) {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	d, ok := s.dists(a)[b]
	return d, ok
}

// ShortestPath returns one shortest path from a to b inclusive of both
// endpoints. Ties are broken toward lower node IDs, so paths are
// deterministic.
func (s *Snapshot) ShortestPath(a, b NodeID) ([]NodeID, bool) {
	if !s.Contains(a) || !s.Contains(b) {
		return nil, false
	}
	if a == b {
		return []NodeID{a}, true
	}
	prev := map[NodeID]NodeID{a: a}
	queue := []NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			break
		}
		for _, n := range s.adj[cur] {
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	if _, ok := prev[b]; !ok {
		return nil, false
	}
	var rev []NodeID
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, true
}

// WithinHops returns every node reachable from id in at most k hops, mapped
// to its hop distance. The origin is included with distance 0.
func (s *Snapshot) WithinHops(id NodeID, k int) map[NodeID]int {
	if !s.Contains(id) || k < 0 {
		return nil
	}
	out := map[NodeID]int{}
	for n, d := range s.dists(id) {
		if d <= k {
			out[n] = d
		}
	}
	return out
}

// Reachable reports whether b is in a's connected component.
func (s *Snapshot) Reachable(a, b NodeID) bool {
	_, ok := s.HopCount(a, b)
	return ok
}

// Component returns the connected component containing id, in ascending ID
// order.
func (s *Snapshot) Component(id NodeID) []NodeID {
	if !s.Contains(id) {
		return nil
	}
	dist := s.dists(id)
	out := make([]NodeID, 0, len(dist))
	for n := range dist {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Components returns every connected component, each sorted ascending, and
// the list itself ordered by the smallest member.
func (s *Snapshot) Components() [][]NodeID {
	seen := map[NodeID]bool{}
	var comps [][]NodeID
	for _, id := range s.ids {
		if seen[id] {
			continue
		}
		comp := s.Component(id)
		for _, n := range comp {
			seen[n] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// bfs runs a breadth-first search from src, returning hop distances for all
// visited nodes. If stop is non-nil, expansion halts after a node for which
// stop returns true is dequeued (its distance is still recorded).
func (s *Snapshot) bfs(src NodeID, stop func(NodeID, int) bool) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		if stop != nil && stop(cur, d) {
			// Stop expanding this node's frontier; distances already
			// assigned to enqueued nodes remain valid.
			continue
		}
		for _, n := range s.adj[cur] {
			if _, seen := dist[n]; !seen {
				dist[n] = d + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Diameter returns the longest shortest-path distance within id's
// component.
func (s *Snapshot) Diameter(id NodeID) int {
	comp := s.Component(id)
	max := 0
	for _, a := range comp {
		dist := s.dists(a)
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}
