// Package radio models wireless connectivity as a unit-disk graph: two
// nodes have a (bidirectional) link iff their Euclidean distance does not
// exceed the transmission range. The paper measures every cost in hop
// counts over this graph ("one message sent from one node to its one hop
// neighbor is considered to be one hop"), so this package also provides the
// BFS machinery for hop counts, k-hop neighborhoods and connected
// components.
//
// Because nodes move, the graph is a function of time: a Topology holds the
// mobility models, and Snapshot materializes the adjacency at one instant.
// All node orderings are sorted so that protocol behaviour is deterministic.
//
// Snapshot construction uses a spatial hash grid (cell size = transmission
// range) so adjacency costs O(n·k) for k neighbors per cell block instead
// of the O(n²) pairwise scan, and all BFS machinery runs over dense
// slice-indexed arrays keyed by a compact node-index table rather than
// maps. This is the hot path of the whole simulator: netstack rebuilds a
// snapshot after every topology change and runs a BFS per unicast.
package radio

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"quorumconf/internal/mobility"
)

// NodeID identifies a node in the simulation. IDs are assigned by the
// scenario (arrival order in the paper's experiments) and never reused.
type NodeID int

// Topology tracks the set of live nodes, their mobility models and the
// transmission range.
type Topology struct {
	rangeM float64
	models map[NodeID]mobility.Model
}

// NewTopology creates an empty topology with the given transmission range
// in meters (tr in the paper; 150m in most experiments).
func NewTopology(transmissionRange float64) (*Topology, error) {
	if transmissionRange <= 0 {
		return nil, fmt.Errorf("radio: transmission range %v must be positive", transmissionRange)
	}
	return &Topology{rangeM: transmissionRange, models: make(map[NodeID]mobility.Model)}, nil
}

// Range returns the transmission range in meters.
func (t *Topology) Range() float64 { return t.rangeM }

// Add registers a node with its mobility model. Adding an existing ID or a
// nil model is an error.
func (t *Topology) Add(id NodeID, m mobility.Model) error {
	if m == nil {
		return fmt.Errorf("radio: node %d has nil mobility model", id)
	}
	if _, ok := t.models[id]; ok {
		return fmt.Errorf("radio: node %d already present", id)
	}
	t.models[id] = m
	return nil
}

// Remove deletes a node (used for departures). Removing an absent node is a
// no-op so departure handling does not need existence checks.
func (t *Topology) Remove(id NodeID) { delete(t.models, id) }

// Has reports whether the node is currently part of the network.
func (t *Topology) Has(id NodeID) bool {
	_, ok := t.models[id]
	return ok
}

// Len returns the number of live nodes.
func (t *Topology) Len() int { return len(t.models) }

// Nodes returns the live node IDs in ascending order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(t.models))
	for id := range t.models {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PositionAt returns a node's position at virtual time at.
func (t *Topology) PositionAt(id NodeID, at time.Duration) (mobility.Point, bool) {
	m, ok := t.models[id]
	if !ok {
		return mobility.Point{}, false
	}
	return m.PositionAt(at), true
}

// cellKey addresses one bucket of the spatial hash grid.
type cellKey struct{ cx, cy int32 }

// Snapshot materializes the connectivity graph at time at. The snapshot is
// immutable and remains valid after the topology changes.
//
// Adjacency is built with a spatial hash grid whose cell size equals the
// transmission range: any neighbor of a node lies in the node's cell or one
// of the 8 surrounding cells, so each node compares against its local cell
// block instead of every other node.
func (t *Topology) Snapshot(at time.Duration) *Snapshot {
	ids := t.Nodes()
	n := len(ids)
	s := &Snapshot{
		at:  at,
		ids: ids,
		idx: make(map[NodeID]int32, n),
		pos: make([]mobility.Point, n),
		adj: make([][]int32, n),
	}
	for i, id := range ids {
		s.idx[id] = int32(i)
		s.pos[i] = t.models[id].PositionAt(at)
	}
	if n == 0 {
		return s
	}
	cell := t.rangeM
	buckets := make(map[cellKey][]int32, n)
	keys := make([]cellKey, n)
	for i := 0; i < n; i++ {
		k := cellKey{
			cx: int32(math.Floor(s.pos[i].X / cell)),
			cy: int32(math.Floor(s.pos[i].Y / cell)),
		}
		keys[i] = k
		buckets[k] = append(buckets[k], int32(i))
	}
	// Adjacency is laid out CSR-style: one flat buffer of neighbor indices
	// with per-node offsets, so the whole graph costs O(1) allocations
	// regardless of node count.
	r2 := t.rangeM * t.rangeM
	flat := make([]int32, 0, 8*n)
	starts := make([]int32, n+1)
	for i := 0; i < n; i++ {
		pi := s.pos[i]
		k := keys[i]
		starts[i] = int32(len(flat))
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, j := range buckets[cellKey{cx: k.cx + dx, cy: k.cy + dy}] {
					if j == int32(i) {
						continue
					}
					pj := s.pos[j]
					ddx, ddy := pi.X-pj.X, pi.Y-pj.Y
					if ddx*ddx+ddy*ddy <= r2 {
						flat = append(flat, j)
					}
				}
			}
		}
		// Bucket iteration interleaves the 9 cells, so restore the
		// ascending order the deterministic protocol machinery relies on.
		slices.Sort(flat[starts[i]:])
	}
	starts[n] = int32(len(flat))
	for i := 0; i < n; i++ {
		s.adj[i] = flat[starts[i]:starts[i+1]:starts[i+1]]
	}
	return s
}

// Snapshot is an immutable picture of the connectivity graph at one
// instant. Node identity is translated once into a compact index (position
// in the sorted ID slice); all per-node state — positions, adjacency, BFS
// distances — lives in dense slices keyed by that index. Distance queries
// memoize one full BFS per source, and bounded queries (WithinHops with
// small k, ShortestPath) reuse scratch buffers across calls, so repeated
// queries against the same snapshot allocate next to nothing.
//
// A Snapshot is not safe for concurrent use: the memo and scratch buffers
// mutate lazily. Every snapshot belongs to exactly one simulation run,
// which executes on a single goroutine.
type Snapshot struct {
	at  time.Duration
	ids []NodeID // sorted ascending; slice position is the dense index
	idx map[NodeID]int32
	pos []mobility.Point // by dense index
	adj [][]int32        // by dense index; neighbor indices ascending

	nbrIDs   [][]NodeID // lazy NodeID view of adj, built per node on demand
	distMemo [][]int32  // full BFS rows by source index; -1 = unreachable

	// Scratch reused by bounded BFS queries; entries are reset to -1 after
	// each use by replaying the visit queue.
	scratchDist []int32
	scratchPrev []int32
	queue       []int32
}

// index resolves a NodeID to its dense index.
func (s *Snapshot) index(id NodeID) (int32, bool) {
	i, ok := s.idx[id]
	return i, ok
}

// dists returns (and memoizes) the dense hop-distance row from the source
// index; -1 marks unreachable nodes.
func (s *Snapshot) dists(si int32) []int32 {
	if s.distMemo == nil {
		s.distMemo = make([][]int32, len(s.ids))
	}
	if d := s.distMemo[si]; d != nil {
		return d
	}
	d := make([]int32, len(s.ids))
	for i := range d {
		d[i] = -1
	}
	d[si] = 0
	q := append(s.queue[:0], si)
	for head := 0; head < len(q); head++ {
		cur := q[head]
		dc := d[cur]
		for _, nb := range s.adj[cur] {
			if d[nb] < 0 {
				d[nb] = dc + 1
				q = append(q, nb)
			}
		}
	}
	s.queue = q[:0]
	s.distMemo[si] = d
	return d
}

// At returns the instant the snapshot was taken.
func (s *Snapshot) At() time.Duration { return s.at }

// Nodes returns all node IDs in ascending order. Callers must not mutate
// the returned slice.
func (s *Snapshot) Nodes() []NodeID { return s.ids }

// Len returns the number of nodes in the snapshot.
func (s *Snapshot) Len() int { return len(s.ids) }

// Contains reports whether the node existed when the snapshot was taken.
func (s *Snapshot) Contains(id NodeID) bool {
	_, ok := s.idx[id]
	return ok
}

// Position returns the node's position in the snapshot.
func (s *Snapshot) Position(id NodeID) (mobility.Point, bool) {
	i, ok := s.index(id)
	if !ok {
		return mobility.Point{}, false
	}
	return s.pos[i], true
}

// Neighbors returns the node's one-hop neighbors in ascending order.
// Callers must not mutate the returned slice.
func (s *Snapshot) Neighbors(id NodeID) []NodeID {
	i, ok := s.index(id)
	if !ok {
		return nil
	}
	if s.nbrIDs == nil {
		s.nbrIDs = make([][]NodeID, len(s.ids))
	}
	if s.nbrIDs[i] == nil && len(s.adj[i]) > 0 {
		lst := make([]NodeID, len(s.adj[i]))
		for j, nb := range s.adj[i] {
			lst[j] = s.ids[nb]
		}
		s.nbrIDs[i] = lst
	}
	return s.nbrIDs[i]
}

// Degree returns the number of one-hop neighbors.
func (s *Snapshot) Degree(id NodeID) int {
	i, ok := s.index(id)
	if !ok {
		return 0
	}
	return len(s.adj[i])
}

// HopCount returns the length in hops of a shortest path from a to b, and
// whether b is reachable from a. HopCount(x, x) is 0 for a present node.
func (s *Snapshot) HopCount(a, b NodeID) (int, bool) {
	ai, ok := s.index(a)
	if !ok {
		return 0, false
	}
	bi, ok := s.index(b)
	if !ok {
		return 0, false
	}
	if ai == bi {
		return 0, true
	}
	d := s.dists(ai)[bi]
	if d < 0 {
		return 0, false
	}
	return int(d), true
}

// ShortestPath returns one shortest path from a to b inclusive of both
// endpoints. Ties are broken toward lower node IDs, so paths are
// deterministic (adjacency lists are ascending, so the first parent found
// is the lowest-ID one).
func (s *Snapshot) ShortestPath(a, b NodeID) ([]NodeID, bool) {
	ai, ok := s.index(a)
	if !ok {
		return nil, false
	}
	bi, ok := s.index(b)
	if !ok {
		return nil, false
	}
	if ai == bi {
		return []NodeID{a}, true
	}
	return s.shortestPathIdx(ai, bi)
}

// shortestPathIdx runs the dense BFS with parent tracking on scratch
// buffers.
func (s *Snapshot) shortestPathIdx(ai, bi int32) ([]NodeID, bool) {
	if s.scratchPrev == nil {
		s.scratchPrev = make([]int32, len(s.ids))
		for i := range s.scratchPrev {
			s.scratchPrev[i] = -1
		}
	}
	prev := s.scratchPrev
	q := append(s.queue[:0], ai)
	prev[ai] = ai
	for head := 0; head < len(q); head++ {
		cur := q[head]
		if cur == bi {
			break
		}
		for _, nb := range s.adj[cur] {
			if prev[nb] < 0 {
				prev[nb] = cur
				q = append(q, nb)
			}
		}
	}
	var path []NodeID
	found := prev[bi] >= 0
	if found {
		var rev []int32
		for cur := bi; ; cur = prev[cur] {
			rev = append(rev, cur)
			if cur == ai {
				break
			}
		}
		path = make([]NodeID, len(rev))
		for i := range rev {
			path[i] = s.ids[rev[len(rev)-1-i]]
		}
	}
	// Reset only the touched entries so the scratch is clean for the next
	// query.
	for _, i := range q {
		prev[i] = -1
	}
	s.queue = q[:0]
	if !found {
		return nil, false
	}
	return path, true
}

// WithinHops returns every node reachable from id in at most k hops, mapped
// to its hop distance. The origin is included with distance 0.
//
// Small k — the QDSet hot path queries k = 2 and 3 — runs a bounded BFS
// that stops expanding at depth k instead of walking the whole component.
func (s *Snapshot) WithinHops(id NodeID, k int) map[NodeID]int {
	si, ok := s.index(id)
	if !ok || k < 0 {
		return nil
	}
	// When the bound cannot cut the search short, or the full row is
	// already memoized, filter the full BFS (and share it with HopCount).
	if k >= len(s.ids)-1 || (s.distMemo != nil && s.distMemo[si] != nil) {
		out := make(map[NodeID]int)
		for i, d := range s.dists(si) {
			if d >= 0 && int(d) <= k {
				out[s.ids[i]] = int(d)
			}
		}
		return out
	}
	if s.scratchDist == nil {
		s.scratchDist = make([]int32, len(s.ids))
		for i := range s.scratchDist {
			s.scratchDist[i] = -1
		}
	}
	dist := s.scratchDist
	out := map[NodeID]int{id: 0}
	q := append(s.queue[:0], si)
	dist[si] = 0
	for head := 0; head < len(q); head++ {
		cur := q[head]
		dc := dist[cur]
		if int(dc) >= k {
			continue // frontier at the bound: record, do not expand
		}
		for _, nb := range s.adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dc + 1
				q = append(q, nb)
				out[s.ids[nb]] = int(dc) + 1
			}
		}
	}
	for _, i := range q {
		dist[i] = -1
	}
	s.queue = q[:0]
	return out
}

// Reachable reports whether b is in a's connected component.
func (s *Snapshot) Reachable(a, b NodeID) bool {
	_, ok := s.HopCount(a, b)
	return ok
}

// Component returns the connected component containing id, in ascending ID
// order (dense indices ascend with IDs, so no sort is needed).
func (s *Snapshot) Component(id NodeID) []NodeID {
	si, ok := s.index(id)
	if !ok {
		return nil
	}
	dist := s.dists(si)
	var out []NodeID
	for i, d := range dist {
		if d >= 0 {
			out = append(out, s.ids[i])
		}
	}
	return out
}

// Components returns every connected component, each sorted ascending, and
// the list itself ordered by the smallest member.
func (s *Snapshot) Components() [][]NodeID {
	seen := make([]bool, len(s.ids))
	var comps [][]NodeID
	for i := range s.ids {
		if seen[i] {
			continue
		}
		comp := s.Component(s.ids[i])
		for _, n := range comp {
			seen[s.idx[n]] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the longest shortest-path distance within id's
// component.
func (s *Snapshot) Diameter(id NodeID) int {
	comp := s.Component(id)
	max := 0
	for _, a := range comp {
		ai, _ := s.index(a)
		for _, d := range s.dists(ai) {
			if int(d) > max {
				max = int(d)
			}
		}
	}
	return max
}
