package radio

import (
	"math/rand"
	"testing"

	"quorumconf/internal/mobility"
)

// naiveAdjacency is the seed implementation kept as a reference: O(n²)
// pairwise distance checks building map-based neighbor lists. The grid
// snapshot must produce exactly this adjacency, and BenchmarkSnapshot200
// vs BenchmarkSnapshot200NaivePairwise quantifies what the spatial hash
// grid buys on the per-send rebuild path.
func naiveAdjacency(t *Topology, ids []NodeID, pos map[NodeID]mobility.Point) map[NodeID][]NodeID {
	adj := make(map[NodeID][]NodeID, len(ids))
	r2 := t.Range() * t.Range()
	for i, a := range ids {
		pa := pos[a]
		for _, b := range ids[i+1:] {
			pb := pos[b]
			dx, dy := pa.X-pb.X, pa.Y-pb.Y
			if dx*dx+dy*dy <= r2 {
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	return adj
}

// naiveBFS is the seed map-allocating BFS, kept for the benchmark
// comparison against the dense slice-indexed BFS.
func naiveBFS(adj map[NodeID][]NodeID, src NodeID) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		for _, n := range adj[cur] {
			if _, seen := dist[n]; !seen {
				dist[n] = d + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// randomTopology builds n uniformly placed static nodes over a 1km square.
func randomTopology(tb testing.TB, seed int64, n int, r float64) *Topology {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo, err := NewTopology(r)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if err := topo.Add(NodeID(i), mobility.Static(p)); err != nil {
			tb.Fatal(err)
		}
	}
	return topo
}

// TestGridMatchesNaivePairwise pins the spatial-grid adjacency to the seed
// O(n²) scan across a spread of densities, including nodes that land
// exactly on cell borders and a range larger than the deployment area.
func TestGridMatchesNaivePairwise(t *testing.T) {
	cases := []struct {
		seed int64
		n    int
		r    float64
	}{
		{1, 50, 150}, {2, 200, 150}, {3, 120, 60}, {4, 80, 400}, {5, 30, 1500},
	}
	for _, c := range cases {
		topo := randomTopology(t, c.seed, c.n, c.r)
		s := topo.Snapshot(0)
		ids := topo.Nodes()
		pos := make(map[NodeID]mobility.Point, len(ids))
		for _, id := range ids {
			p, _ := topo.PositionAt(id, 0)
			pos[id] = p
		}
		want := naiveAdjacency(topo, ids, pos)
		for _, id := range ids {
			got := s.Neighbors(id)
			if len(got) != len(want[id]) {
				t.Fatalf("seed=%d r=%v: Neighbors(%d) = %v, want %v", c.seed, c.r, id, got, want[id])
			}
			for i := range got {
				if got[i] != want[id][i] {
					t.Fatalf("seed=%d r=%v: Neighbors(%d) = %v, want %v", c.seed, c.r, id, got, want[id])
				}
			}
		}
	}
}

// TestGridNegativeCoordinates covers cell hashing for nodes left of or
// below the origin (mobility models are not clamped to the area).
func TestGridNegativeCoordinates(t *testing.T) {
	topo, _ := NewTopology(100)
	_ = topo.Add(0, mobility.Static(mobility.Point{X: -50, Y: -50}))
	_ = topo.Add(1, mobility.Static(mobility.Point{X: 20, Y: 20}))
	_ = topo.Add(2, mobility.Static(mobility.Point{X: -250, Y: -250}))
	s := topo.Snapshot(0)
	if d := s.Degree(0); d != 1 {
		t.Errorf("Degree(0) = %d, want 1 (node 1 within range across the origin)", d)
	}
	if d := s.Degree(2); d != 0 {
		t.Errorf("Degree(2) = %d, want 0", d)
	}
}

// TestWithinHopsBoundedMatchesFull pins the bounded-BFS fast path (small k)
// to the full-BFS filter for every k, including repeated interleaved
// queries that exercise scratch-buffer reuse.
func TestWithinHopsBoundedMatchesFull(t *testing.T) {
	topo := randomTopology(t, 7, 120, 150)
	s := topo.Snapshot(0)
	full := topo.Snapshot(0) // second snapshot: memoized-full reference
	for _, id := range []NodeID{0, 17, 63, 119} {
		// Force the reference snapshot to memoize the full row first.
		full.Component(id)
		for k := 0; k < 8; k++ {
			got := s.WithinHops(id, k)
			want := full.WithinHops(id, k)
			if len(got) != len(want) {
				t.Fatalf("WithinHops(%d,%d) = %d nodes, want %d", id, k, len(got), len(want))
			}
			for n, d := range want {
				if got[n] != d {
					t.Fatalf("WithinHops(%d,%d)[%d] = %d, want %d", id, k, n, got[n], d)
				}
			}
		}
	}
}

// BenchmarkSnapshot200 measures the grid snapshot rebuild plus the unicast
// routing pattern netstack pays after every InvalidateSnapshot: one full
// BFS (memoized) and a pair of hop-count queries at n=200, tr=150m.
func BenchmarkSnapshot200(b *testing.B) {
	topo := randomTopology(b, 1, 200, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := topo.Snapshot(0)
		s.HopCount(0, 199)
		s.HopCount(3, 150)
	}
}

// BenchmarkSnapshot200NaivePairwise is the seed path — O(n²) adjacency and
// map-based BFS — kept as the regression baseline for BenchmarkSnapshot200.
func BenchmarkSnapshot200NaivePairwise(b *testing.B) {
	topo := randomTopology(b, 1, 200, 150)
	ids := topo.Nodes()
	pos := make(map[NodeID]mobility.Point, len(ids))
	for _, id := range ids {
		p, _ := topo.PositionAt(id, 0)
		pos[id] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj := naiveAdjacency(topo, ids, pos)
		d := naiveBFS(adj, 0)
		_ = d[199]
		d2 := naiveBFS(adj, 3)
		_ = d2[150]
	}
}

// BenchmarkWithinHopsK3 measures the QDSet hot path: a depth-3 bounded BFS
// on a 200-node snapshot, repeated across sources so scratch reuse shows.
func BenchmarkWithinHopsK3(b *testing.B) {
	topo := randomTopology(b, 1, 200, 150)
	s := topo.Snapshot(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WithinHops(NodeID(i%200), 3)
	}
}
