package radio

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"quorumconf/internal/mobility"
)

// line builds a topology of n nodes spaced `gap` meters apart on the x-axis
// with transmission range r.
func line(t *testing.T, n int, gap, r float64) *Topology {
	t.Helper()
	topo, err := NewTopology(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := topo.Add(NodeID(i), mobility.Static(mobility.Point{X: float64(i) * gap})); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestNewTopologyValidation(t *testing.T) {
	for _, r := range []float64{0, -1} {
		if _, err := NewTopology(r); err == nil {
			t.Errorf("NewTopology(%v) accepted", r)
		}
	}
}

func TestAddDuplicateAndNil(t *testing.T) {
	topo, _ := NewTopology(100)
	if err := topo.Add(1, mobility.Static(mobility.Point{})); err != nil {
		t.Fatal(err)
	}
	if err := topo.Add(1, mobility.Static(mobility.Point{})); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := topo.Add(2, nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestRemoveAndHas(t *testing.T) {
	topo := line(t, 3, 50, 100)
	if !topo.Has(1) {
		t.Fatal("Has(1) = false")
	}
	topo.Remove(1)
	if topo.Has(1) {
		t.Error("Has(1) = true after Remove")
	}
	topo.Remove(1) // no-op
	if topo.Len() != 2 {
		t.Errorf("Len() = %d, want 2", topo.Len())
	}
}

func TestNodesSorted(t *testing.T) {
	topo, _ := NewTopology(10)
	for _, id := range []NodeID{5, 1, 9, 3} {
		_ = topo.Add(id, mobility.Static(mobility.Point{}))
	}
	ids := topo.Nodes()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Errorf("Nodes() = %v, want sorted", ids)
	}
}

func TestSnapshotNeighborsLine(t *testing.T) {
	// 5 nodes, 100m apart, range 150m: each node hears +-1 only.
	topo := line(t, 5, 100, 150)
	s := topo.Snapshot(0)
	cases := map[NodeID][]NodeID{
		0: {1},
		1: {0, 2},
		2: {1, 3},
		4: {3},
	}
	for id, want := range cases {
		got := s.Neighbors(id)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", id, got, want)
			}
		}
	}
}

func TestSnapshotRangeBoundaryInclusive(t *testing.T) {
	topo, _ := NewTopology(100)
	_ = topo.Add(0, mobility.Static(mobility.Point{X: 0}))
	_ = topo.Add(1, mobility.Static(mobility.Point{X: 100})) // exactly at range
	_ = topo.Add(2, mobility.Static(mobility.Point{X: 200.0001}))
	s := topo.Snapshot(0)
	if s.Degree(0) != 1 {
		t.Errorf("node at exact range not a neighbor, degree = %d", s.Degree(0))
	}
	if s.Degree(2) != 0 {
		t.Errorf("node past range is a neighbor, degree = %d", s.Degree(2))
	}
}

func TestHopCountLine(t *testing.T) {
	topo := line(t, 6, 100, 150)
	s := topo.Snapshot(0)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 5, 5}, {2, 4, 2}, {5, 0, 5},
	}
	for _, c := range cases {
		got, ok := s.HopCount(c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("HopCount(%d,%d) = %d,%v, want %d,true", c.a, c.b, got, ok, c.want)
		}
	}
}

func TestHopCountUnreachable(t *testing.T) {
	topo, _ := NewTopology(50)
	_ = topo.Add(0, mobility.Static(mobility.Point{X: 0}))
	_ = topo.Add(1, mobility.Static(mobility.Point{X: 1000}))
	s := topo.Snapshot(0)
	if _, ok := s.HopCount(0, 1); ok {
		t.Error("HopCount across partition reported reachable")
	}
	if _, ok := s.HopCount(0, 99); ok {
		t.Error("HopCount to absent node reported reachable")
	}
	if s.Reachable(0, 1) {
		t.Error("Reachable across partition = true")
	}
}

func TestShortestPathEndpointsAndLength(t *testing.T) {
	topo := line(t, 5, 100, 150)
	s := topo.Snapshot(0)
	path, ok := s.ShortestPath(0, 4)
	if !ok {
		t.Fatal("no path found on connected line")
	}
	if path[0] != 0 || path[len(path)-1] != 4 {
		t.Errorf("path endpoints = %v", path)
	}
	if len(path) != 5 {
		t.Errorf("path length = %d, want 5 nodes", len(path))
	}
	self, ok := s.ShortestPath(2, 2)
	if !ok || len(self) != 1 || self[0] != 2 {
		t.Errorf("ShortestPath(2,2) = %v,%v", self, ok)
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	// Grid with two equal-cost routes; tie-break must be stable.
	topo, _ := NewTopology(110)
	pts := map[NodeID]mobility.Point{
		0: {X: 0, Y: 0}, 1: {X: 100, Y: 0}, 2: {X: 0, Y: 100},
		3: {X: 100, Y: 100},
	}
	for id, p := range pts {
		_ = topo.Add(id, mobility.Static(p))
	}
	s := topo.Snapshot(0)
	first, ok := s.ShortestPath(0, 3)
	if !ok {
		t.Fatal("no path")
	}
	for i := 0; i < 10; i++ {
		again, _ := s.ShortestPath(0, 3)
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("path changed between calls: %v vs %v", first, again)
			}
		}
	}
}

func TestWithinHops(t *testing.T) {
	topo := line(t, 6, 100, 150)
	s := topo.Snapshot(0)
	within := s.WithinHops(2, 2)
	want := map[NodeID]int{0: 2, 1: 1, 2: 0, 3: 1, 4: 2}
	if len(within) != len(want) {
		t.Fatalf("WithinHops(2,2) = %v, want %v", within, want)
	}
	for id, d := range want {
		if within[id] != d {
			t.Errorf("WithinHops[%d] = %d, want %d", id, within[id], d)
		}
	}
	if got := s.WithinHops(2, 0); len(got) != 1 || got[2] != 0 {
		t.Errorf("WithinHops(2,0) = %v, want only origin", got)
	}
	if got := s.WithinHops(99, 2); got != nil {
		t.Errorf("WithinHops(absent) = %v, want nil", got)
	}
	if got := s.WithinHops(2, -1); got != nil {
		t.Errorf("WithinHops(k<0) = %v, want nil", got)
	}
}

func TestComponents(t *testing.T) {
	topo, _ := NewTopology(120)
	// Two clusters: {0,1,2} around origin, {10,11} far away.
	for i, p := range []mobility.Point{{X: 0}, {X: 100}, {X: 200}} {
		_ = topo.Add(NodeID(i), mobility.Static(p))
	}
	_ = topo.Add(10, mobility.Static(mobility.Point{X: 5000}))
	_ = topo.Add(11, mobility.Static(mobility.Point{X: 5100}))
	s := topo.Snapshot(0)
	comps := s.Components()
	if len(comps) != 2 {
		t.Fatalf("Components() = %v, want 2 components", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 10 {
		t.Errorf("second component = %v, want [10 11]", comps[1])
	}
	if got := s.Component(11); len(got) != 2 {
		t.Errorf("Component(11) = %v", got)
	}
	if got := s.Component(99); got != nil {
		t.Errorf("Component(absent) = %v, want nil", got)
	}
}

func TestSnapshotImmutableAfterTopologyChange(t *testing.T) {
	topo := line(t, 3, 100, 150)
	s := topo.Snapshot(0)
	topo.Remove(1)
	if !s.Contains(1) {
		t.Error("snapshot lost node after topology change")
	}
	if d, ok := s.HopCount(0, 2); !ok || d != 2 {
		t.Errorf("snapshot HopCount(0,2) = %d,%v after removal, want 2,true", d, ok)
	}
}

func TestSnapshotTracksMobility(t *testing.T) {
	topo, _ := NewTopology(150)
	path, err := mobility.NewPath(
		[]time.Duration{0, 10 * time.Second},
		[]mobility.Point{{X: 0}, {X: 1000}},
	)
	if err != nil {
		t.Fatal(err)
	}
	_ = topo.Add(0, path)
	_ = topo.Add(1, mobility.Static(mobility.Point{X: 100}))
	if s := topo.Snapshot(0); s.Degree(0) != 1 {
		t.Error("nodes not connected at t=0")
	}
	if s := topo.Snapshot(10 * time.Second); s.Degree(0) != 0 {
		t.Error("nodes still connected after node 0 moved 1km away")
	}
}

func TestDiameter(t *testing.T) {
	topo := line(t, 5, 100, 150)
	s := topo.Snapshot(0)
	if d := s.Diameter(0); d != 4 {
		t.Errorf("Diameter = %d, want 4", d)
	}
}

// randomSnapshot builds a uniform random layout for property tests.
func randomSnapshot(seed int64, n int, r float64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	topo, _ := NewTopology(r)
	for i := 0; i < n; i++ {
		p := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		_ = topo.Add(NodeID(i), mobility.Static(p))
	}
	return topo.Snapshot(0)
}

// Property: hop counts are symmetric and satisfy the triangle inequality.
func TestPropertyHopMetric(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSnapshot(seed, 30, 250)
		rng := rand.New(rand.NewSource(seed ^ 0x5ad))
		for trial := 0; trial < 10; trial++ {
			a := NodeID(rng.Intn(30))
			b := NodeID(rng.Intn(30))
			c := NodeID(rng.Intn(30))
			ab, okAB := s.HopCount(a, b)
			ba, okBA := s.HopCount(b, a)
			if okAB != okBA || (okAB && ab != ba) {
				return false
			}
			ac, okAC := s.HopCount(a, c)
			cb, okCB := s.HopCount(c, b)
			if okAC && okCB {
				if !okAB || ab > ac+cb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ShortestPath length equals HopCount+1 and consecutive path
// nodes are actually neighbors.
func TestPropertyPathConsistency(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSnapshot(seed, 25, 300)
		rng := rand.New(rand.NewSource(seed ^ 0xfeed))
		for trial := 0; trial < 10; trial++ {
			a := NodeID(rng.Intn(25))
			b := NodeID(rng.Intn(25))
			hops, ok := s.HopCount(a, b)
			path, okP := s.ShortestPath(a, b)
			if ok != okP {
				return false
			}
			if !ok {
				continue
			}
			if len(path) != hops+1 {
				return false
			}
			for i := 1; i < len(path); i++ {
				found := false
				for _, n := range s.Neighbors(path[i-1]) {
					if n == path[i] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: components partition the node set.
func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSnapshot(seed, 40, 180)
		seen := map[NodeID]int{}
		total := 0
		for _, comp := range s.Components() {
			for _, id := range comp {
				seen[id]++
				total++
			}
		}
		if total != s.Len() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSnapshot200Nodes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	topo, _ := NewTopology(150)
	for i := 0; i < 200; i++ {
		p := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		_ = topo.Add(NodeID(i), mobility.Static(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Snapshot(0)
	}
}

func BenchmarkHopCount200Nodes(b *testing.B) {
	s := randomSnapshot(1, 200, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HopCount(0, 199)
	}
}
