package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quorumconf/internal/mobility"
	"quorumconf/internal/radio"
)

// lineSnap builds an n-node line, 100m spacing, 150m range: hop distance
// equals index distance.
func lineSnap(t *testing.T, n int) *radio.Snapshot {
	t.Helper()
	topo, err := radio.NewTopology(150)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := topo.Add(radio.NodeID(i), mobility.Static(mobility.Point{X: float64(i) * 100})); err != nil {
			t.Fatal(err)
		}
	}
	return topo.Snapshot(0)
}

func headSet(ids ...radio.NodeID) HeadFunc {
	set := map[radio.NodeID]bool{}
	for _, id := range ids {
		set[id] = true
	}
	return func(id radio.NodeID) bool { return set[id] }
}

func TestHeadsWithin(t *testing.T) {
	snap := lineSnap(t, 8)
	isHead := headSet(0, 3, 6)
	got := HeadsWithin(snap, 3, 3, isHead)
	if len(got) != 2 || got[0] != 0 || got[1] != 6 {
		t.Errorf("HeadsWithin(3, 3) = %v, want [0 6]", got)
	}
	got = HeadsWithin(snap, 3, 2, isHead)
	if len(got) != 0 {
		t.Errorf("HeadsWithin(3, 2) = %v, want empty (heads are 3 hops away)", got)
	}
	got = HeadsWithin(snap, 0, 3, isHead)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("HeadsWithin(0, 3) = %v, want [3]", got)
	}
}

func TestEligibleHead(t *testing.T) {
	snap := lineSnap(t, 8)
	isHead := headSet(0)
	if EligibleHead(snap, 1, isHead) {
		t.Error("node 1 eligible with head 1 hop away")
	}
	if EligibleHead(snap, 2, isHead) {
		t.Error("node 2 eligible with head 2 hops away")
	}
	if !EligibleHead(snap, 3, isHead) {
		t.Error("node 3 not eligible with nearest head 3 hops away")
	}
	if !EligibleHead(snap, 7, isHead) {
		t.Error("node 7 not eligible")
	}
}

func TestQDSetUsesThreeHops(t *testing.T) {
	snap := lineSnap(t, 10)
	isHead := headSet(0, 3, 7, 9)
	got := QDSet(snap, 3, isHead)
	// Head 0 at 3 hops: in. Head 7 at 4 hops: out. Head 9 at 6 hops: out.
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("QDSet(3) = %v, want [0]", got)
	}
	got = QDSet(snap, 7, isHead)
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("QDSet(7) = %v, want [9]", got)
	}
}

func TestNearest(t *testing.T) {
	snap := lineSnap(t, 10)
	isHead := headSet(0, 7)
	id, d, ok := Nearest(snap, 2, isHead)
	if !ok || id != 0 || d != 2 {
		t.Errorf("Nearest(2) = %v,%d,%v, want 0,2,true", id, d, ok)
	}
	id, d, ok = Nearest(snap, 5, isHead)
	if !ok || id != 7 || d != 2 {
		t.Errorf("Nearest(5) = %v,%d,%v, want 7,2,true", id, d, ok)
	}
}

func TestNearestTieBreaksLowID(t *testing.T) {
	snap := lineSnap(t, 9)
	isHead := headSet(2, 6)
	id, d, ok := Nearest(snap, 4, isHead) // both heads 2 hops away
	if !ok || id != 2 || d != 2 {
		t.Errorf("Nearest(4) = %v,%d,%v, want 2,2,true (low-ID tie-break)", id, d, ok)
	}
}

func TestNearestNoHeads(t *testing.T) {
	snap := lineSnap(t, 3)
	if _, _, ok := Nearest(snap, 1, headSet()); ok {
		t.Error("Nearest found a head in headless network")
	}
	if _, _, ok := Nearest(snap, 99, headSet(0)); ok {
		t.Error("Nearest from absent node reported ok")
	}
}

func TestNearestIgnoresUnreachableHeads(t *testing.T) {
	topo, _ := radio.NewTopology(150)
	_ = topo.Add(0, mobility.Static(mobility.Point{X: 0}))
	_ = topo.Add(1, mobility.Static(mobility.Point{X: 100}))
	_ = topo.Add(5, mobility.Static(mobility.Point{X: 5000})) // isolated head
	snap := topo.Snapshot(0)
	if _, _, ok := Nearest(snap, 0, headSet(5)); ok {
		t.Error("Nearest returned unreachable head")
	}
}

func TestViolations(t *testing.T) {
	snap := lineSnap(t, 6)
	// Heads 2 and 3 are one-hop neighbors: violation. Heads 0 and 2 are
	// two hops apart: allowed.
	v := Violations(snap, []radio.NodeID{0, 2, 3})
	if len(v) != 1 || v[0] != (Violation{A: 2, B: 3}) {
		t.Errorf("Violations = %v, want [{2 3}]", v)
	}
	if v := Violations(snap, []radio.NodeID{0, 2, 4}); len(v) != 0 {
		t.Errorf("Violations = %v, want none", v)
	}
}

func TestMembers(t *testing.T) {
	snap := lineSnap(t, 7)
	isHead := headSet(0, 4)
	m := Members(snap, 0, isHead)
	// Nodes 1,2 nearest to head 0 (node 2 ties 2-2, low-ID wins → 0).
	if len(m) != 2 || m[0] != 1 || m[1] != 2 {
		t.Errorf("Members(0) = %v, want [1 2]", m)
	}
	m = Members(snap, 4, isHead)
	if len(m) != 3 || m[0] != 3 || m[1] != 5 || m[2] != 6 {
		t.Errorf("Members(4) = %v, want [3 5 6]", m)
	}
}

// greedyHeads runs the paper's arrival-order head formation over a random
// static layout: each node in ID order becomes a head iff no head is
// within two hops.
func greedyHeads(snap *radio.Snapshot) map[radio.NodeID]bool {
	heads := map[radio.NodeID]bool{}
	isHead := func(id radio.NodeID) bool { return heads[id] }
	for _, id := range snap.Nodes() {
		if EligibleHead(snap, id, isHead) {
			heads[id] = true
		}
	}
	return heads
}

// Property: greedy formation never creates neighboring heads, and every
// non-head has a head within two hops (cluster coverage).
func TestPropertyGreedyFormationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := radio.NewTopology(150)
		if err != nil {
			return false
		}
		for i := 0; i < 60; i++ {
			p := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			if err := topo.Add(radio.NodeID(i), mobility.Static(p)); err != nil {
				return false
			}
		}
		snap := topo.Snapshot(0)
		heads := greedyHeads(snap)
		var headList []radio.NodeID
		for h := range heads {
			headList = append(headList, h)
		}
		if len(Violations(snap, headList)) != 0 {
			return false
		}
		isHead := func(id radio.NodeID) bool { return heads[id] }
		for _, id := range snap.Nodes() {
			if heads[id] {
				continue
			}
			if len(HeadsWithin(snap, id, 2, isHead)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: QDSet relation is symmetric under distance (if B is in A's
// 3-hop set then A is in B's).
func TestPropertyQDSetSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := radio.NewTopology(200)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			p := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			if err := topo.Add(radio.NodeID(i), mobility.Static(p)); err != nil {
				return false
			}
		}
		snap := topo.Snapshot(0)
		heads := greedyHeads(snap)
		isHead := func(id radio.NodeID) bool { return heads[id] }
		for h := range heads {
			for _, other := range QDSet(snap, h, isHead) {
				back := QDSet(snap, other, isHead)
				found := false
				for _, b := range back {
					if b == h {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
