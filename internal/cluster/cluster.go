// Package cluster encodes the paper's clustering rules as pure functions
// over a connectivity snapshot. Clusters form dynamically as nodes enter:
// a node that hears a cluster head within two hops joins as a common node,
// otherwise it becomes a new cluster head. Consequently two cluster heads
// are never neighbors. A head's QDSet is the set of adjacent cluster heads
// within three hops; it is the electorate for quorum voting and the
// replica set for the head's IPSpace.
package cluster

import (
	"sort"

	"quorumconf/internal/radio"
)

// HeadFunc reports whether a node currently acts as a cluster head.
type HeadFunc func(radio.NodeID) bool

// HeadsWithin returns all cluster heads within k hops of id (excluding id
// itself), in ascending ID order.
func HeadsWithin(snap *radio.Snapshot, id radio.NodeID, k int, isHead HeadFunc) []radio.NodeID {
	var heads []radio.NodeID
	for other := range snap.WithinHops(id, k) {
		if other != id && isHead(other) {
			heads = append(heads, other)
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return heads
}

// EligibleHead reports whether id may declare itself a cluster head: no
// existing head within two hops.
func EligibleHead(snap *radio.Snapshot, id radio.NodeID, isHead HeadFunc) bool {
	return len(HeadsWithin(snap, id, 2, isHead)) == 0
}

// QDSet returns id's adjacent cluster heads within three hops — the
// replica holders and quorum electorate for id's IPSpace.
func QDSet(snap *radio.Snapshot, id radio.NodeID, isHead HeadFunc) []radio.NodeID {
	return HeadsWithin(snap, id, 3, isHead)
}

// Nearest returns the closest cluster head to id by hop count, together
// with the distance. Ties break toward the lower node ID. The third result
// is false when no head is reachable.
func Nearest(snap *radio.Snapshot, id radio.NodeID, isHead HeadFunc) (radio.NodeID, int, bool) {
	if !snap.Contains(id) {
		return 0, 0, false
	}
	// Search the whole component; WithinHops with the component bound.
	dist := snap.WithinHops(id, snap.Len())
	best := radio.NodeID(0)
	bestD := -1
	for other, d := range dist {
		if other == id || !isHead(other) {
			continue
		}
		if bestD == -1 || d < bestD || (d == bestD && other < best) {
			best, bestD = other, d
		}
	}
	if bestD == -1 {
		return 0, 0, false
	}
	return best, bestD, true
}

// Violation is a pair of cluster heads that are too close to each other
// (the paper's invariant: heads are at least two hops apart, i.e. never
// one-hop neighbors).
type Violation struct {
	A, B radio.NodeID
}

// Violations returns every pair of heads that are one-hop neighbors, in
// deterministic (A < B, then ascending) order. Mobility can create such
// pairs transiently; the protocol tolerates them, and tests use this to
// assert the invariant holds at formation time.
func Violations(snap *radio.Snapshot, heads []radio.NodeID) []Violation {
	isHead := make(map[radio.NodeID]bool, len(heads))
	for _, h := range heads {
		isHead[h] = true
	}
	var out []Violation
	for _, h := range heads {
		for _, nb := range snap.Neighbors(h) {
			if isHead[nb] && h < nb {
				out = append(out, Violation{A: h, B: nb})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Members returns the nodes (excluding heads) whose nearest head is h —
// the cluster of h under nearest-head assignment. Used by layout tooling
// and tests; the protocol itself tracks membership explicitly through
// configuration.
func Members(snap *radio.Snapshot, h radio.NodeID, isHead HeadFunc) []radio.NodeID {
	var members []radio.NodeID
	for _, id := range snap.Nodes() {
		if id == h || isHead(id) {
			continue
		}
		if nh, _, ok := Nearest(snap, id, isHead); ok && nh == h {
			members = append(members, id)
		}
	}
	return members
}
