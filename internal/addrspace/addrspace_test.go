package addrspace

import (
	"math"
	"testing"
	"testing/quick"
)

func mustBlock(t *testing.T, lo, hi Addr) Block {
	t.Helper()
	b, err := NewBlock(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustTable(t *testing.T, b Block) *Table {
	t.Helper()
	tab, err := NewTable(b)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestAddrString(t *testing.T) {
	cases := map[Addr]string{
		0:              "0.0.0.0",
		0x0A000001:     "10.0.0.1",
		0xC0A80101:     "192.168.1.1",
		math.MaxUint32: "255.255.255.255",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("Addr(%d).String() = %q, want %q", uint32(a), got, want)
		}
	}
}

func TestNewBlockValidation(t *testing.T) {
	if _, err := NewBlock(10, 5); err == nil {
		t.Error("NewBlock(10,5) accepted")
	}
	b, err := NewBlock(5, 5)
	if err != nil {
		t.Fatalf("single-address block rejected: %v", err)
	}
	if b.Size() != 1 {
		t.Errorf("Size = %d, want 1", b.Size())
	}
}

func TestBlockBasics(t *testing.T) {
	b := mustBlock(t, 100, 199)
	if b.Size() != 100 {
		t.Errorf("Size = %d, want 100", b.Size())
	}
	if !b.Contains(100) || !b.Contains(199) || !b.Contains(150) {
		t.Error("Contains false for in-range address")
	}
	if b.Contains(99) || b.Contains(200) {
		t.Error("Contains true for out-of-range address")
	}
	empty := EmptyBlock()
	if !empty.IsEmpty() || empty.Size() != 0 || empty.Contains(0) {
		t.Error("EmptyBlock not treated as empty")
	}
	var zero Block
	if zero.IsEmpty() || zero.Size() != 1 || !zero.Contains(0) {
		t.Error("zero Block is the single-address block [0,0]")
	}
}

func TestSplitHalfEven(t *testing.T) {
	b := mustBlock(t, 0, 255)
	lo, hi, err := b.SplitHalf()
	if err != nil {
		t.Fatal(err)
	}
	if lo != (Block{0, 127}) || hi != (Block{128, 255}) {
		t.Errorf("SplitHalf = %v, %v", lo, hi)
	}
	if lo.Size()+hi.Size() != b.Size() {
		t.Error("split halves do not cover original")
	}
}

func TestSplitHalfOdd(t *testing.T) {
	b := mustBlock(t, 0, 4)
	lo, hi, err := b.SplitHalf()
	if err != nil {
		t.Fatal(err)
	}
	if lo != (Block{0, 2}) || hi != (Block{3, 4}) {
		t.Errorf("SplitHalf odd = %v, %v, want 0-2, 3-4", lo, hi)
	}
}

func TestSplitHalfTooSmall(t *testing.T) {
	b := mustBlock(t, 7, 7)
	if _, _, err := b.SplitHalf(); err == nil {
		t.Error("split of size-1 block accepted")
	}
}

func TestAdjacentAndMerge(t *testing.T) {
	a := mustBlock(t, 0, 9)
	b := mustBlock(t, 10, 19)
	c := mustBlock(t, 21, 30)
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("adjacent blocks not detected")
	}
	if b.Adjacent(c) {
		t.Error("non-adjacent blocks reported adjacent")
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m != (Block{0, 19}) {
		t.Errorf("Merge = %v, want 0-19", m)
	}
	if m2, err := b.Merge(a); err != nil || m2 != m {
		t.Errorf("Merge not symmetric: %v, %v", m2, err)
	}
	if _, err := b.Merge(c); err == nil {
		t.Error("merge of non-adjacent blocks accepted")
	}
	empty := EmptyBlock()
	if empty.Adjacent(a) || a.Adjacent(empty) {
		t.Error("empty block reported adjacent")
	}
	top := mustBlock(t, math.MaxUint32-1, math.MaxUint32)
	bottom := mustBlock(t, 0, 5)
	if top.Adjacent(bottom) {
		t.Error("wraparound adjacency at top of address space")
	}
}

func TestStatusString(t *testing.T) {
	if Free.String() != "free" || Occupied.String() != "occupied" {
		t.Error("status names wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status renders empty")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(EmptyBlock()); err == nil {
		t.Error("table over empty block accepted")
	}
}

func TestTableImplicitFree(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 10, 19))
	e, ok := tab.Get(15)
	if !ok || e.Status != Free || e.Version != 0 {
		t.Errorf("Get(15) = %+v,%v, want free v0", e, ok)
	}
	if _, ok := tab.Get(9); ok {
		t.Error("Get outside block reported ok")
	}
	if tab.FreeCount() != 10 || tab.OccupiedCount() != 0 {
		t.Errorf("counts = %d free / %d occ", tab.FreeCount(), tab.OccupiedCount())
	}
}

func TestMarkBumpsVersion(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 9))
	e1, err := tab.Mark(3, Occupied)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Status != Occupied || e1.Version != 1 {
		t.Errorf("first Mark = %+v, want occupied v1", e1)
	}
	e2, _ := tab.Mark(3, Free)
	if e2.Status != Free || e2.Version != 2 {
		t.Errorf("second Mark = %+v, want free v2", e2)
	}
	if _, err := tab.Mark(100, Occupied); err == nil {
		t.Error("Mark outside block accepted")
	}
}

func TestSetValidation(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 9))
	if err := tab.Set(5, Entry{Status: Occupied, Version: 7}); err != nil {
		t.Fatal(err)
	}
	if e, _ := tab.Get(5); e.Version != 7 {
		t.Errorf("Set did not store version, got %+v", e)
	}
	if err := tab.Set(50, Entry{Status: Free}); err == nil {
		t.Error("Set outside block accepted")
	}
	if err := tab.Set(5, Entry{Status: Status(0)}); err == nil {
		t.Error("Set with invalid status accepted")
	}
}

func TestFirstFreeSkipsOccupied(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 3))
	for _, a := range []Addr{0, 1} {
		if _, err := tab.Mark(a, Occupied); err != nil {
			t.Fatal(err)
		}
	}
	a, ok := tab.FirstFree()
	if !ok || a != 2 {
		t.Errorf("FirstFree = %v,%v, want 2,true", a, ok)
	}
}

func TestFirstFreeExhausted(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 2))
	for a := Addr(0); a <= 2; a++ {
		if _, err := tab.Mark(a, Occupied); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := tab.FirstFree(); ok {
		t.Error("FirstFree found address in full table")
	}
	if tab.FreeCount() != 0 {
		t.Errorf("FreeCount = %d, want 0", tab.FreeCount())
	}
}

func TestFirstFreeAtMaxAddrNoOverflow(t *testing.T) {
	tab := mustTable(t, mustBlock(t, math.MaxUint32-1, math.MaxUint32))
	if _, err := tab.Mark(math.MaxUint32-1, Occupied); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Mark(math.MaxUint32, Occupied); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.FirstFree(); ok {
		t.Error("FirstFree found address in full table at address-space edge")
	}
}

func TestOccupiedSorted(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 9))
	for _, a := range []Addr{7, 2, 5} {
		if _, err := tab.Mark(a, Occupied); err != nil {
			t.Fatal(err)
		}
	}
	occ := tab.Occupied()
	want := []Addr{2, 5, 7}
	if len(occ) != len(want) {
		t.Fatalf("Occupied = %v, want %v", occ, want)
	}
	for i := range want {
		if occ[i] != want[i] {
			t.Fatalf("Occupied = %v, want %v", occ, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 9))
	if _, err := tab.Mark(1, Occupied); err != nil {
		t.Fatal(err)
	}
	c := tab.Clone()
	if _, err := c.Mark(2, Occupied); err != nil {
		t.Fatal(err)
	}
	if e, _ := tab.Get(2); e.Status == Occupied {
		t.Error("mutating clone affected original")
	}
	if e, _ := c.Get(1); e.Status != Occupied {
		t.Error("clone lost entry")
	}
}

func TestAdoptNewer(t *testing.T) {
	local := mustTable(t, mustBlock(t, 0, 9))
	if err := local.Set(1, Entry{Status: Occupied, Version: 5}); err != nil {
		t.Fatal(err)
	}
	remote := mustTable(t, mustBlock(t, 0, 9))
	if err := remote.Set(1, Entry{Status: Free, Version: 3}); err != nil { // stale
		t.Fatal(err)
	}
	if err := remote.Set(2, Entry{Status: Occupied, Version: 4}); err != nil { // fresh
		t.Fatal(err)
	}
	n := local.AdoptNewer(remote)
	if n != 1 {
		t.Errorf("AdoptNewer = %d entries, want 1", n)
	}
	if e, _ := local.Get(1); e.Version != 5 || e.Status != Occupied {
		t.Errorf("stale entry overwrote fresh: %+v", e)
	}
	if e, _ := local.Get(2); e.Version != 4 || e.Status != Occupied {
		t.Errorf("fresh entry not adopted: %+v", e)
	}
	if local.AdoptNewer(nil) != 0 {
		t.Error("AdoptNewer(nil) != 0")
	}
}

func TestAdoptNewerIgnoresOutOfBlock(t *testing.T) {
	local := mustTable(t, mustBlock(t, 0, 4))
	remote := mustTable(t, mustBlock(t, 0, 9))
	if err := remote.Set(8, Entry{Status: Occupied, Version: 9}); err != nil {
		t.Fatal(err)
	}
	if n := local.AdoptNewer(remote); n != 0 {
		t.Errorf("adopted %d out-of-block entries", n)
	}
}

func TestTableSplitCarriesState(t *testing.T) {
	tab := mustTable(t, mustBlock(t, 0, 9))
	if _, err := tab.Mark(2, Occupied); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Mark(8, Occupied); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := tab.Split()
	if err != nil {
		t.Fatal(err)
	}
	if lo.Block() != (Block{0, 4}) || hi.Block() != (Block{5, 9}) {
		t.Fatalf("split blocks = %v, %v", lo.Block(), hi.Block())
	}
	if e, _ := lo.Get(2); e.Status != Occupied {
		t.Error("lower half lost occupied entry")
	}
	if e, _ := hi.Get(8); e.Status != Occupied {
		t.Error("upper half lost occupied entry")
	}
	if lo.OccupiedCount() != 1 || hi.OccupiedCount() != 1 {
		t.Errorf("occupied counts = %d, %d", lo.OccupiedCount(), hi.OccupiedCount())
	}
}

func TestAbsorb(t *testing.T) {
	a := mustTable(t, mustBlock(t, 0, 4))
	b := mustTable(t, mustBlock(t, 5, 9))
	if _, err := b.Mark(7, Occupied); err != nil {
		t.Fatal(err)
	}
	if err := a.Absorb(b); err != nil {
		t.Fatal(err)
	}
	if a.Block() != (Block{0, 9}) {
		t.Errorf("absorbed block = %v", a.Block())
	}
	if e, _ := a.Get(7); e.Status != Occupied {
		t.Error("absorbed entry lost")
	}
	c := mustTable(t, mustBlock(t, 20, 29))
	if err := a.Absorb(c); err == nil {
		t.Error("absorb of non-adjacent table accepted")
	}
	if err := a.Absorb(nil); err == nil {
		t.Error("absorb nil accepted")
	}
}

// Property: SplitHalf partitions any block of size >= 2 exactly.
func TestPropertySplitPartition(t *testing.T) {
	f := func(lo uint16, span uint16) bool {
		b := Block{Lo: Addr(lo), Hi: Addr(lo) + Addr(span) + 1} // size >= 2
		l, u, err := b.SplitHalf()
		if err != nil {
			return false
		}
		if l.Size()+u.Size() != b.Size() {
			return false
		}
		if l.Hi+1 != u.Lo || l.Lo != b.Lo || u.Hi != b.Hi {
			return false
		}
		// Lower half keeps the extra address on odd sizes.
		return l.Size() >= u.Size() && l.Size()-u.Size() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: repeated splits followed by merges restore the original block.
func TestPropertySplitMergeRoundTrip(t *testing.T) {
	f := func(lo uint16, span uint8) bool {
		b := Block{Lo: Addr(lo), Hi: Addr(lo) + Addr(span) + 1}
		l, u, err := b.SplitHalf()
		if err != nil {
			return false
		}
		m, err := l.Merge(u)
		return err == nil && m == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: versions are monotonically non-decreasing under any Mark
// sequence.
func TestPropertyVersionMonotonic(t *testing.T) {
	f := func(ops []bool) bool {
		tab, err := NewTable(Block{Lo: 0, Hi: 0})
		if err != nil {
			return false
		}
		var last uint64
		for _, occupy := range ops {
			st := Free
			if occupy {
				st = Occupied
			}
			e, err := tab.Mark(0, st)
			if err != nil || e.Version <= last {
				return false
			}
			last = e.Version
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FreeCount + OccupiedCount == Size under random marking.
func TestPropertyCountsSum(t *testing.T) {
	f := func(marks []uint8) bool {
		tab, err := NewTable(Block{Lo: 0, Hi: 255})
		if err != nil {
			return false
		}
		for _, m := range marks {
			st := Occupied
			if m%3 == 0 {
				st = Free
			}
			if _, err := tab.Mark(Addr(m), st); err != nil {
				return false
			}
		}
		return tab.FreeCount()+tab.OccupiedCount() == tab.Block().Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
