// Package addrspace manages IPv4 address blocks the way the paper's
// protocol distributes them: the first cluster head owns the whole space,
// and every new cluster head receives half of its allocator's remaining
// block (binary buddy splitting). Each address copy carries a version
// ("time stamp" in the paper): zero initially, incremented on every update.
// Quorum voting compares versions to decide which replica is freshest.
package addrspace

import (
	"fmt"
	"sort"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Parse is the inverse of Addr.String: it reads a dotted quad.
func Parse(s string) (Addr, error) {
	var b [4]int
	if n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3]); n != 4 || err != nil {
		return 0, fmt.Errorf("addrspace: bad address %q", s)
	}
	var a Addr
	for _, octet := range b {
		if octet < 0 || octet > 255 {
			return 0, fmt.Errorf("addrspace: bad address %q", s)
		}
		a = a<<8 | Addr(octet)
	}
	return a, nil
}

// Block is an inclusive contiguous address range [Lo, Hi]. A block with
// Lo > Hi is empty (use EmptyBlock); note the zero Block is the valid
// single-address block [0, 0], not the empty block.
type Block struct {
	Lo, Hi Addr
}

// EmptyBlock returns the canonical empty block.
func EmptyBlock() Block { return Block{Lo: 1, Hi: 0} }

// NewBlock returns the block [lo, hi]; lo must not exceed hi.
func NewBlock(lo, hi Addr) (Block, error) {
	if lo > hi {
		return Block{}, fmt.Errorf("addrspace: block lo %v > hi %v", lo, hi)
	}
	return Block{Lo: lo, Hi: hi}, nil
}

// IsEmpty reports whether the block holds no addresses.
func (b Block) IsEmpty() bool { return b.Lo > b.Hi }

// Size returns the number of addresses in the block.
func (b Block) Size() uint32 {
	if b.IsEmpty() {
		return 0
	}
	return uint32(b.Hi - b.Lo + 1)
}

// Contains reports whether a falls inside the block.
func (b Block) Contains(a Addr) bool {
	return !b.IsEmpty() && a >= b.Lo && a <= b.Hi
}

// SplitHalf divides the block into a lower and an upper half. When the size
// is odd the lower half keeps the extra address. Splitting a block of size
// < 2 is an error.
func (b Block) SplitHalf() (lower, upper Block, err error) {
	if b.Size() < 2 {
		return Block{}, Block{}, fmt.Errorf("addrspace: cannot split block %v of size %d", b, b.Size())
	}
	mid := b.Lo + Addr(b.Size()/2) // first address of the upper half
	if b.Size()%2 == 1 {
		mid = b.Lo + Addr(b.Size()/2+1)
	}
	return Block{Lo: b.Lo, Hi: mid - 1}, Block{Lo: mid, Hi: b.Hi}, nil
}

// Adjacent reports whether c begins immediately after b or vice versa.
func (b Block) Adjacent(c Block) bool {
	if b.IsEmpty() || c.IsEmpty() {
		return false
	}
	// Guard the Hi+1 increments against uint32 wraparound at the top of
	// the address space.
	const maxAddr = Addr(^uint32(0))
	return (b.Hi != maxAddr && b.Hi+1 == c.Lo) || (c.Hi != maxAddr && c.Hi+1 == b.Lo)
}

// Merge joins two adjacent blocks into one.
func (b Block) Merge(c Block) (Block, error) {
	if !b.Adjacent(c) {
		return Block{}, fmt.Errorf("addrspace: blocks %v and %v are not adjacent", b, c)
	}
	if b.Lo > c.Lo {
		b, c = c, b
	}
	return Block{Lo: b.Lo, Hi: c.Hi}, nil
}

// String renders the block as "lo-hi".
func (b Block) String() string {
	if b.IsEmpty() {
		return "<empty>"
	}
	return fmt.Sprintf("%v-%v", b.Lo, b.Hi)
}

// Status is the allocation state of one address.
type Status uint8

// Allocation states.
const (
	Free Status = iota + 1
	Occupied
)

// String returns "free" or "occupied".
func (s Status) String() string {
	switch s {
	case Free:
		return "free"
	case Occupied:
		return "occupied"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Entry is one address's replicated state: its status plus the version
// counter the paper calls a time stamp.
type Entry struct {
	Status  Status
	Version uint64
}

// Newer reports whether e carries fresher information than o.
func (e Entry) Newer(o Entry) bool { return e.Version > o.Version }

// Table tracks per-address state for one block. Addresses without an
// explicit entry are implicitly {Free, 0}, so a fresh table allocates no
// per-address storage. Tables are the unit of replication: a cluster head's
// IPSpace is a Table, and each replica in a QuorumSpace is a copy of one.
type Table struct {
	block   Block
	entries map[Addr]Entry
}

// NewTable creates a table over the given non-empty block with every
// address implicitly free at version zero.
func NewTable(b Block) (*Table, error) {
	if b.IsEmpty() {
		return nil, fmt.Errorf("addrspace: table over empty block")
	}
	return &Table{block: b, entries: make(map[Addr]Entry)}, nil
}

// Block returns the address range this table covers.
func (t *Table) Block() Block { return t.block }

// Get returns the entry for a. The second result is false when a is outside
// the table's block.
func (t *Table) Get(a Addr) (Entry, bool) {
	if !t.block.Contains(a) {
		return Entry{}, false
	}
	if e, ok := t.entries[a]; ok {
		return e, true
	}
	return Entry{Status: Free, Version: 0}, true
}

// Set overwrites the entry for a (used when adopting fresher replicated
// state; it does not bump the version).
func (t *Table) Set(a Addr, e Entry) error {
	if !t.block.Contains(a) {
		return fmt.Errorf("addrspace: %v outside block %v", a, t.block)
	}
	if e.Status != Free && e.Status != Occupied {
		return fmt.Errorf("addrspace: invalid status %v", e.Status)
	}
	t.entries[a] = e
	return nil
}

// Mark transitions a to the given status, bumping the version. It returns
// the new entry.
func (t *Table) Mark(a Addr, s Status) (Entry, error) {
	cur, ok := t.Get(a)
	if !ok {
		return Entry{}, fmt.Errorf("addrspace: %v outside block %v", a, t.block)
	}
	next := Entry{Status: s, Version: cur.Version + 1}
	t.entries[a] = next
	return next, nil
}

// FirstFree returns the lowest free address in the table.
func (t *Table) FirstFree() (Addr, bool) {
	for a := t.block.Lo; ; a++ {
		if e, _ := t.Get(a); e.Status == Free {
			return a, true
		}
		if a == t.block.Hi {
			return 0, false
		}
	}
}

// FreeCount returns how many addresses are currently free.
func (t *Table) FreeCount() uint32 {
	occupied := uint32(0)
	for _, e := range t.entries {
		if e.Status == Occupied {
			occupied++
		}
	}
	return t.block.Size() - occupied
}

// OccupiedCount returns how many addresses are currently occupied.
func (t *Table) OccupiedCount() uint32 { return t.block.Size() - t.FreeCount() }

// Occupied returns the occupied addresses in ascending order.
func (t *Table) Occupied() []Addr {
	var out []Addr
	for a, e := range t.entries {
		if e.Status == Occupied {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddrEntry pairs an address with its explicit entry, for enumeration and
// serialization.
type AddrEntry struct {
	Addr  Addr
	Entry Entry
}

// Entries returns the table's explicit entries (those that differ from the
// implicit {Free, 0} default — occupied addresses and freed addresses with
// advanced versions) in ascending address order. This is the table's entire
// replicated state besides its block, so serializers round-trip exactly
// this plus Block().
func (t *Table) Entries() []AddrEntry {
	out := make([]AddrEntry, 0, len(t.entries))
	for a, e := range t.entries {
		out = append(out, AddrEntry{Addr: a, Entry: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Clone returns a deep copy (a replica in the paper's sense).
func (t *Table) Clone() *Table {
	c := &Table{block: t.block, entries: make(map[Addr]Entry, len(t.entries))}
	for a, e := range t.entries {
		c.entries[a] = e
	}
	return c
}

// AdoptNewer copies from other every entry whose version is strictly higher
// than the local one — the read-repair step of quorum voting. Entries
// outside t's block are ignored (other may cover a different range after
// block splits). It returns the number of entries adopted.
func (t *Table) AdoptNewer(other *Table) int {
	if other == nil {
		return 0
	}
	adopted := 0
	for a, e := range other.entries {
		if !t.block.Contains(a) {
			continue
		}
		if cur, _ := t.Get(a); e.Newer(cur) {
			t.entries[a] = e
			adopted++
		}
	}
	return adopted
}

// Split divides the table into lower and upper halves, carrying each
// address's state into the half that now covers it. The receiver is
// unusable afterwards.
func (t *Table) Split() (lower, upper *Table, err error) {
	lb, ub, err := t.block.SplitHalf()
	if err != nil {
		return nil, nil, err
	}
	lower = &Table{block: lb, entries: make(map[Addr]Entry)}
	upper = &Table{block: ub, entries: make(map[Addr]Entry)}
	for a, e := range t.entries {
		if lb.Contains(a) {
			lower.entries[a] = e
		} else {
			upper.entries[a] = e
		}
	}
	t.entries = nil
	return lower, upper, nil
}

// Absorb extends the table to cover an adjacent block (a departing cluster
// head returning its IPSpace), importing the other table's entries.
func (t *Table) Absorb(other *Table) error {
	if other == nil {
		return fmt.Errorf("addrspace: absorb nil table")
	}
	merged, err := t.block.Merge(other.block)
	if err != nil {
		return err
	}
	t.block = merged
	for a, e := range other.entries {
		t.entries[a] = e
	}
	return nil
}

// String summarizes the table.
func (t *Table) String() string {
	return fmt.Sprintf("table %v (%d free / %d occupied)", t.block, t.FreeCount(), t.OccupiedCount())
}
