package addrspace

import (
	"fmt"
	"sort"
)

// Pool is an ordered collection of Tables managed by one cluster head. A
// head usually owns a single table (its buddy-split IPSpace), but graceful
// departures can return non-adjacent blocks, so the general shape is a
// list. Pool methods keep the tables sorted by block start and merge
// adjacent blocks opportunistically.
type Pool struct {
	tables []*Table
}

// NewPool builds a pool from the given tables (nil entries are skipped).
func NewPool(tabs ...*Table) *Pool {
	p := &Pool{}
	for _, t := range tabs {
		if t != nil {
			p.Add(t)
		}
	}
	return p
}

// Add inserts a table, absorbing it into an adjacent one when possible.
func (p *Pool) Add(t *Table) {
	if t == nil {
		return
	}
	for _, cur := range p.tables {
		if cur.Block().Adjacent(t.Block()) {
			if err := cur.Absorb(t); err == nil {
				p.normalize()
				return
			}
		}
	}
	p.tables = append(p.tables, t)
	p.normalize()
}

// normalize keeps tables sorted by block start and merges newly adjacent
// neighbors.
func (p *Pool) normalize() {
	sort.Slice(p.tables, func(i, j int) bool { return p.tables[i].Block().Lo < p.tables[j].Block().Lo })
	for i := 0; i+1 < len(p.tables); {
		if p.tables[i].Block().Adjacent(p.tables[i+1].Block()) {
			if err := p.tables[i].Absorb(p.tables[i+1]); err == nil {
				p.tables = append(p.tables[:i+1], p.tables[i+2:]...)
				continue
			}
		}
		i++
	}
}

// Empty reports whether the pool holds no tables.
func (p *Pool) Empty() bool { return len(p.tables) == 0 }

// Tables returns the pool's tables in block order. Callers must not mutate
// the slice; mutating the tables mutates the pool.
func (p *Pool) Tables() []*Table { return p.tables }

// Blocks returns the blocks covered, in ascending order.
func (p *Pool) Blocks() []Block {
	out := make([]Block, len(p.tables))
	for i, t := range p.tables {
		out[i] = t.Block()
	}
	return out
}

// Size returns the total number of addresses in the pool.
func (p *Pool) Size() uint32 {
	var n uint32
	for _, t := range p.tables {
		n += t.Block().Size()
	}
	return n
}

// FreeCount returns the number of free addresses across all tables.
func (p *Pool) FreeCount() uint32 {
	var n uint32
	for _, t := range p.tables {
		n += t.FreeCount()
	}
	return n
}

// OccupiedCount returns the number of occupied addresses.
func (p *Pool) OccupiedCount() uint32 { return p.Size() - p.FreeCount() }

// Contains reports whether any table covers a.
func (p *Pool) Contains(a Addr) bool {
	_, ok := p.Get(a)
	return ok
}

// Get returns the entry for a from the covering table.
func (p *Pool) Get(a Addr) (Entry, bool) {
	for _, t := range p.tables {
		if e, ok := t.Get(a); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// Set overwrites the entry for a in the covering table.
func (p *Pool) Set(a Addr, e Entry) error {
	for _, t := range p.tables {
		if t.Block().Contains(a) {
			return t.Set(a, e)
		}
	}
	return fmt.Errorf("addrspace: %v not covered by pool", a)
}

// Mark transitions a to status s, bumping its version.
func (p *Pool) Mark(a Addr, s Status) (Entry, error) {
	for _, t := range p.tables {
		if t.Block().Contains(a) {
			return t.Mark(a, s)
		}
	}
	return Entry{}, fmt.Errorf("addrspace: %v not covered by pool", a)
}

// FirstFree returns the lowest free address across the pool.
func (p *Pool) FirstFree() (Addr, bool) {
	for _, t := range p.tables {
		if a, ok := t.FirstFree(); ok {
			return a, true
		}
	}
	return 0, false
}

// FirstFreeAfter returns the lowest free address strictly greater than a.
// Used to iterate proposals when a quorum reports the previous candidate
// occupied.
func (p *Pool) FirstFreeAfter(a Addr) (Addr, bool) {
	if a == Addr(^uint32(0)) {
		return 0, false
	}
	for _, t := range p.tables {
		b := t.Block()
		if b.Hi <= a {
			continue // no addresses strictly above a in this table
		}
		start := b.Lo
		if a+1 > start {
			start = a + 1
		}
		for c := start; ; c++ {
			if e, _ := t.Get(c); e.Status != Occupied {
				return c, true
			}
			if c == b.Hi {
				break
			}
		}
	}
	return 0, false
}

// SplitLargest splits the table with the most free addresses, keeping the
// lower half in the pool and returning the upper half (the block handed to
// a new cluster head). It fails when no table has at least two addresses.
func (p *Pool) SplitLargest() (*Table, error) {
	best := -1
	var bestFree uint32
	for i, t := range p.tables {
		if t.Block().Size() < 2 {
			continue
		}
		if f := t.FreeCount(); best == -1 || f > bestFree {
			best, bestFree = i, f
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("addrspace: no splittable table in pool")
	}
	lower, upper, err := p.tables[best].Split()
	if err != nil {
		return nil, err
	}
	p.tables[best] = lower
	p.normalize()
	return upper, nil
}

// Clone deep-copies the pool (for replica distribution).
func (p *Pool) Clone() *Pool {
	c := &Pool{tables: make([]*Table, len(p.tables))}
	for i, t := range p.tables {
		c.tables[i] = t.Clone()
	}
	return c
}

// AdoptNewer merges fresher entries from other into matching tables,
// returning the number of entries adopted.
func (p *Pool) AdoptNewer(other *Pool) int {
	if other == nil {
		return 0
	}
	adopted := 0
	for _, t := range p.tables {
		for _, o := range other.tables {
			adopted += t.AdoptNewer(o)
		}
	}
	return adopted
}

// Occupied returns all occupied addresses across the pool in ascending
// order.
func (p *Pool) Occupied() []Addr {
	var out []Addr
	for _, t := range p.tables {
		out = append(out, t.Occupied()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the pool.
func (p *Pool) String() string {
	return fmt.Sprintf("pool %v (%d free / %d occupied)", p.Blocks(), p.FreeCount(), p.OccupiedCount())
}
