package addrspace

import (
	"testing"
	"testing/quick"
)

func poolOver(t *testing.T, lo, hi Addr) *Pool {
	t.Helper()
	return NewPool(mustTable(t, mustBlock(t, lo, hi)))
}

func TestNewPoolSkipsNil(t *testing.T) {
	p := NewPool(nil, nil)
	if !p.Empty() || p.Size() != 0 {
		t.Error("pool of nils not empty")
	}
}

func TestPoolAddMergesAdjacent(t *testing.T) {
	p := poolOver(t, 0, 9)
	p.Add(mustTable(t, mustBlock(t, 10, 19)))
	if len(p.Tables()) != 1 {
		t.Fatalf("adjacent tables not merged: %v", p.Blocks())
	}
	if p.Size() != 20 {
		t.Errorf("Size = %d, want 20", p.Size())
	}
}

func TestPoolAddKeepsDisjointSorted(t *testing.T) {
	p := poolOver(t, 100, 109)
	p.Add(mustTable(t, mustBlock(t, 0, 9)))
	blocks := p.Blocks()
	if len(blocks) != 2 || blocks[0].Lo != 0 || blocks[1].Lo != 100 {
		t.Errorf("Blocks = %v, want sorted [0-9, 100-109]", blocks)
	}
}

func TestPoolAddBridgesGap(t *testing.T) {
	p := poolOver(t, 0, 9)
	p.Add(mustTable(t, mustBlock(t, 20, 29)))
	p.Add(mustTable(t, mustBlock(t, 10, 19))) // bridges the two
	if len(p.Tables()) != 1 || p.Blocks()[0] != (Block{0, 29}) {
		t.Errorf("bridge merge failed: %v", p.Blocks())
	}
}

func TestPoolGetSetMark(t *testing.T) {
	p := poolOver(t, 0, 9)
	p.Add(mustTable(t, mustBlock(t, 100, 109)))
	if _, err := p.Mark(105, Occupied); err != nil {
		t.Fatal(err)
	}
	if e, ok := p.Get(105); !ok || e.Status != Occupied {
		t.Errorf("Get(105) = %+v,%v", e, ok)
	}
	if _, ok := p.Get(50); ok {
		t.Error("Get outside pool ok")
	}
	if err := p.Set(3, Entry{Status: Occupied, Version: 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(50, Entry{Status: Free, Version: 1}); err == nil {
		t.Error("Set outside pool accepted")
	}
	if _, err := p.Mark(50, Free); err == nil {
		t.Error("Mark outside pool accepted")
	}
	if !p.Contains(3) || p.Contains(50) {
		t.Error("Contains wrong")
	}
}

func TestPoolFirstFreeAcrossTables(t *testing.T) {
	p := poolOver(t, 0, 1)
	p.Add(mustTable(t, mustBlock(t, 100, 101)))
	for a := Addr(0); a <= 1; a++ {
		if _, err := p.Mark(a, Occupied); err != nil {
			t.Fatal(err)
		}
	}
	a, ok := p.FirstFree()
	if !ok || a != 100 {
		t.Errorf("FirstFree = %v,%v, want 100,true", a, ok)
	}
}

func TestPoolFirstFreeAfter(t *testing.T) {
	p := poolOver(t, 0, 4)
	p.Add(mustTable(t, mustBlock(t, 10, 14)))
	cases := []struct {
		after Addr
		want  Addr
		ok    bool
	}{
		{0, 1, true},
		{4, 10, true},
		{9, 10, true},
		{12, 13, true},
		{14, 0, false},
		{100, 0, false},
	}
	for _, c := range cases {
		got, ok := p.FirstFreeAfter(c.after)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("FirstFreeAfter(%v) = %v,%v, want %v,%v", c.after, got, ok, c.want, c.ok)
		}
	}
	if _, err := p.Mark(13, Occupied); err != nil {
		t.Fatal(err)
	}
	if got, ok := p.FirstFreeAfter(12); !ok || got != 14 {
		t.Errorf("FirstFreeAfter(12) with 13 occupied = %v,%v, want 14,true", got, ok)
	}
}

func TestPoolFirstFreeAfterMaxAddr(t *testing.T) {
	p := poolOver(t, 0, 4)
	if _, ok := p.FirstFreeAfter(Addr(^uint32(0))); ok {
		t.Error("FirstFreeAfter(max) found an address")
	}
}

func TestPoolSplitLargest(t *testing.T) {
	p := poolOver(t, 0, 9)                      // 10 free
	p.Add(mustTable(t, mustBlock(t, 100, 139))) // 40 free: the largest
	upper, err := p.SplitLargest()
	if err != nil {
		t.Fatal(err)
	}
	if upper.Block() != (Block{120, 139}) {
		t.Errorf("split upper = %v, want 120-139", upper.Block())
	}
	blocks := p.Blocks()
	if len(blocks) != 2 || blocks[1] != (Block{100, 119}) {
		t.Errorf("pool after split = %v", blocks)
	}
	if p.Size() != 30 {
		t.Errorf("pool size after split = %d, want 30", p.Size())
	}
}

func TestPoolSplitLargestUsesFreeCount(t *testing.T) {
	p := poolOver(t, 0, 9)
	big := mustTable(t, mustBlock(t, 100, 139))
	for a := Addr(100); a <= 138; a++ { // 39 of 40 occupied: 1 free
		if _, err := big.Mark(a, Occupied); err != nil {
			t.Fatal(err)
		}
	}
	p.Add(big)
	upper, err := p.SplitLargest()
	if err != nil {
		t.Fatal(err)
	}
	// The 10-address fully-free table wins over the 40-address nearly-full
	// one.
	if upper.Block() != (Block{5, 9}) {
		t.Errorf("split upper = %v, want 5-9", upper.Block())
	}
}

func TestPoolSplitLargestFailsWhenUnsplittable(t *testing.T) {
	p := poolOver(t, 7, 7)
	if _, err := p.SplitLargest(); err == nil {
		t.Error("split of single-address pool accepted")
	}
	if _, err := NewPool().SplitLargest(); err == nil {
		t.Error("split of empty pool accepted")
	}
}

func TestPoolCloneIndependent(t *testing.T) {
	p := poolOver(t, 0, 9)
	if _, err := p.Mark(1, Occupied); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if _, err := c.Mark(2, Occupied); err != nil {
		t.Fatal(err)
	}
	if e, _ := p.Get(2); e.Status == Occupied {
		t.Error("clone mutation leaked into original")
	}
	if e, _ := c.Get(1); e.Status != Occupied {
		t.Error("clone lost state")
	}
}

func TestPoolAdoptNewer(t *testing.T) {
	p := poolOver(t, 0, 9)
	o := poolOver(t, 0, 9)
	if err := o.Set(4, Entry{Status: Occupied, Version: 3}); err != nil {
		t.Fatal(err)
	}
	if n := p.AdoptNewer(o); n != 1 {
		t.Errorf("AdoptNewer = %d, want 1", n)
	}
	if e, _ := p.Get(4); e.Status != Occupied || e.Version != 3 {
		t.Errorf("entry after adopt = %+v", e)
	}
	if p.AdoptNewer(nil) != 0 {
		t.Error("AdoptNewer(nil) != 0")
	}
}

func TestPoolOccupiedSorted(t *testing.T) {
	p := poolOver(t, 100, 109)
	p.Add(mustTable(t, mustBlock(t, 0, 9)))
	for _, a := range []Addr{105, 3} {
		if _, err := p.Mark(a, Occupied); err != nil {
			t.Fatal(err)
		}
	}
	occ := p.Occupied()
	if len(occ) != 2 || occ[0] != 3 || occ[1] != 105 {
		t.Errorf("Occupied = %v, want [3 105]", occ)
	}
}

// Property: repeated SplitLargest never loses or duplicates addresses.
func TestPropertyPoolSplitConserves(t *testing.T) {
	f := func(splits uint8) bool {
		p := NewPool()
		tab, err := NewTable(Block{Lo: 0, Hi: 1023})
		if err != nil {
			return false
		}
		p.Add(tab)
		given := uint32(0)
		for i := 0; i < int(splits%20); i++ {
			up, err := p.SplitLargest()
			if err != nil {
				break // pool down to a single address: unsplittable
			}
			given += up.Block().Size()
		}
		return p.Size()+given == 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FirstFreeAfter returns strictly increasing addresses when
// iterated, and each returned address is free and pool-covered.
func TestPropertyFirstFreeAfterIterates(t *testing.T) {
	f := func(occupied []uint8) bool {
		p := NewPool()
		tab, err := NewTable(Block{Lo: 0, Hi: 255})
		if err != nil {
			return false
		}
		p.Add(tab)
		for _, a := range occupied {
			if _, err := p.Mark(Addr(a), Occupied); err != nil {
				return false
			}
		}
		prev, ok := p.FirstFree()
		if !ok {
			return p.FreeCount() == 0
		}
		count := uint32(1)
		for {
			next, ok := p.FirstFreeAfter(prev)
			if !ok {
				break
			}
			if next <= prev {
				return false
			}
			if e, covered := p.Get(next); !covered || e.Status == Occupied {
				return false
			}
			prev = next
			count++
		}
		return count == p.FreeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
