package addrspace

import "testing"

func BenchmarkTableMark(b *testing.B) {
	tab, err := NewTable(Block{Lo: 0, Hi: 65535})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Mark(Addr(i%65536), Occupied); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableFirstFreeHalfFull(b *testing.B) {
	tab, err := NewTable(Block{Lo: 0, Hi: 4095})
	if err != nil {
		b.Fatal(err)
	}
	for a := Addr(0); a < 2048; a++ {
		if _, err := tab.Mark(a, Occupied); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.FirstFree(); !ok {
			b.Fatal("no free address")
		}
	}
}

func BenchmarkPoolClone(b *testing.B) {
	tab, err := NewTable(Block{Lo: 0, Hi: 1023})
	if err != nil {
		b.Fatal(err)
	}
	p := NewPool(tab)
	for a := Addr(0); a < 512; a++ {
		if _, err := p.Mark(a, Occupied); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Clone()
	}
}

func BenchmarkPoolSplitLargest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := NewTable(Block{Lo: 0, Hi: 1023})
		if err != nil {
			b.Fatal(err)
		}
		p := NewPool(tab)
		for {
			if _, err := p.SplitLargest(); err != nil {
				break
			}
		}
	}
}
