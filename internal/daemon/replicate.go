package daemon

// Replica-set management, the embedded replica-health monitor, and the
// on-demand graceful departure exchange. Everything here runs on the
// event-loop goroutine (the public Depart posts into it).
//
// The owner designates a replica set — the deployment QDSet. With
// Config.ReplicationTarget 0 every member is designated (full replication,
// the pre-health behavior); with a target of R the owner keeps the R-1
// lowest-ID live members designated, so the owner-failover successor (the
// lowest-ID survivor) holds a replica. Designated members receive
// REPLICA_DIST with the table and confirm with REPLICA_ACK; confirmations
// are leases the health monitor re-validates every HealthInterval,
// re-syncing at half-life and recruiting replacements the moment a holder
// dies — instead of waiting for the T_d reclamation path to redistribute.

import (
	"sort"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/health"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// fullReplication reports whether every member is a designated holder.
func (d *Daemon) fullReplication() bool { return d.cfg.ReplicationTarget <= 0 }

// refreshReplicaSet re-derives the designated holder set from the current
// electorate: drop the dead and departed, then refill to target with the
// lowest-ID live non-holders.
func (d *Daemon) refreshReplicaSet() {
	for id := range d.replicaSet {
		if d.dead[id] || !d.inElectorate(id) {
			delete(d.replicaSet, id)
			delete(d.replicaAcked, id)
		}
	}
	if d.fullReplication() {
		for _, id := range d.members() {
			d.replicaSet[id] = true
		}
		return
	}
	missing := d.cfg.ReplicationTarget - 1 - len(d.replicaSet)
	if missing <= 0 {
		return
	}
	for _, id := range d.members() { // members() is ID-sorted
		if missing == 0 {
			break
		}
		if !d.replicaSet[id] {
			d.replicaSet[id] = true
			missing--
		}
	}
}

// replicaInfo builds the owner's REPLICA_DIST payload: always the
// membership view, plus a table clone for designated holders.
func (d *Daemon) replicaInfo(withPool bool) msg.HolderInfo {
	info := msg.HolderInfo{
		Owner:   d.cfg.ID,
		OwnerIP: d.selfIP,
		Holders: append([]radio.NodeID(nil), d.electorate...),
	}
	if withPool {
		info.Pool = addrspace.NewPool(d.table.Clone())
	}
	return info
}

// sendReplicaTo pushes the full replica to one designated holder.
func (d *Daemon) sendReplicaTo(id radio.NodeID) {
	d.trace(obs.Event{Kind: obs.EvReplicaSync, Peer: id, Addr: d.selfIP})
	d.sendTo(id, msg.TReplicaDist, metrics.CatSync, msg.ReplicaDist{Info: d.replicaInfo(true)})
}

// broadcastReplica distributes the owner's authoritative view to every
// live member: the full table to designated holders, the membership view
// to the rest.
func (d *Daemon) broadcastReplica() {
	d.refreshReplicaSet()
	memb := msg.ReplicaDist{Info: d.replicaInfo(false)}
	for _, id := range d.members() {
		if d.replicaSet[id] {
			d.sendReplicaTo(id)
		} else {
			d.sendTo(id, msg.TReplicaDist, metrics.CatSync, memb)
		}
	}
}

// onReplicaAck records one member's replica confirmation lease.
func (d *Daemon) onReplicaAck(src radio.NodeID) {
	if !d.owner {
		return
	}
	d.replicaAcked[src] = time.Now()
	d.coll.Inc("daemon.replica_acks")
}

// healthPeers snapshots the owner's electorate view for the monitor.
func (d *Daemon) healthPeers() []health.PeerState {
	peers := make([]health.PeerState, 0, len(d.electorate))
	for _, id := range d.electorate {
		if id == d.cfg.ID {
			continue
		}
		peers = append(peers, health.PeerState{
			ID:      id,
			Dead:    d.dead[id],
			Holder:  d.replicaSet[id],
			AckedAt: d.replicaAcked[id],
		})
	}
	return peers
}

// healthTick runs one replica-health check and applies its repairs:
// demote dead holders, recruit replacements, re-sync aging leases. The
// monitor emits health_check / replica_underreplicated / replica_restored;
// the quorum adjustments and syncs trace through the existing kinds.
func (d *Daemon) healthTick() {
	if !d.owner || !d.joined {
		return
	}
	d.coll.Inc("daemon.health_checks")
	c := d.monitor.Evaluate(time.Now(), d.cfg.ID, d.healthPeers())
	for _, id := range c.Demote {
		delete(d.replicaSet, id)
		delete(d.replicaAcked, id)
		d.trace(obs.Event{Kind: obs.EvQuorumShrink, Peer: id, Detail: "health_demote"})
	}
	for _, id := range c.Recruit {
		d.replicaSet[id] = true
		d.coll.Inc("daemon.health_recruits")
		d.trace(obs.Event{Kind: obs.EvQuorumRecruit, Peer: id, Detail: "health_recruit"})
		d.sendReplicaTo(id)
	}
	for _, id := range c.Refresh {
		if d.replicaSet[id] {
			d.sendReplicaTo(id)
		}
	}
	if c.Under {
		d.coll.Inc("daemon.health_under")
	}
}

// --- graceful departure ---------------------------------------------------

// startDepart begins (or joins) the member-side departure exchange.
func (d *Daemon) startDepart(res chan error) {
	if d.departed {
		res <- nil
		return
	}
	if !d.joined {
		res <- ErrNotJoined
		return
	}
	if d.owner {
		res <- ErrOwnerDepart
		return
	}
	d.departWaiters = append(d.departWaiters, res)
	if d.departing {
		return // an exchange is already in flight; share its ack
	}
	d.departing = true
	d.Drain()
	d.coll.Inc("daemon.departs_started")
	d.logf("departing: returning held addresses to owner %d", int(d.ownerID))
	d.sendReturns()
}

// sendReturns emits RETURN_ADDR for every held address, the member's own
// IP last so the owner tears down membership only after the leases are
// home. Re-armed on JoinRetry until DEPART_ACK arrives.
func (d *Daemon) sendReturns() {
	if !d.departing || d.departed {
		return
	}
	var leases []addrspace.Addr
	for addr, h := range d.holders {
		if h == d.cfg.ID && addr != d.selfIP {
			leases = append(leases, addr)
		}
	}
	sort.Slice(leases, func(i, j int) bool { return leases[i] < leases[j] })
	for _, addr := range leases {
		d.sendTo(d.ownerID, msg.TReturnAddr, metrics.CatConfig,
			msg.ReturnAddr{Configurer: d.cfg.ID, ConfigurerIP: d.selfIP, Addr: addr})
	}
	d.sendTo(d.ownerID, msg.TReturnAddr, metrics.CatConfig,
		msg.ReturnAddr{Configurer: d.cfg.ID, ConfigurerIP: d.selfIP, Addr: d.selfIP})
	d.after(d.cfg.JoinRetry, d.sendReturns)
}

// onReturnAddr is the owner side of a graceful departure: free the
// returned address under a quorum update, and when the member returns its
// own IP (marked by Addr == ConfigurerIP), retire it from the electorate
// and confirm with DEPART_ACK.
func (d *Daemon) onReturnAddr(src radio.NodeID, p msg.ReturnAddr) {
	if !d.owner || d.table == nil {
		return // stale owner view at the sender; it retries after failover
	}
	if e, ok := d.table.Get(p.Addr); ok && e.Status == addrspace.Occupied {
		ne := addrspace.Entry{Status: addrspace.Free, Version: e.Version + 1}
		_ = d.table.Set(p.Addr, ne)
		d.coll.Inc("daemon.addrs_returned")
		for _, id := range d.members() {
			d.sendTo(id, msg.TQuorumUpd, metrics.CatConfig, msg.QuorumUpd{Owner: d.cfg.ID, Addr: p.Addr, Entry: ne})
		}
	}
	delete(d.holders, p.Addr)
	if p.Addr != p.ConfigurerIP {
		return
	}
	// Final leg: the member returned its own address. Idempotent — a
	// retried RETURN_ADDR after teardown still earns its DEPART_ACK.
	if d.inElectorate(src) {
		d.trace(obs.Event{Kind: obs.EvNodeDeparted, Peer: src, Addr: p.Addr, Detail: "graceful"})
		d.removeFromElectorate(src)
		delete(d.memberIPs, src)
		delete(d.lastSeen, src)
		delete(d.dead, src)
		delete(d.replicaSet, src)
		delete(d.replicaAcked, src)
		delete(d.joinInFlight, src)
		d.coll.Inc("daemon.departs_served")
		d.broadcastReplica()
		d.logf("member %d departed gracefully; electorate %v", int(src), d.electorate)
	}
	d.sendTo(src, msg.TDepartAck, metrics.CatConfig, msg.DepartAck{})
}

// onDepartAck completes the member-side departure.
func (d *Daemon) onDepartAck() {
	if !d.departing || d.departed {
		return
	}
	d.departed = true
	d.coll.Inc("daemon.departed")
	d.trace(obs.Event{Kind: obs.EvNodeDeparted, Addr: d.selfIP, Detail: "graceful"})
	for _, w := range d.departWaiters {
		w <- nil // buffered; an abandoned Depart caller never blocks the loop
	}
	d.departWaiters = nil
	d.logf("departed gracefully")
}
