package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// newSoloOwner boots a single bootstrap daemon with HTTP enabled.
func newSoloOwner(t *testing.T) *Daemon {
	t.Helper()
	cfg := Config{
		ID:         1,
		Space:      testSpace,
		Bootstrap:  true,
		Listen:     "127.0.0.1:0",
		HTTPListen: "127.0.0.1:0",
		Logf:       t.Logf,
	}
	fastTimings(&cfg)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Kill)
	waitFor(t, 10*time.Second, "solo owner to join", func() bool {
		v, err := tryStatus(d)
		return err == nil && v.Joined
	})
	return d
}

// TestLegacyAliases: the unversioned routes answer with the same body as
// their /v1 successors plus a Deprecation header and a successor Link.
func TestLegacyAliases(t *testing.T) {
	d := newSoloOwner(t)
	base := "http://" + d.HTTPAddr()

	for _, c := range []struct{ legacy, v1 string }{
		{"/status", "/v1/status"},
		{"/metrics", "/v1/metrics"},
	} {
		resp, err := http.Get(base + c.legacy)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", c.legacy, resp.StatusCode)
		}
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("GET %s Deprecation = %q, want \"true\"", c.legacy, got)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, c.v1) ||
			!strings.Contains(link, "successor-version") {
			t.Errorf("GET %s Link = %q, want successor %s", c.legacy, link, c.v1)
		}
		vresp, err := http.Get(base + c.v1)
		if err != nil {
			t.Fatal(err)
		}
		if h := vresp.Header.Get("Deprecation"); h != "" {
			t.Errorf("GET %s carries Deprecation header %q", c.v1, h)
		}
		vresp.Body.Close()
	}

	// /status and /v1/status decode to the same struct with the same core
	// fields (uptime differs between the two requests).
	var legacy, v1 StatusResponse
	for path, dst := range map[string]*StatusResponse{"/status": &legacy, "/v1/status": &v1} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		resp.Body.Close()
	}
	if legacy.ID != v1.ID || legacy.Role != v1.Role || legacy.IP != v1.IP || legacy.Space != v1.Space {
		t.Errorf("legacy status %+v != v1 status %+v", legacy, v1)
	}
}

// TestAllocateErrorPaths drives the handler's failure branches: malformed
// body, unknown node, and allocation during drain.
func TestAllocateErrorPaths(t *testing.T) {
	d := newSoloOwner(t)
	url := "http://" + d.HTTPAddr() + "/v1/allocate"

	post := func(body string) (int, ErrorResponse) {
		t.Helper()
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}

	if code, e := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d (%q), want 400", code, e.Error)
	}
	if code, e := post(`{"node": 99}`); code != http.StatusNotFound {
		t.Errorf("unknown node: HTTP %d (%q), want 404", code, e.Error)
	} else if !strings.Contains(e.Error, "99") {
		t.Errorf("unknown-node error %q does not name the node", e.Error)
	}
	// Well-formed requests still work, for self both implicitly and by ID.
	if code, e := post(""); code != http.StatusOK {
		t.Errorf("empty-body allocate: HTTP %d (%q), want 200", code, e.Error)
	}
	if code, e := post(`{"node": 1}`); code != http.StatusOK {
		t.Errorf("self-node allocate: HTTP %d (%q), want 200", code, e.Error)
	}

	d.Drain()
	if !d.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if code, e := post(""); code != http.StatusServiceUnavailable {
		t.Errorf("allocate while draining: HTTP %d (%q), want 503", code, e.Error)
	}
	// Reads keep working during drain.
	if v := getStatus(t, d); !v.Draining {
		t.Errorf("status.draining = false during drain")
	}
}

// TestV1MetricsPrometheus: /v1/metrics serves the text exposition format.
func TestV1MetricsPrometheus(t *testing.T) {
	d := newSoloOwner(t)
	resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE quorumd_daemon_bootstrap counter",
		"quorumd_daemon_bootstrap 1",
		"quorumd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestV1Trace: the ring is served over HTTP in the stable JSON schema, and
// the kind filter narrows it.
func TestV1Trace(t *testing.T) {
	d := newSoloOwner(t)
	get := func(path string) TraceResponse {
		t.Helper()
		resp, err := http.Get("http://" + d.HTTPAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return tr
	}

	all := get("/v1/trace")
	if len(all.Events) == 0 {
		t.Fatal("no events after bootstrap")
	}
	kinds := make(map[obs.EventKind]bool)
	var lastSeq uint64
	for _, e := range all.Events {
		kinds[e.Kind] = true
		if e.Seq <= lastSeq {
			t.Fatalf("ring not seq-ordered: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	for _, want := range []obs.EventKind{obs.EvDaemonStart, obs.EvHeadElected, obs.EvNodeConfigured} {
		if !kinds[want] {
			t.Errorf("trace missing %v; kinds seen: %v", want, kinds)
		}
	}

	filtered := get("/v1/trace?kind=head_elected")
	if len(filtered.Events) != 1 || filtered.Events[0].Kind != obs.EvHeadElected {
		t.Errorf("kind filter returned %+v, want exactly one head_elected", filtered.Events)
	}
}

// assertEventOrder checks that the kinds (each constrained to the given
// peer, 0 = any) appear as an ordered subsequence of events.
func assertEventOrder(t *testing.T, events []obs.Event, peer radio.NodeID, kinds ...obs.EventKind) {
	t.Helper()
	i := 0
	for _, e := range events {
		if i < len(kinds) && e.Kind == kinds[i] && (peer == 0 || e.Peer == peer) {
			i++
		}
	}
	if i != len(kinds) {
		var seen []string
		for _, e := range events {
			seen = append(seen, e.Kind.String())
		}
		t.Fatalf("event sequence stopped at %d/%d (%v); ring: %v", i, len(kinds), kinds[i], seen)
	}
}

// TestCrashReclaimEventSequence is the observability half of the lifecycle
// harness: five daemons form a cluster, one crashes, and the owner's trace
// ring must show the causal chain heartbeat-miss -> reclamation open ->
// quorum-committed frees -> replica resync, in that order.
func TestCrashReclaimEventSequence(t *testing.T) {
	ds := newCluster(t, 5)
	owner, victim := ds[0], ds[4]

	waitFor(t, 30*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			v, err := tryStatus(d)
			if err != nil || !v.Joined || !electorateIs(v, 1, 2, 3, 4, 5) {
				return false
			}
		}
		return true
	})
	if _, code := allocate(t, victim); code != http.StatusOK {
		t.Fatalf("pre-crash allocate on victim: HTTP %d", code)
	}

	victim.Kill()
	waitFor(t, 30*time.Second, "reclamation to converge", func() bool {
		v, err := tryStatus(owner)
		return err == nil && electorateIs(v, 1, 2, 3, 4)
	})

	victimID := victim.ID()
	assertEventOrder(t, owner.Trace(), victimID,
		obs.EvPeerDead, obs.EvReclaimStart, obs.EvReclaimFree)
	// The post-reclaim replica resync follows the frees.
	assertEventOrder(t, owner.Trace(), 0,
		obs.EvReclaimFree, obs.EvReplicaSync)

	// The same ring is visible over the wire, and the dead peer's events
	// survive the JSON round trip with their peer attribution.
	resp, err := http.Get("http://" + owner.HTTPAddr() + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	assertEventOrder(t, tr.Events, victimID,
		obs.EvPeerDead, obs.EvReclaimStart, obs.EvReclaimFree)
}

// TestV1TraceThroughputKinds: the allocation-throughput event kinds
// (ballot_pipelined, frame_batched, vote_cache_hit/invalidate) are
// addressable through the kind filter — resolution goes through
// obs.KindByName, so adding a kind to obs is all a deployment needs to
// filter on it, and a typo is still a 400.
func TestV1TraceThroughputKinds(t *testing.T) {
	d := newSoloOwner(t)
	for _, kind := range []string{
		"ballot_pipelined", "frame_batched", "vote_cache_hit", "vote_cache_invalidate",
	} {
		resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/trace?kind=" + kind)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("kind=%s: status %d, want 200", kind, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/trace?kind=vote_cache_miss")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", resp.StatusCode)
	}
}
