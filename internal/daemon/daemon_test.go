package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

// testSpace is 10.0.0.1 - 10.0.0.64.
var testSpace = addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000040}

// fastTimings shrinks every protocol interval so the full lifecycle —
// join, allocate, crash, reclaim — fits a test run even under -race.
func fastTimings(cfg *Config) {
	cfg.HeartbeatInterval = 60 * time.Millisecond
	cfg.SuspectAfter = 350 * time.Millisecond
	cfg.QuorumTimeout = 400 * time.Millisecond
	cfg.ReclaimSettle = 200 * time.Millisecond
	cfg.JoinRetry = 120 * time.Millisecond
	cfg.AllocTimeout = 8 * time.Second
	cfg.RetryBase = 10 * time.Millisecond
}

// newCluster boots n daemons on loopback with ephemeral ports and wires the
// full peer mesh. Daemon 1 bootstraps; daemon 3 (when present) is seeded
// only through daemon 2, so its join exercises the AGENT_FWD relay path.
// Optional mutators adjust each Config after fastTimings.
func newCluster(t *testing.T, n int, mutate ...func(*Config)) []*Daemon {
	t.Helper()
	daemons := make([]*Daemon, n)
	for i := 0; i < n; i++ {
		id := radio.NodeID(i + 1)
		cfg := Config{
			ID:         id,
			Space:      testSpace,
			Bootstrap:  i == 0,
			Listen:     "127.0.0.1:0",
			HTTPListen: "127.0.0.1:0",
			Logf:       t.Logf,
		}
		fastTimings(&cfg)
		for _, m := range mutate {
			m(&cfg)
		}
		switch {
		case i == 0:
			// bootstrap: no seeds
		case id == 3:
			cfg.Seeds = []radio.NodeID{2, 1} // join through a relay first
		default:
			cfg.Seeds = []radio.NodeID{1}
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Kill)
		daemons[i] = d
	}
	for _, a := range daemons {
		for _, b := range daemons {
			if a == b {
				continue
			}
			if err := a.AddPeer(b.ID(), b.UDPAddr().String()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return daemons
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func getStatus(t *testing.T, d *Daemon) StatusView {
	t.Helper()
	v, err := tryStatus(d)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func tryStatus(d *Daemon) (StatusView, error) {
	resp, err := http.Get("http://" + d.HTTPAddr() + "/status")
	if err != nil {
		return StatusView{}, err
	}
	defer resp.Body.Close()
	var v StatusView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return StatusView{}, err
	}
	return v, nil
}

func allocate(t *testing.T, d *Daemon) (AllocateView, int) {
	t.Helper()
	resp, err := http.Post("http://"+d.HTTPAddr()+"/allocate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v AllocateView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func electorateIs(v StatusView, want ...int) bool {
	if len(v.Electorate) != len(want) {
		return false
	}
	for i, id := range want {
		if v.Electorate[i] != id {
			return false
		}
	}
	return true
}

// TestFiveDaemonLifecycle is the end-to-end harness the daemon exists for:
// five daemons boot on loopback, form one network, serve allocations over
// HTTP, survive the crash of a member, and reclaim everything it held.
func TestFiveDaemonLifecycle(t *testing.T) {
	ds := newCluster(t, 5)
	owner := ds[0]

	// Phase 1: the cluster forms. Every daemon joins, the electorate
	// reaches all five, and all agree on the same network ID.
	waitFor(t, 30*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			v, err := tryStatus(d)
			if err != nil || !v.Joined || !electorateIs(v, 1, 2, 3, 4, 5) {
				return false
			}
		}
		return true
	})
	ownerView := getStatus(t, owner)
	if ownerView.Role != "owner" {
		t.Fatalf("daemon 1 role = %q, want owner", ownerView.Role)
	}
	for _, d := range ds[1:] {
		v := getStatus(t, d)
		if v.Role != "member" {
			t.Errorf("daemon %d role = %q, want member", v.ID, v.Role)
		}
		if v.NetworkID != ownerView.NetworkID {
			t.Errorf("daemon %d network %q != owner's %q", v.ID, v.NetworkID, ownerView.NetworkID)
		}
	}
	// Five self-IPs are occupied; daemon 3 joined through daemon 2's relay.
	if ownerView.Occupied != 5 {
		t.Errorf("occupied = %d after formation, want 5", ownerView.Occupied)
	}

	// Phase 2: allocate through the HTTP API — twice on the daemon we are
	// about to kill (id 5), once on a survivor (id 2), once on the owner.
	got := make(map[string]int) // addr -> serving daemon id
	for _, c := range []struct {
		d *Daemon
		n int
	}{{ds[4], 2}, {ds[1], 1}, {ds[0], 1}} {
		for i := 0; i < c.n; i++ {
			v, code := allocate(t, c.d)
			if code != http.StatusOK {
				t.Fatalf("allocate on daemon %d: HTTP %d", c.d.ID(), code)
			}
			if !testSpace.Contains(addrspace.Addr(v.Value)) {
				t.Fatalf("allocated %s outside space", v.Addr)
			}
			if prev, dup := got[v.Addr]; dup {
				t.Fatalf("address %s allocated twice (daemons %d and %d)", v.Addr, prev, c.d.ID())
			}
			got[v.Addr] = int(c.d.ID())
		}
	}
	waitFor(t, 10*time.Second, "allocations visible at owner", func() bool {
		v, err := tryStatus(owner)
		return err == nil && v.Occupied == 9 // 5 selves + 4 leases
	})

	// Phase 3: kill daemon 5 without ceremony. It held its self IP and two
	// leases; daemon 2's lease must survive reclamation.
	victimIP := getStatus(t, ds[4]).IP
	ds[4].Kill()

	waitFor(t, 30*time.Second, "reclamation to converge", func() bool {
		v, err := tryStatus(owner)
		if err != nil || !electorateIs(v, 1, 2, 3, 4) {
			return false
		}
		return v.Occupied == 6 // victim's self IP + its 2 leases freed
	})
	final := getStatus(t, owner)
	for addr, holder := range final.Holders {
		if holder == 5 {
			t.Errorf("address %s still attributed to dead daemon 5", addr)
		}
	}
	if _, stale := final.Holders[victimIP]; stale {
		t.Errorf("victim self IP %s still held after reclamation", victimIP)
	}
	for addr, servedBy := range got {
		_, held := final.Holders[addr]
		if servedBy == 5 && held {
			t.Errorf("lease %s of dead daemon survived reclamation", addr)
		}
		if servedBy != 5 && !held {
			t.Errorf("lease %s of live daemon %d was reclaimed", addr, servedBy)
		}
	}

	// The survivors converge on the shrunken electorate too.
	waitFor(t, 15*time.Second, "survivors to adopt the new electorate", func() bool {
		for _, d := range ds[:4] {
			v, err := tryStatus(d)
			if err != nil || !electorateIs(v, 1, 2, 3, 4) {
				return false
			}
		}
		return true
	})

	// Phase 4: the shrunken cluster still allocates.
	v, code := allocate(t, ds[3])
	if code != http.StatusOK {
		t.Fatalf("post-reclaim allocate: HTTP %d", code)
	}
	if _, dup := got[v.Addr]; dup && got[v.Addr] != 5 {
		t.Errorf("post-reclaim allocation %s collides with a live lease", v.Addr)
	}

	if n := owner.Metrics().Snapshot().Counter("daemon.reclaims"); n < 1 {
		t.Errorf("owner ran %d reclamations, want >= 1", n)
	}
}

// TestStatusAndAllocateBeforeJoin: a daemon whose seeds never answer serves
// /status as "joining" and refuses /allocate.
func TestStatusAndAllocateBeforeJoin(t *testing.T) {
	cfg := Config{
		ID:         7,
		Space:      testSpace,
		Seeds:      []radio.NodeID{1},
		Listen:     "127.0.0.1:0",
		HTTPListen: "127.0.0.1:0",
	}
	fastTimings(&cfg)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Kill)

	v := getStatus(t, d)
	if v.Role != "joining" || v.Joined {
		t.Errorf("unjoined daemon status = %+v", v)
	}
	if _, code := allocate(t, d); code != http.StatusConflict {
		t.Errorf("allocate before join: HTTP %d, want %d", code, http.StatusConflict)
	}
	if resp, err := http.Get("http://" + d.HTTPAddr() + "/allocate"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /allocate: HTTP %d, want 405", resp.StatusCode)
		}
	}
}

// TestMetricsEndpoint: /metrics exposes transport and daemon counters.
func TestMetricsEndpoint(t *testing.T) {
	ds := newCluster(t, 2)
	waitFor(t, 20*time.Second, "two-daemon formation", func() bool {
		v, err := tryStatus(ds[1])
		return err == nil && v.Joined
	})
	resp, err := http.Get("http://" + ds[0].HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v MetricsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Counters["daemon.joins"] < 1 {
		t.Errorf("owner counters missing joins: %v", v.Counters)
	}
	if v.Counters["transport.delivered"] < 1 {
		t.Errorf("owner counters missing transport activity: %v", v.Counters)
	}
}

// TestConfigValidation rejects configurations that cannot form a cluster.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero id", Config{Space: testSpace, Bootstrap: true}, "ID"},
		{"tiny space", Config{ID: 1, Space: addrspace.Block{Lo: 5, Hi: 5}, Bootstrap: true}, "space"},
		{"no seeds", Config{ID: 2, Space: testSpace}, "seed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Errorf("config %+v accepted", c.cfg)
			} else if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestClusterUnderChaoticTransport forms a small cluster with 20%% of
// outbound data frames artificially dropped: the ARQ layer must still
// converge the protocol.
func TestClusterUnderChaoticTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	daemons := make([]*Daemon, 3)
	for i := 0; i < 3; i++ {
		cfg := Config{
			ID:         radio.NodeID(i + 1),
			Space:      testSpace,
			Bootstrap:  i == 0,
			Listen:     "127.0.0.1:0",
			HTTPListen: "127.0.0.1:0",
			DropRate:   0.2,
		}
		fastTimings(&cfg)
		cfg.SuspectAfter = 2 * time.Second // chaos delays heartbeats too
		if i > 0 {
			cfg.Seeds = []radio.NodeID{1}
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Kill)
		daemons[i] = d
	}
	for _, a := range daemons {
		for _, b := range daemons {
			if a != b {
				if err := a.AddPeer(b.ID(), b.UDPAddr().String()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	waitFor(t, 30*time.Second, "formation under 20% frame loss", func() bool {
		for _, d := range daemons {
			v, err := tryStatus(d)
			if err != nil || !v.Joined || len(v.Electorate) != 3 {
				return false
			}
		}
		return true
	})
	if _, code := allocate(t, daemons[2]); code != http.StatusOK {
		t.Errorf("allocate under chaos: HTTP %d", code)
	}
}

// TestDuplicateAddressesNeverGranted hammers concurrent allocations from
// every daemon and asserts global uniqueness — the paper's core guarantee.
func TestDuplicateAddressesNeverGranted(t *testing.T) {
	ds := newCluster(t, 3)
	waitFor(t, 20*time.Second, "three-daemon formation", func() bool {
		for _, d := range ds {
			v, err := tryStatus(d)
			if err != nil || !v.Joined || len(v.Electorate) != 3 {
				return false
			}
		}
		return true
	})

	type grant struct {
		addr string
		from int
	}
	results := make(chan grant, 30)
	for _, d := range ds {
		for i := 0; i < 5; i++ {
			go func(d *Daemon) {
				resp, err := http.Post("http://"+d.HTTPAddr()+"/allocate", "application/json", nil)
				if err != nil {
					results <- grant{}
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results <- grant{}
					return
				}
				var v AllocateView
				if json.NewDecoder(resp.Body).Decode(&v) != nil {
					results <- grant{}
					return
				}
				results <- grant{addr: v.Addr, from: int(d.ID())}
			}(d)
		}
	}
	seen := make(map[string]int)
	granted := 0
	for i := 0; i < 15; i++ {
		select {
		case g := <-results:
			if g.addr == "" {
				continue // timeouts/conflicts are allowed, duplicates are not
			}
			granted++
			if prev, dup := seen[g.addr]; dup {
				t.Fatalf("address %s granted to both daemon %d and daemon %d", g.addr, prev, g.from)
			}
			seen[g.addr] = g.from
		case <-time.After(30 * time.Second):
			t.Fatal("allocation results never arrived")
		}
	}
	if granted == 0 {
		t.Fatal("no concurrent allocation succeeded")
	}
	t.Logf("%d/15 concurrent allocations granted, all unique", granted)
}

func ExampleStatusView() {
	v := StatusView{ID: 1, Role: "owner", Joined: true, Space: testSpace.String()}
	fmt.Println(v.Role, v.Space)
	// Output: owner 10.0.0.1-10.0.0.64
}

// TestClusterWithBatchedTransport: the batch knobs pass through Config to
// the transport and a cluster forms and allocates over coalesced frames.
// The join handshake itself is mostly lock-step request/response (batches
// of one fall back to plain frames), so the assertion is functional:
// batching must not break or stall the protocol.
func TestClusterWithBatchedTransport(t *testing.T) {
	daemons := newCluster(t, 3, func(c *Config) {
		c.BatchFlushBytes = 16 * 1024
		c.BatchFlushDelay = 2 * time.Millisecond
	})
	waitFor(t, 15*time.Second, "3 daemons joined", func() bool {
		for _, d := range daemons {
			v, err := tryStatus(d)
			if err != nil || !v.Joined {
				return false
			}
		}
		return true
	})
	if v, code := allocate(t, daemons[0]); code != http.StatusOK || v.Addr == "" {
		t.Fatalf("allocate over batched transport: code %d, view %+v", code, v)
	}
}
