package daemon

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
	"quorumconf/internal/transport/udptransport"
	"quorumconf/internal/wire"
)

// TestChaosMaliciousDaemonDefeated is the hardening acceptance harness: a
// five-daemon fleet with frame authentication and per-remote rate limiting
// enabled is attacked from a raw UDP socket that (1) injects plaintext
// forged COM_CFG grants impersonating the bootstrap node — the
// double-allocation attempt, (2) replays the same forgeries sealed under
// the wrong cluster key, and (3) floods the victim with thousands of
// datagrams. The attack must provably fail: every forgery dies at the
// socket boundary with an auth_reject (visible on the victim's trace
// ring), the flood is shed by the rate limiter, no duplicate address
// exists anywhere in the fleet afterwards, and honest allocations still
// succeed through the attacked daemon.
func TestChaosMaliciousDaemonDefeated(t *testing.T) {
	key := wire.DeriveKey("chaos-fleet-passphrase")
	ds := newCluster(t, 5, func(cfg *Config) {
		cfg.AuthKey = key
		cfg.RateLimit = 400 // generous: honest heartbeat traffic stays far below this
		cfg.RateBurst = 200
	})
	waitFor(t, 30*time.Second, "five-daemon formation", func() bool {
		for _, d := range ds {
			v, err := tryStatus(d)
			if err != nil || !v.Joined {
				return false
			}
		}
		return true
	})

	// A real allocation gives the forger a live address to double-allocate.
	granted, code := allocate(t, ds[0])
	if code != http.StatusOK {
		t.Fatalf("baseline allocation failed: HTTP %d", code)
	}

	atk, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()

	// forge builds a well-formed data frame a pre-hardening daemon would
	// have decoded and handled: a COM_CFG grant for the already-granted
	// address, with the bootstrap daemon's identity in both the envelope
	// source and the configurer field.
	forge := func(dst radio.NodeID, msgID uint64) []byte {
		frame, err := wire.AppendEncode([]byte{'D'}, &wire.Envelope{
			MsgID: msgID,
			Type:  msg.TComCfg,
			Src:   ds[0].ID(),
			Dst:   dst,
			Hops:  1,
			Payload: msg.ComCfg{
				Addr:       addrspace.Addr(granted.Value),
				Configurer: ds[0].ID(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	victim := ds[2]
	victimAddr := victim.UDPAddr()

	// Wave 1: plaintext forgeries against every member of the fleet.
	for i, d := range ds {
		for j := 0; j < 5; j++ {
			if _, err := atk.WriteToUDP(forge(d.ID(), uint64(990000+100*i+j)), d.UDPAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wave 2: the same forgery sealed under a wrong key — an attacker who
	// knows the frame format but not the cluster passphrase.
	wrong := wire.DeriveKey("not-the-cluster-passphrase")
	sealed, err := wire.AppendSeal(nil, wrong, forge(victim.ID(), 995000))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if _, err := atk.WriteToUDP(sealed, victimAddr); err != nil {
			t.Fatal(err)
		}
	}

	// Wave 3: flood the victim faster than the admitted rate until the
	// token bucket provably engages. 200 datagrams per 20ms poll is 10k/s
	// against a 400/s budget.
	junk := forge(victim.ID(), 996000)
	waitFor(t, 10*time.Second, "rate limiter engaged on victim", func() bool {
		for j := 0; j < 200; j++ {
			if _, err := atk.WriteToUDP(junk, victimAddr); err != nil {
				return false
			}
		}
		return victim.Metrics().Counter(udptransport.CtrRateLimited) > 0
	})

	waitFor(t, 10*time.Second, "auth rejections recorded on victim", func() bool {
		return victim.Metrics().Counter(udptransport.CtrAuthReject) > 0
	})

	// Every forgery was shed before touching protocol state: the victim's
	// trace ring must carry auth_reject events naming the attacker.
	atkSource := atk.LocalAddr().String()
	sawReject := false
	for _, e := range victim.Trace() {
		if e.Kind == obs.EvAuthReject && e.Detail == atkSource {
			sawReject = true
			break
		}
	}
	if !sawReject {
		t.Errorf("victim trace ring has no %s event from attacker %s", obs.EvAuthReject, atkSource)
	}

	// The fleet still functions: an allocation through the attacked daemon
	// succeeds and is distinct from everything granted or self-assigned.
	second, code := allocate(t, victim)
	if code != http.StatusOK {
		t.Fatalf("post-attack allocation through victim failed: HTTP %d", code)
	}
	seen := map[string]string{granted.Addr: "baseline grant", second.Addr: "post-attack grant"}
	if len(seen) != 2 {
		t.Fatalf("post-attack grant duplicated the baseline address %s", granted.Addr)
	}
	for _, d := range ds {
		v := getStatus(t, d)
		if v.IP == "" {
			continue
		}
		who := fmt.Sprintf("daemon %d self-IP", d.ID())
		if prev, dup := seen[v.IP]; dup {
			t.Errorf("duplicate address %s held by %s and %s", v.IP, prev, who)
		}
		seen[v.IP] = who
	}
	t.Logf("attack shed: auth_reject=%d rate_limited=%d, %d unique addresses fleet-wide",
		victim.Metrics().Counter(udptransport.CtrAuthReject),
		victim.Metrics().Counter(udptransport.CtrRateLimited),
		len(seen))
}
