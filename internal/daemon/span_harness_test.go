package daemon

// End-to-end observability harness: causal spans reconstructed across a
// real UDP fleet with batching enabled, the /v1/trace filters, the ring
// under concurrent readers, and the /v1/metrics histogram contract.

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// fetchTrace GETs /v1/trace with the given query ("" or "?kind=...") and
// decodes the events, failing the test on a non-200 answer.
func fetchTrace(t *testing.T, d *Daemon, query string) []obs.Event {
	t.Helper()
	resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/v1/trace%s: status %d: %s", query, resp.StatusCode, body)
	}
	var v TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.Events
}

// TestAllocationSpanAcrossFleet reconstructs one allocation's full causal
// span — request, ballot, votes, grant — from the trace rings of a real
// three-daemon fleet over UDP with frame batching enabled. The allocation
// is driven through a member so the chain genuinely crosses nodes: the
// request and grant land on the member's ring, the ballot on the owner's,
// and the vote casts on the voters'. All tracers share one clock epoch, so
// the stitched timeline must be monotone hop to hop under a single trace
// ID.
func TestAllocationSpanAcrossFleet(t *testing.T) {
	epoch := time.Now()
	clock := func() time.Duration { return time.Since(epoch) }
	tracers := make(map[radio.NodeID]*obs.Tracer)
	ds := newCluster(t, 3, func(c *Config) {
		c.BatchFlushBytes = 16 * 1024
		c.BatchFlushDelay = 2 * time.Millisecond
		tr := obs.NewTracer(clock)
		tracers[c.ID] = tr
		c.Tracer = tr
	})
	// Start aims each tracer at its own process epoch; restore the shared
	// clock so hop timestamps are comparable across daemons.
	for _, tr := range tracers {
		tr.SetClock(clock)
	}
	waitFor(t, 20*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			if v, err := tryStatus(d); err != nil || !v.Joined {
				return false
			}
		}
		return true
	})

	// Allocate through member 2: it forwards a COM_REQ to the owner, which
	// runs the quorum ballot and grants back.
	av, code := allocate(t, ds[1])
	if code != http.StatusOK {
		t.Fatalf("allocate via member: status %d", code)
	}

	var all []obs.Event
	for _, d := range ds {
		all = append(all, fetchTrace(t, d, "")...)
	}
	spans := obs.BuildSpans(all)
	var tl *obs.SpanTimeline
	for i := range spans {
		for _, hop := range spans[i].Hops {
			if hop.Event.Kind == obs.EvAllocGrant && hop.Event.Addr.String() == av.Addr {
				tl = &spans[i]
			}
		}
	}
	if tl == nil {
		t.Fatalf("no span timeline carries the granted address %s", av.Addr)
	}
	if tl.Origin() != ds[1].ID() {
		t.Errorf("span origin = node %d, want the requesting member %d", tl.Origin(), ds[1].ID())
	}

	kinds := make(map[obs.EventKind]int)
	nodes := make(map[radio.NodeID]bool)
	for i, hop := range tl.Hops {
		kinds[hop.Event.Kind]++
		nodes[hop.Event.Node] = true
		if i > 0 && hop.SincePrev < 0 {
			t.Errorf("hop %d (%s on node %d) is %dµs before its predecessor",
				i, hop.Event.Kind, hop.Event.Node, -hop.SincePrev)
		}
	}
	if tl.Hops[0].Event.Kind != obs.EvAllocRequest {
		t.Errorf("first hop = %s, want alloc_request", tl.Hops[0].Event.Kind)
	}
	if last := tl.Hops[len(tl.Hops)-1].Event.Kind; last != obs.EvAllocGrant {
		t.Errorf("last hop = %s, want alloc_grant", last)
	}
	for _, k := range []obs.EventKind{obs.EvAllocRequest, obs.EvBallotOpen, obs.EvBallotVote, obs.EvBallotCommit, obs.EvAllocGrant} {
		if kinds[k] == 0 {
			t.Errorf("span timeline is missing a %s hop: %+v", k, kinds)
		}
	}
	if len(nodes) < 3 {
		t.Errorf("span events came from %d nodes, want all 3 (requestor, owner, voter)", len(nodes))
	}
}

// TestTraceSpanFilterComposesWithKind pins the /v1/trace query contract:
// ?span= narrows to one causal chain, composes with ?kind=, and a
// malformed span answers 400.
func TestTraceSpanFilterComposesWithKind(t *testing.T) {
	ds := newCluster(t, 3)
	waitFor(t, 20*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			if v, err := tryStatus(d); err != nil || !v.Joined {
				return false
			}
		}
		return true
	})
	if _, code := allocate(t, ds[0]); code != http.StatusOK {
		t.Fatalf("allocate: status %d", code)
	}

	owner := ds[0]
	var span uint64
	for _, e := range fetchTrace(t, owner, "") {
		if e.Kind == obs.EvAllocGrant && e.Span != 0 {
			span = e.Span
		}
	}
	if span == 0 {
		t.Fatal("no spanned alloc_grant in the owner's ring")
	}
	hex := obs.FormatSpan(span)

	spanned := fetchTrace(t, owner, "?span="+hex)
	if len(spanned) == 0 {
		t.Fatal("?span= filter returned nothing")
	}
	for _, e := range spanned {
		if e.Span != span {
			t.Errorf("?span=%s returned event with span %s", hex, obs.FormatSpan(e.Span))
		}
	}

	composed := fetchTrace(t, owner, "?kind=ballot_commit&span="+hex)
	if len(composed) == 0 {
		t.Fatal("?kind=&span= composition returned nothing")
	}
	for _, e := range composed {
		if e.Kind != obs.EvBallotCommit || e.Span != span {
			t.Errorf("composed filter leaked event %s span %s", e.Kind, obs.FormatSpan(e.Span))
		}
	}
	if len(composed) >= len(spanned) {
		t.Errorf("composition did not narrow: %d kind+span vs %d span-only", len(composed), len(spanned))
	}

	resp, err := http.Get("http://" + owner.HTTPAddr() + "/v1/trace?span=not-hex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed span filter: status %d, want 400", resp.StatusCode)
	}
}

// TestTraceConcurrentWithWriters hammers /v1/trace from several readers
// while the daemon allocates (emitting into the ring from the event
// loop); under -race this pins that ring snapshots never tear against
// concurrent writes.
func TestTraceConcurrentWithWriters(t *testing.T) {
	ds := newCluster(t, 3)
	waitFor(t, 20*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			if v, err := tryStatus(d); err != nil || !v.Joined {
				return false
			}
		}
		return true
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + ds[0].HTTPAddr() + "/v1/trace")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if _, code := allocate(t, ds[0]); code != http.StatusOK {
			t.Errorf("allocation %d under trace load: status %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
}

// TestMetricsHistogramMatchesAllocations pins the /v1/metrics histogram
// contract on the owner: the bootstrap owner never joins, so its
// config-latency observation count equals exactly its completed
// /v1/allocate calls, and the ballot RTT histogram has at least one
// observation per committed ballot.
func TestMetricsHistogramMatchesAllocations(t *testing.T) {
	ds := newCluster(t, 3)
	waitFor(t, 20*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			if v, err := tryStatus(d); err != nil || !v.Joined {
				return false
			}
		}
		return true
	})

	const n = 5
	for i := 0; i < n; i++ {
		if _, code := allocate(t, ds[0]); code != http.StatusOK {
			t.Fatalf("allocation %d: status %d", i, code)
		}
	}

	resp, err := http.Get("http://" + ds[0].HTTPAddr() + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	count := promSample(t, text, "quorumd_config_latency_seconds_count")
	if count != n {
		t.Errorf("config latency observations = %d, want %d (one per completed /v1/allocate)", count, n)
	}
	if !strings.Contains(text, "# TYPE quorumd_config_latency_seconds histogram") {
		t.Error("config latency histogram TYPE line missing")
	}
	if !strings.Contains(text, `quorumd_config_latency_seconds_bucket{le="+Inf"} `+strconv.Itoa(n)) {
		t.Errorf("+Inf bucket should equal the observation count %d:\n%s", n, text)
	}
	if rtt := promSample(t, text, "quorumd_ballot_rtt_seconds_count"); rtt < n {
		t.Errorf("ballot RTT observations = %d, want >= %d (one per committed ballot)", rtt, n)
	}
}

// promSample extracts one bare sample value from a Prometheus text
// exposition, failing the test if the series is absent.
func promSample(t *testing.T, text, name string) int {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("sample %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", name, text)
	return 0
}
