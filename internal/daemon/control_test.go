package daemon

// Control-plane tests: the /v1/members, /v1/drain, /v1/depart and
// /v1/health endpoints, drain idempotency under concurrency, graceful
// on-demand departure, and the proactive re-replication harness — the
// causal chain peer_dead -> replica_underreplicated -> replica_sync ->
// replica_restored closing before the T_d reclamation path frees anything.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// getJSON decodes a GET response body into dst and returns the status code.
func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// postJSON posts body and decodes the response into dst (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url, body string, dst any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		_ = json.NewDecoder(resp.Body).Decode(dst)
	}
	return resp.StatusCode
}

// TestV1TraceUnknownKind: the kind filter rejects names outside the event
// schema with a typed 400 instead of silently returning an empty list.
func TestV1TraceUnknownKind(t *testing.T) {
	d := newSoloOwner(t)
	resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/trace?kind=no_such_kind")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: HTTP %d, want 400", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("400 body is not the typed error shape: %v", err)
	}
	if !strings.Contains(e.Error, "no_such_kind") {
		t.Errorf("error %q does not name the rejected kind", e.Error)
	}
	// Every known kind remains accepted.
	if code := getJSON(t, "http://"+d.HTTPAddr()+"/v1/trace?kind=replica_restored", nil); code != http.StatusOK {
		t.Errorf("known kind replica_restored: HTTP %d, want 200", code)
	}
}

// TestDrainConcurrent: racing Drain calls collapse to one transition —
// exactly one caller sees Initiated, and the trace ring records exactly
// one draining event.
func TestDrainConcurrent(t *testing.T) {
	d := newSoloOwner(t)

	const callers = 16
	var wg sync.WaitGroup
	initiated := make(chan bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			initiated <- d.Drain()
		}()
	}
	wg.Wait()
	close(initiated)
	wins := 0
	for got := range initiated {
		if got {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d of %d concurrent Drain calls reported initiating, want exactly 1", wins, callers)
	}

	transitions := 0
	for _, e := range d.Trace() {
		if e.Kind == obs.EvDaemonStop && e.Detail == "draining" {
			transitions++
		}
	}
	if transitions != 1 {
		t.Errorf("trace ring has %d draining events, want exactly 1", transitions)
	}

	// The endpoint mirrors the idempotency: already draining, not initiated.
	var dr DrainResponse
	if code := postJSON(t, "http://"+d.HTTPAddr()+"/v1/drain", "", &dr); code != http.StatusOK {
		t.Fatalf("POST /v1/drain: HTTP %d", code)
	}
	if !dr.Draining || dr.Initiated {
		t.Errorf("drain of draining daemon = %+v, want Draining true, Initiated false", dr)
	}
	if code := getJSON(t, "http://"+d.HTTPAddr()+"/v1/drain", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/drain: HTTP %d, want 405", code)
	}
}

// TestV1DrainInitiates: the first POST against a fresh daemon reports the
// transition.
func TestV1DrainInitiates(t *testing.T) {
	d := newSoloOwner(t)
	var dr DrainResponse
	if code := postJSON(t, "http://"+d.HTTPAddr()+"/v1/drain", "", &dr); code != http.StatusOK {
		t.Fatalf("POST /v1/drain: HTTP %d", code)
	}
	if !dr.Draining || !dr.Initiated {
		t.Errorf("first drain = %+v, want Draining and Initiated true", dr)
	}
}

// TestV1MembersEndpoint drives the list and register halves plus every
// request-validation branch.
func TestV1MembersEndpoint(t *testing.T) {
	d := newSoloOwner(t)
	url := "http://" + d.HTTPAddr() + "/v1/members"

	var mv MembersResponse
	if code := getJSON(t, url, &mv); code != http.StatusOK {
		t.Fatalf("GET /v1/members: HTTP %d", code)
	}
	if mv.Owner != 1 || len(mv.Members) != 1 {
		t.Fatalf("solo members view = %+v, want owner 1 with one member", mv)
	}
	self := mv.Members[0]
	if self.Node != 1 || !self.Self || self.Dead || self.IP == "" || self.LastSeenMS != 0 {
		t.Errorf("self member = %+v, want node 1, self, live, configured", self)
	}

	for _, c := range []struct {
		body, wantInError string
	}{
		{"", "required"},
		{"{not json", "malformed"},
		{`{"node": 0, "addr": "127.0.0.1:1"}`, "positive"},
		{`{"node": 7}`, "addr"},
		{`{"node": 7, "addr": "127.0.0.1:1", "extra": true}`, "malformed"},
	} {
		var e ErrorResponse
		if code := postJSON(t, url, c.body, &e); code != http.StatusBadRequest {
			t.Errorf("POST %q: HTTP %d (%q), want 400", c.body, code, e.Error)
		} else if !strings.Contains(e.Error, c.wantInError) {
			t.Errorf("POST %q error = %q, want mention of %q", c.body, e.Error, c.wantInError)
		}
	}

	var added AddMemberResponse
	if code := postJSON(t, url, `{"node": 7, "addr": "127.0.0.1:19"}`, &added); code != http.StatusOK {
		t.Fatalf("valid member add: HTTP %d", code)
	}
	if added.Node != 7 || added.Addr != "127.0.0.1:19" {
		t.Errorf("add response = %+v", added)
	}
}

// TestV1HealthSoloOwner: a bootstrap owner with no peers is trivially at
// target — factor 1 of 1, nothing to hold replicas.
func TestV1HealthSoloOwner(t *testing.T) {
	d := newSoloOwner(t)
	var hv HealthResponse
	if code := getJSON(t, "http://"+d.HTTPAddr()+"/v1/health", &hv); code != http.StatusOK {
		t.Fatalf("GET /v1/health: HTTP %d", code)
	}
	if !hv.Monitoring || hv.Factor != 1 || hv.Target != 1 || hv.Under || len(hv.Holders) != 0 {
		t.Errorf("solo health = %+v, want monitoring, rf 1/1, no holders", hv)
	}
}

// TestGracefulDepart: `quorumctl member remove` server side. A member
// departs on demand: its leases come home under quorum updates, the
// electorate shrinks without any T_d wait, and the exchange is idempotent.
// The owner refuses to depart.
func TestGracefulDepart(t *testing.T) {
	ds := newCluster(t, 3)
	owner, member := ds[0], ds[2]

	waitFor(t, 30*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			v, err := tryStatus(d)
			if err != nil || !v.Joined || !electorateIs(v, 1, 2, 3) {
				return false
			}
		}
		return true
	})

	// The departing member holds its own IP plus one extra allocation.
	if _, code := allocate(t, member); code != http.StatusOK {
		t.Fatalf("pre-depart allocate: HTTP %d", code)
	}
	waitFor(t, 10*time.Second, "allocation to commit on owner", func() bool {
		v, err := tryStatus(owner)
		return err == nil && v.Occupied == 4 // 3 member IPs + 1 extra
	})

	var dv DepartResponse
	if code := postJSON(t, "http://"+member.HTTPAddr()+"/v1/depart", "", &dv); code != http.StatusOK || !dv.Departed {
		t.Fatalf("POST /v1/depart: HTTP %d, body %+v", code, dv)
	}

	waitFor(t, 10*time.Second, "owner to retire the departed member", func() bool {
		v, err := tryStatus(owner)
		return err == nil && electorateIs(v, 1, 2) && v.Occupied == 2
	})
	assertEventOrder(t, owner.Trace(), member.ID(), obs.EvNodeDeparted)

	// The member observes its own departure and keeps answering reads.
	mv := getStatus(t, member)
	if mv.Role != "departed" || !mv.Departed || !mv.Draining {
		t.Errorf("departed member status = %+v, want departed and draining", mv)
	}
	var members MembersResponse
	if code := getJSON(t, "http://"+owner.HTTPAddr()+"/v1/members", &members); code != http.StatusOK {
		t.Fatalf("GET /v1/members: HTTP %d", code)
	}
	for _, m := range members.Members {
		if m.Node == int(member.ID()) {
			t.Errorf("departed member still listed: %+v", members)
		}
	}

	// Departing again is a shared no-op, not an error.
	if code := postJSON(t, "http://"+member.HTTPAddr()+"/v1/depart", "", &dv); code != http.StatusOK || !dv.Departed {
		t.Errorf("repeated depart: HTTP %d, body %+v", code, dv)
	}

	// The owner cannot depart: 409 with the typed error.
	var e ErrorResponse
	if code := postJSON(t, "http://"+owner.HTTPAddr()+"/v1/depart", "", &e); code != http.StatusConflict {
		t.Errorf("owner depart: HTTP %d (%q), want 409", code, e.Error)
	} else if !strings.Contains(e.Error, "owner") {
		t.Errorf("owner depart error = %q, want mention of owner", e.Error)
	}
}

// TestDepartNotJoined: departure before configuration is a 409.
func TestDepartNotJoined(t *testing.T) {
	cfg := Config{
		ID:         9,
		Space:      testSpace,
		Seeds:      []radio.NodeID{1}, // never reachable: no peers registered
		Listen:     "127.0.0.1:0",
		HTTPListen: "127.0.0.1:0",
		Logf:       t.Logf,
	}
	fastTimings(&cfg)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Kill)

	var e ErrorResponse
	if code := postJSON(t, "http://"+d.HTTPAddr()+"/v1/depart", "", &e); code != http.StatusConflict {
		t.Fatalf("unjoined depart: HTTP %d (%q), want 409", code, e.Error)
	}
	if !strings.Contains(e.Error, "not joined") {
		t.Errorf("unjoined depart error = %q, want mention of not joined", e.Error)
	}
}

// TestProactiveReplication is the health-monitor harness: five daemons
// under a bounded ReplicationTarget, a designated replica holder crashes,
// and the owner must restore the replication factor through the monitor —
// recruit a replacement and re-sync — strictly before the T_d reclamation
// path frees the dead node's addresses.
func TestProactiveReplication(t *testing.T) {
	const reclaimSettle = 600 * time.Millisecond
	ds := newCluster(t, 5, func(cfg *Config) {
		cfg.ReplicationTarget = 3
		cfg.HealthInterval = 40 * time.Millisecond
		cfg.ReclaimSettle = reclaimSettle
	})
	owner := ds[0]

	waitFor(t, 30*time.Second, "cluster formation", func() bool {
		for _, d := range ds {
			v, err := tryStatus(d)
			if err != nil || !v.Joined || !electorateIs(v, 1, 2, 3, 4, 5) {
				return false
			}
		}
		return true
	})

	// The owner designates the lowest-ID members: QDSet {1, 2, 3}. Wait for
	// both holders' REPLICA_ACK leases so the factor reaches target.
	waitFor(t, 10*time.Second, "replication factor to reach target", func() bool {
		var hv HealthResponse
		code := getJSON(t, "http://"+owner.HTTPAddr()+"/v1/health", &hv)
		return code == http.StatusOK && hv.Factor == 3 && hv.Target == 3 && !hv.Under
	})
	// The designation is stable (holders are kept, not rebalanced), so which
	// two members were picked depends on join order; the invariants are the
	// set size and the owner leading it.
	ov := getStatus(t, owner)
	if len(ov.QDSet) != 3 || ov.QDSet[0] != 1 {
		t.Fatalf("owner QDSet = %v, want the owner plus two designated holders", ov.QDSet)
	}
	if ov.ReplicaFactor != 3 || ov.ReplicaTarget != 3 {
		t.Fatalf("owner rf = %d/%d, want 3/3", ov.ReplicaFactor, ov.ReplicaTarget)
	}
	holder := func(id int) bool {
		for _, h := range ov.QDSet {
			if h == id {
				return true
			}
		}
		return false
	}

	// Non-holders carry no table replica: membership-only distributions.
	var recruitID radio.NodeID
	for id := 2; id <= 5; id++ {
		if holder(id) {
			continue
		}
		if recruitID == 0 {
			recruitID = radio.NodeID(id) // lowest-ID non-holder gets recruited
		}
		nv := getStatus(t, ds[id-1])
		if nv.Free != 0 || nv.Occupied != 0 {
			t.Errorf("non-holder %d reports table counts %d/%d, want none", id, nv.Free, nv.Occupied)
		}
	}

	// Crash the highest-ID designated holder. The monitor must demote it,
	// recruit the lowest-ID live non-holder, and re-sync — restoring the
	// factor before reclamation frees the victim's address.
	victimID := radio.NodeID(ov.QDSet[2])
	victim := ds[victimID-1]
	victim.Kill()

	waitFor(t, 30*time.Second, "factor restoration", func() bool {
		var hv HealthResponse
		code := getJSON(t, "http://"+owner.HTTPAddr()+"/v1/health", &hv)
		return code == http.StatusOK && hv.Factor == 3 && !hv.Under
	})
	waitFor(t, 30*time.Second, "reclamation to converge", func() bool {
		v, err := tryStatus(owner)
		survivors := make([]int, 0, 4)
		for id := 1; id <= 5; id++ {
			if radio.NodeID(id) != victimID {
				survivors = append(survivors, id)
			}
		}
		return err == nil && electorateIs(v, survivors...)
	})

	events := owner.Trace()
	// The causal chain of the proactive path, in ring order.
	assertEventOrder(t, events, 0,
		obs.EvPeerDead, obs.EvReplicaUnderreplicated, obs.EvReplicaSync, obs.EvReplicaRestored)
	// The dead holder was demoted, and the lowest-ID non-holder recruited
	// and synced.
	assertEventOrder(t, events, victimID, obs.EvPeerDead, obs.EvQuorumShrink)
	assertEventOrder(t, events, recruitID, obs.EvQuorumRecruit, obs.EvReplicaSync)
	// Restoration strictly precedes the reactive T_d path's first free.
	assertEventOrder(t, events, 0, obs.EvReplicaRestored, obs.EvReclaimFree)

	// And it happened inside the settle window: the monitor beat T_d's
	// reclamation by construction, not by luck.
	var dead, restored time.Duration
	for _, e := range events {
		switch {
		case e.Kind == obs.EvPeerDead && e.Peer == victimID && dead == 0:
			dead = e.Time
		case e.Kind == obs.EvReplicaRestored && dead != 0 && restored == 0:
			restored = e.Time
		}
	}
	if dead == 0 || restored == 0 {
		t.Fatal("missing peer_dead or replica_restored in owner trace")
	}
	if gap := restored - dead; gap >= reclaimSettle {
		t.Errorf("factor restored %v after peer_dead, not inside the %v settle window", gap, reclaimSettle)
	}

	// The new holder set is visible in the status view: the victim gone,
	// the recruit in.
	ov = getStatus(t, owner)
	if len(ov.QDSet) != 3 {
		t.Fatalf("post-repair QDSet = %v, want three holders", ov.QDSet)
	}
	gotRecruit, gotVictim := false, false
	for _, h := range ov.QDSet {
		if radio.NodeID(h) == recruitID {
			gotRecruit = true
		}
		if radio.NodeID(h) == victimID {
			gotVictim = true
		}
	}
	if !gotRecruit || gotVictim {
		t.Errorf("post-repair QDSet = %v, want recruit %d in and victim %d out", ov.QDSet, recruitID, victimID)
	}
}
