package daemon

// Legacy JSON views and the shared response helpers. The route table and
// the /v1/ handlers live in api.go.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"quorumconf/internal/health"
	"quorumconf/internal/metrics"
	"quorumconf/internal/radio"
)

// StatusView is the legacy name of the /status response shape.
//
// Deprecated: use StatusResponse (GET /v1/status).
type StatusView = StatusResponse

// AllocateView is the legacy name of the /allocate response shape.
//
// Deprecated: use AllocateResponse (POST /v1/allocate).
type AllocateView = AllocateResponse

// MetricsView is the JSON /metrics response shape (legacy route only; the
// /v1/metrics route serves Prometheus text format instead).
type MetricsView struct {
	Counters map[string]int64           `json:"counters"`
	Traffic  map[string]TrafficView     `json:"traffic"`
	Samples  map[string]metrics.Summary `json:"samples,omitempty"`
}

// TrafficView is one category's message and hop totals.
type TrafficView struct {
	Messages int64 `json:"messages"`
	Hops     int64 `json:"hops"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusView snapshots protocol state; event-loop goroutine only.
func (d *Daemon) statusView() StatusResponse {
	v := StatusResponse{
		ID:         int(d.cfg.ID),
		Role:       "joining",
		Joined:     d.joined,
		Draining:   d.Draining(),
		Space:      d.cfg.Space.String(),
		Electorate: make([]int, 0, len(d.electorate)),
		Holders:    make(map[string]int, len(d.holders)),
		UptimeMS:   time.Since(d.started).Milliseconds(),
	}
	if d.tr != nil {
		v.UDP = d.tr.LocalAddr().String()
	}
	if d.joined {
		v.Role = "member"
		if d.owner {
			v.Role = "owner"
		}
	}
	if d.hasIP {
		v.IP = d.selfIP.String()
		v.NetworkID = d.networkID.String()
	}
	if d.table != nil {
		v.Free = d.table.FreeCount()
		v.Occupied = d.table.OccupiedCount()
	}
	for _, id := range d.electorate {
		v.Electorate = append(v.Electorate, int(id))
	}
	for addr, h := range d.holders {
		v.Holders[addr.String()] = int(h)
	}
	if d.departed {
		v.Role = "departed"
		v.Departed = true
	}
	if d.owner && d.joined {
		factor, target := health.Measure(d.healthConfig(), time.Now(), d.healthPeers())
		v.ReplicaFactor = factor
		v.ReplicaTarget = target
		v.QDSet = append(v.QDSet, int(d.cfg.ID))
		holders := make([]int, 0, len(d.replicaSet))
		for id := range d.replicaSet {
			holders = append(holders, int(id))
		}
		sort.Ints(holders)
		v.QDSet = append(v.QDSet, holders...)
	}
	return v
}

// healthConfig is the monitor parameterization actually in force.
func (d *Daemon) healthConfig() health.Config {
	return health.Config{Target: d.cfg.ReplicationTarget, TTL: d.cfg.ReplicaTTL}
}

// membersView snapshots the electorate; event-loop goroutine only.
func (d *Daemon) membersView() MembersResponse {
	now := time.Now()
	v := MembersResponse{Owner: int(d.ownerID), Members: make([]MemberInfo, 0, len(d.electorate))}
	if !d.joined {
		v.Owner = 0
	}
	for _, id := range d.electorate {
		m := MemberInfo{Node: int(id), Self: id == d.cfg.ID, Dead: d.dead[id]}
		if ip, ok := d.memberIPs[id]; ok {
			m.IP = ip.String()
		}
		m.LastSeenMS = -1
		if id == d.cfg.ID {
			m.LastSeenMS = 0
		} else if seen, ok := d.lastSeen[id]; ok {
			m.LastSeenMS = now.Sub(seen).Milliseconds()
		}
		if d.owner {
			m.ReplicaHolder = d.replicaSet[id]
			m.ReplicaAgeMS = -1
			if acked, ok := d.replicaAcked[id]; ok {
				m.ReplicaAgeMS = now.Sub(acked).Milliseconds()
			}
		}
		v.Members = append(v.Members, m)
	}
	return v
}

// healthView snapshots the replica-health measurement; event-loop
// goroutine only. Non-owners report Monitoring false with no measurement
// (the replica set is the owner's to manage).
func (d *Daemon) healthView() HealthResponse {
	if !d.owner || !d.joined {
		return HealthResponse{}
	}
	now := time.Now()
	cfg := d.healthConfig()
	factor, target := health.Measure(cfg, now, d.healthPeers())
	v := HealthResponse{
		Monitoring: d.cfg.HealthInterval > 0,
		Factor:     factor,
		Target:     target,
		Under:      factor < target,
	}
	ids := make([]radio.NodeID, 0, len(d.replicaSet))
	for id := range d.replicaSet {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := HealthHolder{Node: int(id), Dead: d.dead[id], AckAgeMS: -1}
		if acked, ok := d.replicaAcked[id]; ok {
			h.Fresh = cfg.Fresh(now, acked)
			h.AckAgeMS = now.Sub(acked).Milliseconds()
		}
		v.Holders = append(v.Holders, h)
	}
	return v
}

// handleMetricsJSON is the legacy /metrics body.
func (d *Daemon) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := d.coll.Snapshot()
	view := MetricsView{
		Counters: snap.Counters(),
		Traffic:  make(map[string]TrafficView),
	}
	for _, cat := range metrics.Categories() {
		if snap.Messages(cat) == 0 && snap.Hops(cat) == 0 {
			continue
		}
		view.Traffic[cat.String()] = TrafficView{Messages: snap.Messages(cat), Hops: snap.Hops(cat)}
	}
	writeJSON(w, http.StatusOK, view)
}
