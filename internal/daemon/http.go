package daemon

// JSON-over-HTTP control API. Handlers run on net/http goroutines and only
// talk to protocol state by posting closures to the event loop; the
// SyncCollector is safe to read directly.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"quorumconf/internal/metrics"
)

// StatusView is the /status response shape.
type StatusView struct {
	ID         int            `json:"id"`
	Role       string         `json:"role"`
	Joined     bool           `json:"joined"`
	IP         string         `json:"ip,omitempty"`
	NetworkID  string         `json:"network_id,omitempty"`
	Space      string         `json:"space"`
	Free       uint32         `json:"free"`
	Occupied   uint32         `json:"occupied"`
	Electorate []int          `json:"electorate"`
	Holders    map[string]int `json:"holders"`
	UptimeMS   int64          `json:"uptime_ms"`
}

// AllocateView is the /allocate response shape.
type AllocateView struct {
	Addr  string `json:"addr"`
	Value uint32 `json:"value"`
}

// MetricsView is the /metrics response shape.
type MetricsView struct {
	Counters map[string]int64           `json:"counters"`
	Traffic  map[string]TrafficView     `json:"traffic"`
	Samples  map[string]metrics.Summary `json:"samples,omitempty"`
}

// TrafficView is one category's message and hop totals.
type TrafficView struct {
	Messages int64 `json:"messages"`
	Hops     int64 `json:"hops"`
}

func (d *Daemon) httpMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", d.handleStatus)
	mux.HandleFunc("/allocate", d.handleAllocate)
	mux.HandleFunc("/metrics", d.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	res := make(chan StatusView, 1)
	d.post(func() { res <- d.statusView() })
	select {
	case v := <-res:
		writeJSON(w, http.StatusOK, v)
	case <-time.After(2 * time.Second):
		writeError(w, http.StatusServiceUnavailable, "daemon unresponsive")
	case <-d.done:
		writeError(w, http.StatusServiceUnavailable, "daemon stopped")
	}
}

// statusView snapshots protocol state; event-loop goroutine only.
func (d *Daemon) statusView() StatusView {
	v := StatusView{
		ID:         int(d.cfg.ID),
		Role:       "joining",
		Joined:     d.joined,
		Space:      d.cfg.Space.String(),
		Electorate: make([]int, 0, len(d.electorate)),
		Holders:    make(map[string]int, len(d.holders)),
		UptimeMS:   time.Since(d.started).Milliseconds(),
	}
	if d.joined {
		v.Role = "member"
		if d.owner {
			v.Role = "owner"
		}
	}
	if d.hasIP {
		v.IP = d.selfIP.String()
		v.NetworkID = d.networkID.String()
	}
	if d.table != nil {
		v.Free = d.table.FreeCount()
		v.Occupied = d.table.OccupiedCount()
	}
	for _, id := range d.electorate {
		v.Electorate = append(v.Electorate, int(id))
	}
	for addr, h := range d.holders {
		v.Holders[addr.String()] = int(h)
	}
	return v
}

func (d *Daemon) handleAllocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	res := make(chan allocResult, 1)
	d.post(func() { d.allocateLocal(res) })
	select {
	case out := <-res:
		if !out.ok {
			writeError(w, http.StatusConflict, "allocation failed: not joined, no quorum, or space exhausted")
			return
		}
		writeJSON(w, http.StatusOK, AllocateView{Addr: out.addr.String(), Value: uint32(out.addr)})
	case <-time.After(d.cfg.AllocTimeout):
		writeError(w, http.StatusServiceUnavailable, "allocation timed out")
	case <-d.done:
		writeError(w, http.StatusServiceUnavailable, "daemon stopped")
	}
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := d.coll.Snapshot()
	view := MetricsView{
		Counters: snap.Counters(),
		Traffic:  make(map[string]TrafficView),
	}
	for _, cat := range metrics.Categories() {
		if snap.Messages(cat) == 0 && snap.Hops(cat) == 0 {
			continue
		}
		view.Traffic[cat.String()] = TrafficView{Messages: snap.Messages(cat), Hops: snap.Hops(cat)}
	}
	writeJSON(w, http.StatusOK, view)
}
