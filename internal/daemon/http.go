package daemon

// Legacy JSON views and the shared response helpers. The route table and
// the /v1/ handlers live in api.go.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"quorumconf/internal/metrics"
)

// StatusView is the legacy name of the /status response shape.
//
// Deprecated: use StatusResponse (GET /v1/status).
type StatusView = StatusResponse

// AllocateView is the legacy name of the /allocate response shape.
//
// Deprecated: use AllocateResponse (POST /v1/allocate).
type AllocateView = AllocateResponse

// MetricsView is the JSON /metrics response shape (legacy route only; the
// /v1/metrics route serves Prometheus text format instead).
type MetricsView struct {
	Counters map[string]int64           `json:"counters"`
	Traffic  map[string]TrafficView     `json:"traffic"`
	Samples  map[string]metrics.Summary `json:"samples,omitempty"`
}

// TrafficView is one category's message and hop totals.
type TrafficView struct {
	Messages int64 `json:"messages"`
	Hops     int64 `json:"hops"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusView snapshots protocol state; event-loop goroutine only.
func (d *Daemon) statusView() StatusResponse {
	v := StatusResponse{
		ID:         int(d.cfg.ID),
		Role:       "joining",
		Joined:     d.joined,
		Draining:   d.Draining(),
		Space:      d.cfg.Space.String(),
		Electorate: make([]int, 0, len(d.electorate)),
		Holders:    make(map[string]int, len(d.holders)),
		UptimeMS:   time.Since(d.started).Milliseconds(),
	}
	if d.joined {
		v.Role = "member"
		if d.owner {
			v.Role = "owner"
		}
	}
	if d.hasIP {
		v.IP = d.selfIP.String()
		v.NetworkID = d.networkID.String()
	}
	if d.table != nil {
		v.Free = d.table.FreeCount()
		v.Occupied = d.table.OccupiedCount()
	}
	for _, id := range d.electorate {
		v.Electorate = append(v.Electorate, int(id))
	}
	for addr, h := range d.holders {
		v.Holders[addr.String()] = int(h)
	}
	return v
}

// handleMetricsJSON is the legacy /metrics body.
func (d *Daemon) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := d.coll.Snapshot()
	view := MetricsView{
		Counters: snap.Counters(),
		Traffic:  make(map[string]TrafficView),
	}
	for _, cat := range metrics.Categories() {
		if snap.Messages(cat) == 0 && snap.Hops(cat) == 0 {
			continue
		}
		view.Traffic[cat.String()] = TrafficView{Messages: snap.Messages(cat), Hops: snap.Hops(cat)}
	}
	writeJSON(w, http.StatusOK, view)
}
