package daemon

// Versioned HTTP control API. Everything a client should program against
// lives under /v1/ with the typed request/response structs below; the
// legacy unversioned routes (/status, /allocate, /metrics) are aliases that
// answer with a Deprecation header pointing at their successor. Handlers
// run on net/http goroutines and only talk to protocol state by posting
// closures to the event loop.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// StatusResponse is the GET /v1/status response body. ReplicaFactor,
// ReplicaTarget and QDSet are reported by owners only (see /v1/health for
// the full replica-health view).
type StatusResponse struct {
	ID        int    `json:"id"`
	Role      string `json:"role"`
	Joined    bool   `json:"joined"`
	Draining  bool   `json:"draining"`
	Departed  bool   `json:"departed,omitempty"`
	IP        string `json:"ip,omitempty"`
	NetworkID string `json:"network_id,omitempty"`
	// UDP is the daemon's bound transport address — what peers must
	// AddPeer to reach it, and what ctl.AutoJoin gathers to seed a
	// newcomer against a running fleet.
	UDP        string         `json:"udp,omitempty"`
	Space      string         `json:"space"`
	Free       uint32         `json:"free"`
	Occupied   uint32         `json:"occupied"`
	Electorate []int          `json:"electorate"`
	Holders    map[string]int `json:"holders"`
	UptimeMS   int64          `json:"uptime_ms"`

	// ReplicaFactor is the owner's effective replication factor: itself
	// plus every live designated holder with a fresh REPLICA_ACK lease.
	ReplicaFactor int `json:"replica_factor,omitempty"`
	// ReplicaTarget is the effective target the health monitor repairs to.
	ReplicaTarget int `json:"replica_target,omitempty"`
	// QDSet lists the designated replica holders, owner first.
	QDSet []int `json:"qdset,omitempty"`
}

// AllocateRequest is the POST /v1/allocate request body. The body may be
// empty (or `{}`): the address is then allocated on behalf of this daemon.
type AllocateRequest struct {
	// Node, when non-zero, names the cluster member the address is being
	// allocated for; it must be this daemon or a member of the electorate.
	Node int `json:"node,omitempty"`
}

// AllocateResponse is the POST /v1/allocate response body.
type AllocateResponse struct {
	Addr  string `json:"addr"`
	Value uint32 `json:"value"`
	Node  int    `json:"node,omitempty"`
}

// TraceResponse is the GET /v1/trace response body: the events currently
// retained in the daemon's ring sink, oldest first. See DESIGN.md
// Appendix C for the event schema.
type TraceResponse struct {
	Events []obs.Event `json:"events"`
}

// ErrorResponse is the body of every non-2xx API answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MemberInfo is one electorate member in the GET /v1/members response.
type MemberInfo struct {
	Node int    `json:"node"`
	IP   string `json:"ip,omitempty"`
	Self bool   `json:"self,omitempty"`
	Dead bool   `json:"dead,omitempty"`
	// ReplicaHolder reports designation into the owner's QDSet (owner's
	// view only; members report false for everyone).
	ReplicaHolder bool `json:"replica_holder,omitempty"`
	// LastSeenMS is milliseconds since the member's last message; -1 when
	// it has never been heard from.
	LastSeenMS int64 `json:"last_seen_ms,omitempty"`
	// ReplicaAgeMS is milliseconds since the member's last REPLICA_ACK;
	// -1 when it never acknowledged one.
	ReplicaAgeMS int64 `json:"replica_age_ms,omitempty"`
}

// MembersResponse is the GET /v1/members response body.
type MembersResponse struct {
	Owner   int          `json:"owner"`
	Members []MemberInfo `json:"members"`
}

// AddMemberRequest is the POST /v1/members request body: it registers the
// UDP transport address for a node ID so an orchestrated join can reach
// this daemon (the control-plane half of `quorumctl member add`).
type AddMemberRequest struct {
	Node int    `json:"node"`
	Addr string `json:"addr"`
}

// AddMemberResponse is the POST /v1/members response body.
type AddMemberResponse struct {
	Node int    `json:"node"`
	Addr string `json:"addr"`
}

// DrainResponse is the POST /v1/drain response body. Initiated reports
// whether this request performed the transition; a drain request against
// an already-draining daemon answers Draining true, Initiated false.
type DrainResponse struct {
	Draining  bool `json:"draining"`
	Initiated bool `json:"initiated"`
}

// DepartResponse is the POST /v1/depart response body.
type DepartResponse struct {
	Departed bool `json:"departed"`
}

// HealthHolder is one designated replica holder in the /v1/health view.
type HealthHolder struct {
	Node     int   `json:"node"`
	Fresh    bool  `json:"fresh"`
	Dead     bool  `json:"dead,omitempty"`
	AckAgeMS int64 `json:"ack_age_ms,omitempty"` // -1: never acknowledged
}

// HealthResponse is the GET /v1/health response body. Monitoring is false
// on non-owners and when the monitor is disabled; Factor/Target/Holders
// are the owner's live measurement either way.
type HealthResponse struct {
	Monitoring bool           `json:"monitoring"`
	Factor     int            `json:"factor,omitempty"`
	Target     int            `json:"target,omitempty"`
	Under      bool           `json:"under,omitempty"`
	Holders    []HealthHolder `json:"holders,omitempty"`
}

func (d *Daemon) httpMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", d.handleV1Status)
	mux.HandleFunc("/v1/allocate", d.handleV1Allocate)
	mux.HandleFunc("/v1/metrics", d.handleV1Metrics)
	mux.HandleFunc("/v1/trace", d.handleV1Trace)
	mux.HandleFunc("/v1/members", d.handleV1Members)
	mux.HandleFunc("/v1/drain", d.handleV1Drain)
	mux.HandleFunc("/v1/depart", d.handleV1Depart)
	mux.HandleFunc("/v1/health", d.handleV1Health)
	// Pre-v1 routes, kept for old clients. /metrics keeps its JSON shape;
	// the Prometheus exposition lives only under /v1/metrics.
	mux.HandleFunc("/status", deprecated("/v1/status", d.handleV1Status))
	mux.HandleFunc("/allocate", deprecated("/v1/allocate", d.handleV1Allocate))
	mux.HandleFunc("/metrics", deprecated("/v1/metrics", d.handleMetricsJSON))
	return mux
}

// deprecated wraps a legacy route: RFC 8594 Deprecation header plus a Link
// to the successor, then the real handler.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// onLoop runs view on the event loop and returns its result, answering w
// with a 503 (and returning false) when the daemon is wedged or stopped.
func onLoop[T any](d *Daemon, w http.ResponseWriter, view func() T) (T, bool) {
	res := make(chan T, 1)
	d.post(func() { res <- view() })
	select {
	case v := <-res:
		return v, true
	case <-time.After(2 * time.Second):
		writeError(w, http.StatusServiceUnavailable, "daemon unresponsive")
	case <-d.done:
		writeError(w, http.StatusServiceUnavailable, "daemon stopped")
	}
	var zero T
	return zero, false
}

func (d *Daemon) handleV1Status(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if v, ok := onLoop(d, w, d.statusView); ok {
		writeJSON(w, http.StatusOK, v)
	}
}

func (d *Daemon) handleV1Members(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if v, ok := onLoop(d, w, d.membersView); ok {
			writeJSON(w, http.StatusOK, v)
		}
	case http.MethodPost:
		var req AddMemberRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.Node <= 0 {
			writeError(w, http.StatusBadRequest, "node must be positive, got %d", req.Node)
			return
		}
		if req.Addr == "" {
			writeError(w, http.StatusBadRequest, "addr is required")
			return
		}
		if err := d.AddPeer(radio.NodeID(req.Node), req.Addr); err != nil {
			writeError(w, http.StatusBadRequest, "registering peer %d: %v", req.Node, err)
			return
		}
		d.coll.Inc("daemon.members_added")
		writeJSON(w, http.StatusOK, AddMemberResponse{Node: req.Node, Addr: req.Addr})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (d *Daemon) handleV1Drain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	initiated := d.Drain()
	writeJSON(w, http.StatusOK, DrainResponse{Draining: true, Initiated: initiated})
}

func (d *Daemon) handleV1Depart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d.cfg.AllocTimeout)
	defer cancel()
	switch err := d.Depart(ctx); {
	case err == nil:
		writeJSON(w, http.StatusOK, DepartResponse{Departed: true})
	case errors.Is(err, ErrOwnerDepart):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrNotJoined):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "departure timed out awaiting DEPART_ACK")
	default:
		writeError(w, http.StatusServiceUnavailable, "departure failed: %v", err)
	}
}

func (d *Daemon) handleV1Health(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if v, ok := onLoop(d, w, d.healthView); ok {
		writeJSON(w, http.StatusOK, v)
	}
}

// readJSON decodes a strict JSON body into dst, answering 400 and
// returning false on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		writeError(w, http.StatusBadRequest, "request body is required")
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

func (d *Daemon) handleV1Allocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if d.Draining() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	var req AllocateRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
			return
		}
	}
	if req.Node != 0 {
		known := make(chan bool, 1)
		d.post(func() {
			id := radio.NodeID(req.Node)
			known <- id == d.cfg.ID || d.inElectorate(id)
		})
		select {
		case ok := <-known:
			if !ok {
				writeError(w, http.StatusNotFound, "unknown node %d", req.Node)
				return
			}
		case <-time.After(2 * time.Second):
			writeError(w, http.StatusServiceUnavailable, "daemon unresponsive")
			return
		case <-d.done:
			writeError(w, http.StatusServiceUnavailable, "daemon stopped")
			return
		}
	}
	start := time.Now()
	res := make(chan allocResult, 1)
	d.post(func() { d.allocateLocal(res) })
	select {
	case out := <-res:
		if !out.ok {
			writeError(w, http.StatusConflict, "allocation failed: not joined, no quorum, or space exhausted")
			return
		}
		d.hists.Observe(obs.HistConfigLatency, 1e-6, time.Since(start).Microseconds())
		writeJSON(w, http.StatusOK, AllocateResponse{Addr: out.addr.String(), Value: uint32(out.addr), Node: req.Node})
	case <-time.After(d.cfg.AllocTimeout):
		writeError(w, http.StatusServiceUnavailable, "allocation timed out")
	case <-d.done:
		writeError(w, http.StatusServiceUnavailable, "daemon stopped")
	}
}

func (d *Daemon) handleV1Trace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	events := d.ring.Snapshot()
	if kind := r.URL.Query().Get("kind"); kind != "" {
		want, ok := obs.KindByName(kind)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown event kind %q", kind)
			return
		}
		kept := events[:0]
		for _, e := range events {
			if e.Kind == want {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if spanStr := r.URL.Query().Get("span"); spanStr != "" {
		want, err := obs.ParseSpan(spanStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad span filter: %v", err)
			return
		}
		kept := events[:0]
		for _, e := range events {
			if e.Span == want {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{Events: events})
}

// handleV1Metrics serves the collector in Prometheus text exposition
// format: every counter as quorumd_<name>, per-category traffic as two
// labelled counters, uptime as a gauge.
func (d *Daemon) handleV1Metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := d.coll.Snapshot()
	var b strings.Builder
	counters := snap.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "quorumd_" + sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", metric, metric, counters[name])
	}
	fmt.Fprintf(&b, "# TYPE quorumd_traffic_messages_total counter\n")
	for _, cat := range metrics.Categories() {
		if n := snap.Messages(cat); n != 0 {
			fmt.Fprintf(&b, "quorumd_traffic_messages_total{category=%q} %d\n", cat.String(), n)
		}
	}
	fmt.Fprintf(&b, "# TYPE quorumd_traffic_hops_total counter\n")
	for _, cat := range metrics.Categories() {
		if n := snap.Hops(cat); n != 0 {
			fmt.Fprintf(&b, "quorumd_traffic_hops_total{category=%q} %d\n", cat.String(), n)
		}
	}
	for _, name := range d.hists.Names() {
		s, ok := d.hists.Snapshot(name)
		if !ok {
			continue
		}
		writePromHistogram(&b, "quorumd_"+sanitizeMetricName(name), s)
	}
	fmt.Fprintf(&b, "# TYPE quorumd_uptime_seconds gauge\nquorumd_uptime_seconds %g\n",
		time.Since(d.started).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// writePromHistogram renders one histogram snapshot in Prometheus text
// exposition format: cumulative le-labelled buckets (empty buckets elided;
// the le values stay ascending, which is all the format requires), the
// mandatory +Inf bucket, then _sum and _count. Bucket bounds are the
// histogram's power-of-two raw bounds scaled into exported units.
func writePromHistogram(b *strings.Builder, metric string, s obs.HistogramSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", metric)
	cum := uint64(0)
	for i := 0; i < 64; i++ {
		c := s.Buckets[i]
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", metric, strconv.FormatFloat(s.UpperBound(i)*s.Scale, 'g', -1, 64), cum)
	}
	// A scrape can land between a bucket bump and the matching count bump;
	// keep +Inf monotone with the buckets either way.
	total := s.Count
	if cum+s.Buckets[64] > total {
		total = cum + s.Buckets[64]
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", metric, total)
	fmt.Fprintf(b, "%s_sum %g\n", metric, s.ScaledSum())
	fmt.Fprintf(b, "%s_count %d\n", metric, total)
}

// sanitizeMetricName maps a collector counter name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
