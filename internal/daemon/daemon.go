// Package daemon hosts one quorum-autoconfiguration protocol node on real
// sockets — the deployable counterpart of the simulated node in
// internal/core.
//
// A cluster of daemons manages one IPv4 block the way the paper's §IV
// machinery does, specialized to the deployment topology a daemon fleet
// actually has (every peer one socket hop away, so the QDSet is the whole
// cluster and replication is full):
//
//   - the bootstrap daemon owns the address space (the paper's first
//     cluster head) and is the allocator;
//   - joining daemons request an address with CH_REQ — any member relays
//     to the owner through AGENT_FWD/AGENT_CFG — receive a COM_CFG grant
//     plus a REPLICA_DIST replica of the table, and enter the electorate;
//   - every allocation runs a quorum ballot (QUORUM_CLT/QUORUM_CFM) over
//     the electorate with mutual-exclusion vote grants and version
//     timestamps, and commits with QUORUM_UPD — the paper's guarantee that
//     no address is ever handed out twice;
//   - address-to-holder attribution propagates with UPDATE_LOC;
//   - members heartbeat with REP_REQ/REP_RSP; a silent member is declared
//     dead after SuspectAfter, and the owner reclaims every address it
//     held via ADDR_REC / REC_REP / QUORUM_UPD(free), then shrinks the
//     electorate with a fresh REPLICA_DIST (§IV-D, §V-B). If the owner
//     itself dies, the lowest-ID survivor promotes itself and reclaims.
//
// All protocol state lives on a single event-loop goroutine; the
// transport's receive callback, timers and HTTP handlers post closures to
// it, so there is no protocol-level locking.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/health"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
	"quorumconf/internal/transport/udptransport"
	"quorumconf/internal/wire"
)

// Config parameterizes one daemon. Zero durations take defaults sized for
// LAN deployments; tests shrink them.
type Config struct {
	// ID is this daemon's node ID (must be unique in the cluster).
	ID radio.NodeID
	// Space is the cluster's full address block; every member must agree.
	Space addrspace.Block
	// Bootstrap makes this daemon the initial space owner (exactly one
	// per cluster).
	Bootstrap bool
	// Seeds are peers asked for configuration, tried round-robin. Ignored
	// for the bootstrap daemon.
	Seeds []radio.NodeID
	// Listen is the UDP bind address ("127.0.0.1:0" for ephemeral).
	Listen string
	// HTTPListen is the control API bind address; empty disables HTTP.
	HTTPListen string

	// HeartbeatInterval is the REP_REQ period (default 500ms).
	HeartbeatInterval time.Duration
	// SuspectAfter declares a silent member dead (default 4 heartbeats).
	SuspectAfter time.Duration
	// QuorumTimeout bounds one ballot round (default 1s).
	QuorumTimeout time.Duration
	// ReclaimSettle is how long reclamation waits for REC_REP defenses
	// (default 1s).
	ReclaimSettle time.Duration
	// JoinRetry is the joiner's re-request period (default 700ms).
	JoinRetry time.Duration
	// AllocTimeout bounds one HTTP /allocate request (default 5s).
	AllocTimeout time.Duration
	// MaxProposals bounds candidate addresses per allocation (default 16).
	MaxProposals int

	// ReplicationTarget is the desired number of replica holders for the
	// owner's table, including the owner itself — the deployment analogue
	// of the paper's QDSet size. 0 replicates to every member (the
	// pre-health-monitor behavior); values >= 2 keep a bounded QDSet that
	// the health monitor maintains proactively, recruiting replacements
	// when holders die instead of waiting for T_d reclamation.
	ReplicationTarget int
	// HealthInterval is the replica-health check period (default
	// 2*HeartbeatInterval). Negative disables the monitor.
	HealthInterval time.Duration
	// ReplicaTTL is how long one REPLICA_ACK keeps a replica counting
	// toward the replication factor (default 8*HeartbeatInterval). The
	// monitor re-syncs holders at half-life so healthy leases never lapse.
	ReplicaTTL time.Duration

	// RetryBase/MaxAttempts/DropRate tune the UDP transport (see
	// udptransport.Config).
	RetryBase   time.Duration
	MaxAttempts int
	DropRate    float64
	// BatchFlushBytes/BatchFlushDelay enable transport frame coalescing:
	// queued messages to one peer leave the socket as a single batch
	// frame once the queue holds this many payload bytes or the oldest
	// message has waited this long (see udptransport.Config). Both zero
	// leaves batching off.
	BatchFlushBytes int
	BatchFlushDelay time.Duration
	// AuthKey, when set, seals every outgoing datagram with
	// HMAC-SHA256 and rejects unauthenticated input before any protocol
	// state is touched (see udptransport.Config.AuthKey and DESIGN.md
	// Appendix F). Every cluster member must share the key.
	AuthKey []byte
	// RateLimit caps accepted datagrams per second per remote address
	// (token bucket, burst RateBurst); 0 disables limiting.
	RateLimit float64
	RateBurst int

	// Nonce disambiguates the network tag; 0 draws a random one.
	Nonce uint32
	// Metrics receives daemon and transport counters; nil allocates one.
	Metrics *metrics.SyncCollector
	// Tracer receives protocol events. Nil allocates a private tracer.
	// Either way the daemon attaches a bounded ring sink (obs.Ring) that
	// /v1/trace serves, and rebinds the tracer clock to time since Start.
	Tracer *obs.Tracer
	// TraceRing bounds the /v1/trace ring (default obs.DefaultRingSize).
	TraceRing int
	// Histograms receives protocol latency distributions — config latency,
	// ballot RTT, reclamation time and transport batch occupancy — served
	// by /v1/metrics in Prometheus histogram format. Nil allocates a
	// private registry (histograms are always on; recording is lock-free).
	Histograms *obs.Histograms
	// Logf receives progress logging; nil discards.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() error {
	if c.ID <= 0 {
		return fmt.Errorf("daemon: node ID must be positive, got %d", c.ID)
	}
	if c.Space.Size() < 2 {
		return fmt.Errorf("daemon: address space %v too small", c.Space)
	}
	if !c.Bootstrap && len(c.Seeds) == 0 {
		return fmt.Errorf("daemon: non-bootstrap daemon needs at least one seed")
	}
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 4 * c.HeartbeatInterval
	}
	if c.QuorumTimeout == 0 {
		c.QuorumTimeout = time.Second
	}
	if c.ReclaimSettle == 0 {
		c.ReclaimSettle = time.Second
	}
	if c.JoinRetry == 0 {
		c.JoinRetry = 700 * time.Millisecond
	}
	if c.AllocTimeout == 0 {
		c.AllocTimeout = 5 * time.Second
	}
	if c.MaxProposals == 0 {
		c.MaxProposals = 16
	}
	if c.ReplicationTarget < 0 || c.ReplicationTarget == 1 {
		return fmt.Errorf("daemon: replication target %d: want 0 (full) or >= 2", c.ReplicationTarget)
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * c.HeartbeatInterval
	}
	if c.ReplicaTTL == 0 {
		c.ReplicaTTL = 8 * c.HeartbeatInterval
	}
	if c.Nonce == 0 {
		c.Nonce = rand.Uint32()
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewSync()
	}
	if c.Histograms == nil {
		c.Histograms = obs.NewHistograms()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// ballot is one in-flight quorum vote collection at the allocator.
type ballot struct {
	id        uint64
	addr      addrspace.Addr
	requestor radio.NodeID
	agent     radio.NodeID // non-zero: reply travels back through this relay
	span      uint64       // causal trace of the allocation this ballot serves
	openedAt  time.Time    // current round's open time (ballot RTT histogram)
	votes     map[radio.NodeID]msg.QuorumCfm
	attempts  int
	timer     *time.Timer
	reply     func(addr addrspace.Addr, ok bool)
}

// voteGrant is the voter-side mutual exclusion lock on one address.
type voteGrant struct {
	ballotID uint64
	expires  time.Time
}

// reclaimRun tracks one in-progress reclamation of a dead member.
type reclaimRun struct {
	target    radio.NodeID
	span      uint64 // causal trace minted when the reclamation started
	startedAt time.Time
	refreshed map[addrspace.Addr]bool
}

// Daemon is one protocol node over UDP. Create with New, then Start.
type Daemon struct {
	cfg    Config
	coll   *metrics.SyncCollector
	tracer *obs.Tracer
	ring   *obs.Ring
	hists  *obs.Histograms
	tr     *udptransport.Transport

	draining atomic.Bool

	httpLn  net.Listener
	httpSrv *http.Server

	events chan func()
	done   chan struct{}
	loopWG chan struct{} // closed when the event loop exits

	started time.Time

	// Protocol state: event-loop goroutine only.
	owner          bool
	ownerID        radio.NodeID
	joined         bool
	haveMembership bool // adopted at least one REPLICA_DIST membership view
	selfIP         addrspace.Addr
	hasIP          bool
	networkID      msg.NetTag
	table          *addrspace.Table
	electorate     []radio.NodeID
	holders        map[addrspace.Addr]radio.NodeID
	memberIPs      map[radio.NodeID]addrspace.Addr
	lastSeen       map[radio.NodeID]time.Time
	dead           map[radio.NodeID]bool

	// Replica health state (owner side): the designated holder set, the
	// lease timestamps REPLICA_ACK refreshes, and the monitor judging them.
	monitor      *health.Monitor
	replicaSet   map[radio.NodeID]bool
	replicaAcked map[radio.NodeID]time.Time

	// Graceful departure state (member side).
	departing     bool
	departed      bool
	departWaiters []chan error

	ballotSeq    uint64
	spanSeq      uint64 // per-daemon sequence behind mintSpan
	joinSpan     uint64 // span of this daemon's own join, minted on first CH_REQ
	joinStarted  time.Time
	ballots      map[uint64]*ballot
	pendingAddrs map[addrspace.Addr]bool
	grants       map[addrspace.Addr]voteGrant
	reclaims     map[radio.NodeID]*reclaimRun
	joinInFlight map[radio.NodeID]bool
	joinTries    int
	allocWaiters []chan allocResult
}

type allocResult struct {
	addr addrspace.Addr
	ok   bool
}

// New validates the configuration and builds a daemon. Nothing is bound
// until Start.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ring := obs.NewRing(cfg.TraceRing)
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(nil)
	}
	tracer.AddSink(ring)
	return &Daemon{
		cfg:          cfg,
		coll:         cfg.Metrics,
		tracer:       tracer,
		ring:         ring,
		hists:        cfg.Histograms,
		events:       make(chan func(), 1024),
		done:         make(chan struct{}),
		loopWG:       make(chan struct{}),
		holders:      make(map[addrspace.Addr]radio.NodeID),
		memberIPs:    make(map[radio.NodeID]addrspace.Addr),
		lastSeen:     make(map[radio.NodeID]time.Time),
		dead:         make(map[radio.NodeID]bool),
		monitor:      health.New(health.Config{Target: cfg.ReplicationTarget, TTL: cfg.ReplicaTTL}, tracer),
		replicaSet:   make(map[radio.NodeID]bool),
		replicaAcked: make(map[radio.NodeID]time.Time),
		ballots:      make(map[uint64]*ballot),
		pendingAddrs: make(map[addrspace.Addr]bool),
		grants:       make(map[addrspace.Addr]voteGrant),
		reclaims:     make(map[radio.NodeID]*reclaimRun),
		joinInFlight: make(map[radio.NodeID]bool),
	}, nil
}

// Start binds the UDP socket (and HTTP listener when configured) and
// launches the event loop. Peers may be added before or after Start; a
// joiner keeps retrying its seeds until one answers.
func (d *Daemon) Start() error {
	tr, err := udptransport.New(udptransport.Config{
		ID:              d.cfg.ID,
		Listen:          d.cfg.Listen,
		Metrics:         d.coll,
		RetryBase:       d.cfg.RetryBase,
		MaxAttempts:     d.cfg.MaxAttempts,
		DropRate:        d.cfg.DropRate,
		BatchFlushBytes: d.cfg.BatchFlushBytes,
		BatchFlushDelay: d.cfg.BatchFlushDelay,
		AuthKey:         d.cfg.AuthKey,
		RateLimit:       d.cfg.RateLimit,
		RateBurst:       d.cfg.RateBurst,
		Tracer:          d.tracer,
		Histograms:      d.hists,
	})
	if err != nil {
		return err
	}
	d.tr = tr
	tr.SetHandler(func(env *wire.Envelope) { d.post(func() { d.handle(env) }) })

	if d.cfg.HTTPListen != "" {
		ln, err := net.Listen("tcp", d.cfg.HTTPListen)
		if err != nil {
			_ = tr.Close(context.Background())
			return fmt.Errorf("daemon: http listen: %w", err)
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: d.httpMux()}
		go func() { _ = d.httpSrv.Serve(ln) }()
	}

	d.started = time.Now()
	started := d.started
	d.tracer.SetClock(func() time.Duration { return time.Since(started) })
	d.trace(obs.Event{Kind: obs.EvDaemonStart})
	go d.loop()

	d.post(func() {
		if d.cfg.Bootstrap {
			d.bootstrap()
		} else {
			d.tryJoin()
		}
		d.scheduleTick()
		d.scheduleHealth()
	})
	d.logf("started: udp=%s bootstrap=%v", tr.LocalAddr(), d.cfg.Bootstrap)
	return nil
}

// ID returns the daemon's node ID.
func (d *Daemon) ID() radio.NodeID { return d.cfg.ID }

// UDPAddr returns the bound transport address (valid after Start).
func (d *Daemon) UDPAddr() *net.UDPAddr { return d.tr.LocalAddr() }

// HTTPAddr returns the control API address, or "" when HTTP is disabled.
func (d *Daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Metrics returns the daemon's collector.
func (d *Daemon) Metrics() *metrics.SyncCollector { return d.coll }

// Histograms returns the daemon's latency-histogram registry — the same
// one /v1/metrics exports.
func (d *Daemon) Histograms() *obs.Histograms { return d.hists }

// AddPeer registers the transport address for a peer ID.
func (d *Daemon) AddPeer(id radio.NodeID, addr string) error { return d.tr.AddPeer(id, addr) }

// Trace returns the events currently retained in the daemon's ring sink,
// oldest first — the same view /v1/trace serves.
func (d *Daemon) Trace() []obs.Event { return d.ring.Snapshot() }

// Drain marks the daemon as shutting down: /v1/allocate (and its legacy
// alias) refuse new work with 503 while in-flight protocol traffic keeps
// flowing, so an operator can empty a node before Kill. Drain is
// idempotent and safe under concurrent calls: exactly one caller observes
// the transition (and triggers the trace event); every later or
// concurrent call is a no-op returning false.
func (d *Daemon) Drain() bool {
	if d.draining.Swap(true) {
		return false
	}
	d.trace(obs.Event{Kind: obs.EvDaemonStop, Detail: "draining"})
	d.logf("draining: refusing new allocations")
	return true
}

// Draining reports whether Drain was called.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// ErrOwnerDepart rejects graceful departure on the space owner: its
// replica holders cannot absorb the allocator role mid-flight (ownership
// handoff is a failover path, not a departure path).
var ErrOwnerDepart = errors.New("daemon: the space owner cannot depart gracefully")

// ErrNotJoined rejects operations that need a configured member.
var ErrNotJoined = errors.New("daemon: not joined")

// Depart performs the paper's graceful RETURN_ADDR departure on demand:
// every address this member holds (its own IP last) is returned to the
// owner, which frees them under quorum, shrinks the electorate, and
// confirms with DEPART_ACK. The daemon drains immediately and keeps
// answering reads, so an operator can verify and then Kill it. Depart is
// idempotent: concurrent calls share one departure exchange.
func (d *Daemon) Depart(ctx context.Context) error {
	res := make(chan error, 1)
	d.post(func() { d.startDepart(res) })
	select {
	case err := <-res:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-d.done:
		return errors.New("daemon: stopped before departure completed")
	}
}

// Kill stops the daemon abruptly: sockets closed, no departure exchange —
// the crash the paper's reclamation machinery exists for. Safe to call
// more than once.
func (d *Daemon) Kill() {
	select {
	case <-d.done:
		return
	default:
	}
	d.trace(obs.Event{Kind: obs.EvDaemonStop, Detail: "kill"})
	close(d.done)
	if d.httpSrv != nil {
		_ = d.httpSrv.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = d.tr.Close(ctx)
	<-d.loopWG
}

// Close is Kill. For a graceful leave, call Depart first (RETURN_ADDR on
// demand), then Kill once it confirms.
func (d *Daemon) Close() { d.Kill() }

// --- event loop ----------------------------------------------------------

func (d *Daemon) loop() {
	defer close(d.loopWG)
	for {
		select {
		case <-d.done:
			return
		case fn := <-d.events:
			fn()
		}
	}
}

// post hands a closure to the event loop; drops it when the daemon died.
func (d *Daemon) post(fn func()) {
	select {
	case d.events <- fn:
	case <-d.done:
	}
}

// after schedules fn on the event loop.
func (d *Daemon) after(dur time.Duration, fn func()) *time.Timer {
	return time.AfterFunc(dur, func() { d.post(fn) })
}

func (d *Daemon) logf(format string, args ...any) {
	d.cfg.Logf("quorumd[%d]: "+format, append([]any{int(d.cfg.ID)}, args...)...)
}

// --- startup -------------------------------------------------------------

// bootstrap makes this daemon the first node: it owns the whole space and
// configures itself with the lowest address (the paper's first cluster
// head, whose IP becomes the network ID).
func (d *Daemon) bootstrap() {
	t, err := addrspace.NewTable(d.cfg.Space)
	if err != nil {
		d.logf("bootstrap: %v", err)
		return
	}
	d.table = t
	d.selfIP = d.cfg.Space.Lo
	d.hasIP = true
	if _, err := d.table.Mark(d.selfIP, addrspace.Occupied); err != nil {
		d.logf("bootstrap mark: %v", err)
	}
	d.networkID = msg.NetTag{Addr: d.selfIP, Nonce: d.cfg.Nonce}
	d.owner = true
	d.ownerID = d.cfg.ID
	d.electorate = []radio.NodeID{d.cfg.ID}
	d.holders[d.selfIP] = d.cfg.ID
	d.memberIPs[d.cfg.ID] = d.selfIP
	d.joined = true
	d.coll.Inc("daemon.bootstrap")
	d.trace(obs.Event{Kind: obs.EvHeadElected, Addr: d.selfIP, Detail: "bootstrap"})
	d.trace(obs.Event{Kind: obs.EvNodeConfigured, Addr: d.selfIP, Detail: "head"})
	d.logf("bootstrap: own %v as %v, network %v", d.cfg.Space, d.selfIP, d.networkID)
}

// tryJoin sends CH_REQ to the next seed; rescheduled until joined. The
// first attempt mints this daemon's join span, which every retry reuses —
// the whole join is one causal operation however many seeds it takes.
func (d *Daemon) tryJoin() {
	if d.joined {
		return
	}
	seed := d.cfg.Seeds[d.joinTries%len(d.cfg.Seeds)]
	d.joinTries++
	if d.joinSpan == 0 {
		d.joinSpan = d.mintSpan()
		d.joinStarted = time.Now()
		d.trace(obs.Event{Kind: obs.EvAllocRequest, Peer: seed, Span: d.joinSpan, Detail: "join"})
	}
	d.coll.Inc("daemon.join_attempts")
	d.sendSpan(seed, msg.TChReq, metrics.CatConfig, d.joinSpan, msg.ChReq{PathHops: 0})
	d.after(d.cfg.JoinRetry, d.tryJoin)
}

// scheduleTick runs the periodic maintenance: heartbeats and failure
// detection.
func (d *Daemon) scheduleTick() {
	d.after(d.cfg.HeartbeatInterval, func() {
		d.tick()
		d.scheduleTick()
	})
}

// scheduleHealth runs the replica-health monitor (owner side).
func (d *Daemon) scheduleHealth() {
	if d.cfg.HealthInterval <= 0 {
		return
	}
	d.after(d.cfg.HealthInterval, func() {
		d.healthTick()
		d.scheduleHealth()
	})
}

func (d *Daemon) tick() {
	if !d.joined || d.departed {
		return
	}
	now := time.Now()
	for _, id := range d.electorate {
		if id == d.cfg.ID || d.dead[id] {
			continue
		}
		if last, ok := d.lastSeen[id]; !ok {
			d.lastSeen[id] = now // grace period starts on first sight of the electorate
		} else if now.Sub(last) > d.cfg.SuspectAfter {
			d.declareDead(id)
			continue
		}
		d.sendTo(id, msg.TRepReq, metrics.CatHello, msg.RepReq{})
	}
}

// --- helpers -------------------------------------------------------------

func (d *Daemon) sendTo(dst radio.NodeID, typ string, cat metrics.Category, payload any) {
	d.sendSpan(dst, typ, cat, 0, payload)
}

// sendSpan is sendTo carrying a causal span identifier: the envelope rides
// the wire in the version-2 span extension, so the receiver's events join
// the sender's trace.
func (d *Daemon) sendSpan(dst radio.NodeID, typ string, cat metrics.Category, span uint64, payload any) {
	if dst == d.cfg.ID {
		return
	}
	env := &wire.Envelope{Type: typ, Dst: dst, Category: cat, Span: span, Payload: payload}
	// Background context: the event loop must never block on a full peer
	// queue, so full queues surface as ErrQueueFull and the protocol's
	// own retries recover.
	if err := d.tr.Send(context.Background(), env); err != nil {
		d.coll.Inc("daemon.send_err")
		d.logf("send %s to %d: %v", typ, dst, err)
	}
}

// mintSpan issues the next causal trace identifier originating at this
// daemon. Event-loop goroutine only.
func (d *Daemon) mintSpan() uint64 {
	d.spanSeq++
	return obs.MintSpan(d.cfg.ID, d.spanSeq)
}

// trace stamps the local node ID onto e and emits it.
func (d *Daemon) trace(e obs.Event) {
	e.Node = d.cfg.ID
	d.tracer.Emit(e)
}

// members returns the electorate without self and without the dead.
func (d *Daemon) members() []radio.NodeID {
	out := make([]radio.NodeID, 0, len(d.electorate))
	for _, id := range d.electorate {
		if id != d.cfg.ID && !d.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

func (d *Daemon) inElectorate(id radio.NodeID) bool {
	for _, e := range d.electorate {
		if e == id {
			return true
		}
	}
	return false
}

// majority is the quorum threshold over the current electorate.
func (d *Daemon) majority() int { return len(d.electorate)/2 + 1 }

func (d *Daemon) addToElectorate(id radio.NodeID) {
	if d.inElectorate(id) {
		return
	}
	d.electorate = append(d.electorate, id)
	sort.Slice(d.electorate, func(i, j int) bool { return d.electorate[i] < d.electorate[j] })
}

func (d *Daemon) removeFromElectorate(id radio.NodeID) {
	out := d.electorate[:0]
	for _, e := range d.electorate {
		if e != id {
			out = append(out, e)
		}
	}
	d.electorate = out
}
