package daemon

// Protocol message handling and the allocation/reclamation state machines.
// Everything in this file runs on the event-loop goroutine.

import (
	"sort"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/obs"
	"quorumconf/internal/wire"

	"quorumconf/internal/radio"
)

// handle dispatches one received envelope. Any message is proof of life.
func (d *Daemon) handle(env *wire.Envelope) {
	d.lastSeen[env.Src] = time.Now()
	switch p := env.Payload.(type) {
	case msg.ChReq:
		d.onJoinRequest(env.Src, 0, env.Span)
	case msg.AgentFwd:
		d.onJoinRequest(p.Requestor, env.Src, env.Span)
	case msg.AgentCfg:
		d.onAgentCfg(env.Src, p, env.Span)
	case msg.ComReq:
		d.onAllocRequest(env.Src, env.Span)
	case msg.ComCfg:
		d.onGrant(env.Src, p, env.Span)
	case msg.CfgNack:
		d.onNack()
	case msg.ReplicaDist:
		d.onReplicaDist(env.Src, p)
	case msg.ReplicaAck:
		d.onReplicaAck(env.Src)
	case msg.ReturnAddr:
		d.onReturnAddr(env.Src, p)
	case msg.DepartAck:
		d.onDepartAck()
	case msg.QuorumClt:
		d.onQuorumClt(env.Src, p, env.Span)
	case msg.QuorumCfm:
		d.onQuorumCfm(env.Src, p)
	case msg.QuorumUpd:
		d.onQuorumUpd(p)
	case msg.UpdateLoc:
		d.onUpdateLoc(p)
	case msg.RepReq:
		d.sendTo(env.Src, msg.TRepRsp, metrics.CatHello, msg.RepRsp{})
	case msg.RepRsp, msg.ChAck, msg.ComAck:
		// Liveness only: lastSeen already refreshed above.
	case msg.AddrRec:
		d.onAddrRec(env.Src, p, env.Span)
	case msg.RecRep:
		d.onRecRep(env.Src, p)
	default:
		d.coll.Inc("daemon.unhandled_msg")
	}
}

// --- joining -------------------------------------------------------------

// onJoinRequest handles CH_REQ (agent == 0: the joiner reached us directly)
// and AGENT_FWD (agent relayed a joiner that does not know the owner).
// span is the joiner's causal trace, carried through ballot and grant.
func (d *Daemon) onJoinRequest(requestor, agent radio.NodeID, span uint64) {
	if requestor == d.cfg.ID {
		return
	}
	if !d.owner {
		// Members relay toward the owner; a daemon that has not joined yet
		// cannot help and stays silent (the joiner retries another seed).
		if d.joined && agent == 0 {
			d.sendSpan(d.ownerID, msg.TAgentFwd, metrics.CatConfig, span, msg.AgentFwd{Requestor: requestor, PathHops: 1})
		}
		return
	}

	delete(d.dead, requestor) // a reclaimed daemon may come back and rejoin
	if ip, ok := d.memberIPs[requestor]; ok && d.inElectorate(requestor) {
		// Duplicate CH_REQ: the previous grant was lost in flight. Re-send;
		// every step of the grant is idempotent at the receiver.
		d.sendJoinGrant(requestor, agent, ip, span)
		return
	}
	if d.joinInFlight[requestor] {
		return
	}
	d.joinInFlight[requestor] = true
	d.startBallot(requestor, span, func(addr addrspace.Addr, ok bool) {
		delete(d.joinInFlight, requestor)
		if !ok {
			d.coll.Inc("daemon.join_fail")
			if agent == 0 {
				d.sendSpan(requestor, msg.TNack, metrics.CatConfig, span, msg.CfgNack{})
			}
			return
		}
		d.addToElectorate(requestor)
		d.memberIPs[requestor] = addr
		d.holders[addr] = requestor
		d.lastSeen[requestor] = time.Now()
		d.coll.Inc("daemon.joins")
		d.sendJoinGrant(requestor, agent, addr, span)
		d.logf("admitted %d as %v; electorate %v", requestor, addr, d.electorate)
	})
}

// sendJoinGrant delivers the admission: the address grant (via the relay
// agent when there is one), the replica + electorate to everyone, and the
// full holder map to the newcomer.
func (d *Daemon) sendJoinGrant(requestor, agent radio.NodeID, ip addrspace.Addr, span uint64) {
	grant := msg.ComCfg{Addr: ip, NetworkID: d.networkID, Configurer: d.cfg.ID, PathHops: 1}
	if agent != 0 {
		d.sendSpan(agent, msg.TAgentCfg, metrics.CatConfig, span, msg.AgentCfg{Requestor: requestor, Grant: grant})
	} else {
		d.sendSpan(requestor, msg.TComCfg, metrics.CatConfig, span, grant)
	}
	d.broadcastReplica()
	for addr, h := range d.holders {
		d.sendTo(requestor, msg.TUpdateLoc, metrics.CatSync, msg.UpdateLoc{Configurer: h, ConfigurerIP: d.memberIPs[h], Addr: addr})
	}
}

// onAgentCfg is the relay leg: the owner answered a join we forwarded.
func (d *Daemon) onAgentCfg(src radio.NodeID, p msg.AgentCfg, span uint64) {
	if p.Requestor == d.cfg.ID {
		d.onGrant(src, p.Grant, span)
		return
	}
	d.coll.Inc("daemon.agent_relays")
	d.sendSpan(p.Requestor, msg.TComCfg, metrics.CatConfig, span, p.Grant)
}

// onGrant handles COM_CFG: our own configuration while joining, or an
// allocation we requested on behalf of an HTTP client once joined.
func (d *Daemon) onGrant(src radio.NodeID, g msg.ComCfg, span uint64) {
	if !d.hasIP {
		d.selfIP = g.Addr
		d.hasIP = true
		d.networkID = g.NetworkID
		d.ownerID = g.Configurer
		d.memberIPs[d.cfg.ID] = g.Addr
		d.holders[g.Addr] = d.cfg.ID
		d.trace(obs.Event{Kind: obs.EvAllocGrant, Peer: g.Configurer, Addr: g.Addr, Span: span, Detail: "join"})
		d.sendTo(g.Configurer, msg.TChAck, metrics.CatConfig, msg.ChAck{})
		d.checkJoined()
		return
	}
	d.holders[g.Addr] = d.cfg.ID
	d.trace(obs.Event{Kind: obs.EvAllocGrant, Peer: src, Addr: g.Addr, Span: span})
	d.sendTo(src, msg.TComAck, metrics.CatConfig, msg.ComAck{Addr: g.Addr})
	d.popAllocWaiter(allocResult{addr: g.Addr, ok: true})
}

// onNack: an allocation we forwarded failed (space exhausted or no quorum).
// Join failures need no handling — the join retry timer covers them.
func (d *Daemon) onNack() {
	if d.joined {
		d.popAllocWaiter(allocResult{})
	}
}

func (d *Daemon) popAllocWaiter(res allocResult) {
	if len(d.allocWaiters) == 0 {
		return
	}
	w := d.allocWaiters[0]
	d.allocWaiters = d.allocWaiters[1:]
	w <- res // buffered; a timed-out HTTP waiter never blocks the loop
}

// onReplicaDist adopts the owner's authoritative view: electorate, owner
// identity, and — for designated replica holders — any fresher table
// entries, confirmed back with REPLICA_ACK so the owner's health monitor
// can count this replica. Membership-only distributions (nil Pool, sent to
// non-holders under a bounded ReplicationTarget) update the electorate
// without touching the table and are not acknowledged as replicas.
func (d *Daemon) onReplicaDist(src radio.NodeID, p msg.ReplicaDist) {
	info := p.Info
	d.ownerID = info.Owner
	d.owner = info.Owner == d.cfg.ID
	if info.OwnerIP != 0 {
		d.memberIPs[info.Owner] = info.OwnerIP
	}
	d.electorate = append(d.electorate[:0], info.Holders...)
	sort.Slice(d.electorate, func(i, j int) bool { return d.electorate[i] < d.electorate[j] })
	d.haveMembership = true
	d.trace(obs.Event{Kind: obs.EvReplicaAdopt, Peer: info.Owner, Addr: info.OwnerIP})
	if info.Pool != nil {
		for _, tab := range info.Pool.Tables() {
			if d.table == nil {
				d.table = tab.Clone()
			} else {
				d.table.AdoptNewer(tab)
			}
		}
		if !d.owner {
			d.sendTo(src, msg.TReplicaAck, metrics.CatSync,
				msg.ReplicaAck{Info: msg.HolderInfo{Owner: d.cfg.ID, OwnerIP: d.selfIP}})
		}
	}
	d.coll.Inc("daemon.replica_dists")
	d.checkJoined()
}

func (d *Daemon) checkJoined() {
	if d.joined || !d.hasIP || !d.haveMembership {
		return
	}
	d.joined = true
	d.coll.Inc("daemon.joined")
	if !d.joinStarted.IsZero() {
		d.hists.Observe(obs.HistConfigLatency, 1e-6, time.Since(d.joinStarted).Microseconds())
	}
	d.trace(obs.Event{Kind: obs.EvNodeConfigured, Peer: d.ownerID, Addr: d.selfIP, Span: d.joinSpan})
	d.logf("joined: ip=%v owner=%d electorate=%v", d.selfIP, int(d.ownerID), d.electorate)
}

// --- allocation ballots --------------------------------------------------

// allocateLocal serves one HTTP /allocate: the owner ballots directly,
// members forward a COM_REQ to the owner and queue the waiter. Either way
// the request mints a fresh span here — this daemon is the causal origin.
func (d *Daemon) allocateLocal(res chan allocResult) {
	if !d.joined {
		res <- allocResult{}
		return
	}
	span := d.mintSpan()
	if d.owner {
		d.trace(obs.Event{Kind: obs.EvAllocRequest, Span: span, Detail: "local"})
		d.startBallot(d.cfg.ID, span, func(addr addrspace.Addr, ok bool) {
			if ok {
				d.holders[addr] = d.cfg.ID
				d.trace(obs.Event{Kind: obs.EvAllocGrant, Addr: addr, Span: span, Detail: "local"})
				d.broadcastHolder(d.cfg.ID, d.selfIP, addr)
			} else {
				d.coll.Inc("daemon.alloc_fail")
			}
			res <- allocResult{addr: addr, ok: ok}
		})
		return
	}
	d.trace(obs.Event{Kind: obs.EvAllocRequest, Peer: d.ownerID, Span: span, Detail: "forward"})
	d.allocWaiters = append(d.allocWaiters, res)
	d.sendSpan(d.ownerID, msg.TComReq, metrics.CatConfig, span, msg.ComReq{PathHops: 1})
}

// onAllocRequest is the owner leg of a member-forwarded /allocate.
func (d *Daemon) onAllocRequest(requestor radio.NodeID, span uint64) {
	if !d.owner {
		return // stale owner view at the sender; its failure detector catches up
	}
	d.startBallot(requestor, span, func(addr addrspace.Addr, ok bool) {
		if !ok {
			d.coll.Inc("daemon.alloc_fail")
			d.sendSpan(requestor, msg.TNack, metrics.CatConfig, span, msg.CfgNack{})
			return
		}
		d.holders[addr] = requestor
		d.broadcastHolder(requestor, d.memberIPs[requestor], addr)
		d.sendSpan(requestor, msg.TComCfg, metrics.CatConfig, span, msg.ComCfg{Addr: addr, NetworkID: d.networkID, Configurer: d.cfg.ID, PathHops: 1})
	})
}

// broadcastHolder tells every member who administers addr now.
func (d *Daemon) broadcastHolder(holder radio.NodeID, holderIP, addr addrspace.Addr) {
	for _, id := range d.members() {
		d.sendTo(id, msg.TUpdateLoc, metrics.CatSync, msg.UpdateLoc{Configurer: holder, ConfigurerIP: holderIP, Addr: addr})
	}
}

// startBallot begins the quorum vote for one fresh address on behalf of
// requestor; reply fires exactly once with the outcome. span ties the
// ballot (and every vote it collects) to the allocation that caused it.
func (d *Daemon) startBallot(requestor radio.NodeID, span uint64, reply func(addr addrspace.Addr, ok bool)) {
	d.propose(&ballot{requestor: requestor, span: span, reply: reply})
}

// propose starts (or restarts, after an abort) one voting round.
func (d *Daemon) propose(b *ballot) {
	if b.attempts >= d.cfg.MaxProposals {
		b.reply(0, false)
		return
	}
	b.attempts++
	cand, ok := d.pickCandidate()
	if !ok {
		b.reply(0, false) // space exhausted
		return
	}
	d.ballotSeq++
	b.id = d.ballotSeq
	b.addr = cand
	b.openedAt = time.Now()
	b.votes = make(map[radio.NodeID]msg.QuorumCfm)
	d.ballots[b.id] = b
	d.pendingAddrs[cand] = true
	d.coll.Inc("daemon.ballots")
	d.trace(obs.Event{Kind: obs.EvBallotOpen, Peer: b.requestor, Addr: b.addr, MsgID: b.id, Span: b.span})

	// The allocator votes for itself with its own replica entry.
	e, _ := d.table.Get(cand)
	b.votes[d.cfg.ID] = msg.QuorumCfm{BallotID: b.id, Entry: e, HasReplica: true}
	for _, id := range d.members() {
		d.sendSpan(id, msg.TQuorumClt, metrics.CatConfig, b.span, msg.QuorumClt{BallotID: b.id, Owner: d.cfg.ID, Addr: cand, Allocator: d.cfg.ID})
	}
	ballotID := b.id
	b.timer = d.after(d.cfg.QuorumTimeout, func() { d.ballotTimeout(ballotID) })
	d.evalBallot(b) // a single-member electorate commits immediately
}

// pickCandidate returns the lowest free address with no ballot in flight.
func (d *Daemon) pickCandidate() (addrspace.Addr, bool) {
	b := d.table.Block()
	for a := b.Lo; ; a++ {
		if e, _ := d.table.Get(a); e.Status == addrspace.Free && !d.pendingAddrs[a] {
			return a, true
		}
		if a == b.Hi {
			return 0, false
		}
	}
}

// abortBallot retires the current round and proposes the next candidate.
func (d *Daemon) abortBallot(b *ballot) {
	d.trace(obs.Event{Kind: obs.EvBallotAbort, Addr: b.addr, MsgID: b.id, Span: b.span, Detail: "retry"})
	d.clearBallot(b)
	d.coll.Inc("daemon.ballot_retries")
	d.propose(b)
}

func (d *Daemon) clearBallot(b *ballot) {
	delete(d.ballots, b.id)
	delete(d.pendingAddrs, b.addr)
	if b.timer != nil {
		b.timer.Stop()
	}
}

func (d *Daemon) ballotTimeout(ballotID uint64) {
	b, ok := d.ballots[ballotID]
	if !ok {
		return
	}
	d.coll.Inc("daemon.ballot_timeouts")
	d.abortBallot(b)
}

// onQuorumClt is the voter side: report the local replica entry and grant
// the vote to at most one ballot at a time (the paper's mutual exclusion
// rule — a voter that has promised an address to one allocator answers
// everyone else Busy until the grant expires or commits).
func (d *Daemon) onQuorumClt(src radio.NodeID, p msg.QuorumClt, span uint64) {
	cfm := msg.QuorumCfm{BallotID: p.BallotID}
	if d.table != nil {
		if e, ok := d.table.Get(p.Addr); ok {
			cfm.HasReplica = true
			cfm.Entry = e
			now := time.Now()
			if g, held := d.grants[p.Addr]; held && g.ballotID != p.BallotID && now.Before(g.expires) {
				cfm.Busy = true
			} else {
				d.grants[p.Addr] = voteGrant{ballotID: p.BallotID, expires: now.Add(2 * d.cfg.QuorumTimeout)}
			}
		}
	}
	d.trace(obs.Event{Kind: obs.EvBallotVote, Peer: src, Addr: p.Addr, MsgID: p.BallotID, Span: span, Detail: "cast"})
	d.sendSpan(src, msg.TQuorumCfm, metrics.CatConfig, span, cfm)
}

// onQuorumCfm records one vote, read-repairs the local replica, and closes
// the ballot when the electorate's majority has answered.
func (d *Daemon) onQuorumCfm(src radio.NodeID, p msg.QuorumCfm) {
	b, ok := d.ballots[p.BallotID]
	if !ok {
		return // late vote for a closed ballot
	}
	if p.HasReplica {
		if cur, ok := d.table.Get(b.addr); ok && p.Entry.Newer(cur) {
			_ = d.table.Set(b.addr, p.Entry)
		}
	}
	b.votes[src] = p
	d.trace(obs.Event{Kind: obs.EvBallotVote, Peer: src, Addr: b.addr, MsgID: b.id, Span: b.span})
	d.evalBallot(b)
}

func (d *Daemon) evalBallot(b *ballot) {
	var maxVer uint64
	votes := 0
	for id, v := range b.votes {
		if id != d.cfg.ID && (v.Busy || (v.HasReplica && v.Entry.Status == addrspace.Occupied)) {
			// Someone promised this address elsewhere, or knows it taken
			// with a fresher stamp: abandon the candidate.
			d.abortBallot(b)
			return
		}
		if d.inElectorate(id) || id == d.cfg.ID {
			votes++
		}
		if v.HasReplica && v.Entry.Version > maxVer {
			maxVer = v.Entry.Version
		}
	}
	if votes < d.majority() {
		return
	}
	d.commitBallot(b, maxVer)
}

// commitBallot marks the address occupied with a version stamp strictly
// above everything any voter reported, and pushes the update to the
// electorate.
func (d *Daemon) commitBallot(b *ballot, maxVer uint64) {
	d.clearBallot(b)
	_ = d.table.Set(b.addr, addrspace.Entry{Status: addrspace.Free, Version: maxVer})
	e, err := d.table.Mark(b.addr, addrspace.Occupied)
	if err != nil {
		b.reply(0, false)
		return
	}
	d.hists.Observe(obs.HistBallotRTT, 1e-6, time.Since(b.openedAt).Microseconds())
	d.trace(obs.Event{Kind: obs.EvBallotCommit, Peer: b.requestor, Addr: b.addr, MsgID: b.id, Span: b.span})
	for _, id := range d.members() {
		d.sendSpan(id, msg.TQuorumUpd, metrics.CatConfig, b.span, msg.QuorumUpd{Owner: d.cfg.ID, Addr: b.addr, Entry: e})
	}
	d.coll.Inc("daemon.allocs")
	b.reply(b.addr, true)
}

// onQuorumUpd applies a committed update and releases any vote grant.
func (d *Daemon) onQuorumUpd(p msg.QuorumUpd) {
	delete(d.grants, p.Addr)
	if d.table == nil {
		return
	}
	if cur, ok := d.table.Get(p.Addr); ok && p.Entry.Newer(cur) {
		_ = d.table.Set(p.Addr, p.Entry)
		d.coll.Inc("daemon.upds_applied")
	}
	if p.Entry.Status == addrspace.Free {
		delete(d.holders, p.Addr) // reclaimed or returned
	}
}

func (d *Daemon) onUpdateLoc(p msg.UpdateLoc) {
	d.holders[p.Addr] = p.Configurer
	if p.ConfigurerIP != 0 {
		d.memberIPs[p.Configurer] = p.ConfigurerIP
	}
}

// --- failure detection and reclamation -----------------------------------

// declareDead handles one member going silent past SuspectAfter.
func (d *Daemon) declareDead(id radio.NodeID) {
	if d.dead[id] {
		return
	}
	d.dead[id] = true
	d.coll.Inc("daemon.deaths_detected")
	d.trace(obs.Event{Kind: obs.EvPeerDead, Peer: id, Addr: d.memberIPs[id], Detail: "heartbeat_miss"})
	d.logf("peer %d declared dead", int(id))

	if id == d.ownerID && !d.owner {
		// Owner failover: the lowest-ID survivor takes over the space; it
		// holds a full replica, so ownership is a role change, not a copy.
		alive := d.aliveElectorate()
		if len(alive) > 0 {
			d.ownerID = alive[0]
			if alive[0] == d.cfg.ID {
				d.owner = true
				d.coll.Inc("daemon.owner_promotions")
				d.trace(obs.Event{Kind: obs.EvHeadElected, Peer: id, Addr: d.selfIP, Detail: "failover"})
				d.logf("promoted to owner after owner death")
			}
		}
	}
	if d.owner {
		d.startReclaim(id)
	}
}

func (d *Daemon) aliveElectorate() []radio.NodeID {
	out := make([]radio.NodeID, 0, len(d.electorate))
	for _, id := range d.electorate {
		if !d.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

// startReclaim begins address reclamation for a dead member: announce
// ADDR_REC, collect REC_REP defenses for ReclaimSettle, then free whatever
// the dead daemon still holds.
func (d *Daemon) startReclaim(target radio.NodeID) {
	if d.reclaims[target] != nil || !d.inElectorate(target) {
		return
	}
	run := &reclaimRun{
		target:    target,
		span:      d.mintSpan(),
		startedAt: time.Now(),
		refreshed: make(map[addrspace.Addr]bool),
	}
	d.reclaims[target] = run
	d.coll.Inc("daemon.reclaims")
	d.trace(obs.Event{Kind: obs.EvReclaimStart, Peer: target, Addr: d.memberIPs[target], Span: run.span})
	rec := msg.AddrRec{Target: target, TargetIP: d.memberIPs[target]}
	for _, id := range d.members() {
		d.sendSpan(id, msg.TAddrRec, metrics.CatReclamation, run.span, rec)
	}
	d.after(d.cfg.ReclaimSettle, func() { d.finishReclaim(target) })
}

// onAddrRec is the member side of reclamation: align with the reclaimer's
// death verdict and defend every address we hold ourselves, so a stale
// attribution at the reclaimer cannot free an address still in use.
func (d *Daemon) onAddrRec(src radio.NodeID, p msg.AddrRec, span uint64) {
	if p.Target == d.cfg.ID {
		return // we are alive; our heartbeats are the real rebuttal
	}
	d.dead[p.Target] = true
	for addr, h := range d.holders {
		if h == d.cfg.ID {
			d.sendSpan(src, msg.TRecRep, metrics.CatReclamation, span, msg.RecRep{Target: p.Target, Addr: addr})
		}
	}
}

// onRecRep records a defense: src claims the address, so it is not the dead
// daemon's to reclaim.
func (d *Daemon) onRecRep(src radio.NodeID, p msg.RecRep) {
	run := d.reclaims[p.Target]
	if run == nil {
		return
	}
	run.refreshed[p.Addr] = true
	d.trace(obs.Event{Kind: obs.EvReclaimDefend, Peer: src, Addr: p.Addr, Span: run.span})
	if d.holders[p.Addr] == p.Target {
		d.holders[p.Addr] = src
	}
}

// finishReclaim frees every undefended address attributed to the dead
// member, removes it from the electorate, and redistributes the replica.
func (d *Daemon) finishReclaim(target radio.NodeID) {
	run := d.reclaims[target]
	if run == nil {
		return
	}
	delete(d.reclaims, target)

	var toFree []addrspace.Addr
	for addr, h := range d.holders {
		if h == target && !run.refreshed[addr] {
			toFree = append(toFree, addr)
		}
	}
	sort.Slice(toFree, func(i, j int) bool { return toFree[i] < toFree[j] })
	for _, addr := range toFree {
		e, ok := d.table.Get(addr)
		if !ok {
			continue
		}
		ne := addrspace.Entry{Status: addrspace.Free, Version: e.Version + 1}
		_ = d.table.Set(addr, ne)
		delete(d.holders, addr)
		d.trace(obs.Event{Kind: obs.EvReclaimFree, Peer: target, Addr: addr, Span: run.span})
		for _, id := range d.members() {
			d.sendSpan(id, msg.TQuorumUpd, metrics.CatReclamation, run.span, msg.QuorumUpd{Owner: d.cfg.ID, Addr: addr, Entry: ne})
		}
	}
	d.hists.Observe(obs.HistReclaimTime, 1e-6, time.Since(run.startedAt).Microseconds())
	d.coll.Add("daemon.reclaimed_addrs", int64(len(toFree)))
	d.removeFromElectorate(target)
	delete(d.memberIPs, target)
	delete(d.lastSeen, target)
	d.broadcastReplica()
	d.logf("reclaimed %d addresses from dead peer %d; electorate now %v", len(toFree), int(target), d.electorate)
}
