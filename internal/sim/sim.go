// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of scheduled events.
// Events fire in timestamp order; events with equal timestamps fire in the
// order they were scheduled, which makes every run with the same seed fully
// reproducible. The kernel is intentionally single-threaded: all protocol
// logic in this repository runs as callbacks on the simulator goroutine, so
// no package in the simulation stack needs locking.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Timer is a handle to a scheduled event. The zero value is not useful;
// timers are produced by Simulator.Schedule and Simulator.ScheduleAt.
type Timer struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	owner     *Simulator // for cancelled-entry accounting; nil once dequeued
}

// At reports the virtual time at which the timer fires (or fired).
func (t *Timer) At() time.Duration { return t.at }

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or already cancelled timer is a no-op. Cancel reports whether the
// callback was still pending.
func (t *Timer) Cancel() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	t.fn = nil
	if t.owner != nil {
		t.owner.cancelled++
		t.owner.maybeCompact()
	}
	return true
}

// Cancelled reports whether Cancel was called before the timer fired.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Fired reports whether the timer's callback has already run.
func (t *Timer) Fired() bool { return t.fired }

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return !t.fired && !t.cancelled }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Timer)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator is a discrete-event scheduler with a virtual clock.
// Create one with New. A Simulator must not be shared across goroutines.
type Simulator struct {
	now       time.Duration
	queue     eventHeap
	seq       uint64
	rng       *rand.Rand
	stopped   bool
	running   bool
	fired     uint64
	cancelled int // cancelled timers still sitting in the queue
}

// New returns a Simulator whose random source is seeded with seed.
// The clock starts at zero.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsFired returns the number of events executed so far.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued, including cancelled
// timers that have not yet been popped or compacted away. Cancelled timers
// are reclaimed lazily: once they exceed half the queue the heap is
// compacted in one O(n) pass, so a workload that cancels most of what it
// schedules (retry timers, failure detectors) cannot grow the queue
// unboundedly.
func (s *Simulator) Pending() int { return len(s.queue) }

// maybeCompact drops cancelled entries and re-heapifies once they make up
// more than half the queue. Heap order among live timers is re-established
// by Init; pop order is unchanged because (at, seq) is a total order.
func (s *Simulator) maybeCompact() {
	if s.cancelled*2 <= len(s.queue) {
		return
	}
	live := s.queue[:0]
	for _, t := range s.queue {
		if t.cancelled {
			t.owner = nil
			continue
		}
		live = append(live, t)
	}
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	s.cancelled = 0
	heap.Init(&s.queue)
}

// Schedule queues fn to run after delay of virtual time. A negative delay is
// treated as zero (the event runs at the current time, after events already
// queued for that time). It returns a cancellable Timer handle.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time at. Times in the past
// are clamped to the current time.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: ScheduleAt called with nil callback")
	}
	if at < s.now {
		at = s.now
	}
	t := &Timer{at: at, seq: s.seq, fn: fn, owner: s}
	s.seq++
	heap.Push(&s.queue, t)
	return t
}

// Stop halts the simulation after the currently executing event returns.
// It may be called from inside an event callback.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed (cancelled timers are
// discarded without counting as a step).
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		t := heap.Pop(&s.queue).(*Timer)
		t.owner = nil
		if t.cancelled {
			s.cancelled--
			continue
		}
		s.now = t.at
		t.fired = true
		s.fired++
		fn := t.fn
		t.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. It returns ErrStopped if
// Stop was called first.
func (s *Simulator) Run() error {
	s.running = true
	defer func() { s.running = false }()
	for !s.stopped {
		if !s.Step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with timestamps not exceeding horizon, then
// advances the clock to horizon. Events scheduled beyond the horizon remain
// queued. It returns ErrStopped if Stop was called first.
func (s *Simulator) RunUntil(horizon time.Duration) error {
	if horizon < s.now {
		return fmt.Errorf("sim: horizon %v is before current time %v", horizon, s.now)
	}
	s.running = true
	defer func() { s.running = false }()
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
	return ErrStopped
}

// peek returns the timestamp of the next live event.
func (s *Simulator) peek() (time.Duration, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].cancelled {
			t := heap.Pop(&s.queue).(*Timer)
			t.owner = nil
			s.cancelled--
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// NextEventAt returns the timestamp of the next pending event, if any.
func (s *Simulator) NextEventAt() (time.Duration, bool) { return s.peek() }
