package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestScheduleAndRunInOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events fired in order %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v after run, want 3s", s.Now())
	}
}

func TestEqualTimestampsFireInScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order %v, want ascending schedule order", got)
		}
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(time.Second, func() {
		s.Schedule(-5*time.Second, func() { fired = true })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != time.Second {
		t.Errorf("Now() = %v, want 1s (clamped event must not rewind clock)", s.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.Schedule(2*time.Second, func() {
		s.ScheduleAt(time.Second, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	if at != 2*time.Second {
		t.Errorf("past-scheduled event fired at %v, want 2s", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.Schedule(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel() = false for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Cancelled() || tm.Pending() {
		t.Errorf("timer state: Cancelled=%v Pending=%v, want true/false", tm.Cancelled(), tm.Pending())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New(1)
	tm := s.Schedule(time.Second, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	if !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Cancel() {
		t.Fatal("Cancel() on fired timer = true, want false")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run() = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("events fired = %d, want 2", count)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil() = %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want horizon 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
}

func TestRunUntilPastHorizonErrors(t *testing.T) {
	s := New(1)
	s.Schedule(5*time.Second, func() {})
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil() = %v", err)
	}
	if err := s.RunUntil(time.Second); err == nil {
		t.Fatal("RunUntil(past) = nil, want error")
	}
}

func TestEventsCanSchedule(t *testing.T) {
	s := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			s.Schedule(time.Millisecond, recur)
		}
	}
	s.Schedule(0, recur)
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if s.EventsFired() != 100 {
		t.Errorf("EventsFired() = %d, want 100", s.EventsFired())
	}
}

func TestZeroDelayFiresAfterAlreadyQueuedSameTime(t *testing.T) {
	s := New(1)
	var got []string
	s.Schedule(0, func() { got = append(got, "a") })
	s.Schedule(0, func() {
		got = append(got, "b")
		s.Schedule(0, func() { got = append(got, "c") })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
	want := "abc"
	var sb string
	for _, g := range got {
		sb += g
	}
	if sb != want {
		t.Errorf("order = %q, want %q", sb, want)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var draws []int64
		for i := 0; i < 20; i++ {
			s.Schedule(time.Duration(i)*time.Millisecond, func() {
				draws = append(draws, s.Rand().Int63n(1000))
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run() = %v", err)
		}
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with identical seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draw sequences")
	}
}

func TestNextEventAt(t *testing.T) {
	s := New(1)
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("NextEventAt() on empty queue reported an event")
	}
	tm := s.Schedule(4*time.Second, func() {})
	s.Schedule(7*time.Second, func() {})
	if at, ok := s.NextEventAt(); !ok || at != 4*time.Second {
		t.Fatalf("NextEventAt() = %v,%v, want 4s,true", at, ok)
	}
	tm.Cancel()
	if at, ok := s.NextEventAt(); !ok || at != 7*time.Second {
		t.Fatalf("NextEventAt() after cancel = %v,%v, want 7s,true", at, ok)
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	s := New(1)
	tm := s.Schedule(time.Second, func() {})
	fired := false
	s.Schedule(2*time.Second, func() { fired = true })
	tm.Cancel()
	if !s.Step() {
		t.Fatal("Step() = false with a live event queued")
	}
	if !fired {
		t.Fatal("Step executed the wrong event")
	}
	if s.Step() {
		t.Fatal("Step() = true on empty queue")
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	New(1).Schedule(time.Second, nil)
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing timestamp order and the clock never goes backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var stamps []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				stamps = append(stamps, s.Now())
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				return false
			}
		}
		return len(stamps) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset of timers fires exactly the
// complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		s := New(3)
		fired := 0
		var timers []*Timer
		for _, d := range delays {
			timers = append(timers, s.Schedule(time.Duration(d)*time.Millisecond, func() { fired++ }))
		}
		cancelled := 0
		for i, tm := range timers {
			if i < len(mask) && mask[i] {
				tm.Cancel()
				cancelled++
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		return fired == len(delays)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCancelledHeapCompaction asserts that cancelling more than half the
// queued timers compacts the heap immediately: Pending() shrinks without a
// single event being executed, and the survivors still fire in order.
func TestCancelledHeapCompaction(t *testing.T) {
	s := New(1)
	const total = 100
	var timers []*Timer
	for i := 0; i < total; i++ {
		timers = append(timers, s.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	if got := s.Pending(); got != total {
		t.Fatalf("Pending() = %d, want %d", got, total)
	}
	// Cancel every even timer: at 50 cancelled out of 100 the threshold
	// (strictly more than half) has not tripped yet.
	for i := 0; i < total; i += 2 {
		timers[i].Cancel()
	}
	if got := s.Pending(); got != total {
		t.Fatalf("Pending() = %d before threshold, want %d (lazy)", got, total)
	}
	// One more cancellation pushes past half the queue and compacts.
	timers[1].Cancel()
	if got := s.Pending(); got != total/2-1 {
		t.Fatalf("Pending() = %d after compaction, want %d", got, total/2-1)
	}
	// The surviving timers still fire, in timestamp order.
	var fired []time.Duration
	for s.Step() {
		fired = append(fired, s.Now())
	}
	if len(fired) != total/2-1 {
		t.Fatalf("fired %d events, want %d", len(fired), total/2-1)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("events out of order: %v", fired)
		}
	}
}

// TestCompactionAccountsPoppedCancellations pins the bookkeeping: cancelled
// timers discarded by Step/peek must leave the counter consistent so a
// later cancellation wave still compacts.
func TestCompactionAccountsPoppedCancellations(t *testing.T) {
	s := New(1)
	var first []*Timer
	for i := 0; i < 10; i++ {
		first = append(first, s.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	// Cancel 4 of 10 (below threshold), then drain them via Step.
	for i := 0; i < 4; i++ {
		first[i].Cancel()
	}
	for s.Step() {
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
	// A fresh wave: 3 scheduled, 2 cancelled must compact (2*2 > 3).
	a := s.Schedule(time.Millisecond, func() {})
	b := s.Schedule(2*time.Millisecond, func() {})
	s.Schedule(3*time.Millisecond, func() {})
	a.Cancel()
	b.Cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after second wave, want 1", got)
	}
}
