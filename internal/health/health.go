// Package health is the replica-health monitor: it keeps a space owner's
// effective replication factor at target *proactively*, instead of leaving
// repair to the T_d reclamation timeout.
//
// The paper's §IV-D machinery is purely reactive: a QDSet replica is only
// re-established after a dead peer is detected (T_d) and reclamation has
// settled. At fleet scale that window is where a crash of the owner plus a
// replica holder loses addresses. The monitor closes it the way
// ipfs-cluster re-pins underpinned CIDs: replica confirmations are leases
// (a REPLICA_ACK is fresh for a TTL), every check recomputes the effective
// replication factor from those leases plus the failure detector's verdict,
// and the moment the factor drops below target the monitor directs the
// owner to re-sync existing holders and recruit replacements — typically
// one heartbeat after a death is declared, long before reclamation would
// have redistributed the replica.
//
// The monitor itself is a pure state machine: Evaluate takes the owner's
// current view of its electorate and returns the actions to take. It holds
// no locks, does no I/O, and is driven from the daemon's event loop, which
// makes the transition logic unit-testable without sockets or clocks.
//
// Observability: Evaluate emits EvHealthCheck when the factor or target
// moved, and the edge-triggered pair EvReplicaUnderreplicated /
// EvReplicaRestored when the factor crosses target. The event schema is
// append-only (DESIGN.md Appendix D).
package health

import (
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// Config parameterizes one monitor.
type Config struct {
	// Target is the desired replica-holder count including the owner.
	// Target <= 0 means full replication: every live member should hold a
	// replica and the target tracks the live membership size.
	Target int
	// TTL is how long one replica acknowledgement stays fresh. Holders are
	// re-synced at half-life so a healthy cluster never lets a lease lapse.
	TTL time.Duration
}

// PeerState is the owner's view of one electorate member at check time.
type PeerState struct {
	// ID is the member's node ID.
	ID radio.NodeID
	// Dead reports the failure detector's verdict.
	Dead bool
	// Holder reports whether the member is currently designated to hold a
	// replica of the owner's table.
	Holder bool
	// AckedAt is when the member last confirmed its replica with
	// REPLICA_ACK; zero means never.
	AckedAt time.Time
}

// Check is the outcome of one evaluation: the measured state plus the
// repair actions the owner should take, in order.
type Check struct {
	// Factor is the effective replication factor: the owner plus every
	// live designated holder with a fresh acknowledgement.
	Factor int
	// Target is the effective target: the configured target capped at the
	// live membership (a 3-node cluster cannot hold 5 replicas).
	Target int
	// Under reports Factor < Target.
	Under bool
	// Demote lists dead designated holders to retire from the replica set.
	Demote []radio.NodeID
	// Recruit lists live non-holders to promote into the replica set (and
	// push a replica to), lowest ID first, enough to refill the target.
	Recruit []radio.NodeID
	// Refresh lists live designated holders whose lease passed half-life
	// (or never arrived) and should be re-synced now.
	Refresh []radio.NodeID
}

// Monitor tracks factor transitions between checks so the under/restored
// events fire on edges, not levels. Not safe for concurrent use; the
// daemon drives it from its event loop.
type Monitor struct {
	cfg    Config
	tracer *obs.Tracer

	checked    bool
	under      bool
	lastFactor int
	lastTarget int
}

// New returns a monitor emitting its events through tracer (nil is valid
// and silences them).
func New(cfg Config, tracer *obs.Tracer) *Monitor {
	return &Monitor{cfg: cfg, tracer: tracer}
}

// Under reports whether the last evaluation found the factor below target.
func (m *Monitor) Under() bool { return m.under }

// LastFactor returns the factor the last evaluation measured (0 before the
// first check).
func (m *Monitor) LastFactor() int { return m.lastFactor }

// LastTarget returns the effective target of the last evaluation.
func (m *Monitor) LastTarget() int { return m.lastTarget }

// Measure computes the effective replication factor and target for one
// owner view without emitting events or tracking transitions — the
// read-only measurement /v1/health and /v1/status serve. Peers must not
// contain the owner itself.
func Measure(cfg Config, now time.Time, peers []PeerState) (factor, target int) {
	live := 0
	for _, p := range peers {
		if p.Dead {
			continue
		}
		live++
		if p.Holder && !p.AckedAt.IsZero() && now.Sub(p.AckedAt) < cfg.TTL {
			factor++
		}
	}
	factor++ // the owner's own copy is replica number one
	target = cfg.Target
	if target <= 0 || target > live+1 {
		target = live + 1
	}
	return factor, target
}

// Fresh reports whether one acknowledgement timestamp still counts toward
// the factor under cfg's lease.
func (c Config) Fresh(now, ackedAt time.Time) bool {
	return !ackedAt.IsZero() && now.Sub(ackedAt) < c.TTL
}

// Evaluate runs one health check for the owner self over its electorate
// view and returns the repair actions. Peers must not contain self.
func (m *Monitor) Evaluate(now time.Time, self radio.NodeID, peers []PeerState) Check {
	var c Check
	liveHolders := 0
	for _, p := range peers {
		if p.Dead {
			if p.Holder {
				c.Demote = append(c.Demote, p.ID)
			}
			continue
		}
		if !p.Holder {
			continue
		}
		liveHolders++
		if p.AckedAt.IsZero() || now.Sub(p.AckedAt) >= m.cfg.TTL/2 {
			c.Refresh = append(c.Refresh, p.ID)
		}
	}
	c.Factor, c.Target = Measure(m.cfg, now, peers)

	// Refill the replica set from live non-holders, lowest ID first so the
	// owner-failover successor (the lowest-ID survivor) tends to hold one.
	if missing := c.Target - 1 - liveHolders; missing > 0 {
		cands := make([]radio.NodeID, 0, len(peers))
		for _, p := range peers {
			if !p.Dead && !p.Holder {
				cands = append(cands, p.ID)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		if missing < len(cands) {
			cands = cands[:missing]
		}
		c.Recruit = cands
	}
	sort.Slice(c.Demote, func(i, j int) bool { return c.Demote[i] < c.Demote[j] })
	sort.Slice(c.Refresh, func(i, j int) bool { return c.Refresh[i] < c.Refresh[j] })

	c.Under = c.Factor < c.Target
	m.emit(self, c)
	return c
}

// emit translates one check into trace events: a health_check whenever the
// measurement moved, and the under/restored pair on target crossings.
func (m *Monitor) emit(self radio.NodeID, c Check) {
	moved := !m.checked || c.Factor != m.lastFactor || c.Target != m.lastTarget
	if moved {
		m.tracer.Emit(obs.Event{
			Kind:   obs.EvHealthCheck,
			Node:   self,
			MsgID:  uint64(c.Factor),
			Detail: rfDetail(c.Factor, c.Target),
		})
	}
	if c.Under && !m.under {
		m.tracer.Emit(obs.Event{
			Kind:   obs.EvReplicaUnderreplicated,
			Node:   self,
			MsgID:  uint64(c.Factor),
			Detail: rfDetail(c.Factor, c.Target),
		})
	}
	if !c.Under && m.under {
		m.tracer.Emit(obs.Event{
			Kind:   obs.EvReplicaRestored,
			Node:   self,
			MsgID:  uint64(c.Factor),
			Detail: rfDetail(c.Factor, c.Target),
		})
	}
	m.checked = true
	m.under = c.Under
	m.lastFactor = c.Factor
	m.lastTarget = c.Target
}

func rfDetail(factor, target int) string {
	return fmt.Sprintf("rf=%d/%d", factor, target)
}
