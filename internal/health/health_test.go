package health

import (
	"testing"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

var t0 = time.Unix(1700000000, 0)

// peers builds a healthy n-member electorate view where the first holders
// members hold fresh replicas acked at t0.
func peers(n, holders int) []PeerState {
	out := make([]PeerState, n)
	for i := range out {
		out[i] = PeerState{ID: radio.NodeID(i + 2)}
		if i < holders {
			out[i].Holder = true
			out[i].AckedAt = t0
		}
	}
	return out
}

func ids(ps []radio.NodeID) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = int(p)
	}
	return out
}

func eqIDs(got []radio.NodeID, want ...int) bool {
	if len(got) != len(want) {
		return false
	}
	for i, id := range got {
		if int(id) != want[i] {
			return false
		}
	}
	return true
}

func TestHealthyClusterAtTarget(t *testing.T) {
	m := New(Config{Target: 3, TTL: time.Second}, nil)
	c := m.Evaluate(t0.Add(100*time.Millisecond), 1, peers(4, 2))
	if c.Factor != 3 || c.Target != 3 || c.Under {
		t.Fatalf("healthy check = %+v, want rf 3/3", c)
	}
	if len(c.Recruit) != 0 || len(c.Demote) != 0 || len(c.Refresh) != 0 {
		t.Fatalf("healthy check proposed actions: %+v", c)
	}
}

func TestRefreshAtHalfLife(t *testing.T) {
	m := New(Config{Target: 3, TTL: time.Second}, nil)
	c := m.Evaluate(t0.Add(600*time.Millisecond), 1, peers(4, 2))
	if c.Factor != 3 || c.Under {
		t.Fatalf("half-life check = %+v, want still rf 3/3", c)
	}
	if !eqIDs(c.Refresh, 2, 3) {
		t.Fatalf("Refresh = %v, want both aging holders", ids(c.Refresh))
	}
}

func TestExpiredLeaseDropsFactor(t *testing.T) {
	m := New(Config{Target: 3, TTL: time.Second}, nil)
	c := m.Evaluate(t0.Add(2*time.Second), 1, peers(4, 2))
	if c.Factor != 1 || !c.Under {
		t.Fatalf("expired check = %+v, want rf 1/3 under", c)
	}
	if !eqIDs(c.Refresh, 2, 3) {
		t.Fatalf("Refresh = %v, want expired holders re-synced", ids(c.Refresh))
	}
	if len(c.Recruit) != 0 {
		t.Fatalf("Recruit = %v: expired holders are refreshed, not replaced", ids(c.Recruit))
	}
}

func TestDeadHolderDemotedAndReplaced(t *testing.T) {
	m := New(Config{Target: 3, TTL: time.Second}, nil)
	ps := peers(4, 2)
	ps[1].Dead = true // holder 3 dies
	c := m.Evaluate(t0.Add(100*time.Millisecond), 1, ps)
	if c.Factor != 2 || c.Target != 3 || !c.Under {
		t.Fatalf("dead-holder check = %+v, want rf 2/3 under", c)
	}
	if !eqIDs(c.Demote, 3) {
		t.Fatalf("Demote = %v, want the dead holder", ids(c.Demote))
	}
	if !eqIDs(c.Recruit, 4) {
		t.Fatalf("Recruit = %v, want lowest live non-holder", ids(c.Recruit))
	}
}

func TestDeadNonHolderShrinksNothing(t *testing.T) {
	m := New(Config{Target: 3, TTL: time.Second}, nil)
	ps := peers(4, 2)
	ps[3].Dead = true // non-holder 5 dies
	c := m.Evaluate(t0.Add(100*time.Millisecond), 1, ps)
	if c.Factor != 3 || c.Under || len(c.Demote) != 0 || len(c.Recruit) != 0 {
		t.Fatalf("dead non-holder check = %+v, want untouched rf 3/3", c)
	}
}

func TestTargetCappedAtLiveMembership(t *testing.T) {
	m := New(Config{Target: 5, TTL: time.Second}, nil)
	ps := peers(2, 2)
	c := m.Evaluate(t0.Add(100*time.Millisecond), 1, ps)
	if c.Target != 3 {
		t.Fatalf("target = %d with 2 live members, want capped 3", c.Target)
	}
	if c.Under {
		t.Fatalf("check = %+v: full live replication cannot be under target", c)
	}
}

func TestFullReplicationTracksMembership(t *testing.T) {
	m := New(Config{Target: 0, TTL: time.Second}, nil)
	ps := peers(3, 3)
	if c := m.Evaluate(t0.Add(time.Millisecond), 1, ps); c.Target != 4 || c.Under {
		t.Fatalf("full-mode check = %+v, want rf 4/4", c)
	}
	ps[2].Dead = true
	// A death shrinks factor and target together: full replication over the
	// survivors is still full.
	if c := m.Evaluate(t0.Add(2*time.Millisecond), 1, ps); c.Target != 3 || c.Factor != 3 || c.Under {
		t.Fatalf("full-mode check after death = %+v, want rf 3/3", c)
	}
}

func TestRecruitFillsOnlyToTarget(t *testing.T) {
	m := New(Config{Target: 4, TTL: time.Second}, nil)
	ps := peers(6, 1)
	c := m.Evaluate(t0.Add(time.Millisecond), 1, ps)
	if !eqIDs(c.Recruit, 3, 4) {
		t.Fatalf("Recruit = %v, want exactly the two lowest non-holders", ids(c.Recruit))
	}
}

func TestNeverAckedHolderIsRefreshedNotCounted(t *testing.T) {
	m := New(Config{Target: 2, TTL: time.Second}, nil)
	ps := []PeerState{{ID: 2, Holder: true}} // designated, never acked
	c := m.Evaluate(t0, 1, ps)
	if c.Factor != 1 || !c.Under {
		t.Fatalf("check = %+v, want rf 1/2 under", c)
	}
	if !eqIDs(c.Refresh, 2) {
		t.Fatalf("Refresh = %v, want the silent holder pushed again", ids(c.Refresh))
	}
}

// TestEventEdges drives the full arc — healthy, holder death, recovery —
// and asserts the monitor emits health_check on movement and the
// under/restored pair exactly once per crossing.
func TestEventEdges(t *testing.T) {
	ring := obs.NewRing(64)
	tr := obs.NewTracer(func() time.Duration { return 0 }, ring)
	m := New(Config{Target: 3, TTL: time.Second}, tr)

	ps := peers(4, 2)
	now := t0.Add(time.Millisecond)
	m.Evaluate(now, 1, ps) // first check: health_check
	m.Evaluate(now, 1, ps) // unchanged: silent

	ps[0].Dead = true // holder 2 dies
	c := m.Evaluate(now, 1, ps)
	if !c.Under {
		t.Fatalf("check = %+v, want under", c)
	}
	m.Evaluate(now, 1, ps) // still under: no second underreplicated event

	// Recovery: the recruit (node 4) acked its replica.
	ps[0].Holder = false
	ps[2].Holder = true
	ps[2].AckedAt = now
	if c := m.Evaluate(now.Add(time.Millisecond), 1, ps); c.Under {
		t.Fatalf("check = %+v, want restored", c)
	}

	var kinds []string
	for _, e := range ring.Snapshot() {
		kinds = append(kinds, e.Kind.String())
		if e.Node != 1 {
			t.Fatalf("event %+v not attributed to the owner", e)
		}
	}
	want := []string{
		"health_check",            // first check rf=3/3
		"health_check",            // drop to rf=2/3
		"replica_underreplicated", // edge down
		"health_check",            // recovery to rf=3/3
		"replica_restored",        // edge up
	}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	if m.LastFactor() != 3 || m.LastTarget() != 3 || m.Under() {
		t.Fatalf("final state rf=%d/%d under=%v", m.LastFactor(), m.LastTarget(), m.Under())
	}
}
