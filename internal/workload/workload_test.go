package workload

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/core"
	"quorumconf/internal/mobility"
	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

func buildQuorum(rt *protocol.Runtime) (protocol.Protocol, error) {
	return core.New(rt, core.Params{Space: addrspace.Block{Lo: 1, Hi: 1024}})
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{}, buildQuorum); err == nil {
		t.Error("zero NumNodes accepted")
	}
	if _, err := Run(Scenario{NumNodes: 5, DepartFraction: 1.5}, buildQuorum); err == nil {
		t.Error("DepartFraction > 1 accepted")
	}
	if _, err := Run(Scenario{NumNodes: 5, AbruptFraction: -0.1}, buildQuorum); err == nil {
		t.Error("negative AbruptFraction accepted")
	}
	if _, err := Run(Scenario{NumNodes: 5}, nil); err == nil {
		t.Error("nil build accepted")
	}
}

func TestRunConfiguresNodes(t *testing.T) {
	res, err := Run(Scenario{Seed: 1, NumNodes: 25, Speed: 0}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Proto.(*core.Protocol)
	configured := 0
	for i := 0; i < 25; i++ {
		if res.Proto.IsConfigured(radio.NodeID(i)) {
			configured++
		}
	}
	if configured < 23 {
		t.Errorf("configured %d/25 nodes", configured)
	}
	if got := p.ConfiguredCount(); got != configured {
		t.Errorf("ConfiguredCount = %d vs %d", got, configured)
	}
	if res.Metrics().Summarize(core.SampleConfigLatency).Count == 0 {
		t.Error("no latency samples")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() string {
		res, err := Run(Scenario{Seed: 42, NumNodes: 20, Speed: 20, DepartFraction: 0.3, AbruptFraction: 0.5}, buildQuorum)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	r1, err := Run(Scenario{Seed: 1, NumNodes: 20, Speed: 20}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Scenario{Seed: 2, NumNodes: 20, Speed: 20}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics().String() == r2.Metrics().String() {
		t.Error("different seeds produced identical metrics")
	}
}

func TestDeparturesScheduled(t *testing.T) {
	res, err := Run(Scenario{Seed: 3, NumNodes: 20, DepartFraction: 0.5, AbruptFraction: 0.4}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Departures) != 10 {
		t.Fatalf("scheduled %d departures, want 10", len(res.Departures))
	}
	graceful, abrupt := 0, 0
	for _, d := range res.Departures {
		if d.Graceful {
			graceful++
		} else {
			abrupt++
		}
		if res.Proto.IsConfigured(d.Node) {
			t.Errorf("departed node %d still configured", d.Node)
		}
	}
	if graceful == 0 || abrupt == 0 {
		t.Errorf("departure mix graceful=%d abrupt=%d, want both kinds", graceful, abrupt)
	}
}

func TestJoinSpotClustersArrivals(t *testing.T) {
	spot := mobility.Point{X: 500, Y: 500}
	res, err := Prepare(Scenario{
		Seed: 4, NumNodes: 15, Speed: 0,
		JoinSpot: &spot, JoinRadius: 80,
	}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.RT.Sim.RunUntil(res.Horizon); err != nil {
		t.Fatal(err)
	}
	snap := res.RT.Topo.Snapshot(res.Horizon)
	for _, id := range snap.Nodes() {
		p, _ := snap.Position(id)
		if p.Distance(spot) > 80*1.5 {
			t.Errorf("node %d at %v, too far from join spot", id, p)
		}
	}
}

func TestPrepareAllowsMidRunProbes(t *testing.T) {
	res, err := Prepare(Scenario{Seed: 5, NumNodes: 10, Speed: 0}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	probed := false
	res.RT.Sim.ScheduleAt(res.Horizon/2, func() { probed = true })
	if err := res.RT.Sim.RunUntil(res.Horizon); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Error("mid-run probe never fired")
	}
}

func TestStaticScenarioDoesNotMove(t *testing.T) {
	res, err := Run(Scenario{Seed: 6, NumNodes: 8, Speed: 0, SettleTime: 30 * time.Second}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	early := res.RT.Topo.Snapshot(0)
	late := res.RT.Topo.Snapshot(res.Horizon)
	for _, id := range late.Nodes() {
		if !early.Contains(id) {
			continue
		}
		pe, _ := early.Position(id)
		pl, _ := late.Position(id)
		if pe.Distance(pl) > 1e-9 {
			t.Errorf("node %d moved in static scenario", id)
		}
	}
}

func TestLossRateValidation(t *testing.T) {
	if _, err := Run(Scenario{NumNodes: 5, LossRate: 1.0}, buildQuorum); err == nil {
		t.Error("LossRate 1.0 accepted")
	}
	if _, err := Run(Scenario{NumNodes: 5, LossRate: -0.1}, buildQuorum); err == nil {
		t.Error("negative LossRate accepted")
	}
}

func TestLossyScenarioStillConfigures(t *testing.T) {
	res, err := Run(Scenario{Seed: 8, NumNodes: 15, Speed: 0, LossRate: 0.1,
		TransmissionRange: 250, SettleTime: 90 * time.Second}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	configured := 0
	for i := 0; i < 15; i++ {
		if res.Proto.IsConfigured(radio.NodeID(i)) {
			configured++
		}
	}
	if configured < 12 {
		t.Errorf("only %d/15 configured under 10%% loss", configured)
	}
}

func TestChurnPhaseJoinsAndLeaves(t *testing.T) {
	spot := mobility.Point{X: 500, Y: 500}
	res, err := Run(Scenario{
		Seed:          3,
		NumNodes:      10,
		Speed:         0,
		JoinSpot:      &spot,
		JoinRadius:    120,
		ChurnRate:     2,
		ChurnDuration: 10 * time.Second,
		ChurnLifetime: 8 * time.Second,
		SettleTime:    30 * time.Second,
	}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	churners := 0
	for _, d := range res.Departures {
		if d.Node >= 10 {
			churners++
			if d.At >= res.Horizon+8*time.Second {
				t.Errorf("churn departure at %v far past horizon %v", d.At, res.Horizon)
			}
		}
	}
	if churners != 20 {
		t.Errorf("churn phase scheduled %d joins, want 20", churners)
	}
	// Churn nodes live long enough relative to the phase that most joins
	// succeed; the network must have kept allocating under churn.
	if got := res.Metrics().Counter(core.CounterConfigured); got < 20 {
		t.Errorf("only %d configurations under churn", got)
	}
	if res.Horizon != 10*5*time.Second+10*time.Second+30*time.Second {
		t.Errorf("horizon = %v", res.Horizon)
	}
}

func TestChurnDeterministicPerSeed(t *testing.T) {
	run := func() string {
		res, err := Run(Scenario{
			Seed: 11, NumNodes: 8, Speed: 0,
			ChurnRate: 1, ChurnDuration: 8 * time.Second, AbruptFraction: 0.5,
		}, buildQuorum)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same churn seed diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := Run(Scenario{NumNodes: 5, ChurnRate: -1}, buildQuorum); err == nil {
		t.Error("negative ChurnRate accepted")
	}
}

func TestByzantineSybilJoinsAndDrops(t *testing.T) {
	ring := obs.NewRing(8192)
	res, err := Run(Scenario{
		Seed: 21, NumNodes: 10, Speed: 0,
		Tracer: obs.NewTracer(nil, ring),
		Byzantine: Byzantine{
			SybilNodes:      []radio.NodeID{2},
			SilentDropNodes: []radio.NodeID{5},
		},
	}, buildQuorum)
	if err != nil {
		t.Fatal(err)
	}
	sybils, drops := 0, 0
	for _, e := range ring.Snapshot() {
		switch e.Kind {
		case obs.EvByzantineSybilJoin:
			sybils++
			if e.Node < SybilIDBase {
				t.Errorf("sybil identity %d below SybilIDBase", e.Node)
			}
			if e.Peer != 2 {
				t.Errorf("sybil join attributed to attacker %d, want 2", e.Peer)
			}
		case obs.EvByzantineDrop:
			drops++
			if e.Node != 5 {
				t.Errorf("byzantine_drop at node %d, want 5", e.Node)
			}
		}
	}
	if sybils != 3 {
		t.Errorf("sybil join events = %d, want 3 (default SybilPerNode)", sybils)
	}
	if drops == 0 {
		t.Error("no byzantine_drop events: silent-dropper filter not installed")
	}
	// The dropper eats every delivery, so it can never finish configuring.
	if res.Proto.IsConfigured(5) {
		t.Error("silent-dropper configured itself despite eating all deliveries")
	}
}

func TestByzantineSybilValidation(t *testing.T) {
	_, err := Run(Scenario{
		Seed: 1, NumNodes: 5,
		Byzantine: Byzantine{SybilNodes: []radio.NodeID{99}},
	}, buildQuorum)
	if err == nil {
		t.Error("Sybil attacker outside initial node set accepted")
	}
}

func TestGrowRadiusFormsConnectedNetwork(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res, err := Run(Scenario{Seed: seed, NumNodes: 30, Speed: 0, GrowRadius: 100}, buildQuorum)
		if err != nil {
			t.Fatal(err)
		}
		snap := res.RT.Topo.Snapshot(res.RT.Sim.Now())
		for i := 1; i < 30; i++ {
			if !snap.Reachable(0, radio.NodeID(i)) {
				t.Errorf("seed %d: node %d unreachable from node 0 under connected growth", seed, i)
			}
		}
	}
}
