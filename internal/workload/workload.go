// Package workload generates the scenarios of the paper's evaluation
// (§VI-A): nodes arrive sequentially into a 1km x 1km area, move to random
// destinations at 20 m/s (random waypoint), and are randomly chosen to
// depart gracefully or abruptly, with the abrupt probability swept between
// 5% and 50%. A Scenario is a deterministic function of its seed, so
// repeated rounds with different seeds give independent samples.
package workload

import (
	"fmt"
	"time"

	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// Scenario parameterizes one simulated run.
type Scenario struct {
	// Seed drives node placement, mobility and departure choices.
	Seed int64
	// NumNodes is the network size (50-200 in the paper).
	NumNodes int
	// Area is the deployment region (1km x 1km in the paper).
	Area mobility.Rect
	// TransmissionRange is tr in meters (150 in most experiments).
	TransmissionRange float64
	// Speed is the random-waypoint speed in m/s (20 in the paper). Zero
	// disables mobility: nodes stay at their arrival positions.
	Speed float64
	// ArrivalInterval separates sequential arrivals (default 5s).
	ArrivalInterval time.Duration
	// DepartFraction is the fraction of nodes that leave during the run.
	DepartFraction float64
	// AbruptFraction is, among departing nodes, the fraction leaving
	// abruptly (the paper sweeps 5%-50%).
	AbruptFraction float64
	// SettleTime extends the run beyond the last scheduled event
	// (default 60s).
	SettleTime time.Duration
	// JoinSpot, when set, makes all nodes arrive within JoinRadius of
	// this point — the paper's motivating "many nodes enter the network
	// at the same spot" workload for address borrowing.
	JoinSpot   *mobility.Point
	JoinRadius float64
	// GrowRadius, when set, switches to connected-growth placement: the
	// first node lands anywhere (or near JoinSpot when that is set) and
	// every later arrival lands within GrowRadius of a uniformly chosen
	// earlier arrival's start point. With GrowRadius <= TransmissionRange
	// and static nodes the network is connected throughout formation —
	// multi-hop, multi-head topologies without the transient partitions
	// of independent uniform placement.
	GrowRadius float64
	// ChurnRate enables a sustained-churn phase once the initial network
	// has formed: fresh nodes (IDs continuing above NumNodes) join at
	// this many arrivals per simulated second for ChurnDuration, and each
	// departs again after a jittered ChurnLifetime dwell — abruptly with
	// probability AbruptFraction. This is the allocation-throughput
	// workload: at high rates the allocators face thousands of joins and
	// leaves per simulated second. Zero disables the phase.
	ChurnRate float64
	// ChurnDuration bounds the churn phase (default 30s when ChurnRate
	// is set).
	ChurnDuration time.Duration
	// ChurnLifetime is the mean dwell time of a churn node before it
	// departs, jittered uniformly over [0.5x, 1.5x] (default 10s).
	ChurnLifetime time.Duration
	// ChurnSpot concentrates churn arrivals within ChurnRadius of this
	// point (default: JoinSpot behavior — the whole area when that is
	// unset too). Concentrating churn on one allocator is how the
	// throughput benchmarks expose the serial-ballot bottleneck.
	ChurnSpot   *mobility.Point
	ChurnRadius float64
	// PerHopDelay overrides the default one-hop latency.
	PerHopDelay time.Duration
	// LossRate enables the lossy-link extension: each hop drops a message
	// with this probability. The paper assumes 0 (reliable delivery).
	LossRate float64
	// Byzantine injects protocol-agnostic adversarial behavior: silent
	// droppers and Sybil joiners. Protocol-semantic attacks (vote lying,
	// duplicate claims) are configured on the protocol itself (see
	// core.ByzantineParams); this knob covers what every baseline can be
	// subjected to equally.
	Byzantine Byzantine
	// Tracer receives structured protocol events from the run; nil
	// disables tracing. Rounds of a parallel sweep may share one tracer
	// whose sinks are concurrency-safe (obs.Ring, obs.JSONLWriter).
	Tracer *obs.Tracer
}

// Byzantine selects workload-level adversarial behavior.
type Byzantine struct {
	// SilentDropNodes eat every message delivered to them: the node keeps
	// its radio presence (it still counts for connectivity) but its
	// protocol handler never runs. The simulator routes multi-hop unicast
	// atomically, so "drops what it should forward" is modeled as
	// dropping at the destination — the victim protocols see the same
	// symptom: requests to or through the node silently vanish.
	SilentDropNodes []radio.NodeID
	// SybilNodes each present SybilPerNode fresh identities: extra nodes
	// that join colocated with their attacker shortly after it arrives,
	// consuming allocator state and addresses under made-up IDs.
	SybilNodes []radio.NodeID
	// SybilPerNode is how many identities each Sybil attacker presents
	// (default 3 when SybilNodes is non-empty).
	SybilPerNode int
}

// SybilIDBase offsets Sybil identities so they can never collide with
// churn-phase IDs (which continue upward from NumNodes).
const SybilIDBase = 1_000_000

func (s *Scenario) setDefaults() error {
	if s.NumNodes <= 0 {
		return fmt.Errorf("workload: NumNodes %d must be positive", s.NumNodes)
	}
	if s.Area.Width == 0 && s.Area.Height == 0 {
		s.Area = mobility.Rect{Width: 1000, Height: 1000}
	}
	if s.TransmissionRange == 0 {
		s.TransmissionRange = 150
	}
	if s.ArrivalInterval == 0 {
		s.ArrivalInterval = 5 * time.Second
	}
	if s.SettleTime == 0 {
		s.SettleTime = 60 * time.Second
	}
	if s.DepartFraction < 0 || s.DepartFraction > 1 {
		return fmt.Errorf("workload: DepartFraction %v out of [0,1]", s.DepartFraction)
	}
	if s.AbruptFraction < 0 || s.AbruptFraction > 1 {
		return fmt.Errorf("workload: AbruptFraction %v out of [0,1]", s.AbruptFraction)
	}
	if s.JoinSpot != nil && s.JoinRadius == 0 {
		s.JoinRadius = 100
	}
	if s.ChurnSpot != nil && s.ChurnRadius == 0 {
		s.ChurnRadius = 100
	}
	if s.LossRate < 0 || s.LossRate >= 1 {
		return fmt.Errorf("workload: LossRate %v outside [0, 1)", s.LossRate)
	}
	if s.ChurnRate < 0 {
		return fmt.Errorf("workload: ChurnRate %v must not be negative", s.ChurnRate)
	}
	if s.ChurnRate > 0 {
		if s.ChurnDuration == 0 {
			s.ChurnDuration = 30 * time.Second
		}
		if s.ChurnLifetime == 0 {
			s.ChurnLifetime = 10 * time.Second
		}
	}
	if len(s.Byzantine.SybilNodes) > 0 && s.Byzantine.SybilPerNode == 0 {
		s.Byzantine.SybilPerNode = 3
	}
	return nil
}

// BuildFunc constructs the protocol under test over a fresh runtime.
type BuildFunc func(rt *protocol.Runtime) (protocol.Protocol, error)

// Departure records one scheduled departure.
type Departure struct {
	Node     radio.NodeID
	At       time.Duration
	Graceful bool
}

// Result is the outcome of one run.
type Result struct {
	RT      *protocol.Runtime
	Proto   protocol.Protocol
	Horizon time.Duration
	// Departures lists what was scheduled (for reliability analyses).
	Departures []Departure
}

// Metrics returns the run's collector.
func (r *Result) Metrics() *metrics.Collector { return r.RT.Coll }

// Run executes the scenario against the protocol from build and returns
// after the virtual horizon. The caller can inspect the protocol and the
// collector afterwards; the runtime's event queue still holds periodic
// events, so further RunUntil calls may extend the simulation.
func Run(sc Scenario, build BuildFunc) (*Result, error) {
	prep, err := Prepare(sc, build)
	if err != nil {
		return nil, err
	}
	if err := prep.RT.Sim.RunUntil(prep.Horizon); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return prep, nil
}

// Prepare builds the runtime and schedules the scenario without running
// it. Experiments that need mid-run measurements (e.g. simultaneous head
// kills) schedule their probes before calling RunUntil themselves.
func Prepare(sc Scenario, build BuildFunc) (*Result, error) {
	if err := sc.setDefaults(); err != nil {
		return nil, err
	}
	if build == nil {
		return nil, fmt.Errorf("workload: nil build func")
	}
	rt, err := protocol.New(
		protocol.WithSeed(sc.Seed),
		protocol.WithTransmissionRange(sc.TransmissionRange),
		protocol.WithPerHopDelay(sc.PerHopDelay),
		protocol.WithTracer(sc.Tracer),
	)
	if err != nil {
		return nil, err
	}
	if sc.LossRate > 0 {
		if err := rt.Net.SetLossRate(sc.LossRate); err != nil {
			return nil, err
		}
	}
	proto, err := build(rt)
	if err != nil {
		return nil, err
	}
	rng := rt.Sim.Rand()

	// scheduleArrival places node id at time at near spot (or anywhere in
	// the area when spot is nil), drawing its start point and mobility
	// model from the scenario's seeded randomness. It returns the drawn
	// start point so dependent arrivals (Sybil identities colocated with
	// their attacker) can be placed relative to it.
	scheduleArrival := func(id radio.NodeID, at time.Duration, spot *mobility.Point, radius float64) (mobility.Point, error) {
		start := sc.Area.RandomPoint(rng)
		if spot != nil {
			start = mobility.Point{
				X: clamp(spot.X+(rng.Float64()*2-1)*radius, sc.Area.Width),
				Y: clamp(spot.Y+(rng.Float64()*2-1)*radius, sc.Area.Height),
			}
		}
		var model mobility.Model
		if sc.Speed > 0 {
			w, err := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
				Area:      sc.Area,
				MinSpeed:  sc.Speed,
				MaxSpeed:  sc.Speed,
				Start:     start,
				StartTime: at,
			}, sc.Seed*7919+int64(id))
			if err != nil {
				return start, err
			}
			model = w
		} else {
			model = mobility.Static(start)
		}
		rt.Sim.ScheduleAt(at, func() {
			if err := rt.Topo.Add(id, model); err != nil {
				return
			}
			rt.Net.InvalidateSnapshot()
			proto.NodeArrived(id)
		})
		return start, nil
	}

	lastArrival := time.Duration(0)
	arrivalAt := make(map[radio.NodeID]time.Duration, sc.NumNodes)
	arrivalSpot := make(map[radio.NodeID]mobility.Point, sc.NumNodes)
	spots := make([]mobility.Point, 0, sc.NumNodes)
	for i := 0; i < sc.NumNodes; i++ {
		id := radio.NodeID(i)
		at := time.Duration(i) * sc.ArrivalInterval
		lastArrival = at
		spot, radius := sc.JoinSpot, sc.JoinRadius
		if sc.GrowRadius > 0 && len(spots) > 0 {
			anchor := spots[rng.Intn(len(spots))]
			spot, radius = &anchor, sc.GrowRadius
		}
		start, err := scheduleArrival(id, at, spot, radius)
		if err != nil {
			return nil, err
		}
		arrivalAt[id] = at
		arrivalSpot[id] = start
		spots = append(spots, start)
	}
	formed := lastArrival + sc.ArrivalInterval

	// Sybil joiners: each attacker presents SybilPerNode fresh identities,
	// arriving colocated with it shortly after its own arrival.
	for i, attacker := range sc.Byzantine.SybilNodes {
		at, known := arrivalAt[attacker]
		if !known {
			return nil, fmt.Errorf("workload: Sybil attacker %d is not an initial node", attacker)
		}
		spot := arrivalSpot[attacker]
		for j := 0; j < sc.Byzantine.SybilPerNode; j++ {
			sid := radio.NodeID(sc.NumNodes + SybilIDBase + i*sc.Byzantine.SybilPerNode + j)
			sat := at + sc.ArrivalInterval/2 + time.Duration(j)*sc.ArrivalInterval/8
			if _, err := scheduleArrival(sid, sat, &spot, 30); err != nil {
				return nil, err
			}
			a := attacker
			rt.Sim.ScheduleAt(sat, func() {
				sc.Tracer.Emit(obs.Event{Kind: obs.EvByzantineSybilJoin, Node: sid, Peer: a})
			})
		}
	}

	// Silent droppers: their handler never runs — the netstack filter eats
	// every delivery addressed to them after transmission costs were
	// charged.
	if len(sc.Byzantine.SilentDropNodes) > 0 {
		dropSet := make(map[radio.NodeID]bool, len(sc.Byzantine.SilentDropNodes))
		for _, id := range sc.Byzantine.SilentDropNodes {
			dropSet[id] = true
		}
		tracer := sc.Tracer
		rt.Net.SetReceiveFilter(func(dst radio.NodeID, msg netstack.Message) bool {
			if !dropSet[dst] {
				return true
			}
			tracer.Emit(obs.Event{Kind: obs.EvByzantineDrop, Node: dst, Peer: msg.Src, Detail: msg.Type})
			return false
		})
	}

	res := &Result{RT: rt, Proto: proto}
	if sc.DepartFraction > 0 {
		departing := rng.Perm(sc.NumNodes)[:int(float64(sc.NumNodes)*sc.DepartFraction)]
		for _, idx := range departing {
			id := radio.NodeID(idx)
			// Depart some time after the whole network formed.
			at := formed + time.Duration(rng.Int63n(int64(sc.SettleTime/2)+1))
			graceful := rng.Float64() >= sc.AbruptFraction
			res.Departures = append(res.Departures, Departure{Node: id, At: at, Graceful: graceful})
			rt.Sim.ScheduleAt(at, func() { proto.NodeDeparting(id, graceful) })
		}
	}
	res.Horizon = formed + sc.SettleTime

	// Sustained-churn phase: a stream of short-lived nodes joining and
	// leaving while the formed network keeps allocating.
	if sc.ChurnRate > 0 {
		interval := time.Duration(float64(time.Second) / sc.ChurnRate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		spot, radius := sc.JoinSpot, sc.JoinRadius
		if sc.ChurnSpot != nil {
			spot, radius = sc.ChurnSpot, sc.ChurnRadius
		}
		id := radio.NodeID(sc.NumNodes)
		for at := formed; at < formed+sc.ChurnDuration; at += interval {
			if _, err := scheduleArrival(id, at, spot, radius); err != nil {
				return nil, err
			}
			// Dwell jittered over [0.5x, 1.5x] of the mean lifetime.
			dwell := sc.ChurnLifetime/2 + time.Duration(rng.Int63n(int64(sc.ChurnLifetime)+1))
			graceful := rng.Float64() >= sc.AbruptFraction
			leave := at + dwell
			cid := id
			res.Departures = append(res.Departures, Departure{Node: cid, At: leave, Graceful: graceful})
			rt.Sim.ScheduleAt(leave, func() { proto.NodeDeparting(cid, graceful) })
			id++
		}
		res.Horizon = formed + sc.ChurnDuration + sc.SettleTime
	}
	return res, nil
}

func clamp(v, max float64) float64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
