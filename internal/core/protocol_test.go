package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/mobility"
	"quorumconf/internal/netstack"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// TestTable1MessageSequence reproduces the paper's Table 1: the message
// exchange that configures a new cluster head, including the quorum
// collection with the allocator's adjacent heads.
func TestTable1MessageSequence(t *testing.T) {
	h := newHarness(t, smallSpace())
	var trace []string
	h.rt.Net.SetTrace(func(_ time.Duration, m netstack.Message) {
		trace = append(trace, fmt.Sprintf("%s:%d->%d", m.Type, m.Src, m.Dst))
	})
	// Heads 0 and 3 exist (3 hops apart); node 6 then requests a block
	// from its nearest head 3, which must collect a quorum from head 0.
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.arriveAt(80*time.Second, 4, 400, 0)
	h.arriveAt(100*time.Second, 5, 500, 0)
	h.rt.Sim.ScheduleAt(119*time.Second, func() { trace = nil }) // keep only node 6's exchange
	h.arriveAt(120*time.Second, 6, 600, 0)
	h.runUntil(160 * time.Second)

	if h.p.Role(6) != RoleHead {
		t.Fatalf("node 6 role = %v, want head", h.p.Role(6))
	}
	joined := strings.Join(trace, " ")
	// Table 1 order: CH_REQ -> CH_PRP -> CH_CNF -> QUORUM_CLT ->
	// QUORUM_CFM -> CH_CFG -> CH_ACK.
	wantOrder := []string{
		"CH_REQ:6->", "CH_PRP:", "CH_CNF:6->", "QUORUM_CLT:", "QUORUM_CFM:", "CH_CFG:", "CH_ACK:6->",
	}
	pos := 0
	for _, want := range wantOrder {
		idx := strings.Index(joined[pos:], want)
		if idx < 0 {
			t.Fatalf("message %q missing (or out of order) in trace:\n%s", want, strings.Join(trace, "\n"))
		}
		pos += idx
	}
}

// TestFig2CommonNodeSequence checks the common-node exchange of Figure 2:
// COM_REQ -> QUORUM_CLT/CFM -> COM_CFG -> COM_ACK.
func TestFig2CommonNodeSequence(t *testing.T) {
	h := newHarness(t, smallSpace())
	var trace []string
	h.rt.Net.SetTrace(func(_ time.Duration, m netstack.Message) {
		trace = append(trace, m.Type)
	})
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.rt.Sim.ScheduleAt(79*time.Second, func() { trace = nil })
	h.arriveAt(80*time.Second, 4, 60, 60) // joins head 0; quorum from head 3
	h.runUntil(120 * time.Second)

	joined := strings.Join(trace, " ")
	pos := 0
	for _, want := range []string{"COM_REQ", "QUORUM_CLT", "QUORUM_CFM", "COM_CFG", "COM_ACK"} {
		idx := strings.Index(joined[pos:], want)
		if idx < 0 {
			t.Fatalf("%q missing/out of order in %s", want, joined)
		}
		pos += idx
	}
}

// TestPartitionMergeMinorityRejoins drives a real partition: a head and its
// member drift away, form their own island, and on return the larger-ID
// network reconfigures from the other (§V-C).
func TestPartitionMergeMinorityRejoins(t *testing.T) {
	params := smallSpace()
	h := newHarness(t, params)
	// Backbone: head 0 with commons 1, 2.
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 100, 100)
	// Head 3 with member 4: both will drift far away together, then return.
	awayAndBack := func(start mobility.Point) mobility.Model {
		m, err := mobility.NewPath(
			[]time.Duration{100 * time.Second, 130 * time.Second, 320 * time.Second, 350 * time.Second},
			[]mobility.Point{start, {X: start.X + 3000, Y: start.Y}, {X: start.X + 3000, Y: start.Y}, start},
		)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	h.arriveModel(50*time.Second, 3, awayAndBack(mobility.Point{X: 300, Y: 0}))
	h.arriveModel(70*time.Second, 4, awayAndBack(mobility.Point{X: 320, Y: 60}))
	h.runUntil(90 * time.Second)
	if h.p.Role(3) != RoleHead || !h.p.IsConfigured(4) {
		t.Fatalf("precondition: role(3)=%v configured(4)=%v", h.p.Role(3), h.p.IsConfigured(4))
	}

	// While away (130s-320s) the pair is partitioned. Head 3 eventually
	// restarts as its own network.
	h.runUntil(300 * time.Second)
	nid3, ok3 := h.p.NetworkID(3)
	nid0, ok0 := h.p.NetworkID(0)
	if !ok3 || !ok0 {
		t.Fatalf("network IDs missing: %v %v", ok3, ok0)
	}
	if nid3 == nid0 {
		t.Log("minority kept original network ID while away (restart may still be pending)")
	}

	// After reunion the networks merge; eventually everyone shares the
	// lowest network ID and addresses are conflict-free.
	h.runUntil(500 * time.Second)
	h.assertNoConflicts()
	ids := map[addrspace.Addr]bool{}
	for n := radio.NodeID(0); n <= 4; n++ {
		if !h.p.IsConfigured(n) {
			t.Errorf("node %d unconfigured after merge (role %v)", n, h.p.Role(n))
			continue
		}
		nid, _ := h.p.NetworkID(n)
		ids[nid] = true
	}
	if len(ids) != 1 {
		t.Errorf("network IDs after merge = %v, want a single ID", ids)
	}
}

// TestIsolatedHeadRestartsAsNewNetwork: a head whose whole cluster drifts
// off alone regains the full space for its island (§V-C).
func TestIsolatedHeadRestartsAsNewNetwork(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	// Head 3 and its member 4 drift away permanently.
	drift := func(start mobility.Point) mobility.Model {
		m, err := mobility.NewPath(
			[]time.Duration{100 * time.Second, 140 * time.Second},
			[]mobility.Point{start, {X: start.X + 5000, Y: start.Y}},
		)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	h.arriveModel(50*time.Second, 3, drift(mobility.Point{X: 300, Y: 0}))
	h.arriveModel(70*time.Second, 4, drift(mobility.Point{X: 320, Y: 60}))
	h.runUntil(90 * time.Second)
	if h.p.Role(3) != RoleHead {
		t.Fatalf("precondition: role(3) = %v", h.p.Role(3))
	}
	h.runUntil(400 * time.Second)

	if h.rt.Coll.Counter(CounterIsolatedRestarts) == 0 {
		t.Fatal("isolated head never restarted")
	}
	if own := h.p.OwnSpaceSize(3); own != 64 {
		t.Errorf("restarted head owns %d addresses, want the whole space (64)", own)
	}
	if !h.p.IsConfigured(4) {
		t.Errorf("island member unconfigured after restart (role %v)", h.p.Role(4))
	}
	// Both islands operate; conflicts are impossible to observe across
	// partitions, but within each component addresses must be unique.
	h.assertNoConflicts() // note: islands use disjoint... actually both use the space; see comment
}

// TestAgentForwardingWhenDepleted: a head with an exhausted IPSpace and
// QuorumSpace relays configuration to its configurer (§V-A).
func TestAgentForwardingWhenDepleted(t *testing.T) {
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 4}, DisableBorrowing: true})
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0) // head, owns 2 addresses (own IP + 1)
	h.arriveAt(80*time.Second, 4, 320, 60)
	h.arriveAt(110*time.Second, 5, 340, 30) // head 3 now depleted -> agent forward
	h.runUntil(200 * time.Second)

	if h.rt.Coll.Counter(CounterAgentForwards) == 0 {
		t.Error("no agent forwarding despite depleted allocator")
	}
	h.assertNoConflicts()
}

// TestChurnInvariant is the protocol's safety property under random churn:
// run a randomized scenario of arrivals, movements and mixed departures and
// assert no two alive nodes ever share an address, checked continuously.
func TestChurnInvariant(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: seed, TransmissionRange: 150})
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 512}})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 97))
			const n = 40
			area := mobility.Rect{Width: 1000, Height: 1000}
			at := time.Duration(0)
			for i := 0; i < n; i++ {
				id := radio.NodeID(i)
				start := area.RandomPoint(rng)
				w, err := mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
					Area:     area,
					MinSpeed: 20, MaxSpeed: 20,
					Start:     start,
					StartTime: at,
				}, seed*1000+int64(i))
				if err != nil {
					t.Fatal(err)
				}
				func(at time.Duration, id radio.NodeID, w mobility.Model) {
					rt.Sim.ScheduleAt(at, func() {
						if err := rt.Topo.Add(id, w); err != nil {
							t.Errorf("add: %v", err)
							return
						}
						rt.Net.InvalidateSnapshot()
						p.NodeArrived(id)
					})
				}(at, id, w)
				at += time.Duration(2+rng.Intn(5)) * time.Second
			}
			// Random departures of a third of the nodes, half abrupt.
			departing := rng.Perm(n)[:n/3]
			for i, idx := range departing {
				id := radio.NodeID(idx)
				graceful := i%2 == 0
				dt := at + time.Duration(rng.Intn(60))*time.Second
				rt.Sim.ScheduleAt(dt, func() { p.NodeDeparting(id, graceful) })
			}
			// Continuous invariant check every 5s. Under 20 m/s churn,
			// components merge and split in seconds, so cross-network
			// conflicts may exist transiently while §V-C merge handling
			// runs; what the protocol must guarantee is that no conflict
			// *persists* — here, longer than 60s of continuous contact.
			const persistBound = 60 * time.Second
			type pair struct {
				addr addrspace.Addr
				a, b radio.NodeID
			}
			firstSeen := map[pair]time.Duration{}
			horizon := at + 150*time.Second
			for ts := 5 * time.Second; ts < horizon; ts += 5 * time.Second {
				rt.Sim.ScheduleAt(ts, func() {
					now := rt.Sim.Now()
					current := map[pair]bool{}
					for a, ids := range p.AddressConflicts() {
						for i := 0; i < len(ids); i++ {
							for j := i + 1; j < len(ids); j++ {
								pr := pair{addr: a, a: ids[i], b: ids[j]}
								current[pr] = true
								if since, ok := firstSeen[pr]; !ok {
									firstSeen[pr] = now
								} else if now-since > persistBound {
									t.Errorf("conflict %v between %d and %d persisted %v", a, pr.a, pr.b, now-since)
									delete(firstSeen, pr) // report once
								}
							}
						}
					}
					for pr := range firstSeen {
						if !current[pr] {
							delete(firstSeen, pr)
						}
					}
				})
			}
			if err := rt.Sim.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
			// Liveness: most survivors configured.
			alive, configured := 0, 0
			for i := 0; i < n; i++ {
				if p.Alive(radio.NodeID(i)) {
					alive++
					if p.IsConfigured(radio.NodeID(i)) {
						configured++
					}
				}
			}
			if alive == 0 {
				t.Fatal("no survivors")
			}
			if float64(configured) < 0.9*float64(alive) {
				t.Errorf("only %d/%d survivors configured", configured, alive)
			}
		})
	}
}

// TestDynamicLinearVotingAblation verifies the ablation switch plumbs
// through: with it disabled the protocol still configures correctly.
func TestDynamicLinearVotingAblation(t *testing.T) {
	params := smallSpace()
	params.DisableDynamicLinear = true
	h := newHarness(t, params)
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.arriveAt(80*time.Second, 4, 60, 60)
	h.runUntil(120 * time.Second)
	if !h.p.IsConfigured(4) {
		t.Error("configuration failed with dynamic linear voting disabled")
	}
	h.assertNoConflicts()
}

// TestReclamationFreesLeakedAddresses: abrupt departures of common nodes
// leak addresses; reclamation triggered by allocator exhaustion recovers
// them so later arrivals still configure.
func TestReclamationFreesLeakedAddresses(t *testing.T) {
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 6}})
	h.arriveAt(0, 0, 500, 500)
	// Fill the space with commons, then crash them all.
	for i := radio.NodeID(1); i <= 5; i++ {
		h.arriveAt(time.Duration(i)*12*time.Second, i, 500+float64(i)*10, 560)
	}
	h.runUntil(80 * time.Second)
	for i := radio.NodeID(1); i <= 5; i++ {
		if !h.p.IsConfigured(i) {
			t.Fatalf("node %d unconfigured before crash phase", i)
		}
	}
	for i := radio.NodeID(1); i <= 5; i++ {
		h.departAt(time.Duration(80+int(i))*time.Second, i, false)
	}
	// New arrivals need addresses that only reclamation can free.
	h.arriveAt(100*time.Second, 10, 520, 540)
	h.arriveAt(110*time.Second, 11, 540, 540)
	h.runUntil(250 * time.Second)

	if h.rt.Coll.Counter(CounterReclamations) == 0 {
		t.Fatal("exhaustion did not trigger self-reclamation")
	}
	if h.rt.Coll.Counter(CounterAddrReclaimed) == 0 {
		t.Fatal("no addresses reclaimed")
	}
	for _, id := range []radio.NodeID{10, 11} {
		if !h.p.IsConfigured(id) {
			t.Errorf("node %d unconfigured; reclaimed space unusable", id)
		}
	}
	h.assertNoConflicts()
}

// TestHoldersNecrology: Fig 13 depends on knowing a dead head's replica
// holders.
func TestHoldersNecrology(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.departAt(100*time.Second, 3, false)
	h.runUntil(120 * time.Second)

	holders := h.p.HoldersOf(3)
	if len(holders) == 0 {
		t.Fatal("no holders recorded for departed head")
	}
	found := false
	for _, id := range holders {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("holders %v missing head 0", holders)
	}
	if h.p.DepartedSpaceSize(3) == 0 {
		t.Error("departed head's space size not recorded")
	}
}
