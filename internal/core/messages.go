package core

import (
	"quorumconf/internal/msg"
)

// The message vocabulary lives in internal/msg as exported types so that
// the wire codec (internal/wire) and the real transports can share it with
// the simulator. This file aliases them under the short unexported names
// the protocol implementation uses; the shapes themselves are pinned by
// messages_test.go and encoded 1:1 by the wire format.

// Message type names, matching the paper's vocabulary (§IV, Table 1) where
// it names them. They appear in traces and tests.
const (
	msgFirstBcast = msg.TFirstBcast
	msgFirstResp  = msg.TFirstResp

	msgComReq = msg.TComReq
	msgComCfg = msg.TComCfg
	msgComAck = msg.TComAck
	msgNack   = msg.TNack

	msgChReq = msg.TChReq
	msgChPrp = msg.TChPrp
	msgChCnf = msg.TChCnf
	msgChCfg = msg.TChCfg
	msgChAck = msg.TChAck

	msgQuorumClt = msg.TQuorumClt
	msgQuorumCfm = msg.TQuorumCfm
	msgQuorumUpd = msg.TQuorumUpd
	msgSplitUpd  = msg.TSplitUpd

	msgReplicaDist = msg.TReplicaDist
	msgReplicaAck  = msg.TReplicaAck

	msgAgentFwd = msg.TAgentFwd
	msgAgentCfg = msg.TAgentCfg

	msgUpdateLoc = msg.TUpdateLoc

	msgReturnAddr  = msg.TReturnAddr
	msgDepartAck   = msg.TDepartAck
	msgReturnFwd   = msg.TReturnFwd
	msgVacate      = msg.TVacate
	msgChReturn    = msg.TChReturn
	msgChReturnAck = msg.TChReturnAck
	msgChResign    = msg.TChResign
	msgReassign    = msg.TReassign
	msgPoolUpd     = msg.TPoolUpd

	msgRepReq = msg.TRepReq
	msgRepRsp = msg.TRepRsp

	msgAddrRec = msg.TAddrRec
	msgRecRep  = msg.TRecRep
	msgRecFwd  = msg.TRecFwd

	msgReconfig = msg.TReconfig
)

// Payload aliases. The protocol code constructs and consumes these under
// the original unexported names; the exported definitions are the wire
// contract.
type (
	holderInfo = msg.HolderInfo

	firstBcast = msg.FirstBcast
	firstResp  = msg.FirstResp

	comReq  = msg.ComReq
	comCfg  = msg.ComCfg
	comAck  = msg.ComAck
	cfgNack = msg.CfgNack

	chReq = msg.ChReq
	chPrp = msg.ChPrp
	chCnf = msg.ChCnf
	chCfg = msg.ChCfg
	chAck = msg.ChAck

	quorumClt = msg.QuorumClt
	quorumCfm = msg.QuorumCfm
	quorumUpd = msg.QuorumUpd
	splitUpd  = msg.SplitUpd

	replicaDist = msg.ReplicaDist
	replicaAck  = msg.ReplicaAck

	agentFwd = msg.AgentFwd
	agentCfg = msg.AgentCfg

	updateLoc = msg.UpdateLoc

	returnAddr   = msg.ReturnAddr
	departAck    = msg.DepartAck
	returnFwd    = msg.ReturnFwd
	vacate       = msg.Vacate
	memberRecord = msg.MemberRecord
	chReturn     = msg.ChReturn
	chReturnAck  = msg.ChReturnAck
	chResign     = msg.ChResign
	reassign     = msg.Reassign
	poolUpd      = msg.PoolUpd

	repReq = msg.RepReq
	repRsp = msg.RepRsp

	addrRec = msg.AddrRec
	recRep  = msg.RecRep
	recFwd  = msg.RecFwd

	reconfig = msg.Reconfig
)
