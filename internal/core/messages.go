package core

import (
	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

// Message type names, matching the paper's vocabulary (§IV, Table 1) where
// it names them. They appear in traces and tests.
const (
	msgFirstBcast = "FIRST_BCAST" // first node's configuration broadcast
	msgFirstResp  = "FIRST_RESP"  // configured neighbor answering a FIRST_BCAST

	msgComReq = "COM_REQ" // common-node configuration request
	msgComCfg = "COM_CFG" // configuration grant with the assigned address
	msgComAck = "COM_ACK" // requestor's acknowledgement
	msgNack   = "CFG_NACK"

	msgChReq = "CH_REQ" // cluster-head configuration request
	msgChPrp = "CH_PRP" // allocator's block proposal
	msgChCnf = "CH_CNF" // requestor's confirmation
	msgChCfg = "CH_CFG" // block grant
	msgChAck = "CH_ACK"

	msgQuorumClt = "QUORUM_CLT" // vote collection
	msgQuorumCfm = "QUORUM_CFM" // vote
	msgQuorumUpd = "QUORUM_UPD" // committed write propagated to the quorum
	msgSplitUpd  = "SPLIT_UPD"  // block split propagated to replica holders

	msgReplicaDist = "REPLICA_DIST" // a head distributing its IPSpace replica
	msgReplicaAck  = "REPLICA_ACK"  // holder's reciprocal replica

	msgAgentFwd = "AGENT_FWD" // depleted head relaying a request (§V-A)
	msgAgentCfg = "AGENT_CFG" // grant relayed back through the agent

	msgUpdateLoc = "UPDATE_LOC" // common-node location update (§IV-C1)

	msgReturnAddr  = "RETURN_ADDR" // graceful common-node departure
	msgDepartAck   = "DEPART_ACK"
	msgReturnFwd   = "RETURN_FWD" // routing a returned address to its allocator
	msgVacate      = "VACATE"     // vacate notice broadcast to adjacent heads
	msgChReturn    = "CH_RETURN"  // head returning its IP block on departure
	msgChReturnAck = "CH_RETURN_ACK"
	msgChResign    = "CH_RESIGN" // head resigning from a QDSet
	msgReassign    = "REASSIGN"  // new allocator notice to orphaned members
	msgPoolUpd     = "POOL_UPD"  // holder refresh after a pool absorbs a block

	msgRepReq = "REP_REQ" // liveness probe after quorum shrink (§V-B)
	msgRepRsp = "REP_RSP"

	msgAddrRec = "ADDR_REC" // address reclamation broadcast (§IV-D)
	msgRecRep  = "REC_REP"  // surviving member's existence report
	msgRecFwd  = "REC_FWD"  // forwarding a report toward a replica holder

	msgReconfig = "RECONFIG" // partition handling: node must reacquire an IP
)

// holderInfo identifies one replica in transit: whose space, which tables,
// which nodes hold copies.
type holderInfo struct {
	Owner   radio.NodeID
	OwnerIP addrspace.Addr
	Pool    *addrspace.Pool
	Holders []radio.NodeID
}

type firstBcast struct {
	Tries int
}

type firstResp struct {
	IP        addrspace.Addr
	NetworkID NetTag
	IsHead    bool
}

// comReq asks the allocator for a single address. PathHops accumulates the
// critical-path hop count the paper plots as configuration latency.
type comReq struct {
	PathHops int
}

type comCfg struct {
	Addr       addrspace.Addr
	NetworkID  NetTag
	Configurer radio.NodeID
	PathHops   int
}

type comAck struct {
	Addr     addrspace.Addr
	PathHops int
}

type cfgNack struct {
	PathHops int
}

type chReq struct {
	PathHops int
}

type chPrp struct {
	Block    addrspace.Block
	PathHops int
}

type chCnf struct {
	Block    addrspace.Block
	PathHops int
}

type chCfg struct {
	Table      *addrspace.Table
	NetworkID  NetTag
	Configurer radio.NodeID
	PathHops   int
}

type chAck struct {
	PathHops int
}

// quorumClt collects a vote about one address (or about splitting the
// allocator's block when Split is set).
type quorumClt struct {
	BallotID  uint64
	Owner     radio.NodeID
	Addr      addrspace.Addr
	Split     bool
	Allocator radio.NodeID
}

type quorumCfm struct {
	BallotID   uint64
	Entry      addrspace.Entry
	HasReplica bool
	// Busy reports that this voter's vote for the address is currently
	// granted to another ballot (mutual exclusion).
	Busy bool
}

type quorumUpd struct {
	Owner radio.NodeID
	Addr  addrspace.Addr
	Entry addrspace.Entry
}

type splitUpd struct {
	Owner   radio.NodeID
	NewPool *addrspace.Pool
	NewHead radio.NodeID
}

type replicaDist struct {
	Info holderInfo
}

type replicaAck struct {
	Info holderInfo
}

type agentFwd struct {
	Requestor radio.NodeID
	PathHops  int
}

type agentCfg struct {
	Requestor radio.NodeID
	Grant     comCfg
}

type updateLoc struct {
	Configurer   radio.NodeID
	ConfigurerIP addrspace.Addr
	Addr         addrspace.Addr
}

type returnAddr struct {
	Configurer   radio.NodeID
	ConfigurerIP addrspace.Addr
	Addr         addrspace.Addr
}

type departAck struct{}

type returnFwd struct {
	Owner radio.NodeID
	Addr  addrspace.Addr
}

// vacate carries a freed address toward whoever holds a replica of the
// owner's space. TTL bounds forwarding rounds.
type vacate struct {
	Owner radio.NodeID
	Addr  addrspace.Addr
	TTL   int
}

type memberRecord struct {
	Node radio.NodeID
	Addr addrspace.Addr
}

type chReturn struct {
	Pool    *addrspace.Pool
	Members []memberRecord
}

type chReturnAck struct{}

type chResign struct{}

type reassign struct {
	NewAllocator   radio.NodeID
	NewAllocatorIP addrspace.Addr
}

type poolUpd struct {
	Owner radio.NodeID
	Pool  *addrspace.Pool
}

type repReq struct{}

type repRsp struct{}

type addrRec struct {
	Target   radio.NodeID
	TargetIP addrspace.Addr
}

type recRep struct {
	Target radio.NodeID
	Addr   addrspace.Addr
}

type recFwd struct {
	Target radio.NodeID
	Addr   addrspace.Addr
	TTL    int
}

type reconfig struct{}
