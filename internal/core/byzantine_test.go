package core

import (
	"testing"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// TestByzDupClaimerCausesConflicts: a duplicate-claiming head hands the
// same unmarked address to every requestor, so the honest-world invariant
// (assertNoConflicts in every other test) visibly breaks.
func TestByzDupClaimerCausesConflicts(t *testing.T) {
	params := smallSpace()
	params.Byzantine = ByzantineParams{Nodes: []radio.NodeID{0}, Behaviors: ByzDupClaimer}
	h, ring := newTracedHarness(t, params)
	h.arriveAt(0, 0, 500, 500)
	for i := 1; i <= 4; i++ {
		h.arriveAt(60*time.Second+time.Duration(i)*2*time.Second, radio.NodeID(i), 500+float64(i)*10, 560)
	}
	h.runUntil(120 * time.Second)

	if n := countKind(ring, obs.EvByzantineDupClaim); n < 2 {
		t.Errorf("byzantine_dup_claim events = %d, want >= 2", n)
	}
	if got := h.p.AddressConflictCount(); got < 1 {
		t.Errorf("AddressConflictCount = %d, want >= 1 (same address granted repeatedly)", got)
	}
	if got := h.rt.Coll.Counter(CounterByzantineActs); got < 2 {
		t.Errorf("byzantine_acts = %d, want >= 2", got)
	}
}

// threeHeadLine builds head 0 at the origin with heads 3 and 6 three hops
// away on two arms, both holding replicas of 0's space, plus commons 1-2
// and 4-5 configured by head 0 along the arms.
func threeHeadLine(h *harness) {
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(10*time.Second, 1, 100, 0)
	h.arriveAt(20*time.Second, 2, 200, 0)
	h.arriveAt(30*time.Second, 3, 300, 0) // 3 hops from head 0: new head
	h.arriveAt(40*time.Second, 4, 0, 100)
	h.arriveAt(50*time.Second, 5, 0, 200)
	h.arriveAt(60*time.Second, 6, 0, 300) // 3 hops on the other arm: new head
}

// reclaimAfterHeadCrash drives the reclamation scenario: head 0 and its
// on-arm members crash abruptly, the surviving heads detect the dead QDSet
// member and reclaim 0's space. Returns recovered address count.
func reclaimAfterHeadCrash(t *testing.T, params Params) (int64, *obs.Ring) {
	t.Helper()
	h, ring := newTracedHarness(t, params)
	threeHeadLine(h)
	h.departAt(100*time.Second, 0, false)
	h.departAt(100*time.Second, 1, false)
	h.departAt(100*time.Second, 2, false)
	h.runUntil(160 * time.Second)
	return h.rt.Coll.Counter(CounterAddrReclaimed), ring
}

// TestByzVoteLiarSabotagesReclamation: an honest fleet recovers the crashed
// head's leaked addresses; with a vote-liar among the replica holders, the
// forged existence reports refresh every address and nothing is recovered.
func TestByzVoteLiarSabotagesReclamation(t *testing.T) {
	honest, _ := reclaimAfterHeadCrash(t, smallSpace())
	if honest < 1 {
		t.Fatalf("honest run reclaimed %d addresses, want >= 1 (scenario broken)", honest)
	}

	params := smallSpace()
	params.Byzantine = ByzantineParams{Nodes: []radio.NodeID{6}, Behaviors: ByzVoteLiar}
	sabotaged, ring := reclaimAfterHeadCrash(t, params)
	if sabotaged >= honest {
		t.Errorf("sabotaged run reclaimed %d addresses, honest run %d — liar had no effect", sabotaged, honest)
	}
	forged := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvByzantineVoteLie && e.Detail == "forge_rec_rep" {
			forged++
		}
	}
	if forged == 0 {
		t.Error("no forge_rec_rep byzantine_vote_lie events")
	}
}

// TestByzVoteLiarForgesVotes: a vote-liar polled during ballots answers
// with fabricated freshness; the events record every lie.
func TestByzVoteLiarForgesVotes(t *testing.T) {
	params := smallSpace()
	params.Byzantine = ByzantineParams{Nodes: []radio.NodeID{3}, Behaviors: ByzVoteLiar}
	h, ring := newTracedHarness(t, params)
	twoHeadChain(h)
	// Joins at head 0 force ballots that poll QDSet member 3 — the liar.
	for i := 0; i < 4; i++ {
		h.arriveAt(60*time.Second+time.Duration(i)*2*time.Second, radio.NodeID(4+i), 40+float64(i)*8, 60)
	}
	h.runUntil(120 * time.Second)

	lies := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvByzantineVoteLie && e.Node == 3 {
			lies++
		}
	}
	if lies == 0 {
		t.Error("no byzantine_vote_lie events from the liar head")
	}
}
