package core

import (
	"quorumconf/internal/addrspace"
	"quorumconf/internal/cluster"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// Counter names for departure handling.
const (
	// CounterGracefulDepartures counts nodes that returned their address
	// or block before leaving.
	CounterGracefulDepartures = "graceful_departures"
	// CounterAbruptDepartures counts crash-style departures.
	CounterAbruptDepartures = "abrupt_departures"
	// CounterAddrReturned counts addresses routed back to their allocator
	// (or a replica holder) on departure.
	CounterAddrReturned = "addresses_returned"
)

// NodeDeparting implements protocol.Protocol.
func (p *Protocol) NodeDeparting(id radio.NodeID, graceful bool) {
	nd, ok := p.nodes[id]
	if !ok || !nd.alive {
		return
	}
	if !graceful {
		p.rt.Coll.Inc(CounterAbruptDepartures)
		p.rt.Trace(obs.Event{Kind: obs.EvNodeDeparted, Node: id, Addr: nd.ip, Detail: "abrupt"})
		p.killNode(nd)
		return
	}
	p.rt.Coll.Inc(CounterGracefulDepartures)
	p.rt.Trace(obs.Event{Kind: obs.EvNodeDeparted, Node: id, Addr: nd.ip, Detail: "graceful"})
	switch {
	case nd.isHead():
		p.departHead(nd)
	case nd.isCommon():
		p.departCommon(nd)
	default:
		p.killNode(nd) // never configured: nothing to return
	}
}

// killNode removes a node from the fabric without any protocol traffic —
// the crash case, and the final step of every departure.
func (p *Protocol) killNode(nd *node) {
	if !nd.alive {
		return
	}
	info := departedInfo{Role: nd.role, IP: nd.ip, HasIP: nd.hasIP}
	if nd.isHead() {
		info.Holders = nd.electorate(nd.id)
		if nd.pools != nil {
			info.Space = nd.pools.Size()
		}
	}
	nd.alive = false
	if nd.cfgTimer != nil {
		nd.cfgTimer.Cancel()
	}
	for _, t := range nd.suspects {
		t.Cancel()
	}
	for _, t := range nd.probing {
		t.Cancel()
	}
	for _, pb := range nd.ballots {
		if pb.timer != nil {
			pb.timer.Cancel()
		}
	}
	for _, rs := range nd.reclaims {
		if rs.timer != nil {
			rs.timer.Cancel()
		}
	}
	p.departed[nd.id] = info
	p.rt.RemoveNode(nd.id)
}

// --- common node graceful departure (§IV-C1) ------------------------------

// departCommon returns the node's address to the nearest cluster head and
// leaves once acknowledged.
func (p *Protocol) departCommon(nd *node) {
	snap := p.snapshot()
	head, _, ok := cluster.Nearest(snap, nd.id, p.isHeadFn)
	if !ok {
		p.killNode(nd) // nobody to return the address to
		return
	}
	if _, sent := p.send(nd.id, head, msgReturnAddr, metrics.CatDeparture, returnAddr{
		Configurer:   nd.configurer,
		ConfigurerIP: p.ipOf(nd.configurer),
		Addr:         nd.ip,
	}); !sent {
		p.killNode(nd)
		return
	}
	// Leave on DEPART_ACK; give up after ConfigTimeout if it never comes.
	p.rt.Sim.Schedule(p.p.ConfigTimeout, func() { p.killNode(nd) })
}

func (p *Protocol) onReturnAddr(nd *node, m netstack.Message, pl returnAddr) {
	if !nd.isHead() {
		return
	}
	_, _ = p.send(nd.id, m.Src, msgDepartAck, metrics.CatDeparture, departAck{})
	delete(nd.administered, m.Src)
	if owner := pl.Configurer; owner == nd.id {
		delete(nd.members, m.Src)
	}
	p.routeVacate(nd, pl.Configurer, pl.Addr)
}

func (p *Protocol) onDepartAck(nd *node) {
	p.killNode(nd)
}

// routeVacate gets a freed address marked vacant at its allocator's
// replicas: locally when this head holds a copy, by unicast to the
// allocator when it is alive, and by a one-round broadcast to adjacent
// heads otherwise (the upon-leave variant always takes the broadcast
// path's semantics).
func (p *Protocol) routeVacate(nd *node, owner radio.NodeID, addr addrspace.Addr) {
	delete(p.ipOwner, addr)
	if cur, ok := nd.localEntry(owner, addr); ok {
		// This head holds a copy: commit the vacate and propagate to the
		// other holders.
		freed := addrspace.Entry{Status: addrspace.Free, Version: cur.Version + 1}
		nd.applyEntry(owner, addr, freed)
		p.rt.Coll.Inc(CounterAddrReturned)
		for _, h := range nd.electorate(owner) {
			if h == nd.id {
				continue
			}
			_, _ = p.send(nd.id, h, msgQuorumUpd, metrics.CatDeparture, quorumUpd{
				Owner: owner,
				Addr:  addr,
				Entry: freed,
			})
		}
		return
	}
	// Forward to the allocator — but never to ourselves: owner == nd.id
	// with no local entry means the address left this head's pool (block
	// split or return), so only the broadcast below can find the holder.
	if owner != nd.id && p.isHeadFn(owner) {
		if _, sent := p.send(nd.id, owner, msgReturnFwd, metrics.CatDeparture, returnFwd{
			Owner: owner,
			Addr:  addr,
		}); sent {
			return
		}
	}
	// Allocator gone or unreachable: broadcast the vacate to adjacent
	// heads; whichever holds a replica commits it.
	for _, h := range sortedIDs(nd.qdset) {
		_, _ = p.send(nd.id, h, msgVacate, metrics.CatDeparture, vacate{
			Owner: owner,
			Addr:  addr,
			TTL:   1,
		})
	}
}

func (p *Protocol) onReturnFwd(nd *node, pl returnFwd) {
	if !nd.isHead() {
		return
	}
	p.routeVacate(nd, pl.Owner, pl.Addr)
}

func (p *Protocol) onVacate(nd *node, pl vacate) {
	if !nd.isHead() {
		return
	}
	if cur, ok := nd.localEntry(pl.Owner, pl.Addr); ok {
		freed := addrspace.Entry{Status: addrspace.Free, Version: cur.Version + 1}
		nd.applyEntry(pl.Owner, pl.Addr, freed)
		p.rt.Coll.Inc(CounterAddrReturned)
		return
	}
	if pl.TTL <= 0 {
		return
	}
	for _, h := range sortedIDs(nd.qdset) {
		_, _ = p.send(nd.id, h, msgVacate, metrics.CatDeparture, vacate{
			Owner: pl.Owner,
			Addr:  pl.Addr,
			TTL:   pl.TTL - 1,
		})
	}
}

// --- cluster head graceful departure (§IV-C2) -----------------------------

// departHead returns the head's IP block to its configurer when that head
// is alive within three hops, otherwise to the QDSet member with the
// smallest IP block; members are handed over to the recipient.
func (p *Protocol) departHead(nd *node) {
	snap := p.snapshot()
	target := radio.NodeID(0)
	found := false
	if nd.hasConfigurer && p.isHeadFn(nd.configurer) {
		if d, ok := snap.HopCount(nd.id, nd.configurer); ok && d <= 3 {
			target, found = nd.configurer, true
		}
	}
	if !found {
		// Smallest IP block among QDSet members.
		var bestSize uint32
		for _, h := range sortedIDs(nd.qdset) {
			hn := p.nodes[h]
			if hn == nil || !hn.isHead() || hn.pools == nil || !snap.Reachable(nd.id, h) {
				continue
			}
			if size := hn.pools.Size(); !found || size < bestSize {
				target, bestSize, found = h, size, true
			}
		}
	}
	if !found {
		p.killNode(nd) // isolated: space recovered later by reclamation
		return
	}

	// Return own IP to the pool before handing it over.
	if nd.pools != nil && nd.hasIP {
		if _, err := nd.pools.Mark(nd.ip, addrspace.Free); err == nil {
			delete(p.ipOwner, nd.ip)
		}
	}
	members := make([]memberRecord, 0, len(nd.members))
	for _, id := range sortedIDs(nd.members) {
		members = append(members, memberRecord{Node: id, Addr: nd.members[id]})
	}
	_, sent := p.send(nd.id, target, msgChReturn, metrics.CatDeparture, chReturn{
		Pool:    nd.pools,
		Members: members,
	})
	if !sent {
		p.killNode(nd)
		return
	}
	p.rt.Trace(obs.Event{Kind: obs.EvHeadResigned, Node: nd.id, Peer: target})
	// Resign from every QDSet (§IV-C2).
	for _, h := range sortedIDs(nd.qdset) {
		if h != target {
			_, _ = p.send(nd.id, h, msgChResign, metrics.CatDeparture, chResign{})
		}
	}
	p.rt.Sim.Schedule(p.p.ConfigTimeout, func() { p.killNode(nd) })
}

func (p *Protocol) onChReturn(nd *node, m netstack.Message, pl chReturn) {
	if !nd.isHead() {
		return
	}
	_, _ = p.send(nd.id, m.Src, msgChReturnAck, metrics.CatDeparture, chReturnAck{})
	if pl.Pool != nil {
		for _, t := range pl.Pool.Tables() {
			nd.pools.Add(t)
		}
	}
	p.rt.Coll.Inc(CounterAddrReturned)
	// The departing head stops being an owner. Its departure is explained,
	// so an emptied QDSet here is attrition, not a partition.
	delete(nd.replicas, m.Src)
	delete(nd.replicaHolders, m.Src)
	delete(nd.qdset, m.Src)
	p.dropCachedVoter(nd, m.Src)
	if len(nd.qdset) == 0 {
		nd.everHadPeers = false
	}
	// Adopt the orphaned members and tell them their new allocator
	// (§IV-C2: "inform each node configured by U the change of their
	// allocator").
	for _, rec := range pl.Members {
		if !p.Alive(rec.Node) {
			continue
		}
		nd.members[rec.Node] = rec.Addr
		_, _ = p.send(nd.id, rec.Node, msgReassign, metrics.CatDeparture, reassign{
			NewAllocator:   nd.id,
			NewAllocatorIP: nd.ip,
		})
	}
	// The pool grew: refresh replicas at this head's own holders.
	for _, h := range sortedIDs(nd.qdset) {
		_, _ = p.send(nd.id, h, msgPoolUpd, metrics.CatDeparture, poolUpd{
			Owner: nd.id,
			Pool:  nd.pools.Clone(),
		})
	}
}

func (p *Protocol) onChReturnAck(nd *node) {
	p.killNode(nd)
}

func (p *Protocol) onChResign(nd *node, m netstack.Message) {
	if !nd.isHead() {
		return
	}
	delete(nd.qdset, m.Src)
	p.dropCachedVoter(nd, m.Src)
	delete(nd.replicas, m.Src)
	delete(nd.replicaHolders, m.Src)
	delete(nd.ownerIPs, m.Src)
	if len(nd.qdset) == 0 {
		nd.everHadPeers = false // explained departure, not a partition
	}
	p.maintainReplicationLevel(nd)
}

func (p *Protocol) onReassign(nd *node, pl reassign) {
	if !nd.isCommon() {
		return
	}
	nd.configurer = pl.NewAllocator
	nd.hasConfigurer = true
	nd.hasAdmin = false
}

func (p *Protocol) onPoolUpd(nd *node, pl poolUpd) {
	if !nd.isHead() || pl.Pool == nil {
		return
	}
	nd.replicas[pl.Owner] = pl.Pool
	nd.qdset[pl.Owner] = true
	nd.everHadPeers = true
}
