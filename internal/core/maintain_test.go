package core

import (
	"strings"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/netstack"
	"quorumconf/internal/radio"
)

// TestAdministratorRoutedDeparture: a common node drifts >3 hops from its
// configurer, registers with an administrator head (UPDATE_LOC), then
// departs gracefully near that administrator; the address must still be
// marked free at the original allocator's replicas.
func TestAdministratorRoutedDeparture(t *testing.T) {
	h := newHarness(t, smallSpace())
	for i := 0; i < 7; i++ {
		h.arriveAt(time.Duration(i*20)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	// Node 10 joins near head 0, then walks to the far end (near head 6).
	path, err := mobility.NewPath(
		[]time.Duration{160 * time.Second, 300 * time.Second},
		[]mobility.Point{{X: 60, Y: 0}, {X: 620, Y: 40}},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.arriveModel(150*time.Second, 10, path)
	h.runUntil(320 * time.Second)

	nd10 := h.p.nodes[radio.NodeID(10)]
	if nd10 == nil || !nd10.hasIP {
		t.Fatal("node 10 unconfigured")
	}
	if !nd10.hasAdmin {
		t.Fatal("node 10 has no administrator after the walk")
	}
	ip10 := nd10.ip
	allocator := nd10.configurer
	h.departAt(321*time.Second, 10, true)
	h.runUntil(360 * time.Second)

	freed := false
	for _, id := range h.p.Heads() {
		nd := h.p.nodes[id]
		if e, ok := nd.localEntry(allocator, ip10); ok && e.Status == addrspace.Free {
			freed = true
		}
	}
	if !freed {
		t.Errorf("address %v not freed anywhere after administrator-routed departure", ip10)
	}
	h.assertNoConflicts()
}

// TestHelloCostScalesWithNodes: the analytic hello accounting charges one
// transmission per node per interval.
func TestHelloCostScalesWithNodes(t *testing.T) {
	run := func(n int) int64 {
		h := newHarness(t, smallSpace())
		for i := 0; i < n; i++ {
			h.arriveAt(0, radio.NodeID(i), 400+float64(i)*20, 500)
		}
		h.runUntil(60 * time.Second)
		return h.rt.Coll.Hops(metrics.CatHello)
	}
	small, big := run(3), run(9)
	// 3x the nodes should give ~3x the hello transmissions.
	if big < 2*small || big > 4*small {
		t.Errorf("hello cost did not scale with node count: %d vs %d", small, big)
	}
}

// TestAgentRelayTrace: the depleted allocator's relay really flows
// AGENT_FWD to the configurer and AGENT_CFG back.
func TestAgentRelayTrace(t *testing.T) {
	// Space of 8: head 0 keeps [1,4] (one spare after its two members),
	// head 3 gets [5,8] and is exhausted by three joiners; the fourth
	// joiner must be served by head 0 through the agent relay.
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 8}, DisableBorrowing: true})
	var kinds []string
	h.rt.Net.SetTrace(func(_ time.Duration, m netstack.Message) {
		kinds = append(kinds, m.Type)
	})
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.arriveAt(80*time.Second, 4, 320, 60)
	h.arriveAt(100*time.Second, 5, 340, 30)
	h.arriveAt(120*time.Second, 6, 280, 70)
	h.arriveAt(140*time.Second, 7, 360, 50)
	h.runUntil(240 * time.Second)
	if !h.p.IsConfigured(7) {
		t.Error("relayed requestor never configured")
	}

	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, msgAgentFwd) {
		t.Error("no AGENT_FWD in trace")
	}
	if !strings.Contains(joined, msgAgentCfg) {
		t.Error("no AGENT_CFG in trace")
	}
}

// TestStopTicking halts the maintenance loop so an idle simulator drains.
func TestStopTicking(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.runUntil(20 * time.Second)
	h.p.StopTicking()
	// The only remaining events are finite; Run must terminate.
	if err := h.rt.Sim.Run(); err != nil {
		t.Fatalf("Run after StopTicking: %v", err)
	}
}

// TestSuspectCancelledWhenMemberReturns: a QDSet member that becomes
// unreachable briefly (mobility) is not excised if it comes back within Td.
func TestSuspectCancelledWhenMemberReturns(t *testing.T) {
	params := smallSpace()
	params.Td = 10 * time.Second // long Td so the round trip fits inside it
	h := newHarness(t, params)
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	// Head 3 wanders out of reach briefly and returns within Td.
	path, err := mobility.NewPath(
		[]time.Duration{100 * time.Second, 103 * time.Second, 106 * time.Second, 109 * time.Second},
		[]mobility.Point{{X: 300}, {X: 700}, {X: 700}, {X: 300}},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.arriveModel(60*time.Second, 3, path)
	h.runUntil(140 * time.Second)

	if got := h.rt.Coll.Counter(CounterQuorumShrinks); got != 0 {
		t.Errorf("quorum shrank %d times despite member returning within Td", got)
	}
	if h.p.QDSetSize(0) == 0 {
		t.Error("head 0 lost its QDSet")
	}
}

// TestEffectiveSpaceConsistency: a head's effective space equals its own
// pool plus the sum of its replicas, and HoldersOf always contains self.
func TestEffectiveSpaceConsistency(t *testing.T) {
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 1024}})
	for i := 0; i < 7; i++ {
		h.arriveAt(time.Duration(i*20)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
	h.runUntil(200 * time.Second)
	for _, id := range h.p.Heads() {
		nd := h.p.nodes[id]
		want := nd.pools.Size()
		for _, rep := range nd.replicas {
			want += rep.Size()
		}
		if got := h.p.EffectiveSpaceSize(id); got != want {
			t.Errorf("EffectiveSpaceSize(%d) = %d, want %d", id, got, want)
		}
		holders := h.p.HoldersOf(id)
		foundSelf := false
		for _, hd := range holders {
			if hd == id {
				foundSelf = true
			}
		}
		if !foundSelf {
			t.Errorf("HoldersOf(%d) = %v missing self", id, holders)
		}
	}
}
