package core

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/radio"
)

// TestConcurrentRequestsSameAllocator is the regression test for the
// double-allocation race: two nodes request configuration from the same
// allocator in the same instant. Without allocator-side reservation both
// ballots proposed the allocator's lowest free address and both committed.
func TestConcurrentRequestsSameAllocator(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	// Two nodes appear at the same time, one hop from the head.
	h.arriveAt(20*time.Second, 1, 600, 500)
	h.arriveAt(20*time.Second, 2, 400, 500)
	h.runUntil(60 * time.Second)

	ip1, ok1 := h.p.IP(1)
	ip2, ok2 := h.p.IP(2)
	if !ok1 || !ok2 {
		t.Fatalf("nodes unconfigured: %v %v", ok1, ok2)
	}
	if ip1 == ip2 {
		t.Fatalf("both nodes got %v", ip1)
	}
	h.assertNoConflicts()
}

// TestConcurrentBorrowersSameOwner covers the cross-allocator race: two
// heads borrowing from the same owner's space at the same time must not
// hand out the same address — the voter-side exclusive grants (busy
// replies) serialize them.
func TestConcurrentBorrowersSameOwner(t *testing.T) {
	// Line of heads 0-3-6 (300m apart via relays), with heads 3 and 6
	// each depleted so both must borrow from head 0's replica.
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 10}})
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(10*time.Second, 1, 100, 0)
	h.arriveAt(20*time.Second, 2, 200, 0)
	h.arriveAt(30*time.Second, 3, 300, 0) // head, gets half of 0's block
	h.arriveAt(40*time.Second, 4, 400, 0)
	h.arriveAt(50*time.Second, 5, 500, 0)
	h.arriveAt(60*time.Second, 6, 600, 0) // head, gets half of 3's block
	// Exhaust heads 3 and 6 (their blocks are tiny: 10 addresses split
	// down to 2-3 each), then fire simultaneous joins at both.
	h.arriveAt(80*time.Second, 7, 320, 60)
	h.arriveAt(90*time.Second, 8, 620, 60)
	h.arriveAt(120*time.Second, 9, 330, -60)
	h.arriveAt(120*time.Second, 10, 630, -60)
	h.arriveAt(120*time.Second, 11, 280, 80)
	h.arriveAt(120*time.Second, 12, 580, 80)
	h.runUntil(240 * time.Second)

	h.assertNoConflicts()
	seen := map[addrspace.Addr][]radio.NodeID{}
	for id := radio.NodeID(0); id <= 12; id++ {
		if ip, ok := h.p.IP(id); ok {
			seen[ip] = append(seen[ip], id)
		}
	}
	for ip, ids := range seen {
		if len(ids) > 1 {
			t.Errorf("address %v assigned to %v", ip, ids)
		}
	}
}

// TestGrantExpiresAndRetrySucceeds: a busy reply aborts one contender, and
// the retry path eventually configures it.
func TestGrantExpiresAndRetrySucceeds(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	// A burst of simultaneous requests; all must end configured, uniquely.
	for i := radio.NodeID(1); i <= 6; i++ {
		h.arriveAt(20*time.Second, i, 500+float64(i)*15, 560)
	}
	h.runUntil(90 * time.Second)
	for i := radio.NodeID(1); i <= 6; i++ {
		if !h.p.IsConfigured(i) {
			t.Errorf("node %d unconfigured after contention burst", i)
		}
	}
	h.assertNoConflicts()
}
