package core

import (
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// Counter names for partition handling.
const (
	// CounterMergeRejoins counts nodes that gave up their address to
	// rejoin a lower-ID network after a merge (§V-C).
	CounterMergeRejoins = "merge_rejoins"
	// CounterIsolatedRestarts counts heads that restarted as the first
	// head of a new network after total isolation (§V-C).
	CounterIsolatedRestarts = "isolated_restarts"
)

// checkPartitions runs the §V-C machinery on the partition-check cadence.
// Each network is identified by the lowest IP address within it; the ID is
// carried in hello beacons, which we read off the connectivity snapshot
// (see the package comment on the hello shortcut).
//
// Two cases are handled per head:
//
//   - Merge: a head hears a configured node with a lower network ID in its
//     component. Its own network is the larger-ID one, so the head and its
//     members must acquire new addresses from the other network.
//   - Isolation: a head has lost every QDSet member and there is no other
//     head in its component. It cannot collect any quorum, so it restarts
//     as the first head of a fresh network and reconfigures its members.
func (p *Protocol) checkPartitions() {
	snap := p.snapshot()
	for _, id := range sortedIDs(p.nodes) {
		nd := p.nodes[id]
		if !nd.alive || !nd.hasIP {
			continue
		}
		if !nd.isHead() {
			// Common nodes rejoin on their own when they meet a lower-tag
			// network: their head may be gone or out of reach, and §V-C
			// wants every larger-ID node to reacquire an address.
			if lowest, foreign := p.lowestNetworkID(snap, nd); foreign && lowest.Less(nd.networkID) {
				p.rt.Coll.Inc(CounterMergeRejoins)
				p.rt.Trace(obs.Event{Kind: obs.EvPartitionMerge, Node: nd.id, Addr: nd.ip, Detail: "member"})
				p.resetToUnconfigured(nd)
				p.scheduleRejoin(nd)
			}
			continue
		}
		lowest, foreign := p.lowestNetworkID(snap, nd)
		switch {
		case foreign && lowest.Less(nd.networkID):
			p.mergeRejoin(snap, nd)
		case p.isolated(snap, nd):
			// Debounce: restart only after the condition persists past
			// IsolationGrace, giving the §V-B failure machinery (Td
			// shrink, REP_REQ, reclamation) its chance to explain the
			// silence as deaths rather than a partition.
			if !nd.isolatedObserved {
				nd.isolatedObserved = true
				nd.isolatedSince = p.rt.Sim.Now()
			} else if p.rt.Sim.Now()-nd.isolatedSince >= p.p.IsolationGrace {
				p.isolatedRestart(nd)
			}
		default:
			nd.isolatedObserved = false
		}
	}
}

// lowestNetworkID scans the head's component for the lowest network tag
// any configured node carries, reporting whether some node carries a tag
// different from the head's own.
func (p *Protocol) lowestNetworkID(snap *radio.Snapshot, nd *node) (NetTag, bool) {
	lowest := nd.networkID
	foreign := false
	for _, other := range snap.Component(nd.id) {
		on, ok := p.nodes[other]
		if !ok || !on.alive || !on.hasIP {
			continue
		}
		if on.networkID != nd.networkID {
			foreign = true
		}
		if on.networkID.Less(lowest) {
			lowest = on.networkID
		}
	}
	return lowest, foreign
}

// isolated reports whether the head has been cut off by a partition. A
// head that never had peers is simply a single-cluster network, not a
// partition victim (§V-C's "isolated cluster head" presumes it lost its
// adjacent heads). And a head whose component still contains configured
// nodes belonging to other clusters is witnessing head *failures*, not a
// partition — those orphans hold addresses from the old space, so the
// §V-B reclamation machinery applies, never a space reset.
func (p *Protocol) isolated(snap *radio.Snapshot, nd *node) bool {
	if !nd.everHadPeers {
		return false
	}
	for _, other := range snap.Component(nd.id) {
		if other == nd.id {
			continue
		}
		if p.isHeadFn(other) {
			return false
		}
		on, ok := p.nodes[other]
		if !ok || !on.alive || !on.hasIP {
			continue
		}
		if on.role == RoleCommon && (!on.hasConfigurer || on.configurer != nd.id) {
			return false
		}
	}
	return true
}

// mergeRejoin makes a larger-ID head and its reachable members release
// their addresses and reacquire from the other network, joining "one by
// one" (§V-C).
func (p *Protocol) mergeRejoin(snap *radio.Snapshot, nd *node) {
	members := sortedIDs(nd.members)
	for _, m := range members {
		if !p.Alive(m) || !snap.Reachable(nd.id, m) {
			continue
		}
		_, _ = p.send(nd.id, m, msgReconfig, metrics.CatPartition, reconfig{})
	}
	p.rt.Coll.Inc(CounterMergeRejoins)
	p.rt.Trace(obs.Event{Kind: obs.EvPartitionMerge, Node: nd.id, Addr: nd.ip, Detail: "head"})
	p.resetToUnconfigured(nd)
	p.scheduleRejoin(nd)
}

func (p *Protocol) onReconfig(nd *node) {
	if !nd.alive || !nd.hasIP {
		return
	}
	p.rt.Coll.Inc(CounterMergeRejoins)
	p.rt.Trace(obs.Event{Kind: obs.EvPartitionMerge, Node: nd.id, Addr: nd.ip, Detail: "reconfig"})
	p.resetToUnconfigured(nd)
	p.scheduleRejoin(nd)
}

// scheduleRejoin re-runs configuration after a short jittered delay so
// merging nodes join "one by one" (§V-C) instead of stampeding the
// allocators at one instant.
func (p *Protocol) scheduleRejoin(nd *node) {
	jitter := time.Duration(p.rt.Sim.Rand().Int63n(int64(2 * p.p.HelloInterval)))
	p.rt.Sim.Schedule(p.p.HelloInterval+jitter, func() { p.attemptConfigure(nd) })
}

// resetToUnconfigured strips a node's address and role so it can rejoin.
func (p *Protocol) resetToUnconfigured(nd *node) {
	if nd.hasIP {
		delete(p.ipOwner, nd.ip)
	}
	for _, t := range nd.suspects {
		t.Cancel()
	}
	for _, t := range nd.probing {
		t.Cancel()
	}
	for _, pb := range nd.ballots {
		if pb.timer != nil {
			pb.timer.Cancel()
		}
	}
	for _, rs := range nd.reclaims {
		if rs.timer != nil {
			rs.timer.Cancel()
		}
	}
	nd.role = RoleUnconfigured
	nd.everHadPeers = false
	nd.isolatedObserved = false
	nd.hasIP = false
	nd.ip = 0
	nd.networkID = NetTag{}
	nd.hasConfigurer = false
	nd.hasAdmin = false
	nd.configuring = false
	nd.firstTries = 0
	nd.heardIPs = nil
	nd.pools = nil
	nd.replicas = nil
	nd.replicaHolders = nil
	nd.ownerIPs = nil
	nd.qdset = nil
	nd.members = nil
	nd.administered = nil
	nd.suspects = nil
	nd.probing = nil
	nd.ballots = nil
	nd.reclaims = nil
	nd.pendingAddrs = nil
	nd.grants = nil
	nd.allocQueue = nil
	nd.voteCache = nil
	nd.healthMon = nil
	nd.qdLastSeen = nil
}

// isolatedRestart implements the §V-C "isolated cluster head" rule: the
// head regains the whole address space as the first head of a new network
// and reconfigures the common nodes still around it with fresh addresses.
func (p *Protocol) isolatedRestart(nd *node) {
	snap := p.snapshot()
	members := snap.Component(nd.id)
	// Keep existing state only if someone else might dispute the space;
	// total isolation means nobody can, so restart cleanly.
	tab, err := addrspace.NewTable(p.p.Space)
	if err != nil {
		return
	}
	pool := addrspace.NewPool(tab)
	ip, ok := pool.FirstFree()
	if !ok {
		return
	}
	if _, err := pool.Mark(ip, addrspace.Occupied); err != nil {
		return
	}
	p.rt.Coll.Inc(CounterIsolatedRestarts)
	p.rt.Trace(obs.Event{Kind: obs.EvIsolatedRestart, Node: nd.id, Addr: nd.ip})
	oldIP := nd.ip
	hadIP := nd.hasIP
	p.resetToUnconfigured(nd)
	if hadIP {
		delete(p.ipOwner, oldIP)
	}
	p.initHead(nd, pool, ip, NetTag{Addr: ip, Nonce: p.rt.Sim.Rand().Uint32()}, 0, false)
	// Reconfigure the surviving common nodes with new addresses.
	for _, m := range members {
		if m == nd.id {
			continue
		}
		mn, ok := p.nodes[m]
		if !ok || !mn.alive || !mn.hasIP {
			continue
		}
		_, _ = p.send(nd.id, m, msgReconfig, metrics.CatPartition, reconfig{})
	}
}
