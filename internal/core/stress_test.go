package core

import (
	"fmt"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/mobility"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
	"quorumconf/internal/workload"
)

// buildFor adapts the harnessless workload runner to this package.
func buildFor(params Params) workload.BuildFunc {
	return func(rt *protocol.Runtime) (protocol.Protocol, error) {
		return New(rt, params)
	}
}

// TestPropertyStaticNetworksConverge: over many random static topologies,
// every node in a component containing a head ends configured, with no
// same-component duplicates — the protocol's basic liveness + safety.
func TestPropertyStaticNetworksConverge(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := workload.Run(workload.Scenario{
				Seed:              seed,
				NumNodes:          35,
				TransmissionRange: 220,
				Speed:             0,
				ArrivalInterval:   2 * time.Second,
				SettleTime:        90 * time.Second,
			}, buildFor(Params{Space: addrspace.Block{Lo: 1, Hi: 512}}))
			if err != nil {
				t.Fatal(err)
			}
			p := res.Proto.(*Protocol)
			for i := radio.NodeID(0); i < 35; i++ {
				if !p.IsConfigured(i) {
					t.Errorf("node %d unconfigured (role %v)", i, p.Role(i))
				}
			}
			if c := p.AddressConflicts(); len(c) != 0 {
				t.Errorf("conflicts: %v", c)
			}
			// Structural invariants: every common node has an alive,
			// reachable-or-recorded configurer; every head has a pool.
			for id, nd := range p.nodes {
				if !nd.alive {
					continue
				}
				switch nd.role {
				case RoleCommon:
					if !nd.hasConfigurer {
						t.Errorf("common node %d has no configurer", id)
					}
				case RoleHead:
					if nd.pools == nil || nd.pools.Size() == 0 {
						t.Errorf("head %d has no pool", id)
					}
					if !nd.pools.Contains(nd.ip) {
						t.Errorf("head %d's own IP %v outside its pool %v", id, nd.ip, nd.pools.Blocks())
					}
				}
			}
		})
	}
}

// TestStressLossAndChurnCombined: lossy links, mobility and abrupt
// departures together. The protocol must neither deadlock nor hand out
// duplicates; configuration coverage may degrade but not collapse.
func TestStressLossAndChurnCombined(t *testing.T) {
	res, err := workload.Run(workload.Scenario{
		Seed:              99,
		NumNodes:          50,
		TransmissionRange: 250,
		Speed:             20,
		ArrivalInterval:   2 * time.Second,
		DepartFraction:    0.3,
		AbruptFraction:    0.7,
		LossRate:          0.05,
		SettleTime:        180 * time.Second,
	}, buildFor(Params{Space: addrspace.Block{Lo: 1, Hi: 512}}))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Proto.(*Protocol)
	if c := p.AddressConflicts(); len(c) != 0 {
		t.Errorf("conflicts under loss+churn: %v", c)
	}
	alive, configured := 0, 0
	for i := radio.NodeID(0); i < 50; i++ {
		if p.Alive(i) {
			alive++
			if p.IsConfigured(i) {
				configured++
			}
		}
	}
	if alive == 0 {
		t.Fatal("no survivors")
	}
	if float64(configured) < 0.75*float64(alive) {
		t.Errorf("coverage collapsed: %d/%d configured", configured, alive)
	}
}

// TestStressRepeatedPartitionCycles: a head-plus-member pair repeatedly
// leaves and rejoins; each cycle must converge back to one conflict-free
// network.
func TestStressRepeatedPartitionCycles(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	// Node 3 (a head) oscillates: 3 away-and-back cycles of 120s each.
	times := []time.Duration{100 * time.Second}
	points := []struct{ X, Y float64 }{{300, 0}}
	base := 100 * time.Second
	for c := 0; c < 3; c++ {
		times = append(times,
			base+20*time.Second, base+60*time.Second, base+80*time.Second, base+120*time.Second)
		points = append(points,
			struct{ X, Y float64 }{3300, 0}, struct{ X, Y float64 }{3300, 0},
			struct{ X, Y float64 }{300, 0}, struct{ X, Y float64 }{300, 0})
		base += 120 * time.Second
	}
	mtimes := times
	mpts := make([]mobility.Point, len(points))
	for i, p := range points {
		mpts[i] = mobility.Point{X: p.X, Y: p.Y}
	}
	path, err := mobility.NewPath(mtimes, mpts)
	if err != nil {
		t.Fatal(err)
	}
	h.arriveModel(50*time.Second, 3, path)
	h.runUntil(base + 120*time.Second)

	h.assertNoConflicts()
	if !h.p.IsConfigured(3) {
		t.Errorf("oscillating node unconfigured at the end (role %v)", h.p.Role(3))
	}
	// All nodes in the final single component share one network tag.
	tags := map[NetTag]bool{}
	for i := radio.NodeID(0); i <= 3; i++ {
		if tag, ok := h.p.NetworkTag(i); ok {
			tags[tag] = true
		}
	}
	if len(tags) > 1 {
		t.Errorf("multiple network tags after reunification: %v", tags)
	}
}
