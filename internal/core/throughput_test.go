package core

import (
	"sync"
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// newTracedHarness is newHarness with a ring tracer attached, for tests
// asserting on the event stream.
func newTracedHarness(t *testing.T, params Params) (*harness, *obs.Ring) {
	t.Helper()
	ring := obs.NewRing(16384)
	rt, err := protocol.New(
		protocol.WithSeed(1),
		protocol.WithTransmissionRange(150),
		protocol.WithTracer(obs.NewTracer(nil, ring)),
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, params)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, rt: rt, p: p}, ring
}

func countKind(ring *obs.Ring, kind obs.EventKind) int {
	n := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// burstJoin fires n simultaneous joins one hop from a head at (500,500).
func burstJoin(h *harness, at time.Duration, first radio.NodeID, n int) {
	for i := 0; i < n; i++ {
		h.arriveAt(at, first+radio.NodeID(i), 500+float64(i%8)*12, 560+float64(i/8)*12)
	}
}

// burstJoinOrigin fires n simultaneous joins one hop from a head at the
// origin. A single-head network commits ballots synchronously on its own
// vote, so overlap tests need the twoHeadChain topology where each ballot
// waits a multi-hop round trip for the QDSet member's vote.
func burstJoinOrigin(h *harness, at time.Duration, first radio.NodeID, n int) {
	for i := 0; i < n; i++ {
		h.arriveAt(at, first+radio.NodeID(i), 40+float64(i%8)*8, 60+float64(i/8)*20)
	}
}

// TestBallotWindowSerialQueues pins the BallotWindow=1 discipline: a burst
// of simultaneous requests is served strictly one ballot at a time (no
// ballot_pipelined events), the FIFO queue loses none of them, and every
// node ends configured with a unique address.
func TestBallotWindowSerialQueues(t *testing.T) {
	params := smallSpace()
	params.BallotWindow = 1
	h, ring := newTracedHarness(t, params)
	twoHeadChain(h)
	burstJoinOrigin(h, 60*time.Second, 4, 6)
	h.runUntil(140 * time.Second)

	for i := radio.NodeID(4); i <= 9; i++ {
		if !h.p.IsConfigured(i) {
			t.Errorf("node %d unconfigured under serial window", i)
		}
	}
	h.assertNoConflicts()
	if n := countKind(ring, obs.EvBallotPipelined); n != 0 {
		t.Errorf("serial window emitted %d ballot_pipelined events", n)
	}
}

// TestBallotPipelinedOverlap: without a window bound, the same burst runs
// concurrent ballots — observable as ballot_pipelined events — and still
// assigns unique addresses.
func TestBallotPipelinedOverlap(t *testing.T) {
	h, ring := newTracedHarness(t, smallSpace())
	twoHeadChain(h)
	burstJoinOrigin(h, 60*time.Second, 4, 6)
	h.runUntil(140 * time.Second)

	for i := radio.NodeID(4); i <= 9; i++ {
		if !h.p.IsConfigured(i) {
			t.Errorf("node %d unconfigured under pipelining", i)
		}
	}
	h.assertNoConflicts()
	if n := countKind(ring, obs.EvBallotPipelined); n == 0 {
		t.Error("simultaneous burst produced no ballot_pipelined events")
	}
}

// TestPipelinedDeterministic pins the acceptance criterion that the
// pipelined+cached path is a deterministic function of the seed: two runs
// of the same scenario produce the identical final address map.
func TestPipelinedDeterministic(t *testing.T) {
	run := func() map[radio.NodeID]addrspace.Addr {
		params := smallSpace()
		params.BallotWindow = 4
		params.VoteCacheTTL = 5 * time.Second
		h := newHarness(t, params)
		h.arriveAt(0, 0, 500, 500)
		burstJoin(h, 20*time.Second, 1, 10)
		h.departAt(50*time.Second, 3, false)
		h.departAt(55*time.Second, 7, true)
		burstJoin(h, 60*time.Second, 11, 4)
		h.runUntil(120 * time.Second)
		h.assertNoConflicts()
		out := make(map[radio.NodeID]addrspace.Addr)
		for id := radio.NodeID(0); id <= 14; id++ {
			if ip, ok := h.p.IP(id); ok {
				out[id] = ip
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs configured %d vs %d nodes", len(a), len(b))
	}
	for id, ip := range a {
		if b[id] != ip {
			t.Errorf("node %d: run1 %v, run2 %v", id, ip, b[id])
		}
	}
}

// twoHeadParams builds the vote-cache scenario: head 0 at the origin with
// head 3 (via relays 1, 2) as its only QDSet member.
func twoHeadChain(h *harness) {
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(10*time.Second, 1, 100, 0)
	h.arriveAt(20*time.Second, 2, 200, 0)
	h.arriveAt(30*time.Second, 3, 300, 0) // 3 hops from head 0: new head
}

// TestVoteCacheHitsUnderChurn: with the cache enabled, sequential joins at
// one head stop re-polling its unchanged QDSet — vote_cache_hit events
// appear and every join still gets a unique address.
func TestVoteCacheHitsUnderChurn(t *testing.T) {
	params := smallSpace()
	params.VoteCacheTTL = 30 * time.Second
	h, ring := newTracedHarness(t, params)
	twoHeadChain(h)
	for i := 0; i < 6; i++ {
		h.arriveAt(60*time.Second+time.Duration(i)*2*time.Second, radio.NodeID(4+i), 50, 50)
	}
	h.runUntil(120 * time.Second)

	for i := radio.NodeID(4); i <= 9; i++ {
		if !h.p.IsConfigured(i) {
			t.Errorf("node %d unconfigured with vote cache on", i)
		}
	}
	h.assertNoConflicts()
	if n := countKind(ring, obs.EvVoteCacheHit); n == 0 {
		t.Error("sequential joins produced no vote_cache_hit events")
	}
}

// TestVoteCacheMembershipInvalidate: a QDSet member crashing mid-run must
// drop its cache entry (vote_cache_invalidate) rather than letting the
// allocator keep synthesizing votes for a dead head, and later joins still
// configure against the shrunken quorum.
func TestVoteCacheMembershipInvalidate(t *testing.T) {
	params := smallSpace()
	params.VoteCacheTTL = 60 * time.Second
	h, ring := newTracedHarness(t, params)
	twoHeadChain(h)
	h.arriveAt(60*time.Second, 4, 50, 50) // populates the cache at head 0
	h.departAt(80*time.Second, 3, false)  // QDSet member crashes
	h.arriveAt(100*time.Second, 5, -50, 50)
	h.runUntil(140 * time.Second)

	if !h.p.IsConfigured(5) {
		t.Error("join after member crash unconfigured")
	}
	h.assertNoConflicts()
	invalidated := false
	for _, e := range ring.Snapshot() {
		if e.Kind == obs.EvVoteCacheInvalidate && e.Node == 0 && e.Peer == 3 {
			invalidated = true
		}
	}
	if !invalidated {
		t.Error("no vote_cache_invalidate for the crashed QDSet member")
	}
}

// TestVoteCacheTTL pins the stale-timestamp edge on the cache type itself:
// an entry one tick past the TTL is rejected exactly once with
// expired=true (the caller's cue to trace the invalidation) and is gone on
// the second lookup.
func TestVoteCacheTTL(t *testing.T) {
	c := newVoteCache(10 * time.Second)
	c.confirm(7, 100*time.Second)
	if ok, _ := c.fresh(7, 110*time.Second); !ok {
		t.Error("entry at exactly TTL rejected")
	}
	ok, expired := c.fresh(7, 110*time.Second+time.Nanosecond)
	if ok || !expired {
		t.Errorf("stale entry: ok=%v expired=%v, want false/true", ok, expired)
	}
	ok, expired = c.fresh(7, 111*time.Second)
	if ok || expired {
		t.Errorf("second lookup after expiry: ok=%v expired=%v, want false/false", ok, expired)
	}
	if c.size() != 0 {
		t.Errorf("stale entry not evicted: size %d", c.size())
	}

	// A disabled cache is a nil receiver and every operation is a no-op.
	var off *voteCache
	off.confirm(1, 0)
	if ok, expired := off.fresh(1, 0); ok || expired {
		t.Error("nil cache returned a hit")
	}
	if off.invalidate(1) || off.invalidateAll() != 0 || off.size() != 0 {
		t.Error("nil cache mutated")
	}
}

// TestVoteCacheConcurrentInvalidate hammers hits against invalidations
// from concurrent goroutines; run with -race this pins that a concurrent
// driver (the daemon's handler pool) cannot corrupt the cache or observe a
// hit for an entry being invalidated.
func TestVoteCacheConcurrentInvalidate(t *testing.T) {
	c := newVoteCache(time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m := radio.NodeID(i % 8)
				c.confirm(m, time.Duration(i))
				c.fresh(m, time.Duration(i))
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if i%3 == 0 {
					c.invalidateAll()
				} else {
					c.invalidate(radio.NodeID(i % 8))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.size() > 8 {
		t.Errorf("cache grew past member count: %d", c.size())
	}
}

// TestSimHealthUnderAndRestored closes the ROADMAP item 3 leftover: the
// replica-health monitor now runs inside the simulator's cluster heads.
// Killing one of a head's two replica holders while a spare head exists in
// the component must raise replica_underreplicated on the owner, and the
// shrink-then-recruit repair must follow with replica_restored.
func TestSimHealthUnderAndRestored(t *testing.T) {
	params := smallSpace()
	params.MinReplicas = 2
	params.Td = 10 * time.Second // hold the under state across health ticks
	h, ring := newTracedHarness(t, params)
	// Heads 0, 3, 6 along a relay line, plus head 9 on a column hanging
	// off head 6. Node 0's QDSet settles at {3, 6}; 9 pairs with {6, 3}
	// and stays out of 0's quorum — the recruitable spare. The column's
	// first relay (600,100) also reaches (500,0), so killing head 6 does
	// not partition the branch.
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(10*time.Second, 1, 100, 0)
	h.arriveAt(20*time.Second, 2, 200, 0)
	h.arriveAt(30*time.Second, 3, 300, 0)
	h.arriveAt(40*time.Second, 4, 400, 0)
	h.arriveAt(50*time.Second, 5, 500, 0)
	h.arriveAt(60*time.Second, 6, 600, 0)
	h.arriveAt(70*time.Second, 7, 600, 100)
	h.arriveAt(80*time.Second, 8, 600, 200)
	h.arriveAt(90*time.Second, 9, 600, 300)

	h.departAt(140*time.Second, 6, false) // holder crashes
	h.runUntil(200 * time.Second)

	var underSeq, restoredSeq uint64
	checks := 0
	for _, e := range ring.Snapshot() {
		if e.Node != 0 {
			continue
		}
		switch e.Kind {
		case obs.EvHealthCheck:
			checks++
		case obs.EvReplicaUnderreplicated:
			if underSeq == 0 {
				underSeq = e.Seq
			}
		case obs.EvReplicaRestored:
			if e.Seq > underSeq && restoredSeq == 0 {
				restoredSeq = e.Seq
			}
		}
	}
	if checks == 0 {
		t.Error("head 0 ran no health checks")
	}
	if underSeq == 0 {
		t.Fatal("holder crash raised no replica_underreplicated on the owner")
	}
	if restoredSeq == 0 {
		t.Fatal("no replica_restored after the recruit repair")
	}
	h.assertNoConflicts()
}
