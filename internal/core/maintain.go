package core

import (
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/cluster"
	"quorumconf/internal/health"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// Counter names for maintenance machinery.
const (
	// CounterQuorumShrinks counts QDSet members dropped after Td expiry.
	CounterQuorumShrinks = "quorum_shrinks"
	// CounterQuorumRecruits counts replica holders recruited to keep
	// |QDSet| >= MinReplicas.
	CounterQuorumRecruits = "quorum_recruits"
	// CounterLocationUpdates counts UPDATE_LOC messages sent.
	CounterLocationUpdates = "location_updates"
)

// scheduleTick starts the recurring maintenance event. One tick per
// HelloInterval: hello-beacon cost is charged analytically (one
// transmission per live node), heads check QDSet liveness, and on coarser
// multiples common nodes run location checks and heads compare network IDs
// (partition detection).
func (p *Protocol) scheduleTick() {
	p.tickTimer = p.rt.Sim.Schedule(p.p.HelloInterval, func() {
		p.tick()
		p.scheduleTick()
	})
}

// StopTicking halts the maintenance loop (used when a scenario drains the
// event queue at the end of a run).
func (p *Protocol) StopTicking() {
	if p.tickTimer != nil {
		p.tickTimer.Cancel()
		p.tickTimer = nil
	}
	p.running = false
}

func (p *Protocol) tick() {
	p.ticks++
	n := p.rt.Topo.Len()
	if n == 0 {
		return
	}
	// Hello beacons: every live node transmits once per interval.
	p.rt.Coll.AddTransmissions(metrics.CatHello, n)

	p.checkHeadLiveness()

	updateEvery := uint64(p.p.UpdatePeriod / p.p.HelloInterval)
	if updateEvery == 0 {
		updateEvery = 1
	}
	if !p.p.UponLeaveOnly && p.ticks%updateEvery == 0 {
		p.runLocationUpdates()
	}
	partitionEvery := uint64(p.p.PartitionCheckPeriod / p.p.HelloInterval)
	if partitionEvery == 0 {
		partitionEvery = 1
	}
	if p.ticks%partitionEvery == 0 {
		p.checkPartitions()
		// Replication floor (§V-B): heads that formed, or were left, with
		// too few replica holders recruit more on the same cadence. The
		// health monitor runs first so its under/restored edges observe the
		// state the recruitment is about to repair.
		for _, id := range sortedIDs(p.nodes) {
			if nd := p.nodes[id]; nd.isHead() {
				p.evaluateHealth(nd)
				p.maintainReplicationLevel(nd)
			}
		}
	}
}

// simEpoch anchors the simulator's virtual clock onto the wall-clock time
// type health.Monitor expects; only differences matter.
var simEpoch = time.Unix(0, 0).UTC()

// evaluateHealth runs the replica-health monitor (ROADMAP item 3) over a
// head's QDSet, the same proactive check quorumd runs over its live
// electorate. Hello-driven reachability stands in for REPLICA_ACK leases:
// qdLastSeen is refreshed every hello interval a member stays reachable,
// and a lease stale for Td/2 triggers a re-sync before the Td reclamation
// machinery would have noticed anything.
func (p *Protocol) evaluateHealth(nd *node) {
	if nd.healthMon == nil {
		return
	}
	snap := p.snapshot()
	peers := make([]health.PeerState, 0, len(nd.qdset))
	for _, m := range sortedIDs(nd.qdset) {
		var acked time.Time
		if seen, ok := nd.qdLastSeen[m]; ok {
			acked = simEpoch.Add(seen)
		}
		peers = append(peers, health.PeerState{
			ID:      m,
			Dead:    !p.Alive(m) || !snap.Reachable(nd.id, m),
			Holder:  true, // every QDSet member is a designated holder
			AckedAt: acked,
		})
	}
	// Other heads in the component are the recruitable non-holders; without
	// them the effective target caps at the holder count and a lost replica
	// never reads as under-replicated even when a replacement exists.
	for _, h := range cluster.HeadsWithin(snap, nd.id, snap.Len(), p.isHeadFn) {
		if h == nd.id || nd.qdset[h] {
			continue
		}
		peers = append(peers, health.PeerState{ID: h})
	}
	check := nd.healthMon.Evaluate(simEpoch.Add(p.rt.Sim.Now()), nd.id, peers)
	for _, h := range check.Refresh {
		p.rt.Trace(obs.Event{Kind: obs.EvReplicaSync, Node: nd.id, Peer: h, Addr: nd.ip})
		_, _ = p.send(nd.id, h, msgReplicaDist, metrics.CatSync, replicaDist{Info: holderInfo{
			Owner:   nd.id,
			OwnerIP: nd.ip,
			Pool:    nd.pools.Clone(),
			Holders: nd.electorate(nd.id),
		}})
	}
	// check.Under needs no action here: maintainReplicationLevel (called
	// right after on the same cadence) is the recruitment machinery, and
	// dead holders are retired by the Td quorum-shrink path rather than
	// check.Demote so the paper's failure-detection grace still applies.
}

// checkHeadLiveness is the hello-driven failure detector: a head that
// stops hearing a QDSet member starts the Td timer; reachability again
// cancels it (§V-B).
func (p *Protocol) checkHeadLiveness() {
	snap := p.snapshot()
	for _, id := range sortedIDs(p.nodes) {
		nd := p.nodes[id]
		if !nd.isHead() {
			continue
		}
		for _, m := range sortedIDs(nd.qdset) {
			reachable := p.Alive(m) && snap.Reachable(nd.id, m)
			if reachable {
				if nd.qdLastSeen != nil {
					nd.qdLastSeen[m] = p.rt.Sim.Now()
				}
				if t, ok := nd.suspects[m]; ok {
					t.Cancel()
					delete(nd.suspects, m)
				}
				continue
			}
			p.suspectMember(nd, m)
		}
	}
}

// suspectMember arms the Td timer for a silent QDSet member. The timer is
// jittered: all of a dead head's QDSet members notice the silence within
// the same hello interval, and without jitter they would all initiate
// reclamation simultaneously instead of the first flood suppressing the
// rest.
func (p *Protocol) suspectMember(nd *node, m radio.NodeID) {
	if !nd.isHead() || !nd.qdset[m] {
		return
	}
	if t, ok := nd.suspects[m]; ok && t.Pending() {
		return
	}
	p.rt.Trace(obs.Event{Kind: obs.EvPeerSuspect, Node: nd.id, Peer: m})
	jitter := time.Duration(p.rt.Sim.Rand().Int63n(int64(2*p.p.HelloInterval) + 1))
	nd.suspects[m] = p.rt.Sim.Schedule(p.p.Td+jitter, func() { p.onTdExpired(nd, m) })
}

// onTdExpired shrinks the quorum set (§V-B): the member is excluded from
// the QDSet, and a REP_REQ probe verifies whether it still exists; no reply
// within Tr starts address reclamation for it.
func (p *Protocol) onTdExpired(nd *node, m radio.NodeID) {
	delete(nd.suspects, m)
	if !nd.isHead() || !nd.qdset[m] {
		return
	}
	snap := p.snapshot()
	if p.Alive(m) && snap.Reachable(nd.id, m) {
		return // came back before the timer fired
	}
	delete(nd.qdset, m)
	p.dropCachedVoter(nd, m)
	p.rt.Coll.Inc(CounterQuorumShrinks)
	p.rt.Trace(obs.Event{Kind: obs.EvQuorumShrink, Node: nd.id, Peer: m})

	// Probe: the transmission is attempted whether or not the target is
	// reachable, so one transmission is charged either way. Probes are
	// quorum-adjustment maintenance (§V-B), not reclamation traffic.
	p.rt.Trace(obs.Event{Kind: obs.EvQuorumProbe, Node: nd.id, Peer: m})
	if _, ok := p.send(nd.id, m, msgRepReq, metrics.CatSync, repReq{}); !ok {
		p.rt.Coll.AddTransmissions(metrics.CatSync, 1)
	}
	if t, ok := nd.probing[m]; ok {
		t.Cancel()
	}
	trJitter := time.Duration(p.rt.Sim.Rand().Int63n(int64(2*p.p.HelloInterval) + 1))
	nd.probing[m] = p.rt.Sim.Schedule(p.p.Tr+trJitter, func() { p.onTrExpired(nd, m) })

	p.maintainReplicationLevel(nd)
}

func (p *Protocol) onRepReq(nd *node, m netstack.Message) {
	if !nd.alive {
		return
	}
	_, _ = p.send(nd.id, m.Src, msgRepRsp, metrics.CatSync, repRsp{})
}

func (p *Protocol) onRepRsp(nd *node, m netstack.Message) {
	if !nd.isHead() {
		return
	}
	if t, ok := nd.probing[m.Src]; ok {
		t.Cancel()
		delete(nd.probing, m.Src)
	}
	// The member exists after all: re-admit it.
	if !nd.qdset[m.Src] && p.isHeadFn(m.Src) {
		nd.qdset[m.Src] = true
		nd.everHadPeers = true
	}
}

// onTrExpired: the probed head never answered — reclaim its address space
// (§V-B last paragraph, §IV-D).
func (p *Protocol) onTrExpired(nd *node, m radio.NodeID) {
	delete(nd.probing, m)
	if !nd.isHead() {
		return
	}
	if p.Alive(m) && p.snapshot().Reachable(nd.id, m) {
		return
	}
	ip := nd.ownerIPs[m]
	p.rt.Trace(obs.Event{Kind: obs.EvPeerDead, Node: nd.id, Peer: m, Addr: ip})
	p.initiateReclamation(nd, m, ip)
}

// maintainReplicationLevel recruits new replica holders when the QDSet
// falls below MinReplicas (§V-B: "cluster heads begin to increase replicas
// once |QDSet| is lower than 3"). Adjacent heads within the normal 3-hop
// QDSet radius are preferred; when too few exist, the search widens to
// more distant heads in the component so the replication floor holds.
func (p *Protocol) maintainReplicationLevel(nd *node) {
	if len(nd.qdset) >= p.p.MinReplicas {
		return
	}
	snap := p.snapshot()
	candidates := cluster.HeadsWithin(snap, nd.id, 3, p.isHeadFn)
	// Count only candidates that would actually be new recruits: nearby
	// heads already in the QDSet cannot raise the level, so they must not
	// satisfy the floor and suppress the wider search.
	fresh := 0
	for _, h := range candidates {
		if !nd.qdset[h] && h != nd.id {
			fresh++
		}
	}
	if len(nd.qdset)+fresh < p.p.MinReplicas {
		candidates = cluster.HeadsWithin(snap, nd.id, snap.Len(), p.isHeadFn)
	}
	recruited := false
	for _, h := range candidates {
		if nd.qdset[h] || h == nd.id {
			continue
		}
		nd.qdset[h] = true
		nd.everHadPeers = true
		recruited = true
		p.rt.Coll.Inc(CounterQuorumRecruits)
		p.rt.Trace(obs.Event{Kind: obs.EvQuorumRecruit, Node: nd.id, Peer: h})
		_, _ = p.send(nd.id, h, msgReplicaDist, metrics.CatSync, replicaDist{Info: holderInfo{
			Owner:   nd.id,
			OwnerIP: nd.ip,
			Pool:    nd.pools.Clone(),
			Holders: nd.electorate(nd.id),
		}})
		if len(nd.qdset) >= p.p.MinReplicas {
			break
		}
	}
	if recruited {
		// Electorate changed: refresh the holder lists at all members.
		p.distributeReplicas(nd, metrics.CatSync)
	}
}

// runLocationUpdates implements §IV-C1 periodic updates: a common node
// more than three hops from its configurer (or current administrator)
// registers with the nearest head via UPDATE_LOC.
func (p *Protocol) runLocationUpdates() {
	snap := p.snapshot()
	for _, id := range sortedIDs(p.nodes) {
		nd := p.nodes[id]
		if !nd.isCommon() || !nd.hasIP {
			continue
		}
		anchor := nd.configurer
		if nd.hasAdmin {
			anchor = nd.administrator
		}
		if d, ok := snap.HopCount(nd.id, anchor); ok && d <= 3 && p.Alive(anchor) {
			continue
		}
		head, _, ok := cluster.Nearest(snap, nd.id, p.isHeadFn)
		if !ok || head == anchor {
			continue
		}
		if _, sent := p.send(nd.id, head, msgUpdateLoc, metrics.CatMovement, updateLoc{
			Configurer:   nd.configurer,
			ConfigurerIP: p.ipOf(nd.configurer),
			Addr:         nd.ip,
		}); sent {
			nd.administrator = head
			nd.hasAdmin = true
			p.rt.Coll.Inc(CounterLocationUpdates)
		}
	}
}

func (p *Protocol) ipOf(id radio.NodeID) addrspace.Addr {
	if nd, ok := p.nodes[id]; ok && nd.hasIP {
		return nd.ip
	}
	if info, ok := p.departed[id]; ok && info.HasIP {
		return info.IP
	}
	return 0
}

func (p *Protocol) onUpdateLoc(nd *node, m netstack.Message, pl updateLoc) {
	if !nd.isHead() {
		return
	}
	nd.administered[m.Src] = adminRecord{Configurer: pl.Configurer, Addr: pl.Addr}
}
