package core

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/radio"
)

// lineOfHeads builds the standard fixture: heads at 0, 3, 6 over a 7-node
// line (100m spacing), all mutually within 3 hops of their neighbors.
func lineOfHeads(t *testing.T, h *harness) {
	t.Helper()
	for i := 0; i < 7; i++ {
		h.arriveAt(time.Duration(i*20)*time.Second, radio.NodeID(i), float64(i)*100, 0)
	}
}

func TestHeadDepartureToSmallestBlockWhenConfigurerDead(t *testing.T) {
	h := newHarness(t, smallSpace())
	lineOfHeads(t, h)
	// Head 6's configurer is head 3. Kill 3 abruptly, then let 6 leave
	// gracefully: its block must go to the QDSet member with the smallest
	// IP block (head 0, after reclamation machinery has run).
	h.departAt(150*time.Second, 3, false)
	h.departAt(220*time.Second, 6, true)
	h.runUntil(260 * time.Second)

	if h.p.Alive(6) {
		t.Fatal("head 6 still alive")
	}
	// Head 0 absorbed 6's block (it was the only remaining head).
	nd0 := h.p.nodes[radio.NodeID(0)]
	if nd0.pools == nil {
		t.Fatal("head 0 lost its pools")
	}
	total := nd0.pools.Size()
	if total <= 32 {
		t.Errorf("head 0 owns %d addresses; block from departing head 6 not returned", total)
	}
	h.assertNoConflicts()
}

func TestVacateBroadcastWhenAllocatorDead(t *testing.T) {
	h := newHarness(t, smallSpace())
	lineOfHeads(t, h)
	h.arriveAt(150*time.Second, 10, 620, 60) // common under head 6
	h.runUntil(170 * time.Second)
	ip10, ok := h.p.IP(10)
	if !ok {
		t.Fatal("node 10 unconfigured")
	}
	// Kill the allocator (head 6); node 10's graceful departure must
	// still get the address freed at a surviving replica holder via the
	// adjacent-heads broadcast.
	h.departAt(180*time.Second, 6, false)
	h.departAt(240*time.Second, 10, true)
	h.runUntil(300 * time.Second)

	freed := false
	for _, id := range h.p.Heads() {
		nd := h.p.nodes[id]
		if e, ok := nd.localEntry(radio.NodeID(6), ip10); ok && e.Status == addrspace.Free {
			freed = true
		}
	}
	if !freed {
		t.Errorf("address %v not freed at any replica holder after allocator death", ip10)
	}
}

func TestUponLeaveDepartureStillFreesAddress(t *testing.T) {
	params := smallSpace()
	params.UponLeaveOnly = true
	h := newHarness(t, params)
	h.arriveAt(0, 0, 500, 500)
	h.arriveAt(20*time.Second, 1, 600, 500)
	h.departAt(50*time.Second, 1, true)
	h.runUntil(80 * time.Second)

	if h.rt.Coll.Hops(metrics.CatMovement) != 0 {
		t.Error("upon-leave scheme charged movement traffic")
	}
	if h.rt.Coll.Hops(metrics.CatDeparture) == 0 {
		t.Error("departure charged nothing")
	}
	// Address reusable.
	h.arriveAt(81*time.Second, 2, 600, 500)
	h.runUntil(110 * time.Second)
	if !h.p.IsConfigured(2) {
		t.Error("fresh arrival not configured from returned address")
	}
	h.assertNoConflicts()
}

func TestDoubleDepartureIsNoop(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.departAt(30*time.Second, 0, true)
	h.departAt(31*time.Second, 0, true)  // second call: node already gone
	h.departAt(32*time.Second, 0, false) // and again, abruptly
	h.runUntil(60 * time.Second)
	if got := h.rt.Coll.Counter(CounterGracefulDepartures); got != 1 {
		t.Errorf("graceful departures = %d, want 1", got)
	}
	if got := h.rt.Coll.Counter(CounterAbruptDepartures); got != 0 {
		t.Errorf("abrupt departures = %d, want 0", got)
	}
}

func TestUnconfiguredNodeDeparture(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.arriveAt(5*time.Second, 1, 600, 500)
	// Node 1 leaves before it could configure (head 0 self-declares at
	// ~7s; node 1's attempt starts at 6s).
	h.departAt(6*time.Second, 1, true)
	h.runUntil(40 * time.Second)
	if h.p.Alive(1) {
		t.Error("node 1 still alive")
	}
	h.assertNoConflicts()
}

func TestReassignAfterHeadReturnKeepsMemberWorking(t *testing.T) {
	h := newHarness(t, smallSpace())
	lineOfHeads(t, h)
	h.arriveAt(150*time.Second, 10, 620, 60) // common under head 6
	h.departAt(200*time.Second, 6, true)     // head 6 returns its block to head 3
	h.runUntil(240 * time.Second)

	nd10 := h.p.nodes[radio.NodeID(10)]
	if nd10 == nil || !nd10.alive {
		t.Fatal("member lost")
	}
	if !nd10.hasConfigurer || nd10.configurer == 6 {
		t.Errorf("member configurer = %v (has=%v), want reassigned away from 6",
			nd10.configurer, nd10.hasConfigurer)
	}
	// The member's own graceful departure must now route to the adopter.
	h.departAt(241*time.Second, 10, true)
	h.runUntil(280 * time.Second)
	if h.p.Alive(10) {
		t.Error("member still alive after departure")
	}
	h.assertNoConflicts()
}

func TestNetTagSemantics(t *testing.T) {
	a := NetTag{Addr: 1, Nonce: 5}
	b := NetTag{Addr: 1, Nonce: 9}
	c := NetTag{Addr: 2, Nonce: 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("nonce ordering wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("address ordering wrong")
	}
	if a.Less(a) {
		t.Error("tag less than itself")
	}
	var zero NetTag
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if a.String() == "" || a.String() == b.String() {
		t.Errorf("String collision: %q vs %q", a.String(), b.String())
	}
}

func TestDepartureCountersAndNecrology(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.arriveAt(20*time.Second, 1, 600, 500)
	h.departAt(50*time.Second, 1, false)
	h.runUntil(80 * time.Second)
	if got := h.rt.Coll.Counter(CounterAbruptDepartures); got != 1 {
		t.Errorf("abrupt counter = %d, want 1", got)
	}
	info, ok := h.p.departed[radio.NodeID(1)]
	if !ok {
		t.Fatal("no necrology entry")
	}
	if !info.HasIP || info.Role != RoleCommon {
		t.Errorf("necrology = %+v", info)
	}
}
