package core

import (
	"reflect"
	"testing"

	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/wire"
)

// messageShapes pins the wire contract message by message: the type name,
// the payload struct (through the core alias, proving the alias still
// resolves to the exported definition), and the exact field set. The table
// is grouped by protocol category and its order matches msg.Types(), which
// is what the wire codec derives its type codes from — reordering or
// reshaping anything here is a wire-format break and must fail loudly.
var messageShapes = []struct {
	category string
	name     string
	zero     any
	fields   []string
}{
	// Network discovery (§IV-A).
	{"discovery", msgFirstBcast, firstBcast{}, []string{"Tries"}},
	{"discovery", msgFirstResp, firstResp{}, []string{"IP", "NetworkID", "IsHead"}},
	// Common-node configuration (§IV-B).
	{"configuration", msgComReq, comReq{}, []string{"PathHops"}},
	{"configuration", msgComCfg, comCfg{}, []string{"Addr", "NetworkID", "Configurer", "PathHops"}},
	{"configuration", msgComAck, comAck{}, []string{"Addr", "PathHops"}},
	{"configuration", msgNack, cfgNack{}, []string{"PathHops"}},
	// Cluster-head configuration and block splitting (§IV-B).
	{"cluster-head", msgChReq, chReq{}, []string{"PathHops"}},
	{"cluster-head", msgChPrp, chPrp{}, []string{"Block", "PathHops"}},
	{"cluster-head", msgChCnf, chCnf{}, []string{"Block", "PathHops"}},
	{"cluster-head", msgChCfg, chCfg{}, []string{"Table", "NetworkID", "Configurer", "PathHops"}},
	{"cluster-head", msgChAck, chAck{}, []string{"PathHops"}},
	// Quorum ballots (§IV-C).
	{"quorum", msgQuorumClt, quorumClt{}, []string{"BallotID", "Owner", "Addr", "Split", "Allocator"}},
	{"quorum", msgQuorumCfm, quorumCfm{}, []string{"BallotID", "Entry", "HasReplica", "Busy"}},
	{"quorum", msgQuorumUpd, quorumUpd{}, []string{"Owner", "Addr", "Entry"}},
	{"quorum", msgSplitUpd, splitUpd{}, []string{"Owner", "NewPool", "NewHead"}},
	// Replica distribution (§IV-C).
	{"replication", msgReplicaDist, replicaDist{}, []string{"Info"}},
	{"replication", msgReplicaAck, replicaAck{}, []string{"Info"}},
	// Agent relay (§IV-B).
	{"agent", msgAgentFwd, agentFwd{}, []string{"Requestor", "PathHops"}},
	{"agent", msgAgentCfg, agentCfg{}, []string{"Requestor", "Grant"}},
	// Movement (§IV-D).
	{"movement", msgUpdateLoc, updateLoc{}, []string{"Configurer", "ConfigurerIP", "Addr"}},
	// Graceful departure (§IV-D).
	{"departure", msgReturnAddr, returnAddr{}, []string{"Configurer", "ConfigurerIP", "Addr"}},
	{"departure", msgDepartAck, departAck{}, nil},
	{"departure", msgReturnFwd, returnFwd{}, []string{"Owner", "Addr"}},
	{"departure", msgVacate, vacate{}, []string{"Owner", "Addr", "TTL"}},
	{"departure", msgChReturn, chReturn{}, []string{"Pool", "Members"}},
	{"departure", msgChReturnAck, chReturnAck{}, nil},
	{"departure", msgChResign, chResign{}, nil},
	{"departure", msgReassign, reassign{}, []string{"NewAllocator", "NewAllocatorIP"}},
	{"departure", msgPoolUpd, poolUpd{}, []string{"Owner", "Pool"}},
	// Existence synchronization (§IV-D).
	{"sync", msgRepReq, repReq{}, nil},
	{"sync", msgRepRsp, repRsp{}, nil},
	// Address reclamation (§IV-D).
	{"reclamation", msgAddrRec, addrRec{}, []string{"Target", "TargetIP"}},
	{"reclamation", msgRecRep, recRep{}, []string{"Target", "Addr"}},
	{"reclamation", msgRecFwd, recFwd{}, []string{"Target", "Addr", "TTL"}},
	// Partition handling (§V).
	{"partition", msgReconfig, reconfig{}, nil},
}

// TestMessageTableIsComplete: one shape per wire type, in wire-code order.
func TestMessageTableIsComplete(t *testing.T) {
	types := msg.Types()
	if len(messageShapes) != len(types) {
		t.Fatalf("shape table has %d entries, wire vocabulary has %d", len(messageShapes), len(types))
	}
	seen := make(map[string]bool)
	for i, s := range messageShapes {
		if s.name != types[i] {
			t.Errorf("shape %d is %q, wire order says %q — type-code order broken", i, s.name, types[i])
		}
		if seen[s.name] {
			t.Errorf("duplicate shape for %q", s.name)
		}
		seen[s.name] = true
		code, ok := wire.TypeCode(s.name)
		if !ok {
			t.Errorf("%s has no wire type code", s.name)
		} else if int(code) != i+1 {
			t.Errorf("%s has wire code %d, want %d", s.name, code, i+1)
		}
	}
}

// TestMessageShapes pins the exact field set of every payload struct.
func TestMessageShapes(t *testing.T) {
	for _, s := range messageShapes {
		rt := reflect.TypeOf(s.zero)
		if rt.Kind() != reflect.Struct {
			t.Errorf("%s payload is %v, want a struct", s.name, rt.Kind())
			continue
		}
		var got []string
		for i := 0; i < rt.NumField(); i++ {
			got = append(got, rt.Field(i).Name)
		}
		if !reflect.DeepEqual(got, s.fields) {
			t.Errorf("%s (%s) fields = %v, want %v", s.name, s.category, got, s.fields)
		}
	}
}

// TestMessageZeroValuesRoundTrip: the zero value of every payload must
// survive the wire codec unchanged — zero-value semantics (nil tables,
// nil pools, empty member lists) are part of the contract.
func TestMessageZeroValuesRoundTrip(t *testing.T) {
	for i, s := range messageShapes {
		env := &wire.Envelope{
			MsgID:    uint64(i + 1),
			Type:     s.name,
			Src:      1,
			Dst:      2,
			Category: metrics.CatConfig,
			Hops:     1,
			Payload:  s.zero,
		}
		raw, err := wire.Encode(env)
		if err != nil {
			t.Errorf("%s: encode zero value: %v", s.name, err)
			continue
		}
		dec, err := wire.Decode(raw)
		if err != nil {
			t.Errorf("%s: decode zero value: %v", s.name, err)
			continue
		}
		if !reflect.DeepEqual(dec.Payload, s.zero) {
			t.Errorf("%s: zero value round-trip = %#v, want %#v", s.name, dec.Payload, s.zero)
		}
	}
}

// TestMessageEqualitySemantics pins which payloads support == (the protocol
// compares and dedups them by value) and which cannot because they carry
// reference state (tables, pools, member lists).
func TestMessageEqualitySemantics(t *testing.T) {
	// Pointer fields (tables, pools) still leave a struct comparable — ==
	// is pointer identity there, which is why the protocol compares those
	// by content instead. Only slice-bearing payloads lose == entirely.
	wantUncomparable := map[string]bool{
		msgReplicaDist: true, // HolderInfo carries []NodeID
		msgReplicaAck:  true,
		msgChReturn:    true, // []MemberRecord
	}
	for _, s := range messageShapes {
		comparable := reflect.TypeOf(s.zero).Comparable()
		if want := !wantUncomparable[s.name]; comparable != want {
			t.Errorf("%s comparable = %v, want %v", s.name, comparable, want)
		}
	}
	// memberRecord rides inside CH_RETURN and must stay comparable so
	// member sets can be deduplicated by value.
	if !reflect.TypeOf(memberRecord{}).Comparable() {
		t.Error("MemberRecord must be comparable")
	}
	if !reflect.TypeOf(holderInfo{}.Owner).Comparable() {
		t.Error("HolderInfo.Owner must be comparable")
	}
}
