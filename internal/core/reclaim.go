package core

import (
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/cluster"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// Counter names for reclamation.
const (
	// CounterReclamations counts reclamation processes initiated.
	CounterReclamations = "reclamations"
	// CounterAddrReclaimed counts leaked addresses recovered.
	CounterAddrReclaimed = "addresses_reclaimed"
)

// initiateReclamation starts the §IV-D process for target's address space:
// an ADDR_REC broadcast asks the target's surviving members to report
// their existence to their closest head; after ReclaimSettle every replica
// holder frees the addresses nobody claimed.
func (p *Protocol) initiateReclamation(initiator *node, target radio.NodeID, targetIP addrspace.Addr) {
	if !initiator.isHead() {
		return
	}
	if p.byzSuppressReclaim(initiator, target) {
		return
	}
	if _, running := initiator.reclaims[target]; running {
		return
	}
	if target != initiator.id {
		if last, done := initiator.recentReclaims[target]; done && p.rt.Sim.Now()-last < p.p.ReclaimCooldown {
			return // somebody already reclaimed this target recently
		}
	}
	p.rt.Coll.Inc(CounterReclamations)
	span := p.mintSpan(initiator.id)
	p.rt.Trace(obs.Event{Kind: obs.EvReclaimStart, Node: initiator.id, Peer: target, Addr: targetIP, Span: span})
	p.rt.Net.Flood(initiator.id, netstack.Message{
		Type:     msgAddrRec,
		Category: metrics.CatReclamation,
		Span:     span,
		Payload:  addrRec{Target: target, TargetIP: targetIP},
	})
	// The initiator processes the broadcast locally too.
	p.beginReclaimWindow(initiator, target, span)
}

// beginReclaimWindow opens the report-collection window at one replica
// holder of the target's space.
func (p *Protocol) beginReclaimWindow(nd *node, target radio.NodeID, span uint64) {
	if !nd.isHead() {
		return
	}
	if _, ok := nd.reclaims[target]; ok {
		return
	}
	var pool *addrspace.Pool
	if target == nd.id {
		pool = nd.pools
	} else {
		pool = nd.replicas[target]
	}
	if pool == nil {
		return // not a holder: nothing to settle
	}
	rs := &reclaimState{refreshed: make(map[addrspace.Addr]bool), span: span}
	rs.timer = p.rt.Sim.Schedule(p.p.ReclaimSettle, func() { p.settleReclaim(nd, target) })
	nd.reclaims[target] = rs
}

func (p *Protocol) onAddrRec(nd *node, span uint64, pl addrRec) {
	if !nd.alive {
		return
	}
	if p.byzSabotageReclaim(nd, pl) {
		return
	}
	if nd.isHead() {
		p.beginReclaimWindow(nd, pl.Target, span)
		return
	}
	// Common node configured by the target: report existence to the
	// closest head (§IV-D).
	if !nd.isCommon() || nd.configurer != pl.Target {
		return
	}
	snap := p.snapshot()
	head, _, ok := cluster.Nearest(snap, nd.id, p.isHeadFn)
	if !ok {
		return
	}
	_, _ = p.sendSpan(nd.id, head, msgRecRep, metrics.CatReclamation, span, recRep{
		Target: pl.Target,
		Addr:   nd.ip,
	})
}

func (p *Protocol) onRecRep(nd *node, span uint64, pl recRep) {
	p.applyRecReport(nd, span, pl.Target, pl.Addr, 1)
}

func (p *Protocol) onRecFwd(nd *node, span uint64, pl recFwd) {
	p.applyRecReport(nd, span, pl.Target, pl.Addr, pl.TTL)
}

// applyRecReport refreshes the reporter's address at a replica holder; a
// head without the replica forwards to its adjacent heads until the
// information lands (§IV-D), bounded by ttl rounds.
func (p *Protocol) applyRecReport(nd *node, span uint64, target radio.NodeID, addr addrspace.Addr, ttl int) {
	if !nd.isHead() {
		return
	}
	if cur, ok := nd.localEntry(target, addr); ok {
		refreshed := addrspace.Entry{Status: addrspace.Occupied, Version: cur.Version + 1}
		nd.applyEntry(target, addr, refreshed)
		if rs, open := nd.reclaims[target]; open {
			rs.refreshed[addr] = true
			p.rt.Trace(obs.Event{Kind: obs.EvReclaimDefend, Node: nd.id, Peer: target, Addr: addr, Span: rs.span})
		}
		return
	}
	if ttl <= 0 {
		return
	}
	for _, h := range sortedIDs(nd.qdset) {
		_, _ = p.sendSpan(nd.id, h, msgRecFwd, metrics.CatReclamation, span, recFwd{
			Target: target,
			Addr:   addr,
			TTL:    ttl - 1,
		})
	}
}

// settleReclaim frees every address of the target's space that no
// surviving member claimed during the window. The target's own IP is
// always freed (it departed). The space stays replicated at the holders,
// usable through QuorumSpace borrowing.
func (p *Protocol) settleReclaim(nd *node, target radio.NodeID) {
	rs, ok := nd.reclaims[target]
	if !ok || !nd.alive {
		return
	}
	delete(nd.reclaims, target)
	if nd.recentReclaims == nil {
		nd.recentReclaims = make(map[radio.NodeID]time.Duration)
	}
	nd.recentReclaims[target] = p.rt.Sim.Now()
	if target != nd.id && p.Alive(target) {
		return // target resurfaced (mobility): do not free behind its back
	}
	var pool *addrspace.Pool
	if target == nd.id {
		pool = nd.pools
	} else {
		pool = nd.replicas[target]
	}
	if pool == nil {
		return
	}
	for _, addr := range pool.Occupied() {
		if rs.refreshed[addr] {
			continue
		}
		if target == nd.id && addr == nd.ip {
			continue // own address of a live self-reclaiming head
		}
		if holder, owned := p.ipOwner[addr]; owned && p.Alive(holder) {
			// The routing map knows a live owner (e.g. the member is
			// reachable in another partition): leave it alone.
			continue
		}
		cur, _ := pool.Get(addr)
		_ = pool.Set(addr, addrspace.Entry{Status: addrspace.Free, Version: cur.Version + 1})
		delete(p.ipOwner, addr)
		p.rt.Coll.Inc(CounterAddrReclaimed)
		p.rt.Trace(obs.Event{Kind: obs.EvReclaimFree, Node: nd.id, Peer: target, Addr: addr, Span: rs.span})
	}
}

// maybeSelfReclaim triggers reclamation of this head's own space when it
// has run out of addresses everywhere (§IV-D: "or running out of IP
// addresses in both IPSpace and QuorumSpace").
func (p *Protocol) maybeSelfReclaim(nd *node) {
	if !nd.isHead() {
		return
	}
	if _, running := nd.reclaims[nd.id]; running {
		return
	}
	p.initiateReclamation(nd, nd.id, nd.ip)
}
