package core

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/mobility"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// harness drives one protocol instance over a static or scripted topology.
type harness struct {
	t  *testing.T
	rt *protocol.Runtime
	p  *Protocol
}

func newHarness(t *testing.T, params Params) *harness {
	t.Helper()
	return newHarnessRange(t, params, 150)
}

func newHarnessRange(t *testing.T, params Params, rng float64) *harness {
	t.Helper()
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: rng})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, params)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, rt: rt, p: p}
}

// arriveAt places a static node and announces it at the given virtual time.
func (h *harness) arriveAt(at time.Duration, id radio.NodeID, x, y float64) {
	h.t.Helper()
	h.rt.Sim.ScheduleAt(at, func() {
		if err := h.rt.Topo.Add(id, mobility.Static(mobility.Point{X: x, Y: y})); err != nil {
			h.t.Errorf("add node %d: %v", id, err)
			return
		}
		h.rt.Net.InvalidateSnapshot()
		h.p.NodeArrived(id)
	})
}

// arriveModel is arriveAt with an arbitrary mobility model.
func (h *harness) arriveModel(at time.Duration, id radio.NodeID, m mobility.Model) {
	h.t.Helper()
	h.rt.Sim.ScheduleAt(at, func() {
		if err := h.rt.Topo.Add(id, m); err != nil {
			h.t.Errorf("add node %d: %v", id, err)
			return
		}
		h.rt.Net.InvalidateSnapshot()
		h.p.NodeArrived(id)
	})
}

func (h *harness) departAt(at time.Duration, id radio.NodeID, graceful bool) {
	h.rt.Sim.ScheduleAt(at, func() { h.p.NodeDeparting(id, graceful) })
}

// runUntil advances virtual time, stopping the maintenance ticker at the
// horizon so Run-style drains terminate.
func (h *harness) runUntil(horizon time.Duration) {
	h.t.Helper()
	if err := h.rt.Sim.RunUntil(horizon); err != nil {
		h.t.Fatalf("RunUntil: %v", err)
	}
}

func (h *harness) assertNoConflicts() {
	h.t.Helper()
	if c := h.p.AddressConflicts(); len(c) != 0 {
		h.t.Fatalf("address conflicts: %v", c)
	}
}

func smallSpace() Params {
	return Params{Space: addrspace.Block{Lo: 1, Hi: 64}}
}

func TestFirstNodeBecomesHead(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.runUntil(30 * time.Second)

	if got := h.p.Role(0); got != RoleHead {
		t.Fatalf("Role(0) = %v, want head", got)
	}
	ip, ok := h.p.IP(0)
	if !ok || ip != 1 {
		t.Fatalf("IP(0) = %v,%v, want 1 (first address of space)", ip, ok)
	}
	if nid, _ := h.p.NetworkID(0); nid != ip {
		t.Errorf("NetworkID = %v, want own IP %v", nid, ip)
	}
	if got := h.p.OwnSpaceSize(0); got != 64 {
		t.Errorf("OwnSpaceSize = %d, want 64 (whole space)", got)
	}
	// Max_r broadcasts happened before self-declaring.
	if n := h.rt.Coll.Counter(CounterConfiguredHeads); n != 1 {
		t.Errorf("configured heads = %d, want 1", n)
	}
	lat := h.rt.Coll.Summarize(SampleConfigLatency)
	if lat.Count != 1 || lat.Mean != float64(h.p.Params().MaxRetries) {
		t.Errorf("first-node latency = %+v, want %d broadcast hops", lat, h.p.Params().MaxRetries)
	}
}

func TestSecondNodeJoinsAsCommon(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.arriveAt(20*time.Second, 1, 600, 500) // 1 hop from the head
	h.runUntil(40 * time.Second)

	if got := h.p.Role(1); got != RoleCommon {
		t.Fatalf("Role(1) = %v, want common", got)
	}
	ip1, ok := h.p.IP(1)
	if !ok {
		t.Fatal("node 1 unconfigured")
	}
	ip0, _ := h.p.IP(0)
	if ip1 == ip0 {
		t.Fatal("duplicate address")
	}
	if nid1, _ := h.p.NetworkID(1); nid1 != ip0 {
		t.Errorf("NetworkID(1) = %v, want %v", nid1, ip0)
	}
	h.assertNoConflicts()
	if got := h.p.MembersOf(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("MembersOf(0) = %v, want [1]", got)
	}
}

func TestDistantNodeBecomesHeadViaBlockSplit(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	// 3 hops away (100m spacing line, range 150): relay nodes first.
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.runUntil(100 * time.Second)

	if got := h.p.Role(3); got != RoleHead {
		t.Fatalf("Role(3) = %v, want head (no head within 2 hops)", got)
	}
	// The new head received half the allocator's space.
	if own := h.p.OwnSpaceSize(3); own == 0 || own >= 64 {
		t.Errorf("OwnSpaceSize(3) = %d, want a split block", own)
	}
	if own0 := h.p.OwnSpaceSize(0); own0+h.p.OwnSpaceSize(3) != 64 {
		t.Errorf("blocks do not partition the space: %d + %d != 64", own0, h.p.OwnSpaceSize(3))
	}
	// Heads are mutually replicated (QDSet distance is 3 hops).
	if qd := h.p.QDSetSize(3); qd != 1 {
		t.Errorf("QDSetSize(3) = %d, want 1", qd)
	}
	if qd := h.p.QDSetSize(0); qd != 1 {
		t.Errorf("QDSetSize(0) = %d, want 1", qd)
	}
	if eff := h.p.EffectiveSpaceSize(0); eff != 64 {
		t.Errorf("EffectiveSpaceSize(0) = %d, want 64 (own + replica)", eff)
	}
	h.assertNoConflicts()
}

func TestSequentialArrivalAllConfigured(t *testing.T) {
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 1024}})
	// A 4x5 grid, 120m spacing: connected, multi-hop.
	id := radio.NodeID(0)
	at := time.Duration(0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			h.arriveAt(at, id, float64(c)*120, float64(r)*120)
			id++
			at += 8 * time.Second
		}
	}
	h.runUntil(at + 60*time.Second)

	for n := radio.NodeID(0); n < id; n++ {
		if !h.p.IsConfigured(n) {
			t.Errorf("node %d unconfigured (role %v)", n, h.p.Role(n))
		}
	}
	h.assertNoConflicts()
	if heads := h.p.Heads(); len(heads) == 0 {
		t.Error("no heads formed")
	}
	if got := int(h.rt.Coll.Counter(CounterConfigured)); got != int(id) {
		t.Errorf("configured counter = %d, want %d", got, id)
	}
	if lat := h.rt.Coll.Summarize(SampleConfigLatency); lat.Count != int(id) {
		t.Errorf("latency samples = %d, want %d", lat.Count, id)
	}
}

func TestConfigLatencyBounded(t *testing.T) {
	// The paper's headline: configuration is local (<10 hops) because all
	// exchanges are bounded by the 2-hop join and 3-hop QDSet radii.
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 1024}})
	id := radio.NodeID(0)
	at := time.Duration(0)
	for r := 0; r < 3; r++ {
		for c := 0; c < 7; c++ {
			h.arriveAt(at, id, float64(c)*130, float64(r)*130)
			id++
			at += 8 * time.Second
		}
	}
	h.runUntil(at + 60*time.Second)
	lat := h.rt.Coll.Summarize(SampleConfigLatency)
	if lat.Count == 0 {
		t.Fatal("no latency samples")
	}
	if lat.Mean >= 12 {
		t.Errorf("mean config latency = %.1f hops, want local (<12)", lat.Mean)
	}
}

func TestReplicasConsistentAfterConfiguration(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.arriveAt(80*time.Second, 4, 120, 40) // common node under head 0
	h.runUntil(120 * time.Second)

	h.assertNoConflicts()
	// Head 3 holds a replica of head 0's space; node 4's address must be
	// occupied there with the same version as at head 0.
	nd0, nd3 := h.p.nodes[radio.NodeID(0)], h.p.nodes[radio.NodeID(3)]
	ip4, ok := h.p.IP(4)
	if !ok {
		t.Fatal("node 4 unconfigured")
	}
	local, ok := nd0.localEntry(0, ip4)
	if !ok || local.Status != addrspace.Occupied {
		t.Fatalf("allocator entry for %v = %+v,%v", ip4, local, ok)
	}
	replica, ok := nd3.localEntry(0, ip4)
	if !ok {
		t.Fatal("head 3 has no replica entry for node 4's address")
	}
	if replica != local {
		t.Errorf("replica %+v != primary %+v", replica, local)
	}
}

func TestGracefulDepartureFreesAddress(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.arriveAt(20*time.Second, 1, 600, 500)
	var ip1 addrspace.Addr
	h.rt.Sim.ScheduleAt(40*time.Second, func() { ip1, _ = h.p.IP(1) })
	h.departAt(41*time.Second, 1, true)
	h.runUntil(60 * time.Second)

	if h.p.Alive(1) {
		t.Fatal("node 1 still alive after graceful departure")
	}
	nd0 := h.p.nodes[radio.NodeID(0)]
	e, ok := nd0.localEntry(0, ip1)
	if !ok || e.Status != addrspace.Free {
		t.Fatalf("returned address %v entry = %+v,%v, want free", ip1, e, ok)
	}
	if h.rt.Coll.Counter(CounterAddrReturned) == 0 {
		t.Error("no address-returned event recorded")
	}
	if h.rt.Coll.Hops(metrics.CatDeparture) == 0 {
		t.Error("departure exchange charged no hops")
	}
	// The freed address is reusable by the next arrival.
	h.arriveAt(61*time.Second, 2, 600, 500)
	h.runUntil(90 * time.Second)
	if ip2, ok := h.p.IP(2); !ok || ip2 != ip1 {
		t.Errorf("IP(2) = %v,%v, want reuse of freed %v", ip2, ok, ip1)
	}
}

func TestGracefulHeadDepartureReturnsBlock(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)  // head via split
	h.arriveAt(80*time.Second, 4, 320, 60) // common under head 3
	h.departAt(120*time.Second, 3, true)
	h.runUntil(160 * time.Second)

	if h.p.Alive(3) {
		t.Fatal("head 3 still alive")
	}
	// Its block went back to its configurer, head 0.
	if own := h.p.OwnSpaceSize(0); own != 64 {
		t.Errorf("OwnSpaceSize(0) = %d, want 64 (block returned and merged)", own)
	}
	// Node 4 was told its new allocator.
	nd4 := h.p.nodes[radio.NodeID(4)]
	if !nd4.hasConfigurer || nd4.configurer != 0 {
		t.Errorf("node 4 configurer = %v (has=%v), want 0", nd4.configurer, nd4.hasConfigurer)
	}
	if got := h.p.MembersOf(0); len(got) == 0 {
		t.Error("head 0 adopted no members")
	}
	h.assertNoConflicts()
}

func TestAbruptHeadDepartureTriggersReclamation(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)  // head (QDSet partner of 0)
	h.arriveAt(80*time.Second, 4, 320, 60) // common under 3
	h.departAt(120*time.Second, 3, false)  // crash
	h.runUntil(200 * time.Second)

	if h.rt.Coll.Counter(CounterReclamations) == 0 {
		t.Fatal("no reclamation initiated after head crash")
	}
	if h.rt.Coll.Hops(metrics.CatReclamation) == 0 {
		t.Error("reclamation charged no traffic")
	}
	// Head 0 still holds the replica of 3's space; 3's own IP must have
	// been freed, while surviving member 4's address stays occupied.
	nd0 := h.p.nodes[radio.NodeID(0)]
	rep := nd0.replicas[radio.NodeID(3)]
	if rep == nil {
		t.Fatal("head 0 lost replica of dead head 3")
	}
	info := h.p.departed[radio.NodeID(3)]
	if !info.HasIP {
		t.Fatal("necrology lost head 3's IP")
	}
	if e, ok := rep.Get(info.IP); !ok || e.Status != addrspace.Free {
		t.Errorf("dead head's own IP entry = %+v,%v, want free", e, ok)
	}
	ip4, ok := h.p.IP(4)
	if !ok {
		t.Fatal("survivor 4 lost its address")
	}
	if e, ok := rep.Get(ip4); !ok || e.Status != addrspace.Occupied {
		t.Errorf("survivor's address entry = %+v,%v, want occupied", e, ok)
	}
	h.assertNoConflicts()
}

func TestBorrowingFromQuorumSpace(t *testing.T) {
	// Head 3's own block is tiny; joining many nodes around it forces
	// borrowing from the replica of head 0's space (§V-A).
	h := newHarness(t, Params{Space: addrspace.Block{Lo: 1, Hi: 8}})
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0) // head with 4 of 8 addresses
	// Fill head 3's block (4 addrs, one its own IP -> 3 free).
	at := 80 * time.Second
	for i := radio.NodeID(4); i < 9; i++ {
		h.arriveAt(at, i, 320, 60)
		at += 15 * time.Second
	}
	h.runUntil(at + 60*time.Second)

	configured := 0
	for i := radio.NodeID(4); i < 9; i++ {
		if h.p.IsConfigured(i) {
			configured++
		}
	}
	if configured < 4 {
		t.Errorf("only %d of 5 joiners configured; borrowing failed", configured)
	}
	if h.rt.Coll.Counter(CounterBorrowed) == 0 {
		t.Error("no borrowed allocations recorded")
	}
	h.assertNoConflicts()
}

func TestBorrowingDisabledAblation(t *testing.T) {
	p := Params{Space: addrspace.Block{Lo: 1, Hi: 8}, DisableBorrowing: true}
	h := newHarness(t, p)
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	at := 80 * time.Second
	for i := radio.NodeID(4); i < 9; i++ {
		h.arriveAt(at, i, 320, 60)
		at += 15 * time.Second
	}
	h.runUntil(at + 60*time.Second)
	if h.rt.Coll.Counter(CounterBorrowed) != 0 {
		t.Error("borrowing happened despite DisableBorrowing")
	}
	h.assertNoConflicts()
}

func TestQuorumShrinkAfterMemberCrash(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.departAt(120*time.Second, 3, false)
	h.runUntil(200 * time.Second)

	if h.rt.Coll.Counter(CounterQuorumShrinks) == 0 {
		t.Error("no quorum shrink after QDSet member crash")
	}
	if h.p.QDSetSize(0) != 0 {
		t.Errorf("QDSetSize(0) = %d, want 0 after shrink", h.p.QDSetSize(0))
	}
	// Configuration still works with the shrunken (self-only) quorum.
	h.arriveAt(201*time.Second, 5, 60, 60)
	h.runUntil(240 * time.Second)
	if !h.p.IsConfigured(5) {
		t.Error("configuration broken after quorum shrink")
	}
	h.assertNoConflicts()
}

func TestLocationUpdateOnMovement(t *testing.T) {
	h := newHarness(t, smallSpace())
	// Static backbone line of heads.
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	h.arriveAt(80*time.Second, 4, 400, 0)
	h.arriveAt(100*time.Second, 5, 500, 0)
	h.arriveAt(120*time.Second, 6, 600, 0) // head at 6 hops from head 0
	// Node 7 joins next to head 0, then wanders to the far end.
	path, err := mobility.NewPath(
		[]time.Duration{150 * time.Second, 400 * time.Second},
		[]mobility.Point{{X: 60, Y: 0}, {X: 620, Y: 40}},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.arriveModel(140*time.Second, 7, path)
	h.runUntil(450 * time.Second)

	if h.rt.Coll.Counter(CounterLocationUpdates) == 0 {
		t.Error("no UPDATE_LOC sent despite >3 hop drift")
	}
	if h.rt.Coll.Hops(metrics.CatMovement) == 0 {
		t.Error("movement traffic not charged")
	}
	nd7 := h.p.nodes[radio.NodeID(7)]
	if nd7 == nil || !nd7.hasAdmin {
		t.Fatal("moved node has no administrator")
	}
	h.assertNoConflicts()
}

func TestUponLeaveSchemeNoMovementTraffic(t *testing.T) {
	params := smallSpace()
	params.UponLeaveOnly = true
	h := newHarness(t, params)
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	path, err := mobility.NewPath(
		[]time.Duration{40 * time.Second, 200 * time.Second},
		[]mobility.Point{{X: 60, Y: 0}, {X: 120, Y: 60}},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.arriveModel(30*time.Second, 2, path)
	h.runUntil(250 * time.Second)
	if got := h.rt.Coll.Hops(metrics.CatMovement); got != 0 {
		t.Errorf("upon-leave scheme charged %d movement hops, want 0", got)
	}
}

func TestHelloTrafficCharged(t *testing.T) {
	h := newHarness(t, smallSpace())
	h.arriveAt(0, 0, 500, 500)
	h.runUntil(30 * time.Second)
	if h.rt.Coll.Hops(metrics.CatHello) == 0 {
		t.Error("hello beacons not charged")
	}
	// And excluded from the default overhead total.
	if h.rt.Coll.TotalHops() >= h.rt.Coll.Hops(metrics.CatHello)+h.rt.Coll.Hops(metrics.CatConfig) {
		t.Error("TotalHops appears to include hello")
	}
}

func TestLargestBlockAllocatorChoice(t *testing.T) {
	params := smallSpace()
	params.LargestBlockAllocator = true
	h := newHarness(t, params)
	h.arriveAt(0, 0, 0, 0)
	h.arriveAt(20*time.Second, 1, 100, 0)
	h.arriveAt(40*time.Second, 2, 200, 0)
	h.arriveAt(60*time.Second, 3, 300, 0)
	// Node within 2 hops of both heads 0 and 3: must pick the one with
	// the larger free block (head 0 kept the bigger half: 32 vs 32...
	// equal split; configuring extra nodes first skews it).
	h.arriveAt(80*time.Second, 4, 60, 60)
	h.arriveAt(100*time.Second, 5, 150, 80) // reaches both heads in <=2 hops
	h.runUntil(140 * time.Second)
	if !h.p.IsConfigured(5) {
		t.Fatal("node 5 unconfigured")
	}
	h.assertNoConflicts()
}

func TestNewValidation(t *testing.T) {
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, Params{}); err == nil {
		t.Error("nil runtime accepted")
	}
	if _, err := New(rt, Params{Space: addrspace.Block{Lo: 5, Hi: 5}}); err == nil {
		t.Error("single-address space accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: 1, TransmissionRange: 100})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(rt, Params{})
	if err != nil {
		t.Fatal(err)
	}
	prm := p.Params()
	if prm.HelloInterval == 0 || prm.Te == 0 || prm.MaxRetries == 0 ||
		prm.Td == 0 || prm.Tr == 0 || prm.MinReplicas == 0 || prm.Space.IsEmpty() {
		t.Errorf("defaults missing: %+v", prm)
	}
	if p.Name() != "quorum" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestRoleString(t *testing.T) {
	if RoleUnconfigured.String() != "unconfigured" || RoleCommon.String() != "common" || RoleHead.String() != "head" {
		t.Error("role names wrong")
	}
	if Role(9).String() == "" {
		t.Error("unknown role renders empty")
	}
}

func TestIntrospectionOnUnknownNodes(t *testing.T) {
	h := newHarness(t, smallSpace())
	if h.p.Role(99) != RoleUnconfigured {
		t.Error("unknown node has a role")
	}
	if _, ok := h.p.IP(99); ok {
		t.Error("unknown node has an IP")
	}
	if h.p.QDSetSize(99) != 0 || h.p.OwnSpaceSize(99) != 0 || h.p.EffectiveSpaceSize(99) != 0 {
		t.Error("unknown node has head stats")
	}
	if h.p.HoldersOf(99) != nil {
		t.Error("unknown node has holders")
	}
	if h.p.MembersOf(99) != nil {
		t.Error("unknown node has members")
	}
}
