package core

// Byzantine fault injection: a configured subset of nodes runs the protocol
// dishonestly, attacking exactly the invariant the quorum scheme exists to
// protect — no duplicate addresses. The behaviors follow the adversarial
// model of Slimane et al. (see PAPERS.md): false vote replies, deliberate
// duplicate-address claims, and forged reclamation reports. Sybil joiners
// and silent droppers are protocol-agnostic and injected by the workload
// layer (workload.Byzantine) so the baselines face them too.
//
// Injection points are deliberately thin guards at the top of the honest
// handlers (onQuorumClt, allocate, onAddrRec): a malicious node is an
// ordinary node whose replies lie, not a separate code path, so the honest
// majority's defenses are exercised exactly as deployed.

import (
	"quorumconf/internal/addrspace"
	"quorumconf/internal/metrics"
	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// ByzantineBehavior is a bitmask of dishonest behaviors a malicious node
// runs.
type ByzantineBehavior uint8

// Byzantine behaviors.
const (
	// ByzVoteLiar answers quorum polls with forged "free" votes carrying
	// fabricated freshness, and answers ADDR_REC reclamation broadcasts
	// with forged existence reports for every address it knows, so leaked
	// addresses are never recovered.
	ByzVoteLiar ByzantineBehavior = 1 << iota
	// ByzDupClaimer, as an allocating head, hands out addresses without
	// running a ballot and without marking them occupied — the same
	// address is granted to every requestor that asks.
	ByzDupClaimer
)

// ByzantineParams selects the malicious nodes and what they do.
type ByzantineParams struct {
	// Nodes are the malicious node IDs. A listed node misbehaves from the
	// moment it arrives.
	Nodes []radio.NodeID
	// Behaviors is the behavior set every listed node runs.
	Behaviors ByzantineBehavior
}

// CounterByzantineActs counts individual dishonest actions taken (forged
// votes, unballoted grants, forged reclamation floods).
const CounterByzantineActs = "byzantine_acts"

// byzHas reports whether id is configured malicious with behavior b.
func (p *Protocol) byzHas(id radio.NodeID, b ByzantineBehavior) bool {
	return p.byz[id]&b != 0
}

// byzVoteLie intercepts a quorum poll at a vote-liar: reply that the
// address is free with a version fresher than the local entry, so the
// forged vote wins the freshest-timestamp decision against honest
// "occupied" votes. Returns true when the poll was answered dishonestly.
func (p *Protocol) byzVoteLie(nd *node, src radio.NodeID, cat metrics.Category, pl quorumClt) bool {
	if !p.byzHas(nd.id, ByzVoteLiar) || !nd.isHead() || pl.Split {
		return false
	}
	cur, ok := nd.localEntry(pl.Owner, pl.Addr)
	if !ok {
		return false // nothing to lie about: an honest "no replica" follows
	}
	p.rt.Coll.Inc(CounterByzantineActs)
	p.rt.Trace(obs.Event{Kind: obs.EvByzantineVoteLie, Node: nd.id, Peer: src, Addr: pl.Addr, MsgID: pl.BallotID})
	_, _ = p.send(nd.id, src, msgQuorumCfm, cat, quorumCfm{
		BallotID:   pl.BallotID,
		Entry:      addrspace.Entry{Status: addrspace.Free, Version: cur.Version + 1},
		HasReplica: true,
	})
	return true
}

// byzDupClaim intercepts an address request at a duplicate-claimer head:
// grant the pool's first free address with no ballot and no occupancy mark,
// so every request is answered with the same address. Returns true when the
// request was served dishonestly.
func (p *Protocol) byzDupClaim(alloc *node, requestor radio.NodeID, pathHops int) bool {
	if !p.byzHas(alloc.id, ByzDupClaimer) || !alloc.isHead() || alloc.pools == nil {
		return false
	}
	addr, ok := alloc.pools.FirstFree()
	if !ok {
		return false
	}
	p.rt.Coll.Inc(CounterByzantineActs)
	p.rt.Trace(obs.Event{Kind: obs.EvByzantineDupClaim, Node: alloc.id, Peer: requestor, Addr: addr})
	_, _ = p.send(alloc.id, requestor, msgComCfg, metrics.CatConfig, comCfg{
		Addr:       addr,
		NetworkID:  alloc.networkID,
		Configurer: alloc.id,
		PathHops:   pathHops,
	})
	return true
}

// byzSabotageReclaim intercepts an ADDR_REC broadcast at a vote-liar head:
// instead of opening an honest report-collection window, it floods forged
// existence reports for every occupied address it knows of the target's
// space, so the honest holders refresh everything and free nothing.
// Returns true when the broadcast was handled dishonestly.
func (p *Protocol) byzSabotageReclaim(nd *node, pl addrRec) bool {
	if !p.byzHas(nd.id, ByzVoteLiar) || !nd.isHead() {
		return false
	}
	p.byzForgeReports(nd, pl.Target)
	return true
}

// byzSuppressReclaim intercepts reclamation initiation at a vote-liar head:
// a liar that detects a dead member (or runs dry) never starts the §IV-D
// process — it floods forged existence reports instead, so other holders
// refresh the leaked addresses and free nothing. Returns true when the
// initiation was suppressed.
func (p *Protocol) byzSuppressReclaim(initiator *node, target radio.NodeID) bool {
	if !p.byzHas(initiator.id, ByzVoteLiar) || !initiator.isHead() {
		return false
	}
	p.byzForgeReports(initiator, target)
	return true
}

// byzForgeReports floods forged REC_FWD existence reports to the liar's
// QDSet for every occupied address it knows of the target's space.
func (p *Protocol) byzForgeReports(nd *node, target radio.NodeID) {
	var pool *addrspace.Pool
	if target == nd.id {
		pool = nd.pools
	} else {
		pool = nd.replicas[target]
	}
	if pool == nil {
		return // not a holder: nothing to forge, honest window suppressed
	}
	p.rt.Coll.Inc(CounterByzantineActs)
	p.rt.Trace(obs.Event{Kind: obs.EvByzantineVoteLie, Node: nd.id, Peer: target, Detail: "forge_rec_rep"})
	for _, addr := range pool.Occupied() {
		for _, h := range sortedIDs(nd.qdset) {
			_, _ = p.send(nd.id, h, msgRecFwd, metrics.CatReclamation, recFwd{
				Target: target,
				Addr:   addr,
				TTL:    1,
			})
		}
	}
}

// AddressConflictCount is the number of addresses currently assigned to
// more than one alive node — the adversarial headline metric (zero in every
// honest run).
func (p *Protocol) AddressConflictCount() int {
	return len(p.AddressConflicts())
}
