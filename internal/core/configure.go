package core

import (
	"strconv"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/cluster"
	"quorumconf/internal/health"
	"quorumconf/internal/metrics"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/quorum"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

// Counter and sample names recorded in the metrics collector.
const (
	// SampleConfigLatency is the per-configuration critical-path hop
	// count the paper plots in Figures 5-7.
	SampleConfigLatency = "config_latency_hops"
	// CounterConfigured counts successful configurations.
	CounterConfigured = "configured"
	// CounterConfiguredHeads counts configurations that created heads.
	CounterConfiguredHeads = "configured_heads"
	// CounterProposalsRejected counts quorum rounds that found the
	// proposed address occupied.
	CounterProposalsRejected = "proposals_rejected"
	// CounterBallotsFailed counts vote collections abandoned without a
	// quorum.
	CounterBallotsFailed = "ballots_failed"
	// CounterConfigNacks counts refused configuration requests.
	CounterConfigNacks = "config_nacks"
	// CounterBorrowed counts addresses allocated out of QuorumSpace.
	CounterBorrowed = "borrowed"
	// CounterAgentForwards counts depleted-allocator relays.
	CounterAgentForwards = "agent_forwards"
)

type ballotPurpose uint8

const (
	purposeCommon ballotPurpose = iota + 1 // assign one address
	purposeSplit                           // approve a block split for a new head
)

// pendingBallot is one in-flight vote collection at an allocator.
type pendingBallot struct {
	id      uint64
	purpose ballotPurpose
	owner   radio.NodeID
	addr    addrspace.Addr

	ballot     *quorum.Ballot
	electorate []radio.NodeID
	votes      map[radio.NodeID]addrspace.Entry
	sentHops   map[radio.NodeID]int

	requestor   radio.NodeID
	reqPathHops int    // critical path accumulated before this round
	maxRTT      int    // slowest round trip among votes cast this round
	proposals   int    // addresses proposed so far for this request
	span        uint64 // causal span minted at the requestor's origin
	viaAgent    bool
	agent       radio.NodeID

	timer *sim.Timer
	done  bool
}

// NodeArrived implements protocol.Protocol: the node (already present in
// the topology) boots, listens for one hello interval, then configures.
func (p *Protocol) NodeArrived(id radio.NodeID) {
	if !p.running {
		p.running = true
		p.scheduleTick()
	}
	nd := &node{id: id, alive: true, role: RoleUnconfigured}
	p.nodes[id] = nd
	p.rt.Net.InvalidateSnapshot()
	_ = p.rt.Net.Register(id, func(m netstack.Message) { p.dispatch(id, m) })
	p.rt.Trace(obs.Event{Kind: obs.EvNodeArrived, Node: id})
	p.rt.Sim.Schedule(p.p.HelloInterval, func() { p.attemptConfigure(nd) })
}

// dispatch routes a delivered message to the node's handler.
func (p *Protocol) dispatch(id radio.NodeID, m netstack.Message) {
	nd, ok := p.nodes[id]
	if !ok || !nd.alive {
		return
	}
	switch pl := m.Payload.(type) {
	case firstBcast:
		p.onFirstBcast(nd, m)
	case firstResp:
		nd.heardIPs = append(nd.heardIPs, pl.IP)
	case comReq:
		p.allocate(nd, m.Src, pl.PathHops+m.Hops, false, 0, m.Span)
	case comCfg:
		p.onComCfg(nd, m, pl)
	case comAck:
		p.onConfiguredAck(nd, pl.PathHops+m.Hops, false)
	case cfgNack:
		p.onCfgNack(nd)
	case chReq:
		p.onChReq(nd, m, pl)
	case chPrp:
		p.onChPrp(nd, m, pl)
	case chCnf:
		p.onChCnf(nd, m, pl)
	case chCfg:
		p.onChCfg(nd, m, pl)
	case chAck:
		p.onConfiguredAck(nd, pl.PathHops+m.Hops, true)
	case quorumClt:
		p.onQuorumClt(nd, m, pl)
	case quorumCfm:
		p.onQuorumCfm(nd, m, pl)
	case quorumUpd:
		// The write committed: release any vote grant for the address.
		if nd.grants != nil {
			delete(nd.grants, pl.Addr)
		}
		// A borrower committing on this node's own space is an
		// address-state change this node did not propagate: applyNewer
		// wipes the vote cache, observed here.
		before := 0
		if pl.Owner == nd.id {
			before = nd.voteCache.size()
		}
		nd.applyNewer(pl.Owner, pl.Addr, pl.Entry)
		if before > 0 && nd.voteCache.size() == 0 {
			p.rt.Trace(obs.Event{Kind: obs.EvVoteCacheInvalidate, Node: nd.id, Peer: m.Src, Addr: pl.Addr, Detail: "remote_update"})
		}
	case splitUpd:
		p.onSplitUpd(nd, pl)
	case replicaDist:
		p.onReplicaDist(nd, m, pl)
	case replicaAck:
		p.storeReplica(nd, pl.Info)
	case agentFwd:
		p.onAgentFwd(nd, m, pl)
	case agentCfg:
		p.onAgentCfg(nd, m, pl)
	case updateLoc:
		p.onUpdateLoc(nd, m, pl)
	case returnAddr:
		p.onReturnAddr(nd, m, pl)
	case departAck:
		p.onDepartAck(nd)
	case returnFwd:
		p.onReturnFwd(nd, pl)
	case vacate:
		p.onVacate(nd, pl)
	case chReturn:
		p.onChReturn(nd, m, pl)
	case chReturnAck:
		p.onChReturnAck(nd)
	case chResign:
		p.onChResign(nd, m)
	case reassign:
		p.onReassign(nd, pl)
	case poolUpd:
		p.onPoolUpd(nd, pl)
	case repReq:
		p.onRepReq(nd, m)
	case repRsp:
		p.onRepRsp(nd, m)
	case addrRec:
		p.onAddrRec(nd, m.Span, pl)
	case recRep:
		p.onRecRep(nd, m.Span, pl)
	case recFwd:
		p.onRecFwd(nd, m.Span, pl)
	case reconfig:
		p.onReconfig(nd)
	}
}

// applyNewer adopts a propagated entry if it is fresher than the local
// copy.
func (nd *node) applyNewer(owner radio.NodeID, addr addrspace.Addr, e addrspace.Entry) {
	if cur, ok := nd.localEntry(owner, addr); ok && e.Newer(cur) {
		nd.applyEntry(owner, addr, e)
	}
}

// attemptConfigure runs the paper's §IV-B decision: join a cluster if a
// head is within two hops, request a block from the nearest head
// otherwise, or run the first-node procedure when no head is reachable.
func (p *Protocol) attemptConfigure(nd *node) {
	if !nd.alive || nd.hasIP || nd.configuring {
		return
	}
	nd.configuring = true
	snap := p.snapshot()
	if heads2 := cluster.HeadsWithin(snap, nd.id, 2, p.isHeadFn); len(heads2) > 0 {
		alloc := p.chooseAllocator(nd, snap, heads2)
		span := p.mintSpan(nd.id)
		p.rt.Trace(obs.Event{Kind: obs.EvAllocRequest, Node: nd.id, Peer: alloc, Span: span, Detail: "common"})
		if _, ok := p.sendSpan(nd.id, alloc, msgComReq, metrics.CatConfig, span, comReq{}); ok {
			p.armCfgTimeout(nd)
			return
		}
	} else if head, _, ok := cluster.Nearest(snap, nd.id, p.isHeadFn); ok {
		span := p.mintSpan(nd.id)
		p.rt.Trace(obs.Event{Kind: obs.EvAllocRequest, Node: nd.id, Peer: head, Span: span, Detail: "head"})
		if _, ok := p.sendSpan(nd.id, head, msgChReq, metrics.CatConfig, span, chReq{}); ok {
			p.armCfgTimeout(nd)
			return
		}
	} else {
		p.firstNodeStep(nd)
		return
	}
	// Chosen peer became unreachable between snapshot and send: back off.
	p.retryConfigureLater(nd)
}

// chooseAllocator picks among the heads within two hops: the nearest one,
// or — under the §IV-B alternative — the one advertising the largest free
// block, at the cost of polling each candidate.
func (p *Protocol) chooseAllocator(nd *node, snap *radio.Snapshot, heads []radio.NodeID) radio.NodeID {
	if !p.p.LargestBlockAllocator || len(heads) == 1 {
		best := heads[0]
		bestD := -1
		for _, h := range heads {
			if d, ok := snap.HopCount(nd.id, h); ok && (bestD == -1 || d < bestD) {
				best, bestD = h, d
			}
		}
		return best
	}
	// Poll every candidate: request + response per head.
	best := heads[0]
	var bestFree uint32
	first := true
	for _, h := range heads {
		d, ok := snap.HopCount(nd.id, h)
		if !ok {
			continue
		}
		p.rt.Coll.AddTraffic(metrics.CatConfig, 2*d)
		free := uint32(0)
		if hn := p.nodes[h]; hn != nil && hn.pools != nil {
			free = hn.pools.FreeCount()
		}
		if first || free > bestFree {
			best, bestFree = h, free
			first = false
		}
	}
	return best
}

func (p *Protocol) armCfgTimeout(nd *node) {
	if nd.cfgTimer != nil {
		nd.cfgTimer.Cancel()
	}
	nd.cfgTimer = p.rt.Sim.Schedule(p.p.ConfigTimeout, func() {
		if nd.alive && !nd.hasIP {
			nd.configuring = false
			p.attemptConfigure(nd)
		}
	})
}

func (p *Protocol) retryConfigureLater(nd *node) {
	nd.configuring = false
	p.rt.Coll.Inc("config_retries")
	p.rt.Sim.Schedule(p.p.ConfigTimeout, func() { p.attemptConfigure(nd) })
}

// --- first node procedure (§IV-B) ----------------------------------------

// firstNodeStep broadcasts a configuration request; after Te with no
// response it repeats up to MaxRetries times and then declares this node
// the first cluster head with the whole address space.
func (p *Protocol) firstNodeStep(nd *node) {
	nd.firstTries++
	p.rt.Net.LocalBroadcast(nd.id, netstack.Message{
		Type:     msgFirstBcast,
		Category: metrics.CatConfig,
		Payload:  firstBcast{Tries: nd.firstTries},
	})
	p.rt.Sim.Schedule(p.p.Te, func() {
		if !nd.alive || nd.hasIP {
			return
		}
		nd.configuring = false
		if nd.firstTries >= p.p.MaxRetries {
			p.becomeFirstHead(nd)
			return
		}
		// A response or new neighbors may have appeared; re-run the full
		// decision (which falls back here and rebroadcasts otherwise).
		p.attemptConfigure(nd)
	})
}

func (p *Protocol) onFirstBcast(nd *node, m netstack.Message) {
	if !nd.hasIP {
		return
	}
	_, _ = p.send(nd.id, m.Src, msgFirstResp, metrics.CatConfig, firstResp{
		IP:        nd.ip,
		NetworkID: nd.networkID,
		IsHead:    nd.role == RoleHead,
	})
}

// becomeFirstHead grants this node the entire address space. Addresses
// heard from configured-but-headless neighbors (orphans of a dead head)
// are marked occupied so they are not reassigned.
func (p *Protocol) becomeFirstHead(nd *node) {
	tab, err := addrspace.NewTable(p.p.Space)
	if err != nil {
		return // impossible: Space validated in New
	}
	for _, heard := range nd.heardIPs {
		if tab.Block().Contains(heard) {
			_ = tab.Set(heard, addrspace.Entry{Status: addrspace.Occupied, Version: 1})
		}
	}
	pool := addrspace.NewPool(tab)
	ip, ok := pool.FirstFree()
	if !ok {
		return // space exhausted by heard IPs: stay unconfigured
	}
	_, _ = pool.Mark(ip, addrspace.Occupied)
	// Network ID: lowest IP of the new network plus a founder nonce.
	tag := NetTag{Addr: ip, Nonce: p.rt.Sim.Rand().Uint32()}
	p.initHead(nd, pool, ip, tag, 0, false)
	nd.configuring = false
	p.rt.Coll.Observe(SampleConfigLatency, float64(nd.firstTries))
	p.rt.Coll.Inc(CounterConfigured)
	p.rt.Coll.Inc(CounterConfiguredHeads)
	p.completeHeadSetup(nd)
}

// initHead installs head state on a node.
func (p *Protocol) initHead(nd *node, pool *addrspace.Pool, ip addrspace.Addr, networkID NetTag, configurer radio.NodeID, hasConfigurer bool) {
	nd.role = RoleHead
	nd.pools = pool
	nd.ip = ip
	nd.hasIP = true
	nd.networkID = networkID
	nd.configurer = configurer
	nd.hasConfigurer = hasConfigurer
	nd.replicas = make(map[radio.NodeID]*addrspace.Pool)
	nd.replicaHolders = make(map[radio.NodeID][]radio.NodeID)
	nd.ownerIPs = make(map[radio.NodeID]addrspace.Addr)
	nd.qdset = make(map[radio.NodeID]bool)
	nd.members = make(map[radio.NodeID]addrspace.Addr)
	nd.administered = make(map[radio.NodeID]adminRecord)
	nd.suspects = make(map[radio.NodeID]*sim.Timer)
	nd.probing = make(map[radio.NodeID]*sim.Timer)
	nd.ballots = make(map[uint64]*pendingBallot)
	nd.reclaims = make(map[radio.NodeID]*reclaimState)
	nd.pendingAddrs = make(map[addrspace.Addr]bool)
	nd.grants = make(map[addrspace.Addr]voteGrant)
	nd.voteCache = newVoteCache(p.p.VoteCacheTTL)
	nd.qdLastSeen = make(map[radio.NodeID]time.Duration)
	nd.healthMon = health.New(health.Config{
		Target: p.p.MinReplicas + 1, // MinReplicas holders plus the owner
		TTL:    p.p.Td,
	}, p.rt.Tracer)
	p.ipOwner[ip] = nd.id
	if nd.cfgTimer != nil {
		nd.cfgTimer.Cancel()
		nd.cfgTimer = nil
	}
	ev := obs.Event{Kind: obs.EvHeadElected, Node: nd.id, Addr: ip, Detail: "first"}
	if hasConfigurer {
		ev.Peer, ev.Detail = configurer, "split"
	}
	p.rt.Trace(ev)
	p.rt.Trace(obs.Event{Kind: obs.EvNodeConfigured, Node: nd.id, Addr: ip, Detail: "head"})
}

// completeHeadSetup forms the QDSet and distributes IPSpace replicas to the
// adjacent heads (§IV-C2).
func (p *Protocol) completeHeadSetup(nd *node) {
	snap := p.snapshot()
	for _, h := range cluster.QDSet(snap, nd.id, p.isHeadFn) {
		if h != nd.id {
			nd.qdset[h] = true
			nd.everHadPeers = true
		}
	}
	p.distributeReplicas(nd, metrics.CatConfig)
}

// distributeReplicas pushes this head's current pool to every QDSet member.
func (p *Protocol) distributeReplicas(nd *node, cat metrics.Category) {
	holders := nd.electorate(nd.id)
	for _, h := range sortedIDs(nd.qdset) {
		p.rt.Trace(obs.Event{Kind: obs.EvReplicaSync, Node: nd.id, Peer: h, Addr: nd.ip})
		_, _ = p.send(nd.id, h, msgReplicaDist, cat, replicaDist{Info: holderInfo{
			Owner:   nd.id,
			OwnerIP: nd.ip,
			Pool:    nd.pools.Clone(),
			Holders: holders,
		}})
	}
}

func (p *Protocol) onReplicaDist(nd *node, m netstack.Message, pl replicaDist) {
	if !nd.isHead() {
		return
	}
	known := nd.qdset[pl.Info.Owner]
	p.storeReplica(nd, pl.Info)
	if !known {
		// Reciprocate so the new adjacent head builds its QuorumSpace.
		_, _ = p.send(nd.id, m.Src, msgReplicaAck, m.Category, replicaAck{Info: holderInfo{
			Owner:   nd.id,
			OwnerIP: nd.ip,
			Pool:    nd.pools.Clone(),
			Holders: nd.electorate(nd.id),
		}})
	}
}

// storeReplica records another head's replica and QDSet membership.
func (p *Protocol) storeReplica(nd *node, info holderInfo) {
	if !nd.isHead() || info.Owner == nd.id || info.Pool == nil {
		return
	}
	nd.replicas[info.Owner] = info.Pool
	holders := make([]radio.NodeID, len(info.Holders))
	copy(holders, info.Holders)
	nd.replicaHolders[info.Owner] = holders
	nd.ownerIPs[info.Owner] = info.OwnerIP
	nd.qdset[info.Owner] = true
	nd.everHadPeers = true
	p.rt.Trace(obs.Event{Kind: obs.EvReplicaAdopt, Node: nd.id, Peer: info.Owner, Addr: info.OwnerIP})
	if t, ok := nd.suspects[info.Owner]; ok {
		t.Cancel()
		delete(nd.suspects, info.Owner)
	}
}

func (p *Protocol) onSplitUpd(nd *node, pl splitUpd) {
	if !nd.isHead() || pl.NewPool == nil {
		return
	}
	if _, ok := nd.replicas[pl.Owner]; ok {
		nd.replicas[pl.Owner] = pl.NewPool
	}
}

// --- allocation (allocator side) -----------------------------------------

// allocate serves one address request: propose an address from IPSpace,
// fall back to QuorumSpace borrowing (§V-A), and when fully depleted act as
// an agent relaying to this head's own configurer.
func (p *Protocol) allocate(alloc *node, requestor radio.NodeID, pathHops int, viaAgent bool, agent radio.NodeID, span uint64) {
	if !alloc.isHead() {
		p.nack(alloc, requestor, viaAgent, agent, pathHops)
		return
	}
	if p.byzDupClaim(alloc, requestor, pathHops) {
		return
	}
	if p.p.BallotWindow > 0 && alloc.openCommonBallots() >= p.p.BallotWindow {
		// Window full: park the request; closeBallot drains the queue.
		alloc.allocQueue = append(alloc.allocQueue, allocRequest{
			requestor: requestor,
			pathHops:  pathHops,
			viaAgent:  viaAgent,
			agent:     agent,
			span:      span,
		})
		return
	}
	owner, addr, ok := p.firstProposal(alloc)
	if !ok {
		p.maybeSelfReclaim(alloc)
		if !viaAgent && alloc.hasConfigurer && p.isHeadFn(alloc.configurer) {
			p.rt.Coll.Inc(CounterAgentForwards)
			if _, sent := p.sendSpan(alloc.id, alloc.configurer, msgAgentFwd, metrics.CatConfig, span, agentFwd{
				Requestor: requestor,
				PathHops:  pathHops,
			}); sent {
				return
			}
		}
		p.nack(alloc, requestor, viaAgent, agent, pathHops)
		return
	}
	p.startBallot(alloc, &pendingBallot{
		purpose:     purposeCommon,
		owner:       owner,
		addr:        addr,
		requestor:   requestor,
		reqPathHops: pathHops,
		proposals:   1,
		span:        span,
		viaAgent:    viaAgent,
		agent:       agent,
	})
}

func (p *Protocol) nack(alloc *node, requestor radio.NodeID, viaAgent bool, agent radio.NodeID, pathHops int) {
	p.rt.Coll.Inc(CounterConfigNacks)
	_ = viaAgent // refusals go straight to the requestor; the agent has nothing to add
	_ = agent
	_, _ = p.send(alloc.id, requestor, msgNack, metrics.CatConfig, cfgNack{PathHops: pathHops})
}

// openCommonBallots counts the allocator's in-flight common ballots —
// the occupancy the BallotWindow admission check compares against. Split
// ballots are block handovers, not address assignments, and do not take a
// window slot.
func (nd *node) openCommonBallots() int {
	n := 0
	for _, pb := range nd.ballots {
		if pb.purpose == purposeCommon && !pb.done {
			n++
		}
	}
	return n
}

// drainAllocQueue admits parked requests while window slots are free. It
// runs from a zero-delay event scheduled by closeBallot, after the closing
// ballot's own follow-up (retry proposal or commit) has settled, so an
// in-flight request's retries keep their slot ahead of queued newcomers.
func (p *Protocol) drainAllocQueue(alloc *node) {
	for len(alloc.allocQueue) > 0 && alloc.isHead() &&
		(p.p.BallotWindow <= 0 || alloc.openCommonBallots() < p.p.BallotWindow) {
		req := alloc.allocQueue[0]
		alloc.allocQueue = alloc.allocQueue[1:]
		if !p.Alive(req.requestor) {
			continue
		}
		p.allocate(alloc, req.requestor, req.pathHops, req.viaAgent, req.agent, req.span)
	}
}

// freeNotPending returns the pool's lowest free address that is not
// already the subject of one of this allocator's open ballots.
func freeNotPending(alloc *node, pool *addrspace.Pool) (addrspace.Addr, bool) {
	a, ok := pool.FirstFree()
	for ok && alloc.pendingAddrs[a] {
		a, ok = pool.FirstFreeAfter(a)
	}
	return a, ok
}

// freeNotPendingAfter is freeNotPending starting strictly after prev.
func freeNotPendingAfter(alloc *node, pool *addrspace.Pool, prev addrspace.Addr) (addrspace.Addr, bool) {
	a, ok := pool.FirstFreeAfter(prev)
	for ok && alloc.pendingAddrs[a] {
		a, ok = pool.FirstFreeAfter(a)
	}
	return a, ok
}

// firstProposal picks the first candidate address: own IPSpace first, then
// the QuorumSpace replicas in owner order.
func (p *Protocol) firstProposal(alloc *node) (radio.NodeID, addrspace.Addr, bool) {
	if alloc.pools != nil {
		if a, ok := freeNotPending(alloc, alloc.pools); ok {
			return alloc.id, a, true
		}
	}
	if p.p.DisableBorrowing {
		return 0, 0, false
	}
	for _, owner := range sortedIDs(alloc.replicas) {
		if a, ok := freeNotPending(alloc, alloc.replicas[owner]); ok {
			return owner, a, true
		}
	}
	return 0, 0, false
}

// nextProposal advances past a rejected candidate.
func (p *Protocol) nextProposal(alloc *node, prevOwner radio.NodeID, prevAddr addrspace.Addr) (radio.NodeID, addrspace.Addr, bool) {
	ownerSeq := []radio.NodeID{alloc.id}
	if !p.p.DisableBorrowing {
		ownerSeq = append(ownerSeq, sortedIDs(alloc.replicas)...)
	}
	started := false
	for _, owner := range ownerSeq {
		var pool *addrspace.Pool
		if owner == alloc.id {
			pool = alloc.pools
		} else {
			pool = alloc.replicas[owner]
		}
		if pool == nil {
			continue
		}
		if !started {
			if owner != prevOwner {
				continue
			}
			started = true
			if a, ok := freeNotPendingAfter(alloc, pool, prevAddr); ok {
				return owner, a, true
			}
			continue
		}
		if a, ok := freeNotPending(alloc, pool); ok {
			return owner, a, true
		}
	}
	return 0, 0, false
}

// startBallot begins quorum collection for a proposal.
func (p *Protocol) startBallot(alloc *node, pb *pendingBallot) {
	electorate := alloc.electorate(pb.owner)
	// The allocator itself always votes: it holds a copy by construction.
	hasSelf := false
	for _, id := range electorate {
		if id == alloc.id {
			hasSelf = true
			break
		}
	}
	if !hasSelf {
		electorate = append(electorate, alloc.id)
	}
	p.ballotSeq++
	pb.id = p.ballotSeq
	pb.electorate = electorate
	pb.votes = make(map[radio.NodeID]addrspace.Entry)
	pb.sentHops = make(map[radio.NodeID]int)

	bal, err := quorum.NewBallot(pb.addr, electorate)
	if err != nil {
		p.failBallot(alloc, pb)
		return
	}
	pb.ballot = bal
	if !p.p.DisableDynamicLinear {
		for _, id := range electorate {
			if id == pb.owner {
				_ = bal.SetDistinguished(pb.owner)
				break
			}
		}
	}
	if pb.purpose == purposeCommon {
		// Conflict detection: with many ballots in flight, no two open
		// ballots at this allocator may touch the same address. Proposal
		// selection already skips pending addresses, so a hit here means a
		// stale retry raced a newer ballot — re-run the request.
		if alloc.pendingAddrs[pb.addr] {
			p.rt.Coll.Inc("ballots_conflict")
			p.rt.Trace(obs.Event{Kind: obs.EvBallotAbort, Node: alloc.id, Peer: pb.requestor, Addr: pb.addr, Span: pb.span, Detail: "conflict"})
			p.rt.Sim.Schedule(0, func() {
				if alloc.isHead() && p.Alive(pb.requestor) {
					p.allocate(alloc, pb.requestor, pb.reqPathHops, pb.viaAgent, pb.agent, pb.span)
				}
			})
			return
		}
		// The allocator's own vote is a grant like any other: if it
		// already granted this address to another allocator's ballot, it
		// must not open a competing one — back off and retry.
		now := p.rt.Sim.Now()
		if g, held := alloc.grants[pb.addr]; held && now < g.expires {
			backoff := p.p.QuorumTimeout +
				time.Duration(p.rt.Sim.Rand().Int63n(int64(p.p.QuorumTimeout)+1))
			p.rt.Coll.Inc("ballots_contended")
			p.rt.Sim.Schedule(backoff, func() {
				if alloc.isHead() && p.Alive(pb.requestor) {
					p.allocate(alloc, pb.requestor, pb.reqPathHops, pb.viaAgent, pb.agent, pb.span)
				}
			})
			return
		}
		alloc.grants[pb.addr] = voteGrant{ballotID: pb.id, expires: now + 4*p.p.QuorumTimeout}
		// And reserve the proposal so concurrent requests at this
		// allocator cannot pick the same address.
		alloc.pendingAddrs[pb.addr] = true
	}
	alloc.ballots[pb.id] = pb
	purpose := "common"
	if pb.purpose == purposeSplit {
		purpose = "split"
	}
	p.rt.Trace(obs.Event{Kind: obs.EvBallotOpen, Node: alloc.id, Peer: pb.requestor, Addr: pb.addr, MsgID: pb.id, Span: pb.span, Detail: purpose})
	if inflight := alloc.openCommonBallots(); pb.purpose == purposeCommon && inflight > 1 {
		p.rt.Trace(obs.Event{Kind: obs.EvBallotPipelined, Node: alloc.id, Peer: pb.requestor, Addr: pb.addr, MsgID: pb.id, Span: pb.span,
			Detail: "inflight=" + strconv.Itoa(inflight)})
	}

	var selfEntry addrspace.Entry
	haveSelf := false
	if e, ok := alloc.localEntry(pb.owner, pb.addr); ok {
		_ = bal.Cast(alloc.id, e)
		pb.votes[alloc.id] = e
		selfEntry, haveSelf = e, true
	}
	// The cache only ever stands in for affirmative votes on the
	// allocator's own space: members confirmed in sync hold the same entry
	// the allocator does, and competing borrowers still hit the
	// allocator's self-grant (see votecache.go for the safety argument).
	useCache := pb.purpose == purposeCommon && pb.owner == alloc.id &&
		haveSelf && selfEntry.Status == addrspace.Free
	for _, m := range electorate {
		if m == alloc.id {
			continue
		}
		if useCache && alloc.qdset[m] {
			now := p.rt.Sim.Now()
			if ok, expired := alloc.voteCache.fresh(m, now); ok {
				_ = bal.Cast(m, selfEntry)
				pb.votes[m] = selfEntry
				p.rt.Trace(obs.Event{Kind: obs.EvVoteCacheHit, Node: alloc.id, Peer: m, Addr: pb.addr, MsgID: pb.id, Span: pb.span})
				continue
			} else if expired {
				p.rt.Trace(obs.Event{Kind: obs.EvVoteCacheInvalidate, Node: alloc.id, Peer: m, Addr: pb.addr, Detail: "ttl"})
			}
		}
		if hops, ok := p.sendSpan(alloc.id, m, msgQuorumClt, metrics.CatConfig, pb.span, quorumClt{
			BallotID:  pb.id,
			Owner:     pb.owner,
			Addr:      pb.addr,
			Split:     pb.purpose == purposeSplit,
			Allocator: alloc.id,
		}); ok {
			pb.sentHops[m] = hops
		}
	}
	pb.timer = p.rt.Sim.Schedule(p.p.QuorumTimeout, func() { p.onBallotTimeout(alloc, pb) })
	p.checkBallot(alloc, pb)
}

func (p *Protocol) onQuorumClt(nd *node, m netstack.Message, pl quorumClt) {
	if p.byzVoteLie(nd, m.Src, m.Category, pl) {
		return
	}
	entry, has := addrspace.Entry{}, false
	busy := false
	if nd.isHead() {
		entry, has = nd.localEntry(pl.Owner, pl.Addr)
		// A vote is an exclusive grant (§II-C mutual exclusion): while
		// another ballot holds this voter's vote for the address, reply
		// busy so two allocators cannot both read "free" and assign.
		// Split ballots approve a block handover, not an address, and do
		// not contend.
		if has && !pl.Split && nd.grants != nil {
			now := p.rt.Sim.Now()
			if g, held := nd.grants[pl.Addr]; held && g.ballotID != pl.BallotID && now < g.expires {
				busy = true
			} else {
				nd.grants[pl.Addr] = voteGrant{
					ballotID: pl.BallotID,
					expires:  now + 4*p.p.QuorumTimeout,
				}
			}
		}
	}
	_, _ = p.sendSpan(nd.id, m.Src, msgQuorumCfm, m.Category, m.Span, quorumCfm{
		BallotID:   pl.BallotID,
		Entry:      entry,
		HasReplica: has,
		Busy:       busy,
	})
}

func (p *Protocol) onQuorumCfm(alloc *node, m netstack.Message, pl quorumCfm) {
	if alloc.ballots == nil {
		return
	}
	pb, ok := alloc.ballots[pl.BallotID]
	if !ok || pb.done {
		return
	}
	if pl.Busy {
		// Another allocator holds this voter's vote for the address:
		// abort and retry after a jittered backoff so one of the
		// contenders wins the next round.
		p.rt.Coll.Inc("ballots_contended")
		p.rt.Trace(obs.Event{Kind: obs.EvBallotAbort, Node: alloc.id, Peer: m.Src, Addr: pb.addr, MsgID: pb.id, Span: pb.span, Detail: "contended"})
		p.closeBallot(alloc, pb)
		backoff := p.p.QuorumTimeout +
			time.Duration(p.rt.Sim.Rand().Int63n(int64(p.p.QuorumTimeout)+1))
		p.rt.Sim.Schedule(backoff, func() {
			if alloc.isHead() && p.Alive(pb.requestor) {
				p.allocate(alloc, pb.requestor, pb.reqPathHops+pb.maxRTT, pb.viaAgent, pb.agent, pb.span)
			}
		})
		return
	}
	if !pl.HasReplica {
		// The voter lost (or never had) the replica: drop it from the
		// electorate so the ballot can still reach quorum among holders.
		if alloc.voteCache.invalidate(m.Src) {
			p.rt.Trace(obs.Event{Kind: obs.EvVoteCacheInvalidate, Node: alloc.id, Peer: m.Src, Detail: "no_replica"})
		}
		p.shrinkBallot(alloc, pb, m.Src)
		return
	}
	if err := pb.ballot.Cast(m.Src, pl.Entry); err != nil {
		return
	}
	pb.votes[m.Src] = pl.Entry
	p.rt.Trace(obs.Event{Kind: obs.EvBallotVote, Node: alloc.id, Peer: m.Src, Addr: pb.addr, MsgID: pb.id, Span: pb.span})
	// A vote matching the allocator's own entry proves the member is in
	// sync on this space — it can stand in for the member's next vote.
	if pb.owner == alloc.id {
		if local, ok := alloc.localEntry(pb.owner, pb.addr); ok && local == pl.Entry {
			alloc.voteCache.confirm(m.Src, p.rt.Sim.Now())
		}
	}
	if rtt := 2 * pb.sentHops[m.Src]; rtt > pb.maxRTT {
		pb.maxRTT = rtt
	}
	p.checkBallot(alloc, pb)
}

// shrinkBallot rebuilds the ballot without the given member, re-casting the
// votes already received.
func (p *Protocol) shrinkBallot(alloc *node, pb *pendingBallot, drop radio.NodeID) {
	var rest []radio.NodeID
	for _, id := range pb.electorate {
		if id != drop {
			rest = append(rest, id)
		}
	}
	if len(rest) == 0 {
		p.failBallot(alloc, pb)
		return
	}
	pb.electorate = rest
	bal, err := quorum.NewBallot(pb.addr, rest)
	if err != nil {
		p.failBallot(alloc, pb)
		return
	}
	if !p.p.DisableDynamicLinear {
		for _, id := range rest {
			if id == pb.owner {
				_ = bal.SetDistinguished(pb.owner)
				break
			}
		}
	}
	for voter, e := range pb.votes {
		keep := false
		for _, id := range rest {
			if id == voter {
				keep = true
				break
			}
		}
		if keep {
			_ = bal.Cast(voter, e)
		}
	}
	pb.ballot = bal
	p.checkBallot(alloc, pb)
}

// checkBallot completes the ballot once a strict majority of votes is in.
// The distinguished-node tie-break (dynamic linear voting, §II-D) is
// reserved for the timeout path: it rescues exact-half splits when members
// stop responding, rather than letting an allocator skip fresh reads.
func (p *Protocol) checkBallot(alloc *node, pb *pendingBallot) {
	if pb.done || !pb.ballot.HasStrictMajority() {
		return
	}
	p.finishBallot(alloc, pb)
}

// onBallotTimeout fires when votes are still missing after QuorumTimeout:
// unreachable members are dropped (and fed into the §V-B quorum-adjustment
// machinery); if the remaining votes form a quorum the ballot completes,
// otherwise it fails and the requestor retries later.
func (p *Protocol) onBallotTimeout(alloc *node, pb *pendingBallot) {
	if pb.done || !alloc.alive {
		return
	}
	snap := p.snapshot()
	for _, v := range pb.ballot.Outstanding() {
		if v == alloc.id {
			continue
		}
		if !p.Alive(v) || !snap.Reachable(alloc.id, v) {
			p.suspectMember(alloc, v)
			p.shrinkBallot(alloc, pb, v)
			if pb.done {
				return
			}
		}
	}
	if pb.done {
		return
	}
	if pb.ballot.HasQuorum() {
		p.finishBallot(alloc, pb)
		return
	}
	p.failBallot(alloc, pb)
}

func (p *Protocol) failBallot(alloc *node, pb *pendingBallot) {
	p.rt.Trace(obs.Event{Kind: obs.EvBallotAbort, Node: alloc.id, Addr: pb.addr, MsgID: pb.id, Span: pb.span, Detail: "no_quorum"})
	p.closeBallot(alloc, pb)
	p.rt.Coll.Inc(CounterBallotsFailed)
	p.nack(alloc, pb.requestor, pb.viaAgent, pb.agent, pb.reqPathHops)
}

func (p *Protocol) closeBallot(alloc *node, pb *pendingBallot) {
	pb.done = true
	if pb.timer != nil {
		pb.timer.Cancel()
	}
	if alloc.ballots != nil {
		delete(alloc.ballots, pb.id)
	}
	if alloc.pendingAddrs != nil {
		delete(alloc.pendingAddrs, pb.addr)
	}
	if g, held := alloc.grants[pb.addr]; held && g.ballotID == pb.id {
		delete(alloc.grants, pb.addr)
	}
	if pb.purpose == purposeCommon && len(alloc.allocQueue) > 0 {
		// Zero-delay so the closing request's own follow-up ballot (retry
		// after "occupied", commit propagation) settles before queued
		// requests compete for the freed window slot.
		p.rt.Sim.Schedule(0, func() { p.drainAllocQueue(alloc) })
	}
}

func (p *Protocol) finishBallot(alloc *node, pb *pendingBallot) {
	dec, err := pb.ballot.Decide()
	if err != nil {
		p.failBallot(alloc, pb)
		return
	}
	p.closeBallot(alloc, pb)
	switch pb.purpose {
	case purposeCommon:
		p.finishCommonBallot(alloc, pb, dec)
	case purposeSplit:
		p.finishSplitBallot(alloc, pb)
	}
}

func (p *Protocol) finishCommonBallot(alloc *node, pb *pendingBallot, dec quorum.Decision) {
	if !dec.Available {
		// Freshest replica says occupied: adopt it and move to the next
		// candidate address.
		alloc.applyNewer(pb.owner, pb.addr, dec.Entry)
		p.rt.Coll.Inc(CounterProposalsRejected)
		p.rt.Trace(obs.Event{Kind: obs.EvBallotAbort, Node: alloc.id, Addr: pb.addr, MsgID: pb.id, Span: pb.span, Detail: "occupied"})
		if pb.proposals >= p.p.MaxProposals {
			p.rt.Coll.Inc(CounterConfigNacks)
			p.nack(alloc, pb.requestor, pb.viaAgent, pb.agent, pb.reqPathHops)
			return
		}
		owner, addr, ok := p.nextProposal(alloc, pb.owner, pb.addr)
		if !ok {
			p.nack(alloc, pb.requestor, pb.viaAgent, pb.agent, pb.reqPathHops)
			return
		}
		p.startBallot(alloc, &pendingBallot{
			purpose:     purposeCommon,
			owner:       owner,
			addr:        addr,
			requestor:   pb.requestor,
			reqPathHops: pb.reqPathHops + pb.maxRTT,
			proposals:   pb.proposals + 1,
			span:        pb.span,
			viaAgent:    pb.viaAgent,
			agent:       pb.agent,
		})
		return
	}
	// Commit the write at the quorum (§II-C): bump the version and
	// propagate to every replica holder. The applyEntry wiped the vote
	// cache (own-pool write); members the update demonstrably reached are
	// re-confirmed below, so under steady churn the next ballot runs on
	// cache hits alone. Members the send could not reach stay invalidated.
	newEntry := addrspace.Entry{Status: addrspace.Occupied, Version: dec.Entry.Version + 1}
	alloc.applyEntry(pb.owner, pb.addr, newEntry)
	p.rt.Trace(obs.Event{Kind: obs.EvBallotCommit, Node: alloc.id, Peer: pb.requestor, Addr: pb.addr, MsgID: pb.id, Span: pb.span})
	for _, h := range pb.electorate {
		if h == alloc.id {
			continue
		}
		if _, ok := p.sendSpan(alloc.id, h, msgQuorumUpd, metrics.CatConfig, pb.span, quorumUpd{
			Owner: pb.owner,
			Addr:  pb.addr,
			Entry: newEntry,
		}); ok && pb.owner == alloc.id {
			alloc.voteCache.confirm(h, p.rt.Sim.Now())
		}
	}
	if pb.owner != alloc.id {
		p.rt.Coll.Inc(CounterBorrowed)
	}
	alloc.members[pb.requestor] = pb.addr
	grant := comCfg{
		Addr:       pb.addr,
		NetworkID:  alloc.networkID,
		Configurer: alloc.id,
		PathHops:   pb.reqPathHops + pb.maxRTT,
	}
	if pb.viaAgent {
		_, _ = p.sendSpan(alloc.id, pb.agent, msgAgentCfg, metrics.CatConfig, pb.span, agentCfg{
			Requestor: pb.requestor,
			Grant:     grant,
		})
		return
	}
	_, _ = p.sendSpan(alloc.id, pb.requestor, msgComCfg, metrics.CatConfig, pb.span, grant)
}

// --- common node configuration (requestor side) --------------------------

func (p *Protocol) onComCfg(nd *node, m netstack.Message, pl comCfg) {
	if nd.hasIP || !nd.alive {
		return
	}
	nd.ip = pl.Addr
	nd.hasIP = true
	nd.role = RoleCommon
	nd.networkID = pl.NetworkID
	nd.configurer = pl.Configurer
	nd.hasConfigurer = true
	nd.configuring = false
	p.ipOwner[pl.Addr] = nd.id
	if nd.cfgTimer != nil {
		nd.cfgTimer.Cancel()
		nd.cfgTimer = nil
	}
	p.rt.Trace(obs.Event{Kind: obs.EvAllocGrant, Node: nd.id, Peer: pl.Configurer, Addr: pl.Addr, Span: m.Span})
	p.rt.Trace(obs.Event{Kind: obs.EvNodeConfigured, Node: nd.id, Peer: pl.Configurer, Addr: pl.Addr, Span: m.Span})
	_, _ = p.sendSpan(nd.id, pl.Configurer, msgComAck, metrics.CatConfig, m.Span, comAck{
		Addr:     pl.Addr,
		PathHops: pl.PathHops + m.Hops,
	})
}

// onConfiguredAck finalizes one configuration at the allocator and records
// the latency sample.
func (p *Protocol) onConfiguredAck(alloc *node, pathHops int, head bool) {
	p.rt.Coll.Observe(SampleConfigLatency, float64(pathHops))
	p.rt.Coll.Inc(CounterConfigured)
	if head {
		p.rt.Coll.Inc(CounterConfiguredHeads)
	}
}

func (p *Protocol) onCfgNack(nd *node) {
	if nd.hasIP || !nd.alive {
		return
	}
	if nd.cfgTimer != nil {
		nd.cfgTimer.Cancel()
		nd.cfgTimer = nil
	}
	p.retryConfigureLater(nd)
}

// --- cluster head configuration (Table 1) --------------------------------

func (p *Protocol) onChReq(alloc *node, m netstack.Message, pl chReq) {
	if !alloc.isHead() || alloc.pools == nil {
		p.nack(alloc, m.Src, false, 0, pl.PathHops+m.Hops)
		return
	}
	// Preview the split without committing it.
	var proposal addrspace.Block
	found := false
	var bestFree uint32
	for _, t := range alloc.pools.Tables() {
		if t.Block().Size() < 2 {
			continue
		}
		if f := t.FreeCount(); !found || f > bestFree {
			_, upper, err := t.Block().SplitHalf()
			if err != nil {
				continue
			}
			proposal, bestFree, found = upper, f, true
		}
	}
	if !found {
		p.nack(alloc, m.Src, false, 0, pl.PathHops+m.Hops)
		return
	}
	_, _ = p.sendSpan(alloc.id, m.Src, msgChPrp, metrics.CatConfig, m.Span, chPrp{
		Block:    proposal,
		PathHops: pl.PathHops + m.Hops,
	})
}

func (p *Protocol) onChPrp(nd *node, m netstack.Message, pl chPrp) {
	if nd.hasIP || !nd.alive {
		return
	}
	_, _ = p.sendSpan(nd.id, m.Src, msgChCnf, metrics.CatConfig, m.Span, chCnf{
		Block:    pl.Block,
		PathHops: pl.PathHops + m.Hops,
	})
}

func (p *Protocol) onChCnf(alloc *node, m netstack.Message, pl chCnf) {
	if !alloc.isHead() {
		return
	}
	p.startBallot(alloc, &pendingBallot{
		purpose:     purposeSplit,
		owner:       alloc.id,
		addr:        pl.Block.Lo, // ballot subject: the block being carved
		requestor:   m.Src,
		reqPathHops: pl.PathHops + m.Hops,
		proposals:   1,
		span:        m.Span,
	})
}

func (p *Protocol) finishSplitBallot(alloc *node, pb *pendingBallot) {
	// The quorum approved the split; availability of the marker address is
	// irrelevant — the write being committed is the block handover.
	upper, err := alloc.pools.SplitLargest()
	if err != nil {
		p.nack(alloc, pb.requestor, false, 0, pb.reqPathHops)
		return
	}
	p.rt.Trace(obs.Event{Kind: obs.EvBallotCommit, Node: alloc.id, Peer: pb.requestor, Addr: pb.addr, MsgID: pb.id, Span: pb.span, Detail: "split"})
	for _, h := range sortedIDs(alloc.qdset) {
		_, _ = p.sendSpan(alloc.id, h, msgSplitUpd, metrics.CatConfig, pb.span, splitUpd{
			Owner:   alloc.id,
			NewPool: alloc.pools.Clone(),
			NewHead: pb.requestor,
		})
	}
	_, _ = p.sendSpan(alloc.id, pb.requestor, msgChCfg, metrics.CatConfig, pb.span, chCfg{
		Table:      upper,
		NetworkID:  alloc.networkID,
		Configurer: alloc.id,
		PathHops:   pb.reqPathHops + pb.maxRTT,
	})
}

func (p *Protocol) onChCfg(nd *node, m netstack.Message, pl chCfg) {
	if nd.hasIP || !nd.alive || pl.Table == nil {
		return
	}
	pool := addrspace.NewPool(pl.Table)
	ip, ok := pool.FirstFree()
	if !ok {
		return // unusable block; keep retrying via timeout
	}
	_, _ = pool.Mark(ip, addrspace.Occupied)
	p.initHead(nd, pool, ip, pl.NetworkID, pl.Configurer, true)
	nd.configuring = false
	p.rt.Trace(obs.Event{Kind: obs.EvAllocGrant, Node: nd.id, Peer: pl.Configurer, Addr: nd.ip, Span: m.Span, Detail: "head"})
	_, _ = p.sendSpan(nd.id, pl.Configurer, msgChAck, metrics.CatConfig, m.Span, chAck{
		PathHops: pl.PathHops + m.Hops,
	})
	p.completeHeadSetup(nd)
}

// --- agent relay (§V-A) ---------------------------------------------------

func (p *Protocol) onAgentFwd(cfgr *node, m netstack.Message, pl agentFwd) {
	p.allocate(cfgr, pl.Requestor, pl.PathHops+m.Hops, true, m.Src, m.Span)
}

func (p *Protocol) onAgentCfg(agent *node, m netstack.Message, pl agentCfg) {
	grant := pl.Grant
	grant.PathHops += m.Hops
	_, _ = p.sendSpan(agent.id, pl.Requestor, msgComCfg, metrics.CatConfig, m.Span, grant)
}
