package core

import (
	"testing"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/mobility"
	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
)

// BenchmarkConfigure50Nodes measures end-to-end protocol throughput: a
// full 50-node static network configured from scratch per iteration.
func BenchmarkConfigure50Nodes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt, err := protocol.NewRuntime(protocol.RuntimeConfig{Seed: int64(i + 1), TransmissionRange: 200})
		if err != nil {
			b.Fatal(err)
		}
		p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 1024}})
		if err != nil {
			b.Fatal(err)
		}
		rng := rt.Sim.Rand()
		for n := 0; n < 50; n++ {
			id := radio.NodeID(n)
			pos := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			at := time.Duration(n) * 2 * time.Second
			rt.Sim.ScheduleAt(at, func() {
				if err := rt.Topo.Add(id, mobility.Static(pos)); err != nil {
					return
				}
				rt.Net.InvalidateSnapshot()
				p.NodeArrived(id)
			})
		}
		if err := rt.Sim.RunUntil(160 * time.Second); err != nil {
			b.Fatal(err)
		}
		if p.ConfiguredCount() == 0 {
			b.Fatal("nothing configured")
		}
	}
}

// benchConfigure runs the 50-node configure workload once per iteration
// with the given extra runtime options — the seam the tracer-overhead
// benchmarks below use to compare a nil tracer against an attached one.
func benchConfigure(b *testing.B, opts ...protocol.Option) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		all := append([]protocol.Option{
			protocol.WithSeed(int64(i + 1)),
			protocol.WithTransmissionRange(200),
		}, opts...)
		rt, err := protocol.New(all...)
		if err != nil {
			b.Fatal(err)
		}
		p, err := New(rt, Params{Space: addrspace.Block{Lo: 1, Hi: 1024}})
		if err != nil {
			b.Fatal(err)
		}
		rng := rt.Sim.Rand()
		for n := 0; n < 50; n++ {
			id := radio.NodeID(n)
			pos := mobility.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			at := time.Duration(n) * 2 * time.Second
			rt.Sim.ScheduleAt(at, func() {
				if err := rt.Topo.Add(id, mobility.Static(pos)); err != nil {
					return
				}
				rt.Net.InvalidateSnapshot()
				p.NodeArrived(id)
			})
		}
		if err := rt.Sim.RunUntil(160 * time.Second); err != nil {
			b.Fatal(err)
		}
		if p.ConfiguredCount() == 0 {
			b.Fatal("nothing configured")
		}
	}
}

// BenchmarkTracerDisabled is the nil-tracer fast path: every instrumented
// seam fills an Event struct and takes one branch in Runtime.Trace. The
// acceptance bar is <5% overhead versus BenchmarkConfigure50Nodes.
func BenchmarkTracerDisabled(b *testing.B) {
	benchConfigure(b)
}

// BenchmarkTracerEnabledRing measures the same workload with a tracer
// attached to a bounded ring, the configuration quorumd runs with — the
// enabled-path counterpart to BenchmarkTracerDisabled, recorded into
// BENCH_sweeps.json as tracer_event_ring.
func BenchmarkTracerEnabledRing(b *testing.B) {
	ring := obs.NewRing(obs.DefaultRingSize)
	benchConfigure(b, protocol.WithTracer(obs.NewTracer(nil, ring)))
}
