// Package core implements the paper's contribution: quorum-based IP
// address autoconfiguration with clustering and partial replication
// (Xu & Wu, ICDCS 2007).
//
// Cluster heads own buddy-split address blocks (IPSpace) and replicate
// them at the adjacent cluster heads within three hops (the QDSet). Every
// configuration collects a quorum of votes over the replicas, with the
// freshest timestamp deciding availability, so no two nodes are ever
// configured with the same address — even across network partitions. The
// package also implements the protocol's maintenance machinery: location
// updates, graceful and abrupt departure, address reclamation, address
// borrowing from the QuorumSpace, quorum adjustment, and partition/merge
// handling.
//
// Two simulation fidelity shortcuts are taken, both documented in
// DESIGN.md §6: hello beacons are charged analytically (one transmission
// per node per interval) while the neighbor knowledge they would carry is
// read from the current connectivity snapshot, and unicast routing
// resolves the destination by node ID where a real deployment routes by
// the IP the protocol itself assigned.
package core

import (
	"fmt"
	"sort"
	"time"

	"quorumconf/internal/addrspace"
	"quorumconf/internal/health"
	"quorumconf/internal/metrics"
	"quorumconf/internal/msg"
	"quorumconf/internal/netstack"
	"quorumconf/internal/obs"
	"quorumconf/internal/protocol"
	"quorumconf/internal/radio"
	"quorumconf/internal/sim"
)

// Role is a node's position in the cluster hierarchy.
type Role uint8

// Roles.
const (
	RoleUnconfigured Role = iota + 1
	RoleCommon
	RoleHead
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleUnconfigured:
		return "unconfigured"
	case RoleCommon:
		return "common"
	case RoleHead:
		return "head"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Params configures the protocol. Zero fields take the defaults the
// simulation section of the paper implies.
type Params struct {
	// Space is the network's full address pool, owned by the first head.
	Space addrspace.Block

	// HelloInterval is the beacon period (default 1s).
	HelloInterval time.Duration
	// Te is the first node's re-broadcast wait (default 2s).
	Te time.Duration
	// MaxRetries is Max_r, the first node's broadcast attempts (default 3).
	MaxRetries int
	// Td delays quorum shrink after a member stops responding (default 3s).
	Td time.Duration
	// Tr is the REP_REQ verification wait before reclamation (default 3s).
	Tr time.Duration
	// UpdatePeriod is the common-node location check period (default 5s).
	UpdatePeriod time.Duration
	// QuorumTimeout bounds one vote-collection round (default 500ms).
	QuorumTimeout time.Duration
	// ConfigTimeout is the requestor's wait before re-trying configuration
	// (default 3s).
	ConfigTimeout time.Duration
	// ReclaimSettle is how long reclamation waits for REC_REP reports
	// before freeing unclaimed addresses (default 2s).
	ReclaimSettle time.Duration
	// ReclaimCooldown suppresses repeat reclamations of the same target
	// (default 60s).
	ReclaimCooldown time.Duration
	// PartitionCheckPeriod is how often heads compare network IDs
	// (default 5s).
	PartitionCheckPeriod time.Duration
	// IsolationGrace is how long a head must remain cut off from every
	// other head before it restarts as a new network (§V-C); it defaults
	// to Td + Tr + 2*HelloInterval so the failure machinery runs first.
	IsolationGrace time.Duration

	// MinReplicas is the QDSet size below which a head recruits more
	// replica holders (3 in §V-B).
	MinReplicas int
	// MaxProposals bounds address proposals per configuration request
	// (default 16).
	MaxProposals int

	// BallotWindow bounds the common ballots one allocator keeps in
	// flight concurrently. Requests beyond the window queue FIFO and are
	// admitted as ballots close. 0 (the default) means unlimited; 1
	// reproduces the paper's one-ballot-at-a-time discipline and is the
	// serial baseline BenchmarkAllocThroughput compares against.
	BallotWindow int
	// VoteCacheTTL enables the allocator-side vote cache: a QDSet
	// member's last confirmed-in-sync time lets the allocator synthesize
	// that member's affirmative vote for own-IPSpace proposals instead of
	// re-polling, until the entry ages past the TTL or is invalidated by
	// a membership or address-state change (see votecache.go). 0 (the
	// default) disables the cache.
	VoteCacheTTL time.Duration

	// UponLeaveOnly selects the alternative location-update scheme of
	// §IV-C1: no periodic UPDATE_LOC traffic; vacate notices are broadcast
	// to adjacent heads on departure instead.
	UponLeaveOnly bool
	// LargestBlockAllocator selects the alternative of §IV-B: the entering
	// node polls nearby heads and picks the one with the largest free
	// block.
	LargestBlockAllocator bool
	// DisableBorrowing turns off QuorumSpace borrowing (§V-A) for
	// ablation.
	DisableBorrowing bool
	// DisableDynamicLinear turns off distinguished-node voting (§II-D)
	// for ablation.
	DisableDynamicLinear bool

	// Byzantine selects nodes that run the protocol dishonestly (see
	// byzantine.go). Zero value: everybody is honest.
	Byzantine ByzantineParams
}

func (p *Params) setDefaults() {
	if p.Space == (addrspace.Block{}) { // zero value: unset
		p.Space = addrspace.Block{Lo: 0x0A000001, Hi: 0x0A000001 + 1023} // 10.0.0.1/22-ish: 1024 addresses
	}
	if p.HelloInterval == 0 {
		p.HelloInterval = time.Second
	}
	if p.Te == 0 {
		p.Te = 2 * time.Second
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.Td == 0 {
		p.Td = 3 * time.Second
	}
	if p.Tr == 0 {
		p.Tr = 3 * time.Second
	}
	if p.UpdatePeriod == 0 {
		p.UpdatePeriod = 5 * time.Second
	}
	if p.QuorumTimeout == 0 {
		p.QuorumTimeout = 500 * time.Millisecond
	}
	if p.ConfigTimeout == 0 {
		p.ConfigTimeout = 3 * time.Second
	}
	if p.ReclaimSettle == 0 {
		p.ReclaimSettle = 2 * time.Second
	}
	if p.ReclaimCooldown == 0 {
		p.ReclaimCooldown = 60 * time.Second
	}
	if p.PartitionCheckPeriod == 0 {
		p.PartitionCheckPeriod = 5 * time.Second
	}
	if p.IsolationGrace == 0 {
		p.IsolationGrace = p.Td + p.Tr + 2*p.HelloInterval
	}
	if p.MinReplicas == 0 {
		p.MinReplicas = 3
	}
	if p.MaxProposals == 0 {
		p.MaxProposals = 16
	}
}

// NetTag identifies a network (partition). See msg.NetTag for the
// definition; it is aliased here because the protocol's public API
// (quorumconf.NetTag) predates the internal/msg split.
type NetTag = msg.NetTag

// adminRecord is what an administrator head remembers about a common node
// that registered via UPDATE_LOC.
type adminRecord struct {
	Configurer radio.NodeID
	Addr       addrspace.Addr
}

// reclaimState tracks one in-progress reclamation at a replica holder.
type reclaimState struct {
	refreshed map[addrspace.Addr]bool
	timer     *sim.Timer
	span      uint64 // causal span minted by the reclamation initiator
}

// node is the per-node protocol state. All fields are manipulated on the
// simulator goroutine.
type node struct {
	id    radio.NodeID
	alive bool
	role  Role

	ip        addrspace.Addr
	hasIP     bool
	networkID NetTag

	configurer    radio.NodeID
	hasConfigurer bool
	administrator radio.NodeID
	hasAdmin      bool

	// Requestor-side configuration state.
	configuring bool
	firstTries  int
	cfgTimer    *sim.Timer
	heardIPs    []addrspace.Addr // IPs heard via FIRST_RESP while isolated

	// Head state.
	everHadPeers     bool                             // had adjacent heads at some point (partition detection)
	isolatedObserved bool                             // isolation condition currently observed
	isolatedSince    time.Duration                    // when it was first observed
	pools            *addrspace.Pool                  // IPSpace (possibly several blocks)
	replicas         map[radio.NodeID]*addrspace.Pool // QuorumSpace: owner -> replica
	replicaHolders   map[radio.NodeID][]radio.NodeID  // owner -> electorate (owner + its QDSet)
	ownerIPs         map[radio.NodeID]addrspace.Addr  // owner -> its IP
	qdset            map[radio.NodeID]bool            // adjacent heads within 3 hops
	members          map[radio.NodeID]addrspace.Addr  // common nodes I configured
	administered     map[radio.NodeID]adminRecord     // nodes I administer
	suspects         map[radio.NodeID]*sim.Timer      // Td timers per silent QDSet member
	probing          map[radio.NodeID]*sim.Timer      // Tr timers per REP_REQ probe
	ballots          map[uint64]*pendingBallot        // in-flight vote collections
	reclaims         map[radio.NodeID]*reclaimState   // in-progress reclamations by target
	recentReclaims   map[radio.NodeID]time.Duration   // settle times of completed reclamations
	pendingAddrs     map[addrspace.Addr]bool          // allocator-side: addresses under an open ballot
	grants           map[addrspace.Addr]voteGrant     // voter-side: exclusive vote grants
	allocQueue       []allocRequest                   // requests deferred by the ballot window
	voteCache        *voteCache                       // allocator-side vote cache (nil when disabled)
	healthMon        *health.Monitor                  // replica-health monitor (heads only)
	qdLastSeen       map[radio.NodeID]time.Duration   // hello-driven liveness lease per QDSet member
}

// allocRequest is one address request waiting for a ballot-window slot.
type allocRequest struct {
	requestor radio.NodeID
	pathHops  int
	viaAgent  bool
	agent     radio.NodeID
	span      uint64 // causal span minted at the requestor
}

// voteGrant records that this voter's vote for an address is held by one
// ballot; concurrent ballots for the same address get a busy reply until
// the write commits or the grant expires. This is the mutual-exclusion
// half of quorum voting: without it two allocators could read "free"
// concurrently and both assign the address.
type voteGrant struct {
	ballotID uint64
	expires  time.Duration
}

func (n *node) isHead() bool   { return n.alive && n.role == RoleHead }
func (n *node) isCommon() bool { return n.alive && n.role == RoleCommon }

// departedInfo is the necrology record kept for experiments (Fig 13 needs
// replica-holder sets of abruptly departed heads).
type departedInfo struct {
	Role    Role
	IP      addrspace.Addr
	HasIP   bool
	Holders []radio.NodeID
	Space   uint32
}

// Protocol is the quorum-based autoconfiguration protocol over one
// simulated MANET. It implements protocol.Protocol.
type Protocol struct {
	rt *protocol.Runtime
	p  Params

	nodes    map[radio.NodeID]*node
	departed map[radio.NodeID]departedInfo
	ipOwner  map[addrspace.Addr]radio.NodeID // assigned IP -> node (routing shortcut)

	ballotSeq uint64
	spanSeq   uint64
	ticks     uint64
	tickTimer *sim.Timer
	running   bool

	byz map[radio.NodeID]ByzantineBehavior // malicious node -> behavior set
}

// New creates the protocol bound to a runtime. Start is implicit: the
// maintenance tick begins with the first node arrival.
func New(rt *protocol.Runtime, params Params) (*Protocol, error) {
	if rt == nil {
		return nil, fmt.Errorf("core: nil runtime")
	}
	params.setDefaults()
	if params.Space.Size() < 2 {
		return nil, fmt.Errorf("core: address space %v too small", params.Space)
	}
	byz := make(map[radio.NodeID]ByzantineBehavior, len(params.Byzantine.Nodes))
	for _, id := range params.Byzantine.Nodes {
		byz[id] = params.Byzantine.Behaviors
	}
	return &Protocol{
		rt:       rt,
		p:        params,
		nodes:    make(map[radio.NodeID]*node),
		departed: make(map[radio.NodeID]departedInfo),
		ipOwner:  make(map[addrspace.Addr]radio.NodeID),
		byz:      byz,
	}, nil
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "quorum" }

// Params returns the effective parameters after defaulting.
func (p *Protocol) Params() Params { return p.p }

// --- plumbing -----------------------------------------------------------

func (p *Protocol) snapshot() *radio.Snapshot { return p.rt.Net.Snapshot() }

func (p *Protocol) isHeadFn(id radio.NodeID) bool {
	nd, ok := p.nodes[id]
	return ok && nd.isHead()
}

// send unicasts a typed payload, returning the hop count (0, false when
// unreachable).
func (p *Protocol) send(src, dst radio.NodeID, typ string, cat metrics.Category, payload any) (int, bool) {
	return p.rt.Net.Unicast(src, dst, netstack.Message{Type: typ, Category: cat, Payload: payload})
}

// sendSpan is send with a causal span ID riding the message.
func (p *Protocol) sendSpan(src, dst radio.NodeID, typ string, cat metrics.Category, span uint64, payload any) (int, bool) {
	return p.rt.Net.Unicast(src, dst, netstack.Message{Type: typ, Category: cat, Span: span, Payload: payload})
}

// mintSpan issues a fresh causal span ID originating at origin. The
// sequence is protocol-global and advances only with protocol activity, so
// identical runs mint identical spans (the determinism contract).
func (p *Protocol) mintSpan(origin radio.NodeID) uint64 {
	p.spanSeq++
	return obs.MintSpan(origin, p.spanSeq)
}

func (p *Protocol) node(id radio.NodeID) *node { return p.nodes[id] }

// sortedIDs returns map keys in ascending order for deterministic
// iteration.
func sortedIDs[V any](m map[radio.NodeID]V) []radio.NodeID {
	out := make([]radio.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// localEntry reads this head's freshest knowledge of (owner, addr): its
// own pool when it is the owner, the replica otherwise.
func (nd *node) localEntry(owner radio.NodeID, addr addrspace.Addr) (addrspace.Entry, bool) {
	if owner == nd.id {
		if nd.pools == nil {
			return addrspace.Entry{}, false
		}
		return nd.pools.Get(addr)
	}
	rep, ok := nd.replicas[owner]
	if !ok {
		return addrspace.Entry{}, false
	}
	return rep.Get(addr)
}

// applyEntry writes (owner, addr) state into this head's copy. A write to
// the node's own pool invalidates the whole vote cache: QDSet members may
// now hold state this head never propagated, so no synthesized vote is
// trustworthy. The head's own commit path re-confirms exactly the members
// it successfully propagated the write to (finishCommonBallot).
func (nd *node) applyEntry(owner radio.NodeID, addr addrspace.Addr, e addrspace.Entry) {
	if owner == nd.id {
		if nd.pools != nil {
			_ = nd.pools.Set(addr, e)
		}
		nd.voteCache.invalidateAll()
		return
	}
	if rep, ok := nd.replicas[owner]; ok {
		_ = rep.Set(addr, e)
	}
}

// electorate returns the voting set for owner's space as this head knows
// it: the owner plus its QDSet at replica-distribution time. For the
// head's own space that is itself plus its current QDSet.
func (nd *node) electorate(owner radio.NodeID) []radio.NodeID {
	if owner == nd.id {
		out := []radio.NodeID{nd.id}
		out = append(out, sortedIDs(nd.qdset)...)
		return out
	}
	holders := nd.replicaHolders[owner]
	out := make([]radio.NodeID, len(holders))
	copy(out, holders)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- public introspection (used by experiments, examples and tests) ------

// Role returns a node's current role; RoleUnconfigured for unknown nodes.
func (p *Protocol) Role(id radio.NodeID) Role {
	if nd, ok := p.nodes[id]; ok && nd.alive {
		return nd.role
	}
	return RoleUnconfigured
}

// IP returns a node's configured address.
func (p *Protocol) IP(id radio.NodeID) (addrspace.Addr, bool) {
	if nd, ok := p.nodes[id]; ok && nd.alive && nd.hasIP {
		return nd.ip, true
	}
	return 0, false
}

// IsConfigured implements protocol.Protocol.
func (p *Protocol) IsConfigured(id radio.NodeID) bool {
	_, ok := p.IP(id)
	return ok
}

// NetworkID returns the paper-visible partition identifier (the lowest IP
// of the network) a node currently carries.
func (p *Protocol) NetworkID(id radio.NodeID) (addrspace.Addr, bool) {
	if nd, ok := p.nodes[id]; ok && nd.alive && nd.hasIP {
		return nd.networkID.Addr, true
	}
	return 0, false
}

// NetworkTag returns the full partition tag, including the founder nonce.
func (p *Protocol) NetworkTag(id radio.NodeID) (NetTag, bool) {
	if nd, ok := p.nodes[id]; ok && nd.alive && nd.hasIP {
		return nd.networkID, true
	}
	return NetTag{}, false
}

// Heads returns the alive cluster heads in ascending order.
func (p *Protocol) Heads() []radio.NodeID {
	var out []radio.NodeID
	for id, nd := range p.nodes {
		if nd.isHead() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConfiguredCount returns how many alive nodes hold addresses.
func (p *Protocol) ConfiguredCount() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.alive && nd.hasIP {
			n++
		}
	}
	return n
}

// QDSetSize returns the current QDSet size of a head (0 for non-heads).
func (p *Protocol) QDSetSize(id radio.NodeID) int {
	if nd, ok := p.nodes[id]; ok && nd.isHead() {
		return len(nd.qdset)
	}
	return 0
}

// OwnSpaceSize returns the number of addresses in a head's own IPSpace.
func (p *Protocol) OwnSpaceSize(id radio.NodeID) uint32 {
	if nd, ok := p.nodes[id]; ok && nd.isHead() && nd.pools != nil {
		return nd.pools.Size()
	}
	return 0
}

// EffectiveSpaceSize returns IPSpace plus QuorumSpace — the address pool a
// head can serve with borrowing (§V-A, Fig 12).
func (p *Protocol) EffectiveSpaceSize(id radio.NodeID) uint32 {
	nd, ok := p.nodes[id]
	if !ok || !nd.isHead() {
		return 0
	}
	total := uint32(0)
	if nd.pools != nil {
		total = nd.pools.Size()
	}
	for _, rep := range nd.replicas {
		total += rep.Size()
	}
	return total
}

// HoldersOf returns the replica-holder electorate recorded for a head —
// including heads that have since departed (Fig 13 reliability analysis).
func (p *Protocol) HoldersOf(owner radio.NodeID) []radio.NodeID {
	if nd, ok := p.nodes[owner]; ok && nd.isHead() {
		return nd.electorate(owner)
	}
	if info, ok := p.departed[owner]; ok {
		out := make([]radio.NodeID, len(info.Holders))
		copy(out, info.Holders)
		return out
	}
	return nil
}

// DepartedSpaceSize returns the IPSpace size a departed head owned.
func (p *Protocol) DepartedSpaceSize(owner radio.NodeID) uint32 {
	return p.departed[owner].Space
}

// AddressConflicts returns groups of alive nodes sharing one address
// within the same connected component — the paper's central invariant is
// that this is always empty once merges settle. Disconnected islands may
// legitimately reuse addresses (they are separate networks).
func (p *Protocol) AddressConflicts() map[addrspace.Addr][]radio.NodeID {
	byAddr := map[addrspace.Addr][]radio.NodeID{}
	for id, nd := range p.nodes {
		if nd.alive && nd.hasIP {
			byAddr[nd.ip] = append(byAddr[nd.ip], id)
		}
	}
	snap := p.snapshot()
	out := map[addrspace.Addr][]radio.NodeID{}
	for a, ids := range byAddr {
		if len(ids) < 2 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Keep only members that share a component with another holder.
		var conflicted []radio.NodeID
		for i, x := range ids {
			for j, y := range ids {
				if i != j && snap.Reachable(x, y) {
					conflicted = append(conflicted, x)
					break
				}
			}
		}
		if len(conflicted) > 1 {
			out[a] = conflicted
		}
	}
	return out
}

// Alive reports whether the node is still part of the network.
func (p *Protocol) Alive(id radio.NodeID) bool {
	nd, ok := p.nodes[id]
	return ok && nd.alive
}

// MembersOf returns the common nodes a head currently tracks as its
// cluster members, ascending.
func (p *Protocol) MembersOf(id radio.NodeID) []radio.NodeID {
	if nd, ok := p.nodes[id]; ok && nd.isHead() {
		return sortedIDs(nd.members)
	}
	return nil
}
