package core

import (
	"sync"
	"time"

	"quorumconf/internal/obs"
	"quorumconf/internal/radio"
)

// voteCache is the allocator-side vote cache (ROADMAP item 2): a cluster
// head under sustained churn re-polls an unchanged QDSet for every single
// request, paying a full round trip per ballot even though nothing moved.
// The cache records, per QDSet member, the last virtual time the member was
// *confirmed in sync* with this head's own pool — either by returning a
// vote matching the head's local entry, or by acknowledged receipt of the
// QUORUM_UPD that committed the previous write. While an entry is fresh the
// head may synthesize that member's affirmative vote from its own table
// instead of polling.
//
// Safety: synthesized votes skip the voter-side grant handshake, so the
// cache is only consulted for proposals from the allocator's OWN IPSpace.
// Any competing allocator borrowing from that space must poll the owner —
// who holds a self-grant for every open ballot — and reads "busy", which
// preserves the mutual exclusion the grants provide (DESIGN.md Appendix E).
//
// Invalidation (all three are mandatory; tests pin each edge):
//   - TTL: entries older than ttl are dropped at lookup time.
//   - Membership change: the member leaving or being shrunk out of the
//     QDSet drops its entry (invalidate).
//   - Address-state change: any write to the head's own pool that did not
//     come from the head's own commit path drops every entry
//     (invalidateAll) — a borrower's QUORUM_UPD, reclamation, or a
//     returned address means members may hold state this head never
//     propagated.
//
// The simulator drives the cache from the single event-loop goroutine, but
// the methods are mutex-guarded so a concurrent driver (the daemon's
// handler pool, or anything else) gets the same invalidation guarantees;
// TestVoteCacheConcurrentInvalidate exercises hit-vs-invalidate races
// under -race.
type voteCache struct {
	mu  sync.Mutex
	ttl time.Duration
	at  map[radio.NodeID]time.Duration
}

// newVoteCache returns a cache with the given TTL, or nil when ttl <= 0
// (disabled): all methods are nil-receiver safe no-ops.
func newVoteCache(ttl time.Duration) *voteCache {
	if ttl <= 0 {
		return nil
	}
	return &voteCache{ttl: ttl, at: make(map[radio.NodeID]time.Duration)}
}

// confirm records that member m was in sync with the owner's pool at now.
func (c *voteCache) confirm(m radio.NodeID, now time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.at[m] = now
	c.mu.Unlock()
}

// fresh reports whether m's entry is usable at now. A stale entry is
// removed; expired reports that an entry existed but aged out (so the
// caller can trace the TTL invalidation).
func (c *voteCache) fresh(m radio.NodeID, now time.Duration) (ok, expired bool) {
	if c == nil {
		return false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	at, have := c.at[m]
	if !have {
		return false, false
	}
	if now-at > c.ttl {
		delete(c.at, m)
		return false, true
	}
	return true, false
}

// invalidate drops m's entry, reporting whether one existed.
func (c *voteCache) invalidate(m radio.NodeID) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, have := c.at[m]; !have {
		return false
	}
	delete(c.at, m)
	return true
}

// invalidateAll drops every entry, returning how many were dropped.
func (c *voteCache) invalidateAll() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.at)
	clear(c.at)
	return n
}

// dropCachedVoter invalidates a member's vote-cache entry when it leaves
// the QDSet (departure, resignation, or quorum shrink).
func (p *Protocol) dropCachedVoter(nd *node, m radio.NodeID) {
	if nd.voteCache.invalidate(m) {
		p.rt.Trace(obs.Event{Kind: obs.EvVoteCacheInvalidate, Node: nd.id, Peer: m, Detail: "membership"})
	}
}

// size returns the number of cached members.
func (c *voteCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.at)
}
